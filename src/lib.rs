//! # mapwave-repro
//!
//! Repository façade for the **mapwave** workspace — a from-scratch Rust
//! reproduction of *"Energy Efficient MapReduce with VFI-enabled Multicore
//! Platforms"* (DAC 2015).
//!
//! This crate re-exports the workspace members so repository-level
//! integration tests and examples can address the whole stack through one
//! dependency:
//!
//! * [`mapwave`] — the design flow, placement, full-system simulation and
//!   experiment reproductions (the paper's contribution);
//! * [`mapwave_noc`] — the cycle-accurate mesh / small-world / wireless
//!   NoC simulator;
//! * [`mapwave_vfi`] — VFI clustering, V/F assignment and power models;
//! * [`mapwave_manycore`] — the tiled-platform substrate;
//! * [`mapwave_phoenix`] — the Phoenix++-style runtime model and the six
//!   instrumented applications.
//!
//! See the workspace `README.md` for a tour and `EXPERIMENTS.md` for the
//! paper-versus-measured record.

pub use mapwave;
pub use mapwave_manycore;
pub use mapwave_noc;
pub use mapwave_phoenix;
pub use mapwave_vfi;

//! # mapwave-repro
//!
//! Repository façade for the **mapwave** workspace — a from-scratch Rust
//! reproduction of *"Energy Efficient MapReduce with VFI-enabled Multicore
//! Platforms"* (DAC 2015).
//!
//! This crate re-exports the workspace members so repository-level
//! integration tests and examples can address the whole stack through one
//! dependency:
//!
//! * [`mapwave`] — the design flow, placement, full-system simulation and
//!   experiment reproductions (the paper's contribution);
//! * [`mapwave_noc`] — the cycle-accurate mesh / small-world / wireless
//!   NoC simulator;
//! * [`mapwave_vfi`] — VFI clustering, V/F assignment and power models;
//! * [`mapwave_manycore`] — the tiled-platform substrate;
//! * [`mapwave_phoenix`] — the Phoenix++-style runtime model and the six
//!   instrumented applications;
//! * [`mapwave_sweep`] — the persistent, resumable design-space sweep
//!   engine with its content-addressed artifact store and query CLI.
//!
//! See the workspace `README.md` for a tour and `EXPERIMENTS.md` for the
//! paper-versus-measured record.

pub use mapwave;
pub use mapwave_faults;
pub use mapwave_manycore;
pub use mapwave_noc;
pub use mapwave_phoenix;
pub use mapwave_sweep;
pub use mapwave_vfi;

pub mod cli {
    //! Strict argument parsing shared by the repository examples.
    //!
    //! A missing argument falls back to its default; a *present but
    //! malformed* argument is a hard error carrying the example's usage
    //! line. (Several examples used to `parse().ok()` and silently run
    //! the default configuration on a typo — an easy way to benchmark
    //! the wrong experiment.)
    //!
    //! Besides positional arguments, every example accepts one flag:
    //! `--sim-threads N` (or `--sim-threads=N`), the NoC worker-thread
    //! count. The flag may appear anywhere on the command line — it is
    //! stripped before positional indexing — defaults to 1, and is a
    //! wall-clock knob only: results are bit-identical for every value.
    //! A duplicate flag, a missing value, or a value that is not a
    //! positive integer is a hard error.

    /// The command line split into `--sim-threads` occurrences (each
    /// occurrence's raw value, `None` when the flag is last with no
    /// value) and the remaining positional arguments, in order.
    fn split() -> (Vec<Option<String>>, Vec<String>) {
        let mut flags = Vec::new();
        let mut positional = Vec::new();
        let mut args = std::env::args().skip(1);
        while let Some(arg) = args.next() {
            if arg == "--sim-threads" {
                flags.push(args.next());
            } else if let Some(value) = arg.strip_prefix("--sim-threads=") {
                flags.push(Some(value.to_string()));
            } else {
                positional.push(arg);
            }
        }
        (flags, positional)
    }

    /// The `--sim-threads` worker-thread count: 1 when the flag is
    /// absent, otherwise its value.
    ///
    /// # Errors
    ///
    /// A duplicate flag, a flag with no value, and a value that is not
    /// an integer ≥ 1 all fail with a message echoing `usage`.
    pub fn sim_threads(usage: &str) -> Result<usize, String> {
        let (flags, _) = split();
        match flags.as_slice() {
            [] => Ok(1),
            [Some(raw)] => match raw.parse::<usize>() {
                Ok(n) if n >= 1 => Ok(n),
                _ => Err(format!(
                    "invalid --sim-threads value {raw:?} (want an integer >= 1)\nusage: {usage}"
                )),
            },
            [None] => Err(format!("--sim-threads needs a value\nusage: {usage}")),
            _ => Err(format!("duplicate --sim-threads flag\nusage: {usage}")),
        }
    }

    /// Positional argument `pos` (1-based, after the binary name, with
    /// the `--sim-threads` flag stripped), if present.
    pub fn positional(pos: usize) -> Option<String> {
        split().1.into_iter().nth(pos - 1)
    }

    /// Parses positional argument `pos` (1-based, after the binary name)
    /// with `parse`, falling back to `default` when the argument is
    /// absent.
    ///
    /// Returns an error naming the offending value and echoing `usage`
    /// when the argument is present but `parse` rejects it.
    pub fn arg_or<T>(
        pos: usize,
        default: T,
        what: &str,
        usage: &str,
        parse: impl FnOnce(&str) -> Option<T>,
    ) -> Result<T, String> {
        match positional(pos) {
            None => Ok(default),
            Some(raw) => {
                parse(&raw).ok_or_else(|| format!("invalid {what} {raw:?}\nusage: {usage}"))
            }
        }
    }

    /// [`arg_or`] for any [`FromStr`](std::str::FromStr) type.
    pub fn parsed_arg_or<T: std::str::FromStr>(
        pos: usize,
        default: T,
        what: &str,
        usage: &str,
    ) -> Result<T, String> {
        arg_or(pos, default, what, usage, |raw| raw.parse().ok())
    }

    /// Fails when any positional argument beyond position `last`
    /// (1-based) is present. Every example calls this after consuming
    /// its known positions, so a misspelled or unsupported flag errors
    /// with the usage line instead of silently running the default
    /// configuration.
    pub fn expect_no_args_past(last: usize, usage: &str) -> Result<(), String> {
        match positional(last + 1) {
            None => Ok(()),
            Some(extra) => Err(format!("unexpected argument {extra:?}\nusage: {usage}")),
        }
    }
}

//! # mapwave-repro
//!
//! Repository façade for the **mapwave** workspace — a from-scratch Rust
//! reproduction of *"Energy Efficient MapReduce with VFI-enabled Multicore
//! Platforms"* (DAC 2015).
//!
//! This crate re-exports the workspace members so repository-level
//! integration tests and examples can address the whole stack through one
//! dependency:
//!
//! * [`mapwave`] — the design flow, placement, full-system simulation and
//!   experiment reproductions (the paper's contribution);
//! * [`mapwave_noc`] — the cycle-accurate mesh / small-world / wireless
//!   NoC simulator;
//! * [`mapwave_vfi`] — VFI clustering, V/F assignment and power models;
//! * [`mapwave_manycore`] — the tiled-platform substrate;
//! * [`mapwave_phoenix`] — the Phoenix++-style runtime model and the six
//!   instrumented applications;
//! * [`mapwave_sweep`] — the persistent, resumable design-space sweep
//!   engine with its content-addressed artifact store and query CLI.
//!
//! See the workspace `README.md` for a tour and `EXPERIMENTS.md` for the
//! paper-versus-measured record.

pub use mapwave;
pub use mapwave_faults;
pub use mapwave_manycore;
pub use mapwave_noc;
pub use mapwave_phoenix;
pub use mapwave_sweep;
pub use mapwave_vfi;

pub mod cli {
    //! Strict argument parsing shared by the repository examples.
    //!
    //! A missing argument falls back to its default; a *present but
    //! malformed* argument is a hard error carrying the example's usage
    //! line. (Several examples used to `parse().ok()` and silently run
    //! the default configuration on a typo — an easy way to benchmark
    //! the wrong experiment.)
    //!
    //! Besides positional arguments, every example accepts two flags,
    //! each of which may appear anywhere on the command line (they are
    //! stripped before positional indexing):
    //!
    //! * `--sim-threads N` (or `--sim-threads=N`), the NoC worker-thread
    //!   count. Defaults to 1 and is a wall-clock knob only: results are
    //!   bit-identical for every value.
    //! * `--cores N` (or `--cores=N`), the die size. Must be a perfect
    //!   square with an even side (16, 64, 256, 1024, …) so the die can
    //!   be quartered into VFI quadrants; the examples default to the
    //!   paper's 64.
    //!
    //! Governed examples additionally accept:
    //!
    //! * `--power-cap W` (or `--power-cap=W`), the chip-level power cap
    //!   in watts enforced by the online DVFS governor;
    //! * `--epoch-cycles N`, the governor's sampling epoch in reference
    //!   cycles;
    //! * `--dram ideal|banked`, selecting the fixed-latency or the
    //!   banked memory-controller model.
    //!
    //! Examples that do not run the governor reject these three flags
    //! with a clear error (see [`forbid_governor_flags`]) instead of
    //! silently ignoring them.
    //!
    //! A duplicate flag, a missing value, or a malformed value is a
    //! hard error.

    /// Names of the recognised flags, indexed by the `FLAG_*` constants.
    const FLAG_NAMES: [&str; 5] = [
        "--sim-threads",
        "--cores",
        "--power-cap",
        "--epoch-cycles",
        "--dram",
    ];
    const FLAG_SIM_THREADS: usize = 0;
    const FLAG_CORES: usize = 1;
    const FLAG_POWER_CAP: usize = 2;
    const FLAG_EPOCH_CYCLES: usize = 3;
    const FLAG_DRAM: usize = 4;
    const FLAG_COUNT: usize = 5;

    /// The command line split into per-flag occurrence lists (each
    /// occurrence's raw value, `None` when the flag is last with no
    /// value) and the remaining positional arguments, in order.
    fn split() -> ([Vec<Option<String>>; FLAG_COUNT], Vec<String>) {
        let mut flags: [Vec<Option<String>>; FLAG_COUNT] = Default::default();
        let mut positional = Vec::new();
        let mut args = std::env::args().skip(1);
        while let Some(arg) = args.next() {
            if let Some(i) = FLAG_NAMES.iter().position(|f| *f == arg) {
                flags[i].push(args.next());
            } else if let Some((i, value)) = FLAG_NAMES
                .iter()
                .enumerate()
                .find_map(|(i, f)| Some((i, arg.strip_prefix(f)?.strip_prefix('=')?)))
            {
                flags[i].push(Some(value.to_string()));
            } else {
                positional.push(arg);
            }
        }
        (flags, positional)
    }

    /// At most one occurrence of flag `index`, or an error echoing
    /// `usage` on a duplicate flag or a flag with no value.
    fn flag_value(index: usize, usage: &str) -> Result<Option<String>, String> {
        let (flags, _) = split();
        let name = FLAG_NAMES[index];
        match &flags[index][..] {
            [] => Ok(None),
            [Some(raw)] => Ok(Some(raw.clone())),
            [None] => Err(format!("{name} needs a value\nusage: {usage}")),
            _ => Err(format!("duplicate {name} flag\nusage: {usage}")),
        }
    }

    /// The `--sim-threads` worker-thread count: 1 when the flag is
    /// absent, otherwise its value.
    ///
    /// # Errors
    ///
    /// A duplicate flag, a flag with no value, and a value that is not
    /// an integer ≥ 1 all fail with a message echoing `usage`.
    pub fn sim_threads(usage: &str) -> Result<usize, String> {
        match flag_value(FLAG_SIM_THREADS, usage)? {
            None => Ok(1),
            Some(raw) => match raw.parse::<usize>() {
                Ok(n) if n >= 1 => Ok(n),
                _ => Err(format!(
                    "invalid --sim-threads value {raw:?} (want an integer >= 1)\nusage: {usage}"
                )),
            },
        }
    }

    /// The `--cores` die size: `default` when the flag is absent,
    /// otherwise its value. Accepted values are perfect squares with an
    /// even side (16, 64, 144, 256, …, 1024) so the die can be laid out
    /// as the quadrant-clustered squares the design flow generates; use
    /// [`die_side`] for the side length.
    ///
    /// # Errors
    ///
    /// A duplicate flag, a flag with no value, and a value that is not
    /// such a square all fail with a message echoing `usage`.
    pub fn cores(default: usize, usage: &str) -> Result<usize, String> {
        match flag_value(FLAG_CORES, usage)? {
            None => Ok(default),
            Some(raw) => match raw.parse::<usize>() {
                Ok(n) if n >= 4 && die_side(n) * die_side(n) == n && die_side(n).is_multiple_of(2) => {
                    Ok(n)
                }
                _ => Err(format!(
                    "invalid --cores value {raw:?} (want a perfect square with an even side: 16, 64, 256, 1024, ...)\nusage: {usage}"
                )),
            },
        }
    }

    /// The `--power-cap` chip power budget in watts, if the flag is
    /// present.
    ///
    /// # Errors
    ///
    /// A duplicate flag, a flag with no value, and a value that is not a
    /// finite number > 0 all fail with a message echoing `usage`.
    pub fn power_cap(usage: &str) -> Result<Option<f64>, String> {
        match flag_value(FLAG_POWER_CAP, usage)? {
            None => Ok(None),
            Some(raw) => match raw.parse::<f64>() {
                Ok(w) if w.is_finite() && w > 0.0 => Ok(Some(w)),
                _ => Err(format!(
                    "invalid --power-cap value {raw:?} (want watts > 0)\nusage: {usage}"
                )),
            },
        }
    }

    /// The `--epoch-cycles` governor sampling epoch: `default` when the
    /// flag is absent, otherwise its value.
    ///
    /// # Errors
    ///
    /// A duplicate flag, a flag with no value, and a value that is not
    /// an integer ≥ 1000 (sub-millisecond epochs would outrun any real
    /// power-telemetry loop) all fail with a message echoing `usage`.
    pub fn epoch_cycles(default: u64, usage: &str) -> Result<u64, String> {
        match flag_value(FLAG_EPOCH_CYCLES, usage)? {
            None => Ok(default),
            Some(raw) => match raw.parse::<u64>() {
                Ok(n) if n >= 1000 => Ok(n),
                _ => Err(format!(
                    "invalid --epoch-cycles value {raw:?} (want an integer >= 1000)\nusage: {usage}"
                )),
            },
        }
    }

    /// The `--dram` memory-model selector: `false` (ideal, the default)
    /// or `true` (banked controller model).
    ///
    /// # Errors
    ///
    /// A duplicate flag, a flag with no value, and any value other than
    /// `ideal` or `banked` all fail with a message echoing `usage`.
    pub fn dram_banked(usage: &str) -> Result<bool, String> {
        match flag_value(FLAG_DRAM, usage)?.as_deref() {
            None | Some("ideal") => Ok(false),
            Some("banked") => Ok(true),
            Some(raw) => Err(format!(
                "invalid --dram value {raw:?} (want \"ideal\" or \"banked\")\nusage: {usage}"
            )),
        }
    }

    /// Fails when any governor flag (`--power-cap`, `--epoch-cycles`,
    /// `--dram`) is present. Examples that do not run the governed
    /// system call this so the flags error loudly instead of being
    /// silently ignored.
    pub fn forbid_governor_flags(usage: &str) -> Result<(), String> {
        let (flags, _) = split();
        for i in [FLAG_POWER_CAP, FLAG_EPOCH_CYCLES, FLAG_DRAM] {
            if !flags[i].is_empty() {
                return Err(format!(
                    "{} is not supported by this example\nusage: {usage}",
                    FLAG_NAMES[i]
                ));
            }
        }
        Ok(())
    }

    /// The square die side for a core count accepted by [`cores`].
    pub fn die_side(cores: usize) -> usize {
        let mut side = (cores as f64).sqrt().round() as usize;
        while side * side > cores {
            side -= 1;
        }
        while (side + 1) * (side + 1) <= cores {
            side += 1;
        }
        side
    }

    /// Positional argument `pos` (1-based, after the binary name, with
    /// the recognised flags stripped), if present.
    pub fn positional(pos: usize) -> Option<String> {
        split().1.into_iter().nth(pos - 1)
    }

    /// Parses positional argument `pos` (1-based, after the binary name)
    /// with `parse`, falling back to `default` when the argument is
    /// absent.
    ///
    /// Returns an error naming the offending value and echoing `usage`
    /// when the argument is present but `parse` rejects it.
    pub fn arg_or<T>(
        pos: usize,
        default: T,
        what: &str,
        usage: &str,
        parse: impl FnOnce(&str) -> Option<T>,
    ) -> Result<T, String> {
        match positional(pos) {
            None => Ok(default),
            Some(raw) => {
                parse(&raw).ok_or_else(|| format!("invalid {what} {raw:?}\nusage: {usage}"))
            }
        }
    }

    /// [`arg_or`] for any [`FromStr`](std::str::FromStr) type.
    pub fn parsed_arg_or<T: std::str::FromStr>(
        pos: usize,
        default: T,
        what: &str,
        usage: &str,
    ) -> Result<T, String> {
        arg_or(pos, default, what, usage, |raw| raw.parse().ok())
    }

    /// Fails when any positional argument beyond position `last`
    /// (1-based) is present. Every example calls this after consuming
    /// its known positions, so a misspelled or unsupported flag errors
    /// with the usage line instead of silently running the default
    /// configuration.
    pub fn expect_no_args_past(last: usize, usage: &str) -> Result<(), String> {
        match positional(last + 1) {
            None => Ok(()),
            Some(extra) => Err(format!("unexpected argument {extra:?}\nusage: {usage}")),
        }
    }
}

//! # mapwave-repro
//!
//! Repository façade for the **mapwave** workspace — a from-scratch Rust
//! reproduction of *"Energy Efficient MapReduce with VFI-enabled Multicore
//! Platforms"* (DAC 2015).
//!
//! This crate re-exports the workspace members so repository-level
//! integration tests and examples can address the whole stack through one
//! dependency:
//!
//! * [`mapwave`] — the design flow, placement, full-system simulation and
//!   experiment reproductions (the paper's contribution);
//! * [`mapwave_noc`] — the cycle-accurate mesh / small-world / wireless
//!   NoC simulator;
//! * [`mapwave_vfi`] — VFI clustering, V/F assignment and power models;
//! * [`mapwave_manycore`] — the tiled-platform substrate;
//! * [`mapwave_phoenix`] — the Phoenix++-style runtime model and the six
//!   instrumented applications;
//! * [`mapwave_sweep`] — the persistent, resumable design-space sweep
//!   engine with its content-addressed artifact store and query CLI.
//!
//! See the workspace `README.md` for a tour and `EXPERIMENTS.md` for the
//! paper-versus-measured record.

pub use mapwave;
pub use mapwave_faults;
pub use mapwave_manycore;
pub use mapwave_noc;
pub use mapwave_phoenix;
pub use mapwave_sweep;
pub use mapwave_vfi;

pub mod cli {
    //! Strict positional-argument parsing shared by the repository
    //! examples.
    //!
    //! A missing argument falls back to its default; a *present but
    //! malformed* argument is a hard error carrying the example's usage
    //! line. (Several examples used to `parse().ok()` and silently run
    //! the default configuration on a typo — an easy way to benchmark
    //! the wrong experiment.)

    /// Parses positional argument `pos` (1-based, after the binary name)
    /// with `parse`, falling back to `default` when the argument is
    /// absent.
    ///
    /// Returns an error naming the offending value and echoing `usage`
    /// when the argument is present but `parse` rejects it.
    pub fn arg_or<T>(
        pos: usize,
        default: T,
        what: &str,
        usage: &str,
        parse: impl FnOnce(&str) -> Option<T>,
    ) -> Result<T, String> {
        match std::env::args().nth(pos) {
            None => Ok(default),
            Some(raw) => {
                parse(&raw).ok_or_else(|| format!("invalid {what} {raw:?}\nusage: {usage}"))
            }
        }
    }

    /// [`arg_or`] for any [`FromStr`](std::str::FromStr) type.
    pub fn parsed_arg_or<T: std::str::FromStr>(
        pos: usize,
        default: T,
        what: &str,
        usage: &str,
    ) -> Result<T, String> {
        arg_or(pos, default, what, usage, |raw| raw.parse().ok())
    }

    /// Fails when any argument beyond position `last` (1-based) is
    /// present. Every example calls this after consuming its known
    /// positions, so a misspelled or unsupported flag errors with the
    /// usage line instead of silently running the default configuration.
    pub fn expect_no_args_past(last: usize, usage: &str) -> Result<(), String> {
        match std::env::args().nth(last + 1) {
            None => Ok(()),
            Some(extra) => Err(format!("unexpected argument {extra:?}\nusage: {usage}")),
        }
    }
}

//! The on-disk artifact store: content-addressed blobs plus an append-only
//! manifest.
//!
//! Layout under the store root:
//!
//! ```text
//! <root>/spec.txt            the canonical SweepSpec encoding
//! <root>/manifest.txt        append-only cell ledger (see below)
//! <root>/artifacts/<hex>.art content-addressed record blobs
//! ```
//!
//! Blobs are named by the stable hash of their bytes, so writing the same
//! record twice is a no-op and a resumed sweep can never produce a
//! different file for a cell it already completed. The manifest is the
//! single source of truth for sweep progress: one `cell` line per decided
//! cell, appended strictly in cell-index order by the engine's checkpoint
//! committer, never rewritten. Killing a sweep mid-flight therefore leaves
//! a valid store — the manifest simply ends early, and resume picks up at
//! the first unrecorded index.

use std::collections::BTreeMap;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use mapwave::orchestrator::ArtifactSink;
use mapwave::{FaultRunReport, RunReport};
use mapwave_harness::hash::{CacheKey, StableHasher};
use mapwave_harness::telemetry;

use crate::spec::SweepSpec;

/// Header of the manifest file (followed by the spec key).
const MANIFEST_HEADER_PREFIX: &str = "mapwave-sweep manifest v1 spec ";

/// The decided state of one cell, as recorded in the manifest.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CellState {
    /// Completed: its record blob is `artifacts/<content_key>.art`.
    Ok {
        /// Content hash of the encoded record (also its blob filename).
        content_key: CacheKey,
        /// Length of the encoded record in bytes.
        len: u64,
    },
    /// Dead-lettered after exhausting every attempt.
    DeadLetter {
        /// How many attempts were made before giving up.
        attempts: u32,
    },
}

/// One parsed manifest line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ManifestEntry {
    /// The cell's index in the spec's canonical enumeration.
    pub index: usize,
    /// The cell's semantic key ([`crate::spec::SweepCell::key`]).
    pub cell_key: CacheKey,
    /// The decided state.
    pub state: CellState,
}

/// A parsed manifest: the spec key it was written for and every decided
/// cell, keyed by index.
#[derive(Debug, Clone)]
pub struct Manifest {
    /// Key of the spec the manifest belongs to.
    pub spec_key: CacheKey,
    /// Decided cells by index.
    pub entries: BTreeMap<usize, ManifestEntry>,
}

impl Manifest {
    /// Number of completed cells.
    pub fn completed(&self) -> usize {
        self.entries
            .values()
            .filter(|e| matches!(e.state, CellState::Ok { .. }))
            .count()
    }

    /// Number of dead-lettered cells.
    pub fn dead_lettered(&self) -> usize {
        self.entries.len() - self.completed()
    }
}

fn hex_key(hex: &str) -> Result<CacheKey, String> {
    u128::from_str_radix(hex, 16)
        .map(CacheKey)
        .map_err(|e| format!("bad key {hex:?}: {e}"))
}

/// Stable content hash of a byte string (blob addressing).
pub fn content_key(bytes: &[u8]) -> CacheKey {
    let mut h = StableHasher::new();
    h.write(bytes);
    h.finish()
}

/// A sweep store rooted at one directory.
#[derive(Debug)]
pub struct ArtifactStore {
    root: PathBuf,
}

impl ArtifactStore {
    /// Opens (creating if necessary) a store at `root`.
    ///
    /// # Errors
    ///
    /// Propagates directory-creation failures.
    pub fn open(root: impl Into<PathBuf>) -> io::Result<Self> {
        let root = root.into();
        fs::create_dir_all(root.join("artifacts"))?;
        Ok(ArtifactStore { root })
    }

    /// The store's root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// Path of the manifest file.
    pub fn manifest_path(&self) -> PathBuf {
        self.root.join("manifest.txt")
    }

    /// Path of the persisted spec.
    pub fn spec_path(&self) -> PathBuf {
        self.root.join("spec.txt")
    }

    fn blob_path(&self, key: CacheKey) -> PathBuf {
        self.root
            .join("artifacts")
            .join(format!("{}.art", key.to_hex()))
    }

    /// Persists the sweep spec (no-op if an identical spec is already
    /// stored).
    ///
    /// # Errors
    ///
    /// Fails if a *different* spec is already stored at this root, or on
    /// I/O failure.
    pub fn write_spec(&self, spec: &SweepSpec) -> io::Result<()> {
        let text = spec.encode();
        match fs::read_to_string(self.spec_path()) {
            Ok(existing) if existing == text => Ok(()),
            Ok(_) => Err(io::Error::new(
                io::ErrorKind::AlreadyExists,
                format!(
                    "store {} already holds a different sweep spec",
                    self.root.display()
                ),
            )),
            Err(e) if e.kind() == io::ErrorKind::NotFound => {
                write_atomic(&self.spec_path(), text.as_bytes())
            }
            Err(e) => Err(e),
        }
    }

    /// Reads back the persisted sweep spec.
    ///
    /// # Errors
    ///
    /// Fails on I/O failure or a malformed spec file.
    pub fn read_spec(&self) -> io::Result<SweepSpec> {
        let text = fs::read_to_string(self.spec_path())?;
        SweepSpec::decode(&text).map_err(|e| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("corrupt spec at {}: {e}", self.spec_path().display()),
            )
        })
    }

    /// Writes `text` as a content-addressed blob and returns its key and
    /// byte length. Idempotent: re-writing identical content touches
    /// nothing.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures.
    pub fn put_blob(&self, text: &str) -> io::Result<(CacheKey, u64)> {
        let key = content_key(text.as_bytes());
        let path = self.blob_path(key);
        if !path.exists() {
            write_atomic(&path, text.as_bytes())?;
        }
        Ok((key, text.len() as u64))
    }

    /// Reads a blob back and verifies its content hash. Counts
    /// `sweep.artifact_hits` on success — the telemetry signal that a
    /// query was answered from the store rather than by re-simulation.
    ///
    /// # Errors
    ///
    /// Fails on I/O failure or a hash mismatch (corrupt blob).
    pub fn read_blob(&self, key: CacheKey) -> io::Result<String> {
        let path = self.blob_path(key);
        let text = fs::read_to_string(&path)?;
        if content_key(text.as_bytes()) != key {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("artifact {} fails its content hash", path.display()),
            ));
        }
        telemetry::count("sweep.artifact_hits", 1);
        Ok(text)
    }

    /// Appends the manifest header (only valid on an empty manifest).
    ///
    /// # Errors
    ///
    /// Propagates I/O failures.
    pub fn write_manifest_header(&self, spec_key: CacheKey) -> io::Result<()> {
        append_line(
            &self.manifest_path(),
            &format!("{MANIFEST_HEADER_PREFIX}{}", spec_key.to_hex()),
        )
    }

    /// Appends one decided-cell line to the manifest.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures.
    pub fn append_manifest_entry(&self, entry: &ManifestEntry) -> io::Result<()> {
        let line = match entry.state {
            CellState::Ok { content_key, len } => format!(
                "cell {} {} ok {} {}",
                entry.index,
                entry.cell_key.to_hex(),
                content_key.to_hex(),
                len
            ),
            CellState::DeadLetter { attempts } => format!(
                "cell {} {} dlq {}",
                entry.index,
                entry.cell_key.to_hex(),
                attempts
            ),
        };
        append_line(&self.manifest_path(), &line)
    }

    /// Parses the manifest; `Ok(None)` if none has been written yet.
    ///
    /// # Errors
    ///
    /// Fails on I/O failure or a malformed manifest.
    pub fn load_manifest(&self) -> io::Result<Option<Manifest>> {
        let path = self.manifest_path();
        let text = match fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(e),
        };
        parse_manifest(&text).map(Some).map_err(|e| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("corrupt manifest at {}: {e}", path.display()),
            )
        })
    }
}

fn parse_manifest(text: &str) -> Result<Manifest, String> {
    let mut lines = text.lines();
    let header = lines.next().ok_or("empty manifest")?;
    let spec_hex = header
        .strip_prefix(MANIFEST_HEADER_PREFIX)
        .ok_or_else(|| format!("bad manifest header {header:?}"))?;
    let spec_key = hex_key(spec_hex)?;
    let mut entries = BTreeMap::new();
    for line in lines {
        let mut parts = line.split(' ');
        if parts.next() != Some("cell") {
            return Err(format!("bad manifest line {line:?}"));
        }
        let index: usize = parts
            .next()
            .ok_or("missing cell index")?
            .parse()
            .map_err(|e| format!("bad cell index in {line:?}: {e}"))?;
        let cell_key = hex_key(parts.next().ok_or("missing cell key")?)?;
        let state = match parts.next() {
            Some("ok") => CellState::Ok {
                content_key: hex_key(parts.next().ok_or("missing content key")?)?,
                len: parts
                    .next()
                    .ok_or("missing blob length")?
                    .parse()
                    .map_err(|e| format!("bad blob length in {line:?}: {e}"))?,
            },
            Some("dlq") => CellState::DeadLetter {
                attempts: parts
                    .next()
                    .ok_or("missing attempt count")?
                    .parse()
                    .map_err(|e| format!("bad attempt count in {line:?}: {e}"))?,
            },
            other => return Err(format!("bad cell state {other:?} in {line:?}")),
        };
        if parts.next().is_some() {
            return Err(format!("trailing tokens in {line:?}"));
        }
        if entries
            .insert(
                index,
                ManifestEntry {
                    index,
                    cell_key,
                    state,
                },
            )
            .is_some()
        {
            return Err(format!("duplicate manifest entry for cell {index}"));
        }
    }
    Ok(Manifest { spec_key, entries })
}

/// `tmp + rename` write, so readers never observe a partial file.
fn write_atomic(path: &Path, bytes: &[u8]) -> io::Result<()> {
    let tmp = path.with_extension("tmp");
    fs::write(&tmp, bytes)?;
    fs::rename(&tmp, path)
}

fn append_line(path: &Path, line: &str) -> io::Result<()> {
    use std::io::Write;
    let mut file = fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)?;
    writeln!(file, "{line}")
}

/// [`ArtifactSink`] implementation: freshly computed core-stage reports are
/// captured as content-addressed side blobs (`sidecar.txt` maps stage key →
/// blob). This is deliberately *separate* from the engine's manifest — the
/// manifest records sweep cells only, in index order; sidecar entries
/// arrive in whatever order the orchestrator computes stages.
impl ArtifactSink for ArtifactStore {
    fn record_run(&self, key: CacheKey, report: &RunReport) {
        self.record_sidecar("run", key, &stage_summary(report));
    }

    fn record_fault_run(&self, key: CacheKey, report: &FaultRunReport) {
        self.record_sidecar("fault-run", key, &stage_summary(&report.report));
    }
}

/// Minimal byte-stable projection of a stage report for sidecar blobs.
fn stage_summary(report: &RunReport) -> String {
    format!(
        "mapwave-stage v1\nlabel {}\nexec_seconds {:016x}\nedp {:016x}\n",
        report.label,
        report.exec_seconds.to_bits(),
        report.edp.to_bits()
    )
}

impl ArtifactStore {
    fn record_sidecar(&self, kind: &str, key: CacheKey, text: &str) {
        // Sinks must never panic the evaluation: failures just drop the
        // sidecar entry (the manifest and cell blobs are unaffected).
        if let Ok((blob, _)) = self.put_blob(text) {
            let _ = append_line(
                &self.root.join("sidecar.txt"),
                &format!("{kind} {} {}", key.to_hex(), blob.to_hex()),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_store(tag: &str) -> ArtifactStore {
        let dir =
            std::env::temp_dir().join(format!("mapwave-sweep-store-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        ArtifactStore::open(dir).expect("open store")
    }

    #[test]
    fn blobs_are_content_addressed_and_idempotent() {
        let store = temp_store("blob");
        let (k1, len) = store.put_blob("hello artifact").unwrap();
        let (k2, _) = store.put_blob("hello artifact").unwrap();
        assert_eq!(k1, k2);
        assert_eq!(len, 14);
        assert_eq!(store.read_blob(k1).unwrap(), "hello artifact");
        let (k3, _) = store.put_blob("different").unwrap();
        assert_ne!(k1, k3);
        let _ = fs::remove_dir_all(store.root());
    }

    #[test]
    fn corrupt_blob_fails_its_hash() {
        let store = temp_store("corrupt");
        let (key, _) = store.put_blob("pristine bytes").unwrap();
        fs::write(store.blob_path(key), "tampered").unwrap();
        let err = store.read_blob(key).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        let _ = fs::remove_dir_all(store.root());
    }

    #[test]
    fn manifest_roundtrips() {
        let store = temp_store("manifest");
        assert!(store.load_manifest().unwrap().is_none());
        let spec_key = CacheKey(0xABCD);
        store.write_manifest_header(spec_key).unwrap();
        store
            .append_manifest_entry(&ManifestEntry {
                index: 0,
                cell_key: CacheKey(1),
                state: CellState::Ok {
                    content_key: CacheKey(2),
                    len: 99,
                },
            })
            .unwrap();
        store
            .append_manifest_entry(&ManifestEntry {
                index: 1,
                cell_key: CacheKey(3),
                state: CellState::DeadLetter { attempts: 4 },
            })
            .unwrap();
        let m = store.load_manifest().unwrap().expect("manifest exists");
        assert_eq!(m.spec_key, spec_key);
        assert_eq!(m.entries.len(), 2);
        assert_eq!(m.completed(), 1);
        assert_eq!(m.dead_lettered(), 1);
        assert_eq!(
            m.entries[&0].state,
            CellState::Ok {
                content_key: CacheKey(2),
                len: 99
            }
        );
        let _ = fs::remove_dir_all(store.root());
    }

    #[test]
    fn spec_conflicts_are_rejected() {
        let store = temp_store("spec");
        store.write_spec(&SweepSpec::smoke()).unwrap();
        store.write_spec(&SweepSpec::smoke()).unwrap(); // idempotent
        let err = store.write_spec(&SweepSpec::paper()).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::AlreadyExists);
        assert_eq!(store.read_spec().unwrap(), SweepSpec::smoke());
        let _ = fs::remove_dir_all(store.root());
    }
}

//! The sweep engine: executes a [`SweepSpec`]'s pending cells through the
//! deterministic worker pool, checkpointing every decided cell to the
//! store before the next one is committed.
//!
//! Reliability model, per cell:
//!
//! * up to [`EngineOptions::max_attempts`] attempts, with linear backoff
//!   between them ([`EngineOptions::backoff_base_ms`] × attempt number);
//! * an attempt can fail *organically* (the design flow rejects the
//!   configuration) or via the injected [`CellFailureModel`] — the
//!   engine-level failure hook that lets tests and CI rehearse crashes
//!   deterministically (`mapwave_faults` cell streams make the same cell
//!   fail the same way on every machine);
//! * a cell that exhausts its attempts is **dead-lettered**: recorded in
//!   the manifest with its attempt count, never retried by `resume`, and
//!   surfaced by `status`/`query` so the sweep completes instead of
//!   wedging.
//!
//! Commit order is the resume-identity linchpin: results are committed
//! strictly in cell-index order by the calling thread (see
//! [`mapwave_harness::jobs::JobGraph::run_checkpointed`]) no matter how
//! many workers ran, so the manifest of an interrupted-then-resumed sweep
//! is byte-identical to an uninterrupted one.

use std::io;

use mapwave::design_flow::DesignFlow;
use mapwave::governed::{run_system_governed, run_system_governed_with_faults};
use mapwave::orchestrator::{design_cached, run_cached_with_sink, RunVariant};
use mapwave::run_system_with_faults;
use mapwave_faults::{CellFailureModel, FaultConfig, FaultPlan};
use mapwave_governor::GovernorConfig;
use mapwave_harness::jobs::JobGraph;
use mapwave_harness::telemetry;

use crate::codec::{CellCoords, CellRecord};
use crate::spec::{SweepCell, SweepSpec};
use crate::store::{ArtifactStore, CellState, ManifestEntry};

/// Execution knobs of one engine run.
#[derive(Debug, Clone)]
pub struct EngineOptions {
    /// Worker threads for cell execution.
    pub jobs: usize,
    /// Attempts per cell before dead-lettering (≥ 1).
    pub max_attempts: u32,
    /// Base of the linear inter-attempt backoff in milliseconds
    /// (attempt *n* sleeps `n × backoff_base_ms`; `0` disables sleeping,
    /// which tests use).
    pub backoff_base_ms: u64,
    /// Injected engine-level failures (deterministic; see
    /// [`CellFailureModel`]). [`CellFailureModel::none`] for production.
    pub exec_faults: CellFailureModel,
    /// Stop after committing this many cells (simulates a kill for resume
    /// tests and the CI smoke job). `None` runs to completion.
    pub commit_limit: Option<usize>,
    /// NoC worker threads *inside* each cell's system simulation
    /// (`PlatformConfig::sim_threads`). A wall-clock knob only — results
    /// and cell keys are identical for every value — so prefer raising
    /// [`EngineOptions::jobs`] first; this helps when a sweep has fewer
    /// pending cells than cores.
    pub sim_threads: usize,
}

impl Default for EngineOptions {
    fn default() -> Self {
        EngineOptions {
            jobs: mapwave_harness::jobs::available_parallelism(),
            max_attempts: 3,
            backoff_base_ms: 10,
            exec_faults: CellFailureModel::none(),
            commit_limit: None,
            sim_threads: 1,
        }
    }
}

/// Outcome of one executed cell (before it is committed).
enum CellOutcome {
    /// Completed; the encoded record is ready to persist.
    Done {
        /// Encoded [`CellRecord`] bytes.
        encoded: String,
    },
    /// Every attempt failed.
    Failed {
        /// Attempts made.
        attempts: u32,
    },
}

/// Summary of one [`SweepEngine::run`] call.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunSummary {
    /// Cells committed as completed this run.
    pub completed: usize,
    /// Cells dead-lettered this run.
    pub dead_lettered: usize,
    /// Cells still pending (non-zero only when a commit limit stopped the
    /// run early).
    pub pending: usize,
}

/// A sweep bound to a store.
#[derive(Debug)]
pub struct SweepEngine {
    store: ArtifactStore,
    spec: SweepSpec,
    opts: EngineOptions,
}

impl SweepEngine {
    /// Starts (or re-opens) a sweep of `spec` at `root`.
    ///
    /// # Errors
    ///
    /// Fails if the store already holds a *different* spec, or on I/O
    /// failure.
    pub fn create(
        root: impl Into<std::path::PathBuf>,
        spec: SweepSpec,
        opts: EngineOptions,
    ) -> io::Result<Self> {
        let store = ArtifactStore::open(root)?;
        store.write_spec(&spec)?;
        Ok(SweepEngine { store, spec, opts })
    }

    /// Re-opens an existing sweep, reading the spec it was created with
    /// from the store — resume never trusts the caller to repeat it.
    ///
    /// # Errors
    ///
    /// Fails if the store has no (or a corrupt) spec, or on I/O failure.
    pub fn resume(root: impl Into<std::path::PathBuf>, opts: EngineOptions) -> io::Result<Self> {
        let store = ArtifactStore::open(root)?;
        let spec = store.read_spec()?;
        Ok(SweepEngine { store, spec, opts })
    }

    /// The sweep's spec.
    pub fn spec(&self) -> &SweepSpec {
        &self.spec
    }

    /// The underlying store.
    pub fn store(&self) -> &ArtifactStore {
        &self.store
    }

    /// Executes every still-pending cell, committing each decided cell to
    /// the manifest in index order. Idempotent: already-decided cells
    /// (completed *or* dead-lettered) are never re-run.
    ///
    /// # Errors
    ///
    /// Fails on store I/O errors or a manifest written for a different
    /// spec.
    pub fn run(&self) -> io::Result<RunSummary> {
        let _span = telemetry::span("sweep.run");
        let spec_key = self.spec.key();
        let manifest = self.store.load_manifest()?;
        let decided: std::collections::BTreeSet<usize> = match &manifest {
            Some(m) => {
                if m.spec_key != spec_key {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        "manifest belongs to a different sweep spec",
                    ));
                }
                m.entries.keys().copied().collect()
            }
            None => {
                self.store.write_manifest_header(spec_key)?;
                Default::default()
            }
        };

        let pending: Vec<SweepCell> = self
            .spec
            .cells()
            .into_iter()
            .filter(|c| !decided.contains(&c.index))
            .collect();
        let total_pending = pending.len();
        if total_pending == 0 {
            return Ok(RunSummary {
                completed: 0,
                dead_lettered: 0,
                pending: 0,
            });
        }

        // One job per pending cell, added in ascending index order so the
        // checkpoint committer sees them in exactly that order.
        let mut graph: JobGraph<(SweepCell, CellOutcome)> = JobGraph::new();
        for cell in pending {
            let opts = self.opts.clone();
            graph.add(cell.label(), Vec::new(), move |_| {
                (cell, execute_cell(&cell, &opts))
            });
        }

        let mut completed = 0usize;
        let mut dead_lettered = 0usize;
        let mut commit_error: Option<io::Error> = None;
        let limit = self.opts.commit_limit.unwrap_or(usize::MAX);
        let committed = graph.run_checkpointed(self.opts.jobs, |_, (cell, outcome)| {
            let result = self.commit_cell(cell, outcome);
            match result {
                Ok(CellState::Ok { .. }) => completed += 1,
                Ok(CellState::DeadLetter { .. }) => dead_lettered += 1,
                Err(e) => {
                    commit_error = Some(e);
                    return false;
                }
            }
            completed + dead_lettered < limit
        });
        if let Some(e) = commit_error {
            return Err(e);
        }

        Ok(RunSummary {
            completed,
            dead_lettered,
            pending: total_pending - committed,
        })
    }

    fn commit_cell(&self, cell: &SweepCell, outcome: &CellOutcome) -> io::Result<CellState> {
        let state = match outcome {
            CellOutcome::Done { encoded } => {
                let (content_key, len) = self.store.put_blob(encoded)?;
                telemetry::count("sweep.cells_completed", 1);
                CellState::Ok { content_key, len }
            }
            CellOutcome::Failed { attempts } => {
                telemetry::count("sweep.cells_dead_lettered", 1);
                CellState::DeadLetter {
                    attempts: *attempts,
                }
            }
        };
        self.store.append_manifest_entry(&ManifestEntry {
            index: cell.index,
            cell_key: cell.key(),
            state: state.clone(),
        })?;
        Ok(state)
    }
}

/// Runs one cell with the engine's retry/backoff policy.
fn execute_cell(cell: &SweepCell, opts: &EngineOptions) -> CellOutcome {
    let max_attempts = opts.max_attempts.max(1);
    for attempt in 0..max_attempts {
        if attempt > 0 && opts.backoff_base_ms > 0 {
            std::thread::sleep(std::time::Duration::from_millis(
                opts.backoff_base_ms * attempt as u64,
            ));
        }
        let injected_failure = opts.exec_faults.attempt_fails(cell.index as u64, attempt);
        let outcome = if injected_failure {
            None
        } else {
            attempt_cell(cell, opts)
        };
        match outcome {
            Some(record) => {
                return CellOutcome::Done {
                    encoded: record.encode(),
                }
            }
            None if attempt + 1 < max_attempts => {
                telemetry::count("sweep.cells_retried", 1);
            }
            None => {}
        }
    }
    CellOutcome::Failed {
        attempts: max_attempts,
    }
}

/// One attempt at a cell; `None` means the attempt failed organically.
fn attempt_cell(cell: &SweepCell, opts: &EngineOptions) -> Option<CellRecord> {
    let cfg = cell.config().with_sim_threads(opts.sim_threads.max(1));
    let flow = DesignFlow::new(cfg).ok()?;
    let design = design_cached(&flow, cell.app);
    let coords = CellCoords {
        label: cell.label(),
        app: cell.app.name().to_string(),
        variant: cell.variant.name().to_string(),
        preset: cell.preset.name().to_string(),
        scale: cell.scale,
        workload_seed: cell.workload_seed,
        fault_rate: cell.fault_rate,
        fault_seed: cell.fault_seed,
    };
    if let Some(cap_w) = cell.power_cap_w {
        // Governed cells replay the measured run under the power cap.
        let gov = GovernorConfig::new(cap_w).with_epoch_cycles(cell.epoch_cycles);
        let spec = cell.variant.spec(&flow, &design);
        let report = if cell.fault_rate == 0.0 {
            run_system_governed(&spec, &design.workload, flow.config(), flow.power(), &gov)
        } else {
            let cfg =
                FaultConfig::at_rate(cell.fault_rate, cell.fault_seed).for_cell(cell.index as u64);
            let plan = FaultPlan::build(&cfg);
            run_system_governed_with_faults(
                &spec,
                &design.workload,
                flow.config(),
                flow.power(),
                &gov,
                &plan,
            )
        };
        Some(CellRecord::from_governed(coords, &report))
    } else if cell.fault_rate == 0.0 {
        let report = run_cached_with_sink(&flow, &design, cell.variant, None);
        Some(CellRecord::from_run(coords, &report))
    } else {
        // Faulted cells derive their plan from the sweep's root seed via
        // the cell's own stream, so every cell degrades independently yet
        // reproducibly.
        let cfg =
            FaultConfig::at_rate(cell.fault_rate, cell.fault_seed).for_cell(cell.index as u64);
        let plan = FaultPlan::build(&cfg);
        let spec = cell.variant.spec(&flow, &design);
        let report =
            run_system_with_faults(&spec, &design.workload, flow.config(), flow.power(), &plan);
        Some(CellRecord::from_fault_run(coords, &report))
    }
}

/// Maps a [`RunVariant`] name back to the variant (CLI convenience).
pub fn variant_named(name: &str) -> Option<RunVariant> {
    crate::spec::parse_variant(name)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::fs;

    fn temp_root(tag: &str) -> std::path::PathBuf {
        let dir =
            std::env::temp_dir().join(format!("mapwave-sweep-engine-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn fast_opts() -> EngineOptions {
        EngineOptions {
            jobs: 2,
            backoff_base_ms: 0,
            ..EngineOptions::default()
        }
    }

    #[test]
    fn smoke_sweep_completes_every_cell() {
        let root = temp_root("complete");
        let engine = SweepEngine::create(&root, SweepSpec::smoke(), fast_opts()).unwrap();
        let summary = engine.run().unwrap();
        assert_eq!(summary.completed, 4);
        assert_eq!(summary.dead_lettered, 0);
        assert_eq!(summary.pending, 0);

        let manifest = engine.store().load_manifest().unwrap().unwrap();
        assert_eq!(manifest.completed(), 4);
        // Every recorded blob decodes back to a record for its cell.
        for (idx, entry) in &manifest.entries {
            let CellState::Ok { content_key, .. } = entry.state else {
                panic!("cell {idx} not ok");
            };
            let text = engine.store().read_blob(content_key).unwrap();
            let record = crate::codec::CellRecord::decode(&text).unwrap();
            assert_eq!(record.app, "WC");
        }

        // Re-running is a no-op.
        let again = engine.run().unwrap();
        assert_eq!(again.completed, 0);
        assert_eq!(again.pending, 0);
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn governed_cells_sweep_resumably_with_cache_hits() {
        let root = temp_root("governed");
        let mut spec = SweepSpec::smoke();
        // One cap next to every anchor: 2 variants × 2 rates × 2 = 8 cells.
        spec.power_caps = vec![6.0];
        spec.epoch_cycles = 20_000;
        let kill_early = EngineOptions {
            commit_limit: Some(5),
            ..fast_opts()
        };
        let engine = SweepEngine::create(&root, spec, kill_early).unwrap();
        let first = engine.run().unwrap();
        assert_eq!(first.completed, 5);
        assert_eq!(first.pending, 3);

        // Resume finishes only the remaining cells, then re-running is a
        // pure cache hit.
        let engine = SweepEngine::resume(&root, fast_opts()).unwrap();
        assert_eq!(engine.spec().power_caps, vec![6.0]);
        let second = engine.run().unwrap();
        assert_eq!(second.completed, 3);
        assert_eq!(second.pending, 0);
        assert_eq!(engine.run().unwrap().completed, 0);

        // Every governed record answers the EDP-vs-cap question straight
        // from the store.
        let records = crate::query::load_records(engine.store()).unwrap();
        assert_eq!(records.len(), 8);
        let governed: Vec<_> = records.iter().filter_map(|r| r.governed.as_ref()).collect();
        assert_eq!(governed.len(), 4);
        for g in governed {
            assert_eq!(g.power_cap_w, 6.0);
            assert!(g.cap_respected, "sweep cells must honour their cap");
            assert!(g.governed_edp > 0.0);
        }
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn mismatched_spec_is_rejected() {
        let root = temp_root("mismatch");
        SweepEngine::create(&root, SweepSpec::smoke(), fast_opts())
            .unwrap()
            .run()
            .unwrap();
        let err = SweepEngine::create(&root, SweepSpec::paper(), fast_opts()).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::AlreadyExists);
        let _ = fs::remove_dir_all(&root);
    }
}

//! Answering questions from the store — no simulation, only artifacts.
//!
//! [`load_records`] decodes every completed cell's blob (each read counts
//! `sweep.artifact_hits`); [`render_table`] turns a filtered, sorted view
//! of those records into a fixed-width text table, and [`render_status`]
//! summarises sweep progress against the spec. Everything here is a pure
//! function of the store's bytes: the same store renders the same report
//! on every machine.

use std::io;

use crate::codec::CellRecord;
use crate::store::{ArtifactStore, CellState};

/// The scalar a query table reports per cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Metric {
    /// Full-system energy–delay product (J·s).
    Edp,
    /// Total (core + network) energy (J).
    Energy,
    /// Execution time (s).
    Time,
    /// Average NoC packet latency (cycles).
    Latency,
    /// EDP saving over the `nvfi` baseline at the same coordinates
    /// (`1 - edp / baseline_edp`), in percent.
    EdpSaving,
    /// Full-system EDP of the power-governed execution (J·s); `n/a` for
    /// ungoverned cells. With a caps dimension in the sweep this renders
    /// the EDP-vs-cap curve.
    GovernedEdp,
}

impl Metric {
    /// The stable name used on the CLI.
    pub fn name(self) -> &'static str {
        match self {
            Metric::Edp => "edp",
            Metric::Energy => "energy",
            Metric::Time => "time",
            Metric::Latency => "latency",
            Metric::EdpSaving => "edp-saving",
            Metric::GovernedEdp => "governed-edp",
        }
    }

    /// Parses a metric name (case-insensitive).
    pub fn parse(name: &str) -> Option<Self> {
        match name.to_ascii_lowercase().as_str() {
            "edp" => Some(Metric::Edp),
            "energy" => Some(Metric::Energy),
            "time" => Some(Metric::Time),
            "latency" => Some(Metric::Latency),
            "edp-saving" => Some(Metric::EdpSaving),
            "governed-edp" => Some(Metric::GovernedEdp),
            _ => None,
        }
    }

    /// All metrics (help text).
    pub const ALL: [Metric; 6] = [
        Metric::Edp,
        Metric::Energy,
        Metric::Time,
        Metric::Latency,
        Metric::EdpSaving,
        Metric::GovernedEdp,
    ];
}

/// Row filters of a query.
#[derive(Debug, Clone, Default)]
pub struct QueryFilter {
    /// Keep only this application (by name, case-insensitive).
    pub app: Option<String>,
    /// Keep only this variant (by name, case-insensitive).
    pub variant: Option<String>,
}

impl QueryFilter {
    fn keeps(&self, r: &CellRecord) -> bool {
        self.app
            .as_deref()
            .is_none_or(|a| r.app.eq_ignore_ascii_case(a))
            && self
                .variant
                .as_deref()
                .is_none_or(|v| r.variant.eq_ignore_ascii_case(v))
    }
}

/// Decodes every completed cell of the store, in cell-index order.
///
/// # Errors
///
/// Fails on I/O errors, a missing manifest, or a corrupt blob.
pub fn load_records(store: &ArtifactStore) -> io::Result<Vec<CellRecord>> {
    let manifest = store.load_manifest()?.ok_or_else(|| {
        io::Error::new(
            io::ErrorKind::NotFound,
            format!("no sweep manifest at {}", store.root().display()),
        )
    })?;
    let mut records = Vec::with_capacity(manifest.entries.len());
    for entry in manifest.entries.values() {
        if let CellState::Ok { content_key, .. } = entry.state {
            let text = store.read_blob(content_key)?;
            let record = CellRecord::decode(&text).map_err(|e| {
                io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("corrupt artifact for cell {}: {e}", entry.index),
                )
            })?;
            records.push(record);
        }
    }
    Ok(records)
}

/// The metric value of one record; `None` when the metric needs a baseline
/// the store does not hold (EDP saving without the matching `nvfi` cell).
fn metric_value(metric: Metric, r: &CellRecord, records: &[CellRecord]) -> Option<f64> {
    match metric {
        Metric::Edp => Some(r.edp),
        Metric::Energy => Some(r.total_energy_j()),
        Metric::Time => Some(r.exec_seconds),
        Metric::Latency => Some(r.net_avg_latency),
        Metric::EdpSaving => {
            let baseline = records.iter().find(|b| {
                b.variant == "nvfi"
                    && b.app == r.app
                    && b.preset == r.preset
                    && b.scale.to_bits() == r.scale.to_bits()
                    && b.workload_seed == r.workload_seed
                    && b.fault_rate.to_bits() == r.fault_rate.to_bits()
            })?;
            Some((1.0 - r.edp / baseline.edp) * 100.0)
        }
        Metric::GovernedEdp => r.governed.as_ref().map(|g| g.governed_edp),
    }
}

/// Renders the query result as a fixed-width table, sorted by
/// (app, variant, scale, fault rate, power cap — ungoverned anchors
/// first) — a pure function of the records.
pub fn render_table(records: &[CellRecord], filter: &QueryFilter, metric: Metric) -> String {
    let mut rows: Vec<&CellRecord> = records.iter().filter(|r| filter.keeps(r)).collect();
    rows.sort_by(|a, b| {
        (a.app.as_str(), a.variant.as_str(), a.scale.to_bits())
            .cmp(&(b.app.as_str(), b.variant.as_str(), b.scale.to_bits()))
            .then(a.fault_rate.total_cmp(&b.fault_rate))
            .then_with(|| {
                let cap = |r: &CellRecord| r.governed.as_ref().map(|g| g.power_cap_w.to_bits());
                cap(a).cmp(&cap(b))
            })
    });
    let mut out = format!(
        "{:<8} {:<18} {:>7} {:>6} {:>7} {:>14}  faults\n",
        "app",
        "variant",
        "scale",
        "rate",
        "cap",
        metric.name()
    );
    for r in &rows {
        let value = match metric_value(metric, r, records) {
            Some(v) if metric == Metric::EdpSaving => format!("{v:>+13.2}%"),
            Some(v) => format!("{v:>14.6e}"),
            None => format!("{:>14}", "n/a"),
        };
        let cap = match &r.governed {
            Some(g) => format!("{:>7.3}", g.power_cap_w),
            None => format!("{:>7}", "-"),
        };
        out.push_str(&format!(
            "{:<8} {:<18} {:>7} {:>6} {} {}  {}\n",
            r.app,
            r.variant,
            r.scale,
            r.fault_rate,
            cap,
            value,
            r.faults.injected()
        ));
    }
    if rows.is_empty() {
        out.push_str("(no matching cells)\n");
    }
    out
}

/// Renders sweep progress against its spec.
///
/// # Errors
///
/// Propagates store I/O failures.
pub fn render_status(store: &ArtifactStore) -> io::Result<String> {
    let spec = store.read_spec()?;
    let (completed, dead_lettered, dlq_cells) = match store.load_manifest()? {
        Some(m) => {
            let dlq: Vec<String> = m
                .entries
                .values()
                .filter_map(|e| match e.state {
                    CellState::DeadLetter { attempts } => {
                        Some(format!("  cell {} after {} attempts", e.index, attempts))
                    }
                    CellState::Ok { .. } => None,
                })
                .collect();
            (m.completed(), m.dead_lettered(), dlq)
        }
        None => (0, 0, Vec::new()),
    };
    let total = spec.cell_count();
    let mut out = format!(
        "sweep {} ({} preset)\ncells: {total} total, {completed} completed, \
         {dead_lettered} dead-lettered, {} pending\n",
        spec.key().to_hex(),
        spec.preset.name(),
        total - completed - dead_lettered,
    );
    if !dlq_cells.is_empty() {
        out.push_str("dead-letter queue:\n");
        for line in dlq_cells {
            out.push_str(&line);
            out.push('\n');
        }
    }
    Ok(out)
}

/// Convenience: parses filters/metric and renders in one step.
///
/// # Errors
///
/// Fails on store errors or an unknown metric name.
pub fn run_query(
    store: &ArtifactStore,
    filter: &QueryFilter,
    metric_name: &str,
) -> io::Result<String> {
    let metric = Metric::parse(metric_name).ok_or_else(|| {
        io::Error::new(
            io::ErrorKind::InvalidInput,
            format!(
                "unknown metric {metric_name:?} (expected one of: {})",
                Metric::ALL
                    .iter()
                    .map(|m| m.name())
                    .collect::<Vec<_>>()
                    .join(", ")
            ),
        )
    })?;
    let records = load_records(store)?;
    Ok(render_table(&records, filter, metric))
}

#[cfg(test)]
mod tests {
    use super::*;
    use mapwave_faults::FaultStats;

    fn record(app: &str, variant: &str, rate: f64, edp: f64) -> CellRecord {
        CellRecord {
            label: format!("cell/{app}/{variant}"),
            app: app.into(),
            variant: variant.into(),
            preset: "small".into(),
            scale: 0.002,
            workload_seed: 1,
            fault_rate: rate,
            fault_seed: 2,
            exec_seconds: 1.0,
            core_energy_j: 2.0,
            net_energy_j: 0.5,
            edp,
            net_avg_latency: 10.0,
            packets_delivered: 100,
            wireless_flit_hops: 10,
            wire_flit_hops: 90,
            faults: FaultStats::default(),
            governed: None,
        }
    }

    #[test]
    fn edp_saving_uses_the_nvfi_baseline() {
        let records = vec![
            record("WC", "nvfi", 0.0, 4.0),
            record("WC", "winoc-max-wireless", 0.0, 1.0),
        ];
        let table = render_table(
            &records,
            &QueryFilter {
                variant: Some("winoc-max-wireless".into()),
                ..Default::default()
            },
            Metric::EdpSaving,
        );
        assert!(table.contains("+75.00%"), "75% saving expected:\n{table}");
    }

    #[test]
    fn missing_baseline_renders_na() {
        let records = vec![record("WC", "vfi-mesh", 0.0, 1.0)];
        let table = render_table(&records, &QueryFilter::default(), Metric::EdpSaving);
        assert!(table.contains("n/a"), "no baseline → n/a:\n{table}");
    }

    #[test]
    fn filters_restrict_rows() {
        let records = vec![
            record("WC", "nvfi", 0.0, 4.0),
            record("KMEANS", "nvfi", 0.0, 2.0),
        ];
        let table = render_table(
            &records,
            &QueryFilter {
                app: Some("wc".into()),
                ..Default::default()
            },
            Metric::Edp,
        );
        assert!(table.contains("WC"));
        assert!(!table.contains("KMEANS"));
    }

    #[test]
    fn table_is_deterministic_and_sorted() {
        let records = vec![
            record("WC", "vfi-mesh", 0.1, 1.0),
            record("WC", "nvfi", 0.0, 4.0),
            record("KMEANS", "nvfi", 0.0, 2.0),
        ];
        let a = render_table(&records, &QueryFilter::default(), Metric::Edp);
        let b = render_table(&records, &QueryFilter::default(), Metric::Edp);
        assert_eq!(a, b);
        let kmeans = a.find("KMEANS").unwrap();
        let wc = a.find("WC").unwrap();
        assert!(kmeans < wc, "rows sorted by app:\n{a}");
    }

    #[test]
    fn governed_edp_distinguishes_capped_cells_from_anchors() {
        let anchor = record("WC", "vfi-mesh", 0.0, 2.0);
        let mut capped = record("WC", "vfi-mesh", 0.0, 2.0);
        capped.governed = Some(crate::codec::GovernedCellMetrics {
            power_cap_w: 3.0,
            governed_exec_seconds: 1.2,
            governed_core_energy_j: 1.8,
            governed_edp: 2.5,
            peak_power_w: 2.9,
            epochs: 10,
            throttles: 2,
            cap_respected: true,
        });
        let table = render_table(
            &[anchor, capped],
            &QueryFilter::default(),
            Metric::GovernedEdp,
        );
        assert!(
            table.contains("n/a"),
            "anchors have no governed EDP:\n{table}"
        );
        assert!(table.contains("3.000"), "cap column expected:\n{table}");
        assert!(table.contains("2.5"), "governed EDP expected:\n{table}");
    }

    #[test]
    fn metric_names_roundtrip() {
        for m in Metric::ALL {
            assert_eq!(Metric::parse(m.name()), Some(m));
        }
        assert_eq!(Metric::parse("bogus"), None);
    }
}

//! `mapwave-sweep` — persistent design-space sweeps over the mapwave
//! evaluation.
//!
//! ```text
//! mapwave-sweep run    --store DIR [--preset small|paper] [--scales S,..]
//!                      [--apps A,..] [--variants V,..] [--rates R,..]
//!                      [--workload-seeds N,..] [--fault-seed N]
//!                      [--caps W,..] [--epoch-cycles N] [--dram ideal|banked]
//!                      [--jobs J] [--sim-threads N] [--limit N]
//!                      [--max-attempts N] [--backoff-ms N]
//!                      [--fail-rate R --fail-seed N]
//! mapwave-sweep resume --store DIR [--jobs J] [--limit N] ...
//! mapwave-sweep status --store DIR
//! mapwave-sweep query  --store DIR [--metric M] [--app A] [--variant V]
//! mapwave-sweep help
//! ```
//!
//! `run` starts (or continues) the sweep described by the flags; every
//! completed cell is checkpointed before the next commits, so a killed run
//! loses at most the in-flight cells. `resume` re-reads the spec the store
//! was created with — no sweep flags needed, or allowed. `query` answers
//! purely from stored artifacts (`--metric` is one of `edp`, `energy`,
//! `time`, `latency`, `edp-saving`). `--fail-rate`/`--fail-seed` inject
//! deterministic engine-level cell failures for rehearsing the retry and
//! dead-letter machinery. `--caps` adds a power-governed cell per listed
//! chip cap (W) next to every ungoverned anchor, `--epoch-cycles` sets
//! the governor's sampling epoch, and `--dram banked` routes L2 misses
//! through the banked memory-controller model.

use mapwave_faults::CellFailureModel;
use mapwave_sweep::prelude::*;
use mapwave_sweep::spec::{parse_app, parse_variant};

struct Args {
    command: String,
    store: Option<String>,
    preset: Preset,
    scales: Vec<f64>,
    workload_seeds: Vec<u64>,
    apps: Vec<mapwave_phoenix::apps::App>,
    variants: Vec<mapwave::orchestrator::RunVariant>,
    rates: Vec<f64>,
    fault_seed: u64,
    power_caps: Vec<f64>,
    epoch_cycles: u64,
    dram_banked: bool,
    jobs: usize,
    sim_threads: usize,
    limit: Option<usize>,
    max_attempts: u32,
    backoff_ms: u64,
    fail_rate: f64,
    fail_seed: u64,
    metric: String,
    filter_app: Option<String>,
    filter_variant: Option<String>,
}

fn parse_args() -> Result<Args, String> {
    let smoke = SweepSpec::smoke();
    let mut args = Args {
        command: String::from("help"),
        store: None,
        preset: smoke.preset,
        scales: smoke.scales,
        workload_seeds: smoke.workload_seeds,
        apps: smoke.apps,
        variants: smoke.variants,
        rates: smoke.fault_rates,
        fault_seed: smoke.fault_seed,
        power_caps: smoke.power_caps,
        epoch_cycles: smoke.epoch_cycles,
        dram_banked: smoke.dram_banked,
        jobs: mapwave_harness::jobs::available_parallelism(),
        sim_threads: 1,
        limit: None,
        max_attempts: 3,
        backoff_ms: 10,
        fail_rate: 0.0,
        fail_seed: 0,
        metric: String::from("edp"),
        filter_app: None,
        filter_variant: None,
    };
    let mut it = std::env::args().skip(1);
    if let Some(c) = it.next() {
        args.command = c;
    }
    let value = |flag: &str, it: &mut dyn Iterator<Item = String>| {
        it.next().ok_or(format!("{flag} needs a value"))
    };
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--store" => args.store = Some(value("--store", &mut it)?),
            "--preset" => {
                let raw = value("--preset", &mut it)?;
                args.preset = Preset::parse(&raw).ok_or(format!("unknown preset '{raw}'"))?;
            }
            "--scales" => args.scales = parse_f64_list(&value("--scales", &mut it)?, "scale")?,
            "--rates" => args.rates = parse_f64_list(&value("--rates", &mut it)?, "rate")?,
            "--workload-seeds" => {
                args.workload_seeds =
                    parse_u64_list(&value("--workload-seeds", &mut it)?, "workload seed")?
            }
            "--apps" => {
                args.apps = value("--apps", &mut it)?
                    .split(',')
                    .map(|t| parse_app(t).ok_or(format!("unknown app '{t}'")))
                    .collect::<Result<_, _>>()?
            }
            "--variants" => {
                args.variants = value("--variants", &mut it)?
                    .split(',')
                    .map(|t| parse_variant(t).ok_or(format!("unknown variant '{t}'")))
                    .collect::<Result<_, _>>()?
            }
            "--fault-seed" => args.fault_seed = parse_num(&value("--fault-seed", &mut it)?)?,
            "--caps" => {
                args.power_caps = parse_f64_list(&value("--caps", &mut it)?, "power cap")?;
                if args.power_caps.iter().any(|&c| !(c.is_finite() && c > 0.0)) {
                    return Err("--caps wants watts > 0".into());
                }
            }
            "--epoch-cycles" => {
                args.epoch_cycles = parse_num(&value("--epoch-cycles", &mut it)?)?;
                if args.epoch_cycles < 1000 {
                    return Err("--epoch-cycles needs at least 1000 cycles".into());
                }
            }
            "--dram" => {
                args.dram_banked = match value("--dram", &mut it)?.as_str() {
                    "ideal" => false,
                    "banked" => true,
                    other => {
                        return Err(format!("--dram wants 'ideal' or 'banked', got '{other}'"))
                    }
                }
            }
            "--jobs" => {
                args.jobs = parse_num(&value("--jobs", &mut it)?)?;
                if args.jobs == 0 {
                    return Err("--jobs needs at least one worker".into());
                }
            }
            "--sim-threads" => {
                args.sim_threads = parse_num(&value("--sim-threads", &mut it)?)?;
                if args.sim_threads == 0 {
                    return Err("--sim-threads needs at least one thread".into());
                }
            }
            "--limit" => args.limit = Some(parse_num(&value("--limit", &mut it)?)?),
            "--max-attempts" => {
                args.max_attempts = parse_num(&value("--max-attempts", &mut it)?)?;
                if args.max_attempts == 0 {
                    return Err("--max-attempts needs at least one attempt".into());
                }
            }
            "--backoff-ms" => args.backoff_ms = parse_num(&value("--backoff-ms", &mut it)?)?,
            "--fail-rate" => {
                args.fail_rate = value("--fail-rate", &mut it)?
                    .parse()
                    .map_err(|e| format!("bad fail rate: {e}"))?
            }
            "--fail-seed" => args.fail_seed = parse_num(&value("--fail-seed", &mut it)?)?,
            "--metric" => args.metric = value("--metric", &mut it)?,
            "--app" => args.filter_app = Some(value("--app", &mut it)?),
            "--variant" => args.filter_variant = Some(value("--variant", &mut it)?),
            other => return Err(format!("unknown argument '{other}'")),
        }
    }
    Ok(args)
}

fn parse_num<T: std::str::FromStr>(raw: &str) -> Result<T, String>
where
    T::Err: std::fmt::Display,
{
    raw.parse().map_err(|e| format!("bad value '{raw}': {e}"))
}

fn parse_f64_list(raw: &str, what: &str) -> Result<Vec<f64>, String> {
    raw.split(',')
        .map(|t| t.parse().map_err(|e| format!("bad {what} '{t}': {e}")))
        .collect()
}

fn parse_u64_list(raw: &str, what: &str) -> Result<Vec<u64>, String> {
    raw.split(',')
        .map(|t| t.parse().map_err(|e| format!("bad {what} '{t}': {e}")))
        .collect()
}

fn engine_options(args: &Args) -> EngineOptions {
    EngineOptions {
        jobs: args.jobs,
        max_attempts: args.max_attempts,
        backoff_base_ms: args.backoff_ms,
        exec_faults: if args.fail_rate > 0.0 {
            CellFailureModel::new(args.fail_rate, args.fail_seed)
        } else {
            CellFailureModel::none()
        },
        commit_limit: args.limit,
        sim_threads: args.sim_threads,
    }
}

fn store_dir(args: &Args) -> Result<&str, String> {
    args.store
        .as_deref()
        .ok_or_else(|| "--store DIR is required".into())
}

fn print_summary(summary: &RunSummary) {
    println!(
        "sweep: {} completed, {} dead-lettered, {} pending",
        summary.completed, summary.dead_lettered, summary.pending
    );
}

fn run(args: &Args) -> Result<(), String> {
    match args.command.as_str() {
        "run" => {
            let spec = SweepSpec {
                preset: args.preset,
                scales: args.scales.clone(),
                workload_seeds: args.workload_seeds.clone(),
                apps: args.apps.clone(),
                variants: args.variants.clone(),
                fault_rates: args.rates.clone(),
                fault_seed: args.fault_seed,
                power_caps: args.power_caps.clone(),
                epoch_cycles: args.epoch_cycles,
                dram_banked: args.dram_banked,
            };
            let engine = SweepEngine::create(store_dir(args)?, spec, engine_options(args))
                .map_err(|e| e.to_string())?;
            print_summary(&engine.run().map_err(|e| e.to_string())?);
            Ok(())
        }
        "resume" => {
            let engine = SweepEngine::resume(store_dir(args)?, engine_options(args))
                .map_err(|e| e.to_string())?;
            print_summary(&engine.run().map_err(|e| e.to_string())?);
            Ok(())
        }
        "status" => {
            let store = ArtifactStore::open(store_dir(args)?).map_err(|e| e.to_string())?;
            print!("{}", render_status(&store).map_err(|e| e.to_string())?);
            Ok(())
        }
        "query" => {
            let store = ArtifactStore::open(store_dir(args)?).map_err(|e| e.to_string())?;
            let filter = QueryFilter {
                app: args.filter_app.clone(),
                variant: args.filter_variant.clone(),
            };
            print!(
                "{}",
                run_query(&store, &filter, &args.metric).map_err(|e| e.to_string())?
            );
            Ok(())
        }
        "help" | "--help" | "-h" => {
            print!("{}", HELP);
            Ok(())
        }
        other => Err(format!("unknown command '{other}' (try 'help')")),
    }
}

const HELP: &str = "\
mapwave-sweep — persistent design-space sweeps over the mapwave evaluation

  mapwave-sweep run    --store DIR [--preset small|paper] [--scales S,..]
                       [--apps A,..] [--variants V,..] [--rates R,..]
                       [--workload-seeds N,..] [--fault-seed N]
                       [--caps W,..] [--epoch-cycles N] [--dram ideal|banked]
                       [--jobs J] [--sim-threads N] [--limit N]
                       [--max-attempts N] [--backoff-ms N]
                       [--fail-rate R --fail-seed N]
  mapwave-sweep resume --store DIR [--jobs J] [--limit N] ...
  mapwave-sweep status --store DIR
  mapwave-sweep query  --store DIR [--metric M] [--app A] [--variant V]

metrics: edp, energy, time, latency, edp-saving, governed-edp
apps:    MM, KMEANS, PCA, HIST, WC, LR
variants: nvfi, vfi1-mesh, vfi-mesh, winoc-min-hop, winoc-max-wireless
";

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("mapwave-sweep: {e}");
            std::process::exit(2);
        }
    };
    if let Err(e) = run(&args) {
        eprintln!("mapwave-sweep: {e}");
        std::process::exit(1);
    }
}

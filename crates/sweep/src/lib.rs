//! # mapwave-sweep
//!
//! A persistent, resumable, fault-tolerant design-space sweep engine for
//! the mapwave evaluation, with a content-addressed artifact store and a
//! query CLI.
//!
//! The crate promotes the harness's ephemeral job graph + stage caches
//! into a durable service:
//!
//! * [`spec`] — declarative [`spec::SweepSpec`]s enumerate into stably
//!   ordered, stably keyed [`spec::SweepCell`]s;
//! * [`engine`] — [`engine::SweepEngine`] executes pending cells through
//!   the deterministic worker pool with per-cell retry/backoff and a
//!   dead-letter queue, checkpointing each decided cell in index order;
//! * [`store`] — [`store::ArtifactStore`] keeps content-addressed record
//!   blobs behind an append-only manifest, so a killed sweep resumes
//!   byte-identically;
//! * [`codec`] — bit-exact text encoding of per-cell results;
//! * [`query`] — EDP / energy / survivability tables served purely from
//!   cached artifacts (watch `sweep.artifact_hits`).
//!
//! The `mapwave-sweep` binary fronts all of it:
//!
//! ```text
//! mapwave-sweep run    --store out/sweep --preset small --scales 0.002
//! mapwave-sweep resume --store out/sweep
//! mapwave-sweep status --store out/sweep
//! mapwave-sweep query  --store out/sweep --metric edp-saving --app WC
//! ```
//!
//! # Example
//!
//! ```no_run
//! use mapwave_sweep::prelude::*;
//!
//! let opts = EngineOptions::default();
//! let engine = SweepEngine::create("out/sweep", SweepSpec::smoke(), opts)?;
//! let summary = engine.run()?;
//! assert_eq!(summary.pending, 0);
//! println!("{}", render_status(engine.store())?);
//! # Ok::<(), std::io::Error>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod codec;
pub mod engine;
pub mod query;
pub mod spec;
pub mod store;

pub use codec::{CellRecord, GovernedCellMetrics};
pub use engine::{EngineOptions, RunSummary, SweepEngine};
pub use query::{load_records, render_status, render_table, run_query, Metric, QueryFilter};
pub use spec::{Preset, SweepCell, SweepSpec};
pub use store::{ArtifactStore, CellState, Manifest, ManifestEntry};

/// Convenient glob import.
pub mod prelude {
    pub use crate::codec::{CellRecord, GovernedCellMetrics};
    pub use crate::engine::{EngineOptions, RunSummary, SweepEngine};
    pub use crate::query::{
        load_records, render_status, render_table, run_query, Metric, QueryFilter,
    };
    pub use crate::spec::{Preset, SweepCell, SweepSpec};
    pub use crate::store::{ArtifactStore, CellState, Manifest, ManifestEntry};
}

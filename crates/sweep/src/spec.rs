//! Declarative sweep specifications and their cell enumeration.
//!
//! A [`SweepSpec`] names the full cross-product of an evaluation sweep —
//! platform preset × input scale × workload seed × application × system
//! variant × fault rate — without running anything. [`SweepSpec::cells`]
//! expands it into a deterministic, stably ordered list of [`SweepCell`]s;
//! each cell is keyed by the stable hash of everything its result depends
//! on (the [`mapwave::orchestrator::config_key`] of its platform
//! configuration plus the cell's discrete coordinates), so a cell's
//! identity survives process restarts, machine changes, and spec
//! re-parsing.
//!
//! Specs have a canonical text form ([`SweepSpec::encode`] /
//! [`SweepSpec::decode`]) that the artifact store persists next to the
//! manifest: a resumed sweep re-reads the spec it was started with instead
//! of trusting the caller to repeat it.

use mapwave::config::PlatformConfig;
use mapwave::orchestrator::{config_key, RunVariant};
use mapwave_governor::GovernorConfig;
use mapwave_harness::hash::{stable_hash_of, CacheKey};
use mapwave_manycore::dram::DramConfig;
use mapwave_phoenix::apps::App;

/// The base platform a sweep runs on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Preset {
    /// [`PlatformConfig::small`] — the 16-core smoke platform.
    Small,
    /// [`PlatformConfig::paper`] — the paper's 64-core platform.
    Paper,
}

impl Preset {
    /// The stable name used in spec encodings and CLI flags.
    pub fn name(self) -> &'static str {
        match self {
            Preset::Small => "small",
            Preset::Paper => "paper",
        }
    }

    /// Parses a preset name (case-insensitive).
    pub fn parse(name: &str) -> Option<Self> {
        match name.to_ascii_lowercase().as_str() {
            "small" => Some(Preset::Small),
            "paper" => Some(Preset::Paper),
            _ => None,
        }
    }

    /// The base configuration of the preset (scale/seed still to apply).
    pub fn config(self) -> PlatformConfig {
        match self {
            Preset::Small => PlatformConfig::small(),
            Preset::Paper => PlatformConfig::paper(),
        }
    }
}

/// A declarative sweep: the cross-product of every listed dimension.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepSpec {
    /// Base platform.
    pub preset: Preset,
    /// Input scales relative to the paper's Table-1 dataset sizes.
    pub scales: Vec<f64>,
    /// Workload-generation seeds.
    pub workload_seeds: Vec<u64>,
    /// Applications.
    pub apps: Vec<App>,
    /// System variants per application.
    pub variants: Vec<RunVariant>,
    /// Injected fault rates (`0.0` = the clean anchor).
    pub fault_rates: Vec<f64>,
    /// Root fault seed; every faulted cell derives its own schedule from
    /// this through [`mapwave_faults::cell_seed`].
    pub fault_seed: u64,
    /// Chip power caps (W) for the governed EDP-vs-cap dimension. Every
    /// coordinate always gets its ungoverned anchor cell; each listed cap
    /// adds one governed cell next to it. Empty (the default) keeps
    /// legacy specs, keys and manifests byte-identical.
    pub power_caps: Vec<f64>,
    /// Governor sampling epoch for capped cells, in reference cycles.
    pub epoch_cycles: u64,
    /// Whether cells route L2 misses through the banked
    /// memory-controller model instead of the ideal fixed-latency DRAM.
    pub dram_banked: bool,
}

impl SweepSpec {
    /// The seconds-scale smoke sweep CI and the tests run: one app on the
    /// small platform, two variants, a clean and a faulted point — four
    /// cells.
    pub fn smoke() -> Self {
        SweepSpec {
            preset: Preset::Small,
            scales: vec![0.002],
            workload_seeds: vec![0xDAC_2015],
            apps: vec![App::WordCount],
            variants: vec![RunVariant::Nvfi, RunVariant::WinocMaxWireless],
            fault_rates: vec![0.0, 0.1],
            fault_seed: 0xFA17,
            power_caps: Vec::new(),
            epoch_cycles: GovernorConfig::DEFAULT_EPOCH_CYCLES,
            dram_banked: false,
        }
    }

    /// The paper-shaped sweep: all six applications × all five system
    /// variants on the 64-core platform, with a clean anchor and two fault
    /// rates (90 cells at the default scale).
    pub fn paper() -> Self {
        SweepSpec {
            preset: Preset::Paper,
            scales: vec![0.02],
            workload_seeds: vec![0xDAC_2015],
            apps: App::ALL.to_vec(),
            variants: RunVariant::ALL.to_vec(),
            fault_rates: vec![0.0, 0.05, 0.1],
            fault_seed: 0xFA17,
            power_caps: Vec::new(),
            epoch_cycles: GovernorConfig::DEFAULT_EPOCH_CYCLES,
            dram_banked: false,
        }
    }

    /// Total number of cells the spec expands to.
    pub fn cell_count(&self) -> usize {
        self.scales.len()
            * self.workload_seeds.len()
            * self.apps.len()
            * self.variants.len()
            * self.fault_rates.len()
            * (1 + self.power_caps.len())
    }

    /// Expands the cross-product in canonical order (scale, seed, app,
    /// variant, rate — outermost first). Cell indices are positions in
    /// this order and are what seeds each cell's fault stream, so the
    /// enumeration order is part of the persisted format.
    pub fn cells(&self) -> Vec<SweepCell> {
        let mut cells = Vec::with_capacity(self.cell_count());
        for &scale in &self.scales {
            for &workload_seed in &self.workload_seeds {
                for &app in &self.apps {
                    for &variant in &self.variants {
                        for &fault_rate in &self.fault_rates {
                            let caps = std::iter::once(None)
                                .chain(self.power_caps.iter().copied().map(Some));
                            for power_cap_w in caps {
                                cells.push(SweepCell {
                                    index: cells.len(),
                                    preset: self.preset,
                                    scale,
                                    workload_seed,
                                    app,
                                    variant,
                                    fault_rate,
                                    fault_seed: self.fault_seed,
                                    power_cap_w,
                                    epoch_cycles: self.epoch_cycles,
                                    dram_banked: self.dram_banked,
                                });
                            }
                        }
                    }
                }
            }
        }
        cells
    }

    /// The stable key of the spec — the hash of its canonical encoding.
    pub fn key(&self) -> CacheKey {
        stable_hash_of(self.encode().as_str())
    }

    /// Canonical text form (also what the store persists as `spec.txt`).
    pub fn encode(&self) -> String {
        let f64s = |v: &[f64]| {
            v.iter()
                .map(|x| format!("{:016x}", x.to_bits()))
                .collect::<Vec<_>>()
                .join(",")
        };
        let u64s = |v: &[u64]| v.iter().map(u64::to_string).collect::<Vec<_>>().join(",");
        let mut out = String::from("mapwave-sweep spec v1\n");
        out.push_str(&format!("preset {}\n", self.preset.name()));
        out.push_str(&format!("scales {}\n", f64s(&self.scales)));
        out.push_str(&format!("workload_seeds {}\n", u64s(&self.workload_seeds)));
        out.push_str(&format!(
            "apps {}\n",
            self.apps
                .iter()
                .map(|a| a.name())
                .collect::<Vec<_>>()
                .join(",")
        ));
        out.push_str(&format!(
            "variants {}\n",
            self.variants
                .iter()
                .map(|v| v.name())
                .collect::<Vec<_>>()
                .join(",")
        ));
        out.push_str(&format!("fault_rates {}\n", f64s(&self.fault_rates)));
        out.push_str(&format!("fault_seed {}\n", self.fault_seed));
        // Governed dimensions are encoded only when they deviate from the
        // defaults, so every pre-governor spec (and its key) is unchanged.
        if !self.power_caps.is_empty() {
            out.push_str(&format!("power_caps {}\n", f64s(&self.power_caps)));
        }
        if self.epoch_cycles != GovernorConfig::DEFAULT_EPOCH_CYCLES {
            out.push_str(&format!("epoch_cycles {}\n", self.epoch_cycles));
        }
        if self.dram_banked {
            out.push_str("dram banked\n");
        }
        out
    }

    /// Parses [`SweepSpec::encode`]'s output.
    ///
    /// # Errors
    ///
    /// Returns a description of the first malformed line.
    pub fn decode(text: &str) -> Result<Self, String> {
        let mut lines = text.lines();
        if lines.next() != Some("mapwave-sweep spec v1") {
            return Err("not a mapwave-sweep spec (bad header)".into());
        }
        let mut field = |name: &str| -> Result<String, String> {
            let line = lines.next().ok_or_else(|| format!("missing {name}"))?;
            line.strip_prefix(name)
                .and_then(|rest| rest.strip_prefix(' '))
                .map(str::to_string)
                .ok_or_else(|| format!("expected `{name} ...`, found {line:?}"))
        };
        let preset = Preset::parse(&field("preset")?).ok_or("unknown preset")?;
        let parse_f64s = |s: String, what: &str| -> Result<Vec<f64>, String> {
            s.split(',')
                .map(|t| {
                    u64::from_str_radix(t, 16)
                        .map(f64::from_bits)
                        .map_err(|e| format!("bad {what} {t:?}: {e}"))
                })
                .collect()
        };
        let parse_u64s = |s: String, what: &str| -> Result<Vec<u64>, String> {
            s.split(',')
                .map(|t| t.parse().map_err(|e| format!("bad {what} {t:?}: {e}")))
                .collect()
        };
        let scales = parse_f64s(field("scales")?, "scale")?;
        let workload_seeds = parse_u64s(field("workload_seeds")?, "workload seed")?;
        let apps = field("apps")?
            .split(',')
            .map(|t| parse_app(t).ok_or_else(|| format!("unknown app {t:?}")))
            .collect::<Result<Vec<_>, _>>()?;
        let variants = field("variants")?
            .split(',')
            .map(|t| parse_variant(t).ok_or_else(|| format!("unknown variant {t:?}")))
            .collect::<Result<Vec<_>, _>>()?;
        let fault_rates = parse_f64s(field("fault_rates")?, "fault rate")?;
        let fault_seed = field("fault_seed")?
            .parse()
            .map_err(|e| format!("bad fault seed: {e}"))?;
        // `field` borrowed `lines` mutably; shadow it away so the trailing
        // optional-line loop below can take over the iterator.
        #[allow(clippy::drop_non_drop)]
        drop(field);
        // Trailing governed lines are optional: their absence means the
        // defaults (a pre-governor spec).
        let mut power_caps = Vec::new();
        let mut epoch_cycles = GovernorConfig::DEFAULT_EPOCH_CYCLES;
        let mut dram_banked = false;
        for line in lines {
            if let Some(rest) = line.strip_prefix("power_caps ") {
                power_caps = parse_f64s(rest.to_string(), "power cap")?;
            } else if let Some(rest) = line.strip_prefix("epoch_cycles ") {
                epoch_cycles = rest.parse().map_err(|e| format!("bad epoch_cycles: {e}"))?;
            } else if line == "dram banked" {
                dram_banked = true;
            } else {
                return Err(format!("unexpected spec line {line:?}"));
            }
        }
        Ok(SweepSpec {
            preset,
            scales,
            workload_seeds,
            apps,
            variants,
            fault_rates,
            fault_seed,
            power_caps,
            epoch_cycles,
            dram_banked,
        })
    }
}

/// Parses an application by its stable name (case-insensitive).
pub fn parse_app(name: &str) -> Option<App> {
    App::ALL
        .into_iter()
        .find(|a| a.name().eq_ignore_ascii_case(name))
}

/// Parses a system variant by its stable name (case-insensitive).
pub fn parse_variant(name: &str) -> Option<RunVariant> {
    RunVariant::ALL
        .into_iter()
        .find(|v| v.name().eq_ignore_ascii_case(name))
}

/// One point of the sweep cross-product.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SweepCell {
    /// Position in the spec's canonical enumeration (also the cell-stream
    /// index of its fault seed).
    pub index: usize,
    /// Base platform.
    pub preset: Preset,
    /// Input scale.
    pub scale: f64,
    /// Workload-generation seed.
    pub workload_seed: u64,
    /// Application.
    pub app: App,
    /// System variant.
    pub variant: RunVariant,
    /// Injected fault rate (`0.0` = clean).
    pub fault_rate: f64,
    /// The sweep's *root* fault seed (the cell derives its own stream).
    pub fault_seed: u64,
    /// Chip power cap in watts; `None` is the ungoverned anchor.
    pub power_cap_w: Option<f64>,
    /// Governor sampling epoch (reference cycles); only observable when
    /// the cell is capped.
    pub epoch_cycles: u64,
    /// Whether the cell simulates the banked memory-controller model.
    pub dram_banked: bool,
}

impl SweepCell {
    /// The fully applied platform configuration of this cell.
    pub fn config(&self) -> PlatformConfig {
        let cfg = self
            .preset
            .config()
            .with_scale(self.scale)
            .with_seed(self.workload_seed);
        if self.dram_banked {
            cfg.with_dram(DramConfig::banked())
        } else {
            cfg
        }
    }

    /// The cell's stable content key: the hash of the platform
    /// configuration key plus the cell's discrete coordinates. Equal for
    /// structurally equal cells across processes; independent of the
    /// cell's position in the spec. Ungoverned anchors keep the exact
    /// pre-governor key (banked DRAM enters through the configuration
    /// key); capped cells get a tagged key that also covers the cap and
    /// the governor epoch.
    pub fn key(&self) -> CacheKey {
        match self.power_cap_w {
            None => stable_hash_of(&(
                "sweep-cell",
                config_key(&self.config()).to_hex(),
                self.app.name(),
                self.variant.name(),
                (self.fault_rate.to_bits(), self.fault_seed),
            )),
            Some(cap) => stable_hash_of(&(
                "sweep-cell-governed",
                config_key(&self.config()).to_hex(),
                self.app.name(),
                self.variant.name(),
                (
                    (self.fault_rate.to_bits(), self.fault_seed),
                    (cap.to_bits(), self.epoch_cycles),
                ),
            )),
        }
    }

    /// A short human-readable label (job labels, logs).
    pub fn label(&self) -> String {
        let mut label = format!(
            "cell/{}/{}/{}@{}r{}",
            self.index,
            self.app.name(),
            self.variant.name(),
            self.scale,
            self.fault_rate
        );
        if let Some(cap) = self.power_cap_w {
            label.push_str(&format!("c{cap}"));
        }
        label
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_roundtrips_through_text() {
        for spec in [SweepSpec::smoke(), SweepSpec::paper()] {
            let decoded = SweepSpec::decode(&spec.encode()).expect("roundtrip");
            assert_eq!(decoded, spec);
            assert_eq!(decoded.key(), spec.key());
        }
    }

    #[test]
    fn cells_enumerate_in_stable_order() {
        let spec = SweepSpec::smoke();
        let cells = spec.cells();
        assert_eq!(cells.len(), spec.cell_count());
        assert_eq!(cells.len(), 4);
        for (i, c) in cells.iter().enumerate() {
            assert_eq!(c.index, i);
        }
        // variant is the next-outer loop over rate.
        assert_eq!(cells[0].variant, RunVariant::Nvfi);
        assert_eq!(cells[0].fault_rate, 0.0);
        assert_eq!(cells[1].variant, RunVariant::Nvfi);
        assert_eq!(cells[1].fault_rate, 0.1);
        assert_eq!(cells[2].variant, RunVariant::WinocMaxWireless);
    }

    #[test]
    fn cell_keys_are_distinct_and_stable() {
        let cells = SweepSpec::paper().cells();
        let keys: std::collections::BTreeSet<String> =
            cells.iter().map(|c| c.key().to_hex()).collect();
        assert_eq!(keys.len(), cells.len(), "cell keys must not collide");
        assert_eq!(cells[0].key(), SweepSpec::paper().cells()[0].key());
    }

    #[test]
    fn spec_key_tracks_every_field() {
        let base = SweepSpec::smoke();
        let k = base.key();
        let mut with_rate = base.clone();
        with_rate.fault_rates.push(0.2);
        assert_ne!(with_rate.key(), k);
        let mut with_seed = base.clone();
        with_seed.fault_seed = 1;
        assert_ne!(with_seed.key(), k);
        let mut with_preset = base.clone();
        with_preset.preset = Preset::Paper;
        assert_ne!(with_preset.key(), k);
    }

    #[test]
    fn governed_dimension_extends_specs_backward_compatibly() {
        let legacy = SweepSpec::smoke();
        // Defaults add no lines: a pre-governor store decodes this spec
        // and its key is untouched.
        assert!(!legacy.encode().contains("power_caps"));
        assert!(!legacy.encode().contains("epoch_cycles"));
        assert!(!legacy.encode().contains("dram"));

        let mut governed = legacy.clone();
        governed.power_caps = vec![3.0, 6.0];
        governed.epoch_cycles = 10_000;
        governed.dram_banked = true;
        let decoded = SweepSpec::decode(&governed.encode()).expect("roundtrip");
        assert_eq!(decoded, governed);
        assert_ne!(governed.key(), legacy.key());

        // Adding caps interleaves governed cells but every anchor keeps
        // its exact legacy content key.
        let mut with_caps = legacy.clone();
        with_caps.power_caps = vec![6.0];
        let cells = with_caps.cells();
        assert_eq!(cells.len(), 2 * legacy.cell_count());
        assert_eq!(cells[0].power_cap_w, None);
        assert_eq!(cells[0].key(), legacy.cells()[0].key());
        assert_eq!(cells[1].power_cap_w, Some(6.0));
        assert_ne!(cells[1].key(), cells[0].key());
        // Distinct epochs distinguish capped cells but not anchors.
        let mut other_epoch = with_caps.clone();
        other_epoch.epoch_cycles = 25_000;
        let other = other_epoch.cells();
        assert_eq!(other[0].key(), cells[0].key());
        assert_ne!(other[1].key(), cells[1].key());
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(SweepSpec::decode("nope").is_err());
        let mut truncated = SweepSpec::smoke().encode();
        truncated.truncate(truncated.len() / 2);
        assert!(SweepSpec::decode(&truncated).is_err());
    }
}

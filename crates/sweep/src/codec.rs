//! Byte-stable encoding of sweep-cell results.
//!
//! A [`CellRecord`] is the durable projection of one cell's
//! [`mapwave::RunReport`] (plus its [`mapwave_faults::FaultStats`] when the
//! cell injected faults): the scalar observables every query needs, none of
//! the bulky per-phase structures. Records serialize to a line-based text
//! form in which every `f64` carries its exact bit pattern
//! (`{:016x}` of [`f64::to_bits`]) next to a human-readable rendering —
//! decoding reproduces the value bit-for-bit, which is what makes the
//! store's byte-identity guarantees possible.

use mapwave::{FaultRunReport, GovernedRunReport, RunReport};
use mapwave_faults::FaultStats;

/// Header line of every encoded record.
pub const RECORD_HEADER: &str = "mapwave-artifact v1";

/// The durable scalar observables of one completed sweep cell.
#[derive(Debug, Clone, PartialEq)]
pub struct CellRecord {
    /// The cell's human-readable label.
    pub label: String,
    /// Application name.
    pub app: String,
    /// System-variant name.
    pub variant: String,
    /// Platform preset name.
    pub preset: String,
    /// Input scale.
    pub scale: f64,
    /// Workload seed.
    pub workload_seed: u64,
    /// Injected fault rate (`0.0` = clean).
    pub fault_rate: f64,
    /// Root fault seed of the sweep the cell belongs to.
    pub fault_seed: u64,
    /// Wall-clock execution time in seconds.
    pub exec_seconds: f64,
    /// Core energy in joules.
    pub core_energy_j: f64,
    /// Network energy in joules.
    pub net_energy_j: f64,
    /// Full-system energy–delay product (J·s).
    pub edp: f64,
    /// Average NoC packet latency in cycles.
    pub net_avg_latency: f64,
    /// Packets the NoC delivered across all simulated stages.
    pub packets_delivered: u64,
    /// Flit hops taken over wireless links.
    pub wireless_flit_hops: u64,
    /// Flit hops taken over wireline links.
    pub wire_flit_hops: u64,
    /// Fault activity observed while producing the report (all zero for a
    /// clean cell).
    pub faults: FaultStats,
    /// Power-governed observables; `None` for ungoverned cells (whose
    /// encoding is byte-identical to the pre-governor format).
    pub governed: Option<GovernedCellMetrics>,
}

/// The governed-run observables of a power-capped cell.
#[derive(Debug, Clone, PartialEq)]
pub struct GovernedCellMetrics {
    /// The enforced chip power cap, W.
    pub power_cap_w: f64,
    /// Wall-clock time of the governed execution, seconds.
    pub governed_exec_seconds: f64,
    /// Core energy of the governed execution, joules.
    pub governed_core_energy_j: f64,
    /// Full-system EDP of the governed execution, J·s.
    pub governed_edp: f64,
    /// Highest measured epoch power, W.
    pub peak_power_w: f64,
    /// Epochs the governor planned.
    pub epochs: u64,
    /// One-level throttle steps taken over the run.
    pub throttles: u64,
    /// Whether every epoch's measured power stayed at or under the cap.
    pub cap_respected: bool,
}

/// The coordinate part of a record the engine fills in before attaching a
/// report.
#[derive(Debug, Clone)]
pub struct CellCoords {
    /// Cell label.
    pub label: String,
    /// Application name.
    pub app: String,
    /// Variant name.
    pub variant: String,
    /// Preset name.
    pub preset: String,
    /// Input scale.
    pub scale: f64,
    /// Workload seed.
    pub workload_seed: u64,
    /// Fault rate.
    pub fault_rate: f64,
    /// Root fault seed.
    pub fault_seed: u64,
}

impl CellRecord {
    /// Builds a record from a fault-free run.
    pub fn from_run(coords: CellCoords, report: &RunReport) -> Self {
        Self::build(coords, report, FaultStats::default())
    }

    /// Builds a record from a faulted run.
    pub fn from_fault_run(coords: CellCoords, report: &FaultRunReport) -> Self {
        Self::build(coords, &report.report, report.faults)
    }

    /// Builds a record from a power-governed run (clean or faulted: the
    /// base report carries the fault stats either way).
    pub fn from_governed(coords: CellCoords, report: &GovernedRunReport) -> Self {
        let mut record = Self::build(coords, &report.base.report, report.base.faults);
        record.governed = Some(GovernedCellMetrics {
            power_cap_w: report.cap_w,
            governed_exec_seconds: report.governed_exec_seconds,
            governed_core_energy_j: report.governed_core_energy_j,
            governed_edp: report.governed_edp,
            peak_power_w: report.peak_measured_power_w(),
            epochs: report.stats.epochs,
            throttles: report.stats.throttles,
            cap_respected: report.cap_respected(),
        });
        record
    }

    fn build(coords: CellCoords, report: &RunReport, faults: FaultStats) -> Self {
        CellRecord {
            label: coords.label,
            app: coords.app,
            variant: coords.variant,
            preset: coords.preset,
            scale: coords.scale,
            workload_seed: coords.workload_seed,
            fault_rate: coords.fault_rate,
            fault_seed: coords.fault_seed,
            exec_seconds: report.exec_seconds,
            core_energy_j: report.core_energy_j,
            net_energy_j: report.net_energy_j,
            edp: report.edp,
            net_avg_latency: report.net.avg_latency(),
            packets_delivered: report.net.packets_delivered,
            wireless_flit_hops: report.net.wireless_flit_hops,
            wire_flit_hops: report.net.wire_flit_hops,
            faults,
            governed: None,
        }
    }

    /// Total (core + network) energy in joules.
    pub fn total_energy_j(&self) -> f64 {
        self.core_energy_j + self.net_energy_j
    }

    /// Serializes the record to its canonical text form.
    pub fn encode(&self) -> String {
        let mut out = String::from(RECORD_HEADER);
        out.push('\n');
        let s = |out: &mut String, name: &str, v: &str| {
            out.push_str(&format!("{name} {v}\n"));
        };
        let f = |out: &mut String, name: &str, v: f64| {
            out.push_str(&format!("{name} {:016x} {v}\n", v.to_bits()));
        };
        let u = |out: &mut String, name: &str, v: u64| {
            out.push_str(&format!("{name} {v}\n"));
        };
        s(&mut out, "label", &self.label);
        s(&mut out, "app", &self.app);
        s(&mut out, "variant", &self.variant);
        s(&mut out, "preset", &self.preset);
        f(&mut out, "scale", self.scale);
        u(&mut out, "workload_seed", self.workload_seed);
        f(&mut out, "fault_rate", self.fault_rate);
        u(&mut out, "fault_seed", self.fault_seed);
        f(&mut out, "exec_seconds", self.exec_seconds);
        f(&mut out, "core_energy_j", self.core_energy_j);
        f(&mut out, "net_energy_j", self.net_energy_j);
        f(&mut out, "edp", self.edp);
        f(&mut out, "net_avg_latency", self.net_avg_latency);
        u(&mut out, "packets_delivered", self.packets_delivered);
        u(&mut out, "wireless_flit_hops", self.wireless_flit_hops);
        u(&mut out, "wire_flit_hops", self.wire_flit_hops);
        u(&mut out, "flit_corruptions", self.faults.flit_corruptions);
        u(&mut out, "wi_fallbacks", self.faults.wi_fallbacks);
        u(&mut out, "task_retries", self.faults.task_retries);
        u(&mut out, "re_steals", self.faults.re_steals);
        u(&mut out, "cores_degraded", self.faults.cores_degraded);
        u(&mut out, "cores_failed", self.faults.cores_failed);
        // Governed lines only exist for capped cells: ungoverned records
        // stay byte-identical to the pre-governor format.
        if let Some(g) = &self.governed {
            f(&mut out, "governed_power_cap_w", g.power_cap_w);
            f(&mut out, "governed_exec_seconds", g.governed_exec_seconds);
            f(&mut out, "governed_core_energy_j", g.governed_core_energy_j);
            f(&mut out, "governed_edp", g.governed_edp);
            f(&mut out, "governed_peak_power_w", g.peak_power_w);
            u(&mut out, "governed_epochs", g.epochs);
            u(&mut out, "governed_throttles", g.throttles);
            s(
                &mut out,
                "governed_cap_respected",
                if g.cap_respected { "true" } else { "false" },
            );
        }
        out
    }

    /// Parses [`CellRecord::encode`]'s output; `f64`s are restored from
    /// their bit patterns, so `decode(encode(r)) == r` exactly.
    ///
    /// # Errors
    ///
    /// Returns a description of the first malformed line.
    pub fn decode(text: &str) -> Result<Self, String> {
        let mut lines = text.lines();
        if lines.next() != Some(RECORD_HEADER) {
            return Err("not a mapwave artifact (bad header)".into());
        }
        let mut field = |name: &str| -> Result<String, String> {
            let line = lines.next().ok_or_else(|| format!("missing {name}"))?;
            line.strip_prefix(name)
                .and_then(|rest| rest.strip_prefix(' '))
                .map(str::to_string)
                .ok_or_else(|| format!("expected `{name} ...`, found {line:?}"))
        };
        let parse_f64 = |raw: String, name: &str| -> Result<f64, String> {
            let bits = raw.split(' ').next().unwrap_or("");
            u64::from_str_radix(bits, 16)
                .map(f64::from_bits)
                .map_err(|e| format!("bad {name} bits {bits:?}: {e}"))
        };
        let parse_u64 = |raw: String, name: &str| -> Result<u64, String> {
            raw.parse().map_err(|e| format!("bad {name} {raw:?}: {e}"))
        };
        let label = field("label")?;
        let app = field("app")?;
        let variant = field("variant")?;
        let preset = field("preset")?;
        let scale = parse_f64(field("scale")?, "scale")?;
        let workload_seed = parse_u64(field("workload_seed")?, "workload_seed")?;
        let fault_rate = parse_f64(field("fault_rate")?, "fault_rate")?;
        let fault_seed = parse_u64(field("fault_seed")?, "fault_seed")?;
        let exec_seconds = parse_f64(field("exec_seconds")?, "exec_seconds")?;
        let core_energy_j = parse_f64(field("core_energy_j")?, "core_energy_j")?;
        let net_energy_j = parse_f64(field("net_energy_j")?, "net_energy_j")?;
        let edp = parse_f64(field("edp")?, "edp")?;
        let net_avg_latency = parse_f64(field("net_avg_latency")?, "net_avg_latency")?;
        let packets_delivered = parse_u64(field("packets_delivered")?, "packets_delivered")?;
        let wireless_flit_hops = parse_u64(field("wireless_flit_hops")?, "wireless_flit_hops")?;
        let wire_flit_hops = parse_u64(field("wire_flit_hops")?, "wire_flit_hops")?;
        let faults = FaultStats {
            flit_corruptions: parse_u64(field("flit_corruptions")?, "flit_corruptions")?,
            wi_fallbacks: parse_u64(field("wi_fallbacks")?, "wi_fallbacks")?,
            task_retries: parse_u64(field("task_retries")?, "task_retries")?,
            re_steals: parse_u64(field("re_steals")?, "re_steals")?,
            cores_degraded: parse_u64(field("cores_degraded")?, "cores_degraded")?,
            cores_failed: parse_u64(field("cores_failed")?, "cores_failed")?,
        };
        // The governed block is optional: a legacy record simply ends
        // here, so a missing first governed line means `None`.
        let governed = match field("governed_power_cap_w") {
            Err(_) => None,
            Ok(raw) => Some(GovernedCellMetrics {
                power_cap_w: parse_f64(raw, "governed_power_cap_w")?,
                governed_exec_seconds: parse_f64(
                    field("governed_exec_seconds")?,
                    "governed_exec_seconds",
                )?,
                governed_core_energy_j: parse_f64(
                    field("governed_core_energy_j")?,
                    "governed_core_energy_j",
                )?,
                governed_edp: parse_f64(field("governed_edp")?, "governed_edp")?,
                peak_power_w: parse_f64(field("governed_peak_power_w")?, "governed_peak_power_w")?,
                epochs: parse_u64(field("governed_epochs")?, "governed_epochs")?,
                throttles: parse_u64(field("governed_throttles")?, "governed_throttles")?,
                cap_respected: field("governed_cap_respected")? == "true",
            }),
        };
        Ok(CellRecord {
            label,
            app,
            variant,
            preset,
            scale,
            workload_seed,
            fault_rate,
            fault_seed,
            exec_seconds,
            core_energy_j,
            net_energy_j,
            edp,
            net_avg_latency,
            packets_delivered,
            wireless_flit_hops,
            wire_flit_hops,
            faults,
            governed,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CellRecord {
        CellRecord {
            label: "cell/0/WC/nvfi@0.002r0".into(),
            app: "WC".into(),
            variant: "nvfi".into(),
            preset: "small".into(),
            scale: 0.002,
            workload_seed: 0xDAC_2015,
            fault_rate: 0.1,
            fault_seed: 0xFA17,
            exec_seconds: 1.2345678901234567e-3,
            core_energy_j: 0.25,
            net_energy_j: f64::MIN_POSITIVE,
            edp: 3.9e-7,
            net_avg_latency: 17.25,
            packets_delivered: 4821,
            wireless_flit_hops: 901,
            wire_flit_hops: 12000,
            faults: FaultStats {
                flit_corruptions: 3,
                wi_fallbacks: 1,
                task_retries: 7,
                re_steals: 2,
                cores_degraded: 1,
                cores_failed: 0,
            },
            governed: None,
        }
    }

    fn governed_sample() -> CellRecord {
        let mut r = sample();
        r.governed = Some(GovernedCellMetrics {
            power_cap_w: 3.5,
            governed_exec_seconds: 1.5e-3,
            governed_core_energy_j: 0.21,
            governed_edp: 4.1e-7,
            peak_power_w: 3.499999,
            epochs: 12,
            throttles: 3,
            cap_respected: true,
        });
        r
    }

    #[test]
    fn record_roundtrips_bit_exactly() {
        let r = sample();
        let decoded = CellRecord::decode(&r.encode()).expect("roundtrip");
        assert_eq!(decoded, r);
        assert_eq!(
            decoded.exec_seconds.to_bits(),
            r.exec_seconds.to_bits(),
            "f64 bit patterns must survive the text form"
        );
    }

    #[test]
    fn encode_is_deterministic() {
        assert_eq!(sample().encode(), sample().encode());
    }

    #[test]
    fn governed_records_roundtrip_and_ungoverned_keep_the_legacy_bytes() {
        let g = governed_sample();
        let decoded = CellRecord::decode(&g.encode()).expect("roundtrip");
        assert_eq!(decoded, g);
        // The governed block is strictly appended: stripping it yields
        // exactly the ungoverned encoding, so legacy decoders and stores
        // are unaffected by the new fields.
        let plain = sample().encode();
        assert!(g.encode().starts_with(&plain));
        assert!(!plain.contains("governed_"));
    }

    #[test]
    fn decode_rejects_corruption() {
        assert!(CellRecord::decode("garbage").is_err());
        let mut truncated = sample().encode();
        truncated.truncate(truncated.len() - 40);
        assert!(CellRecord::decode(&truncated).is_err());
    }
}

//! Queries are answered from the store, not by re-simulation: every
//! completed cell read counts one `sweep.artifact_hits`, and the values a
//! query renders are exactly the bits the engine computed.
//!
//! Single-test binary on purpose: it asserts on the process-global
//! telemetry counters, which other tests in the same binary could reset
//! concurrently.

use std::fs;

use mapwave_harness::telemetry;
use mapwave_sweep::prelude::*;

#[test]
fn query_answers_from_artifacts_alone() {
    let root = std::env::temp_dir().join(format!(
        "mapwave-sweep-query-telemetry-{}",
        std::process::id()
    ));
    let _ = fs::remove_dir_all(&root);

    let engine = SweepEngine::create(
        &root,
        SweepSpec::smoke(),
        EngineOptions {
            jobs: 2,
            backoff_base_ms: 0,
            ..EngineOptions::default()
        },
    )
    .unwrap();
    let summary = engine.run().unwrap();
    assert_eq!(summary.completed, 4);

    telemetry::enable();
    let before = telemetry::snapshot().counter("sweep.artifact_hits");

    let records = load_records(engine.store()).unwrap();
    assert_eq!(records.len(), 4);

    let after = telemetry::snapshot().counter("sweep.artifact_hits");
    assert_eq!(
        after - before,
        4,
        "each completed cell must be served from the artifact store"
    );

    // The rendered table carries the engine's exact numbers: re-derive
    // the expected EDP column from the decoded records themselves.
    let table = render_table(&records, &QueryFilter::default(), Metric::Edp);
    for r in &records {
        assert!(
            table.contains(&format!("{:.6e}", r.edp)),
            "table must show {}'s EDP {:.6e}:\n{table}",
            r.label,
            r.edp
        );
    }

    // The clean nvfi cell anchors the saving computation; its own saving
    // renders as +0.00%.
    let saving = render_table(
        &records,
        &QueryFilter {
            variant: Some("nvfi".into()),
            ..Default::default()
        },
        Metric::EdpSaving,
    );
    assert!(
        saving.contains("+0.00%"),
        "nvfi saves nothing over itself:\n{saving}"
    );

    let _ = fs::remove_dir_all(&root);
}

//! The store's durability contract: a sweep killed after N cells and
//! resumed produces a byte-identical store to one that never died, and a
//! cell that can never succeed lands in the dead-letter queue instead of
//! wedging the sweep.

use std::collections::BTreeMap;
use std::fs;
use std::path::{Path, PathBuf};

use mapwave_faults::CellFailureModel;
use mapwave_sweep::prelude::*;

fn temp_root(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("mapwave-sweep-it-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

fn fast_opts(jobs: usize) -> EngineOptions {
    EngineOptions {
        jobs,
        backoff_base_ms: 0,
        ..EngineOptions::default()
    }
}

/// Every artifact blob of a store, keyed by filename.
fn artifact_bytes(root: &Path) -> BTreeMap<String, Vec<u8>> {
    let mut out = BTreeMap::new();
    for entry in fs::read_dir(root.join("artifacts")).expect("artifacts dir") {
        let entry = entry.unwrap();
        let name = entry.file_name().into_string().unwrap();
        assert!(
            name.ends_with(".art"),
            "unexpected file {name:?} in artifact dir"
        );
        out.insert(name, fs::read(entry.path()).unwrap());
    }
    out
}

#[test]
fn killed_and_resumed_sweep_is_byte_identical() {
    let spec = SweepSpec::smoke();

    // Reference: one uninterrupted run.
    let full_root = temp_root("full");
    let full = SweepEngine::create(&full_root, spec.clone(), fast_opts(2)).unwrap();
    let summary = full.run().unwrap();
    assert_eq!(summary.completed, 4);
    assert_eq!(summary.pending, 0);

    // Victim: killed (commit limit) after 2 cells, then resumed without
    // re-telling it the spec — and with a different worker count, which
    // must not matter.
    let killed_root = temp_root("killed");
    let killed = SweepEngine::create(
        &killed_root,
        spec,
        EngineOptions {
            commit_limit: Some(2),
            ..fast_opts(2)
        },
    )
    .unwrap();
    let first = killed.run().unwrap();
    assert_eq!(first.completed, 2);
    assert_eq!(first.pending, 2, "kill left work behind");

    let resumed = SweepEngine::resume(&killed_root, fast_opts(4)).unwrap();
    let second = resumed.run().unwrap();
    assert_eq!(second.completed, 2);
    assert_eq!(second.pending, 0);

    // Byte identity: manifest, spec, and every artifact blob.
    let full_manifest = fs::read(full_root.join("manifest.txt")).unwrap();
    let killed_manifest = fs::read(killed_root.join("manifest.txt")).unwrap();
    assert_eq!(
        full_manifest, killed_manifest,
        "manifest of killed+resumed sweep must match the uninterrupted one"
    );
    assert_eq!(
        fs::read(full_root.join("spec.txt")).unwrap(),
        fs::read(killed_root.join("spec.txt")).unwrap()
    );
    let full_artifacts = artifact_bytes(&full_root);
    let killed_artifacts = artifact_bytes(&killed_root);
    assert_eq!(
        full_artifacts.keys().collect::<Vec<_>>(),
        killed_artifacts.keys().collect::<Vec<_>>(),
        "same artifact filenames (content addresses)"
    );
    assert_eq!(full_artifacts, killed_artifacts, "same artifact bytes");
    assert!(
        !full_artifacts.is_empty(),
        "identity is vacuous without artifacts"
    );

    let _ = fs::remove_dir_all(&full_root);
    let _ = fs::remove_dir_all(&killed_root);
}

#[test]
fn always_failing_cells_dead_letter_instead_of_wedging() {
    let root = temp_root("dlq");
    let engine = SweepEngine::create(
        &root,
        SweepSpec::smoke(),
        EngineOptions {
            exec_faults: CellFailureModel::new(1.0, 7),
            max_attempts: 2,
            ..fast_opts(2)
        },
    )
    .unwrap();
    let summary = engine.run().unwrap();
    assert_eq!(summary.completed, 0);
    assert_eq!(summary.dead_lettered, 4, "every cell exhausts its attempts");
    assert_eq!(summary.pending, 0, "the sweep still finishes");

    let manifest = engine.store().load_manifest().unwrap().unwrap();
    assert_eq!(manifest.dead_lettered(), 4);
    for entry in manifest.entries.values() {
        assert_eq!(
            entry.state,
            CellState::DeadLetter { attempts: 2 },
            "cell {} records its attempt count",
            entry.index
        );
    }
    assert!(
        artifact_bytes(&root).is_empty(),
        "dead-lettered cells leave no artifacts"
    );

    // Resume does not resurrect the dead letters.
    let resumed = SweepEngine::resume(&root, fast_opts(1)).unwrap();
    let again = resumed.run().unwrap();
    assert_eq!(again.completed + again.dead_lettered + again.pending, 0);

    let _ = fs::remove_dir_all(&root);
}

#[test]
fn transient_failures_retry_to_success() {
    // Find a seed whose cell-0 stream fails the first attempt but passes
    // the second — the retry machinery's happy path.
    let seed = (0..200u64)
        .find(|&s| {
            let m = CellFailureModel::new(0.5, s);
            m.attempt_fails(0, 0)
                && !m.attempt_fails(0, 1)
                && (1..4).all(|c| !m.attempt_fails(c, 0))
        })
        .expect("some seed yields fail-then-succeed for cell 0 only");

    let root = temp_root("retry");
    let engine = SweepEngine::create(
        &root,
        SweepSpec::smoke(),
        EngineOptions {
            exec_faults: CellFailureModel::new(0.5, seed),
            ..fast_opts(1)
        },
    )
    .unwrap();
    let summary = engine.run().unwrap();
    assert_eq!(summary.completed, 4, "retries rescue the transient failure");
    assert_eq!(summary.dead_lettered, 0);

    let _ = fs::remove_dir_all(&root);
}

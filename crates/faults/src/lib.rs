//! # mapwave-faults
//!
//! A deterministic, seeded fault model for the mapwave stack.
//!
//! The crate provides a [`FaultPlan`]: a pure, immutable oracle that every
//! simulation layer queries to decide whether a fault fires at a given
//! point. Three event families are modelled:
//!
//! * **wireless-link bit errors** — a token-MAC transfer attempt on a
//!   wireless channel is corrupted; the flit stays put and retransmits on a
//!   later token slot, and past a threshold of consecutive corruptions the
//!   affected wireless interface falls back to the wireline escape route
//!   (handled in `mapwave-noc`);
//! * **core degradation / failure** — at a phase boundary a core's
//!   effective frequency drops by a configured factor, or the core goes
//!   offline entirely (handled in `mapwave-phoenix` /
//!   `mapwave-manycore`);
//! * **task failures** — a task attempt fails and is retried with
//!   exponential backoff, re-entering the steal queues (handled in
//!   `mapwave-phoenix`).
//!
//! ## Determinism
//!
//! Decisions are *counter-hash based*: each query mixes the plan's key with
//! the caller-supplied indices (channel, attempt, core, slot, …) through
//! SplitMix64 and compares against a precomputed 64-bit threshold. No
//! shared RNG stream is consumed at query time, so the verdict for a given
//! event is independent of the order in which other layers ask their
//! questions — a property the relaxation loop in `mapwave-core` relies on
//! (the same plan is replayed identically in every round).
//!
//! The plan's key derives from a **named harness RNG stream**
//! ([`mapwave_harness::rng::stream_seed`] with the `"faults"` name), so
//! fault schedules can never perturb workload generation: workload bytes
//! are identical whether or not a fault stream was drawn.
//!
//! ## Zero cost when disabled
//!
//! [`FaultPlan::none()`] has every rate at exactly `0.0`, which maps to a
//! decision threshold of `0` — and thresholds are compared strictly
//! (`hash < threshold`), so no event ever fires and no floating-point state
//! is touched. The consuming crates additionally gate their hooks so the
//! disabled path compiles to the pre-fault code, keeping every golden
//! digest bit-identical.

#![warn(missing_debug_implementations)]
#![deny(missing_docs)]

use mapwave_harness::rng::{splitmix64, stream_seed, RngCore, SeedableRng, StdRng};

/// Tuning knobs of the fault model. All rates are probabilities in
/// `[0, 1]` per *event opportunity* (a wireless transfer attempt, a
/// core-slot boundary, a task attempt).
#[derive(Debug, Clone, PartialEq)]
pub struct FaultConfig {
    /// Probability a wireless transfer attempt is corrupted by a bit error
    /// (the flit retransmits on a later token slot).
    pub link_error_rate: f64,
    /// Consecutive corrupted attempts at one wireless interface after which
    /// the WI is disabled and its traffic falls back to the wireline escape
    /// route.
    pub wi_fallback_threshold: u32,
    /// Per-core probability, at each phase boundary, that the core's
    /// effective frequency degrades by [`FaultConfig::degrade_factor`].
    pub core_degrade_rate: f64,
    /// Multiplier applied to a degraded core's speed (in `(0, 1]`).
    pub degrade_factor: f64,
    /// Per-core probability, at each phase boundary, that the core goes
    /// offline for the rest of the run.
    pub core_fail_rate: f64,
    /// Probability a task attempt fails and must be retried.
    pub task_fail_rate: f64,
    /// Retry budget per task; after this many failed attempts the next
    /// attempt is forced to succeed (the model's stand-in for
    /// checkpoint-restore escalation).
    pub max_task_retries: u32,
    /// Backoff before retry attempt `k` is `base · 2^(k−1)` cycles.
    pub backoff_base_cycles: f64,
    /// Root seed of the fault schedule. The plan key is derived through the
    /// harness's named `"faults"` stream, decoupled from workload seeds.
    pub seed: u64,
}

impl FaultConfig {
    /// A configuration with every rate at exactly zero — the disabled
    /// model.
    pub fn disabled() -> Self {
        FaultConfig {
            link_error_rate: 0.0,
            wi_fallback_threshold: 4,
            core_degrade_rate: 0.0,
            degrade_factor: 0.6,
            core_fail_rate: 0.0,
            task_fail_rate: 0.0,
            max_task_retries: 3,
            backoff_base_cycles: 5_000.0,
            seed: 0,
        }
    }

    /// The same configuration re-seeded for one sweep cell: the seed is
    /// replaced by the cell-scoped child stream [`cell_seed`] of the
    /// current seed.
    ///
    /// Sweep engines use this so every cell of a design-space sweep draws
    /// an *independent, reproducible* fault schedule from one root seed —
    /// cell 17 sees the same faults whether the sweep ran uninterrupted,
    /// was resumed after a kill, or ran cell 17 alone.
    pub fn for_cell(&self, cell: u64) -> Self {
        FaultConfig {
            seed: cell_seed(self.seed, cell),
            ..self.clone()
        }
    }

    /// Scales the whole model from one scalar fault rate — the knob the
    /// `fault_sweep` experiment turns. Link and task attempts fail at
    /// `rate`; cores degrade at `rate/2` and die at `rate/10` per phase
    /// boundary.
    ///
    /// # Panics
    ///
    /// Panics if `rate` is not in `[0, 1]`.
    pub fn at_rate(rate: f64, seed: u64) -> Self {
        assert!((0.0..=1.0).contains(&rate), "fault rate must be in [0, 1]");
        FaultConfig {
            link_error_rate: rate,
            core_degrade_rate: rate * 0.5,
            core_fail_rate: rate * 0.1,
            task_fail_rate: rate,
            seed,
            ..FaultConfig::disabled()
        }
    }
}

impl Default for FaultConfig {
    fn default() -> Self {
        FaultConfig::disabled()
    }
}

/// Derives the fault seed of one sweep cell from a root fault seed.
///
/// Each cell index names its own harness child stream (`"cell/<index>"`
/// under the root), so:
///
/// * the same `(root, cell)` pair always yields the same seed — a resumed
///   sweep replays exactly the faults an uninterrupted sweep would have;
/// * different cells draw statistically independent schedules;
/// * no cell seed collides with the root's own `"faults"` stream, so a
///   sweep can never perturb a non-sweep run sharing the root seed.
///
/// # Examples
///
/// ```
/// use mapwave_faults::cell_seed;
///
/// assert_eq!(cell_seed(7, 0), cell_seed(7, 0));
/// assert_ne!(cell_seed(7, 0), cell_seed(7, 1));
/// assert_ne!(cell_seed(7, 0), cell_seed(8, 0));
/// ```
pub fn cell_seed(root: u64, cell: u64) -> u64 {
    stream_seed(root, &format!("cell/{cell}"))
}

/// A deterministic oracle for *execution-level* cell failures — the sweep
/// engine's injectable "this work item crashed" hazard, distinct from the
/// simulated hardware faults a [`FaultPlan`] schedules *inside* a run.
///
/// Decisions use the same counter-hash kernel as [`FaultPlan`]: pure in
/// `(cell, attempt)`, order-independent, and reproducible from `(rate,
/// seed)` alone. Unlike [`FaultPlan::task_fails`] there is **no** forced
/// success past a retry budget — a cell that keeps failing keeps failing,
/// which is exactly what a dead-letter queue needs to be testable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CellFailureModel {
    key: u64,
    threshold: u64,
}

impl CellFailureModel {
    /// A model failing each `(cell, attempt)` independently with
    /// probability `rate`, keyed by the named `"sweep-exec"` child stream
    /// of `seed`.
    ///
    /// # Panics
    ///
    /// Panics if `rate` is not in `[0, 1]`.
    pub fn new(rate: f64, seed: u64) -> Self {
        assert!(
            (0.0..=1.0).contains(&rate),
            "cell failure rate must be in [0, 1]"
        );
        let mut stream = StdRng::seed_from_u64(stream_seed(seed, "sweep-exec"));
        CellFailureModel {
            key: stream.next_u64(),
            threshold: rate_to_threshold(rate),
        }
    }

    /// The model that never fails anything.
    pub fn none() -> Self {
        CellFailureModel {
            key: 0,
            threshold: 0,
        }
    }

    /// Whether the model can ever fail a cell.
    pub fn is_none(&self) -> bool {
        self.threshold == 0
    }

    /// Whether attempt `attempt` (0-based) of cell `cell` fails.
    #[inline]
    pub fn attempt_fails(&self, cell: u64, attempt: u32) -> bool {
        FaultPlan::fires(self.key, cell, u64::from(attempt), self.threshold)
    }
}

/// Converts a probability to a strict 64-bit comparison threshold.
///
/// `p <= 0` maps to `0`, which can never satisfy `hash < 0` — a zero rate
/// is *provably* inert, with no float comparison on the query path.
fn rate_to_threshold(p: f64) -> u64 {
    if p <= 0.0 {
        0
    } else if p >= 1.0 {
        u64::MAX
    } else {
        // 2^64 · p, computed in f64 then truncated; exact enough for a
        // simulation hazard and, crucially, deterministic.
        (p * 18_446_744_073_709_551_616.0) as u64
    }
}

/// What happens to a core at a phase boundary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CoreEvent {
    /// Nothing — the core keeps its current health.
    None,
    /// The core's effective speed is multiplied by
    /// [`FaultConfig::degrade_factor`].
    Degrade,
    /// The core goes offline for the rest of the run.
    Fail,
}

/// A deterministic, immutable fault schedule.
///
/// Build one with [`FaultPlan::build`] (or [`FaultPlan::none`] for the
/// disabled model) and hand shared references to every layer. Queries are
/// pure: the same arguments always return the same verdict, regardless of
/// call order or interleaving.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    cfg: FaultConfig,
    /// Sub-keys per event family, drawn from the named `"faults"` stream.
    link_key: u64,
    core_key: u64,
    task_key: u64,
    /// Precomputed strict thresholds (zero rate ⇒ zero threshold ⇒ inert).
    link_threshold: u64,
    degrade_threshold: u64,
    fail_threshold: u64,
    task_threshold: u64,
}

impl FaultPlan {
    /// The disabled plan: no event ever fires.
    pub fn none() -> Self {
        FaultPlan::build(&FaultConfig::disabled())
    }

    /// Builds a plan from `cfg`. The plan key is drawn from the harness's
    /// named `"faults"` child stream of `cfg.seed`, so building (or not
    /// building) a plan never perturbs any workload generator seeded from
    /// the same root.
    pub fn build(cfg: &FaultConfig) -> Self {
        assert!(
            cfg.degrade_factor > 0.0 && cfg.degrade_factor <= 1.0,
            "degrade_factor must be in (0, 1]"
        );
        let mut stream = StdRng::seed_from_u64(stream_seed(cfg.seed, "faults"));
        FaultPlan {
            link_key: stream.next_u64(),
            core_key: stream.next_u64(),
            task_key: stream.next_u64(),
            link_threshold: rate_to_threshold(cfg.link_error_rate),
            degrade_threshold: rate_to_threshold(cfg.core_degrade_rate),
            fail_threshold: rate_to_threshold(cfg.core_fail_rate),
            task_threshold: rate_to_threshold(cfg.task_fail_rate),
            cfg: cfg.clone(),
        }
    }

    /// Whether the plan can ever fire an event. `false` means every hook
    /// may skip its fault path entirely.
    pub fn is_none(&self) -> bool {
        self.link_threshold == 0
            && self.degrade_threshold == 0
            && self.fail_threshold == 0
            && self.task_threshold == 0
    }

    /// Whether any NoC-level (wireless link) event can fire.
    pub fn affects_noc(&self) -> bool {
        self.link_threshold != 0
    }

    /// Whether any runtime-level (core or task) event can fire.
    pub fn affects_runtime(&self) -> bool {
        self.degrade_threshold != 0 || self.fail_threshold != 0 || self.task_threshold != 0
    }

    /// The configuration the plan was built from.
    pub fn config(&self) -> &FaultConfig {
        &self.cfg
    }

    /// Counter-hash decision kernel: mixes a family key with two event
    /// indices and compares strictly against the family threshold.
    #[inline]
    fn fires(key: u64, a: u64, b: u64, threshold: u64) -> bool {
        if threshold == 0 {
            return false;
        }
        let mut state = key ^ a.rotate_left(32);
        let h1 = splitmix64(&mut state);
        state ^= b ^ h1;
        splitmix64(&mut state) < threshold
    }

    /// Whether transfer `attempt` on wireless `channel` is corrupted.
    #[inline]
    pub fn link_corrupts(&self, channel: usize, attempt: u64) -> bool {
        Self::fires(self.link_key, channel as u64, attempt, self.link_threshold)
    }

    /// Consecutive corruptions after which a WI falls back to wireline.
    #[inline]
    pub fn wi_fallback_threshold(&self) -> u32 {
        self.cfg.wi_fallback_threshold.max(1)
    }

    /// The core event scheduled for `core` at phase-boundary `slot`.
    ///
    /// Failure is checked before degradation so a single hazard draw per
    /// family keeps the two families independent; a dead core stays dead
    /// regardless of later slots (enforced by the caller's health state).
    #[inline]
    pub fn core_event(&self, core: usize, slot: u64) -> CoreEvent {
        if Self::fires(
            self.core_key ^ 0xF417,
            core as u64,
            slot,
            self.fail_threshold,
        ) {
            CoreEvent::Fail
        } else if Self::fires(self.core_key, core as u64, slot, self.degrade_threshold) {
            CoreEvent::Degrade
        } else {
            CoreEvent::None
        }
    }

    /// Multiplier applied to a degraded core's speed.
    #[inline]
    pub fn degrade_factor(&self) -> f64 {
        self.cfg.degrade_factor
    }

    /// Whether attempt `attempt` (0-based) of global task `task` fails.
    /// Attempts beyond the retry budget are forced to succeed.
    #[inline]
    pub fn task_fails(&self, task: u64, attempt: u32) -> bool {
        if attempt >= self.cfg.max_task_retries {
            return false;
        }
        Self::fires(self.task_key, task, u64::from(attempt), self.task_threshold)
    }

    /// Backoff in cycles before retry `attempt` (1-based): exponential
    /// `base · 2^(attempt−1)`.
    #[inline]
    pub fn backoff_cycles(&self, attempt: u32) -> f64 {
        let shift = attempt.saturating_sub(1).min(20);
        self.cfg.backoff_base_cycles * f64::from(1u32 << shift)
    }
}

/// Counters of the faults that actually fired during a run, aggregated
/// across layers. Surfaced through the harness telemetry as the `fault.*`
/// family.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Corrupted wireless transfer attempts (each retransmits).
    pub flit_corruptions: u64,
    /// Wireless interfaces that fell back to the wireline escape route.
    pub wi_fallbacks: u64,
    /// Task attempts that failed and were retried with backoff.
    pub task_retries: u64,
    /// Tasks re-stolen from a dead core's queue by survivors.
    pub re_steals: u64,
    /// Cores whose frequency degraded.
    pub cores_degraded: u64,
    /// Cores that went offline.
    pub cores_failed: u64,
}

impl FaultStats {
    /// Total injected events across all families.
    pub fn injected(&self) -> u64 {
        self.flit_corruptions + self.task_retries + self.cores_degraded + self.cores_failed
    }

    /// Adds `other`'s counters into `self`.
    pub fn merge(&mut self, other: &FaultStats) {
        self.flit_corruptions += other.flit_corruptions;
        self.wi_fallbacks += other.wi_fallbacks;
        self.task_retries += other.task_retries;
        self.re_steals += other.re_steals;
        self.cores_degraded += other.cores_degraded;
        self.cores_failed += other.cores_failed;
    }

    /// Emits the counters through the harness telemetry (`fault.*`).
    pub fn emit_telemetry(&self) {
        use mapwave_harness::telemetry;
        telemetry::count("fault.injected", self.injected());
        telemetry::count("fault.flit_corruptions", self.flit_corruptions);
        telemetry::count("fault.reroutes", self.wi_fallbacks);
        telemetry::count("fault.task_retries", self.task_retries);
        telemetry::count("fault.re_steals", self.re_steals);
        telemetry::count("fault.cores_degraded", self.cores_degraded);
        telemetry::count("fault.cores_failed", self.cores_failed);
    }
}

/// Convenient glob import.
pub mod prelude {
    pub use crate::{cell_seed, CellFailureModel, CoreEvent, FaultConfig, FaultPlan, FaultStats};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_plan_never_fires() {
        let p = FaultPlan::none();
        assert!(p.is_none());
        assert!(!p.affects_noc());
        assert!(!p.affects_runtime());
        for i in 0..1_000u64 {
            assert!(!p.link_corrupts((i % 3) as usize, i));
            assert_eq!(p.core_event((i % 64) as usize, i / 64), CoreEvent::None);
            assert!(!p.task_fails(i, 0));
        }
    }

    #[test]
    fn queries_are_pure_and_order_independent() {
        let p = FaultPlan::build(&FaultConfig::at_rate(0.2, 9));
        let forward: Vec<bool> = (0..256).map(|i| p.link_corrupts(1, i)).collect();
        let backward: Vec<bool> = (0..256).rev().map(|i| p.link_corrupts(1, i)).collect();
        let backward_fwd: Vec<bool> = backward.into_iter().rev().collect();
        assert_eq!(forward, backward_fwd);
        assert!(forward.iter().any(|&b| b), "rate 0.2 must fire sometimes");
        assert!(forward.iter().any(|&b| !b), "rate 0.2 must also pass");
    }

    #[test]
    fn same_seed_same_plan_different_seed_differs() {
        let a = FaultPlan::build(&FaultConfig::at_rate(0.1, 42));
        let b = FaultPlan::build(&FaultConfig::at_rate(0.1, 42));
        assert_eq!(a, b);
        let c = FaultPlan::build(&FaultConfig::at_rate(0.1, 43));
        let va: Vec<bool> = (0..512).map(|i| a.task_fails(i, 0)).collect();
        let vc: Vec<bool> = (0..512).map(|i| c.task_fails(i, 0)).collect();
        assert_ne!(va, vc, "different fault seeds must differ somewhere");
    }

    #[test]
    fn empirical_rate_tracks_configured_rate() {
        let p = FaultPlan::build(&FaultConfig::at_rate(0.25, 7));
        let n = 40_000u64;
        let hits = (0..n).filter(|&i| p.link_corrupts(0, i)).count() as f64;
        let observed = hits / n as f64;
        assert!(
            (observed - 0.25).abs() < 0.02,
            "observed corruption rate {observed} too far from 0.25"
        );
    }

    #[test]
    fn retry_budget_forces_success() {
        let cfg = FaultConfig {
            task_fail_rate: 1.0,
            max_task_retries: 3,
            ..FaultConfig::at_rate(1.0, 5)
        };
        let p = FaultPlan::build(&cfg);
        assert!(p.task_fails(17, 0));
        assert!(p.task_fails(17, 2));
        assert!(!p.task_fails(17, 3), "attempt past the budget must succeed");
    }

    #[test]
    fn backoff_is_exponential() {
        let p = FaultPlan::build(&FaultConfig::at_rate(0.1, 1));
        let base = p.config().backoff_base_cycles;
        assert_eq!(p.backoff_cycles(1).to_bits(), base.to_bits());
        assert_eq!(p.backoff_cycles(2).to_bits(), (base * 2.0).to_bits());
        assert_eq!(p.backoff_cycles(4).to_bits(), (base * 8.0).to_bits());
    }

    #[test]
    fn core_events_fire_both_kinds_at_high_rates() {
        let p = FaultPlan::build(&FaultConfig::at_rate(0.9, 3));
        let mut degraded = 0;
        let mut failed = 0;
        for core in 0..64 {
            for slot in 0..16 {
                match p.core_event(core, slot) {
                    CoreEvent::Degrade => degraded += 1,
                    CoreEvent::Fail => failed += 1,
                    CoreEvent::None => {}
                }
            }
        }
        assert!(degraded > 0, "degradations must fire at rate 0.45");
        assert!(failed > 0, "failures must fire at rate 0.09");
    }

    #[test]
    #[should_panic]
    fn at_rate_rejects_out_of_range() {
        let _ = FaultConfig::at_rate(1.5, 0);
    }

    #[test]
    fn cell_seeds_are_stable_and_distinct() {
        let root = 0xFA17u64;
        let seeds: Vec<u64> = (0..64).map(|c| cell_seed(root, c)).collect();
        let again: Vec<u64> = (0..64).map(|c| cell_seed(root, c)).collect();
        assert_eq!(seeds, again, "cell seeds must be a pure function");
        let distinct: std::collections::BTreeSet<u64> = seeds.iter().copied().collect();
        assert_eq!(distinct.len(), 64, "cells must not share fault schedules");
        assert!(
            !seeds.contains(&stream_seed(root, "faults")),
            "cell streams must not collide with the root faults stream"
        );
    }

    #[test]
    fn for_cell_rebuilds_identical_plans() {
        let base = FaultConfig::at_rate(0.1, 99);
        let a = FaultPlan::build(&base.for_cell(5));
        let b = FaultPlan::build(&base.for_cell(5));
        assert_eq!(a, b, "same cell must replay the same schedule");
        let c = FaultPlan::build(&base.for_cell(6));
        let va: Vec<bool> = (0..512).map(|i| a.task_fails(i, 0)).collect();
        let vc: Vec<bool> = (0..512).map(|i| c.task_fails(i, 0)).collect();
        assert_ne!(va, vc, "neighbouring cells must differ somewhere");
    }

    #[test]
    fn cell_failure_model_is_deterministic_and_unbudgeted() {
        let m = CellFailureModel::new(1.0, 3);
        for attempt in 0..64 {
            assert!(
                m.attempt_fails(0, attempt),
                "rate 1.0 must fail every attempt (no forced success)"
            );
        }
        let none = CellFailureModel::none();
        assert!(none.is_none());
        assert!(!none.attempt_fails(0, 0));
        let a = CellFailureModel::new(0.5, 11);
        let b = CellFailureModel::new(0.5, 11);
        assert_eq!(a, b);
        let verdicts: Vec<bool> = (0..128).map(|c| a.attempt_fails(c, 0)).collect();
        assert!(verdicts.iter().any(|&v| v) && verdicts.iter().any(|&v| !v));
    }

    #[test]
    #[should_panic]
    fn cell_failure_model_rejects_out_of_range() {
        let _ = CellFailureModel::new(-0.1, 0);
    }

    #[test]
    fn stats_merge_and_injected() {
        let mut a = FaultStats {
            flit_corruptions: 3,
            wi_fallbacks: 1,
            task_retries: 2,
            re_steals: 4,
            cores_degraded: 1,
            cores_failed: 1,
        };
        let b = a;
        a.merge(&b);
        assert_eq!(a.flit_corruptions, 6);
        assert_eq!(a.re_steals, 8);
        assert_eq!(a.injected(), 2 * (3 + 2 + 1 + 1));
    }
}

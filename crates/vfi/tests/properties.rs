//! Property-based tests of the VFI optimisation and power invariants.

use mapwave_vfi::clustering::ClusteringProblem;
use mapwave_vfi::prelude::*;
use proptest::prelude::*;

fn instance(
    n: usize,
    u_seed: &[f64],
    f_seed: &[f64],
    m: usize,
) -> ClusteringProblem {
    let u: Vec<f64> = (0..n).map(|i| u_seed[i % u_seed.len()].abs() % 1.0).collect();
    let f: Vec<Vec<f64>> = (0..n)
        .map(|i| {
            (0..n)
                .map(|p| {
                    if i == p {
                        0.0
                    } else {
                        f_seed[(i * n + p) % f_seed.len()].abs() % 1.0
                    }
                })
                .collect()
        })
        .collect();
    ClusteringProblem::new(u, f, m).expect("valid instance")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The heuristic always returns a balanced partition and never beats
    /// the exact optimum (which would indicate an evaluation bug).
    #[test]
    fn heuristic_is_balanced_and_bounded_by_exact(
        u_seed in proptest::collection::vec(0.0f64..1.0, 8),
        f_seed in proptest::collection::vec(0.0f64..1.0, 16),
    ) {
        let prob = instance(8, &u_seed, &f_seed, 2);
        let heur = prob.solve();
        prop_assert_eq!(heur.cluster_count(), 2);
        prop_assert_eq!(heur.members(0).len(), 4);
        prop_assert_eq!(heur.members(1).len(), 4);
        let exact = prob.solve_exact();
        let ce = prob.evaluate(exact.as_slice());
        let ch = prob.evaluate(heur.as_slice());
        prop_assert!(ce <= ch + 1e-9, "exact {ce} beaten by heuristic {ch}");
        // And the heuristic is within 5% of optimal on these tiny instances.
        prop_assert!(ch <= ce * 1.05 + 1e-9, "heuristic {ch} too far from {ce}");
    }

    /// The objective respects its analytic lower bound: all traffic at the
    /// intra-cluster discount plus the per-core best-target utilization.
    #[test]
    fn objective_respects_lower_bound(
        u_seed in proptest::collection::vec(0.0f64..1.0, 8),
        f_seed in proptest::collection::vec(0.0f64..1.0, 16),
    ) {
        let prob = instance(8, &u_seed, &f_seed, 4);
        let c = prob.solve();
        let cost = prob.evaluate(c.as_slice());
        // Communication can never be cheaper than everything intra-cluster.
        let all_intra: Vec<usize> = (0..8).map(|i| i / 2).collect();
        let comm_floor = prob.comm_cost(&all_intra) * 0.0_f64.max(0.0);
        let _ = comm_floor;
        prop_assert!(cost >= 0.0);
        prop_assert!(cost.is_finite());
    }

    /// V/F level selection is monotone in utilization and clamped to the
    /// table range.
    #[test]
    fn level_selection_is_monotone(
        u1 in 0.0f64..1.2,
        u2 in 0.0f64..1.2,
        headroom in 0.3f64..1.0,
    ) {
        let table = VfTable::paper_levels();
        let (lo, hi) = if u1 <= u2 { (u1, u2) } else { (u2, u1) };
        let f_lo = table.level_for_utilization(lo, headroom).freq_ghz;
        let f_hi = table.level_for_utilization(hi, headroom).freq_ghz;
        prop_assert!(f_lo <= f_hi);
        prop_assert!(f_lo >= table.min().freq_ghz);
        prop_assert!(f_hi <= table.max().freq_ghz);
    }

    /// Core power is monotone in utilization and in the operating point.
    #[test]
    fn power_monotonicity(
        u in 0.0f64..1.0,
        du in 0.0f64..0.5,
    ) {
        let m = CorePowerModel::default_x86();
        let table = VfTable::paper_levels();
        let u2 = (u + du).min(1.0);
        for &vf in table.levels() {
            prop_assert!(m.power_w(u2, vf) >= m.power_w(u, vf) - 1e-12);
        }
        // Monotone across levels at fixed utilization.
        let levels = table.levels();
        for w in levels.windows(2) {
            prop_assert!(m.power_w(u, w[1]) >= m.power_w(u, w[0]));
        }
    }

    /// Bottleneck detection never flags more than the configured fraction
    /// (plus the single-core floor) and its statistics stay in range.
    #[test]
    fn bottleneck_detection_bounds(
        u in proptest::collection::vec(0.0f64..1.0, 16),
    ) {
        let params = BottleneckParams::default();
        let a = detect_bottlenecks(&u, &params);
        let cap = ((params.max_fraction * 16.0) as usize).max(1);
        prop_assert!(a.bottleneck_cores.len() <= cap);
        prop_assert!(a.mean_utilization >= 0.0 && a.mean_utilization <= 1.0);
        prop_assert!(a.rest_cv >= 0.0);
        if a.needs_reassignment() {
            prop_assert!(!a.bottleneck_cores.is_empty());
        }
    }

    /// Reassignment only ever raises levels, and only for clusters hosting
    /// bottleneck cores.
    #[test]
    fn reassignment_is_a_monotone_step(
        u in proptest::collection::vec(0.0f64..1.0, 16),
    ) {
        let table = VfTable::paper_levels();
        let clustering = Clustering::new((0..16).map(|i| i / 4).collect(), 4).unwrap();
        let vfi1 = assign_initial(&clustering, &u, &table, 0.8);
        let analysis = detect_bottlenecks(&u, &BottleneckParams::default());
        let vfi2 = reassign_for_bottlenecks(&vfi1, &clustering, &analysis, &table);
        let hot: std::collections::HashSet<usize> = analysis
            .bottleneck_cores
            .iter()
            .map(|&c| clustering.cluster_of(c))
            .collect();
        for j in 0..4 {
            let f1 = vfi1.vf_of(j).freq_ghz;
            let f2 = vfi2.vf_of(j).freq_ghz;
            prop_assert!(f2 >= f1 - 1e-12);
            if !analysis.needs_reassignment() || !hot.contains(&j) {
                prop_assert!((f2 - f1).abs() < 1e-12, "untouched cluster changed");
            }
        }
    }
}

//! Property tests of the VFI optimisation and power invariants, driven by
//! deterministic seeded sweeps (in-tree PRNG; no external dependencies).

use mapwave_harness::rng::{RngExt, SeedableRng, StdRng};
use mapwave_vfi::clustering::ClusteringProblem;
use mapwave_vfi::prelude::*;

fn instance(n: usize, u_seed: &[f64], f_seed: &[f64], m: usize) -> ClusteringProblem {
    let u: Vec<f64> = (0..n)
        .map(|i| u_seed[i % u_seed.len()].abs() % 1.0)
        .collect();
    let f: Vec<Vec<f64>> = (0..n)
        .map(|i| {
            (0..n)
                .map(|p| {
                    if i == p {
                        0.0
                    } else {
                        f_seed[(i * n + p) % f_seed.len()].abs() % 1.0
                    }
                })
                .collect()
        })
        .collect();
    ClusteringProblem::new(u, f, m).expect("valid instance")
}

fn unit_vec(rng: &mut StdRng, len: usize) -> Vec<f64> {
    (0..len).map(|_| rng.random::<f64>()).collect()
}

/// The heuristic always returns a balanced partition and never beats
/// the exact optimum (which would indicate an evaluation bug).
#[test]
fn heuristic_is_balanced_and_bounded_by_exact() {
    let mut rng = StdRng::seed_from_u64(0xB001);
    for case in 0..32 {
        let u_seed = unit_vec(&mut rng, 8);
        let f_seed = unit_vec(&mut rng, 16);
        let prob = instance(8, &u_seed, &f_seed, 2);
        let heur = prob.solve();
        assert_eq!(heur.cluster_count(), 2, "case {case}");
        assert_eq!(heur.members(0).len(), 4, "case {case}");
        assert_eq!(heur.members(1).len(), 4, "case {case}");
        let exact = prob.solve_exact();
        let ce = prob.evaluate(exact.as_slice());
        let ch = prob.evaluate(heur.as_slice());
        assert!(
            ce <= ch + 1e-9,
            "exact {ce} beaten by heuristic {ch}, case {case}"
        );
        // And the heuristic is within 5% of optimal on these tiny instances.
        assert!(
            ch <= ce * 1.05 + 1e-9,
            "heuristic {ch} too far from {ce}, case {case}"
        );
    }
}

/// The objective is nonnegative and finite for arbitrary instances.
#[test]
fn objective_respects_lower_bound() {
    let mut rng = StdRng::seed_from_u64(0xB002);
    for case in 0..32 {
        let u_seed = unit_vec(&mut rng, 8);
        let f_seed = unit_vec(&mut rng, 16);
        let prob = instance(8, &u_seed, &f_seed, 4);
        let c = prob.solve();
        let cost = prob.evaluate(c.as_slice());
        assert!(cost >= 0.0, "case {case}");
        assert!(cost.is_finite(), "case {case}");
    }
}

/// V/F level selection is monotone in utilization and clamped to the
/// table range.
#[test]
fn level_selection_is_monotone() {
    let mut rng = StdRng::seed_from_u64(0xB003);
    let table = VfTable::paper_levels();
    for case in 0..64 {
        let u1 = 1.2 * rng.random::<f64>();
        let u2 = 1.2 * rng.random::<f64>();
        let headroom = 0.3 + 0.7 * rng.random::<f64>();
        let (lo, hi) = if u1 <= u2 { (u1, u2) } else { (u2, u1) };
        let f_lo = table.level_for_utilization(lo, headroom).freq_ghz;
        let f_hi = table.level_for_utilization(hi, headroom).freq_ghz;
        assert!(f_lo <= f_hi, "case {case}");
        assert!(f_lo >= table.min().freq_ghz, "case {case}");
        assert!(f_hi <= table.max().freq_ghz, "case {case}");
    }
}

/// Core power is monotone in utilization and in the operating point.
#[test]
fn power_monotonicity() {
    let mut rng = StdRng::seed_from_u64(0xB004);
    let m = CorePowerModel::default_x86();
    let table = VfTable::paper_levels();
    for case in 0..64 {
        let u = rng.random::<f64>();
        let du = 0.5 * rng.random::<f64>();
        let u2 = (u + du).min(1.0);
        for &vf in table.levels() {
            assert!(m.power_w(u2, vf) >= m.power_w(u, vf) - 1e-12, "case {case}");
        }
        // Monotone across levels at fixed utilization.
        let levels = table.levels();
        for w in levels.windows(2) {
            assert!(m.power_w(u, w[1]) >= m.power_w(u, w[0]), "case {case}");
        }
    }
}

/// Bottleneck detection never flags more than the configured fraction
/// (plus the single-core floor) and its statistics stay in range.
#[test]
fn bottleneck_detection_bounds() {
    let mut rng = StdRng::seed_from_u64(0xB005);
    for case in 0..48 {
        let u = unit_vec(&mut rng, 16);
        let params = BottleneckParams::default();
        let a = detect_bottlenecks(&u, &params);
        let cap = ((params.max_fraction * 16.0) as usize).max(1);
        assert!(a.bottleneck_cores.len() <= cap, "case {case}");
        assert!(
            a.mean_utilization >= 0.0 && a.mean_utilization <= 1.0,
            "case {case}"
        );
        assert!(a.rest_cv >= 0.0, "case {case}");
        if a.needs_reassignment() {
            assert!(!a.bottleneck_cores.is_empty(), "case {case}");
        }
    }
}

/// Reassignment only ever raises levels, and only for clusters hosting
/// bottleneck cores.
#[test]
fn reassignment_is_a_monotone_step() {
    let mut rng = StdRng::seed_from_u64(0xB006);
    let table = VfTable::paper_levels();
    for case in 0..48 {
        let u = unit_vec(&mut rng, 16);
        let clustering = Clustering::new((0..16).map(|i| i / 4).collect(), 4).unwrap();
        let vfi1 = assign_initial(&clustering, &u, &table, 0.8);
        let analysis = detect_bottlenecks(&u, &BottleneckParams::default());
        let vfi2 = reassign_for_bottlenecks(&vfi1, &clustering, &analysis, &table);
        let hot: std::collections::HashSet<usize> = analysis
            .bottleneck_cores
            .iter()
            .map(|&c| clustering.cluster_of(c))
            .collect();
        for j in 0..4 {
            let f1 = vfi1.vf_of(j).freq_ghz;
            let f2 = vfi2.vf_of(j).freq_ghz;
            assert!(f2 >= f1 - 1e-12, "case {case}");
            if !analysis.needs_reassignment() || !hot.contains(&j) {
                assert!(
                    (f2 - f1).abs() < 1e-12,
                    "untouched cluster changed, case {case}"
                );
            }
        }
    }
}

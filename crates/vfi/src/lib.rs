//! # mapwave-vfi
//!
//! Voltage/Frequency Island machinery for the DAC'15 reproduction:
//!
//! * [`vf`] — the discrete V/F operating points of the paper's Table 2;
//! * [`clustering`] — the 0-1 quadratic VFI clustering program of Eq. (1)
//!   with an exact branch-and-bound solver (the Gurobi substitute) and a
//!   scalable deterministic heuristic;
//! * [`assignment`] — per-cluster V/F selection (VFI 1), bottleneck-core
//!   detection, and the VFI 2 reassignment of Section 4.2;
//! * [`power`] — the analytic core power model standing in for McPAT.
//!
//! ## Quick start
//!
//! ```
//! use mapwave_vfi::prelude::*;
//!
//! // Eight cores, two islands: cohabit the heavy talkers, group similar
//! // utilizations, then pick V/F per island.
//! let utilization = vec![0.2, 0.25, 0.3, 0.2, 0.8, 0.85, 0.8, 0.9];
//! let mut traffic = vec![vec![0.0; 8]; 8];
//! traffic[4][5] = 1.0;
//! traffic[5][4] = 1.0;
//! let problem = ClusteringProblem::new(utilization.clone(), traffic, 2)?;
//! let clustering = problem.solve();
//! let table = VfTable::paper_levels();
//! let vfi1 = assign_initial(&clustering, &utilization, &table, 0.9);
//! assert_eq!(vfi1.cluster_count(), 2);
//! # Ok::<(), mapwave_vfi::clustering::ClusteringError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod assignment;
pub mod clustering;
pub mod power;
pub mod vf;

pub use assignment::{
    assign_initial, detect_bottlenecks, reassign_for_bottlenecks, reassign_for_degradation,
    BottleneckAnalysis, BottleneckParams, VfAssignment,
};
pub use clustering::{Clustering, ClusteringError, ClusteringProblem};
pub use power::{edp, CorePowerModel};
pub use vf::{VfPair, VfTable};

/// Convenient glob import.
pub mod prelude {
    pub use crate::assignment::{
        assign_initial, detect_bottlenecks, reassign_for_bottlenecks, reassign_for_degradation,
        BottleneckAnalysis, BottleneckParams, VfAssignment,
    };
    pub use crate::clustering::{Clustering, ClusteringProblem};
    pub use crate::power::{edp, CorePowerModel};
    pub use crate::vf::{VfPair, VfTable};
}

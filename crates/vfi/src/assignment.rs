//! Per-cluster V/F assignment and bottleneck-core reassignment
//! (paper Sections 4.2 and 7.1).
//!
//! The initial assignment (**VFI 1**) gives every cluster the slowest V/F
//! level that can absorb the cluster's mean utilization with some headroom.
//! Certain Phoenix++ applications (PCA, MM, HIST) have a *nearly
//! homogeneous* utilization profile plus a few **bottleneck cores** (the
//! master cores running library initialisation and the late Merge
//! sub-stages). When traffic placement drops such a bottleneck core into a
//! slow cluster, the whole application stalls behind it. The fix (**VFI 2**)
//! raises the V/F of every cluster containing a bottleneck core to the
//! maximum level, leaving the clustering — and therefore the traffic
//! pattern — untouched.

use crate::clustering::Clustering;
use crate::vf::{VfPair, VfTable};
use mapwave_harness::hash::{StableHash, StableHasher};
use std::fmt;

/// A V/F level per cluster.
///
/// # Examples
///
/// ```
/// use mapwave_vfi::assignment::VfAssignment;
/// use mapwave_vfi::vf::{VfPair, VfTable};
///
/// let a = VfAssignment::new(vec![VfPair::new(0.8, 2.0), VfPair::new(1.0, 2.5)]);
/// assert_eq!(a.cluster_count(), 2);
/// assert!((a.speed_of(0, &VfTable::paper_levels()) - 0.8).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct VfAssignment {
    per_cluster: Vec<VfPair>,
}

impl VfAssignment {
    /// Wraps per-cluster operating points.
    pub fn new(per_cluster: Vec<VfPair>) -> Self {
        VfAssignment { per_cluster }
    }

    /// A uniform assignment (every cluster at `pair`) — the non-VFI
    /// baseline uses this at the table maximum.
    pub fn uniform(m: usize, pair: VfPair) -> Self {
        VfAssignment {
            per_cluster: vec![pair; m],
        }
    }

    /// Number of clusters covered.
    pub fn cluster_count(&self) -> usize {
        self.per_cluster.len()
    }

    /// Operating point of cluster `j`.
    ///
    /// # Panics
    ///
    /// Panics if `j` is out of range.
    pub fn vf_of(&self, j: usize) -> VfPair {
        self.per_cluster[j]
    }

    /// All operating points.
    pub fn as_slice(&self) -> &[VfPair] {
        &self.per_cluster
    }

    /// Relative speed of cluster `j` versus the table maximum.
    pub fn speed_of(&self, j: usize, table: &VfTable) -> f64 {
        self.per_cluster[j].speed_ratio(table.max().freq_ghz)
    }

    /// Per-core speed ratios for `clustering` (used to clock the platform
    /// and NoC simulations).
    pub fn core_speeds(&self, clustering: &Clustering, table: &VfTable) -> Vec<f64> {
        (0..clustering.len())
            .map(|i| self.speed_of(clustering.cluster_of(i), table))
            .collect()
    }
}

impl fmt::Display for VfAssignment {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (j, p) in self.per_cluster.iter().enumerate() {
            if j > 0 {
                write!(f, ", ")?;
            }
            write!(f, "C{j}={p}")?;
        }
        Ok(())
    }
}

/// Parameters of the bottleneck-core detector.
#[derive(Debug, Clone, PartialEq)]
pub struct BottleneckParams {
    /// A core is a bottleneck when its utilization exceeds the mean by this
    /// factor.
    pub ratio_threshold: f64,
    /// The profile counts as "nearly homogeneous" when the coefficient of
    /// variation of the non-bottleneck cores is below this.
    pub homogeneity_cv: f64,
    /// At most this fraction of cores may be flagged (bottlenecks are "a
    /// few" cores; more than this means the profile is simply heterogeneous).
    pub max_fraction: f64,
}

impl StableHash for BottleneckParams {
    fn stable_hash(&self, h: &mut StableHasher) {
        self.ratio_threshold.stable_hash(h);
        self.homogeneity_cv.stable_hash(h);
        self.max_fraction.stable_hash(h);
    }
}

impl Default for BottleneckParams {
    fn default() -> Self {
        BottleneckParams {
            ratio_threshold: 1.32,
            homogeneity_cv: 0.30,
            max_fraction: 0.15,
        }
    }
}

/// Result of bottleneck analysis over a utilization profile.
#[derive(Debug, Clone, PartialEq)]
pub struct BottleneckAnalysis {
    /// Indices of the detected bottleneck cores (empty if none).
    pub bottleneck_cores: Vec<usize>,
    /// Ratio of the strongest bottleneck utilization to the mean.
    pub peak_ratio: f64,
    /// Mean utilization over all cores.
    pub mean_utilization: f64,
    /// Mean utilization over the bottleneck cores (0 when none).
    pub bottleneck_utilization: f64,
    /// Whether the non-bottleneck profile is nearly homogeneous.
    pub homogeneous: bool,
    /// Coefficient of variation of the non-bottleneck cores (the
    /// homogeneity statistic).
    pub rest_cv: f64,
}

impl BottleneckAnalysis {
    /// Whether V/F reassignment (VFI 2) is warranted: bottleneck cores exist
    /// *and* the remaining profile is nearly homogeneous — heterogeneous
    /// profiles (Kmeans, WC) already place their hot cores in fast clusters.
    pub fn needs_reassignment(&self) -> bool {
        !self.bottleneck_cores.is_empty() && self.homogeneous
    }
}

/// Detects bottleneck cores in a utilization profile.
///
/// # Panics
///
/// Panics if `utilization` is empty.
pub fn detect_bottlenecks(utilization: &[f64], params: &BottleneckParams) -> BottleneckAnalysis {
    assert!(!utilization.is_empty(), "utilization must be nonempty");
    let n = utilization.len();
    let mean = utilization.iter().sum::<f64>() / n as f64;
    let threshold = mean * params.ratio_threshold;
    let mut bottleneck_cores: Vec<usize> = (0..n)
        .filter(|&i| utilization[i] > threshold && mean > 0.0)
        .collect();
    let max_bottlenecks = ((params.max_fraction * n as f64) as usize).max(1);
    if bottleneck_cores.len() > max_bottlenecks {
        // Too many "hot" cores: the profile is heterogeneous, not
        // homogeneous-with-bottlenecks.
        bottleneck_cores.clear();
    }

    let rest: Vec<f64> = (0..n)
        .filter(|i| !bottleneck_cores.contains(i))
        .map(|i| utilization[i])
        .collect();
    let rest_mean = rest.iter().sum::<f64>() / rest.len().max(1) as f64;
    let rest_var =
        rest.iter().map(|&u| (u - rest_mean).powi(2)).sum::<f64>() / rest.len().max(1) as f64;
    let cv = if rest_mean > 0.0 {
        rest_var.sqrt() / rest_mean
    } else {
        0.0
    };

    let bottleneck_utilization = if bottleneck_cores.is_empty() {
        0.0
    } else {
        bottleneck_cores
            .iter()
            .map(|&i| utilization[i])
            .sum::<f64>()
            / bottleneck_cores.len() as f64
    };
    let peak = utilization.iter().cloned().fold(0.0, f64::max);

    BottleneckAnalysis {
        bottleneck_cores,
        peak_ratio: if mean > 0.0 { peak / mean } else { 0.0 },
        mean_utilization: mean,
        bottleneck_utilization,
        homogeneous: cv < params.homogeneity_cv,
        rest_cv: cv,
    }
}

/// The initial per-cluster V/F assignment (**VFI 1**): each cluster gets the
/// slowest level that absorbs its mean utilization with `headroom`.
///
/// # Panics
///
/// Panics if `utilization.len() != clustering.len()` or `headroom ∉ (0, 1]`.
pub fn assign_initial(
    clustering: &Clustering,
    utilization: &[f64],
    table: &VfTable,
    headroom: f64,
) -> VfAssignment {
    assert_eq!(
        utilization.len(),
        clustering.len(),
        "utilization length mismatch"
    );
    let per_cluster = (0..clustering.cluster_count())
        .map(|j| {
            let members = clustering.members(j);
            let mean = members.iter().map(|&i| utilization[i]).sum::<f64>() / members.len() as f64;
            table.level_for_utilization(mean, headroom)
        })
        .collect();
    VfAssignment::new(per_cluster)
}

/// The bottleneck reassignment (**VFI 2**): clusters hosting bottleneck
/// cores are raised one V/F level (the paper's PCA/HIST/MM all moved
/// 0.9 V/2.25 GHz → 1.0 V/2.5 GHz — a single step); all other clusters
/// keep their VFI 1 levels. Returns the input unchanged when
/// [`BottleneckAnalysis::needs_reassignment`] is false.
pub fn reassign_for_bottlenecks(
    initial: &VfAssignment,
    clustering: &Clustering,
    analysis: &BottleneckAnalysis,
    table: &VfTable,
) -> VfAssignment {
    if !analysis.needs_reassignment() {
        return initial.clone();
    }
    let mut per_cluster = initial.as_slice().to_vec();
    for &core in &analysis.bottleneck_cores {
        let j = clustering.cluster_of(core);
        per_cluster[j] = table.step_up(initial.vf_of(j));
    }
    VfAssignment::new(per_cluster)
}

/// The graceful-degradation reaction: re-runs bottleneck detection against
/// a *degraded* utilization profile (cores slowed or lost to faults shift
/// load onto survivors, which can turn a formerly balanced profile into a
/// homogeneous-with-bottlenecks one) and, when warranted, steps up the
/// clusters hosting the new bottlenecks — the same single-level VFI 2 move,
/// applied at fault-response time instead of design time. Returns the
/// reassignment together with the analysis that justified (or declined) it,
/// so callers can log why the fault response did or did not escalate V/F.
///
/// The clustering — and therefore the traffic pattern — stays untouched:
/// degradation changes *when* clusters are clocked up, never *where* cores
/// live.
///
/// # Panics
///
/// Panics if `degraded_utilization` is empty or its length differs from
/// `clustering.len()`.
pub fn reassign_for_degradation(
    initial: &VfAssignment,
    clustering: &Clustering,
    degraded_utilization: &[f64],
    table: &VfTable,
    params: &BottleneckParams,
) -> (VfAssignment, BottleneckAnalysis) {
    assert_eq!(
        degraded_utilization.len(),
        clustering.len(),
        "utilization length mismatch"
    );
    let analysis = detect_bottlenecks(degraded_utilization, params);
    let reassigned = reassign_for_bottlenecks(initial, clustering, &analysis, table);
    (reassigned, analysis)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flat_profile(n: usize, base: f64, spikes: &[(usize, f64)]) -> Vec<f64> {
        let mut u = vec![base; n];
        for &(i, v) in spikes {
            u[i] = v;
        }
        u
    }

    #[test]
    fn detects_single_bottleneck_in_flat_profile() {
        let u = flat_profile(16, 0.5, &[(3, 0.9)]);
        let a = detect_bottlenecks(&u, &BottleneckParams::default());
        assert_eq!(a.bottleneck_cores, vec![3]);
        assert!(a.homogeneous);
        assert!(a.needs_reassignment());
        assert!(a.peak_ratio > 1.25);
        assert!((a.bottleneck_utilization - 0.9).abs() < 1e-12);
    }

    #[test]
    fn heterogeneous_profile_needs_no_reassignment() {
        // Kmeans-like: half the cores much cooler than the rest.
        let u: Vec<f64> = (0..16).map(|i| if i < 8 { 0.9 } else { 0.2 }).collect();
        let a = detect_bottlenecks(&u, &BottleneckParams::default());
        assert!(!a.needs_reassignment());
    }

    #[test]
    fn flat_profile_has_no_bottlenecks() {
        let u = flat_profile(16, 0.6, &[]);
        let a = detect_bottlenecks(&u, &BottleneckParams::default());
        assert!(a.bottleneck_cores.is_empty());
        assert!(!a.needs_reassignment());
        assert!(a.homogeneous);
    }

    #[test]
    fn too_many_hot_cores_is_not_bottleneck() {
        // 6 of 16 hot (> 15% cap): treated as heterogeneous.
        let spikes: Vec<(usize, f64)> = (0..6).map(|i| (i, 0.95)).collect();
        let u = flat_profile(16, 0.4, &spikes);
        let a = detect_bottlenecks(&u, &BottleneckParams::default());
        assert!(a.bottleneck_cores.is_empty());
    }

    #[test]
    fn initial_assignment_uses_cluster_means() {
        let clustering = Clustering::new(vec![0, 0, 1, 1], 2).unwrap();
        let u = vec![0.2, 0.3, 0.85, 0.9];
        let table = VfTable::paper_levels();
        let a = assign_initial(&clustering, &u, &table, 0.9);
        assert!(a.vf_of(0).freq_ghz < a.vf_of(1).freq_ghz);
        assert_eq!(a.vf_of(1).freq_ghz, 2.5);
    }

    #[test]
    fn reassignment_raises_only_bottleneck_clusters() {
        let clustering = Clustering::new(vec![0, 0, 1, 1], 2).unwrap();
        let u = vec![0.5, 0.95, 0.5, 0.5];
        let table = VfTable::paper_levels();
        let vfi1 = assign_initial(&clustering, &u, &table, 0.9);
        let analysis = detect_bottlenecks(&u, &BottleneckParams::default());
        assert!(analysis.needs_reassignment());
        let vfi2 = reassign_for_bottlenecks(&vfi1, &clustering, &analysis, &table);
        assert_eq!(vfi2.vf_of(0), table.max());
        assert_eq!(vfi2.vf_of(1), vfi1.vf_of(1));
    }

    #[test]
    fn no_reassignment_when_not_needed() {
        let clustering = Clustering::new(vec![0, 1], 2).unwrap();
        let table = VfTable::paper_levels();
        let vfi1 = VfAssignment::uniform(2, table.min());
        let analysis = detect_bottlenecks(&[0.5, 0.5], &BottleneckParams::default());
        let vfi2 = reassign_for_bottlenecks(&vfi1, &clustering, &analysis, &table);
        assert_eq!(vfi1, vfi2);
    }

    #[test]
    fn core_speeds_follow_clusters() {
        let clustering = Clustering::new(vec![0, 1, 0, 1], 2).unwrap();
        let table = VfTable::paper_levels();
        let a = VfAssignment::new(vec![VfPair::new(0.6, 1.5), VfPair::new(1.0, 2.5)]);
        let speeds = a.core_speeds(&clustering, &table);
        assert_eq!(speeds, vec![0.6, 1.0, 0.6, 1.0]);
    }

    #[test]
    fn display_lists_clusters() {
        let a = VfAssignment::uniform(2, VfPair::new(1.0, 2.5));
        assert_eq!(a.to_string(), "C0=1.00V/2.50GHz, C1=1.00V/2.50GHz");
    }

    #[test]
    fn zero_utilization_profile() {
        let a = detect_bottlenecks(&[0.0; 8], &BottleneckParams::default());
        assert!(a.bottleneck_cores.is_empty());
        assert_eq!(a.peak_ratio, 0.0);
    }

    #[test]
    fn degradation_reassignment_steps_up_overloaded_cluster() {
        // A degraded core 1 forced its work onto core 0, which now runs
        // hot against an otherwise flat survivor profile: its cluster must
        // be clocked up, the other left alone.
        let clustering = Clustering::new(vec![0, 0, 1, 1], 2).unwrap();
        let table = VfTable::paper_levels();
        let clean = vec![0.55, 0.55, 0.55, 0.55];
        let vfi1 = assign_initial(&clustering, &clean, &table, 0.9);
        let degraded = vec![0.95, 0.5, 0.55, 0.55];
        let (vfi2, analysis) = reassign_for_degradation(
            &vfi1,
            &clustering,
            &degraded,
            &table,
            &BottleneckParams::default(),
        );
        assert_eq!(analysis.bottleneck_cores, vec![0]);
        assert!(analysis.needs_reassignment());
        assert!(vfi2.vf_of(0).freq_ghz > vfi1.vf_of(0).freq_ghz);
        assert_eq!(vfi2.vf_of(1), vfi1.vf_of(1));
    }

    #[test]
    fn degradation_reassignment_declines_on_heterogeneous_profile() {
        // Widespread degradation (no single hot survivor) must not trigger
        // a step-up: the profile is heterogeneous, not bottlenecked.
        let clustering = Clustering::new(vec![0, 0, 1, 1], 2).unwrap();
        let table = VfTable::paper_levels();
        let vfi1 = VfAssignment::uniform(2, table.min());
        let degraded = vec![0.9, 0.1, 0.85, 0.15];
        let (vfi2, analysis) = reassign_for_degradation(
            &vfi1,
            &clustering,
            &degraded,
            &table,
            &BottleneckParams::default(),
        );
        assert!(!analysis.needs_reassignment());
        assert_eq!(vfi2, vfi1);
    }
}

//! Core-level power and energy models (the McPAT substitute).
//!
//! The study needs only the parts of McPAT that respond to the knobs it
//! turns: dynamic power scaling as `u · C_eff · V² · f` with utilization,
//! voltage and frequency, and leakage growing superlinearly with voltage.
//! Defaults are calibrated to a mid-2010s x86 core: ~2 W dynamic at full
//! utilization and 1.0 V / 2.5 GHz, ~0.5 W leakage at 1.0 V.

use crate::vf::VfPair;

/// Analytic per-core power model.
///
/// # Examples
///
/// ```
/// use mapwave_vfi::power::CorePowerModel;
/// use mapwave_vfi::vf::VfPair;
///
/// let m = CorePowerModel::default_x86();
/// let fast = m.power_w(1.0, VfPair::new(1.0, 2.5));
/// let slow = m.power_w(1.0, VfPair::new(0.6, 1.5));
/// assert!(slow < fast / 2.0); // V²f scaling bites hard
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct CorePowerModel {
    /// Effective switched capacitance in nanofarads: `P_dyn = u·C·V²·f`.
    pub c_eff_nf: f64,
    /// Leakage coefficient in watts per volt²: `P_leak = k·V²`.
    pub leak_w_per_v2: f64,
    /// Fraction of dynamic power drawn when a core idles (clock tree,
    /// front-end). Idle cores are clock-gated, not power-gated.
    pub idle_activity: f64,
}

impl CorePowerModel {
    /// Calibration used throughout the reproduction: a thin 65-nm-era x86
    /// core (~0.75 W dynamic at 1.0 V / 2.5 GHz and full utilization,
    /// ~0.2 W leakage), which keeps the interconnect at the realistic
    /// 5–15% share of chip energy.
    pub fn default_x86() -> Self {
        CorePowerModel {
            c_eff_nf: 0.3,
            leak_w_per_v2: 0.2,
            idle_activity: 0.25,
        }
    }

    /// Dynamic power at `utilization ∈ [0, 1]` and operating point `vf`, in
    /// watts. Utilization below the idle floor is clamped up to it.
    ///
    /// # Panics
    ///
    /// Panics if `utilization` is negative or non-finite.
    pub fn dynamic_power_w(&self, utilization: f64, vf: VfPair) -> f64 {
        assert!(
            utilization >= 0.0 && utilization.is_finite(),
            "utilization must be nonnegative"
        );
        let activity = utilization.max(self.idle_activity);
        activity * self.c_eff_nf * 1e-9 * vf.voltage_v.powi(2) * vf.freq_ghz * 1e9
    }

    /// Leakage power at `vf`, in watts.
    pub fn leakage_power_w(&self, vf: VfPair) -> f64 {
        self.leak_w_per_v2 * vf.voltage_v.powi(2)
    }

    /// Total core power in watts.
    pub fn power_w(&self, utilization: f64, vf: VfPair) -> f64 {
        self.dynamic_power_w(utilization, vf) + self.leakage_power_w(vf)
    }

    /// Energy in joules for running at `utilization` and `vf` for
    /// `seconds`.
    pub fn energy_j(&self, utilization: f64, vf: VfPair, seconds: f64) -> f64 {
        self.power_w(utilization, vf) * seconds
    }
}

impl Default for CorePowerModel {
    fn default() -> Self {
        CorePowerModel::default_x86()
    }
}

/// Energy–delay product: `energy × delay`. The paper uses execution time as
/// the delay term for full-system EDP and average packet latency for
/// network EDP.
pub fn edp(energy_j: f64, delay_s: f64) -> f64 {
    energy_j * delay_s
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> CorePowerModel {
        CorePowerModel::default_x86()
    }

    #[test]
    fn default_calibration_magnitudes() {
        let m = model();
        let p = m.power_w(1.0, VfPair::new(1.0, 2.5));
        // ~0.75 W dynamic + 0.2 W leakage.
        assert!((p - 0.95).abs() < 0.01, "power {p}");
    }

    #[test]
    fn dynamic_scales_with_v_squared_f() {
        let m = model();
        let hi = m.dynamic_power_w(1.0, VfPair::new(1.0, 2.5));
        let lo = m.dynamic_power_w(1.0, VfPair::new(0.5, 1.25));
        // (0.5² · 1.25) / (1² · 2.5) = 0.125
        assert!((lo / hi - 0.125).abs() < 1e-9);
    }

    #[test]
    fn leakage_scales_with_v_squared() {
        let m = model();
        let hi = m.leakage_power_w(VfPair::new(1.0, 2.5));
        let lo = m.leakage_power_w(VfPair::new(0.5, 1.25));
        assert!((lo / hi - 0.25).abs() < 1e-9);
    }

    #[test]
    fn power_monotone_in_utilization() {
        let m = model();
        let vf = VfPair::new(0.9, 2.25);
        let mut prev = 0.0;
        for i in 0..=10 {
            let p = m.power_w(i as f64 / 10.0, vf);
            assert!(p >= prev);
            prev = p;
        }
    }

    #[test]
    fn idle_floor_applies() {
        let m = model();
        let vf = VfPair::new(1.0, 2.5);
        assert_eq!(m.dynamic_power_w(0.0, vf), m.dynamic_power_w(0.05, vf));
        assert!(m.dynamic_power_w(0.0, vf) > 0.0);
    }

    #[test]
    fn energy_linear_in_time() {
        let m = model();
        let vf = VfPair::new(0.8, 2.0);
        let e1 = m.energy_j(0.5, vf, 1.0);
        let e3 = m.energy_j(0.5, vf, 3.0);
        assert!((e3 - 3.0 * e1).abs() < 1e-12);
    }

    #[test]
    fn edp_definition() {
        assert!((edp(2.0, 3.0) - 6.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic]
    fn negative_utilization_panics() {
        let _ = model().dynamic_power_w(-0.1, VfPair::new(1.0, 2.5));
    }

    #[test]
    fn dvfs_saves_energy_for_slack_workloads() {
        // A workload needing 0.6 of peak throughput: run it at 2.5 GHz with
        // u = 0.6, or at 2.0 GHz (0.8 V) with u = 0.75 for the same work.
        // The slower point must win on energy for equal wall-clock time.
        let m = model();
        let fast = m.energy_j(0.6, VfPair::new(1.0, 2.5), 1.0);
        let slow = m.energy_j(0.75, VfPair::new(0.8, 2.0), 1.0);
        assert!(slow < fast, "slow {slow} fast {fast}");
    }
}

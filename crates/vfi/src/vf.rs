//! Voltage/frequency operating points.
//!
//! The paper's platform exposes four discrete V/F levels (Table 2):
//! 0.6 V / 1.5 GHz, 0.8 V / 2.0 GHz, 0.9 V / 2.25 GHz and 1.0 V / 2.5 GHz.
//! Every VFI cluster is assigned one of these pairs; the non-VFI baseline
//! runs every core at the maximum level.

use mapwave_harness::hash::{StableHash, StableHasher};
use std::fmt;

/// One voltage/frequency operating point.
///
/// # Examples
///
/// ```
/// use mapwave_vfi::vf::VfPair;
///
/// let p = VfPair::new(0.9, 2.25);
/// assert_eq!(format!("{p}"), "0.90V/2.25GHz");
/// assert!((p.speed_ratio(2.5) - 0.9).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd)]
pub struct VfPair {
    /// Supply voltage in volts.
    pub voltage_v: f64,
    /// Clock frequency in GHz.
    pub freq_ghz: f64,
}

impl VfPair {
    /// Creates an operating point.
    ///
    /// # Panics
    ///
    /// Panics if voltage or frequency is not positive and finite.
    pub fn new(voltage_v: f64, freq_ghz: f64) -> Self {
        assert!(
            voltage_v > 0.0 && voltage_v.is_finite(),
            "voltage must be positive"
        );
        assert!(
            freq_ghz > 0.0 && freq_ghz.is_finite(),
            "frequency must be positive"
        );
        VfPair {
            voltage_v,
            freq_ghz,
        }
    }

    /// Relative speed of this point versus a reference frequency
    /// (`freq / reference`).
    pub fn speed_ratio(&self, reference_ghz: f64) -> f64 {
        self.freq_ghz / reference_ghz
    }
}

impl fmt::Display for VfPair {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.2}V/{:.2}GHz", self.voltage_v, self.freq_ghz)
    }
}

/// The ordered menu of available operating points (ascending frequency).
///
/// # Examples
///
/// ```
/// use mapwave_vfi::vf::VfTable;
///
/// let t = VfTable::paper_levels();
/// assert_eq!(t.len(), 4);
/// assert_eq!(t.max().freq_ghz, 2.5);
/// assert_eq!(t.min().freq_ghz, 1.5);
/// // The lowest level able to serve 70% sustained utilization with 10%
/// // headroom is 2.0 GHz (needs >= 0.7 * 2.5 / 0.9 = 1.94 GHz).
/// assert_eq!(t.level_for_utilization(0.7, 0.9).freq_ghz, 2.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct VfTable {
    levels: Vec<VfPair>,
}

impl VfTable {
    /// Builds a table from operating points (sorted ascending by frequency).
    ///
    /// # Panics
    ///
    /// Panics if `levels` is empty.
    pub fn new(mut levels: Vec<VfPair>) -> Self {
        assert!(!levels.is_empty(), "a VF table needs at least one level");
        levels.sort_by(|a, b| {
            a.freq_ghz
                .partial_cmp(&b.freq_ghz)
                .expect("frequencies are finite")
        });
        VfTable { levels }
    }

    /// The four levels used throughout the paper (Table 2).
    pub fn paper_levels() -> Self {
        VfTable::new(vec![
            VfPair::new(0.6, 1.5),
            VfPair::new(0.8, 2.0),
            VfPair::new(0.9, 2.25),
            VfPair::new(1.0, 2.5),
        ])
    }

    /// Number of levels.
    pub fn len(&self) -> usize {
        self.levels.len()
    }

    /// Whether the table has no levels (never true for a constructed table).
    pub fn is_empty(&self) -> bool {
        self.levels.is_empty()
    }

    /// All levels, ascending by frequency.
    pub fn levels(&self) -> &[VfPair] {
        &self.levels
    }

    /// The fastest level.
    pub fn max(&self) -> VfPair {
        *self.levels.last().expect("table is nonempty")
    }

    /// The slowest level.
    pub fn min(&self) -> VfPair {
        *self.levels.first().expect("table is nonempty")
    }

    /// The slowest level whose frequency can absorb a sustained utilization
    /// of `utilization` (measured at the maximum frequency) while staying
    /// below the occupancy fraction `headroom` ∈ (0, 1].
    ///
    /// A cluster whose cores commit `u` of peak issue slots at `f_max` needs
    /// `f ≥ u · f_max / headroom`; anything slower would saturate the cores
    /// and stretch execution.
    ///
    /// # Panics
    ///
    /// Panics if `headroom` is not in `(0, 1]` or `utilization` is negative.
    pub fn level_for_utilization(&self, utilization: f64, headroom: f64) -> VfPair {
        assert!(
            headroom > 0.0 && headroom <= 1.0,
            "headroom must be in (0,1]"
        );
        assert!(utilization >= 0.0, "utilization must be nonnegative");
        let needed = utilization * self.max().freq_ghz / headroom;
        for &level in &self.levels {
            if level.freq_ghz >= needed {
                return level;
            }
        }
        self.max()
    }

    /// The next faster level after `pair`, or `pair` itself if already at
    /// (or above) the top.
    pub fn step_up(&self, pair: VfPair) -> VfPair {
        for &level in &self.levels {
            if level.freq_ghz > pair.freq_ghz + 1e-12 {
                return level;
            }
        }
        self.max()
    }

    /// Index of the level equal to `pair`, if present.
    pub fn index_of(&self, pair: VfPair) -> Option<usize> {
        self.levels.iter().position(|&l| {
            (l.freq_ghz - pair.freq_ghz).abs() < 1e-9 && (l.voltage_v - pair.voltage_v).abs() < 1e-9
        })
    }
}

impl StableHash for VfPair {
    fn stable_hash(&self, h: &mut StableHasher) {
        self.voltage_v.stable_hash(h);
        self.freq_ghz.stable_hash(h);
    }
}

impl StableHash for VfTable {
    fn stable_hash(&self, h: &mut StableHasher) {
        self.levels.stable_hash(h);
    }
}

impl Default for VfTable {
    fn default() -> Self {
        VfTable::paper_levels()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_levels_sorted() {
        let t = VfTable::paper_levels();
        let freqs: Vec<f64> = t.levels().iter().map(|l| l.freq_ghz).collect();
        assert_eq!(freqs, vec![1.5, 2.0, 2.25, 2.5]);
    }

    #[test]
    fn level_for_low_utilization_is_slowest() {
        let t = VfTable::paper_levels();
        assert_eq!(t.level_for_utilization(0.2, 0.9).freq_ghz, 1.5);
    }

    #[test]
    fn level_for_high_utilization_is_fastest() {
        let t = VfTable::paper_levels();
        assert_eq!(t.level_for_utilization(0.95, 0.9).freq_ghz, 2.5);
        // Even beyond 1.0 we clamp to the max level.
        assert_eq!(t.level_for_utilization(1.5, 0.9).freq_ghz, 2.5);
    }

    #[test]
    fn level_monotone_in_utilization() {
        let t = VfTable::paper_levels();
        let mut prev = 0.0;
        for i in 0..=20 {
            let u = i as f64 / 20.0;
            let f = t.level_for_utilization(u, 0.9).freq_ghz;
            assert!(f >= prev, "level must not decrease with utilization");
            prev = f;
        }
    }

    #[test]
    fn step_up_moves_one_level() {
        let t = VfTable::paper_levels();
        assert_eq!(t.step_up(VfPair::new(0.9, 2.25)).freq_ghz, 2.5);
        assert_eq!(t.step_up(VfPair::new(1.0, 2.5)).freq_ghz, 2.5);
        assert_eq!(t.step_up(VfPair::new(0.6, 1.5)).freq_ghz, 2.0);
    }

    #[test]
    fn index_of_finds_levels() {
        let t = VfTable::paper_levels();
        assert_eq!(t.index_of(VfPair::new(0.8, 2.0)), Some(1));
        assert_eq!(t.index_of(VfPair::new(0.7, 1.8)), None);
    }

    #[test]
    fn speed_ratio() {
        let p = VfPair::new(0.8, 2.0);
        assert!((p.speed_ratio(2.5) - 0.8).abs() < 1e-12);
    }

    #[test]
    #[should_panic]
    fn rejects_nonpositive_voltage() {
        let _ = VfPair::new(0.0, 1.0);
    }

    #[test]
    #[should_panic]
    fn rejects_bad_headroom() {
        let _ = VfTable::paper_levels().level_for_utilization(0.5, 0.0);
    }

    #[test]
    fn display_format() {
        assert_eq!(VfPair::new(1.0, 2.5).to_string(), "1.00V/2.50GHz");
    }
}

//! VFI clustering: the paper's 0-1 quadratic program (Section 4.1).
//!
//! Cores are partitioned into `m` equal-size clusters minimising
//!
//! ```text
//! ω_c · Σ_{i,p} f_ip · φ_comm(cluster(i), cluster(p))
//!   + ω_u · Σ_i (u_i − ū_{cluster(i)})²
//! ```
//!
//! where `φ_comm(j, q) = 1` for inter-cluster pairs and `1/√m` for
//! intra-cluster pairs (the average inter- vs intra-cluster hop ratio of an
//! `m`-partition grid), and `ū_j` is the mean of the `j`-th `m`-quantile of
//! the utilization values. Both `f` and `u` are normalised to their maxima
//! and `ω_c = ω_u = 1`, exactly as in the paper.
//!
//! The paper solves the program with Gurobi. Here the same objective is
//! solved by an exact branch-and-bound ([`ClusteringProblem::solve_exact`],
//! practical to ~14 cores) and by a deterministic refinement heuristic
//! ([`ClusteringProblem::solve`]) that matches the exact optimum on small
//! instances (asserted in tests) and scales to the paper's 64 cores. Past
//! the paper size, [`ClusteringProblem::solve_multilevel`] wraps the same
//! refinement in a heavy-edge coarsen/uncoarsen hierarchy that stays
//! bit-identical to the flat path for n ≤ 64 and scales to 1024 cores.

use std::fmt;

/// A partition of `n` cores into `m` labelled clusters.
///
/// # Examples
///
/// ```
/// use mapwave_vfi::clustering::Clustering;
///
/// let c = Clustering::new(vec![0, 0, 1, 1], 2)?;
/// assert_eq!(c.members(1), vec![2, 3]);
/// assert_eq!(c.cluster_of(0), 0);
/// # Ok::<(), mapwave_vfi::clustering::ClusteringError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Clustering {
    assignment: Vec<usize>,
    m: usize,
}

/// Errors from clustering construction and solving.
#[derive(Debug, Clone, PartialEq)]
pub enum ClusteringError {
    /// Cluster count does not divide core count.
    NotDivisible {
        /// Number of cores.
        n: usize,
        /// Number of clusters.
        m: usize,
    },
    /// A cluster label was out of range.
    LabelOutOfRange {
        /// Core index with the bad label.
        core: usize,
        /// The offending label.
        label: usize,
        /// Number of clusters.
        m: usize,
    },
    /// The assignment is not balanced (some cluster ≠ n/m cores).
    Unbalanced {
        /// The offending cluster.
        cluster: usize,
        /// Cores assigned to it.
        size: usize,
        /// Expected size.
        expected: usize,
    },
    /// Input vectors have inconsistent lengths.
    ShapeMismatch {
        /// Length of the utilization vector.
        utilization: usize,
        /// Dimension of the traffic matrix.
        traffic: usize,
    },
    /// A utilization or traffic value was negative or non-finite.
    InvalidValue,
    /// Zero clusters requested.
    ZeroClusters,
}

impl fmt::Display for ClusteringError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClusteringError::NotDivisible { n, m } => {
                write!(f, "{m} clusters do not evenly divide {n} cores")
            }
            ClusteringError::LabelOutOfRange { core, label, m } => {
                write!(f, "core {core} has label {label} >= {m}")
            }
            ClusteringError::Unbalanced {
                cluster,
                size,
                expected,
            } => write!(f, "cluster {cluster} has {size} cores, expected {expected}"),
            ClusteringError::ShapeMismatch {
                utilization,
                traffic,
            } => write!(
                f,
                "utilization has {utilization} cores but traffic is {traffic}x{traffic}"
            ),
            ClusteringError::InvalidValue => {
                write!(f, "utilization and traffic must be finite and nonnegative")
            }
            ClusteringError::ZeroClusters => write!(f, "need at least one cluster"),
        }
    }
}

impl std::error::Error for ClusteringError {}

impl Clustering {
    /// Wraps an assignment, validating balance and label range.
    ///
    /// # Errors
    ///
    /// See [`ClusteringError`].
    pub fn new(assignment: Vec<usize>, m: usize) -> Result<Self, ClusteringError> {
        if m == 0 {
            return Err(ClusteringError::ZeroClusters);
        }
        let n = assignment.len();
        if !n.is_multiple_of(m) {
            return Err(ClusteringError::NotDivisible { n, m });
        }
        let expected = n / m;
        let mut sizes = vec![0usize; m];
        for (core, &label) in assignment.iter().enumerate() {
            if label >= m {
                return Err(ClusteringError::LabelOutOfRange { core, label, m });
            }
            sizes[label] += 1;
        }
        for (cluster, &size) in sizes.iter().enumerate() {
            if size != expected {
                return Err(ClusteringError::Unbalanced {
                    cluster,
                    size,
                    expected,
                });
            }
        }
        Ok(Clustering { assignment, m })
    }

    /// The 2×2 quadrant partition of a `cols x rows` grid — the paper's
    /// physical layout of four 4×4 VFIs on the 8×8 die.
    ///
    /// # Panics
    ///
    /// Panics if `cols` or `rows` is odd or zero.
    pub fn grid_quadrants(cols: usize, rows: usize) -> Self {
        assert!(
            cols > 0 && rows > 0 && cols.is_multiple_of(2) && rows.is_multiple_of(2),
            "quadrants need even nonzero grid dimensions"
        );
        let assignment = (0..cols * rows)
            .map(|i| {
                let (c, r) = (i % cols, i / cols);
                usize::from(c >= cols / 2) + 2 * usize::from(r >= rows / 2)
            })
            .collect();
        Clustering { assignment, m: 4 }
    }

    /// Number of cores.
    pub fn len(&self) -> usize {
        self.assignment.len()
    }

    /// Whether the clustering covers no cores.
    pub fn is_empty(&self) -> bool {
        self.assignment.is_empty()
    }

    /// Number of clusters.
    pub fn cluster_count(&self) -> usize {
        self.m
    }

    /// Cores per cluster.
    pub fn cluster_size(&self) -> usize {
        self.assignment.len() / self.m
    }

    /// Cluster of core `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn cluster_of(&self, i: usize) -> usize {
        self.assignment[i]
    }

    /// The label vector.
    pub fn as_slice(&self) -> &[usize] {
        &self.assignment
    }

    /// Sorted member cores of cluster `j`.
    pub fn members(&self, j: usize) -> Vec<usize> {
        self.assignment
            .iter()
            .enumerate()
            .filter(|&(_, &l)| l == j)
            .map(|(i, _)| i)
            .collect()
    }
}

/// The clustering optimisation instance.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusteringProblem {
    utilization: Vec<f64>,
    traffic: Vec<Vec<f64>>,
    m: usize,
    omega_c: f64,
    omega_u: f64,
    targets: Vec<f64>,
}

impl ClusteringProblem {
    /// Builds a problem over per-core `utilization` and the pairwise
    /// `traffic` matrix, for `m` equal clusters.
    ///
    /// Inputs are normalised to their maxima internally (the paper's setup);
    /// weights default to `ω_c = ω_u = 1`.
    ///
    /// # Errors
    ///
    /// See [`ClusteringError`].
    pub fn new(
        utilization: Vec<f64>,
        traffic: Vec<Vec<f64>>,
        m: usize,
    ) -> Result<Self, ClusteringError> {
        if m == 0 {
            return Err(ClusteringError::ZeroClusters);
        }
        let n = utilization.len();
        if !n.is_multiple_of(m) {
            return Err(ClusteringError::NotDivisible { n, m });
        }
        if traffic.len() != n || traffic.iter().any(|r| r.len() != n) {
            return Err(ClusteringError::ShapeMismatch {
                utilization: n,
                traffic: traffic.len(),
            });
        }
        if utilization.iter().any(|&u| !u.is_finite() || u < 0.0)
            || traffic
                .iter()
                .any(|r| r.iter().any(|&t| !t.is_finite() || t < 0.0))
        {
            return Err(ClusteringError::InvalidValue);
        }

        // Normalise to maxima.
        let u_max = utilization.iter().cloned().fold(0.0, f64::max);
        let utilization: Vec<f64> = if u_max > 0.0 {
            utilization.iter().map(|&u| u / u_max).collect()
        } else {
            utilization
        };
        let f_max = traffic
            .iter()
            .flat_map(|r| r.iter().cloned())
            .fold(0.0, f64::max);
        let traffic: Vec<Vec<f64>> = if f_max > 0.0 {
            traffic
                .iter()
                .map(|r| r.iter().map(|&t| t / f_max).collect())
                .collect()
        } else {
            traffic
        };

        // ū_j: mean of each m-quantile of the utilization values (ascending).
        let mut sorted = utilization.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        let q = n / m;
        let targets = (0..m)
            .map(|j| {
                if q == 0 {
                    0.0
                } else {
                    sorted[j * q..(j + 1) * q].iter().sum::<f64>() / q as f64
                }
            })
            .collect();

        Ok(ClusteringProblem {
            utilization,
            traffic,
            m,
            omega_c: 1.0,
            omega_u: 1.0,
            targets,
        })
    }

    /// Overrides the communication weight ω_c.
    pub fn omega_c(mut self, w: f64) -> Self {
        self.omega_c = w;
        self
    }

    /// Overrides the utilization weight ω_u.
    pub fn omega_u(mut self, w: f64) -> Self {
        self.omega_u = w;
        self
    }

    /// Number of cores.
    pub fn len(&self) -> usize {
        self.utilization.len()
    }

    /// Whether the instance has no cores.
    pub fn is_empty(&self) -> bool {
        self.utilization.is_empty()
    }

    /// Number of clusters.
    pub fn cluster_count(&self) -> usize {
        self.m
    }

    /// The per-cluster utilization targets ū_j (ascending m-quantile means).
    pub fn targets(&self) -> &[f64] {
        &self.targets
    }

    /// φ_comm of the paper's Eq. (2).
    fn phi(&self, j: usize, q: usize) -> f64 {
        if j == q {
            1.0 / (self.m as f64).sqrt()
        } else {
            1.0
        }
    }

    /// Communication half of the objective for `assignment`.
    pub fn comm_cost(&self, assignment: &[usize]) -> f64 {
        let n = self.len();
        let mut cost = 0.0;
        for i in 0..n {
            for p in 0..n {
                if i != p {
                    cost += self.traffic[i][p] * self.phi(assignment[i], assignment[p]);
                }
            }
        }
        self.omega_c * cost
    }

    /// Utilization-variation half of the objective for `assignment`.
    pub fn util_cost(&self, assignment: &[usize]) -> f64 {
        self.omega_u
            * assignment
                .iter()
                .enumerate()
                .map(|(i, &j)| (self.utilization[i] - self.targets[j]).powi(2))
                .sum::<f64>()
    }

    /// The full Eq. (1) objective for `assignment`.
    ///
    /// # Panics
    ///
    /// Panics if `assignment.len()` differs from the core count.
    pub fn evaluate(&self, assignment: &[usize]) -> f64 {
        assert_eq!(assignment.len(), self.len(), "assignment length mismatch");
        self.comm_cost(assignment) + self.util_cost(assignment)
    }

    /// Symmetric pair weight used internally: `f_ip + f_pi`.
    fn pair_weight(&self, i: usize, p: usize) -> f64 {
        self.traffic[i][p] + self.traffic[p][i]
    }

    /// Exact branch-and-bound solution of the 0-1 QP.
    ///
    /// Complete up to ~14 cores; beyond that it still terminates but the
    /// search may be slow — use [`ClusteringProblem::solve`] instead.
    pub fn solve_exact(&self) -> Clustering {
        let n = self.len();
        let cap = n / self.m;
        let phi_min = 1.0 / (self.m as f64).sqrt();

        // Admissible suffix bounds (assignment proceeds in core order).
        // suffix_w[i] = Σ_{k>=i} Σ_{p<k} pair_weight(k, p)
        let mut suffix_w = vec![0.0; n + 1];
        for i in (0..n).rev() {
            let mut row = 0.0;
            for p in 0..i {
                row += self.pair_weight(i, p);
            }
            suffix_w[i] = suffix_w[i + 1] + row;
        }
        // suffix_u[i] = Σ_{k>=i} min_j ω_u (u_k - t_j)²
        let mut suffix_u = vec![0.0; n + 1];
        for i in (0..n).rev() {
            let best = self
                .targets
                .iter()
                .map(|&t| (self.utilization[i] - t).powi(2))
                .fold(f64::INFINITY, f64::min);
            suffix_u[i] = suffix_u[i + 1] + self.omega_u * best;
        }

        // Seed the incumbent with the heuristic so pruning bites early.
        let heur = self.solve();
        let mut best_cost = self.evaluate(heur.as_slice());
        let mut best_assignment = heur.as_slice().to_vec();
        let mut current = vec![usize::MAX; n];
        let mut counts = vec![0usize; self.m];

        self.branch(
            0,
            0.0,
            &mut current,
            &mut counts,
            cap,
            phi_min,
            &suffix_w,
            &suffix_u,
            &mut best_cost,
            &mut best_assignment,
        );

        Clustering {
            assignment: best_assignment,
            m: self.m,
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn branch(
        &self,
        i: usize,
        acc: f64,
        current: &mut Vec<usize>,
        counts: &mut Vec<usize>,
        cap: usize,
        phi_min: f64,
        suffix_w: &[f64],
        suffix_u: &[f64],
        best_cost: &mut f64,
        best_assignment: &mut [usize],
    ) {
        let n = self.len();
        if i == n {
            if acc < *best_cost {
                *best_cost = acc;
                best_assignment.copy_from_slice(current);
            }
            return;
        }
        let bound = acc + self.omega_c * phi_min * suffix_w[i] + suffix_u[i];
        if bound >= *best_cost {
            return;
        }
        for j in 0..self.m {
            if counts[j] == cap {
                continue;
            }
            // Symmetry breaking: cluster labels matter only through targets,
            // but identical targets make labels interchangeable; restrict the
            // first core entering an empty cluster to the lowest empty label.
            if counts[j] == 0
                && (0..j).any(|q| counts[q] == 0 && self.targets[q] == self.targets[j])
            {
                continue;
            }
            let mut delta = self.omega_u * (self.utilization[i] - self.targets[j]).powi(2);
            #[allow(clippy::needless_range_loop)] // lockstep over two arrays
            for p in 0..i {
                delta += self.omega_c * self.pair_weight(i, p) * self.phi(j, current[p]);
            }
            current[i] = j;
            counts[j] += 1;
            self.branch(
                i + 1,
                acc + delta,
                current,
                counts,
                cap,
                phi_min,
                suffix_w,
                suffix_u,
                best_cost,
                best_assignment,
            );
            counts[j] -= 1;
            current[i] = usize::MAX;
        }
    }

    /// Deterministic heuristic: best-improvement pairwise-swap refinement
    /// from the utilization-sorted slicing plus a handful of seeded random
    /// restarts, keeping the best local optimum.
    ///
    /// Near-optimal on small instances (within ~1% of
    /// [`ClusteringProblem::solve_exact`]; asserted in tests) and runs in
    /// well under a second for the paper's 64 cores.
    pub fn solve(&self) -> Clustering {
        self.solve_with_starts(8, 0xC0FF_EE00)
    }

    /// Multi-start variant of [`ClusteringProblem::solve`]: `starts - 1`
    /// seeded random balanced starts in addition to the utilization-sorted
    /// one. Deterministic for a given `seed`.
    ///
    /// # Panics
    ///
    /// Panics if `starts == 0`.
    pub fn solve_with_starts(&self, starts: usize, seed: u64) -> Clustering {
        self.solve_multi(starts, seed, Self::refine)
    }

    /// The pre-incremental refinement path: identical multi-start schedule,
    /// but every swap delta is recomputed with the O(n) neighbour scan.
    ///
    /// Kept as the equivalence baseline: tests assert it returns the same
    /// assignments as [`ClusteringProblem::solve_with_starts`], and the
    /// `design_flow` micro-bench measures the two side by side.
    pub fn solve_with_starts_reference(&self, starts: usize, seed: u64) -> Clustering {
        self.solve_multi(starts, seed, Self::refine_reference)
    }

    /// Size threshold below which [`ClusteringProblem::solve_multilevel`]
    /// produces no coarsening levels and degenerates to the flat
    /// multi-start path, keeping every n≤64 golden bit-identical.
    pub const MULTILEVEL_LEAF: usize = 64;

    /// Multilevel coarsen/refine solve: greedy heavy-edge coarsening of the
    /// core traffic graph down to [`ClusteringProblem::MULTILEVEL_LEAF`]
    /// supernodes, the flat multi-start KL solve at the coarsest level, then
    /// uncoarsening with one run of the O(1)-delta incremental
    /// [`refine`](ClusteringProblem::solve) pass chain at every level.
    ///
    /// For `n ≤ MULTILEVEL_LEAF` (or when the per-cluster quota is odd, so
    /// pairwise merging cannot preserve the balance constraint) this is
    /// **bit-identical** to [`ClusteringProblem::solve`]: no coarsening
    /// level is built and the call forwards to the flat path unchanged.
    /// Beyond the leaf size, the multi-start search runs only on the
    /// coarsest instance; fine levels start from the projected coarse
    /// optimum, which converges in a handful of passes instead of the flat
    /// path's full random-restart refinement.
    pub fn solve_multilevel(&self) -> Clustering {
        self.solve_multilevel_with_starts(8, 0xC0FF_EE00)
    }

    /// Multi-start variant of [`ClusteringProblem::solve_multilevel`] with
    /// the same `(starts, seed)` contract as
    /// [`ClusteringProblem::solve_with_starts`].
    ///
    /// # Panics
    ///
    /// Panics if `starts == 0`.
    pub fn solve_multilevel_with_starts(&self, starts: usize, seed: u64) -> Clustering {
        let n = self.len();
        let cap = n.checked_div(self.m).unwrap_or(0);
        // Pairwise merging halves the per-cluster quota, so coarsening is
        // only admissible while the quota is even; odd quotas (and leaf
        // sizes) take the flat path, bit-for-bit.
        if n <= Self::MULTILEVEL_LEAF || !cap.is_multiple_of(2) {
            return self.solve_with_starts(starts, seed);
        }

        let (coarse, fine_to_coarse) = self.coarsen();
        let coarse_solution = coarse.solve_multilevel_with_starts(starts, seed);

        // Uncoarsen: project the coarse labels onto the fine cores. Every
        // supernode carries exactly two fine cores, so a balanced coarse
        // assignment projects to a balanced fine one.
        let projected: Vec<usize> = fine_to_coarse
            .iter()
            .map(|&s| coarse_solution.cluster_of(s))
            .collect();
        debug_assert!(
            Self::is_balanced(&projected, self.m),
            "uncoarsening broke the balance constraint"
        );
        let refined = self.refine(projected);
        debug_assert!(
            Self::is_balanced(&refined, self.m),
            "refinement broke the balance constraint"
        );
        Clustering {
            assignment: refined,
            m: self.m,
        }
    }

    /// One greedy heavy-edge coarsening level: a maximum greedy matching of
    /// the symmetric pair-weight graph (heaviest edges first, ties broken by
    /// ascending endpoint indices) merges cores two at a time into `n/2`
    /// supernodes.
    ///
    /// The coarse instance represents the fine objective exactly, up to an
    /// assignment-independent constant:
    ///
    /// * traffic aggregates additively (`cluster_rates`-style row/column
    ///   sums over the merged pair; intra-supernode traffic drops out — the
    ///   pair always shares a cluster, so its φ is constant);
    /// * `Σ_{i∈s} (u_i − t_j)² = w·(ū_s − t_j)² + Σ_{i∈s} (u_i − ū_s)²`
    ///   with `w = 2` members per supernode, so the coarse problem carries
    ///   the supernode *mean* utilization, doubles `ω_u`, and inherits the
    ///   fine targets — the second term is constant per supernode.
    ///
    /// Returns the coarse problem and the fine→supernode index map.
    fn coarsen(&self) -> (ClusteringProblem, Vec<usize>) {
        let n = self.len();
        debug_assert!(n.is_multiple_of(2), "coarsening needs an even core count");

        // All unordered pairs, heaviest symmetric weight first; index order
        // breaks ties so the matching is deterministic.
        let mut edges: Vec<(usize, usize)> = (0..n)
            .flat_map(|i| (i + 1..n).map(move |p| (i, p)))
            .collect();
        edges.sort_by(|&(a, b), &(c, d)| {
            self.pair_weight(c, d)
                .partial_cmp(&self.pair_weight(a, b))
                .expect("finite traffic")
                .then(a.cmp(&c))
                .then(b.cmp(&d))
        });
        let mut fine_to_coarse = vec![usize::MAX; n];
        let mut merged: Vec<(usize, usize)> = Vec::with_capacity(n / 2);
        for (i, p) in edges {
            if fine_to_coarse[i] == usize::MAX && fine_to_coarse[p] == usize::MAX {
                fine_to_coarse[i] = merged.len();
                fine_to_coarse[p] = merged.len();
                merged.push((i, p));
                if merged.len() == n / 2 {
                    break;
                }
            }
        }
        debug_assert!(
            fine_to_coarse.iter().all(|&s| s != usize::MAX),
            "greedy matching over the complete pair list must be perfect"
        );

        let nc = merged.len();
        let utilization: Vec<f64> = merged
            .iter()
            .map(|&(a, b)| (self.utilization[a] + self.utilization[b]) / 2.0)
            .collect();
        let mut traffic = vec![vec![0.0f64; nc]; nc];
        for i in 0..n {
            let si = fine_to_coarse[i];
            for (p, &sp) in fine_to_coarse.iter().enumerate() {
                if si != sp {
                    traffic[si][sp] += self.traffic[i][p];
                }
            }
        }
        let coarse = ClusteringProblem {
            utilization,
            traffic,
            m: self.m,
            omega_c: self.omega_c,
            omega_u: self.omega_u * 2.0,
            targets: self.targets.clone(),
        };
        (coarse, fine_to_coarse)
    }

    /// Whether `assignment` puts exactly `len/m` cores in every cluster.
    fn is_balanced(assignment: &[usize], m: usize) -> bool {
        let mut sizes = vec![0usize; m];
        for &j in assignment {
            if j >= m {
                return false;
            }
            sizes[j] += 1;
        }
        sizes.iter().all(|&s| s == assignment.len() / m)
    }

    fn solve_multi(
        &self,
        starts: usize,
        seed: u64,
        refine: impl Fn(&Self, Vec<usize>) -> Vec<usize>,
    ) -> Clustering {
        assert!(starts > 0, "need at least one start");
        let n = self.len();
        let cap = n.checked_div(self.m).unwrap_or(0);
        if n == 0 {
            return Clustering {
                assignment: Vec::new(),
                m: self.m,
            };
        }

        // Start 0: ascending-utilization slices (minimises the util term by
        // construction of the quantile targets).
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_by(|&a, &b| {
            self.utilization[a]
                .partial_cmp(&self.utilization[b])
                .expect("finite")
                .then(a.cmp(&b))
        });
        let mut sorted_start = vec![0usize; n];
        for (rank, &core) in order.iter().enumerate() {
            sorted_start[core] = rank / cap;
        }

        let mut best = refine(self, sorted_start);
        let mut best_cost = self.evaluate(&best);

        // Remaining starts: seeded Fisher–Yates shuffles of the balanced
        // label vector.
        let mut state = seed | 1;
        let mut next_u64 = move || {
            // xorshift64*
            state ^= state >> 12;
            state ^= state << 25;
            state ^= state >> 27;
            state.wrapping_mul(0x2545_F491_4F6C_DD1D)
        };
        for _ in 1..starts {
            let mut labels: Vec<usize> = (0..n).map(|i| i / cap).collect();
            for i in (1..n).rev() {
                let j = (next_u64() % (i as u64 + 1)) as usize;
                labels.swap(i, j);
            }
            let candidate = refine(self, labels);
            let cost = self.evaluate(&candidate);
            if cost < best_cost - 1e-12 {
                best_cost = cost;
                best = candidate;
            }
        }

        Clustering {
            assignment: best,
            m: self.m,
        }
    }

    /// The greedy baseline: ascending-utilization slicing with **no** swap
    /// refinement — what a traffic-oblivious flow would produce. Useful as
    /// the ablation baseline for solver quality.
    pub fn solve_greedy(&self) -> Clustering {
        let n = self.len();
        let cap = n / self.m;
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_by(|&a, &b| {
            self.utilization[a]
                .partial_cmp(&self.utilization[b])
                .expect("finite")
                .then(a.cmp(&b))
        });
        let mut assignment = vec![0usize; n];
        for (rank, &core) in order.iter().enumerate() {
            assignment[core] = rank / cap;
        }
        Clustering {
            assignment,
            m: self.m,
        }
    }

    /// Best-improvement swap refinement to a local optimum, evaluated
    /// incrementally.
    ///
    /// Two flat auxiliary structures replace the O(n) neighbour scan of
    /// [`ClusteringProblem::swap_delta`]:
    ///
    /// * the aggregated weight table `W[i][j] = Σ_{p∈cluster j, p≠i}
    ///   pair_weight(i, p)` (an `n×m` array, updated in O(n) per accepted
    ///   swap), which collapses the communication half of a swap delta to
    ///   O(1) — `φ_comm` takes only two values, so only the aggregate
    ///   weight into the two affected clusters matters;
    /// * an improving-move cache of per-pair deltas, invalidated only for
    ///   pairs with an endpoint in one of the two clusters the accepted
    ///   swap touched (`W[·][j]` is unchanged for every other cluster `j`,
    ///   so the cached values still equal a fresh recomputation).
    ///
    /// The best-improvement scan visits pairs in the same order and applies
    /// the same strict-improvement comparisons as the reference path, so
    /// the move sequence — and therefore the refined assignment — is
    /// identical to [`ClusteringProblem::solve_with_starts_reference`]
    /// (asserted by the equivalence tests).
    fn refine(&self, mut assignment: Vec<usize>) -> Vec<usize> {
        let n = assignment.len();
        let m = self.m;
        if n == 0 {
            return assignment;
        }

        let mut w = vec![0.0f64; n * m];
        for i in 0..n {
            for (p, &jp) in assignment.iter().enumerate() {
                if p != i {
                    w[i * m + jp] += self.pair_weight(i, p);
                }
            }
        }

        let mut cache = vec![0.0f64; n * n];
        let mut dirty = vec![true; n * n];
        let mut touched = vec![false; n];
        let mut evaluated = 0u64;
        let mut accepted = 0u64;

        let max_passes = 4 * n;
        for _ in 0..max_passes {
            let mut best_delta = -1e-12;
            let mut best_pair = None;
            for i in 0..n {
                let ji = assignment[i];
                for (k, &jk) in assignment.iter().enumerate().skip(i + 1) {
                    if ji == jk {
                        continue;
                    }
                    let idx = i * n + k;
                    if dirty[idx] {
                        cache[idx] = self.swap_delta_incremental(&w, ji, jk, i, k);
                        dirty[idx] = false;
                        evaluated += 1;
                    }
                    let delta = cache[idx];
                    if delta < best_delta {
                        best_delta = delta;
                        best_pair = Some((i, k));
                    }
                }
            }
            match best_pair {
                Some((i, k)) => {
                    let (ji, jk) = (assignment[i], assignment[k]);
                    accepted += 1;
                    // Core i leaves ji for jk and core k leaves jk for ji:
                    // shift their pair weights between the two columns.
                    for r in 0..n {
                        if r != i {
                            let pw = self.pair_weight(r, i);
                            w[r * m + ji] -= pw;
                            w[r * m + jk] += pw;
                        }
                        if r != k {
                            let pw = self.pair_weight(r, k);
                            w[r * m + jk] -= pw;
                            w[r * m + ji] += pw;
                        }
                    }
                    assignment.swap(i, k);
                    // Only the ji/jk columns of W changed, so a cached
                    // delta is stale exactly when one of its endpoints
                    // lives in those clusters (which covers i and k: they
                    // now occupy each other's clusters).
                    for (c, t) in touched.iter_mut().enumerate() {
                        *t = assignment[c] == ji || assignment[c] == jk;
                    }
                    for a in 0..n {
                        let row = a * n;
                        if touched[a] {
                            dirty[row + a + 1..row + n].fill(true);
                        } else {
                            for b in a + 1..n {
                                if touched[b] {
                                    dirty[row + b] = true;
                                }
                            }
                        }
                    }
                }
                None => break,
            }
        }
        mapwave_harness::telemetry::count("vfi.swap_moves_evaluated", evaluated);
        mapwave_harness::telemetry::count("vfi.swap_moves_accepted", accepted);
        assignment
    }

    /// The W-table swap delta: objective change from swapping cores `i`
    /// (in cluster `ji`) and `k` (in cluster `jk`), in O(1).
    ///
    /// Derivation: `φ(jk, jp) − φ(ji, jp)` is `φ_min − 1` for `jp == jk`,
    /// `1 − φ_min` for `jp == ji` and zero otherwise, so the neighbour scan
    /// of [`ClusteringProblem::swap_delta`] collapses to the aggregated
    /// weights of `i` and `k` into the two affected clusters (with the
    /// direct `i↔k` weight, counted inside `W[i][jk]` and `W[k][ji]`,
    /// added back since the pair swaps together and keeps its φ).
    fn swap_delta_incremental(&self, w: &[f64], ji: usize, jk: usize, i: usize, k: usize) -> f64 {
        let m = self.m;
        let phi_gap = 1.0 - 1.0 / (m as f64).sqrt();
        let du = self.omega_u
            * ((self.utilization[i] - self.targets[jk]).powi(2)
                + (self.utilization[k] - self.targets[ji]).powi(2)
                - (self.utilization[i] - self.targets[ji]).powi(2)
                - (self.utilization[k] - self.targets[jk]).powi(2));
        let dc = self.omega_c
            * phi_gap
            * (w[i * m + ji] - w[i * m + jk] + w[k * m + jk] - w[k * m + ji]
                + 2.0 * self.pair_weight(i, k));
        du + dc
    }

    /// The reference refinement: best-improvement swaps with the O(n)
    /// neighbour-scan [`ClusteringProblem::swap_delta`] per candidate pair.
    fn refine_reference(&self, mut assignment: Vec<usize>) -> Vec<usize> {
        let n = assignment.len();
        let max_passes = 4 * n;
        for _ in 0..max_passes {
            let mut best_delta = -1e-12;
            let mut best_pair = None;
            for i in 0..n {
                for k in i + 1..n {
                    if assignment[i] == assignment[k] {
                        continue;
                    }
                    let delta = self.swap_delta(&assignment, i, k);
                    if delta < best_delta {
                        best_delta = delta;
                        best_pair = Some((i, k));
                    }
                }
            }
            match best_pair {
                Some((i, k)) => assignment.swap(i, k),
                None => break,
            }
        }
        assignment
    }

    /// Objective change from swapping the clusters of cores `i` and `k`.
    fn swap_delta(&self, assignment: &[usize], i: usize, k: usize) -> f64 {
        let (ji, jk) = (assignment[i], assignment[k]);
        let mut delta = self.omega_u
            * ((self.utilization[i] - self.targets[jk]).powi(2)
                + (self.utilization[k] - self.targets[ji]).powi(2)
                - (self.utilization[i] - self.targets[ji]).powi(2)
                - (self.utilization[k] - self.targets[jk]).powi(2));
        #[allow(clippy::needless_range_loop)] // lockstep over two arrays
        for p in 0..self.len() {
            if p == i || p == k {
                continue;
            }
            let jp = assignment[p];
            delta += self.omega_c
                * (self.pair_weight(i, p) * (self.phi(jk, jp) - self.phi(ji, jp))
                    + self.pair_weight(k, p) * (self.phi(ji, jp) - self.phi(jk, jp)));
        }
        delta
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn uniform_traffic(n: usize, v: f64) -> Vec<Vec<f64>> {
        (0..n)
            .map(|i| (0..n).map(|p| if i == p { 0.0 } else { v }).collect())
            .collect()
    }

    #[test]
    fn clustering_validates_balance() {
        assert!(Clustering::new(vec![0, 0, 0, 1], 2).is_err());
        assert!(Clustering::new(vec![0, 1, 0, 1], 2).is_ok());
        assert!(matches!(
            Clustering::new(vec![0, 2, 0, 1], 2),
            Err(ClusteringError::LabelOutOfRange { .. })
        ));
        assert!(matches!(
            Clustering::new(vec![0, 1, 0], 2),
            Err(ClusteringError::NotDivisible { .. })
        ));
    }

    #[test]
    fn grid_quadrants_8x8() {
        let c = Clustering::grid_quadrants(8, 8);
        assert_eq!(c.cluster_count(), 4);
        assert_eq!(c.cluster_size(), 16);
        assert_eq!(c.cluster_of(0), 0); // top-left
        assert_eq!(c.cluster_of(7), 1); // top-right
        assert_eq!(c.cluster_of(56), 2); // bottom-left
        assert_eq!(c.cluster_of(63), 3); // bottom-right
    }

    #[test]
    fn problem_rejects_bad_shapes() {
        assert!(matches!(
            ClusteringProblem::new(vec![0.5; 4], uniform_traffic(3, 1.0), 2),
            Err(ClusteringError::ShapeMismatch { .. })
        ));
        assert!(matches!(
            ClusteringProblem::new(vec![0.5; 4], uniform_traffic(4, -1.0), 2),
            Err(ClusteringError::InvalidValue)
        ));
        assert!(matches!(
            ClusteringProblem::new(vec![0.5; 5], uniform_traffic(5, 0.1), 2),
            Err(ClusteringError::NotDivisible { .. })
        ));
    }

    #[test]
    fn targets_are_quantile_means() {
        let u = vec![0.1, 0.9, 0.2, 0.8];
        let p = ClusteringProblem::new(u, uniform_traffic(4, 0.0), 2).unwrap();
        // Normalised by max (0.9): sorted = [1/9, 2/9, 8/9, 1].
        let t = p.targets();
        assert!((t[0] - (0.1 / 0.9 + 0.2 / 0.9) / 2.0).abs() < 1e-12);
        assert!((t[1] - (0.8 / 0.9 + 1.0) / 2.0).abs() < 1e-12);
    }

    #[test]
    fn phi_matches_paper() {
        let p = ClusteringProblem::new(vec![0.5; 4], uniform_traffic(4, 1.0), 4).unwrap();
        assert!((p.phi(1, 1) - 0.5).abs() < 1e-12); // 1/sqrt(4)
        assert!((p.phi(1, 2) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn comm_cost_prefers_cohabiting_talkers() {
        // Cores 0,1 exchange heavy traffic; 2,3 exchange heavy traffic.
        let mut f = uniform_traffic(4, 0.0);
        f[0][1] = 1.0;
        f[1][0] = 1.0;
        f[2][3] = 1.0;
        f[3][2] = 1.0;
        let p = ClusteringProblem::new(vec![0.5; 4], f, 2).unwrap();
        let good = p.comm_cost(&[0, 0, 1, 1]);
        let bad = p.comm_cost(&[0, 1, 0, 1]);
        assert!(good < bad);
    }

    #[test]
    fn util_cost_prefers_similar_utilization_grouping() {
        let u = vec![0.1, 0.15, 0.9, 0.95];
        let p = ClusteringProblem::new(u, uniform_traffic(4, 0.0), 2).unwrap();
        let good = p.util_cost(&[0, 0, 1, 1]);
        let bad = p.util_cost(&[0, 1, 0, 1]);
        assert!(good < bad);
    }

    #[test]
    fn exact_finds_obvious_optimum() {
        let mut f = uniform_traffic(4, 0.01);
        f[0][1] = 1.0;
        f[2][3] = 1.0;
        let u = vec![0.2, 0.25, 0.8, 0.85];
        let p = ClusteringProblem::new(u, f, 2).unwrap();
        let c = p.solve_exact();
        assert_eq!(c.cluster_of(0), c.cluster_of(1));
        assert_eq!(c.cluster_of(2), c.cluster_of(3));
        assert_ne!(c.cluster_of(0), c.cluster_of(2));
    }

    #[test]
    fn heuristic_matches_exact_on_small_instances() {
        // Deterministic pseudo-random instances via a simple LCG.
        let mut state = 12345u64;
        let mut next = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as f64) / (u32::MAX as f64 / 2.0)
        };
        for trial in 0..8 {
            let n = 8;
            let m = if trial % 2 == 0 { 2 } else { 4 };
            let u: Vec<f64> = (0..n).map(|_| next().min(1.0)).collect();
            let f: Vec<Vec<f64>> = (0..n)
                .map(|i| (0..n).map(|p| if i == p { 0.0 } else { next() }).collect())
                .collect();
            let prob = ClusteringProblem::new(u, f, m).unwrap();
            let exact = prob.solve_exact();
            let heur = prob.solve();
            let ce = prob.evaluate(exact.as_slice());
            let ch = prob.evaluate(heur.as_slice());
            assert!(
                ch <= ce * 1.01 + 1e-9,
                "trial {trial}: heuristic {ch} more than 1% above exact {ce}"
            );
            // And exact is never beaten (it is optimal).
            assert!(ce <= ch + 1e-9, "exact must be optimal");
        }
    }

    #[test]
    fn heuristic_scales_to_paper_size() {
        let n = 64;
        let mut state = 99u64;
        let mut next = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((state >> 33) as f64) / (u32::MAX as f64 / 2.0)
        };
        let u: Vec<f64> = (0..n).map(|_| next().min(1.0)).collect();
        let f: Vec<Vec<f64>> = (0..n)
            .map(|i| {
                (0..n)
                    .map(|p| if i == p { 0.0 } else { next() * 0.1 })
                    .collect()
            })
            .collect();
        let prob = ClusteringProblem::new(u.clone(), f, 4).unwrap();
        let c = prob.solve();
        assert_eq!(c.cluster_count(), 4);
        assert_eq!(c.cluster_size(), 16);
        // Refinement must not be worse than the naive initial slicing.
        let naive: Vec<usize> = {
            let mut order: Vec<usize> = (0..n).collect();
            order.sort_by(|&a, &b| u[a].partial_cmp(&u[b]).unwrap().then(a.cmp(&b)));
            let mut a = vec![0usize; n];
            for (rank, &core) in order.iter().enumerate() {
                a[core] = rank / 16;
            }
            a
        };
        assert!(prob.evaluate(c.as_slice()) <= prob.evaluate(&naive) + 1e-9);
    }

    #[test]
    fn refined_solution_beats_greedy() {
        let mut f = uniform_traffic(8, 0.05);
        f[0][7] = 1.0;
        f[7][0] = 1.0;
        let u = vec![0.1, 0.2, 0.3, 0.4, 0.6, 0.7, 0.8, 0.9];
        let p = ClusteringProblem::new(u, f, 2).unwrap();
        let greedy = p.solve_greedy();
        let refined = p.solve();
        assert!(p.evaluate(refined.as_slice()) <= p.evaluate(greedy.as_slice()) + 1e-12);
        assert_eq!(greedy.cluster_size(), 4);
    }

    /// Deterministic pseudo-random instance shared with the golden pins
    /// below and the `design_flow` micro-bench.
    fn lcg_instance(n: usize, seed: u64) -> (Vec<f64>, Vec<Vec<f64>>) {
        let mut state = seed;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((state >> 33) as f64) / (u32::MAX as f64 / 2.0)
        };
        let u: Vec<f64> = (0..n).map(|_| next().min(1.0)).collect();
        let f: Vec<Vec<f64>> = (0..n)
            .map(|i| {
                (0..n)
                    .map(|p| if i == p { 0.0 } else { next() * 0.1 })
                    .collect()
            })
            .collect();
        (u, f)
    }

    #[test]
    fn incremental_delta_matches_objective_difference() {
        // Property: for random instances and random improving/worsening
        // swaps alike, the W-table delta equals evaluate(after) −
        // evaluate(before) within 1e-9.
        for seed in [3u64, 17, 99, 1234] {
            let n = 16;
            let m = 4;
            let (u, f) = lcg_instance(n, seed);
            let prob = ClusteringProblem::new(u, f, m).unwrap();
            let assignment: Vec<usize> = (0..n).map(|i| (i * 7 + seed as usize) % m).collect();
            // Rebalance: sort by label rank to get a balanced vector.
            let mut order: Vec<usize> = (0..n).collect();
            order.sort_by_key(|&i| (assignment[i], i));
            let mut balanced = vec![0usize; n];
            for (rank, &core) in order.iter().enumerate() {
                balanced[core] = rank / (n / m);
            }

            let mut w = vec![0.0f64; n * m];
            for i in 0..n {
                for p in 0..n {
                    if p != i {
                        w[i * m + balanced[p]] += prob.pair_weight(i, p);
                    }
                }
            }
            let before = prob.evaluate(&balanced);
            for i in 0..n {
                for k in i + 1..n {
                    let (ji, jk) = (balanced[i], balanced[k]);
                    if ji == jk {
                        continue;
                    }
                    let fast = prob.swap_delta_incremental(&w, ji, jk, i, k);
                    let slow = prob.swap_delta(&balanced, i, k);
                    let mut after = balanced.clone();
                    after.swap(i, k);
                    let exact = prob.evaluate(&after) - before;
                    assert!(
                        (fast - exact).abs() < 1e-9,
                        "seed {seed} swap ({i},{k}): incremental {fast} vs exact {exact}"
                    );
                    assert!(
                        (fast - slow).abs() < 1e-9,
                        "seed {seed} swap ({i},{k}): incremental {fast} vs scan {slow}"
                    );
                }
            }
        }
    }

    #[test]
    fn incremental_refine_matches_reference_assignments() {
        // The incremental path must reproduce the reference move sequence
        // byte for byte, across sizes and cluster counts.
        for (n, m, seed) in [
            (16usize, 4usize, 3u64),
            (32, 2, 41),
            (24, 4, 77),
            (64, 4, 7),
        ] {
            let (u, f) = lcg_instance(n, seed);
            let prob = ClusteringProblem::new(u, f, m).unwrap();
            let fast = prob.solve_with_starts(4, 0xC0FF_EE00);
            let slow = prob.solve_with_starts_reference(4, 0xC0FF_EE00);
            assert_eq!(
                fast.as_slice(),
                slow.as_slice(),
                "n={n} m={m} seed={seed}: incremental refinement diverged"
            );
        }
    }

    #[test]
    fn solve_assignments_pinned_to_pre_optimization_goldens() {
        // Golden pins captured from the pre-incremental implementation
        // (commit before the W-table refinement): solve() must keep
        // returning byte-identical assignments for the same instances.
        let cases: [(usize, usize, u64, &[usize], u64); 2] = [
            (
                16,
                4,
                3,
                &[0, 1, 3, 3, 0, 0, 1, 2, 1, 3, 2, 1, 2, 0, 2, 3],
                4636947327634976266,
            ),
            (
                32,
                2,
                41,
                &[
                    1, 0, 0, 0, 1, 0, 1, 1, 1, 0, 0, 0, 1, 0, 0, 1, 1, 1, 1, 1, 0, 1, 1, 0, 0, 1,
                    1, 0, 0, 0, 1, 0,
                ],
                4646258336752911209,
            ),
        ];
        for (n, m, seed, expected, cost_bits) in cases {
            let (u, f) = lcg_instance(n, seed);
            let prob = ClusteringProblem::new(u, f, m).unwrap();
            let c = prob.solve();
            assert_eq!(c.as_slice(), expected, "n={n} seed={seed}");
            assert_eq!(
                prob.evaluate(c.as_slice()).to_bits(),
                cost_bits,
                "n={n} seed={seed}: objective drifted"
            );
        }
    }

    #[test]
    fn paper_size_solve_pinned_to_golden() {
        let (u, f) = lcg_instance(64, 99);
        let prob = ClusteringProblem::new(u, f, 4).unwrap();
        let c = prob.solve();
        let expected: [usize; 64] = [
            0, 2, 2, 3, 0, 1, 3, 1, 2, 3, 3, 1, 3, 1, 1, 2, 1, 2, 0, 2, 3, 0, 2, 2, 0, 1, 3, 3, 2,
            1, 0, 2, 1, 1, 1, 0, 2, 2, 3, 0, 3, 0, 3, 0, 1, 2, 3, 3, 1, 2, 0, 3, 1, 0, 2, 0, 3, 0,
            0, 3, 1, 2, 0, 1,
        ];
        assert_eq!(c.as_slice(), expected);
        assert_eq!(
            prob.evaluate(c.as_slice()).to_bits(),
            4655379387557553268,
            "objective drifted from the pre-optimization golden"
        );
    }

    #[test]
    fn multilevel_matches_flat_solver_on_small_instances() {
        // For n ≤ MULTILEVEL_LEAF no coarsening level exists, so the
        // multilevel entry point must be bit-identical to the flat path —
        // this is what keeps every existing golden green.
        for n in [8usize, 16, 32, 64] {
            for seed in [3u64, 7, 41, 99, 1234] {
                let m = if n == 8 { 2 } else { 4 };
                let (u, f) = lcg_instance(n, seed);
                let prob = ClusteringProblem::new(u, f, m).unwrap();
                let flat = prob.solve();
                let multi = prob.solve_multilevel();
                assert_eq!(
                    flat.as_slice(),
                    multi.as_slice(),
                    "n={n} seed={seed}: multilevel diverged from flat solver"
                );
            }
        }
    }

    #[test]
    fn multilevel_handles_odd_quota_without_coarsening() {
        // n=72, m=4 → quota 18 is even once, then 9 is odd: one coarsening
        // level only, and the recursion must still return a valid balanced
        // clustering.
        let (u, f) = lcg_instance(72, 5);
        let prob = ClusteringProblem::new(u, f, 4).unwrap();
        let c = prob.solve_multilevel();
        assert_eq!(c.cluster_size(), 18);
        assert!(ClusteringProblem::is_balanced(c.as_slice(), 4));
    }

    #[test]
    fn multilevel_scales_to_256_and_beats_greedy() {
        let (u, f) = lcg_instance(256, 11);
        let prob = ClusteringProblem::new(u, f, 4).unwrap();
        let c = prob.solve_multilevel();
        assert_eq!(c.cluster_count(), 4);
        assert_eq!(c.cluster_size(), 64);
        assert!(ClusteringProblem::is_balanced(c.as_slice(), 4));
        let greedy = prob.solve_greedy();
        assert!(
            prob.evaluate(c.as_slice()) <= prob.evaluate(greedy.as_slice()) + 1e-9,
            "multilevel must not lose to the traffic-oblivious slicing"
        );
    }

    #[test]
    fn coarse_objective_tracks_fine_objective() {
        // The coarse instance must preserve objective *differences* between
        // projected assignments (the absolute values differ by a constant:
        // intra-supernode traffic and within-supernode utilization
        // variance drop out).
        let (u, f) = lcg_instance(32, 13);
        let prob = ClusteringProblem::new(u, f, 4).unwrap();
        let (coarse, map) = prob.coarsen();
        assert_eq!(coarse.len(), 16);

        let project = |coarse_assignment: &[usize]| -> Vec<usize> {
            map.iter().map(|&s| coarse_assignment[s]).collect()
        };
        let a: Vec<usize> = (0..16).map(|s| s / 4).collect();
        let mut b = a.clone();
        b.swap(0, 7);
        b.swap(3, 12);
        let coarse_delta = coarse.evaluate(&b) - coarse.evaluate(&a);
        let fine_delta = prob.evaluate(&project(&b)) - prob.evaluate(&project(&a));
        assert!(
            (coarse_delta - fine_delta).abs() < 1e-9,
            "coarse delta {coarse_delta} vs fine delta {fine_delta}"
        );
    }

    #[test]
    fn heavy_edge_matching_pairs_heaviest_talkers() {
        // Cores (0,5) and (2,7) exchange dominant traffic: the greedy
        // matching must merge exactly those pairs first.
        let n = 8;
        let mut f = uniform_traffic(n, 0.01);
        f[0][5] = 1.0;
        f[5][0] = 1.0;
        f[2][7] = 0.9;
        f[7][2] = 0.9;
        let prob = ClusteringProblem::new(vec![0.5; n], f, 2).unwrap();
        let (_, map) = prob.coarsen();
        assert_eq!(map[0], map[5], "heaviest pair must merge");
        assert_eq!(map[2], map[7], "second-heaviest pair must merge");
        assert_ne!(map[0], map[2]);
    }

    #[test]
    fn refinement_telemetry_counts_moves() {
        use mapwave_harness::telemetry;
        let (u, f) = lcg_instance(16, 3);
        let prob = ClusteringProblem::new(u, f, 4).unwrap();
        telemetry::reset();
        telemetry::enable();
        let _ = prob.solve();
        telemetry::flush();
        let summary = telemetry::snapshot();
        telemetry::disable();
        assert!(summary.counter("vfi.swap_moves_evaluated") > 0);
        assert!(summary.counter("vfi.swap_moves_accepted") > 0);
        assert!(
            summary.counter("vfi.swap_moves_accepted")
                <= summary.counter("vfi.swap_moves_evaluated")
        );
    }

    #[test]
    fn solve_is_deterministic() {
        let u = vec![0.3, 0.7, 0.2, 0.9, 0.5, 0.6, 0.1, 0.8];
        let f = uniform_traffic(8, 0.2);
        let p = ClusteringProblem::new(u, f, 2).unwrap();
        assert_eq!(p.solve(), p.solve());
    }

    #[test]
    fn zero_traffic_groups_by_utilization() {
        let u = vec![0.9, 0.1, 0.85, 0.15];
        let p = ClusteringProblem::new(u, uniform_traffic(4, 0.0), 2).unwrap();
        let c = p.solve();
        assert_eq!(c.cluster_of(1), c.cluster_of(3)); // low-u cores together
        assert_eq!(c.cluster_of(0), c.cluster_of(2)); // high-u cores together
    }

    #[test]
    fn omega_c_dominant_ignores_utilization() {
        // With ω_u = 0, only traffic matters: pairs (0,3) and (1,2) talk.
        let mut f = uniform_traffic(4, 0.0);
        f[0][3] = 1.0;
        f[1][2] = 1.0;
        let u = vec![0.1, 0.1, 0.9, 0.9];
        let p = ClusteringProblem::new(u, f, 2).unwrap().omega_u(0.0);
        let c = p.solve_exact();
        assert_eq!(c.cluster_of(0), c.cluster_of(3));
        assert_eq!(c.cluster_of(1), c.cluster_of(2));
    }
}

//! A deterministic discrete-event queue.
//!
//! Events are ordered by time; ties break by insertion order, which keeps
//! every simulation that uses the queue reproducible.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// A scheduled entry (internal).
#[derive(Debug, Clone)]
struct Entry<E> {
    time: f64,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}

impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed for min-heap behaviour in BinaryHeap (a max-heap).
        other
            .time
            .total_cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A time-ordered event queue with deterministic FIFO tie-breaking.
///
/// # Examples
///
/// ```
/// use mapwave_manycore::event::EventQueue;
///
/// let mut q = EventQueue::new();
/// q.push(2.0, "late");
/// q.push(1.0, "early");
/// q.push(1.0, "early-second");
/// assert_eq!(q.pop(), Some((1.0, "early")));
/// assert_eq!(q.pop(), Some((1.0, "early-second")));
/// assert_eq!(q.pop(), Some((2.0, "late")));
/// assert_eq!(q.pop(), None);
/// ```
#[derive(Debug, Clone)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    seq: u64,
}

impl<E> EventQueue<E> {
    /// An empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            seq: 0,
        }
    }

    /// An empty queue with room for `capacity` pending events before any
    /// heap reallocation.
    pub fn with_capacity(capacity: usize) -> Self {
        EventQueue {
            heap: BinaryHeap::with_capacity(capacity),
            seq: 0,
        }
    }

    /// Drops all pending events and resets the tie-break sequence, leaving
    /// the queue exactly as freshly constructed — but keeping the heap's
    /// allocation, so simulation loops can reuse one queue across phases
    /// instead of reallocating per phase.
    pub fn clear(&mut self) {
        self.heap.clear();
        self.seq = 0;
    }

    /// Schedules `event` at `time`.
    ///
    /// # Panics
    ///
    /// Panics if `time` is NaN.
    pub fn push(&mut self, time: f64, event: E) {
        assert!(!time.is_nan(), "event time must not be NaN");
        self.heap.push(Entry {
            time,
            seq: self.seq,
            event,
        });
        self.seq += 1;
    }

    /// Removes and returns the earliest event.
    ///
    /// Each pop increments the `manycore.events_processed` telemetry
    /// counter (one relaxed atomic load when telemetry is disabled).
    pub fn pop(&mut self) -> Option<(f64, E)> {
        let popped = self.heap.pop().map(|e| (e.time, e.event));
        if popped.is_some() {
            mapwave_harness::telemetry::count("manycore.events_processed", 1);
        }
        popped
    }

    /// The time of the earliest event without removing it.
    pub fn peek_time(&self) -> Option<f64> {
        self.heap.peek().map(|e| e.time)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        EventQueue::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn orders_by_time() {
        let mut q = EventQueue::new();
        q.push(3.5, 3);
        q.push(0.5, 1);
        q.push(2.0, 2);
        assert_eq!(q.pop(), Some((0.5, 1)));
        assert_eq!(q.pop(), Some((2.0, 2)));
        assert_eq!(q.pop(), Some((3.5, 3)));
    }

    #[test]
    fn fifo_within_same_time() {
        let mut q = EventQueue::new();
        for i in 0..10 {
            q.push(1.0, i);
        }
        for i in 0..10 {
            assert_eq!(q.pop(), Some((1.0, i)));
        }
    }

    #[test]
    fn peek_does_not_remove() {
        let mut q = EventQueue::new();
        q.push(7.0, "x");
        assert_eq!(q.peek_time(), Some(7.0));
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
    }

    #[test]
    fn interleaved_push_pop() {
        let mut q = EventQueue::new();
        q.push(5.0, 'b');
        q.push(1.0, 'a');
        assert_eq!(q.pop(), Some((1.0, 'a')));
        q.push(2.0, 'c');
        assert_eq!(q.pop(), Some((2.0, 'c')));
        assert_eq!(q.pop(), Some((5.0, 'b')));
    }

    #[test]
    #[should_panic]
    fn nan_time_panics() {
        let mut q = EventQueue::new();
        q.push(f64::NAN, ());
    }

    #[test]
    fn default_is_empty() {
        let q: EventQueue<()> = EventQueue::default();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
    }

    #[test]
    fn with_capacity_behaves_like_new() {
        let mut q = EventQueue::with_capacity(16);
        q.push(2.0, "b");
        q.push(1.0, "a");
        assert_eq!(q.pop(), Some((1.0, "a")));
        assert_eq!(q.pop(), Some((2.0, "b")));
    }

    #[test]
    fn clear_resets_to_fresh_state() {
        let mut q = EventQueue::new();
        q.push(1.0, 1);
        q.push(1.0, 2);
        q.clear();
        assert!(q.is_empty());
        // The sequence counter restarts, so tie-break order after a clear
        // is identical to a freshly constructed queue's.
        q.push(5.0, 10);
        q.push(5.0, 11);
        assert_eq!(q.pop(), Some((5.0, 10)));
        assert_eq!(q.pop(), Some((5.0, 11)));
        assert_eq!(q.pop(), None);
    }
}

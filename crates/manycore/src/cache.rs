//! Memory-hierarchy model: private L1s over a shared, distributed L2.
//!
//! The paper's GEM5 configuration is a MOESI directory protocol with private
//! 64 KB L1s and a 32 MB shared L2 distributed as 512 KB slices per tile
//! (S-NUCA). What the study consumes from that machinery is:
//!
//! * the **stall time** a core pays per instruction for L1 misses that must
//!   cross the network to a (usually remote) L2 slice or to memory, and
//! * the **coherence/data traffic** those misses inject into the NoC.
//!
//! [`CacheModel`] produces both from a per-phase [`MemoryProfile`]
//! (miss intensities measured by the MapReduce runtime model) and the
//! network round-trip latency measured by the cycle-level NoC simulation —
//! the same feedback loop GEM5's Ruby + Garnet provide.

/// Per-phase memory behaviour of a workload, in misses per kilo-instruction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MemoryProfile {
    /// L1 misses per 1000 instructions (these become L2 slice accesses).
    pub l1_mpki: f64,
    /// Fraction of L2 accesses that miss to off-chip memory.
    pub l2_miss_rate: f64,
    /// Fraction of L2 accesses whose home slice is remote (address
    /// interleaving makes this `(n-1)/n` for uniformly spread data; locality
    /// optimisations lower it).
    pub remote_fraction: f64,
}

impl MemoryProfile {
    /// Creates a profile.
    ///
    /// # Panics
    ///
    /// Panics if any field is negative, non-finite, or a rate exceeds 1.
    pub fn new(l1_mpki: f64, l2_miss_rate: f64, remote_fraction: f64) -> Self {
        assert!(l1_mpki >= 0.0 && l1_mpki.is_finite(), "invalid l1_mpki");
        assert!(
            (0.0..=1.0).contains(&l2_miss_rate),
            "l2_miss_rate must be in [0,1]"
        );
        assert!(
            (0.0..=1.0).contains(&remote_fraction),
            "remote_fraction must be in [0,1]"
        );
        MemoryProfile {
            l1_mpki,
            l2_miss_rate,
            remote_fraction,
        }
    }
}

/// Latency/geometry parameters of the cache hierarchy.
#[derive(Debug, Clone, PartialEq)]
pub struct CacheModel {
    /// Cache line size in bytes (64 B, so a line is 16 32-bit flits).
    pub line_bytes: usize,
    /// L2 slice access latency in core cycles (tag + data array).
    pub l2_latency_cycles: f64,
    /// Off-chip memory latency in core cycles.
    pub mem_latency_cycles: f64,
    /// Fraction of an L1 miss's latency the core cannot hide with
    /// out-of-order execution / MLP (1.0 = fully blocking).
    pub exposed_fraction: f64,
    /// Fraction of L1 misses that actually cross the network: spatial
    /// locality, MSHR coalescing and prefetch batching satisfy the rest
    /// from in-flight lines.
    pub network_fraction: f64,
}

impl CacheModel {
    /// The configuration used throughout the reproduction (matches the
    /// paper's 64 KB L1 / 512 KB-per-tile L2 setup at 2.5 GHz).
    pub fn default_64core() -> Self {
        CacheModel {
            line_bytes: 64,
            l2_latency_cycles: 10.0,
            mem_latency_cycles: 150.0,
            exposed_fraction: 0.6,
            network_fraction: 0.35,
        }
    }

    /// Average stall cycles per instruction given the measured average
    /// network round-trip latency (cycles) to a remote L2 slice.
    ///
    /// Local-slice hits pay only the L2 latency; remote hits add the network
    /// round trip; L2 misses add the memory latency on top.
    pub fn stall_cycles_per_inst(&self, prof: &MemoryProfile, net_round_trip: f64) -> f64 {
        let per_miss = self.l2_latency_cycles
            + prof.remote_fraction * net_round_trip
            + prof.l2_miss_rate * self.mem_latency_cycles;
        (prof.l1_mpki / 1000.0) * per_miss * self.exposed_fraction
    }

    /// Network packets injected per instruction by L1 misses: one request
    /// (1 flit) and one data reply (line) per network-visible remote L2
    /// access.
    pub fn packets_per_inst(&self, prof: &MemoryProfile) -> f64 {
        (prof.l1_mpki / 1000.0) * prof.remote_fraction * self.network_fraction * 2.0
    }

    /// Flits in a data packet carrying one cache line (32-bit flits plus a
    /// head flit).
    pub fn line_flits(&self) -> usize {
        self.line_bytes / 4 + 1
    }
}

impl Default for CacheModel {
    fn default() -> Self {
        CacheModel::default_64core()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stall_grows_with_network_latency() {
        let m = CacheModel::default_64core();
        let p = MemoryProfile::new(20.0, 0.1, 0.9);
        let near = m.stall_cycles_per_inst(&p, 20.0);
        let far = m.stall_cycles_per_inst(&p, 60.0);
        assert!(far > near);
    }

    #[test]
    fn stall_zero_without_misses() {
        let m = CacheModel::default_64core();
        let p = MemoryProfile::new(0.0, 0.5, 0.9);
        assert_eq!(m.stall_cycles_per_inst(&p, 100.0), 0.0);
    }

    #[test]
    fn local_only_traffic_is_zero() {
        let m = CacheModel::default_64core();
        let p = MemoryProfile::new(20.0, 0.0, 0.0);
        assert_eq!(m.packets_per_inst(&p), 0.0);
        // but stalls still pay the L2 latency
        assert!(m.stall_cycles_per_inst(&p, 50.0) > 0.0);
    }

    #[test]
    fn packets_per_inst_counts_request_and_reply() {
        let m = CacheModel::default_64core();
        let p = MemoryProfile::new(10.0, 0.0, 1.0);
        // 0.01 misses/inst × 0.35 network-visible × 2 packets.
        assert!((m.packets_per_inst(&p) - 0.007).abs() < 1e-12);
    }

    #[test]
    fn line_flits_for_64b_lines() {
        assert_eq!(CacheModel::default_64core().line_flits(), 17);
    }

    #[test]
    #[should_panic]
    fn rejects_bad_miss_rate() {
        let _ = MemoryProfile::new(1.0, 1.5, 0.5);
    }

    #[test]
    #[should_panic]
    fn rejects_negative_mpki() {
        let _ = MemoryProfile::new(-1.0, 0.5, 0.5);
    }

    #[test]
    fn stall_monotone_in_l2_miss_rate() {
        let m = CacheModel::default_64core();
        let lo = m.stall_cycles_per_inst(&MemoryProfile::new(10.0, 0.0, 0.5), 30.0);
        let hi = m.stall_cycles_per_inst(&MemoryProfile::new(10.0, 0.3, 0.5), 30.0);
        assert!(hi > lo);
    }
}

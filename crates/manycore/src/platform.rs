//! The tiled platform: die geometry, tiles, and address interleaving.

use mapwave_noc::node::grid_positions;
use mapwave_noc::topology::mesh::mesh;
use mapwave_noc::{NodeId, Position, Topology};

/// A `cols x rows` tiled die. Every tile holds one core, a private L1, one
/// L2 slice (S-NUCA) and one NoC switch.
///
/// # Examples
///
/// ```
/// use mapwave_manycore::platform::Platform;
///
/// let p = Platform::paper_64core();
/// assert_eq!(p.len(), 64);
/// assert_eq!(p.cols(), 8);
/// let m = p.mesh_topology();
/// assert!(m.is_connected());
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Platform {
    cols: usize,
    rows: usize,
    tile_mm: f64,
}

impl Platform {
    /// Creates a platform.
    ///
    /// # Panics
    ///
    /// Panics if a dimension is zero or the pitch is not positive.
    pub fn new(cols: usize, rows: usize, tile_mm: f64) -> Self {
        assert!(cols > 0 && rows > 0, "platform dimensions must be nonzero");
        assert!(
            tile_mm > 0.0 && tile_mm.is_finite(),
            "tile pitch must be positive"
        );
        Platform {
            cols,
            rows,
            tile_mm,
        }
    }

    /// The paper's 64-core die: 8×8 tiles at 2.5 mm pitch (20 mm die edge).
    pub fn paper_64core() -> Self {
        Platform::new(8, 8, 2.5)
    }

    /// Number of tiles.
    pub fn len(&self) -> usize {
        self.cols * self.rows
    }

    /// Whether the platform has no tiles (never true once constructed).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Grid columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Grid rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Tile pitch in millimetres.
    pub fn tile_mm(&self) -> f64 {
        self.tile_mm
    }

    /// Physical positions of all tiles (row-major).
    pub fn positions(&self) -> Vec<Position> {
        grid_positions(self.cols, self.rows, self.tile_mm)
    }

    /// `(col, row)` of a tile.
    pub fn coords(&self, tile: NodeId) -> (usize, usize) {
        (tile.index() % self.cols, tile.index() / self.cols)
    }

    /// The baseline mesh interconnect for this die.
    pub fn mesh_topology(&self) -> Topology {
        mesh(self.cols, self.rows, self.tile_mm)
    }

    /// Home tile of a cache block: low-order block-address interleaving
    /// across all L2 slices, as in the paper's distributed 512 KB-per-tile
    /// shared L2.
    pub fn home_tile(&self, block_addr: u64) -> NodeId {
        NodeId((block_addr % self.len() as u64) as usize)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_platform_geometry() {
        let p = Platform::paper_64core();
        assert_eq!(p.len(), 64);
        assert_eq!(p.positions().len(), 64);
        assert_eq!(p.coords(NodeId(9)), (1, 1));
        assert!((p.tile_mm() - 2.5).abs() < 1e-12);
    }

    #[test]
    fn home_tiles_cover_all_slices() {
        let p = Platform::new(4, 4, 1.0);
        let mut seen = [false; 16];
        for b in 0..64u64 {
            seen[p.home_tile(b).index()] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn mesh_matches_dimensions() {
        let p = Platform::new(3, 5, 2.0);
        let m = p.mesh_topology();
        assert_eq!(m.len(), 15);
        assert!(m.is_connected());
    }

    #[test]
    #[should_panic]
    fn rejects_zero_cols() {
        let _ = Platform::new(0, 4, 1.0);
    }

    #[test]
    #[should_panic]
    fn rejects_bad_pitch() {
        let _ = Platform::new(2, 2, 0.0);
    }
}

//! # mapwave-manycore
//!
//! The tiled-manycore platform substrate of the DAC'15 reproduction — the
//! parts of a GEM5 full-system model that the study actually consumes:
//!
//! * [`platform`] — die geometry, tiles, S-NUCA home-slice interleaving;
//! * [`cache`] — L1/L2 stall and coherence-traffic model fed by the
//!   NoC-measured round-trip latency;
//! * [`clock`] — per-core clock domains (the VFI frequencies);
//! * [`mapping`] — thread-to-tile placement and profile transport;
//! * [`memory`] — off-chip memory controllers and DRAM latency geometry;
//! * [`event`] — the deterministic discrete-event queue driving the
//!   MapReduce runtime model.
//!
//! ## Quick start
//!
//! ```
//! use mapwave_manycore::prelude::*;
//!
//! let platform = Platform::paper_64core();
//! let cache = CacheModel::default_64core();
//! let profile = MemoryProfile::new(15.0, 0.05, 0.9);
//! // Stall per instruction once the NoC reports a 40-cycle round trip:
//! let stall = cache.stall_cycles_per_inst(&profile, 40.0);
//! assert!(stall > 0.0);
//! assert_eq!(platform.len(), 64);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod cache;
pub mod clock;
pub mod dram;
pub mod event;
pub mod health;
pub mod mapping;
pub mod memory;
pub mod platform;

pub use cache::{CacheModel, MemoryProfile};
pub use clock::ClockDomains;
pub use dram::{DramConfig, DramModel, DramTiming, DramWindowStats};
pub use event::EventQueue;
pub use health::CoreHealth;
pub use mapping::{MappingError, ThreadMapping};
pub use memory::{ControllerLayout, MemorySystem};
pub use platform::Platform;

/// Convenient glob import.
pub mod prelude {
    pub use crate::cache::{CacheModel, MemoryProfile};
    pub use crate::clock::ClockDomains;
    pub use crate::dram::{DramConfig, DramModel};
    pub use crate::event::EventQueue;
    pub use crate::mapping::ThreadMapping;
    pub use crate::platform::Platform;
}

//! Per-core clock domains.
//!
//! In a VFI-partitioned platform every island runs its own clock. The
//! runtime model works in *reference cycles* (cycles of the fastest clock);
//! [`ClockDomains`] converts work expressed in core cycles into wall-clock
//! seconds given each core's frequency.

/// Per-core clock frequencies.
///
/// # Examples
///
/// ```
/// use mapwave_manycore::clock::ClockDomains;
///
/// let clocks = ClockDomains::new(vec![2.5, 1.5]);
/// // 2.5e9 cycles at 2.5 GHz take one second...
/// assert!((clocks.seconds_for_cycles(0, 2.5e9) - 1.0).abs() < 1e-9);
/// // ...and take 2.5/1.5 times longer on the slow core.
/// assert!(clocks.seconds_for_cycles(1, 2.5e9) > 1.6);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ClockDomains {
    freq_ghz: Vec<f64>,
}

impl ClockDomains {
    /// Creates domains from per-core frequencies in GHz.
    ///
    /// # Panics
    ///
    /// Panics if any frequency is not positive and finite.
    pub fn new(freq_ghz: Vec<f64>) -> Self {
        assert!(
            freq_ghz.iter().all(|&f| f > 0.0 && f.is_finite()),
            "frequencies must be positive"
        );
        ClockDomains { freq_ghz }
    }

    /// Uniform domains: every core at `freq_ghz`.
    pub fn uniform(n: usize, freq_ghz: f64) -> Self {
        ClockDomains::new(vec![freq_ghz; n])
    }

    /// Number of cores.
    pub fn len(&self) -> usize {
        self.freq_ghz.len()
    }

    /// Whether there are no cores.
    pub fn is_empty(&self) -> bool {
        self.freq_ghz.is_empty()
    }

    /// Frequency of `core` in GHz.
    ///
    /// # Panics
    ///
    /// Panics if `core` is out of range.
    pub fn freq_ghz(&self, core: usize) -> f64 {
        self.freq_ghz[core]
    }

    /// The fastest frequency present.
    pub fn max_freq_ghz(&self) -> f64 {
        self.freq_ghz.iter().cloned().fold(0.0, f64::max)
    }

    /// Relative speed of `core` versus the fastest core.
    pub fn speed_ratio(&self, core: usize) -> f64 {
        self.freq_ghz[core] / self.max_freq_ghz()
    }

    /// Wall-clock seconds for `core` to execute `cycles` of its own clock.
    pub fn seconds_for_cycles(&self, core: usize, cycles: f64) -> f64 {
        cycles / (self.freq_ghz[core] * 1e9)
    }

    /// Cycles of `core`'s clock elapsed in `seconds`.
    pub fn cycles_in_seconds(&self, core: usize, seconds: f64) -> f64 {
        seconds * self.freq_ghz[core] * 1e9
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_speeds() {
        let c = ClockDomains::uniform(4, 2.5);
        assert_eq!(c.len(), 4);
        for i in 0..4 {
            assert!((c.speed_ratio(i) - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn speed_ratio_relative_to_max() {
        let c = ClockDomains::new(vec![2.5, 2.0, 1.5]);
        assert!((c.speed_ratio(1) - 0.8).abs() < 1e-12);
        assert!((c.speed_ratio(2) - 0.6).abs() < 1e-12);
        assert!((c.max_freq_ghz() - 2.5).abs() < 1e-12);
    }

    #[test]
    fn roundtrip_cycles_seconds() {
        let c = ClockDomains::new(vec![2.25]);
        let s = c.seconds_for_cycles(0, 1e6);
        assert!((c.cycles_in_seconds(0, s) - 1e6).abs() < 1e-3);
    }

    #[test]
    #[should_panic]
    fn rejects_zero_frequency() {
        let _ = ClockDomains::new(vec![2.5, 0.0]);
    }
}

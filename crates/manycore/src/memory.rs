//! Off-chip memory controllers.
//!
//! L2 misses leave the chip through memory controllers on the die edge.
//! The [`CacheModel`](crate::cache::CacheModel) folds their latency into a
//! single average; this module supplies that average from an actual
//! controller placement — the standard four-corner or four-edge-midpoint
//! layouts — so the platform's DRAM latency is grounded in geometry
//! rather than a free constant.

use crate::platform::Platform;
use mapwave_noc::NodeId;

/// Placement of the off-chip memory controllers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ControllerLayout {
    /// One controller at each die corner.
    Corners,
    /// One controller at the midpoint of each die edge.
    EdgeMidpoints,
}

/// The off-chip memory system: controller tiles and DRAM timing.
#[derive(Debug, Clone, PartialEq)]
pub struct MemorySystem {
    controllers: Vec<NodeId>,
    /// DRAM access time once a request reaches a controller, in core
    /// cycles at the reference clock.
    pub dram_latency_cycles: f64,
    /// Cycles per mesh hop for the controller-bound request/response trip
    /// (used for the geometric average; the detailed NoC simulation covers
    /// on-chip L2 traffic).
    pub cycles_per_hop: f64,
}

impl MemorySystem {
    /// Places controllers on `platform` with the given layout.
    ///
    /// # Examples
    ///
    /// ```
    /// use mapwave_manycore::memory::{ControllerLayout, MemorySystem};
    /// use mapwave_manycore::platform::Platform;
    ///
    /// let mem = MemorySystem::new(&Platform::paper_64core(), ControllerLayout::Corners);
    /// assert_eq!(mem.controllers().len(), 4);
    /// ```
    pub fn new(platform: &Platform, layout: ControllerLayout) -> Self {
        let (cols, rows) = (platform.cols(), platform.rows());
        let at = |c: usize, r: usize| NodeId(r * cols + c);
        let controllers = match layout {
            ControllerLayout::Corners => vec![
                at(0, 0),
                at(cols - 1, 0),
                at(0, rows - 1),
                at(cols - 1, rows - 1),
            ],
            ControllerLayout::EdgeMidpoints => vec![
                at(cols / 2, 0),
                at(0, rows / 2),
                at(cols - 1, rows / 2),
                at(cols / 2, rows - 1),
            ],
        };
        MemorySystem {
            controllers,
            dram_latency_cycles: 120.0,
            cycles_per_hop: 3.0,
        }
    }

    /// The controller tiles.
    pub fn controllers(&self) -> &[NodeId] {
        &self.controllers
    }

    /// The controller closest (in mesh hops) to `tile`, ties to the lowest
    /// id.
    pub fn nearest_controller(&self, platform: &Platform, tile: NodeId) -> NodeId {
        let (tc, tr) = platform.coords(tile);
        *self
            .controllers
            .iter()
            .min_by_key(|&&m| {
                let (mc, mr) = platform.coords(m);
                (tc.abs_diff(mc) + tr.abs_diff(mr), m.index())
            })
            .expect("layouts place at least one controller")
    }

    /// End-to-end memory latency for a miss from `tile`: the round trip to
    /// its nearest controller plus the DRAM access, in reference cycles.
    pub fn miss_latency_cycles(&self, platform: &Platform, tile: NodeId) -> f64 {
        let m = self.nearest_controller(platform, tile);
        let (tc, tr) = platform.coords(tile);
        let (mc, mr) = platform.coords(m);
        let hops = (tc.abs_diff(mc) + tr.abs_diff(mr)) as f64;
        self.dram_latency_cycles + 2.0 * hops * self.cycles_per_hop
    }

    /// Die-wide average miss latency — the figure the
    /// [`CacheModel`](crate::cache::CacheModel)'s `mem_latency_cycles`
    /// should be calibrated to.
    pub fn avg_miss_latency_cycles(&self, platform: &Platform) -> f64 {
        let n = platform.len();
        (0..n)
            .map(|t| self.miss_latency_cycles(platform, NodeId(t)))
            .sum::<f64>()
            / n as f64
    }

    /// Die-wide average hop round trip to the nearest controller, in
    /// reference cycles — the geometric component of a miss without the
    /// DRAM access itself. The banked [`DramModel`](crate::dram::DramModel)
    /// adds its measured queueing latency on top of this.
    pub fn avg_hop_round_trip_cycles(&self, platform: &Platform) -> f64 {
        self.avg_miss_latency_cycles(platform) - self.dram_latency_cycles
    }

    /// Index (into [`controllers`](Self::controllers)) of the controller
    /// nearest to `tile` — the bucket a tile's miss stream drains into
    /// when aggregating offered load per controller.
    pub fn nearest_controller_index(&self, platform: &Platform, tile: NodeId) -> usize {
        let nearest = self.nearest_controller(platform, tile);
        self.controllers
            .iter()
            .position(|&m| m == nearest)
            .expect("nearest_controller returns a member of controllers")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corners_layout_places_four() {
        let p = Platform::paper_64core();
        let mem = MemorySystem::new(&p, ControllerLayout::Corners);
        assert_eq!(
            mem.controllers(),
            &[NodeId(0), NodeId(7), NodeId(56), NodeId(63)]
        );
    }

    #[test]
    fn nearest_controller_is_manhattan_nearest() {
        let p = Platform::paper_64core();
        let mem = MemorySystem::new(&p, ControllerLayout::Corners);
        assert_eq!(mem.nearest_controller(&p, NodeId(0)), NodeId(0));
        // Tile 62 (col 6, row 7) is closest to corner 63.
        assert_eq!(mem.nearest_controller(&p, NodeId(62)), NodeId(63));
        // The exact centre ties toward the lowest-id controller.
        assert_eq!(mem.nearest_controller(&p, NodeId(27)), NodeId(0));
    }

    #[test]
    fn corner_tiles_pay_only_dram() {
        let p = Platform::paper_64core();
        let mem = MemorySystem::new(&p, ControllerLayout::Corners);
        assert!((mem.miss_latency_cycles(&p, NodeId(0)) - 120.0).abs() < 1e-12);
        // Centre tiles pay the hop round trip on top.
        assert!(mem.miss_latency_cycles(&p, NodeId(27)) > 120.0);
    }

    #[test]
    fn edge_midpoints_lower_average_latency() {
        let p = Platform::paper_64core();
        let corners = MemorySystem::new(&p, ControllerLayout::Corners);
        let edges = MemorySystem::new(&p, ControllerLayout::EdgeMidpoints);
        assert!(
            edges.avg_miss_latency_cycles(&p) < corners.avg_miss_latency_cycles(&p),
            "edge midpoints cut the mean distance"
        );
    }

    #[test]
    fn average_is_near_the_cache_model_constant() {
        // The CacheModel's default 150-cycle memory latency sits in the
        // geometric band of both layouts.
        let p = Platform::paper_64core();
        let mem = MemorySystem::new(&p, ControllerLayout::Corners);
        let avg = mem.avg_miss_latency_cycles(&p);
        assert!((130.0..170.0).contains(&avg), "avg {avg}");
    }
}

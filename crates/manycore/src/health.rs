//! Per-core health state for degradation and failure modelling.
//!
//! [`CoreHealth`] tracks, for every core of a platform, whether it is still
//! online and the cumulative frequency-degradation factor applied to it.
//! The type is plan-agnostic: *what* degrades or dies (and when) is decided
//! elsewhere (the `mapwave-faults` plan, driven by the Phoenix runtime
//! hooks); this module only holds the resulting state and answers the
//! queries schedulers need — effective speeds, liveness, and live
//! substitutes for work assigned to dead cores.

use std::fmt;

/// Health of every core on a platform.
#[derive(Debug, Clone, PartialEq)]
pub struct CoreHealth {
    alive: Vec<bool>,
    /// Cumulative speed multiplier per core (1.0 = pristine). A dead core
    /// keeps its last factor — schedulers must never run work there, but
    /// speed vectors derived from this state stay valid (entries in
    /// `(0, 1]`) for capacity computations that iterate all cores.
    factor: Vec<f64>,
}

impl CoreHealth {
    /// A pristine platform of `n` cores.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "a platform has at least one core");
        CoreHealth {
            alive: vec![true; n],
            factor: vec![1.0; n],
        }
    }

    /// Number of cores tracked.
    pub fn len(&self) -> usize {
        self.alive.len()
    }

    /// Whether the platform has no cores (never true; see [`CoreHealth::new`]).
    pub fn is_empty(&self) -> bool {
        self.alive.is_empty()
    }

    /// Whether `core` is still online.
    pub fn is_alive(&self, core: usize) -> bool {
        self.alive[core]
    }

    /// Cumulative speed multiplier of `core`.
    pub fn factor(&self, core: usize) -> f64 {
        self.factor[core]
    }

    /// Number of cores still online.
    pub fn alive_count(&self) -> usize {
        self.alive.iter().filter(|&&a| a).count()
    }

    /// Multiplies `core`'s speed by `f`.
    ///
    /// # Panics
    ///
    /// Panics if `f` is not in `(0, 1]`.
    pub fn degrade(&mut self, core: usize, f: f64) {
        assert!(f > 0.0 && f <= 1.0, "degradation factor must be in (0, 1]");
        self.factor[core] *= f;
    }

    /// Takes `core` offline.
    pub fn kill(&mut self, core: usize) {
        self.alive[core] = false;
    }

    /// Fills `out` with `base[c] * factor(c)` for every core. Dead cores
    /// keep a valid (positive) entry — they are excluded by capacity
    /// masking, not by a poisoned speed.
    ///
    /// # Panics
    ///
    /// Panics if `base.len() != self.len()`.
    pub fn effective_speeds(&self, base: &[f64], out: &mut Vec<f64>) {
        assert_eq!(base.len(), self.len(), "speed vector length mismatch");
        out.clear();
        out.extend(base.iter().zip(&self.factor).map(|(&b, &f)| b * f));
    }

    /// The first live core at or after `core` (wrapping); `core` itself
    /// when it is alive. Falls back to `core` when every core is dead —
    /// callers that guarantee at least one survivor (e.g. a protected
    /// master) never hit that case.
    pub fn live_substitute(&self, core: usize) -> usize {
        let n = self.len();
        (0..n)
            .map(|off| (core + off) % n)
            .find(|&c| self.alive[c])
            .unwrap_or(core)
    }
}

impl fmt::Display for CoreHealth {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{} cores alive", self.alive_count(), self.alive.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pristine_platform_is_fully_alive() {
        let h = CoreHealth::new(8);
        assert_eq!(h.alive_count(), 8);
        assert!(h.is_alive(3));
        assert_eq!(h.factor(3), 1.0);
        assert_eq!(h.live_substitute(3), 3);
    }

    #[test]
    fn degradation_compounds() {
        let mut h = CoreHealth::new(4);
        h.degrade(1, 0.5);
        h.degrade(1, 0.5);
        assert!((h.factor(1) - 0.25).abs() < 1e-15);
        assert!(h.is_alive(1));
    }

    #[test]
    fn effective_speeds_multiply_and_stay_positive() {
        let mut h = CoreHealth::new(3);
        h.degrade(0, 0.6);
        h.kill(2);
        let mut out = Vec::new();
        h.effective_speeds(&[1.0, 0.8, 0.9], &mut out);
        assert_eq!(out.len(), 3);
        assert!((out[0] - 0.6).abs() < 1e-15);
        assert_eq!(out[1].to_bits(), 0.8f64.to_bits(), "untouched core exact");
        assert!(out[2] > 0.0, "dead core keeps a valid speed entry");
    }

    #[test]
    fn untouched_core_speed_is_bit_exact() {
        // factor 1.0: base * 1.0 must be bit-identical to base (the
        // zero-impact guarantee of the fault hooks relies on this).
        let h = CoreHealth::new(2);
        let base = [0.7342891, 1.0];
        let mut out = Vec::new();
        h.effective_speeds(&base, &mut out);
        assert_eq!(out[0].to_bits(), base[0].to_bits());
        assert_eq!(out[1].to_bits(), base[1].to_bits());
    }

    #[test]
    fn live_substitute_wraps_past_dead_cores() {
        let mut h = CoreHealth::new(4);
        h.kill(2);
        h.kill(3);
        assert_eq!(h.live_substitute(2), 0);
        assert_eq!(h.live_substitute(3), 0);
        assert_eq!(h.live_substitute(1), 1);
        assert_eq!(h.alive_count(), 2);
    }

    #[test]
    #[should_panic]
    fn zero_degradation_rejected() {
        CoreHealth::new(2).degrade(0, 0.0);
    }
}

//! Thread-to-tile mapping.
//!
//! The VFI clustering of Section 4.1 groups *logical* threads; the physical
//! islands are fixed die regions (the four quadrants). A [`ThreadMapping`]
//! is the permutation placing each logical thread on a physical tile, and
//! is what the thread-mapping optimisers of Section 6 search over. It also
//! transports logical-space profiles (utilization vectors, traffic
//! matrices) into physical tile space for the NoC and power simulations.

use mapwave_noc::{NodeId, TrafficMatrix};
use std::fmt;

/// Errors from mapping construction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MappingError {
    /// The vector is not a permutation of `0..n`.
    NotAPermutation,
}

impl fmt::Display for MappingError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MappingError::NotAPermutation => {
                write!(f, "mapping must be a permutation of 0..n")
            }
        }
    }
}

impl std::error::Error for MappingError {}

/// A bijection from logical threads to physical tiles.
///
/// # Examples
///
/// ```
/// use mapwave_manycore::mapping::ThreadMapping;
/// use mapwave_noc::NodeId;
///
/// let m = ThreadMapping::from_permutation(vec![2, 0, 1])?;
/// assert_eq!(m.tile_of(0), NodeId(2));
/// assert_eq!(m.thread_at(NodeId(2)), 0);
/// # Ok::<(), mapwave_manycore::mapping::MappingError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ThreadMapping {
    to_tile: Vec<usize>,
    to_thread: Vec<usize>,
}

impl ThreadMapping {
    /// The identity mapping: thread `i` on tile `i`.
    pub fn identity(n: usize) -> Self {
        ThreadMapping {
            to_tile: (0..n).collect(),
            to_thread: (0..n).collect(),
        }
    }

    /// Builds a mapping from `to_tile[thread] = tile`.
    ///
    /// # Errors
    ///
    /// Returns [`MappingError::NotAPermutation`] unless the vector is a
    /// permutation of `0..n`.
    pub fn from_permutation(to_tile: Vec<usize>) -> Result<Self, MappingError> {
        let n = to_tile.len();
        let mut to_thread = vec![usize::MAX; n];
        for (thread, &tile) in to_tile.iter().enumerate() {
            if tile >= n || to_thread[tile] != usize::MAX {
                return Err(MappingError::NotAPermutation);
            }
            to_thread[tile] = thread;
        }
        Ok(ThreadMapping { to_tile, to_thread })
    }

    /// Number of threads/tiles.
    pub fn len(&self) -> usize {
        self.to_tile.len()
    }

    /// Whether the mapping is empty.
    pub fn is_empty(&self) -> bool {
        self.to_tile.is_empty()
    }

    /// Tile hosting `thread`.
    ///
    /// # Panics
    ///
    /// Panics if `thread` is out of range.
    pub fn tile_of(&self, thread: usize) -> NodeId {
        NodeId(self.to_tile[thread])
    }

    /// Thread running on `tile`.
    ///
    /// # Panics
    ///
    /// Panics if `tile` is out of range.
    pub fn thread_at(&self, tile: NodeId) -> usize {
        self.to_thread[tile.index()]
    }

    /// Swaps the tiles of two threads (a thread-mapping optimiser move).
    ///
    /// # Panics
    ///
    /// Panics if either thread is out of range.
    pub fn swap_threads(&mut self, a: usize, b: usize) {
        let (ta, tb) = (self.to_tile[a], self.to_tile[b]);
        self.to_tile.swap(a, b);
        self.to_thread.swap(ta, tb);
    }

    /// Transports a logical-thread traffic matrix into physical tile space.
    ///
    /// # Panics
    ///
    /// Panics if the matrix size differs from the mapping size.
    pub fn traffic_to_tiles(&self, logical: &TrafficMatrix) -> TrafficMatrix {
        assert_eq!(logical.len(), self.len(), "traffic size mismatch");
        let n = self.len();
        let mut phys = TrafficMatrix::zeros(n);
        for i in 0..n {
            for j in 0..n {
                if i != j {
                    let r = logical.rate(NodeId(i), NodeId(j));
                    if r > 0.0 {
                        phys.set(self.tile_of(i), self.tile_of(j), r);
                    }
                }
            }
        }
        phys
    }

    /// Transports per-thread values (utilization, speeds, domains…) into
    /// per-tile values.
    ///
    /// # Panics
    ///
    /// Panics if the slice length differs from the mapping size.
    pub fn values_to_tiles<T: Copy>(&self, per_thread: &[T]) -> Vec<T> {
        assert_eq!(per_thread.len(), self.len(), "value length mismatch");
        (0..self.len())
            .map(|tile| per_thread[self.thread_at(NodeId(tile))])
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_roundtrip() {
        let m = ThreadMapping::identity(5);
        for i in 0..5 {
            assert_eq!(m.tile_of(i), NodeId(i));
            assert_eq!(m.thread_at(NodeId(i)), i);
        }
    }

    #[test]
    fn rejects_non_permutation() {
        assert_eq!(
            ThreadMapping::from_permutation(vec![0, 0, 1]),
            Err(MappingError::NotAPermutation)
        );
        assert_eq!(
            ThreadMapping::from_permutation(vec![0, 3]),
            Err(MappingError::NotAPermutation)
        );
    }

    #[test]
    fn swap_threads_keeps_bijection() {
        let mut m = ThreadMapping::identity(4);
        m.swap_threads(1, 3);
        assert_eq!(m.tile_of(1), NodeId(3));
        assert_eq!(m.tile_of(3), NodeId(1));
        assert_eq!(m.thread_at(NodeId(3)), 1);
        assert_eq!(m.thread_at(NodeId(1)), 3);
        // Others untouched.
        assert_eq!(m.tile_of(0), NodeId(0));
    }

    #[test]
    fn traffic_transport() {
        let m = ThreadMapping::from_permutation(vec![1, 2, 0]).unwrap();
        let mut logical = TrafficMatrix::zeros(3);
        logical.set(NodeId(0), NodeId(2), 0.5);
        let phys = m.traffic_to_tiles(&logical);
        assert!((phys.rate(NodeId(1), NodeId(0)) - 0.5).abs() < 1e-12);
        assert_eq!(phys.rate(NodeId(0), NodeId(2)), 0.0);
    }

    #[test]
    fn values_transport() {
        let m = ThreadMapping::from_permutation(vec![2, 0, 1]).unwrap();
        // thread 0 -> tile 2, thread 1 -> tile 0, thread 2 -> tile 1
        let v = m.values_to_tiles(&[10, 20, 30]);
        assert_eq!(v, vec![20, 30, 10]);
    }

    #[test]
    fn total_traffic_preserved() {
        let m = ThreadMapping::from_permutation(vec![3, 1, 0, 2]).unwrap();
        let mut logical = TrafficMatrix::zeros(4);
        logical.set(NodeId(0), NodeId(1), 0.25);
        logical.set(NodeId(2), NodeId(3), 0.75);
        let phys = m.traffic_to_tiles(&logical);
        assert!((phys.total_rate() - logical.total_rate()).abs() < 1e-12);
    }
}

//! Property tests of the platform substrate, driven by deterministic
//! seeded sweeps (in-tree PRNG; no external dependencies).

use mapwave_harness::rng::{RngExt, SeedableRng, StdRng};
use mapwave_manycore::cache::{CacheModel, MemoryProfile};
use mapwave_manycore::event::EventQueue;
use mapwave_manycore::mapping::ThreadMapping;
use mapwave_manycore::platform::Platform;
use mapwave_noc::{NodeId, TrafficMatrix};

/// Events come out in nondecreasing time order, FIFO within ties.
#[test]
fn event_queue_is_ordered() {
    let mut rng = StdRng::seed_from_u64(0xD001);
    for case in 0..64 {
        let len = rng.random_range(0..200usize);
        // Coarse quantisation makes time ties common enough to exercise
        // the FIFO tie-break.
        let times: Vec<f64> = (0..len)
            .map(|_| (100.0 * rng.random::<f64>()).floor() / 4.0)
            .collect();
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.push(t, i);
        }
        let mut last_time = f64::NEG_INFINITY;
        let mut seen: Vec<usize> = Vec::new();
        while let Some((t, id)) = q.pop() {
            assert!(t >= last_time, "case {case}");
            if t == last_time {
                // FIFO among equal times: ids with equal time ascend.
                if let Some(&prev) = seen.last() {
                    if times[prev] == t {
                        assert!(id > prev, "case {case}");
                    }
                }
            }
            last_time = t;
            seen.push(id);
        }
        assert_eq!(seen.len(), times.len(), "case {case}");
    }
}

/// Any permutation builds a valid mapping and round-trips.
#[test]
fn mapping_roundtrip() {
    let mut rng = StdRng::seed_from_u64(0xD002);
    for case in 0..64 {
        let mut order: Vec<usize> = (0..12).collect();
        rng.shuffle(&mut order);
        let m = ThreadMapping::from_permutation(order.clone()).unwrap();
        for (thread, &tile) in order.iter().enumerate() {
            assert_eq!(m.tile_of(thread), NodeId(tile), "case {case}");
            assert_eq!(m.thread_at(NodeId(tile)), thread, "case {case}");
        }
    }
}

/// Traffic transport through a mapping preserves the total rate.
#[test]
fn traffic_transport_preserves_total() {
    let mut rng = StdRng::seed_from_u64(0xD003);
    for case in 0..64 {
        let mut logical = TrafficMatrix::zeros(8);
        for idx in 0..64 {
            logical.set(NodeId(idx / 8), NodeId(idx % 8), rng.random::<f64>());
        }
        let rot = rng.random_range(0..8usize);
        let perm: Vec<usize> = (0..8).map(|i| (i + rot) % 8).collect();
        let m = ThreadMapping::from_permutation(perm).unwrap();
        let phys = m.traffic_to_tiles(&logical);
        assert!(
            (phys.total_rate() - logical.total_rate()).abs() < 1e-9,
            "case {case}"
        );
    }
}

/// Stalls are monotone in every memory-profile dimension.
#[test]
fn stall_monotonicity() {
    let mut rng = StdRng::seed_from_u64(0xD004);
    let c = CacheModel::default_64core();
    for case in 0..64 {
        let mpki = 50.0 * rng.random::<f64>();
        let miss = rng.random::<f64>();
        let remote = rng.random::<f64>();
        let rt = 300.0 * rng.random::<f64>();
        let base = MemoryProfile::new(mpki, miss, remote);
        let s = c.stall_cycles_per_inst(&base, rt);
        assert!(s >= 0.0 && s.is_finite(), "case {case}");
        let more_mpki = MemoryProfile::new(mpki + 1.0, miss, remote);
        assert!(c.stall_cycles_per_inst(&more_mpki, rt) >= s, "case {case}");
        assert!(
            c.stall_cycles_per_inst(&base, rt + 10.0) >= s,
            "case {case}"
        );
        assert!(c.packets_per_inst(&base) >= 0.0, "case {case}");
    }
}

/// Home-slice interleaving spreads blocks over every tile.
#[test]
fn home_tiles_are_uniformly_spread() {
    let mut rng = StdRng::seed_from_u64(0xD005);
    let p = Platform::new(4, 4, 1.0);
    for case in 0..64 {
        let start = rng.random_range(0..1_000_000u64);
        let mut counts = [0usize; 16];
        for b in start..start + 160 {
            counts[p.home_tile(b).index()] += 1;
        }
        // Exactly 10 each: low-order interleaving over a contiguous range.
        assert!(counts.iter().all(|&c| c == 10), "case {case}");
    }
}

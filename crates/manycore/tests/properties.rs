//! Property-based tests of the platform substrate.

use mapwave_manycore::cache::{CacheModel, MemoryProfile};
use mapwave_manycore::event::EventQueue;
use mapwave_manycore::mapping::ThreadMapping;
use mapwave_manycore::platform::Platform;
use mapwave_noc::{NodeId, TrafficMatrix};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Events come out in nondecreasing time order, FIFO within ties.
    #[test]
    fn event_queue_is_ordered(times in proptest::collection::vec(0.0f64..100.0, 0..200)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.push(t, i);
        }
        let mut last_time = f64::NEG_INFINITY;
        let mut seen = Vec::new();
        while let Some((t, id)) = q.pop() {
            prop_assert!(t >= last_time);
            if t == last_time {
                // FIFO among equal times: ids with equal time ascend.
                if let Some(&prev) = seen.last() {
                    if times[prev] == t {
                        prop_assert!(id > prev);
                    }
                }
            }
            last_time = t;
            seen.push(id);
        }
        prop_assert_eq!(seen.len(), times.len());
    }

    /// Any permutation builds a valid mapping and round-trips.
    #[test]
    fn mapping_roundtrip(perm in proptest::sample::subsequence((0..12usize).collect::<Vec<_>>(), 12)) {
        // `subsequence` of the full range with len 12 is a no-op; shuffle
        // instead by using the sequence as ranks.
        let mut order: Vec<usize> = (0..12).collect();
        order.sort_by_key(|&i| perm.get(i).copied().unwrap_or(i));
        let m = ThreadMapping::from_permutation(order.clone()).unwrap();
        for (thread, &tile) in order.iter().enumerate() {
            prop_assert_eq!(m.tile_of(thread), NodeId(tile));
            prop_assert_eq!(m.thread_at(NodeId(tile)), thread);
        }
    }

    /// Traffic transport through a mapping preserves the total rate.
    #[test]
    fn traffic_transport_preserves_total(
        rates in proptest::collection::vec(0.0f64..1.0, 64),
        rot in 0usize..8,
    ) {
        let mut logical = TrafficMatrix::zeros(8);
        for (idx, &r) in rates.iter().enumerate() {
            logical.set(NodeId(idx / 8), NodeId(idx % 8), r);
        }
        let perm: Vec<usize> = (0..8).map(|i| (i + rot) % 8).collect();
        let m = ThreadMapping::from_permutation(perm).unwrap();
        let phys = m.traffic_to_tiles(&logical);
        prop_assert!((phys.total_rate() - logical.total_rate()).abs() < 1e-9);
    }

    /// Stalls are monotone in every memory-profile dimension.
    #[test]
    fn stall_monotonicity(
        mpki in 0.0f64..50.0,
        miss in 0.0f64..1.0,
        remote in 0.0f64..1.0,
        rt in 0.0f64..300.0,
    ) {
        let c = CacheModel::default_64core();
        let base = MemoryProfile::new(mpki, miss, remote);
        let s = c.stall_cycles_per_inst(&base, rt);
        prop_assert!(s >= 0.0 && s.is_finite());
        let more_mpki = MemoryProfile::new(mpki + 1.0, miss, remote);
        prop_assert!(c.stall_cycles_per_inst(&more_mpki, rt) >= s);
        prop_assert!(c.stall_cycles_per_inst(&base, rt + 10.0) >= s);
        prop_assert!(c.packets_per_inst(&base) >= 0.0);
    }

    /// Home-slice interleaving spreads blocks over every tile.
    #[test]
    fn home_tiles_are_uniformly_spread(start in 0u64..1_000_000) {
        let p = Platform::new(4, 4, 1.0);
        let mut counts = [0usize; 16];
        for b in start..start + 160 {
            counts[p.home_tile(b).index()] += 1;
        }
        // Exactly 10 each: low-order interleaving over a contiguous range.
        prop_assert!(counts.iter().all(|&c| c == 10));
    }
}

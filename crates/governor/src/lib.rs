//! # mapwave-governor
//!
//! Online power-capping DVFS governor for VFI islands — the dynamic
//! counterpart to the design flow's static per-phase V/F assignment.
//!
//! The static flow (the DAC'15 study) picks one operating point per island
//! from profiled utilization and never revisits it. This crate adds the
//! scenario the KNL/KNM power-capping study measures on real hardware: a
//! chip-level power cap enforced at runtime. Execution is divided into
//! fixed-length **epochs**; at each epoch boundary the governor takes the
//! islands' utilization telemetry from the previous epoch, projects chip
//! power for the next one, and moves island V/F levels to keep the
//! projection under the cap:
//!
//! * **Throttle pass** — while the projection exceeds the cap, the
//!   lowest-utilization island above the bottom level steps down one level
//!   (ties broken toward the lowest island index). Throttling ignores
//!   hysteresis lockouts: the cap is a safety bound and acts immediately.
//! * **Boost pass** — islands sitting below their statically desired level
//!   step back up (highest-utilization first) only when the projection
//!   stays under `cap · (1 − margin)` *and* their post-throttle lockout has
//!   expired. The margin dead-band plus the lockout prevent
//!   throttle/boost oscillation at a boundary cap.
//!
//! Both passes are pure functions of the sampled utilizations and the
//! governor's own state, so a governed run is exactly as deterministic as
//! the ungoverned simulation feeding it.
//!
//! ## Quick start
//!
//! ```
//! use mapwave_governor::{GovernorConfig, PowerGovernor};
//! use mapwave_vfi::power::CorePowerModel;
//! use mapwave_vfi::vf::VfTable;
//!
//! let table = VfTable::paper_levels();
//! let model = CorePowerModel::default_x86();
//! // Two 2-core islands, both statically assigned the top level.
//! let mut gov = PowerGovernor::new(
//!     GovernorConfig::new(3.0),
//!     table,
//!     model,
//!     vec![3, 3],
//! )
//! .unwrap();
//! let plan = gov.plan_epoch(&[vec![0.9, 0.9], vec![0.3, 0.3]]);
//! assert!(plan.projected_power_w <= 3.0);
//! // The busy island keeps a higher level than the idle one.
//! assert!(plan.levels[0] >= plan.levels[1]);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

use mapwave_vfi::power::CorePowerModel;
use mapwave_vfi::vf::VfTable;

/// Governor tuning: the cap itself plus epoch/hysteresis shape.
#[derive(Debug, Clone, PartialEq)]
pub struct GovernorConfig {
    /// Chip-level power cap in watts.
    pub power_cap_w: f64,
    /// Epoch length in reference-clock cycles (the sampling and actuation
    /// period).
    pub epoch_cycles: u64,
    /// Epochs a throttled island must wait before it may boost again.
    pub hysteresis_epochs: u32,
    /// Dead-band fraction under the cap required before boosting:
    /// a boost is taken only if the projection stays at or below
    /// `power_cap_w · (1 − cap_margin)`.
    pub cap_margin: f64,
}

impl GovernorConfig {
    /// Default epoch length: 50k reference cycles (20 µs at 2.5 GHz).
    pub const DEFAULT_EPOCH_CYCLES: u64 = 50_000;

    /// A cap at `power_cap_w` with the default epoch length, a 2-epoch
    /// boost lockout after throttling and a 5% boost dead-band.
    pub fn new(power_cap_w: f64) -> Self {
        GovernorConfig {
            power_cap_w,
            epoch_cycles: Self::DEFAULT_EPOCH_CYCLES,
            hysteresis_epochs: 2,
            cap_margin: 0.05,
        }
    }

    /// Sets the epoch length in reference cycles.
    pub fn with_epoch_cycles(mut self, epoch_cycles: u64) -> Self {
        self.epoch_cycles = epoch_cycles;
        self
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns a message describing the first violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        if !(self.power_cap_w > 0.0 && self.power_cap_w.is_finite()) {
            return Err("power cap must be positive and finite".into());
        }
        if self.epoch_cycles == 0 {
            return Err("epoch length must be nonzero".into());
        }
        if !(0.0..1.0).contains(&self.cap_margin) {
            return Err("cap margin must be in [0, 1)".into());
        }
        Ok(())
    }
}

/// The level assignment planned for one epoch.
#[derive(Debug, Clone, PartialEq)]
pub struct EpochPlan {
    /// Planned level index per island (into the governor's [`VfTable`]).
    pub levels: Vec<usize>,
    /// Chip power projected for this plan from the sampled utilizations,
    /// in watts.
    pub projected_power_w: f64,
    /// Whether the projection still exceeds the cap with every island at
    /// the bottom level (the cap is infeasible for this telemetry; the
    /// governor has no lever left).
    pub violated: bool,
    /// Islands stepped down this epoch.
    pub throttled: u32,
    /// Islands stepped up this epoch.
    pub boosted: u32,
}

/// Lifetime counters of one governor instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct GovernorStats {
    /// Epochs planned.
    pub epochs: u64,
    /// Individual one-level throttle steps taken.
    pub throttles: u64,
    /// Individual one-level boost steps taken.
    pub boosts: u64,
    /// Epochs whose projection exceeded the cap with all islands already
    /// at the bottom level.
    pub cap_violations: u64,
}

/// The online power-capping governor.
///
/// One instance governs one chip: it owns the current per-island level
/// assignment and is consulted once per epoch with fresh utilization
/// telemetry. See the [crate docs](crate) for the control law.
#[derive(Debug, Clone)]
pub struct PowerGovernor {
    cfg: GovernorConfig,
    table: VfTable,
    model: CorePowerModel,
    /// Current level index per island.
    levels: Vec<usize>,
    /// Statically desired level index per island (the boost ceiling).
    desired: Vec<usize>,
    /// Epochs remaining before each island may boost again.
    lockout: Vec<u32>,
    stats: GovernorStats,
}

impl PowerGovernor {
    /// Creates a governor over `desired_levels.len()` islands, each
    /// starting at its statically desired level (indexes into `table`).
    ///
    /// # Errors
    ///
    /// Rejects an invalid configuration, an empty island set, and any
    /// desired level outside the table.
    pub fn new(
        cfg: GovernorConfig,
        table: VfTable,
        model: CorePowerModel,
        desired_levels: Vec<usize>,
    ) -> Result<Self, String> {
        cfg.validate()?;
        if desired_levels.is_empty() {
            return Err("governor needs at least one island".into());
        }
        if let Some(&bad) = desired_levels.iter().find(|&&l| l >= table.len()) {
            return Err(format!(
                "desired level {bad} out of range for a {}-level table",
                table.len()
            ));
        }
        let n = desired_levels.len();
        Ok(PowerGovernor {
            cfg,
            table,
            model,
            levels: desired_levels.clone(),
            desired: desired_levels,
            lockout: vec![0; n],
            stats: GovernorStats::default(),
        })
    }

    /// The configuration in force.
    pub fn config(&self) -> &GovernorConfig {
        &self.cfg
    }

    /// The current level assignment.
    pub fn levels(&self) -> &[usize] {
        &self.levels
    }

    /// Lifetime counters.
    pub fn stats(&self) -> GovernorStats {
        self.stats
    }

    /// Power of one island whose cores run at `level` with the given
    /// utilizations, in watts.
    pub fn island_power_w(&self, level: usize, utilizations: &[f64]) -> f64 {
        let vf = self.table.levels()[level];
        utilizations
            .iter()
            .map(|&u| self.model.power_w(u, vf))
            .sum()
    }

    /// Chip power for an explicit level assignment, in watts.
    pub fn chip_power_w(&self, levels: &[usize], island_utilization: &[Vec<f64>]) -> f64 {
        levels
            .iter()
            .zip(island_utilization)
            .map(|(&l, u)| self.island_power_w(l, u))
            .sum()
    }

    /// Plans the next epoch from per-island, per-core utilization
    /// telemetry (one inner vector per island, in island order).
    ///
    /// The sampled utilizations are treated as the projection for the
    /// upcoming epoch. Because measured utilization in the replay model
    /// never rises epoch-over-epoch for a fixed workload, and core power
    /// is monotone in utilization, a plan whose projection respects the
    /// cap also respects it when measured.
    ///
    /// # Panics
    ///
    /// Panics if the island count differs from construction.
    pub fn plan_epoch(&mut self, island_utilization: &[Vec<f64>]) -> EpochPlan {
        assert_eq!(
            island_utilization.len(),
            self.levels.len(),
            "one utilization vector per island"
        );
        self.stats.epochs += 1;
        for l in &mut self.lockout {
            *l = l.saturating_sub(1);
        }
        let n = self.levels.len();
        let island_power: Vec<Vec<f64>> = (0..n)
            .map(|i| {
                (0..self.table.len())
                    .map(|l| self.island_power_w(l, &island_utilization[i]))
                    .collect()
            })
            .collect();
        let mean_u: Vec<f64> = island_utilization
            .iter()
            .map(|u| {
                if u.is_empty() {
                    0.0
                } else {
                    u.iter().sum::<f64>() / u.len() as f64
                }
            })
            .collect();
        let mut total: f64 = (0..n).map(|i| island_power[i][self.levels[i]]).sum();
        let mut boosted = 0u32;
        let mut throttled = 0u32;

        // Boost pass: hottest island first, one level per island per
        // epoch, only into the dead-band below the cap.
        let boost_ceiling = self.cfg.power_cap_w * (1.0 - self.cfg.cap_margin);
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_by(|&a, &b| {
            mean_u[b]
                .partial_cmp(&mean_u[a])
                .expect("utilizations are finite")
                .then(a.cmp(&b))
        });
        for &i in &order {
            if self.levels[i] >= self.desired[i] || self.lockout[i] > 0 {
                continue;
            }
            let next = self.levels[i] + 1;
            let candidate = total - island_power[i][self.levels[i]] + island_power[i][next];
            if candidate <= boost_ceiling {
                self.levels[i] = next;
                total = candidate;
                boosted += 1;
                self.stats.boosts += 1;
            }
        }

        // Throttle pass: coldest island first, as many steps as the cap
        // needs. Safety ignores lockouts.
        while total > self.cfg.power_cap_w {
            let victim = (0..n).filter(|&i| self.levels[i] > 0).min_by(|&a, &b| {
                mean_u[a]
                    .partial_cmp(&mean_u[b])
                    .expect("utilizations are finite")
                    .then(a.cmp(&b))
            });
            let Some(i) = victim else { break };
            let next = self.levels[i] - 1;
            total = total - island_power[i][self.levels[i]] + island_power[i][next];
            self.levels[i] = next;
            self.lockout[i] = self.cfg.hysteresis_epochs;
            throttled += 1;
            self.stats.throttles += 1;
        }

        let violated = total > self.cfg.power_cap_w;
        if violated {
            self.stats.cap_violations += 1;
        }
        EpochPlan {
            levels: self.levels.clone(),
            projected_power_w: total,
            violated,
            throttled,
            boosted,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn governor(cap: f64, desired: Vec<usize>) -> PowerGovernor {
        PowerGovernor::new(
            GovernorConfig::new(cap),
            VfTable::paper_levels(),
            CorePowerModel::default_x86(),
            desired,
        )
        .unwrap()
    }

    /// Four 4-core islands, everyone busy.
    fn busy(n_islands: usize, cores: usize, u: f64) -> Vec<Vec<f64>> {
        vec![vec![u; cores]; n_islands]
    }

    #[test]
    fn generous_cap_never_throttles() {
        let mut g = governor(1000.0, vec![3; 4]);
        for _ in 0..5 {
            let plan = g.plan_epoch(&busy(4, 4, 0.9));
            assert_eq!(plan.levels, vec![3; 4]);
            assert_eq!(plan.throttled, 0);
        }
        assert_eq!(g.stats().throttles, 0);
        assert_eq!(g.stats().cap_violations, 0);
    }

    #[test]
    fn tight_cap_throttles_coldest_island_first() {
        let mut g = governor(10.0, vec![3; 4]);
        let mut utils = busy(4, 4, 0.9);
        utils[2] = vec![0.1; 4]; // island 2 is nearly idle
        let plan = g.plan_epoch(&utils);
        assert!(plan.projected_power_w <= 10.0);
        assert!(plan.levels[2] < 3, "cold island throttles first");
        assert!(plan.throttled > 0);
    }

    #[test]
    fn projection_respects_cap_whenever_feasible() {
        for cap in [4.0, 6.0, 8.0, 12.0, 14.5] {
            let mut g = governor(cap, vec![3; 4]);
            let plan = g.plan_epoch(&busy(4, 4, 0.95));
            let floor = g.chip_power_w(&[0; 4], &busy(4, 4, 0.95));
            if floor <= cap {
                assert!(
                    plan.projected_power_w <= cap,
                    "cap {cap}: projection {} over",
                    plan.projected_power_w
                );
                assert!(!plan.violated);
            } else {
                assert!(plan.violated, "cap {cap} is infeasible yet not reported");
            }
        }
    }

    #[test]
    fn infeasible_cap_reports_violation_at_bottom() {
        let mut g = governor(0.5, vec![3; 4]);
        let plan = g.plan_epoch(&busy(4, 4, 0.9));
        assert_eq!(plan.levels, vec![0; 4], "everything at the floor");
        assert!(plan.violated);
        assert_eq!(g.stats().cap_violations, 1);
    }

    #[test]
    fn no_oscillation_at_a_boundary_cap() {
        // Pick a cap strictly between the chip power at desired levels and
        // one throttle step below, so the governor must throttle once and
        // then hold: any boost would re-cross the cap.
        let g0 = governor(100.0, vec![3; 4]);
        let utils = busy(4, 4, 0.8);
        let at_desired = g0.chip_power_w(&[3; 4], &utils);
        let one_down = g0.chip_power_w(&[3, 3, 2, 3], &utils);
        let cap = 0.5 * (at_desired + one_down);
        let mut g = governor(cap, vec![3; 4]);
        let first = g.plan_epoch(&utils);
        assert!(first.throttled > 0, "boundary cap must throttle initially");
        let settled = first.levels.clone();
        // >= 3 consecutive epochs at the boundary: the assignment holds
        // still — no throttle/boost ping-pong.
        for epoch in 0..4 {
            let plan = g.plan_epoch(&utils);
            assert_eq!(plan.levels, settled, "oscillation at epoch {epoch}");
            assert_eq!(plan.throttled, 0);
            assert_eq!(plan.boosted, 0);
        }
    }

    #[test]
    fn boost_returns_to_desired_when_load_drops() {
        let mut g = governor(8.0, vec![3; 4]);
        // Hot start forces throttling.
        let hot = busy(4, 4, 0.95);
        let first = g.plan_epoch(&hot);
        assert!(first.levels.iter().any(|&l| l < 3));
        // Load collapses; after the lockout drains, islands boost back.
        let cool = busy(4, 4, 0.05);
        let mut last = Vec::new();
        for _ in 0..6 {
            last = g.plan_epoch(&cool).levels;
        }
        assert_eq!(last, vec![3; 4], "idle chip returns to desired levels");
        assert!(g.stats().boosts > 0);
    }

    #[test]
    fn boost_waits_out_the_lockout() {
        let mut g = governor(8.0, vec![3; 4]);
        let hot = busy(4, 4, 0.95);
        let throttled_levels = g.plan_epoch(&hot).levels;
        // Immediately cool: the throttled islands may not boost while the
        // hysteresis lockout is live even though power headroom exists.
        let cool = busy(4, 4, 0.05);
        let plan = g.plan_epoch(&cool);
        assert_eq!(
            plan.levels, throttled_levels,
            "lockout must hold the first cool epoch"
        );
        assert_eq!(plan.boosted, 0);
    }

    #[test]
    fn determinism_same_telemetry_same_plans() {
        let run = || {
            let mut g = governor(9.0, vec![3, 2, 3, 1]);
            let mut trace = Vec::new();
            for e in 0..8 {
                let u = 0.2 + 0.1 * (e % 4) as f64;
                trace.push(g.plan_epoch(&busy(4, 4, u)));
            }
            trace
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn rejects_bad_construction() {
        let t = VfTable::paper_levels();
        let m = CorePowerModel::default_x86();
        assert!(
            PowerGovernor::new(GovernorConfig::new(5.0), t.clone(), m.clone(), vec![]).is_err()
        );
        assert!(
            PowerGovernor::new(GovernorConfig::new(5.0), t.clone(), m.clone(), vec![4]).is_err()
        );
        assert!(
            PowerGovernor::new(GovernorConfig::new(-1.0), t.clone(), m.clone(), vec![0]).is_err()
        );
        assert!(GovernorConfig::new(5.0)
            .with_epoch_cycles(0)
            .validate()
            .is_err());
        let mut c = GovernorConfig::new(5.0);
        c.cap_margin = 1.0;
        assert!(c.validate().is_err());
    }
}

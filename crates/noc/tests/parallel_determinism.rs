//! Cross-thread determinism suite: the parallel switch sweep must produce
//! **byte-identical** [`NetworkStats`] for every thread count, across
//! topology families and load regimes. Together with the golden digests
//! this pins the wavefront/replay engine to the serial semantics.

use mapwave_noc::energy::EnergyModel;
use mapwave_noc::node::{grid_positions, NodeId};
use mapwave_noc::routing::RoutingTable;
use mapwave_noc::sim::{NetworkSim, SimConfig};
use mapwave_noc::stats::NetworkStats;
use mapwave_noc::topology::mesh::mesh;
use mapwave_noc::topology::small_world::SmallWorldBuilder;
use mapwave_noc::topology::wireless::{ChannelId, WirelessInterface, WirelessOverlay};
use mapwave_noc::topology::Topology;
use mapwave_noc::traffic::TrafficMatrix;

const THREADS: [usize; 4] = [1, 2, 4, 7];

/// Byte-level equality: every float compared by bit pattern.
fn assert_identical(a: &NetworkStats, b: &NetworkStats, what: &str) {
    assert_eq!(format!("{a:?}"), format!("{b:?}"), "{what}");
    assert_eq!(
        a.energy.wire_pj.to_bits(),
        b.energy.wire_pj.to_bits(),
        "{what}: wire energy bits"
    );
    assert_eq!(
        a.energy.wireless_pj.to_bits(),
        b.energy.wireless_pj.to_bits(),
        "{what}: wireless energy bits"
    );
    assert_eq!(
        a.energy.switch_pj.to_bits(),
        b.energy.switch_pj.to_bits(),
        "{what}: switch energy bits"
    );
}

fn run_at(
    build: &dyn Fn() -> (Topology, WirelessOverlay, RoutingTable),
    threads: usize,
    adaptive: bool,
    traffic: &TrafficMatrix,
) -> NetworkStats {
    let (topo, overlay, table) = build();
    let cfg = SimConfig {
        threads,
        vcs: if adaptive { 2 } else { 1 },
        adaptive,
        ..SimConfig::default()
    };
    let mut sim = NetworkSim::new(topo, overlay, table, EnergyModel::default_65nm(), cfg).unwrap();
    sim.run(traffic, 200, 1500, 20_000).clone()
}

fn check_all_threads(
    name: &str,
    build: &dyn Fn() -> (Topology, WirelessOverlay, RoutingTable),
    adaptive: bool,
    n: usize,
) {
    for rate in [0.02, 0.30] {
        let traffic = TrafficMatrix::uniform(n, rate);
        let baseline = run_at(build, 1, adaptive, &traffic);
        assert!(
            baseline.packets_delivered > 0,
            "{name}: no traffic at {rate}"
        );
        for threads in &THREADS[1..] {
            let stats = run_at(build, *threads, adaptive, &traffic);
            assert_identical(
                &baseline,
                &stats,
                &format!("{name} rate {rate} threads {threads}"),
            );
        }
    }
}

#[test]
fn mesh_is_thread_invariant() {
    check_all_threads(
        "mesh 8x8",
        &|| {
            (
                mesh(8, 8, 2.5),
                WirelessOverlay::none(),
                RoutingTable::xy(8, 8),
            )
        },
        false,
        64,
    );
}

#[test]
fn adaptive_mesh_is_thread_invariant() {
    check_all_threads(
        "adaptive mesh 6x6",
        &|| {
            (
                mesh(6, 6, 2.5),
                WirelessOverlay::none(),
                RoutingTable::xy(6, 6),
            )
        },
        true,
        36,
    );
}

#[test]
fn small_world_is_thread_invariant() {
    check_all_threads(
        "small-world 36",
        &|| {
            let clusters = (0..36).map(|i| (i % 6) / 3 + 2 * ((i / 6) / 3)).collect();
            let topo = SmallWorldBuilder::new(grid_positions(6, 6, 2.5), clusters)
                .alpha(1.8)
                .seed(7)
                .build()
                .expect("builds");
            let table = RoutingTable::up_down(&topo, &WirelessOverlay::none()).unwrap();
            (topo, WirelessOverlay::none(), table)
        },
        false,
        36,
    );
}

#[test]
fn winoc_is_thread_invariant() {
    check_all_threads(
        "WiNoC 6x6",
        &|| {
            let topo = mesh(6, 6, 2.5);
            let overlay = WirelessOverlay::new(
                vec![
                    WirelessInterface {
                        node: NodeId(0),
                        channel: ChannelId(0),
                    },
                    WirelessInterface {
                        node: NodeId(35),
                        channel: ChannelId(0),
                    },
                    WirelessInterface {
                        node: NodeId(5),
                        channel: ChannelId(1),
                    },
                    WirelessInterface {
                        node: NodeId(30),
                        channel: ChannelId(1),
                    },
                ],
                2,
            )
            .unwrap();
            let table = RoutingTable::up_down(&topo, &overlay).unwrap();
            (topo, overlay, table)
        },
        false,
        36,
    );
}

/// A faulted run silently pins itself to the serial path; the
/// `noc.parallel_disabled_faults` counter makes that fallback observable.
#[test]
fn faulted_parallel_request_is_counted() {
    use mapwave_faults::{FaultConfig, FaultPlan};
    use mapwave_harness::telemetry;

    let build = || {
        let topo = mesh(6, 6, 2.5);
        let overlay = WirelessOverlay::new(
            vec![
                WirelessInterface {
                    node: NodeId(0),
                    channel: ChannelId(0),
                },
                WirelessInterface {
                    node: NodeId(35),
                    channel: ChannelId(0),
                },
            ],
            1,
        )
        .unwrap();
        let table = RoutingTable::up_down(&topo, &overlay).unwrap();
        (topo, overlay, table)
    };
    let traffic = TrafficMatrix::uniform(36, 0.02);
    let plan = FaultPlan::build(&FaultConfig::at_rate(0.05, 9));
    assert!(plan.affects_noc());
    telemetry::enable();

    let counter = || telemetry::snapshot().counter("noc.parallel_disabled_faults");

    // threads > 1 with an armed plan: one bump per run.
    let (topo, overlay, table) = build();
    let cfg = SimConfig {
        threads: 4,
        ..SimConfig::default()
    };
    let mut sim = NetworkSim::new(topo, overlay, table, EnergyModel::default_65nm(), cfg).unwrap();
    sim.set_faults(&plan);
    let before = counter();
    sim.run(&traffic, 200, 1000, 20_000);
    sim.run(&traffic, 200, 1000, 20_000);
    assert_eq!(counter() - before, 2, "one count per pinned run");

    // A serial faulted run loses nothing, so it must not count.
    sim.set_threads(1);
    let before = counter();
    sim.run(&traffic, 200, 1000, 20_000);
    assert_eq!(counter() - before, 0, "serial faulted run counted");

    // A parallel run without faults must not count either.
    sim.set_threads(4);
    sim.set_faults(&FaultPlan::none());
    let before = counter();
    sim.run(&traffic, 200, 1000, 20_000);
    assert_eq!(counter() - before, 0, "fault-free parallel run counted");
    telemetry::disable();
}

//! Period-hinted drain replay: hints are a wall-clock knob only.
//!
//! A hint seeds the drain-phase livelock detector with the period verified
//! by an earlier run. Three invariants:
//!
//! * any hint — right, wrong, or absurd — leaves every observable
//!   bit-identical to the unhinted run (the detector verifies a hinted
//!   period against live snapshots exactly as it verifies a Brent re-pin);
//! * a correct hint is confirmed via the ring (telemetry `hint_hits`), a
//!   wrong one is counted rejected and the Brent fallback still fires;
//! * an attached fault plan suppresses the hint entirely — hazard counters
//!   keep the compact state advancing, so not even a rejection may fire.

use mapwave_harness::telemetry;
use mapwave_noc::node::Position;
use mapwave_noc::routing::RoutingTable;
use mapwave_noc::sim::{NetworkSim, SimConfig};
use mapwave_noc::topology::wireless::{ChannelId, WirelessInterface, WirelessOverlay};
use mapwave_noc::topology::{Topology, TopologyKind};
use mapwave_noc::{EnergyModel, NodeId, TrafficMatrix};

/// A 20-node wireline chain bridged by one wireless channel at its ends
/// (the `steady_state.rs` fabric): idle token-MAC rotation dominates, so
/// drain stalls are periodic and the detector has something to find.
fn line_sim() -> NetworkSim<'static> {
    let len = 20;
    let mut topo = Topology::new(
        (0..len)
            .map(|i| Position::new(i as f64 * 2.5, 0.0))
            .collect(),
        TopologyKind::Custom,
    );
    for i in 0..len - 1 {
        topo.add_link(NodeId(i), NodeId(i + 1)).unwrap();
    }
    let overlay = WirelessOverlay::new(
        vec![
            WirelessInterface {
                node: NodeId(0),
                channel: ChannelId(0),
            },
            WirelessInterface {
                node: NodeId(len - 1),
                channel: ChannelId(0),
            },
        ],
        1,
    )
    .unwrap();
    let table = RoutingTable::up_down(&topo, &overlay).unwrap();
    NetworkSim::new(
        topo,
        overlay,
        table,
        EnergyModel::default_65nm(),
        SimConfig::default(),
    )
    .unwrap()
}

fn end_to_end_traffic(rate: f64) -> TrafficMatrix {
    let mut tm = TrafficMatrix::zeros(20);
    tm.set(NodeId(0), NodeId(19), rate);
    tm.set(NodeId(19), NodeId(0), rate);
    tm
}

#[test]
fn any_hint_leaves_observables_bit_identical() {
    // Right, wrong, maximal, or clamped-absurd hints: the detector only
    // accepts a period it has verified against live snapshots, so every
    // observable must match the unhinted run bit for bit.
    let tm = end_to_end_traffic(0.002);
    let mut reference = line_sim();
    let digest = reference.run(&tm, 200, 3000, 30_000).digest();
    for hint in [Some(1), Some(7), Some(64), Some(u64::MAX)] {
        let mut sim = line_sim();
        sim.set_steady_period_hint(hint);
        assert_eq!(
            sim.run(&tm, 200, 3000, 30_000).digest(),
            digest,
            "hint {hint:?} perturbed observables"
        );
    }
}

#[test]
fn healthy_drain_detects_no_livelock() {
    // On a deadlock-free fabric with a live MAC the drain always makes
    // progress, so the livelock detector must never fire and no period is
    // ever reported — the hint chain stays dormant on healthy runs (it is
    // a safety net for pathological drains, see DESIGN.md).
    let mut sim = line_sim();
    for rate in [0.002, 0.05, 0.2] {
        let tm = end_to_end_traffic(rate);
        let delivered = sim.run(&tm, 200, 3000, 30_000).packets_delivered;
        assert!(delivered > 0, "traffic must flow at rate {rate}");
        assert_eq!(
            sim.detected_steady_period(),
            None,
            "healthy drain reported a livelock period at rate {rate}"
        );
    }
}

#[test]
fn fault_plan_suppresses_hint_machinery() {
    // With a plan attached the hazard counters keep the compact state
    // advancing, so the hint must not even be offered to the detector:
    // observables match the unhinted faulted run and the hint telemetry
    // stays silent.
    use mapwave_faults::{FaultConfig, FaultPlan};
    let tm = end_to_end_traffic(0.002);
    let plan = FaultPlan::build(&FaultConfig::at_rate(0.3, 7));

    let mut reference = line_sim();
    reference.set_faults(&plan);
    let digest = reference.run(&tm, 200, 3000, 30_000).digest();

    telemetry::enable();
    let counters = || {
        let snap = telemetry::snapshot();
        (
            snap.counter("noc.steady_hint_hits"),
            snap.counter("noc.steady_hint_rejected"),
        )
    };
    let before = counters();
    let mut hinted = line_sim();
    hinted.set_faults(&plan);
    hinted.set_steady_period_hint(Some(2));
    let hinted_digest = hinted.run(&tm, 200, 3000, 30_000).digest();
    let after = counters();
    telemetry::disable();

    assert_eq!(hinted_digest, digest, "hint leaked into a faulted run");
    assert_eq!(after, before, "hint telemetry fired under an active plan");
}

//! Boundary tests for the steady-state machinery: the idle-cycle closed-form
//! replay inside the measurement window, and the drain-phase periodic-fixpoint
//! detector's interaction with an attached fault plan.
//!
//! The invariants under test:
//! * idle token-MAC cycles are consumed in closed form (a period-1 fixpoint of
//!   the compact state), deterministically across reruns;
//! * an *active* fault stream keeps the compact state advancing — hazard
//!   counters burn on every corrupted attempt — so detection is implicitly
//!   disabled while corruptions fire;
//! * once the stream is cycle-stable (every WI pushed past its fallback
//!   threshold and disabled), the state freezes again and closed-form replay
//!   resumes.

use mapwave_faults::{FaultConfig, FaultPlan};
use mapwave_noc::node::Position;
use mapwave_noc::routing::RoutingTable;
use mapwave_noc::sim::{NetworkSim, SimConfig};
use mapwave_noc::topology::wireless::{ChannelId, WirelessInterface, WirelessOverlay};
use mapwave_noc::topology::{Topology, TopologyKind};
use mapwave_noc::{EnergyModel, NodeId, TrafficMatrix};

/// A 20-node wireline chain bridged by one wireless channel at its ends —
/// the smallest fabric where wireless transfers, token MAC idling, and the
/// wireline fallback all matter.
fn line_sim() -> NetworkSim<'static> {
    let len = 20;
    let mut topo = Topology::new(
        (0..len)
            .map(|i| Position::new(i as f64 * 2.5, 0.0))
            .collect(),
        TopologyKind::Custom,
    );
    for i in 0..len - 1 {
        topo.add_link(NodeId(i), NodeId(i + 1)).unwrap();
    }
    let overlay = WirelessOverlay::new(
        vec![
            WirelessInterface {
                node: NodeId(0),
                channel: ChannelId(0),
            },
            WirelessInterface {
                node: NodeId(len - 1),
                channel: ChannelId(0),
            },
        ],
        1,
    )
    .unwrap();
    let table = RoutingTable::up_down(&topo, &overlay).unwrap();
    NetworkSim::new(
        topo,
        overlay,
        table,
        EnergyModel::default_65nm(),
        SimConfig::default(),
    )
    .unwrap()
}

fn end_to_end_traffic(rate: f64) -> TrafficMatrix {
    let mut tm = TrafficMatrix::zeros(20);
    tm.set(NodeId(0), NodeId(19), rate);
    tm.set(NodeId(19), NodeId(0), rate);
    tm
}

#[test]
fn idle_cycles_replay_in_closed_form() {
    // At a near-zero rate almost every cycle is idle token-MAC bookkeeping —
    // a period-1 fixpoint of the compact state. The fast path must consume
    // those cycles in closed form, deterministically across reruns, without
    // perturbing any observable.
    let mut sim = line_sim();
    let tm = end_to_end_traffic(0.002);
    let (digest, delivered) = {
        let stats = sim.run(&tm, 200, 3000, 30_000);
        (stats.digest(), stats.packets_delivered)
    };
    let steady = sim.steady_replayed_cycles();
    assert!(delivered > 0, "traffic must flow");
    assert!(
        steady > 1000,
        "a mostly-idle window must be replayed in closed form (got {steady})"
    );
    let rerun = sim.run(&tm, 200, 3000, 30_000).digest();
    assert_eq!(digest, rerun, "closed-form replay must be deterministic");
    assert_eq!(
        steady,
        sim.steady_replayed_cycles(),
        "replayed-cycle count must be deterministic"
    );
}

#[test]
fn active_fault_stream_suppresses_closed_form_replay() {
    // A corrupting fault stream burns hazard counters on every wireless
    // attempt, so the compact state keeps advancing exactly where the clean
    // run would freeze: the faulted run can never replay *more* cycles in
    // closed form, and its outcome stays fully deterministic.
    let tm = end_to_end_traffic(0.002);

    let mut clean = line_sim();
    clean.run(&tm, 200, 3000, 30_000);
    let clean_steady = clean.steady_replayed_cycles();

    let plan = FaultPlan::build(&FaultConfig::at_rate(0.3, 7));
    let mut faulted = line_sim();
    faulted.set_faults(&plan);
    let digest = faulted.run(&tm, 200, 3000, 30_000).digest();
    let faulted_steady = faulted.steady_replayed_cycles();
    assert!(
        faulted.fault_counts().flit_corruptions > 0,
        "the plan must actually corrupt transfers"
    );
    assert!(
        faulted_steady <= clean_steady,
        "an advancing fault stream must not widen the closed-form window \
         (faulted {faulted_steady} > clean {clean_steady})"
    );
    let rerun = faulted.run(&tm, 200, 3000, 30_000).digest();
    assert_eq!(digest, rerun, "faulted replay must be deterministic");
}

#[test]
fn replay_resumes_once_fault_stream_is_cycle_stable() {
    // At a near-certain corruption rate every WI crosses its consecutive
    // threshold and is disabled early; from then on no attempt burns hazard
    // state, the stream is cycle-stable, and closed-form replay must resume
    // even with the plan still attached.
    let mut sim = line_sim();
    sim.set_faults(&FaultPlan::build(&FaultConfig::at_rate(0.95, 3)));
    let tm = end_to_end_traffic(0.002);
    let delivered = sim.run(&tm, 200, 3000, 30_000).packets_delivered;
    let counts = sim.fault_counts();
    assert!(counts.wi_fallbacks > 0, "WIs must fall back at 95% loss");
    assert!(
        delivered > 0,
        "the wireline escape tree must keep delivering"
    );
    assert!(
        sim.steady_replayed_cycles() > 0,
        "a cycle-stable fault stream must not disable replay forever"
    );
}

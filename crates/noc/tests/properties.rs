//! Property-based tests of the NoC simulator's invariants.

use mapwave_noc::node::grid_positions;
use mapwave_noc::prelude::*;
use mapwave_noc::routing::{Hop, RoutingTable};
use mapwave_noc::sim::SimConfig;
use mapwave_noc::topology::mesh::mesh;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every injected packet is delivered once the network drains:
    /// wormhole switching conserves flits under arbitrary admissible loads.
    #[test]
    fn mesh_conserves_packets(
        cols in 2usize..5,
        rows in 2usize..5,
        rate in 0.001f64..0.05,
        seed in 0u64..1000,
    ) {
        let n = cols * rows;
        let cfg = SimConfig { seed, ..SimConfig::default() };
        let mut sim = NetworkSim::new(
            mesh(cols, rows, 1.0),
            WirelessOverlay::none(),
            RoutingTable::xy(cols, rows),
            EnergyModel::default_65nm(),
            cfg,
        ).unwrap();
        let stats = sim.run(&TrafficMatrix::uniform(n, rate), 100, 1500, 50_000);
        prop_assert_eq!(stats.in_flight_at_end, 0);
        prop_assert_eq!(stats.packets_delivered, stats.packets_injected);
        prop_assert_eq!(stats.flits_delivered, 4 * stats.packets_delivered);
    }

    /// Energy accounting never goes negative and grows with delivery.
    #[test]
    fn energy_is_nonnegative_and_monotone(
        rate in 0.005f64..0.04,
        seed in 0u64..100,
    ) {
        let cfg = SimConfig { seed, ..SimConfig::default() };
        let mut sim = NetworkSim::new(
            mesh(4, 4, 2.5),
            WirelessOverlay::none(),
            RoutingTable::xy(4, 4),
            EnergyModel::default_65nm(),
            cfg,
        ).unwrap();
        let stats = sim.run(&TrafficMatrix::uniform(16, rate), 100, 1000, 20_000);
        prop_assert!(stats.energy.switch_pj >= 0.0);
        prop_assert!(stats.energy.wire_pj >= 0.0);
        prop_assert!(stats.energy.wireless_pj == 0.0); // wired-only network
        if stats.packets_delivered > 0 {
            prop_assert!(stats.energy.total_pj() > 0.0);
            prop_assert!(stats.avg_latency() >= 1.0);
        }
    }

    /// Random small-world topologies are connected and routable for every
    /// ordered pair, and routed paths only use existing links.
    #[test]
    fn random_small_worlds_route_everywhere(
        seed in 0u64..500,
        k_intra in 2.0f64..4.0,
        alpha in 1.0f64..3.0,
    ) {
        let clusters: Vec<usize> = (0..16).map(|i| (i % 4) / 2 + 2 * ((i / 4) / 2)).collect();
        let topo = SmallWorldBuilder::new(grid_positions(4, 4, 1.0), clusters)
            .k_intra(k_intra)
            .k_inter(4.0 - k_intra)
            .alpha(alpha)
            .seed(seed)
            .build()
            .unwrap();
        prop_assert!(topo.is_connected());
        let table = RoutingTable::up_down(&topo, &WirelessOverlay::none()).unwrap();
        for s in 0..16 {
            for d in 0..16 {
                let path = table.path(NodeId(s), NodeId(d));
                let mut at = NodeId(s);
                for hop in &path {
                    match hop {
                        Hop::Wire(w) => {
                            prop_assert!(topo.has_link(at, *w));
                            at = *w;
                        }
                        _ => prop_assert!(false, "wired-only network"),
                    }
                }
                prop_assert_eq!(at, NodeId(d));
                prop_assert!(path.len() <= 2 * 16, "path blow-up {s}->{d}");
            }
        }
    }

    /// Raising the wireless hub weight never shortens the routed metric and
    /// never increases the number of pairs using wireless.
    #[test]
    fn hub_weight_monotonicity(seed in 0u64..200) {
        let clusters: Vec<usize> = (0..16).map(|i| (i % 4) / 2 + 2 * ((i / 4) / 2)).collect();
        let topo = SmallWorldBuilder::new(grid_positions(4, 4, 1.0), clusters)
            .seed(seed)
            .build()
            .unwrap();
        let overlay = WirelessOverlay::new(
            vec![
                WirelessInterface { node: NodeId(0), channel: ChannelId(0) },
                WirelessInterface { node: NodeId(15), channel: ChannelId(0) },
            ],
            1,
        ).unwrap();
        let t1 = RoutingTable::up_down_weighted(&topo, &overlay, 1).unwrap();
        let t3 = RoutingTable::up_down_weighted(&topo, &overlay, 3).unwrap();
        let wl_pairs = |t: &RoutingTable| -> usize {
            let mut c = 0;
            for s in 0..16 {
                for d in 0..16 {
                    if s != d && t.wireless_hops(NodeId(s), NodeId(d)) > 0 {
                        c += 1;
                    }
                }
            }
            c
        };
        prop_assert!(wl_pairs(&t3) <= wl_pairs(&t1));
    }

    /// The traffic matrix's derived quantities respect their definitions.
    #[test]
    fn traffic_matrix_identities(
        rates in proptest::collection::vec(0.0f64..0.2, 36),
    ) {
        let mut m = TrafficMatrix::zeros(6);
        for (idx, &r) in rates.iter().enumerate() {
            m.set(NodeId(idx / 6), NodeId(idx % 6), r);
        }
        // Diagonal writes are ignored.
        for i in 0..6 {
            prop_assert_eq!(m.rate(NodeId(i), NodeId(i)), 0.0);
        }
        // Row rates sum to the total.
        let total: f64 = (0..6).map(|s| m.row_rate(NodeId(s))).sum();
        prop_assert!((total - m.total_rate()).abs() < 1e-9);
        // Normalisation caps the maximum at 1.
        let norm = m.normalized();
        let max = (0..6)
            .flat_map(|s| (0..6).map(move |d| (s, d)))
            .map(|(s, d)| norm.rate(NodeId(s), NodeId(d)))
            .fold(0.0, f64::max);
        prop_assert!(max <= 1.0 + 1e-12);
    }

    /// With virtual channels and adaptive routing, flit conservation and
    /// drain still hold on random small-world graphs under load.
    #[test]
    fn adaptive_small_worlds_conserve_packets(
        seed in 0u64..200,
        rate in 0.005f64..0.05,
    ) {
        let clusters: Vec<usize> = (0..16).map(|i| (i % 4) / 2 + 2 * ((i / 4) / 2)).collect();
        let topo = SmallWorldBuilder::new(grid_positions(4, 4, 1.0), clusters)
            .seed(seed)
            .build()
            .unwrap();
        let table = RoutingTable::up_down(&topo, &WirelessOverlay::none()).unwrap();
        let cfg = SimConfig { vcs: 2, adaptive: true, seed, ..SimConfig::default() };
        let mut sim = NetworkSim::new(
            topo,
            WirelessOverlay::none(),
            table,
            EnergyModel::default_65nm(),
            cfg,
        ).unwrap();
        let stats = sim.run(&TrafficMatrix::uniform(16, rate), 100, 1500, 60_000);
        prop_assert_eq!(stats.in_flight_at_end, 0, "adaptive network wedged");
        prop_assert_eq!(stats.packets_delivered, stats.packets_injected);
    }

    /// Simulation is a pure function of its inputs.
    #[test]
    fn simulation_is_deterministic(seed in 0u64..50, rate in 0.005f64..0.05) {
        let run = || {
            let cfg = SimConfig { seed, ..SimConfig::default() };
            let mut sim = NetworkSim::new(
                mesh(3, 3, 1.0),
                WirelessOverlay::none(),
                RoutingTable::xy(3, 3),
                EnergyModel::default_65nm(),
                cfg,
            ).unwrap();
            sim.run(&TrafficMatrix::uniform(9, rate), 50, 500, 10_000)
        };
        prop_assert_eq!(run(), run());
    }
}

//! Property tests of the NoC simulator's invariants, driven by
//! deterministic seeded sweeps (in-tree PRNG; no external dependencies).

use mapwave_harness::rng::{RngExt, SeedableRng, StdRng};
use mapwave_noc::node::grid_positions;
use mapwave_noc::prelude::*;
use mapwave_noc::routing::{Hop, RoutingTable};
use mapwave_noc::sim::SimConfig;
use mapwave_noc::topology::mesh::mesh;

/// Every injected packet is delivered once the network drains:
/// wormhole switching conserves flits under arbitrary admissible loads.
#[test]
fn mesh_conserves_packets() {
    let mut rng = StdRng::seed_from_u64(0xA001);
    for case in 0..24 {
        let cols = rng.random_range(2..5usize);
        let rows = rng.random_range(2..5usize);
        let rate = 0.001 + 0.049 * rng.random::<f64>();
        let seed = rng.random_range(0..1000u64);
        let n = cols * rows;
        let cfg = SimConfig {
            seed,
            ..SimConfig::default()
        };
        let mut sim = NetworkSim::new(
            mesh(cols, rows, 1.0),
            WirelessOverlay::none(),
            RoutingTable::xy(cols, rows),
            EnergyModel::default_65nm(),
            cfg,
        )
        .unwrap();
        let stats = sim.run(&TrafficMatrix::uniform(n, rate), 100, 1500, 50_000);
        assert_eq!(stats.in_flight_at_end, 0, "case {case}");
        assert_eq!(
            stats.packets_delivered, stats.packets_injected,
            "case {case}"
        );
        assert_eq!(
            stats.flits_delivered,
            4 * stats.packets_delivered,
            "case {case}"
        );
    }
}

/// Energy accounting never goes negative and grows with delivery.
#[test]
fn energy_is_nonnegative_and_monotone() {
    let mut rng = StdRng::seed_from_u64(0xA002);
    for case in 0..16 {
        let rate = 0.005 + 0.035 * rng.random::<f64>();
        let seed = rng.random_range(0..100u64);
        let cfg = SimConfig {
            seed,
            ..SimConfig::default()
        };
        let mut sim = NetworkSim::new(
            mesh(4, 4, 2.5),
            WirelessOverlay::none(),
            RoutingTable::xy(4, 4),
            EnergyModel::default_65nm(),
            cfg,
        )
        .unwrap();
        let stats = sim.run(&TrafficMatrix::uniform(16, rate), 100, 1000, 20_000);
        assert!(stats.energy.switch_pj >= 0.0, "case {case}");
        assert!(stats.energy.wire_pj >= 0.0, "case {case}");
        assert_eq!(
            stats.energy.wireless_pj, 0.0,
            "wired-only network, case {case}"
        );
        if stats.packets_delivered > 0 {
            assert!(stats.energy.total_pj() > 0.0, "case {case}");
            assert!(stats.avg_latency() >= 1.0, "case {case}");
        }
    }
}

/// Random small-world topologies are connected and routable for every
/// ordered pair, and routed paths only use existing links.
#[test]
fn random_small_worlds_route_everywhere() {
    let mut rng = StdRng::seed_from_u64(0xA003);
    for case in 0..12 {
        let seed = rng.random_range(0..500u64);
        let k_intra = 2.0 + 2.0 * rng.random::<f64>();
        let alpha = 1.0 + 2.0 * rng.random::<f64>();
        let clusters: Vec<usize> = (0..16).map(|i| (i % 4) / 2 + 2 * ((i / 4) / 2)).collect();
        let topo = SmallWorldBuilder::new(grid_positions(4, 4, 1.0), clusters)
            .k_intra(k_intra)
            .k_inter(4.0 - k_intra)
            .alpha(alpha)
            .seed(seed)
            .build()
            .unwrap();
        assert!(topo.is_connected(), "case {case}");
        let table = RoutingTable::up_down(&topo, &WirelessOverlay::none()).unwrap();
        for s in 0..16 {
            for d in 0..16 {
                let path = table.path(NodeId(s), NodeId(d));
                let mut at = NodeId(s);
                for hop in &path {
                    match hop {
                        Hop::Wire(w) => {
                            assert!(topo.has_link(at, *w), "case {case}");
                            at = *w;
                        }
                        _ => panic!("wired-only network, case {case}"),
                    }
                }
                assert_eq!(at, NodeId(d), "case {case}");
                assert!(path.len() <= 2 * 16, "path blow-up {s}->{d}, case {case}");
            }
        }
    }
}

/// Raising the wireless hub weight never increases the number of pairs
/// using wireless.
#[test]
fn hub_weight_monotonicity() {
    let mut rng = StdRng::seed_from_u64(0xA004);
    for case in 0..12 {
        let seed = rng.random_range(0..200u64);
        let clusters: Vec<usize> = (0..16).map(|i| (i % 4) / 2 + 2 * ((i / 4) / 2)).collect();
        let topo = SmallWorldBuilder::new(grid_positions(4, 4, 1.0), clusters)
            .seed(seed)
            .build()
            .unwrap();
        let overlay = WirelessOverlay::new(
            vec![
                WirelessInterface {
                    node: NodeId(0),
                    channel: ChannelId(0),
                },
                WirelessInterface {
                    node: NodeId(15),
                    channel: ChannelId(0),
                },
            ],
            1,
        )
        .unwrap();
        let t1 = RoutingTable::up_down_weighted(&topo, &overlay, 1).unwrap();
        let t3 = RoutingTable::up_down_weighted(&topo, &overlay, 3).unwrap();
        let wl_pairs = |t: &RoutingTable| -> usize {
            let mut c = 0;
            for s in 0..16 {
                for d in 0..16 {
                    if s != d && t.wireless_hops(NodeId(s), NodeId(d)) > 0 {
                        c += 1;
                    }
                }
            }
            c
        };
        assert!(wl_pairs(&t3) <= wl_pairs(&t1), "case {case}");
    }
}

/// The traffic matrix's derived quantities respect their definitions.
#[test]
fn traffic_matrix_identities() {
    let mut rng = StdRng::seed_from_u64(0xA005);
    for _case in 0..24 {
        let rates: Vec<f64> = (0..36).map(|_| 0.2 * rng.random::<f64>()).collect();
        let mut m = TrafficMatrix::zeros(6);
        for (idx, &r) in rates.iter().enumerate() {
            m.set(NodeId(idx / 6), NodeId(idx % 6), r);
        }
        // Diagonal writes are ignored.
        for i in 0..6 {
            assert_eq!(m.rate(NodeId(i), NodeId(i)), 0.0);
        }
        // Row rates sum to the total.
        let total: f64 = (0..6).map(|s| m.row_rate(NodeId(s))).sum();
        assert!((total - m.total_rate()).abs() < 1e-9);
        // Normalisation caps the maximum at 1.
        let norm = m.normalized();
        let max = (0..6)
            .flat_map(|s| (0..6).map(move |d| (s, d)))
            .map(|(s, d)| norm.rate(NodeId(s), NodeId(d)))
            .fold(0.0, f64::max);
        assert!(max <= 1.0 + 1e-12);
    }
}

/// With virtual channels and adaptive routing, flit conservation and
/// drain still hold on random small-world graphs under load.
#[test]
fn adaptive_small_worlds_conserve_packets() {
    let mut rng = StdRng::seed_from_u64(0xA006);
    for case in 0..10 {
        let seed = rng.random_range(0..200u64);
        let rate = 0.005 + 0.045 * rng.random::<f64>();
        let clusters: Vec<usize> = (0..16).map(|i| (i % 4) / 2 + 2 * ((i / 4) / 2)).collect();
        let topo = SmallWorldBuilder::new(grid_positions(4, 4, 1.0), clusters)
            .seed(seed)
            .build()
            .unwrap();
        let table = RoutingTable::up_down(&topo, &WirelessOverlay::none()).unwrap();
        let cfg = SimConfig {
            vcs: 2,
            adaptive: true,
            seed,
            ..SimConfig::default()
        };
        let mut sim = NetworkSim::new(
            topo,
            WirelessOverlay::none(),
            table,
            EnergyModel::default_65nm(),
            cfg,
        )
        .unwrap();
        let stats = sim.run(&TrafficMatrix::uniform(16, rate), 100, 1500, 60_000);
        assert_eq!(
            stats.in_flight_at_end, 0,
            "adaptive network wedged, case {case}"
        );
        assert_eq!(
            stats.packets_delivered, stats.packets_injected,
            "case {case}"
        );
    }
}

/// Simulation is a pure function of its inputs.
#[test]
fn simulation_is_deterministic() {
    let mut rng = StdRng::seed_from_u64(0xA007);
    for _case in 0..8 {
        let seed = rng.random_range(0..50u64);
        let rate = 0.005 + 0.045 * rng.random::<f64>();
        let run = || {
            let cfg = SimConfig {
                seed,
                ..SimConfig::default()
            };
            let mut sim = NetworkSim::new(
                mesh(3, 3, 1.0),
                WirelessOverlay::none(),
                RoutingTable::xy(3, 3),
                EnergyModel::default_65nm(),
                cfg,
            )
            .unwrap();
            sim.run(&TrafficMatrix::uniform(9, rate), 50, 500, 10_000)
                .clone()
        };
        assert_eq!(run(), run());
    }
}

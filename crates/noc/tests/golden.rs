//! Golden determinism tests for the cycle-accurate simulator.
//!
//! Each scenario pins the 128-bit [`NetworkStats::digest`] of one
//! (topology, traffic, seed) combination, captured from the reference
//! walk-every-switch implementation. The active-set simulator must
//! reproduce every digest bit for bit — latency histograms, per-link
//! loads, energy breakdowns and wireless shares included — so any
//! scheduling or storage optimisation that perturbs observable behaviour
//! fails here immediately.
//!
//! Run with `MAPWAVE_GOLDEN_PRINT=1` to print the current digests (used
//! once to capture the table below; afterwards the table is frozen).

use mapwave_noc::node::{grid_positions, Position};
use mapwave_noc::routing::RoutingTable;
use mapwave_noc::sim::{NetworkSim, SimConfig};
use mapwave_noc::topology::mesh::mesh;
use mapwave_noc::topology::small_world::SmallWorldBuilder;
use mapwave_noc::topology::wireless::{ChannelId, WirelessInterface, WirelessOverlay};
use mapwave_noc::topology::{Topology, TopologyKind};
use mapwave_noc::{EnergyModel, NodeId, TrafficMatrix};

/// One pinned scenario: a simulator, a traffic pattern, a window, and the
/// digest the reference implementation produced.
struct Scenario {
    name: &'static str,
    sim: NetworkSim<'static>,
    traffic: TrafficMatrix,
    warmup: u64,
    measure: u64,
    drain: u64,
    expected: &'static str,
}

fn quadrant_clusters() -> Vec<usize> {
    (0..64).map(|i| (i % 8) / 4 + 2 * ((i / 8) / 4)).collect()
}

fn small_world_64() -> Topology {
    SmallWorldBuilder::new(grid_positions(8, 8, 2.5), quadrant_clusters())
        .alpha(1.5)
        .seed(0xDAC_2015)
        .build()
        .expect("builds")
}

fn winoc_overlay() -> WirelessOverlay {
    let wis: Vec<WirelessInterface> = [
        (9usize, 0usize),
        (18, 1),
        (27, 2),
        (13, 0),
        (22, 1),
        (30, 2),
        (41, 0),
        (50, 1),
        (33, 2),
        (45, 0),
        (54, 1),
        (37, 2),
    ]
    .iter()
    .map(|&(n, c)| WirelessInterface {
        node: NodeId(n),
        channel: ChannelId(c),
    })
    .collect();
    WirelessOverlay::new(wis, 3).expect("valid overlay")
}

fn wireless_line(len: usize) -> (Topology, WirelessOverlay) {
    let mut topo = Topology::new(
        (0..len)
            .map(|i| Position::new(i as f64 * 2.5, 0.0))
            .collect(),
        TopologyKind::Custom,
    );
    for i in 0..len - 1 {
        topo.add_link(NodeId(i), NodeId(i + 1)).unwrap();
    }
    let overlay = WirelessOverlay::new(
        vec![
            WirelessInterface {
                node: NodeId(0),
                channel: ChannelId(0),
            },
            WirelessInterface {
                node: NodeId(len - 1),
                channel: ChannelId(0),
            },
        ],
        1,
    )
    .unwrap();
    (topo, overlay)
}

fn mesh_sim(side: usize, cfg: SimConfig) -> NetworkSim<'static> {
    NetworkSim::new(
        mesh(side, side, 2.5),
        WirelessOverlay::none(),
        RoutingTable::xy(side, side),
        EnergyModel::default_65nm(),
        cfg,
    )
    .unwrap()
}

fn scenarios() -> Vec<Scenario> {
    let mut v = Vec::new();

    // 8x8 mesh, XY routing, low uniform load — the Fig. 6 regime.
    v.push(Scenario {
        name: "mesh8_uniform_low",
        sim: mesh_sim(8, SimConfig::default()),
        traffic: TrafficMatrix::uniform(64, 0.01),
        warmup: 300,
        measure: 2000,
        drain: 20_000,
        expected: "d023a5e087cdcbcbe18110fde8170680",
    });

    // 8x8 mesh driven past saturation.
    v.push(Scenario {
        name: "mesh8_uniform_saturation",
        sim: mesh_sim(8, SimConfig::default()),
        traffic: TrafficMatrix::uniform(64, 0.30),
        warmup: 300,
        measure: 1500,
        drain: 8_000,
        expected: "aedb43ac7fe30ab5748c492a83da6aee",
    });

    // Transpose on a mesh with a different seed: adversarial for XY.
    v.push(Scenario {
        name: "mesh8_transpose_seed7",
        sim: mesh_sim(
            8,
            SimConfig {
                seed: 7,
                ..SimConfig::default()
            },
        ),
        traffic: TrafficMatrix::transpose(8, 0.05),
        warmup: 400,
        measure: 2000,
        drain: 30_000,
        expected: "d7be7898537a30b38c834743b0c64d40",
    });

    // VFI-clocked mesh: half-speed quadrant, domain crossings paying a
    // 2-cycle sync penalty — exercises the fractional clock accumulators.
    let speeds: Vec<f64> = (0..16)
        .map(|i| if i % 4 >= 2 { 0.5 } else { 1.0 })
        .collect();
    let domains: Vec<usize> = (0..16).map(|i| usize::from(i % 4 >= 2)).collect();
    v.push(Scenario {
        name: "mesh4_vfi_clocks",
        sim: NetworkSim::with_clocks(
            mesh(4, 4, 2.5),
            WirelessOverlay::none(),
            RoutingTable::xy(4, 4),
            EnergyModel::default_65nm(),
            SimConfig {
                sync_penalty: 2,
                seed: 3,
                ..SimConfig::default()
            },
            speeds,
            domains,
        )
        .unwrap(),
        traffic: TrafficMatrix::uniform(16, 0.05),
        warmup: 200,
        measure: 2000,
        drain: 20_000,
        expected: "01632ba1e4da6fc52ffccfe6738d88da",
    });

    // Irregular small world under up*/down* (wired only).
    let sw = small_world_64();
    let sw_table = RoutingTable::up_down(&sw, &WirelessOverlay::none()).unwrap();
    v.push(Scenario {
        name: "small_world_up_down",
        sim: NetworkSim::new(
            sw.clone(),
            WirelessOverlay::none(),
            sw_table.clone(),
            EnergyModel::default_65nm(),
            SimConfig::default(),
        )
        .unwrap(),
        traffic: TrafficMatrix::uniform(64, 0.02),
        warmup: 300,
        measure: 2000,
        drain: 30_000,
        expected: "c86adceba047ebd8a68cbd6419f533d3",
    });

    // The paper's WiNoC: small world + 3-channel mm-wave overlay.
    let overlay = winoc_overlay();
    let wi_table = RoutingTable::up_down_weighted(&sw, &overlay, 1).unwrap();
    v.push(Scenario {
        name: "winoc_uniform",
        sim: NetworkSim::new(
            sw.clone(),
            overlay.clone(),
            wi_table.clone(),
            EnergyModel::default_65nm(),
            SimConfig::default(),
        )
        .unwrap(),
        traffic: TrafficMatrix::uniform(64, 0.02),
        warmup: 300,
        measure: 2000,
        drain: 30_000,
        expected: "137e9a907b68b820d87824a666b3fe47",
    });

    // WiNoC under hotspot traffic with a different seed.
    v.push(Scenario {
        name: "winoc_hotspot_seed11",
        sim: NetworkSim::new(
            sw.clone(),
            overlay,
            wi_table,
            EnergyModel::default_65nm(),
            SimConfig {
                seed: 11,
                ..SimConfig::default()
            },
        )
        .unwrap(),
        traffic: TrafficMatrix::hotspot(64, 0.01, NodeId(27), 0.05),
        warmup: 300,
        measure: 2000,
        drain: 30_000,
        expected: "53038e0b18758450f07abe1c8f3f3eaf",
    });

    // Two WIs bridging a long line: token MAC + wormholes over wireless.
    let (line, line_overlay) = wireless_line(20);
    let line_table = RoutingTable::up_down(&line, &line_overlay).unwrap();
    let mut line_tm = TrafficMatrix::zeros(20);
    line_tm.set(NodeId(0), NodeId(19), 0.03);
    line_tm.set(NodeId(19), NodeId(0), 0.03);
    v.push(Scenario {
        name: "wireless_line_bidir",
        sim: NetworkSim::new(
            line,
            line_overlay,
            line_table,
            EnergyModel::default_65nm(),
            SimConfig::default(),
        )
        .unwrap(),
        traffic: line_tm,
        warmup: 200,
        measure: 3000,
        drain: 30_000,
        expected: "1254397c902dc57e0dd3df2503a47a01",
    });

    // Adaptive two-VC mesh on transpose — the Duato escape/adaptive split.
    v.push(Scenario {
        name: "mesh8_adaptive_transpose",
        sim: mesh_sim(
            8,
            SimConfig {
                vcs: 2,
                adaptive: true,
                ..SimConfig::default()
            },
        ),
        traffic: TrafficMatrix::transpose(8, 0.05),
        warmup: 400,
        measure: 2000,
        drain: 30_000,
        expected: "f4fab0bfb1f839ab99a918b68690326c",
    });

    // Adaptive small world near its escape-only saturation point.
    v.push(Scenario {
        name: "small_world_adaptive",
        sim: NetworkSim::new(
            sw,
            WirelessOverlay::none(),
            sw_table,
            EnergyModel::default_65nm(),
            SimConfig {
                vcs: 2,
                adaptive: true,
                seed: 5,
                ..SimConfig::default()
            },
        )
        .unwrap(),
        traffic: TrafficMatrix::uniform(64, 0.03),
        warmup: 300,
        measure: 2000,
        drain: 30_000,
        expected: "6047f7abcfdb71acb57dc2f4f8f5221f",
    });

    // A drain-limited run: the window ends with packets still in flight,
    // pinning the clamped-drain bookkeeping exactly.
    v.push(Scenario {
        name: "mesh8_drain_limited",
        sim: mesh_sim(8, SimConfig::default()),
        traffic: TrafficMatrix::uniform(64, 0.40),
        warmup: 100,
        measure: 1000,
        drain: 50,
        expected: "061ca1d7ceb350f0df46599a70b221ff",
    });

    v
}

#[test]
fn golden_network_stats_digests() {
    let print = std::env::var("MAPWAVE_GOLDEN_PRINT").is_ok();
    let mut failures = Vec::new();
    for mut s in scenarios() {
        let stats = s.sim.run(&s.traffic, s.warmup, s.measure, s.drain);
        let got = stats.digest().to_hex();
        if print {
            println!("{:<28} {}", s.name, got);
        }
        if got != s.expected {
            failures.push(format!(
                "{}: digest {} != golden {}",
                s.name, got, s.expected
            ));
        }
    }
    assert!(
        !print,
        "MAPWAVE_GOLDEN_PRINT set; digests printed above, unset to assert"
    );
    assert!(
        failures.is_empty(),
        "golden mismatches:\n{}",
        failures.join("\n")
    );
}

#[test]
fn parallel_sweep_preserves_every_golden_digest() {
    // The sharded worker sweep is pinned by the same table as the serial
    // walk: at 4 threads every scenario — meshes, small worlds, the WiNoC,
    // VFI clocks, adaptive VCs, the drain-limited window — must reproduce
    // its digest bit for bit.
    for mut s in scenarios() {
        s.sim.set_threads(4);
        let stats = s.sim.run(&s.traffic, s.warmup, s.measure, s.drain);
        let got = stats.digest().to_hex();
        assert_eq!(
            got, s.expected,
            "{}: digest drifted with threads = 4",
            s.name
        );
    }
}

#[test]
fn golden_digests_are_rerun_stable() {
    // The digest itself must be a pure function of the run: re-running the
    // same scenario on the same simulator instance reproduces it.
    let mut sim = mesh_sim(8, SimConfig::default());
    let tm = TrafficMatrix::uniform(64, 0.05);
    let a = sim.run(&tm, 200, 1000, 20_000).digest();
    let b = sim.run(&tm, 200, 1000, 20_000).digest();
    assert_eq!(a, b);
}

#[test]
fn none_fault_plan_preserves_every_golden_digest() {
    // The tentpole's zero-cost guarantee at the NoC layer: attaching the
    // disabled fault plan must leave every pinned digest bit-identical —
    // the hooks are provably inert when no fault can fire.
    let plan = mapwave_faults::FaultPlan::none();
    for mut s in scenarios() {
        s.sim.set_faults(&plan);
        let stats = s.sim.run(&s.traffic, s.warmup, s.measure, s.drain);
        let got = stats.digest().to_hex();
        assert_eq!(
            got, s.expected,
            "{}: digest drifted under FaultPlan::none()",
            s.name
        );
        assert_eq!(s.sim.fault_counts(), mapwave_noc::NocFaultCounts::default());
    }
}

#[test]
fn link_faults_fire_deterministically_and_deliver() {
    // A lossy wireless line: corruptions fire, the schedule is identical
    // across runs of the same plan, and traffic still drains (retransmission
    // and the wireline fallback keep the network functional).
    let plan = mapwave_faults::FaultPlan::build(&mapwave_faults::FaultConfig::at_rate(0.3, 7));
    let (line, line_overlay) = wireless_line(20);
    let line_table = RoutingTable::up_down(&line, &line_overlay).unwrap();
    let mut tm = TrafficMatrix::zeros(20);
    tm.set(NodeId(0), NodeId(19), 0.03);
    tm.set(NodeId(19), NodeId(0), 0.03);
    let mut sim = NetworkSim::new(
        line,
        line_overlay,
        line_table,
        EnergyModel::default_65nm(),
        SimConfig::default(),
    )
    .unwrap();
    sim.set_faults(&plan);
    let (digest_a, delivered) = {
        let stats = sim.run(&tm, 200, 3000, 60_000);
        (stats.digest(), stats.packets_delivered)
    };
    let counts_a = sim.fault_counts();
    assert!(counts_a.flit_corruptions > 0, "30% link errors must fire");
    assert!(delivered > 0, "faulty network must still deliver");
    let stats_b = sim.run(&tm, 200, 3000, 60_000);
    assert_eq!(digest_a, stats_b.digest(), "fault schedule must replay");
    assert_eq!(counts_a, sim.fault_counts());

    // A fault-free run of the same instance differs: faults are observable.
    sim.set_faults(&mapwave_faults::FaultPlan::none());
    let clean = sim.run(&tm, 200, 3000, 60_000).digest();
    assert_ne!(digest_a, clean, "30% corruption must perturb the digest");
}

#[test]
fn heavy_link_faults_trigger_wireline_fallback_on_winoc() {
    // At a near-certain corruption rate every WI crosses the consecutive
    // threshold quickly; packets divert to the wireline escape tree and the
    // WiNoC keeps delivering.
    let plan = mapwave_faults::FaultPlan::build(&mapwave_faults::FaultConfig::at_rate(0.95, 3));
    let sw = small_world_64();
    let overlay = winoc_overlay();
    let table = RoutingTable::up_down_weighted(&sw, &overlay, 1).unwrap();
    let mut sim = NetworkSim::new(
        sw,
        overlay,
        table,
        EnergyModel::default_65nm(),
        SimConfig::default(),
    )
    .unwrap();
    sim.set_faults(&plan);
    let stats = sim.run(&TrafficMatrix::uniform(64, 0.02), 300, 2000, 60_000);
    let delivered = stats.packets_delivered;
    let counts = sim.fault_counts();
    assert!(counts.wi_fallbacks > 0, "WIs must fall back at 95% loss");
    assert!(
        delivered > 0,
        "WiNoC must survive on the wireline escape tree"
    );
}

//! Token-passing medium-access control for the wireless channels.
//!
//! All wireless interfaces tuned to one channel share that medium. A token
//! circulates among them; only the holder may transmit. The holder keeps the
//! token while a packet is in flight on its wireless port (wormhole packets
//! are never interleaved on a channel) and otherwise passes it on at the end
//! of any cycle in which it did not transmit.

use crate::node::NodeId;
use crate::topology::wireless::{ChannelId, WirelessOverlay};

/// Token state of a single wireless channel.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChannelMac {
    channel: ChannelId,
    members: Vec<NodeId>,
    token: usize,
}

impl ChannelMac {
    /// Creates the MAC for `channel` with its member WIs (sorted by node).
    pub fn new(channel: ChannelId, members: Vec<NodeId>) -> Self {
        ChannelMac {
            channel,
            members,
            token: 0,
        }
    }

    /// The channel this MAC arbitrates.
    pub fn channel(&self) -> ChannelId {
        self.channel
    }

    /// The WI currently holding the token, if the channel has members.
    pub fn holder(&self) -> Option<NodeId> {
        self.members.get(self.token).copied()
    }

    /// Number of member WIs.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// Whether the channel has no members.
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// Ends a cycle: if the holder `transmitted` or still `holds_packet`
    /// (mid-wormhole), the token stays; otherwise it rotates to the next WI.
    pub fn end_cycle(&mut self, transmitted: bool, holds_packet: bool) {
        if self.members.len() > 1 && !transmitted && !holds_packet {
            self.token = (self.token + 1) % self.members.len();
        }
    }

    /// The WI that would hold the token after `k` idle rotations from the
    /// current position.
    pub fn holder_after(&self, k: usize) -> Option<NodeId> {
        if self.members.is_empty() {
            None
        } else {
            self.members
                .get((self.token + k) % self.members.len())
                .copied()
        }
    }

    /// Advances the token over `cycles` consecutive idle cycles at once —
    /// equivalent to that many `end_cycle(false, false)` calls. Used by the
    /// simulator's fast-forward path when no flit can move for a stretch of
    /// cycles.
    pub fn advance_idle(&mut self, cycles: u64) {
        if self.members.len() > 1 {
            let step = (cycles % self.members.len() as u64) as usize;
            self.token = (self.token + step) % self.members.len();
        }
    }
}

/// Builds one [`ChannelMac`] per channel of `overlay`.
pub fn macs_for(overlay: &WirelessOverlay) -> Vec<ChannelMac> {
    (0..overlay.channel_count())
        .map(|c| ChannelMac::new(ChannelId(c), overlay.channel_members(ChannelId(c))))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::wireless::WirelessInterface;

    fn mac3() -> ChannelMac {
        ChannelMac::new(ChannelId(0), vec![NodeId(1), NodeId(5), NodeId(9)])
    }

    #[test]
    fn token_rotates_when_idle() {
        let mut m = mac3();
        assert_eq!(m.holder(), Some(NodeId(1)));
        m.end_cycle(false, false);
        assert_eq!(m.holder(), Some(NodeId(5)));
        m.end_cycle(false, false);
        m.end_cycle(false, false);
        assert_eq!(m.holder(), Some(NodeId(1)));
    }

    #[test]
    fn token_sticks_while_transmitting() {
        let mut m = mac3();
        m.end_cycle(true, true);
        assert_eq!(m.holder(), Some(NodeId(1)));
        m.end_cycle(false, true); // blocked mid-packet: still holds
        assert_eq!(m.holder(), Some(NodeId(1)));
        m.end_cycle(false, false);
        assert_eq!(m.holder(), Some(NodeId(5)));
    }

    #[test]
    fn advance_idle_matches_repeated_end_cycle() {
        for k in [0u64, 1, 2, 3, 7, 100, 1_000_003] {
            let mut fast = mac3();
            let mut slow = mac3();
            fast.advance_idle(k);
            for _ in 0..k.min(10_000) {
                slow.end_cycle(false, false);
            }
            if k <= 10_000 {
                assert_eq!(fast.holder(), slow.holder(), "k = {k}");
            } else {
                // Large jumps reduce modulo the member count.
                let mut expect = mac3();
                expect.advance_idle(k % 3);
                assert_eq!(fast.holder(), expect.holder(), "k = {k}");
            }
        }
    }

    #[test]
    fn empty_channel_has_no_holder() {
        let mut m = ChannelMac::new(ChannelId(0), vec![]);
        assert_eq!(m.holder(), None);
        m.end_cycle(false, false);
        assert!(m.is_empty());
    }

    #[test]
    fn single_member_keeps_token() {
        let mut m = ChannelMac::new(ChannelId(0), vec![NodeId(3)]);
        m.end_cycle(false, false);
        assert_eq!(m.holder(), Some(NodeId(3)));
    }

    #[test]
    fn macs_for_overlay() {
        let overlay = WirelessOverlay::new(
            vec![
                WirelessInterface {
                    node: NodeId(0),
                    channel: ChannelId(0),
                },
                WirelessInterface {
                    node: NodeId(4),
                    channel: ChannelId(1),
                },
                WirelessInterface {
                    node: NodeId(2),
                    channel: ChannelId(0),
                },
            ],
            2,
        )
        .unwrap();
        let macs = macs_for(&overlay);
        assert_eq!(macs.len(), 2);
        assert_eq!(macs[0].len(), 2);
        assert_eq!(macs[0].holder(), Some(NodeId(0)));
        assert_eq!(macs[1].holder(), Some(NodeId(4)));
    }
}

//! Cycle-accurate network simulation.
//!
//! [`NetworkSim`] advances a wormhole-switched network cycle by cycle:
//! flits are injected by a Bernoulli process driven by a
//! [`crate::traffic::TrafficMatrix`] sampling, traverse input-buffered
//! switches under round-robin arbitration with credit-based flow control,
//! optionally hop across token-arbitrated wireless channels, and are ejected
//! at their destinations, accumulating latency and energy statistics.
//!
//! ## Active-set scheduling
//!
//! A switch with no buffered flits does nothing observable when clocked:
//! its round-robin pointer, wormhole bindings and output ownership are
//! untouched, and no flit can move. The inner loop therefore keeps an
//! **active set** — the ascending list of switches currently holding at
//! least one flit — and only walks those. Switches enroll when a flit
//! arrives (from a source queue or an upstream switch) and drop out lazily
//! once they drain, so per-cycle cost is proportional to the number of
//! in-flight flits rather than the topology size. Fractional clock
//! accumulators of dormant switches are replayed on wake (see
//! `NetworkSim::clock_fires`), preserving bit-identical firing sequences.
//!
//! During the drain phase (no injection), whenever every buffered flit is
//! still in its router pipeline (`ready_at` in the future) and no source
//! queue can inject, the simulator **fast-forwards** the clock to the next
//! ready time instead of idling cycle by cycle; token-MAC rotation over the
//! jumped cycles is applied in closed form. Fast-forwarded cycles are
//! observably identical to stepped idle cycles and count against the drain
//! budget.
//!
//! ## Clocking and VFI
//!
//! Each switch belongs to a clock domain and runs at a relative speed in
//! `(0, 1]` of the fastest domain; a switch only operates on cycles its
//! fractional clock accumulator fires. Flits crossing clock-domain
//! boundaries pay a mixed-clock FIFO synchronisation penalty. This models
//! the VFI-partitioned NoC of the paper, where each island's switches are
//! clocked at the island's frequency.

use crate::energy::EnergyModel;
use crate::flit::{flit_sequence, Flit, PacketId};
use crate::mac::{macs_for, ChannelMac};
use crate::node::NodeId;
use crate::par::StatOp;
use crate::routing::{Hop, Phase, RoutingTable};
use crate::stats::NetworkStats;
use crate::switch::{FabricState, OutRoute, Owner, PortMap, PORT_LOCAL};
use crate::topology::wireless::WirelessOverlay;
use crate::topology::Topology;
use crate::traffic::{InjectEvent, Injector, TrafficMatrix};
use mapwave_faults::FaultPlan;
use mapwave_harness::rng::SeedableRng;
use mapwave_harness::rng::StdRng;
use mapwave_harness::telemetry;
use std::borrow::Cow;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Due-worklist size below which a parallel sweep falls back to inline
/// serial processing (a wave dispatch costs more than the work).
const PAR_MIN_DUE: usize = 4;

/// A routing-table entry (out-port, wireless target, next up\*/down\*
/// phase) packed into 4 bytes. Table routes always use down-VC 0, so the
/// VC is not stored. The packing keeps the `2·n²`-entry escape and
/// wireline-fallback tables cache-resident (4 B/entry instead of the ~40 B
/// of `Option<(OutRoute, Phase)>`), which matters because every head-flit
/// routing decision is one random-index load from these tables.
///
/// Layout: bit 31 = present, bit 30 = next phase is `Down`, bits 16–29 =
/// out port, bits 0–15 = wireless target node (`0xFFFF` = wired hop).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct PackedRoute(u32);

impl PackedRoute {
    /// An unreachable routing state (no route).
    const NONE: PackedRoute = PackedRoute(0);

    fn pack(route: OutRoute, next_phase: Phase) -> Self {
        debug_assert_eq!(route.down_vc, 0, "table routes use the escape VC");
        debug_assert!(route.out_port < (1 << 14));
        let wt = route.wireless_to.map_or(0xFFFF, |w| {
            debug_assert!(w.index() < 0xFFFF);
            w.index() as u32
        });
        PackedRoute(
            (1 << 31)
                | (u32::from(matches!(next_phase, Phase::Down)) << 30)
                | ((route.out_port as u32) << 16)
                | wt,
        )
    }

    #[inline]
    fn unpack(self) -> Option<(OutRoute, Phase)> {
        if self.0 & (1 << 31) == 0 {
            return None;
        }
        let wt = self.0 & 0xFFFF;
        let phase = if self.0 & (1 << 30) != 0 {
            Phase::Down
        } else {
            Phase::Up
        };
        Some((
            OutRoute {
                out_port: ((self.0 >> 16) & 0x3FFF) as usize,
                wireless_to: (wt != 0xFFFF).then_some(NodeId(wt as usize)),
                down_vc: 0,
            },
            phase,
        ))
    }
}

/// Where a switch-processing pass sends its order-sensitive effects:
/// straight into the simulator (serial sweep), or into a per-switch buffer
/// replayed in ascending switch order after a parallel wave (see
/// [`crate::par`]).
pub(crate) enum Sink<'e> {
    Direct,
    Buffer(&'e mut crate::par::EffectBuf),
}

/// Drains chunks of one parallel wave: claims `(switch, due index)` pairs
/// from the shared cursor and processes each switch with its effects
/// buffered. Called by every wave participant (workers and coordinator).
///
/// # Safety contract (upheld by `NetworkSim::sweep_parallel`)
///
/// The erased pointers in `job` stay valid for the wave: `sim` is the
/// coordinating simulator, `pairs`/`effects` point into the wave scratch
/// (moved out of the simulator for the call), `holders`/`used` at the
/// cycle's MAC snapshot. Participants reconstitute `&mut` references
/// concurrently; disjointness is structural — same-wave switches are at
/// interaction distance ≥ 3, so every direct mutation lands on
/// switch-disjoint state, each due index owns its effect buffer, and
/// `used` is only written by a channel's current token holder.
pub(crate) fn par_drain_chunks(job: &crate::par::Job, cursor: &AtomicUsize, out_used: &mut [bool]) {
    let sim = unsafe { &mut *(job.sim as *mut NetworkSim<'_>) };
    let pairs =
        unsafe { std::slice::from_raw_parts(job.pairs as *const (u32, u32), job.pairs_len) };
    let holders = unsafe {
        std::slice::from_raw_parts(job.holders as *const Option<NodeId>, job.holders_len)
    };
    loop {
        let start = cursor.fetch_add(job.chunk, Ordering::Relaxed);
        if start >= pairs.len() {
            return;
        }
        let end = (start + job.chunk).min(pairs.len());
        for &(v, due_idx) in &pairs[start..end] {
            let used =
                unsafe { std::slice::from_raw_parts_mut(job.used as *mut bool, job.used_len) };
            let buf =
                unsafe { &mut *(job.effects as *mut crate::par::EffectBuf).add(due_idx as usize) };
            sim.process_switch(
                NodeId(v as usize),
                holders,
                used,
                out_used,
                &mut Sink::Buffer(buf),
            );
        }
    }
}

/// Tunable microarchitecture parameters of the simulated network.
#[derive(Debug, Clone, PartialEq)]
pub struct SimConfig {
    /// Input FIFO depth of ordinary ports, in flits (paper: 2).
    pub buffer_depth: usize,
    /// Input FIFO depth of wireless-interface ports, in flits (paper: 8).
    pub wi_buffer_depth: usize,
    /// Flits per packet.
    pub packet_len: usize,
    /// Extra cycles a flit pays when crossing clock-domain boundaries
    /// (mixed-clock FIFO synchronisation).
    pub sync_penalty: u64,
    /// Router pipeline depth: extra cycles a flit spends in each switch
    /// (buffer write, route compute, VC/switch allocation) beyond the
    /// single traversal cycle.
    pub router_delay: u64,
    /// Virtual channels per port. With 1 VC the router is the paper's
    /// plain wormhole switch; with ≥ 2, VC 0 is a deadlock-free *escape*
    /// channel following the routing table and the upper VCs are available
    /// for adaptive traffic (see [`SimConfig::adaptive`]).
    pub vcs: usize,
    /// Duato-style minimal adaptive routing (an extension beyond the
    /// paper's router): head flits on the upper VCs may take any wired
    /// neighbour that strictly reduces the hop distance, falling back to
    /// the escape VC (table-routed, deadlock-free) whenever the adaptive
    /// channels are blocked. Escape packets never return to the adaptive
    /// VCs — the conservative sufficient condition for deadlock freedom.
    /// Requires `vcs >= 2`.
    pub adaptive: bool,
    /// RNG seed for the injection process.
    pub seed: u64,
    /// Worker threads for the per-cycle switch sweep. `1` (the default)
    /// keeps the exact serial code path; `> 1` processes the due-switch
    /// worklist in interaction-free wavefronts on a worker pool, with all
    /// order-sensitive effects (stat/energy accumulation, worklist
    /// enrollment) buffered per switch and replayed in ascending switch
    /// order — every observable is bit-identical to `threads = 1` (see
    /// `crates/noc/src/par.rs`). Parallel sweeps are skipped automatically
    /// while a wireless fault plan is attached (the fault hazard counters
    /// are serial state).
    pub threads: usize,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            buffer_depth: 2,
            wi_buffer_depth: 8,
            packet_len: 4,
            sync_penalty: 1,
            router_delay: 2,
            vcs: 1,
            adaptive: false,
            seed: 0,
            threads: 1,
        }
    }
}

/// Errors from [`NetworkSim::new`].
#[derive(Debug, Clone, PartialEq)]
pub enum SimError {
    /// Routing table size doesn't match the topology.
    TableSizeMismatch {
        /// Nodes in the topology.
        topology: usize,
        /// Nodes covered by the table.
        table: usize,
    },
    /// Per-switch speed vector has the wrong length or invalid values.
    InvalidSpeeds,
    /// Clock-domain vector has the wrong length.
    InvalidDomains,
    /// Buffer depths, packet length or VC count of zero, or adaptive
    /// routing without at least two VCs.
    InvalidConfig,
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::TableSizeMismatch { topology, table } => write!(
                f,
                "routing table covers {table} nodes but topology has {topology}"
            ),
            SimError::InvalidSpeeds => {
                write!(f, "switch speeds must have one entry in (0,1] per node")
            }
            SimError::InvalidDomains => {
                write!(f, "clock domains must have one entry per node")
            }
            SimError::InvalidConfig => {
                write!(f, "buffer depths and packet length must be nonzero")
            }
        }
    }
}

impl std::error::Error for SimError {}

/// Whether the channel's token holder is mid-wormhole on its wireless port
/// (a holder keeps the token while a packet is in flight).
fn mac_holds_packet(ports: &PortMap, fabric: &FabricState, holder: Option<NodeId>) -> bool {
    holder.is_some_and(|h| {
        ports.wireless_port(h).is_some_and(|wp| {
            let base = fabric.slot(h, wp, 0);
            (base..base + fabric.vcs()).any(|s| fabric.out_owner_set(s))
        })
    })
}

/// Counters of the wireless-link faults that fired during the last run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NocFaultCounts {
    /// Corrupted wireless transfer attempts (each burned a token slot and
    /// retransmitted later).
    pub flit_corruptions: u64,
    /// Wireless interfaces disabled after crossing the consecutive-error
    /// threshold (their packets divert to the wireline escape tree).
    pub wi_fallbacks: u64,
}

/// Runtime fault-injection state for the wireless layer. Present only when
/// a [`FaultPlan`] with a nonzero link-error rate is attached to a network
/// that actually has wireless equipment — fault-free simulations carry no
/// fault state at all and take the exact pre-fault code paths.
#[derive(Debug, Clone)]
struct NocFaults {
    plan: FaultPlan,
    /// Wireline-only escape table (same flat layout as `NetworkSim::escape`)
    /// that diverted packets follow after their WI is disabled.
    fallback: Vec<PackedRoute>,
    /// Transfer attempts per wireless channel — the deterministic hazard
    /// counter fed to [`FaultPlan::link_corrupts`].
    attempts: Vec<u64>,
    /// Consecutive corrupted attempts per source switch.
    consec: Vec<u32>,
    /// Switches whose WI crossed the fallback threshold and was disabled.
    disabled: Vec<bool>,
    counts: NocFaultCounts,
}

/// A cycle-accurate simulator instance for one network configuration.
///
/// The network description (topology, overlay, routing table) is held as
/// [`Cow`]: the owned constructors ([`NetworkSim::new`],
/// [`NetworkSim::with_clocks`]) yield a `NetworkSim<'static>`, while
/// [`NetworkSim::with_clocks_borrowed`] borrows an existing description —
/// callers that already hold a spec (e.g. a full-system run) build a
/// simulator without cloning multi-kilobyte component state.
///
/// # Examples
///
/// ```
/// use mapwave_noc::sim::{NetworkSim, SimConfig};
/// use mapwave_noc::routing::RoutingTable;
/// use mapwave_noc::topology::mesh::mesh;
/// use mapwave_noc::topology::wireless::WirelessOverlay;
/// use mapwave_noc::traffic::TrafficMatrix;
/// use mapwave_noc::energy::EnergyModel;
///
/// let topo = mesh(4, 4, 2.5);
/// let table = RoutingTable::xy(4, 4);
/// let mut sim = NetworkSim::new(
///     topo,
///     WirelessOverlay::none(),
///     table,
///     EnergyModel::default_65nm(),
///     SimConfig::default(),
/// )?;
/// let traffic = TrafficMatrix::uniform(16, 0.02);
/// let stats = sim.run(&traffic, 500, 2000, 5000);
/// assert!(stats.packets_delivered > 0);
/// assert!(stats.avg_latency() > 0.0);
/// # Ok::<(), mapwave_noc::sim::SimError>(())
/// ```
#[derive(Debug, Clone)]
pub struct NetworkSim<'a> {
    topo: Cow<'a, Topology>,
    overlay: Cow<'a, WirelessOverlay>,
    table: Cow<'a, RoutingTable>,
    ports: PortMap,
    energy_model: EnergyModel,
    cfg: SimConfig,
    domains: Vec<usize>,

    fabric: FabricState,
    macs: Vec<ChannelMac>,
    src_q: Vec<VecDeque<Flit>>,
    now: u64,
    next_packet: u64,
    measure_start: u64,
    measure_end: u64,
    injected_measured: u64,
    delivered_measured: u64,
    stats: NetworkStats,
    /// Measured flits per wired output port, CSR-aligned with `ports`
    /// (a directed wire link is one output port; the flat index keeps the
    /// hot-path counter array at `total_ports` entries instead of `n²`).
    link_flits: Vec<u64>,
    /// All-pairs wireline hop distances, flattened `v * n + dest`
    /// (adaptive routing only).
    hop_dist: Vec<u32>,
    /// Escape route and next phase per routing state, flattened
    /// `(v * 2 + phase) * n + dest`; [`PackedRoute::NONE`] for unreachable
    /// states.
    escape: Vec<PackedRoute>,
    /// Per-port flit traversal energy, CSR-aligned with `ports` (wired
    /// ports only; zero elsewhere).
    wire_energy: Vec<f64>,
    /// Per-port clock-domain sync penalty, CSR-aligned with `ports`.
    port_penalty: Vec<u64>,
    /// Per-switch crossbar energy per flit.
    switch_pj: Vec<f64>,
    /// Per-switch wireless channel index; `u32::MAX` for non-WI switches.
    wi_channel: Vec<u32>,
    /// VC new packets are injected on (the top VC when adaptive).
    inject_vc: usize,

    /// Flits currently buffered in each switch.
    buffered: Vec<u32>,
    /// Whether each switch is enrolled (in `active_list` or `pending`).
    active: Vec<bool>,
    /// Enrolled switches in ascending order; the per-cycle worklist.
    active_list: Vec<u32>,
    /// Switches that gained their first flit since the last sweep.
    pending: Vec<u32>,
    /// Scratch for merging `pending` into `active_list`.
    list_scratch: Vec<u32>,
    /// Sources with a nonempty source queue.
    src_list: Vec<u32>,
    /// Membership flags for `src_list`.
    src_listed: Vec<bool>,
    /// Sources whose local inject slot was full at the last attempt; the
    /// per-cycle space probe is skipped until that slot pops (the pop
    /// site in `try_advance` clears the flag), which is the only event
    /// that can free it.
    src_blocked: Vec<bool>,
    /// Per-switch index into the shared clock classes. Switches with the
    /// same speed bits walk the identical accumulator sequence from the
    /// same start, so the fractional clock is tracked once per class and
    /// `clock_fires` is a cached lookup after the first call of a cycle.
    clock_class: Vec<u32>,
    /// Distinct switch speed per clock class.
    class_speed: Vec<f64>,
    /// Fractional clock accumulator per class, caught up to `class_next`.
    class_acc: Vec<f64>,
    /// First cycle whose clock tick has not been applied per class;
    /// classes whose switches are all dormant replay the gap on first use.
    class_next: Vec<u64>,
    /// Whether the class clock fired at cycle `class_next - 1`.
    class_fires: Vec<bool>,
    /// Whether every switch runs at full speed (one clock class at 1.0 —
    /// class speeds are fixed at construction). The sweeps then skip the
    /// per-switch clock-class indirection: the clock trivially fires every
    /// cycle, and only the lazy cursor write is kept (snapshots read it),
    /// so firing patterns and state stay bit-identical.
    uniform_full_speed: bool,
    /// Earliest cycle at which processing switch `v` could do anything
    /// observable (`u64::MAX` when dormant). Between a switch's last
    /// processed cycle and `wake[v]`, clocking it is a proven no-op: every
    /// FIFO front is still inside a router pipeline, so `process_switch`
    /// would mutate nothing and the lazy clock replay covers the skipped
    /// `clock_fires` calls. A switch that saw a ready front this cycle
    /// (moved *or* blocked) wakes again next cycle; pushes into `v` lower
    /// `wake[v]` to the new flit's pipeline exit.
    wake: Vec<u64>,
    /// Minimum `wake` over the enrolled switches — the next cycle on which
    /// any switch has work. May be stale-low (a wasted sweep recomputes
    /// it), never stale-high.
    next_due: u64,

    /// Reusable per-cycle MAC holder snapshot.
    mac_holders: Vec<Option<NodeId>>,
    /// Reusable per-cycle channel-used flags.
    mac_used: Vec<bool>,
    /// Reusable per-switch output-port-used scratch (max port count).
    out_used: Vec<bool>,

    /// Whether blocked switches may park (serial fault-free runs only).
    /// A parked switch skips its proven-no-op retry cycles; the pop sites
    /// in `try_advance` rearm it mid-sweep, which the fixed wavefront
    /// schedule of a parallel run cannot reproduce — parallel runs keep
    /// the per-cycle retry semantics instead (same outcomes either way).
    park: bool,
    /// Switches currently parked *with a ready front* (blocked): the only
    /// ones a full-slot pop needs to rearm. Switches whose fronts are all
    /// in flight keep their pipeline-exit wake and must not be woken by
    /// neighbour pops.
    parked: Vec<bool>,
    /// Wireless fault-injection state; `None` unless a plan that can
    /// corrupt links is attached (see [`NetworkSim::set_faults`]).
    faults: Option<NocFaults>,

    /// Cycles advanced by stepping in the last run (telemetry).
    stepped_cycles: u64,
    /// Cycles advanced by fast-forward in the last run (telemetry).
    ff_cycles: u64,
    /// Stepped cycles whose switch work was replayed in closed form —
    /// steady-state cycles where only injection sampling and token-MAC
    /// rotation happened — plus drain cycles skipped after a periodic
    /// fixpoint was proven (telemetry).
    steady_cycles: u64,
    /// Shard tasks dispatched to the parallel sweep pool in the last run
    /// (telemetry).
    par_shards: u64,
    /// Flit moves (switch and source) performed by the last step.
    moves_last_step: u64,
    /// Interaction-distance-2 adjacency for the parallel wavefront
    /// schedule; built on first use (see `crate::par`).
    par_plan: Option<crate::par::WavePlan>,
    /// Reusable scratch of the parallel sweep (due list, wave numbers,
    /// per-switch effect buffers).
    par_scratch: crate::par::Scratch,
    /// Reusable buffer for the precomputed injection schedule of one run
    /// (see [`Injector::schedule_into`]).
    sched: Vec<InjectEvent>,

    /// Caller-provided drain-period hint for the next runs (typically the
    /// period the *previous* run of a similar window detected); see
    /// [`NetworkSim::set_steady_period_hint`]. Ignored while a fault plan
    /// is attached — an active fault stream advances hazard counters, so
    /// a hinted early confirmation must not even be attempted.
    steady_hint: Option<u64>,
    /// Livelock period proven by the last run's drain detector (in
    /// cycles), `None` when the drain completed or never stalled.
    detected_period: Option<u64>,
    /// Drain stalls of the last run confirmed via the hint ring.
    hint_hits: u64,
    /// Drain stalls of the last run whose hint did not hold.
    hint_rejected: u64,
}

impl<'a> NetworkSim<'a> {
    /// Creates a simulator over `topo` with uniform full-speed clocks.
    ///
    /// # Errors
    ///
    /// See [`SimError`].
    pub fn new(
        topo: Topology,
        overlay: WirelessOverlay,
        table: RoutingTable,
        energy_model: EnergyModel,
        cfg: SimConfig,
    ) -> Result<Self, SimError> {
        let n = topo.len();
        Self::with_clocks(
            topo,
            overlay,
            table,
            energy_model,
            cfg,
            vec![1.0; n],
            vec![0; n],
        )
    }

    /// Creates a simulator with per-switch clock speeds (relative to the
    /// fastest domain, in `(0, 1]`) and clock-domain labels (flits crossing
    /// domains pay [`SimConfig::sync_penalty`]).
    ///
    /// # Errors
    ///
    /// See [`SimError`].
    pub fn with_clocks(
        topo: Topology,
        overlay: WirelessOverlay,
        table: RoutingTable,
        energy_model: EnergyModel,
        cfg: SimConfig,
        speeds: Vec<f64>,
        domains: Vec<usize>,
    ) -> Result<Self, SimError> {
        Self::build(
            Cow::Owned(topo),
            Cow::Owned(overlay),
            Cow::Owned(table),
            energy_model,
            cfg,
            speeds,
            domains,
        )
    }

    /// [`NetworkSim::with_clocks`] over borrowed network components: no
    /// topology/overlay/table clone, so one simulator can be assembled per
    /// evaluation without copying the network description.
    ///
    /// # Errors
    ///
    /// See [`SimError`].
    pub fn with_clocks_borrowed(
        topo: &'a Topology,
        overlay: &'a WirelessOverlay,
        table: &'a RoutingTable,
        energy_model: EnergyModel,
        cfg: SimConfig,
        speeds: Vec<f64>,
        domains: Vec<usize>,
    ) -> Result<Self, SimError> {
        Self::build(
            Cow::Borrowed(topo),
            Cow::Borrowed(overlay),
            Cow::Borrowed(table),
            energy_model,
            cfg,
            speeds,
            domains,
        )
    }

    fn build(
        topo: Cow<'a, Topology>,
        overlay: Cow<'a, WirelessOverlay>,
        table: Cow<'a, RoutingTable>,
        energy_model: EnergyModel,
        cfg: SimConfig,
        speeds: Vec<f64>,
        domains: Vec<usize>,
    ) -> Result<Self, SimError> {
        let n = topo.len();
        if table.len() != n {
            return Err(SimError::TableSizeMismatch {
                topology: n,
                table: table.len(),
            });
        }
        if speeds.len() != n || speeds.iter().any(|&s| !(s > 0.0 && s <= 1.0)) {
            return Err(SimError::InvalidSpeeds);
        }
        if domains.len() != n {
            return Err(SimError::InvalidDomains);
        }
        if cfg.buffer_depth == 0
            || cfg.wi_buffer_depth == 0
            || cfg.packet_len == 0
            || cfg.vcs == 0
            || cfg.threads == 0
            || (cfg.adaptive && cfg.vcs < 2)
        {
            return Err(SimError::InvalidConfig);
        }
        let ports = PortMap::new(&topo, &overlay);
        let mut caps = vec![cfg.buffer_depth; ports.total_ports()];
        for v in topo.nodes() {
            if let Some(wp) = ports.wireless_port(v) {
                caps[ports.flat_index(v, wp)] = cfg.wi_buffer_depth;
            }
        }
        let fabric = FabricState::new(&ports, &caps, cfg.vcs);
        let macs = macs_for(&overlay);
        let hop_dist: Vec<u32> = if cfg.adaptive {
            topo.hop_counts()
                .into_iter()
                .flatten()
                .map(|h| u32::try_from(h).unwrap_or(u32::MAX))
                .collect()
        } else {
            Vec::new()
        };

        // Precompute the full escape-route table: every reachable
        // (switch, phase, destination) state maps straight to its out-port
        // route, replacing per-flit table lookups and neighbour scans.
        let mut escape = vec![PackedRoute::NONE; 2 * n * n];
        for v in topo.nodes() {
            for (pi, phase) in [(0usize, Phase::Up), (1, Phase::Down)] {
                for d in 0..n {
                    let Some(entry) = table.try_entry(v, phase, NodeId(d)) else {
                        continue;
                    };
                    let route = match entry.hop {
                        Hop::Local => OutRoute {
                            out_port: PORT_LOCAL,
                            wireless_to: None,
                            down_vc: 0,
                        },
                        Hop::Wire(w) => OutRoute {
                            out_port: ports.wire_port(v, w),
                            wireless_to: None,
                            down_vc: 0,
                        },
                        Hop::Wireless { to, .. } => OutRoute {
                            out_port: ports
                                .wireless_port(v)
                                .expect("route uses wireless at a non-WI switch"),
                            wireless_to: Some(to),
                            down_vc: 0,
                        },
                    };
                    escape[(v.index() * 2 + pi) * n + d] =
                        PackedRoute::pack(route, entry.next_phase);
                }
            }
        }

        // Per-port link energies and domain-crossing penalties, aligned
        // with the port map's flat CSR indices.
        let total_ports = ports.total_ports();
        let mut wire_energy = vec![0.0f64; total_ports];
        let mut port_penalty = vec![0u64; total_ports];
        for v in topo.nodes() {
            for p in 1..ports.port_count(v) {
                if Some(p) == ports.wireless_port(v) {
                    continue;
                }
                let (w, _) = ports.wire_peer(v, p);
                let i = ports.flat_index(v, p);
                wire_energy[i] = energy_model.wire_energy_pj(topo.link_length_mm(v, w));
                port_penalty[i] = if domains[v.index()] != domains[w.index()] {
                    cfg.sync_penalty
                } else {
                    0
                };
            }
        }
        let switch_pj: Vec<f64> = topo
            .nodes()
            .map(|v| energy_model.switch_energy_pj(ports.radix(v)))
            .collect();
        let wi_channel: Vec<u32> = topo
            .nodes()
            .map(|v| overlay.channel_of(v).map_or(u32::MAX, |c| c.index() as u32))
            .collect();
        let max_ports = topo.nodes().map(|v| ports.port_count(v)).max().unwrap_or(0);
        let inject_vc = if cfg.adaptive { cfg.vcs - 1 } else { 0 };

        let mut class_speed: Vec<f64> = Vec::new();
        let clock_class: Vec<u32> = speeds
            .iter()
            .map(|s| {
                let bits = s.to_bits();
                match class_speed.iter().position(|c| c.to_bits() == bits) {
                    Some(i) => i as u32,
                    None => {
                        class_speed.push(*s);
                        (class_speed.len() - 1) as u32
                    }
                }
            })
            .collect();

        Ok(NetworkSim {
            link_flits: vec![0; total_ports],
            hop_dist,
            escape,
            wire_energy,
            port_penalty,
            switch_pj,
            wi_channel,
            inject_vc,
            buffered: vec![0; n],
            active: vec![false; n],
            active_list: Vec::with_capacity(n),
            pending: Vec::with_capacity(n),
            list_scratch: Vec::with_capacity(n),
            src_list: Vec::with_capacity(n),
            src_listed: vec![false; n],
            src_blocked: vec![false; n],
            clock_class,
            class_acc: vec![0.0; class_speed.len()],
            class_next: vec![0; class_speed.len()],
            class_fires: vec![false; class_speed.len()],
            uniform_full_speed: class_speed == [1.0],
            class_speed,
            wake: vec![u64::MAX; n],
            next_due: u64::MAX,
            mac_holders: Vec::with_capacity(macs.len()),
            mac_used: Vec::with_capacity(macs.len()),
            out_used: vec![false; max_ports],
            park: false,
            parked: vec![false; n],
            faults: None,
            stepped_cycles: 0,
            ff_cycles: 0,
            steady_cycles: 0,
            par_shards: 0,
            moves_last_step: 0,
            par_plan: None,
            par_scratch: crate::par::Scratch::default(),
            sched: Vec::new(),
            steady_hint: None,
            detected_period: None,
            hint_hits: 0,
            hint_rejected: 0,
            src_q: vec![VecDeque::new(); n],
            fabric,
            macs,
            topo,
            overlay,
            table,
            ports,
            energy_model,
            cfg,
            domains,
            now: 0,
            next_packet: 0,
            measure_start: 0,
            measure_end: u64::MAX,
            injected_measured: 0,
            delivered_measured: 0,
            stats: NetworkStats::default(),
        })
    }

    /// The topology being simulated.
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// The routing table in use.
    pub fn routing(&self) -> &RoutingTable {
        &self.table
    }

    /// Total cycles simulated since the last reset (warmup + measurement +
    /// drain, fast-forwarded cycles included); the denominator of
    /// simulated-cycles/sec throughput figures.
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Cycles of the last run that were advanced by the drain fast-forward
    /// path rather than stepped individually.
    pub fn fast_forwarded_cycles(&self) -> u64 {
        self.ff_cycles
    }

    /// Sets the worker-thread count of subsequent runs
    /// ([`SimConfig::threads`]; clamped to ≥ 1). A wall-clock knob only —
    /// every thread count produces bit-identical statistics.
    pub fn set_threads(&mut self, threads: usize) {
        self.cfg.threads = threads.max(1);
    }

    /// Seeds the drain-phase livelock detector of subsequent runs with an
    /// expected period (clamped to 1..=64 ring slots), typically the
    /// period [`NetworkSim::detected_steady_period`] reported for a
    /// previous run of a similar traffic window.
    ///
    /// A wall-clock knob only: the hint merely lets the detector confirm
    /// recurrence after `hint + 1` stalled cycles instead of the Brent
    /// search's O(period) re-pin rounds, and it is verified by exact
    /// comparison against the live state snapshots before any closed-form
    /// replay — a wrong hint costs nothing and changes nothing. Ignored
    /// while a fault plan is attached.
    pub fn set_steady_period_hint(&mut self, hint: Option<u64>) {
        self.steady_hint = hint.map(|p| p.clamp(1, crate::steady::MAX_STEADY_HINT));
    }

    /// The livelock period (in cycles) the last run's drain detector
    /// proved before replaying the remaining budget in closed form;
    /// `None` when the drain completed without a proven fixpoint.
    pub fn detected_steady_period(&self) -> Option<u64> {
        self.detected_period
    }

    /// Attaches (or detaches) a fault plan.
    ///
    /// Fault state is only materialised when `plan` can corrupt wireless
    /// links *and* the network has wireless equipment; otherwise the
    /// simulator carries no fault state and behaves exactly as before this
    /// call. Attaching a plan precomputes the wireline-only escape table
    /// diverted packets fall back to. Per-run counters reset on every
    /// [`NetworkSim::run`], so one attached plan replays the identical
    /// fault schedule across runs.
    pub fn set_faults(&mut self, plan: &FaultPlan) {
        if !plan.affects_noc() || self.overlay.is_empty() {
            self.faults = None;
            return;
        }
        let n = self.topo.len();
        let wired = RoutingTable::up_down(&self.topo, &WirelessOverlay::none())
            .expect("wireline topology must be connected");
        let mut fallback = vec![PackedRoute::NONE; 2 * n * n];
        for v in self.topo.nodes() {
            for (pi, phase) in [(0usize, Phase::Up), (1, Phase::Down)] {
                for d in 0..n {
                    let Some(entry) = wired.try_entry(v, phase, NodeId(d)) else {
                        continue;
                    };
                    let route = match entry.hop {
                        Hop::Local => OutRoute {
                            out_port: PORT_LOCAL,
                            wireless_to: None,
                            down_vc: 0,
                        },
                        Hop::Wire(w) => OutRoute {
                            out_port: self.ports.wire_port(v, w),
                            wireless_to: None,
                            down_vc: 0,
                        },
                        Hop::Wireless { .. } => {
                            unreachable!("wireline-only table cannot route wireless")
                        }
                    };
                    fallback[(v.index() * 2 + pi) * n + d] =
                        PackedRoute::pack(route, entry.next_phase);
                }
            }
        }
        self.faults = Some(NocFaults {
            plan: plan.clone(),
            fallback,
            attempts: vec![0; self.macs.len()],
            consec: vec![0; n],
            disabled: vec![false; n],
            counts: NocFaultCounts::default(),
        });
    }

    /// Wireless-fault counters of the last run (zeros when no plan is
    /// attached or nothing fired).
    pub fn fault_counts(&self) -> NocFaultCounts {
        self.faults.as_ref().map(|f| f.counts).unwrap_or_default()
    }

    fn reset(&mut self) {
        self.fabric.reset();
        self.macs = macs_for(&self.overlay);
        for q in &mut self.src_q {
            q.clear();
        }
        self.now = 0;
        self.next_packet = 0;
        self.injected_measured = 0;
        self.delivered_measured = 0;
        self.stats = NetworkStats::default();
        self.link_flits.fill(0);
        self.buffered.fill(0);
        self.active.fill(false);
        self.active_list.clear();
        self.pending.clear();
        self.src_list.clear();
        self.src_listed.fill(false);
        self.src_blocked.fill(false);
        self.parked.fill(false);
        self.class_acc.fill(0.0);
        self.class_next.fill(0);
        self.class_fires.fill(false);
        self.wake.fill(u64::MAX);
        self.next_due = u64::MAX;
        self.stepped_cycles = 0;
        self.ff_cycles = 0;
        self.steady_cycles = 0;
        self.par_shards = 0;
        self.moves_last_step = 0;
        self.detected_period = None;
        self.hint_hits = 0;
        self.hint_rejected = 0;
        if let Some(fl) = &mut self.faults {
            // The plan (and fallback table) survives; the per-run hazard
            // counters restart so every run replays the same schedule.
            fl.attempts.fill(0);
            fl.consec.fill(0);
            fl.disabled.fill(false);
            fl.counts = NocFaultCounts::default();
        }
    }

    /// Runs `warmup` cycles, then `measure` cycles of measured injection,
    /// then drains in-flight measured packets for up to `drain_limit`
    /// cycles, and returns the statistics of the measurement window.
    ///
    /// The simulator state is reset first, so a `NetworkSim` can be reused
    /// across traffic patterns. The returned reference stays valid until
    /// the next `run`; clone it to keep the statistics across runs.
    pub fn run(
        &mut self,
        traffic: &TrafficMatrix,
        warmup: u64,
        measure: u64,
        drain_limit: u64,
    ) -> &NetworkStats {
        let _span = telemetry::span("noc.sim.run");
        self.reset();
        self.measure_start = warmup;
        self.measure_end = warmup + measure;
        // The injection process is independent of network state (see
        // `Injector::nonzero_sources`), so the whole run's schedule is
        // drawn up front in one tight pass over the same RNG stream a
        // per-cycle scan would consume — bit-identical events, and the
        // cycle loop can jump over event-free idle stretches.
        let injector = Injector::new(traffic);
        let mut rng = StdRng::seed_from_u64(self.cfg.seed);
        let mut sched = std::mem::take(&mut self.sched);
        injector.schedule_into(&mut rng, warmup + measure, &mut sched);

        // A wireless fault plan pins the sweep to the serial path: the
        // per-channel hazard counters are consumed in sweep order, which a
        // buffered replay cannot reproduce (attempts are burned by *failed*
        // transfers too).
        let workers = if self.faults.is_none() {
            self.cfg.threads.saturating_sub(1)
        } else {
            if self.cfg.threads > 1 {
                // Surface the silent serial fallback: a sweep configured for
                // N threads that also injects faults gets no parallelism.
                telemetry::count("noc.parallel_disabled_faults", 1);
            }
            0
        };
        self.park = workers == 0 && self.faults.is_none();
        if workers > 0 {
            let board = crate::par::Board::new(workers);
            std::thread::scope(|s| {
                for _ in 0..workers {
                    s.spawn(|| board.worker());
                }
                self.cycle_loop(&sched, warmup, measure, drain_limit, Some(&board));
                board.shutdown();
            });
        } else {
            self.cycle_loop(&sched, warmup, measure, drain_limit, None);
        }
        self.sched = sched;
        self.stats.cycles = measure;
        self.stats.packets_injected = self.injected_measured;
        self.stats.in_flight_at_end = self.injected_measured - self.delivered_measured;
        // Wired ports enumerate in ascending (from, to) order (ports
        // 1..=degree are sorted by neighbour id), matching the order the
        // old dense `from * n + to` scan produced.
        let mut loads = Vec::new();
        for v in self.topo.nodes() {
            for p in 1..self.ports.port_count(v) {
                if Some(p) == self.ports.wireless_port(v) {
                    continue;
                }
                let flits = self.link_flits[self.ports.flat_index(v, p)];
                if flits > 0 {
                    let (w, _) = self.ports.wire_peer(v, p);
                    loads.push(crate::stats::LinkLoad {
                        from: v,
                        to: w,
                        flits,
                    });
                }
            }
        }
        self.stats.link_loads = loads;
        telemetry::count("noc.packets_injected", self.stats.packets_injected);
        telemetry::count("noc.packets_delivered", self.stats.packets_delivered);
        telemetry::count("noc.flits_delivered", self.stats.flits_delivered);
        telemetry::count("noc.cycles_simulated", self.stepped_cycles);
        telemetry::count("noc.cycles_fast_forwarded", self.ff_cycles);
        telemetry::count("noc.cycles_steady_replayed", self.steady_cycles);
        telemetry::count("noc.parallel_shards", self.par_shards);
        telemetry::count("noc.steady_hint_hits", self.hint_hits);
        telemetry::count("noc.steady_hint_rejected", self.hint_rejected);
        &self.stats
    }

    /// The warmup/measure/drain cycle loop of one [`NetworkSim::run`],
    /// optionally backed by a parallel-sweep worker board.
    fn cycle_loop(
        &mut self,
        sched: &[InjectEvent],
        warmup: u64,
        measure: u64,
        drain_limit: u64,
        board: Option<&crate::par::Board>,
    ) {
        let _loop_span = telemetry::span("noc.sim.cycle_loop");
        let end = warmup + measure;
        let mut pos = 0usize;
        while self.now < end {
            // Idle-gap jump: under exactly the in-step steady fast-path
            // conditions, and with no scheduled injection before the next
            // switch wake, every intervening cycle is idle token-MAC
            // bookkeeping — consume the stretch in closed form.
            if self.src_list.is_empty() && self.pending.is_empty() && self.next_due > self.now {
                let next_event = sched.get(pos).map_or(u64::MAX, |e| e.cycle);
                let horizon = self.next_due.min(next_event).min(end);
                if horizon > self.now + 1 {
                    self.steady_jump(horizon - self.now);
                    continue;
                }
            }
            self.step(Some((sched, &mut pos)), board);
        }
        // Hints are suppressed under an active fault plan: hazard counters
        // keep the snapshot advancing, so an early hint confirmation must
        // not even be attempted (mirroring the Brent path's implicit
        // disable while the stream is live).
        let hint = if self.faults.is_some() {
            None
        } else {
            self.steady_hint
        };
        let mut detector = crate::steady::PeriodDetector::with_hint(hint);
        let mut drained = 0u64;
        while drained < drain_limit && self.delivered_measured < self.injected_measured {
            // Only look for a jump after a cycle in which nothing
            // moved; while flits are flowing, stepping is the fast path.
            if self.moves_last_step == 0 {
                let gap = self.drain_gap();
                if gap > 1 {
                    let jump = gap.min(drain_limit - drained);
                    self.fast_forward(jump);
                    drained += jump;
                    detector.reset();
                    continue;
                }
                // Stalled and not fast-forwardable (a front is ready but
                // blocked). Injection is over, so the remaining dynamics
                // are a deterministic function of a small compact state;
                // if that state exactly recurs with every observable
                // counter unchanged, the drain is livelocked and every
                // remaining cycle is a verbatim repeat — consume the rest
                // of the budget in closed form.
                if detector.observe(|out| self.steady_snapshot(out)) {
                    let rest = drain_limit - drained;
                    self.now += rest;
                    self.steady_cycles += rest;
                    self.detected_period = detector.period();
                    if detector.fired_via_hint() {
                        self.hint_hits += 1;
                    }
                    break;
                }
            } else {
                detector.reset();
            }
            self.step(None, board);
            drained += 1;
        }
        self.hint_rejected += detector.hint_rejections();
    }

    /// The compact drain-phase state consumed by the livelock detector.
    ///
    /// During a streak of zero-move cycles the FIFO contents, wormhole
    /// bindings, round-robin pointers and source queues are all frozen —
    /// everything that *can* evolve is written here, in now-relative form:
    /// token positions, per-class fractional clock accumulators (with
    /// their lazy replay cursors), per-switch wake offsets, and the fault
    /// hazard counters plus the only stats field a zero-move cycle can
    /// touch (a corrupted transfer still radiates). Including the hazard
    /// counters is what disables detection under an *active* fault stream:
    /// while attempts keep burning, the state never recurs; once the
    /// stream is cycle-stable the counters freeze and detection resumes.
    fn steady_snapshot(&self, out: &mut Vec<u64>) {
        out.push(self.delivered_measured);
        out.push(self.stats.flits_delivered);
        out.push(self.stats.packets_delivered);
        out.push(self.stats.energy.wireless_pj.to_bits());
        for m in &self.macs {
            out.push(m.holder().map_or(u64::MAX, |h| h.index() as u64));
        }
        for &v in self.active_list.iter().chain(&self.pending) {
            let v = v as usize;
            let c = self.clock_class[v] as usize;
            out.push(v as u64);
            out.push(self.class_acc[c].to_bits());
            out.push(self.now + 1 - self.class_next[c].min(self.now + 1));
            out.push(match self.wake[v] {
                u64::MAX => u64::MAX,
                w => w.saturating_sub(self.now),
            });
        }
        for &s in &self.src_list {
            out.push(s as u64);
        }
        if let Some(fl) = &self.faults {
            out.extend(fl.attempts.iter().copied());
            out.extend(fl.consec.iter().map(|&c| u64::from(c)));
            out.extend(fl.disabled.iter().map(|&d| u64::from(d)));
            out.push(fl.counts.flit_corruptions);
            out.push(fl.counts.wi_fallbacks);
        }
    }

    /// Stepped cycles of the last run whose switch work was replayed in
    /// closed form (steady-state fast path + livelocked drain cycles).
    pub fn steady_replayed_cycles(&self) -> u64 {
        self.steady_cycles
    }

    /// Shard tasks the last run dispatched to the parallel sweep pool
    /// (zero on the serial path).
    pub fn parallel_shards(&self) -> u64 {
        self.par_shards
    }

    /// Cycles until the next possible flit move during drain, or 0 when
    /// something can (or might) happen this cycle.
    ///
    /// A jump of `k` cycles is sound when no source queue can inject (its
    /// local port is full) and every FIFO-front flit is still in a router
    /// pipeline: those cycles are observably idle except for token-MAC
    /// rotation and clock accumulation, both of which [`Self::fast_forward`]
    /// replays in closed form.
    fn drain_gap(&self) -> u64 {
        for &s in &self.src_list {
            let slot = self
                .fabric
                .slot(NodeId(s as usize), PORT_LOCAL, self.inject_vc);
            if self.fabric.space(slot) > 0 {
                return 0;
            }
        }
        let mut min_ready = u64::MAX;
        let masks = self.fabric.occ_masks_enabled();
        for &v in self.active_list.iter().chain(&self.pending) {
            let v = NodeId(v as usize);
            if masks {
                let sb = self.fabric.switch_base(v);
                let mut m = self.fabric.occ_mask(v);
                while m != 0 {
                    let local = m.trailing_zeros() as usize;
                    m &= m - 1;
                    min_ready = min_ready.min(self.fabric.front_ready(sb + local));
                }
            } else {
                for slot in self.fabric.slots_of(v) {
                    min_ready = min_ready.min(self.fabric.front_ready(slot));
                }
            }
        }
        if min_ready == u64::MAX || min_ready <= self.now {
            0
        } else {
            min_ready - self.now
        }
    }

    /// Advances the clock over `cycles` observably idle cycles at once.
    ///
    /// Switch state is frozen (clock accumulators catch up lazily), but the
    /// token MACs rotate: a channel whose holder is mid-wormhole keeps its
    /// token, and an idle token rotates until it reaches a member that is
    /// mid-wormhole on its wireless port — from then on that member would
    /// have kept the token every remaining cycle.
    fn fast_forward(&mut self, cycles: u64) {
        self.rotate_macs_idle(cycles);
        self.now += cycles;
        self.ff_cycles += cycles;
    }

    /// Closed-form replay of observably idle warmup/measure cycles: the
    /// same cycles the in-step steady fast path would consume one at a
    /// time, credited to the same `steady_cycles` counter, with the idle
    /// token-MAC rotation applied in one pass.
    fn steady_jump(&mut self, cycles: u64) {
        self.rotate_macs_idle(cycles);
        self.now += cycles;
        self.steady_cycles += cycles;
        // What an idle step would have left behind.
        self.moves_last_step = 0;
    }

    /// The idle token-MAC rotation shared by both closed-form advances.
    fn rotate_macs_idle(&mut self, cycles: u64) {
        for c in 0..self.macs.len() {
            let len = self.macs[c].len() as u64;
            if len <= 1 {
                continue;
            }
            if mac_holds_packet(&self.ports, &self.fabric, self.macs[c].holder()) {
                continue;
            }
            let mut jump = cycles;
            for d in 1..len.min(cycles + 1) {
                let m = self.macs[c].holder_after(d as usize);
                if mac_holds_packet(&self.ports, &self.fabric, m) {
                    jump = d;
                    break;
                }
            }
            self.macs[c].advance_idle(jump);
        }
    }

    /// Whether a flit (packet) is inside the measurement window.
    fn measured(&self, f: &Flit) -> bool {
        f.created >= self.measure_start && f.created < self.measure_end
    }

    /// One global clock cycle.
    fn step(
        &mut self,
        inject: Option<(&[InjectEvent], &mut usize)>,
        board: Option<&crate::par::Board>,
    ) {
        self.stepped_cycles += 1;
        self.moves_last_step = 0;

        // 1. Packet generation into source queues, consuming this cycle's
        //    slice of the precomputed schedule (events are sorted by cycle
        //    and, within a cycle, by ascending source — the order the old
        //    per-cycle sampling scan produced).
        if let Some((sched, pos)) = inject {
            while let Some(e) = sched.get(*pos) {
                if e.cycle != self.now {
                    break;
                }
                *pos += 1;
                let s = e.src as usize;
                let id = PacketId(self.next_packet);
                self.next_packet += 1;
                if self.now >= self.measure_start && self.now < self.measure_end {
                    self.injected_measured += 1;
                }
                self.src_q[s].extend(flit_sequence(
                    id,
                    NodeId(s),
                    NodeId(e.dest as usize),
                    self.cfg.packet_len,
                    self.now,
                ));
                if !self.src_listed[s] {
                    self.src_listed[s] = true;
                    self.src_list.push(s as u32);
                }
            }
        }

        // Steady-state fast path: nothing is backlogged at a source, no
        //    switch gained its first flit, and no enrolled switch has work
        //    before `next_due` — every front is still in its router
        //    pipeline. Sections 2–5 are then provably no-ops (the sweep
        //    would process nothing and keep every switch), so the cycle
        //    reduces to idle token-MAC bookkeeping; the skipped clock
        //    ticks replay lazily on wake, bit-identically.
        if self.src_list.is_empty() && self.pending.is_empty() && self.next_due > self.now {
            for mac in &mut self.macs {
                let holds = mac_holds_packet(&self.ports, &self.fabric, mac.holder());
                mac.end_cycle(false, holds);
            }
            self.steady_cycles += 1;
            self.now += 1;
            return;
        }

        // 2. Move one flit per backlogged node from the source queue into
        //    the local input port, enrolling the switch. New packets start
        //    on the top VC (the adaptive one when adaptive routing is on).
        let mut src_list = std::mem::take(&mut self.src_list);
        let mut keep = 0;
        let mut r = 0;
        while r < src_list.len() {
            let s = src_list[r] as usize;
            // A source that found its inject slot full stays backlogged
            // until that slot pops; the probe below is pure, so skipping
            // it until the pop rearms the flag changes nothing.
            if self.src_blocked[s] {
                src_list[keep] = s as u32;
                keep += 1;
                r += 1;
                continue;
            }
            let slot = self.fabric.slot(NodeId(s), PORT_LOCAL, self.inject_vc);
            if self.fabric.space(slot) > 0 {
                if let Some(mut f) = self.src_q[s].pop_front() {
                    // Entering the injection port costs the router pipeline
                    // too.
                    f.ready_at = f.ready_at.max(self.now + self.cfg.router_delay);
                    let ready = f.ready_at;
                    self.fabric.push_back(slot, f);
                    self.buffered[s] += 1;
                    self.moves_last_step += 1;
                    if self.wake[s] > ready {
                        self.wake[s] = ready;
                    }
                    if !self.active[s] {
                        self.active[s] = true;
                        self.pending.push(s as u32);
                    }
                }
            } else {
                self.src_blocked[s] = true;
            }
            if self.src_q[s].is_empty() {
                self.src_listed[s] = false;
            } else {
                src_list[keep] = s as u32;
                keep += 1;
            }
            r += 1;
        }
        src_list.truncate(keep);
        self.src_list = src_list;

        // 3. MAC: snapshot holders and usage flags per channel.
        let mut holders = std::mem::take(&mut self.mac_holders);
        holders.clear();
        holders.extend(self.macs.iter().map(ChannelMac::holder));
        let mut channel_used = std::mem::take(&mut self.mac_used);
        channel_used.clear();
        channel_used.resize(self.macs.len(), false);

        // 4. Enroll switches that gained their first flit since the last
        //    sweep (same-cycle injections included, for router_delay = 0).
        self.merge_pending();

        // 5. Switch operation, ascending over the active set. A switch's
        //    clock catches up lazily right before it is consulted, and a
        //    switch whose `wake` lies in the future is skipped outright
        //    (clocking it is a proven no-op). Switches that end the sweep
        //    empty are dropped and re-enroll on arrival.
        match board {
            Some(b) => {
                self.sweep_parallel(b, &holders, &mut channel_used);
                // The wavefront schedule decouples wake writes from the
                // compaction order, so the parallel path recomputes
                // `next_due` in a separate pass.
                self.refresh_next_due();
            }
            // The serial sweep folds the `next_due` recomputation into its
            // compaction scan (plus the wake-lowering sites that touch
            // already-compacted switches).
            None => self.sweep_serial(&holders, &mut channel_used),
        }

        // 6. MAC bookkeeping.
        for (c, mac) in self.macs.iter_mut().enumerate() {
            let holds_packet = mac_holds_packet(&self.ports, &self.fabric, holders[c]);
            mac.end_cycle(channel_used[c], holds_packet);
        }
        self.mac_holders = holders;
        self.mac_used = channel_used;

        self.now += 1;
    }

    /// The serial switch sweep: ascending over the active list, due
    /// switches processed with effects applied directly, drained switches
    /// dropped in place.
    ///
    /// `next_due` is rebuilt inline: the compaction scan folds in each
    /// kept switch's wake right after it is processed, and the wake
    /// writes that can touch a switch *earlier* in the list (a push into
    /// a lower-numbered or pending switch, a park rearm of a lower wire
    /// peer — both in `try_advance`) fold their lowered value in at the
    /// write. The result may sit below the true minimum when a push
    /// lowers a due switch that is later processed and re-armed higher —
    /// i.e. `next_due` stays stale-low-never-stale-high, exactly the
    /// contract the separate `refresh_next_due` pass provided.
    fn sweep_serial(&mut self, holders: &[Option<NodeId>], channel_used: &mut [bool]) {
        let mut list = std::mem::take(&mut self.active_list);
        let mut out_used = std::mem::take(&mut self.out_used);
        let mut keep = 0;
        self.next_due = u64::MAX;
        let uniform = self.uniform_full_speed;
        for r in 0..list.len() {
            let v = list[r] as usize;
            debug_assert!(self.buffered[v] > 0, "enrolled switches hold flits");
            if self.wake[v] <= self.now {
                // At uniform full speed the single class clock trivially
                // fires; keep only its lazy cursor in sync (the writes
                // `clock_fires` would make) and skip the class lookup.
                let fires = if uniform {
                    if self.class_next[0] <= self.now {
                        self.class_next[0] = self.now + 1;
                        self.class_fires[0] = true;
                    }
                    true
                } else {
                    self.clock_fires(v)
                };
                if fires {
                    self.process_switch(
                        NodeId(v),
                        holders,
                        channel_used,
                        &mut out_used,
                        &mut Sink::Direct,
                    );
                } else {
                    // The clock sat out this cycle: retry on the next one,
                    // exactly as a per-cycle sweep would.
                    self.wake[v] = self.now + 1;
                }
            }
            if self.buffered[v] > 0 {
                list[keep] = v as u32;
                keep += 1;
                self.next_due = self.next_due.min(self.wake[v]);
            } else {
                self.active[v] = false;
            }
        }
        list.truncate(keep);
        self.active_list = list;
        self.out_used = out_used;
    }

    /// The parallel switch sweep: collect the due worklist serially, run
    /// it in interaction-free wavefronts on the board, replay buffered
    /// effects in ascending switch order, then compact the active list.
    ///
    /// Deferring the drained-switch compaction to after the waves is
    /// equivalent to the serial interleaved keep-check: the only divergent
    /// case — `v` drains, then a later `u` pushes into it — leaves `v`
    /// enrolled either way (serial re-enrolls it via `pending`, the late
    /// check simply keeps it), and the next cycle's sorted worklist is
    /// identical.
    fn sweep_parallel(
        &mut self,
        board: &crate::par::Board,
        holders: &[Option<NodeId>],
        channel_used: &mut [bool],
    ) {
        let mut scratch = std::mem::take(&mut self.par_scratch);
        scratch.due.clear();
        let list = std::mem::take(&mut self.active_list);
        let uniform = self.uniform_full_speed;
        for &v32 in &list {
            let v = v32 as usize;
            debug_assert!(self.buffered[v] > 0, "enrolled switches hold flits");
            if self.wake[v] <= self.now {
                // Same uniform-full-speed shortcut as the serial sweep.
                let fires = if uniform {
                    if self.class_next[0] <= self.now {
                        self.class_next[0] = self.now + 1;
                        self.class_fires[0] = true;
                    }
                    true
                } else {
                    self.clock_fires(v)
                };
                if fires {
                    scratch.due.push(v32);
                } else {
                    self.wake[v] = self.now + 1;
                }
            }
        }
        self.active_list = list;

        if scratch.due.len() < PAR_MIN_DUE {
            // Too little work to amortise a wave dispatch: take the exact
            // serial path over the due switches.
            let mut out_used = std::mem::take(&mut self.out_used);
            for i in 0..scratch.due.len() {
                let v = scratch.due[i] as usize;
                self.process_switch(
                    NodeId(v),
                    holders,
                    channel_used,
                    &mut out_used,
                    &mut Sink::Direct,
                );
            }
            self.out_used = out_used;
        } else {
            if self.par_plan.is_none() {
                self.par_plan = Some(crate::par::WavePlan::build(&self.topo, &self.overlay));
            }
            let plan = self.par_plan.take().expect("built above");
            let waves = scratch.assign_waves(&plan, self.topo.len());
            if scratch.effects.len() < scratch.due.len() {
                scratch
                    .effects
                    .resize_with(scratch.due.len(), Default::default);
            }
            for b in &mut scratch.effects[..scratch.due.len()] {
                b.ops.clear();
                b.moves = 0;
            }
            let max_ports = self.out_used.len();
            let chunk_div = (board.workers() + 1) * 2;
            let mut out_used = std::mem::take(&mut self.out_used);
            for w in 0..waves {
                let lo = scratch.wave_bounds[w] as usize;
                let hi = scratch.wave_bounds[w + 1] as usize;
                let pairs = &scratch.order[lo..hi];
                let chunk = pairs.len().div_ceil(chunk_div).max(1);
                self.par_shards += pairs.len().div_ceil(chunk) as u64;
                let job = crate::par::Job {
                    sim: self as *mut NetworkSim<'a> as usize,
                    pairs: pairs.as_ptr() as usize,
                    pairs_len: pairs.len(),
                    effects: scratch.effects.as_mut_ptr() as usize,
                    holders: holders.as_ptr() as usize,
                    holders_len: holders.len(),
                    used: channel_used.as_mut_ptr() as usize,
                    used_len: channel_used.len(),
                    max_ports,
                    chunk,
                };
                board.run_wave(job, &mut out_used);
            }
            self.out_used = out_used;
            self.apply_effects(&mut scratch);
            self.par_plan = Some(plan);
        }

        // Late compaction (see above).
        let mut list = std::mem::take(&mut self.active_list);
        let mut keep = 0;
        for r in 0..list.len() {
            let v = list[r] as usize;
            if self.buffered[v] > 0 {
                list[keep] = v as u32;
                keep += 1;
            } else {
                self.active[v] = false;
            }
        }
        list.truncate(keep);
        self.active_list = list;
        self.par_scratch = scratch;
    }

    /// Replays the order-sensitive effects of a parallel sweep in
    /// ascending switch order — the bit-for-bit identical sequence of
    /// additions and enrollments the serial sweep performs.
    fn apply_effects(&mut self, scratch: &mut crate::par::Scratch) {
        use crate::par::StatOp;
        for i in 0..scratch.due.len() {
            let buf = &scratch.effects[i];
            self.moves_last_step += buf.moves;
            for op in &buf.ops {
                match *op {
                    StatOp::SwitchPj(pj) => self.stats.energy.switch_pj += pj,
                    StatOp::EjectFlit => self.stats.flits_delivered += 1,
                    StatOp::EjectTail { latency } => {
                        self.stats.flits_delivered += 1;
                        self.stats.packets_delivered += 1;
                        self.stats.latency_sum += latency;
                        self.stats.max_latency = self.stats.max_latency.max(latency);
                        self.stats.record_latency(latency);
                        self.delivered_measured += 1;
                    }
                    StatOp::WireHop { pj, adaptive, link } => {
                        self.stats.energy.wire_pj += pj;
                        self.stats.wire_flit_hops += 1;
                        if adaptive {
                            self.stats.adaptive_flit_hops += 1;
                        }
                        self.link_flits[link as usize] += 1;
                    }
                    StatOp::WirelessHop { pj } => {
                        self.stats.energy.wireless_pj += pj;
                        self.stats.wireless_flit_hops += 1;
                    }
                    StatOp::Enroll(w) => {
                        let w = w as usize;
                        if !self.active[w] {
                            self.active[w] = true;
                            self.pending.push(w as u32);
                        }
                    }
                }
            }
        }
    }

    /// Recomputes `next_due` as the minimum wake over enrolled switches.
    fn refresh_next_due(&mut self) {
        let mut nd = u64::MAX;
        for &v in self.active_list.iter().chain(&self.pending) {
            nd = nd.min(self.wake[v as usize]);
        }
        self.next_due = nd;
    }

    /// Catches switch `v`'s fractional clock up to the current cycle and
    /// reports whether it fires now. Clocks are shared per speed class:
    /// every switch with the same speed walks the identical accumulator
    /// sequence from the same start, so the first call of a cycle replays
    /// any dormant gap (the identical sequence of additions a per-cycle
    /// update would have performed — firing patterns are bit-identical)
    /// and later calls for the same class are a cached lookup.
    fn clock_fires(&mut self, v: usize) -> bool {
        let c = self.clock_class[v] as usize;
        if self.class_next[c] <= self.now {
            let from = self.class_next[c];
            self.class_next[c] = self.now + 1;
            let speed = self.class_speed[c];
            if speed == 1.0 {
                // The accumulator stays exactly 0.0 and fires every cycle.
                self.class_fires[c] = true;
            } else {
                let acc = &mut self.class_acc[c];
                let mut fires = false;
                for _ in from..=self.now {
                    *acc += speed;
                    fires = *acc >= 1.0;
                    if fires {
                        *acc -= 1.0;
                    }
                }
                self.class_fires[c] = fires;
            }
        }
        self.class_fires[c]
    }

    /// Merges newly enrolled switches into the sorted active list.
    fn merge_pending(&mut self) {
        if self.pending.is_empty() {
            return;
        }
        self.pending.sort_unstable();
        let mut merged = std::mem::take(&mut self.list_scratch);
        merged.clear();
        merged.reserve(self.active_list.len() + self.pending.len());
        let (a, b) = (&self.active_list, &self.pending);
        let (mut i, mut j) = (0, 0);
        while i < a.len() && j < b.len() {
            if a[i] < b[j] {
                merged.push(a[i]);
                i += 1;
            } else {
                merged.push(b[j]);
                j += 1;
            }
        }
        merged.extend_from_slice(&a[i..]);
        merged.extend_from_slice(&b[j..]);
        self.pending.clear();
        self.list_scratch = std::mem::replace(&mut self.active_list, merged);
    }

    /// Translates an escape-table entry into a concrete route (down-VC 0).
    fn escape_route(&self, v: NodeId, phase: Phase, dest: NodeId) -> (OutRoute, Phase) {
        let p = match phase {
            Phase::Up => 0,
            Phase::Down => 1,
        };
        self.escape[(v.index() * 2 + p) * self.topo.len() + dest.index()]
            .unpack()
            .unwrap_or_else(|| panic!("no route from {v} (phase {phase:?}) to {dest}"))
    }

    /// Routes a head flit at `(v, in-VC vc)`: the escape VC follows the
    /// table; adaptive VCs take any free minimal wired hop and fall back to
    /// the escape channel when blocked (conservative Duato).
    ///
    /// The third return is the fault-model divert flag: `true` when the
    /// packet leaves the wireless tree for the wireline-only fallback tree
    /// at this hop (it commits onto the flit only when the move succeeds).
    fn route_head(
        &self,
        v: NodeId,
        vc: usize,
        f: &Flit,
        out_used: &[bool],
    ) -> (OutRoute, Option<Phase>, bool) {
        if f.dest == v {
            return (
                OutRoute {
                    out_port: PORT_LOCAL,
                    wireless_to: None,
                    down_vc: 0,
                },
                None,
                false,
            );
        }
        if vc == 0 || !self.cfg.adaptive {
            if let Some(fl) = &self.faults {
                let n = self.topo.len();
                if f.wired_fallback {
                    // Already diverted: stay on the wireline-only tree.
                    let p = match f.phase {
                        Phase::Up => 0,
                        Phase::Down => 1,
                    };
                    let (route, np) = fl.fallback[(v.index() * 2 + p) * n + f.dest.index()]
                        .unpack()
                        .unwrap_or_else(|| {
                            panic!("no wireline fallback route from {v} to {}", f.dest)
                        });
                    return (route, Some(np), false);
                }
                let (route, next_phase) = self.escape_route(v, f.phase, f.dest);
                if route.wireless_to.is_some() && fl.disabled[v.index()] {
                    // The WI here fell back: divert onto the wireline-only
                    // up*/down* tree, restarting the phase at this switch
                    // (the same restart the adaptive fallback performs).
                    let (wr, np) = fl.fallback[(v.index() * 2) * n + f.dest.index()]
                        .unpack()
                        .unwrap_or_else(|| {
                            panic!("no wireline fallback route from {v} to {}", f.dest)
                        });
                    return (wr, Some(np), true);
                }
                return (route, Some(next_phase), false);
            }
            let (route, next_phase) = self.escape_route(v, f.phase, f.dest);
            return (route, Some(next_phase), false);
        }
        // Adaptive: any wired neighbour strictly closer to the destination,
        // preferring the one with the most free downstream adaptive space.
        let n = self.topo.len();
        let sb = self.fabric.switch_base(v);
        let vcs = self.cfg.vcs;
        let my_dist = self.hop_dist[v.index() * n + f.dest.index()];
        let mut best: Option<(usize, OutRoute)> = None; // (space, route)
        for (i, &w) in self.topo.neighbors(v).iter().enumerate() {
            if self.hop_dist[w.index() * n + f.dest.index()] >= my_dist {
                continue;
            }
            // Wired ports are 1..=degree in sorted neighbour order.
            let o = i + 1;
            if out_used[o] {
                continue;
            }
            let (_, wp) = self.ports.wire_peer(v, o);
            // Pick the free downstream adaptive VC with the most space.
            let Some((dvc, space)) = (1..vcs)
                .filter(|&c| !self.fabric.out_owner_set(sb + o * vcs + c))
                .map(|c| (c, self.fabric.space(self.fabric.slot(w, wp, c))))
                .max_by_key(|&(c, s)| (s, usize::MAX - c))
            else {
                continue;
            };
            if space == 0 {
                continue;
            }
            if best.as_ref().is_none_or(|(bs, _)| space > *bs) {
                best = Some((
                    space,
                    OutRoute {
                        out_port: o,
                        wireless_to: None,
                        down_vc: dvc,
                    },
                ));
            }
        }
        match best {
            Some((_, route)) => (route, None, false),
            None => {
                // All minimal adaptive channels blocked: drain via the
                // escape network, restarting the up*/down* phase here.
                let (route, next_phase) = self.escape_route(v, Phase::Up, f.dest);
                (route, Some(next_phase), false)
            }
        }
    }

    /// Moves flits through one switch for one of its active cycles.
    fn process_switch(
        &mut self,
        v: NodeId,
        holders: &[Option<NodeId>],
        channel_used: &mut [bool],
        out_used: &mut [bool],
        sink: &mut Sink<'_>,
    ) {
        let ports = self.ports.port_count(v);
        let vcs = self.cfg.vcs;
        let sb = self.fabric.switch_base(v);
        out_used[..ports].fill(false);
        let masks = self.fabric.occ_masks_enabled();

        // Pass A: continue established wormholes. Only an occupied slot
        // can move, and `v`'s occupancy never grows while `v` is being
        // processed (no switch pushes into itself), so iterating the set
        // bits of the occupancy mask visits exactly the slots whose probe
        // in the positional scan could succeed, in the same ascending
        // order — slots that empty mid-pass are re-filtered by the fresh
        // `front_ready` check either way.
        let mut any_moved = false;
        if masks {
            let mut m = self.fabric.occ_mask(v);
            while m != 0 {
                let local = m.trailing_zeros() as usize;
                m &= m - 1;
                any_moved |= self.continue_wormhole(
                    v,
                    sb,
                    sb + local,
                    holders,
                    channel_used,
                    out_used,
                    sink,
                );
            }
        } else {
            for slot in sb..sb + ports * vcs {
                any_moved |=
                    self.continue_wormhole(v, sb, slot, holders, channel_used, out_used, sink);
            }
        }

        // Pass B: route new head flits, round-robin over input ports
        // (escape VC first within a port, so draining traffic keeps
        // priority over fresh adaptive traffic). The masked variant
        // rotates the occupancy mask by whole ports so its set bits
        // enumerate in exactly the positional scan's order: cyclic ports
        // starting at `rr_next`, ascending VCs within a port.
        let rr = self.fabric.rr_next[v.index()] as usize;
        if masks {
            let w = ports * vcs;
            let m0 = self.fabric.occ_mask(v);
            let s = rr * vcs;
            let mut m = if s == 0 {
                m0
            } else {
                let wide = if w == 64 { u64::MAX } else { (1u64 << w) - 1 };
                ((m0 >> s) | (m0 << (w - s))) & wide
            };
            while m != 0 {
                let t = m.trailing_zeros() as usize;
                m &= m - 1;
                let mut local = t + s;
                if local >= w {
                    local -= w;
                }
                let (p, vc) = (local / vcs, local % vcs);
                if self.route_new_head(v, sb, p, vc, holders, channel_used, out_used, sink) {
                    any_moved = true;
                    self.fabric.rr_next[v.index()] = ((p + 1) % ports) as u32;
                }
            }
        } else {
            let mut p = rr;
            for _ in 0..ports {
                for vc in 0..vcs {
                    if self.route_new_head(v, sb, p, vc, holders, channel_used, out_used, sink) {
                        any_moved = true;
                        self.fabric.rr_next[v.index()] = ((p + 1) % ports) as u32;
                    }
                }
                p += 1;
                if p == ports {
                    p = 0;
                }
            }
        }

        // Decide when this switch next needs clocking. A ready front after
        // a cycle that moved flits retries immediately (the move may have
        // freed the port or ownership it waits on). A ready front after a
        // *move-free* cycle is blocked on state this switch cannot change:
        // the switch parks until a neighbour pops the full slot it pushes
        // into (`try_advance` rearms `wake`), a flit arrives (the push
        // sites lower `wake`), or an in-flight front exits its pipeline
        // (`fut_min`). Two carve-outs keep the skip a proven no-op:
        // wireless switches never park (token rotation is not a wake
        // source, and the holder check must burn its slot every cycle),
        // and under a fault plan a blocked wireless retry still mutates
        // hazard counters, so every ready front retries per-cycle.
        let mut ready_now = false;
        let mut fut_min = u64::MAX;
        if masks {
            // Empty slots report `front_ready == MAX` and influence
            // neither bound, so only the occupied slots need probing.
            let mut m = self.fabric.occ_mask(v);
            while m != 0 {
                let local = m.trailing_zeros() as usize;
                m &= m - 1;
                let r = self.fabric.front_ready(sb + local);
                if r <= self.now {
                    ready_now = true;
                } else if r < fut_min {
                    fut_min = r;
                }
            }
        } else {
            for slot in sb..sb + ports * vcs {
                let r = self.fabric.front_ready(slot);
                if r <= self.now {
                    ready_now = true;
                } else if r < fut_min {
                    fut_min = r;
                }
            }
        }
        let parkable = self.park && !any_moved && self.wi_channel[v.index()] == u32::MAX;
        self.parked[v.index()] = ready_now && parkable;
        self.wake[v.index()] = if ready_now && !parkable {
            self.now + 1
        } else {
            fut_min
        };
    }

    /// One Pass-A probe of [`NetworkSim::process_switch`]: continues the
    /// wormhole bound to `slot` when its front is ready and its output
    /// port is still free this cycle. Returns whether a flit moved.
    #[inline]
    #[allow(clippy::too_many_arguments)]
    fn continue_wormhole(
        &mut self,
        v: NodeId,
        sb: usize,
        slot: usize,
        holders: &[Option<NodeId>],
        channel_used: &mut [bool],
        out_used: &mut [bool],
        sink: &mut Sink<'_>,
    ) -> bool {
        let Some(route) = self.fabric.in_route(slot) else {
            return false;
        };
        if out_used[route.out_port] {
            return false;
        }
        if self.fabric.front_ready(slot) > self.now {
            return false;
        }
        let f = *self.fabric.front(slot).expect("ready slot has a front");
        let local = slot - sb;
        let vcs = self.cfg.vcs;
        self.try_advance(
            v,
            local / vcs,
            local % vcs,
            f,
            route,
            None,
            out_used,
            holders,
            channel_used,
            false,
            false,
            sink,
        )
    }

    /// One Pass-B probe of [`NetworkSim::process_switch`]: routes the new
    /// head flit at input `(p, vc)` when one is ready and unbound, and its
    /// chosen output is free. Returns whether a flit moved.
    #[inline]
    #[allow(clippy::too_many_arguments)]
    fn route_new_head(
        &mut self,
        v: NodeId,
        sb: usize,
        p: usize,
        vc: usize,
        holders: &[Option<NodeId>],
        channel_used: &mut [bool],
        out_used: &mut [bool],
        sink: &mut Sink<'_>,
    ) -> bool {
        let vcs = self.cfg.vcs;
        let slot = sb + p * vcs + vc;
        if self.fabric.in_route_set(slot) {
            return false;
        }
        if self.fabric.front_ready(slot) > self.now {
            return false;
        }
        let f = *self.fabric.front(slot).expect("ready slot has a front");
        if !f.kind.is_head() {
            return false;
        }
        let (route, next_phase, divert) = self.route_head(v, vc, &f, out_used);
        let o = route.out_port;
        if out_used[o] || self.fabric.out_owner_set(sb + o * vcs + route.down_vc) {
            return false;
        }
        self.try_advance(
            v,
            p,
            vc,
            f,
            route,
            next_phase,
            out_used,
            holders,
            channel_used,
            true,
            divert,
            sink,
        )
    }

    /// Attempts to move flit `f` — the validated (ready, front-of-queue)
    /// head of input `(p, vc)` at switch `v` — along `route`; the caller
    /// has already checked that `route.out_port` is unused this cycle.
    /// Head flits take `next_phase` with them only when the move succeeds
    /// (a blocked flit must keep its pre-hop routing state). Returns
    /// whether the flit moved.
    #[allow(clippy::too_many_arguments)]
    fn try_advance(
        &mut self,
        v: NodeId,
        p: usize,
        vc: usize,
        f: Flit,
        route: OutRoute,
        next_phase: Option<crate::routing::Phase>,
        out_used: &mut [bool],
        holders: &[Option<NodeId>],
        channel_used: &mut [bool],
        is_new_packet: bool,
        divert: bool,
        sink: &mut Sink<'_>,
    ) -> bool {
        let o = route.out_port;
        debug_assert!(!out_used[o], "caller reserves the output port");
        let vcs = self.cfg.vcs;
        let sb = self.fabric.switch_base(v);
        let slot = sb + p * vcs + vc;
        debug_assert_eq!(self.fabric.front(slot), Some(&f));
        debug_assert!(f.ready_at <= self.now);

        enum Dest {
            Eject,
            Into(NodeId, usize, u64, f64, bool), // node, port, penalty, link energy, wireless
        }

        let dest = if o == PORT_LOCAL {
            Dest::Eject
        } else if Some(o) == self.ports.wireless_port(v) {
            let to = route.wireless_to.expect("wireless route carries target");
            let ch = self.wi_channel[v.index()] as usize;
            if holders[ch] != Some(v) || channel_used[ch] {
                return false;
            }
            let tp = self
                .ports
                .wireless_port(to)
                .expect("wireless target is a WI");
            if self.fabric.space(self.fabric.slot(to, tp, route.down_vc)) == 0 {
                return false;
            }
            if let Some(fl) = self.faults.as_mut() {
                debug_assert!(
                    matches!(sink, Sink::Direct),
                    "fault plans pin the sweep to the serial path"
                );
                // Fault model: the transfer attempt may be corrupted by a
                // wireless bit error. The token slot is burned either way;
                // a corrupted flit stays put and retransmits on a later
                // slot, and past a threshold of consecutive corruptions the
                // source WI is disabled (future packets divert to wireline).
                let attempt = fl.attempts[ch];
                fl.attempts[ch] += 1;
                if fl.plan.link_corrupts(ch, attempt) {
                    fl.counts.flit_corruptions += 1;
                    fl.consec[v.index()] += 1;
                    if fl.consec[v.index()] >= fl.plan.wi_fallback_threshold()
                        && !fl.disabled[v.index()]
                    {
                        fl.disabled[v.index()] = true;
                        fl.counts.wi_fallbacks += 1;
                    }
                    channel_used[ch] = true;
                    if self.measured(&f) {
                        // The corrupted transfer still radiated.
                        self.stats.energy.wireless_pj += self.energy_model.wireless_energy_pj();
                    }
                    return false;
                }
                fl.consec[v.index()] = 0;
            }
            let penalty = if self.domains[v.index()] != self.domains[to.index()] {
                self.cfg.sync_penalty
            } else {
                0
            };
            Dest::Into(
                to,
                tp,
                penalty,
                self.energy_model.wireless_energy_pj(),
                true,
            )
        } else {
            let (w, wp) = self.ports.wire_peer(v, o);
            if self.fabric.space(self.fabric.slot(w, wp, route.down_vc)) == 0 {
                return false;
            }
            let i = self.ports.flat_index(v, o);
            Dest::Into(w, wp, self.port_penalty[i], self.wire_energy[i], false)
        };

        // Commit the move. In `Sink::Buffer` mode every order-sensitive
        // effect (float accumulation, delivery counters, enrollment) is
        // recorded instead of applied; switch-disjoint state (FIFOs,
        // `buffered`, `wake`, wormhole bookkeeping) mutates directly.
        let measured = self.measured(&f);
        let mut f = f;
        let was_full = self.fabric.space(slot) == 0;
        self.fabric.pop_front(slot);
        self.buffered[v.index()] -= 1;
        if p == PORT_LOCAL && vc == self.inject_vc {
            self.src_blocked[v.index()] = false;
        } else if self.park && was_full && p != PORT_LOCAL && Some(p) != self.ports.wireless_port(v)
        {
            // Popping a full wired slot is the only event that can unblock
            // the wire peer behind it (the peer is also the only switch
            // whose adaptive route choice reads this slot's space). A peer
            // later in this cycle's ascending sweep still gets consulted
            // *this* cycle — exactly as the per-cycle retry would.
            let (u, _) = self.ports.wire_peer(v, p);
            if self.parked[u.index()] {
                let t = if u.index() > v.index() {
                    self.now
                } else {
                    self.now + 1
                };
                if self.wake[u.index()] > t {
                    self.wake[u.index()] = t;
                    if u.index() < v.index() {
                        // `u` was already compacted this sweep (parking is
                        // serial-only); fold its lowered wake into
                        // `next_due`. A higher peer is folded when its own
                        // compaction slot comes around.
                        self.next_due = self.next_due.min(t);
                    }
                }
            }
        }
        match sink {
            Sink::Direct => self.moves_last_step += 1,
            Sink::Buffer(b) => b.moves += 1,
        }
        if let Some(ph) = next_phase {
            f.phase = ph;
        }
        if divert {
            f.wired_fallback = true;
        }
        if measured {
            match sink {
                Sink::Direct => self.stats.energy.switch_pj += self.switch_pj[v.index()],
                Sink::Buffer(b) => b.ops.push(StatOp::SwitchPj(self.switch_pj[v.index()])),
            }
        }
        match dest {
            Dest::Eject => {
                if measured {
                    if f.kind.is_tail() {
                        let latency = self.now + 1 - f.created;
                        match sink {
                            Sink::Direct => {
                                self.stats.flits_delivered += 1;
                                self.stats.packets_delivered += 1;
                                self.stats.latency_sum += latency;
                                self.stats.max_latency = self.stats.max_latency.max(latency);
                                self.stats.record_latency(latency);
                                self.delivered_measured += 1;
                            }
                            Sink::Buffer(b) => b.ops.push(StatOp::EjectTail { latency }),
                        }
                    } else {
                        match sink {
                            Sink::Direct => self.stats.flits_delivered += 1,
                            Sink::Buffer(b) => b.ops.push(StatOp::EjectFlit),
                        }
                    }
                }
            }
            Dest::Into(w, wp, penalty, link_pj, wireless) => {
                f.ready_at = self.now + 1 + self.cfg.router_delay + penalty;
                let ready = f.ready_at;
                if measured {
                    if wireless {
                        match sink {
                            Sink::Direct => {
                                self.stats.energy.wireless_pj += link_pj;
                                self.stats.wireless_flit_hops += 1;
                            }
                            Sink::Buffer(b) => b.ops.push(StatOp::WirelessHop { pj: link_pj }),
                        }
                    } else {
                        let link = self.ports.flat_index(v, o) as u32;
                        match sink {
                            Sink::Direct => {
                                self.stats.energy.wire_pj += link_pj;
                                self.stats.wire_flit_hops += 1;
                                if route.down_vc > 0 {
                                    self.stats.adaptive_flit_hops += 1;
                                }
                                self.link_flits[link as usize] += 1;
                            }
                            Sink::Buffer(b) => b.ops.push(StatOp::WireHop {
                                pj: link_pj,
                                adaptive: route.down_vc > 0,
                                link,
                            }),
                        }
                    }
                }
                if wireless {
                    channel_used[self.wi_channel[v.index()] as usize] = true;
                }
                let wslot = self.fabric.slot(w, wp, route.down_vc);
                self.fabric.push_back(wslot, f);
                self.buffered[w.index()] += 1;
                if self.wake[w.index()] > ready {
                    self.wake[w.index()] = ready;
                }
                match sink {
                    Sink::Direct => {
                        // Fold the receiver's (possibly just-lowered) wake
                        // into `next_due`: `w` may already be compacted or
                        // sitting in `pending`, where the compaction scan
                        // cannot see it. For a receiver processed later
                        // this sweep the fold is merely conservative
                        // (stale-low), matching the old refresh contract.
                        self.next_due = self.next_due.min(self.wake[w.index()]);
                        if !self.active[w.index()] {
                            self.active[w.index()] = true;
                            self.pending.push(w.index() as u32);
                        }
                    }
                    // Enrollment replays after the wave with the `active`
                    // check done then, so each switch enrolls at most once.
                    Sink::Buffer(b) => b.ops.push(StatOp::Enroll(w.index() as u32)),
                }
            }
        }
        out_used[o] = true;

        // Wormhole bookkeeping.
        let oslot = sb + o * vcs + route.down_vc;
        if f.kind.is_tail() {
            self.fabric.set_in_route(slot, None);
            self.fabric.set_out_owner(oslot, None);
        } else if is_new_packet {
            self.fabric.set_in_route(slot, Some(route));
            self.fabric.set_out_owner(
                oslot,
                Some(Owner {
                    in_port: p,
                    in_vc: vc,
                }),
            );
        }
        true
    }

    /// Total flits currently buffered anywhere in the network (diagnostics).
    pub fn buffered_flits(&self) -> usize {
        self.fabric.occupancy() + self.src_q.iter().map(VecDeque::len).sum::<usize>()
    }
}
#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::grid_positions;
    use crate::topology::mesh::mesh;
    use crate::topology::small_world::SmallWorldBuilder;
    use crate::topology::wireless::{ChannelId, WirelessInterface};

    fn mesh_sim(cols: usize, rows: usize) -> NetworkSim<'static> {
        NetworkSim::new(
            mesh(cols, rows, 2.5),
            WirelessOverlay::none(),
            RoutingTable::xy(cols, rows),
            EnergyModel::default_65nm(),
            SimConfig::default(),
        )
        .unwrap()
    }

    #[test]
    fn delivers_uniform_traffic() {
        let mut sim = mesh_sim(4, 4);
        let stats = sim.run(&TrafficMatrix::uniform(16, 0.05), 200, 2000, 20_000);
        assert!(stats.packets_injected > 50);
        assert_eq!(stats.in_flight_at_end, 0, "all measured packets drain");
        assert_eq!(stats.packets_delivered, stats.packets_injected);
        // 4 flits per packet.
        assert_eq!(stats.flits_delivered, 4 * stats.packets_delivered);
    }

    #[test]
    fn latency_exceeds_distance_plus_serialization() {
        let mut sim = mesh_sim(4, 4);
        let mut tm = TrafficMatrix::zeros(16);
        tm.set(NodeId(0), NodeId(15), 0.01);
        let stats = sim.run(&tm, 0, 3000, 10_000);
        assert!(stats.packets_delivered > 0);
        // distance 6 + 4 flits serialization - 1 = at least 9 cycles.
        assert!(
            stats.avg_latency() >= 9.0,
            "latency {}",
            stats.avg_latency()
        );
        assert!(
            stats.avg_latency() < 40.0,
            "latency {}",
            stats.avg_latency()
        );
    }

    #[test]
    fn energy_scales_with_distance() {
        let mut sim = mesh_sim(4, 4);
        let mut near = TrafficMatrix::zeros(16);
        near.set(NodeId(0), NodeId(1), 0.02);
        let near_stats = sim.run(&near, 100, 2000, 10_000).clone();
        let mut far = TrafficMatrix::zeros(16);
        far.set(NodeId(0), NodeId(15), 0.02);
        let far_stats = sim.run(&far, 100, 2000, 10_000);
        assert!(
            far_stats.energy_per_flit_pj() > 2.0 * near_stats.energy_per_flit_pj(),
            "far {} near {}",
            far_stats.energy_per_flit_pj(),
            near_stats.energy_per_flit_pj()
        );
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = mesh_sim(4, 4);
        let mut b = mesh_sim(4, 4);
        let tm = TrafficMatrix::uniform(16, 0.08);
        assert_eq!(a.run(&tm, 100, 1000, 10_000), b.run(&tm, 100, 1000, 10_000));
    }

    #[test]
    fn rerun_resets_state() {
        let mut sim = mesh_sim(4, 4);
        let tm = TrafficMatrix::uniform(16, 0.08);
        let first = sim.run(&tm, 100, 1000, 10_000).clone();
        let second = sim.run(&tm, 100, 1000, 10_000);
        assert_eq!(&first, second);
    }

    #[test]
    fn congestion_raises_latency() {
        let mut sim = mesh_sim(4, 4);
        let light = sim
            .run(&TrafficMatrix::uniform(16, 0.02), 300, 2000, 20_000)
            .clone();
        let heavy = sim.run(&TrafficMatrix::uniform(16, 0.25), 300, 2000, 20_000);
        assert!(heavy.avg_latency() > light.avg_latency());
    }

    fn line_with_wireless(len: usize) -> (Topology, WirelessOverlay) {
        let mut topo = Topology::new(
            (0..len)
                .map(|i| crate::node::Position::new(i as f64 * 2.5, 0.0))
                .collect(),
            crate::topology::TopologyKind::Custom,
        );
        for i in 0..len - 1 {
            topo.add_link(NodeId(i), NodeId(i + 1)).unwrap();
        }
        let overlay = WirelessOverlay::new(
            vec![
                WirelessInterface {
                    node: NodeId(0),
                    channel: ChannelId(0),
                },
                WirelessInterface {
                    node: NodeId(len - 1),
                    channel: ChannelId(0),
                },
            ],
            1,
        )
        .unwrap();
        (topo, overlay)
    }

    #[test]
    fn wireless_carries_long_distance_traffic() {
        let (topo, overlay) = line_with_wireless(20);
        let table = RoutingTable::up_down(&topo, &overlay).unwrap();
        let mut sim = NetworkSim::new(
            topo,
            overlay,
            table,
            EnergyModel::default_65nm(),
            SimConfig::default(),
        )
        .unwrap();
        let mut tm = TrafficMatrix::zeros(20);
        tm.set(NodeId(0), NodeId(19), 0.02);
        let stats = sim.run(&tm, 100, 3000, 20_000);
        assert!(stats.packets_delivered > 0);
        assert!(stats.wireless_flit_hops > 0, "wireless must be used");
        assert_eq!(stats.in_flight_at_end, 0);
        // End-to-end over wireless is far faster than 19 wire hops.
        assert!(stats.avg_latency() < 19.0 + 10.0);
        assert!(stats.energy.wireless_pj > 0.0);
    }

    #[test]
    fn wireless_contention_shares_channel() {
        // Four WIs on one channel, cross traffic: everything still drains.
        let mut topo = Topology::new(
            grid_positions(4, 4, 2.5),
            crate::topology::TopologyKind::Custom,
        );
        // Sparse wired ring so wireless is attractive.
        let ring = [0usize, 1, 2, 3, 7, 11, 15, 14, 13, 12, 8, 4];
        for i in 0..ring.len() {
            topo.add_link(NodeId(ring[i]), NodeId(ring[(i + 1) % ring.len()]))
                .unwrap();
        }
        topo.add_link(NodeId(5), NodeId(4)).unwrap();
        topo.add_link(NodeId(6), NodeId(7)).unwrap();
        topo.add_link(NodeId(9), NodeId(8)).unwrap();
        topo.add_link(NodeId(10), NodeId(11)).unwrap();
        let overlay = WirelessOverlay::new(
            vec![
                WirelessInterface {
                    node: NodeId(0),
                    channel: ChannelId(0),
                },
                WirelessInterface {
                    node: NodeId(3),
                    channel: ChannelId(0),
                },
                WirelessInterface {
                    node: NodeId(12),
                    channel: ChannelId(0),
                },
                WirelessInterface {
                    node: NodeId(15),
                    channel: ChannelId(0),
                },
            ],
            1,
        )
        .unwrap();
        let table = RoutingTable::up_down(&topo, &overlay).unwrap();
        let mut sim = NetworkSim::new(
            topo,
            overlay,
            table,
            EnergyModel::default_65nm(),
            SimConfig::default(),
        )
        .unwrap();
        let mut tm = TrafficMatrix::zeros(16);
        tm.set(NodeId(0), NodeId(15), 0.02);
        tm.set(NodeId(3), NodeId(12), 0.02);
        tm.set(NodeId(15), NodeId(0), 0.02);
        let stats = sim.run(&tm, 200, 3000, 30_000);
        assert_eq!(stats.in_flight_at_end, 0, "channel sharing must not wedge");
        assert!(stats.packets_delivered > 0);
    }

    #[test]
    fn slower_clocks_increase_latency() {
        let tm = TrafficMatrix::uniform(16, 0.03);
        let mut fast = mesh_sim(4, 4);
        let fast_stats = fast.run(&tm, 200, 2000, 20_000);
        let mut slow = NetworkSim::with_clocks(
            mesh(4, 4, 2.5),
            WirelessOverlay::none(),
            RoutingTable::xy(4, 4),
            EnergyModel::default_65nm(),
            SimConfig::default(),
            vec![0.5; 16],
            vec![0; 16],
        )
        .unwrap();
        let slow_stats = slow.run(&tm, 200, 2000, 20_000);
        assert!(
            slow_stats.avg_latency() > 1.5 * fast_stats.avg_latency(),
            "slow {} fast {}",
            slow_stats.avg_latency(),
            fast_stats.avg_latency()
        );
        assert_eq!(slow_stats.in_flight_at_end, 0);
    }

    #[test]
    fn domain_crossing_pays_sync_penalty() {
        let tm = {
            let mut t = TrafficMatrix::zeros(16);
            t.set(NodeId(0), NodeId(3), 0.01);
            t
        };
        let run = |domains: Vec<usize>, penalty: u64| {
            let cfg = SimConfig {
                sync_penalty: penalty,
                ..SimConfig::default()
            };
            let mut sim = NetworkSim::with_clocks(
                mesh(4, 4, 2.5),
                WirelessOverlay::none(),
                RoutingTable::xy(4, 4),
                EnergyModel::default_65nm(),
                cfg,
                vec![1.0; 16],
                domains,
            )
            .unwrap();
            sim.run(&tm, 100, 2000, 10_000).avg_latency()
        };
        let same = run(vec![0; 16], 3);
        // Domain boundary between columns 1 and 2.
        let split: Vec<usize> = (0..16).map(|i| usize::from(i % 4 >= 2)).collect();
        let cross = run(split, 3);
        assert!(cross > same, "cross {cross} same {same}");
    }

    #[test]
    fn rejects_mismatched_table() {
        let err = NetworkSim::new(
            mesh(4, 4, 1.0),
            WirelessOverlay::none(),
            RoutingTable::xy(3, 3),
            EnergyModel::default_65nm(),
            SimConfig::default(),
        )
        .unwrap_err();
        assert!(matches!(err, SimError::TableSizeMismatch { .. }));
    }

    #[test]
    fn rejects_bad_speeds() {
        let err = NetworkSim::with_clocks(
            mesh(2, 2, 1.0),
            WirelessOverlay::none(),
            RoutingTable::xy(2, 2),
            EnergyModel::default_65nm(),
            SimConfig::default(),
            vec![1.0, 0.0, 1.0, 1.0],
            vec![0; 4],
        )
        .unwrap_err();
        assert_eq!(err, SimError::InvalidSpeeds);
    }

    #[test]
    fn rejects_zero_packet_len() {
        let cfg = SimConfig {
            packet_len: 0,
            ..SimConfig::default()
        };
        let err = NetworkSim::new(
            mesh(2, 2, 1.0),
            WirelessOverlay::none(),
            RoutingTable::xy(2, 2),
            EnergyModel::default_65nm(),
            cfg,
        )
        .unwrap_err();
        assert_eq!(err, SimError::InvalidConfig);
    }

    #[test]
    fn adaptive_requires_two_vcs() {
        let cfg = SimConfig {
            adaptive: true,
            vcs: 1,
            ..SimConfig::default()
        };
        let err = NetworkSim::new(
            mesh(2, 2, 1.0),
            WirelessOverlay::none(),
            RoutingTable::xy(2, 2),
            EnergyModel::default_65nm(),
            cfg,
        )
        .unwrap_err();
        assert_eq!(err, SimError::InvalidConfig);
    }

    fn adaptive_mesh_sim(cols: usize, rows: usize) -> NetworkSim<'static> {
        let cfg = SimConfig {
            vcs: 2,
            adaptive: true,
            ..SimConfig::default()
        };
        NetworkSim::new(
            mesh(cols, rows, 2.5),
            WirelessOverlay::none(),
            RoutingTable::xy(cols, rows),
            EnergyModel::default_65nm(),
            cfg,
        )
        .unwrap()
    }

    #[test]
    fn adaptive_mesh_conserves_packets() {
        let mut sim = adaptive_mesh_sim(4, 4);
        let stats = sim.run(&TrafficMatrix::uniform(16, 0.05), 200, 2000, 30_000);
        assert_eq!(stats.in_flight_at_end, 0, "adaptive network must drain");
        assert_eq!(stats.packets_delivered, stats.packets_injected);
        assert_eq!(stats.flits_delivered, 4 * stats.packets_delivered);
    }

    #[test]
    fn adaptive_relieves_transpose_hotspots() {
        // Transpose traffic concentrates on the diagonal under XY routing;
        // minimal adaptive routing spreads it over both dimension orders.
        let tm = TrafficMatrix::transpose(8, 0.05);
        let mut xy = mesh_sim(8, 8);
        let base = xy.run(&tm, 500, 4000, 60_000);
        let mut ad = adaptive_mesh_sim(8, 8);
        let adaptive = ad.run(&tm, 500, 4000, 60_000);
        assert_eq!(adaptive.in_flight_at_end, 0);
        assert!(
            adaptive.avg_latency() < base.avg_latency(),
            "adaptive {} vs XY {}",
            adaptive.avg_latency(),
            base.avg_latency()
        );
        // Most hops actually use the adaptive channels.
        assert!(
            adaptive.adaptive_share() > 0.5,
            "{}",
            adaptive.adaptive_share()
        );
        assert_eq!(base.adaptive_share(), 0.0);
    }

    #[test]
    fn adaptive_raises_small_world_capacity() {
        // The up*/down*-routed small world saturates around 0.03 pkts/cyc
        // per node; two VCs with minimal adaptive routing push the knee out.
        let clusters: Vec<usize> = (0..64).map(|i| (i % 8) / 4 + 2 * ((i / 8) / 4)).collect();
        let topo = SmallWorldBuilder::new(grid_positions(8, 8, 2.5), clusters)
            .alpha(1.5)
            .seed(1)
            .build()
            .unwrap();
        let table = RoutingTable::up_down(&topo, &WirelessOverlay::none()).unwrap();
        let tm = TrafficMatrix::uniform(64, 0.03);
        let mut escape_only = NetworkSim::new(
            topo.clone(),
            WirelessOverlay::none(),
            table.clone(),
            EnergyModel::default_65nm(),
            SimConfig::default(),
        )
        .unwrap();
        let base = escape_only.run(&tm, 500, 3000, 60_000);
        let cfg = SimConfig {
            vcs: 2,
            adaptive: true,
            ..SimConfig::default()
        };
        let mut adaptive = NetworkSim::new(
            topo,
            WirelessOverlay::none(),
            table,
            EnergyModel::default_65nm(),
            cfg,
        )
        .unwrap();
        let ad = adaptive.run(&tm, 500, 3000, 60_000);
        assert!(
            ad.avg_latency() < base.avg_latency() * 0.5,
            "adaptive {} vs escape-only {}",
            ad.avg_latency(),
            base.avg_latency()
        );
        assert_eq!(ad.in_flight_at_end, 0);
    }

    #[test]
    fn adaptive_is_deterministic() {
        let tm = TrafficMatrix::uniform(16, 0.06);
        let mut a = adaptive_mesh_sim(4, 4);
        let mut b = adaptive_mesh_sim(4, 4);
        assert_eq!(a.run(&tm, 100, 1500, 20_000), b.run(&tm, 100, 1500, 20_000));
    }

    #[test]
    fn fast_forward_engages_during_drain() {
        // A deep router pipeline keeps drain-phase flits mid-pipeline most
        // cycles, so the drain loop should jump rather than idle-step.
        let cfg = SimConfig {
            router_delay: 8,
            ..SimConfig::default()
        };
        let mut sim = NetworkSim::new(
            mesh(4, 4, 2.5),
            WirelessOverlay::none(),
            RoutingTable::xy(4, 4),
            EnergyModel::default_65nm(),
            cfg,
        )
        .unwrap();
        let mut tm = TrafficMatrix::zeros(16);
        tm.set(NodeId(0), NodeId(15), 0.05);
        let in_flight = sim.run(&tm, 0, 400, 20_000).in_flight_at_end;
        assert_eq!(in_flight, 0);
        assert!(
            sim.fast_forwarded_cycles() > 0,
            "drain should fast-forward through pipeline stalls"
        );
    }

    #[test]
    fn fast_forward_matches_wireless_goldens_rerun() {
        // Re-running the same wireless configuration must be bit-identical
        // even though drains interleave stepping and fast-forwarding.
        let (topo, overlay) = line_with_wireless(12);
        let table = RoutingTable::up_down(&topo, &overlay).unwrap();
        let mut sim = NetworkSim::new(
            topo,
            overlay,
            table,
            EnergyModel::default_65nm(),
            SimConfig::default(),
        )
        .unwrap();
        let mut tm = TrafficMatrix::zeros(12);
        tm.set(NodeId(0), NodeId(11), 0.01);
        tm.set(NodeId(11), NodeId(0), 0.005);
        let first = sim.run(&tm, 100, 1500, 20_000).clone();
        let second = sim.run(&tm, 100, 1500, 20_000);
        assert_eq!(&first, second);
        assert_eq!(first.in_flight_at_end, 0);
    }

    #[test]
    fn small_world_full_sweep_drains() {
        let clusters: Vec<usize> = (0..64).map(|i| (i % 8) / 4 + 2 * ((i / 8) / 4)).collect();
        let topo = SmallWorldBuilder::new(grid_positions(8, 8, 2.5), clusters)
            .seed(1)
            .build()
            .unwrap();
        let table = RoutingTable::up_down(&topo, &WirelessOverlay::none()).unwrap();
        let mut sim = NetworkSim::new(
            topo,
            WirelessOverlay::none(),
            table,
            EnergyModel::default_65nm(),
            SimConfig::default(),
        )
        .unwrap();
        let stats = sim.run(&TrafficMatrix::uniform(64, 0.03), 300, 2000, 30_000);
        assert_eq!(stats.in_flight_at_end, 0);
        assert!(stats.packets_delivered > 100);
    }
}

//! Cycle-accurate network simulation.
//!
//! [`NetworkSim`] advances a wormhole-switched network cycle by cycle:
//! flits are injected by a Bernoulli process driven by a
//! [`crate::traffic::TrafficMatrix`] sampling, traverse input-buffered
//! switches under round-robin arbitration with credit-based flow control,
//! optionally hop across token-arbitrated wireless channels, and are ejected
//! at their destinations, accumulating latency and energy statistics.
//!
//! ## Clocking and VFI
//!
//! Each switch belongs to a clock domain and runs at a relative speed in
//! `(0, 1]` of the fastest domain; a switch only operates on cycles its
//! fractional clock accumulator fires. Flits crossing clock-domain
//! boundaries pay a mixed-clock FIFO synchronisation penalty. This models
//! the VFI-partitioned NoC of the paper, where each island's switches are
//! clocked at the island's frequency.

use crate::energy::EnergyModel;
use crate::flit::{flits_of, Flit, PacketId};
use crate::mac::{macs_for, ChannelMac};
use crate::node::NodeId;
use crate::routing::{Hop, Phase, RoutingTable};
use crate::stats::NetworkStats;
use crate::switch::{OutRoute, Owner, PortMap, SwitchState, PORT_LOCAL};
use crate::topology::wireless::WirelessOverlay;
use crate::topology::Topology;
use crate::traffic::{Injector, TrafficMatrix};
use mapwave_harness::rng::SeedableRng;
use mapwave_harness::rng::StdRng;
use mapwave_harness::telemetry;
use std::collections::VecDeque;

/// Tunable microarchitecture parameters of the simulated network.
#[derive(Debug, Clone, PartialEq)]
pub struct SimConfig {
    /// Input FIFO depth of ordinary ports, in flits (paper: 2).
    pub buffer_depth: usize,
    /// Input FIFO depth of wireless-interface ports, in flits (paper: 8).
    pub wi_buffer_depth: usize,
    /// Flits per packet.
    pub packet_len: usize,
    /// Extra cycles a flit pays when crossing clock-domain boundaries
    /// (mixed-clock FIFO synchronisation).
    pub sync_penalty: u64,
    /// Router pipeline depth: extra cycles a flit spends in each switch
    /// (buffer write, route compute, VC/switch allocation) beyond the
    /// single traversal cycle.
    pub router_delay: u64,
    /// Virtual channels per port. With 1 VC the router is the paper's
    /// plain wormhole switch; with ≥ 2, VC 0 is a deadlock-free *escape*
    /// channel following the routing table and the upper VCs are available
    /// for adaptive traffic (see [`SimConfig::adaptive`]).
    pub vcs: usize,
    /// Duato-style minimal adaptive routing (an extension beyond the
    /// paper's router): head flits on the upper VCs may take any wired
    /// neighbour that strictly reduces the hop distance, falling back to
    /// the escape VC (table-routed, deadlock-free) whenever the adaptive
    /// channels are blocked. Escape packets never return to the adaptive
    /// VCs — the conservative sufficient condition for deadlock freedom.
    /// Requires `vcs >= 2`.
    pub adaptive: bool,
    /// RNG seed for the injection process.
    pub seed: u64,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            buffer_depth: 2,
            wi_buffer_depth: 8,
            packet_len: 4,
            sync_penalty: 1,
            router_delay: 2,
            vcs: 1,
            adaptive: false,
            seed: 0,
        }
    }
}

/// Errors from [`NetworkSim::new`].
#[derive(Debug, Clone, PartialEq)]
pub enum SimError {
    /// Routing table size doesn't match the topology.
    TableSizeMismatch {
        /// Nodes in the topology.
        topology: usize,
        /// Nodes covered by the table.
        table: usize,
    },
    /// Per-switch speed vector has the wrong length or invalid values.
    InvalidSpeeds,
    /// Clock-domain vector has the wrong length.
    InvalidDomains,
    /// Buffer depths, packet length or VC count of zero, or adaptive
    /// routing without at least two VCs.
    InvalidConfig,
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::TableSizeMismatch { topology, table } => write!(
                f,
                "routing table covers {table} nodes but topology has {topology}"
            ),
            SimError::InvalidSpeeds => {
                write!(f, "switch speeds must have one entry in (0,1] per node")
            }
            SimError::InvalidDomains => {
                write!(f, "clock domains must have one entry per node")
            }
            SimError::InvalidConfig => {
                write!(f, "buffer depths and packet length must be nonzero")
            }
        }
    }
}

impl std::error::Error for SimError {}

/// A cycle-accurate simulator instance for one network configuration.
///
/// # Examples
///
/// ```
/// use mapwave_noc::sim::{NetworkSim, SimConfig};
/// use mapwave_noc::routing::RoutingTable;
/// use mapwave_noc::topology::mesh::mesh;
/// use mapwave_noc::topology::wireless::WirelessOverlay;
/// use mapwave_noc::traffic::TrafficMatrix;
/// use mapwave_noc::energy::EnergyModel;
///
/// let topo = mesh(4, 4, 2.5);
/// let table = RoutingTable::xy(4, 4);
/// let mut sim = NetworkSim::new(
///     topo,
///     WirelessOverlay::none(),
///     table,
///     EnergyModel::default_65nm(),
///     SimConfig::default(),
/// )?;
/// let traffic = TrafficMatrix::uniform(16, 0.02);
/// let stats = sim.run(&traffic, 500, 2000, 5000);
/// assert!(stats.packets_delivered > 0);
/// assert!(stats.avg_latency() > 0.0);
/// # Ok::<(), mapwave_noc::sim::SimError>(())
/// ```
#[derive(Debug, Clone)]
pub struct NetworkSim {
    topo: Topology,
    overlay: WirelessOverlay,
    table: RoutingTable,
    ports: PortMap,
    energy_model: EnergyModel,
    cfg: SimConfig,
    speeds: Vec<f64>,
    domains: Vec<usize>,

    switches: Vec<SwitchState>,
    macs: Vec<ChannelMac>,
    src_q: Vec<VecDeque<Flit>>,
    now: u64,
    next_packet: u64,
    measure_start: u64,
    measure_end: u64,
    injected_measured: u64,
    delivered_measured: u64,
    stats: NetworkStats,
    /// Measured flits per directed wire link (`from * n + to`).
    link_flits: Vec<u64>,
    /// All-pairs wireline hop distances (adaptive routing only).
    hop_dist: Vec<Vec<usize>>,
}

impl NetworkSim {
    /// Creates a simulator over `topo` with uniform full-speed clocks.
    ///
    /// # Errors
    ///
    /// See [`SimError`].
    pub fn new(
        topo: Topology,
        overlay: WirelessOverlay,
        table: RoutingTable,
        energy_model: EnergyModel,
        cfg: SimConfig,
    ) -> Result<Self, SimError> {
        let n = topo.len();
        Self::with_clocks(
            topo,
            overlay,
            table,
            energy_model,
            cfg,
            vec![1.0; n],
            vec![0; n],
        )
    }

    /// Creates a simulator with per-switch clock speeds (relative to the
    /// fastest domain, in `(0, 1]`) and clock-domain labels (flits crossing
    /// domains pay [`SimConfig::sync_penalty`]).
    ///
    /// # Errors
    ///
    /// See [`SimError`].
    pub fn with_clocks(
        topo: Topology,
        overlay: WirelessOverlay,
        table: RoutingTable,
        energy_model: EnergyModel,
        cfg: SimConfig,
        speeds: Vec<f64>,
        domains: Vec<usize>,
    ) -> Result<Self, SimError> {
        let n = topo.len();
        if table.len() != n {
            return Err(SimError::TableSizeMismatch {
                topology: n,
                table: table.len(),
            });
        }
        if speeds.len() != n || speeds.iter().any(|&s| !(s > 0.0 && s <= 1.0)) {
            return Err(SimError::InvalidSpeeds);
        }
        if domains.len() != n {
            return Err(SimError::InvalidDomains);
        }
        if cfg.buffer_depth == 0
            || cfg.wi_buffer_depth == 0
            || cfg.packet_len == 0
            || cfg.vcs == 0
            || (cfg.adaptive && cfg.vcs < 2)
        {
            return Err(SimError::InvalidConfig);
        }
        let ports = PortMap::new(&topo, &overlay);
        let switches = (0..n)
            .map(|v| {
                let v = NodeId(v);
                let count = ports.port_count(v);
                let caps = (0..count)
                    .map(|p| {
                        if Some(p) == ports.wireless_port(v) {
                            cfg.wi_buffer_depth
                        } else {
                            cfg.buffer_depth
                        }
                    })
                    .collect();
                SwitchState::new(caps, cfg.vcs)
            })
            .collect();
        let macs = macs_for(&overlay);
        let hop_dist = if cfg.adaptive {
            topo.hop_counts()
        } else {
            Vec::new()
        };
        Ok(NetworkSim {
            link_flits: vec![0; n * n],
            hop_dist,
            src_q: vec![VecDeque::new(); n],
            switches,
            macs,
            topo,
            overlay,
            table,
            ports,
            energy_model,
            cfg,
            speeds,
            domains,
            now: 0,
            next_packet: 0,
            measure_start: 0,
            measure_end: u64::MAX,
            injected_measured: 0,
            delivered_measured: 0,
            stats: NetworkStats::default(),
        })
    }

    /// The topology being simulated.
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// The routing table in use.
    pub fn routing(&self) -> &RoutingTable {
        &self.table
    }

    fn reset(&mut self) {
        for s in &mut self.switches {
            for port in &mut s.in_buf {
                for vc in port {
                    vc.clear();
                }
            }
            for port in &mut s.in_route {
                port.iter_mut().for_each(|r| *r = None);
            }
            for port in &mut s.out_owner {
                port.iter_mut().for_each(|o| *o = None);
            }
            s.rr_next = 0;
            s.clock_acc = 0.0;
        }
        self.macs = macs_for(&self.overlay);
        for q in &mut self.src_q {
            q.clear();
        }
        self.now = 0;
        self.next_packet = 0;
        self.injected_measured = 0;
        self.delivered_measured = 0;
        self.stats = NetworkStats::default();
        self.link_flits.iter_mut().for_each(|c| *c = 0);
    }

    /// Runs `warmup` cycles, then `measure` cycles of measured injection,
    /// then drains in-flight measured packets for up to `drain_limit`
    /// cycles, and returns the statistics of the measurement window.
    ///
    /// The simulator state is reset first, so a `NetworkSim` can be reused
    /// across traffic patterns.
    pub fn run(
        &mut self,
        traffic: &TrafficMatrix,
        warmup: u64,
        measure: u64,
        drain_limit: u64,
    ) -> NetworkStats {
        let _span = telemetry::span("noc.sim.run");
        self.reset();
        self.measure_start = warmup;
        self.measure_end = warmup + measure;
        let injector = Injector::new(traffic);
        let mut rng = StdRng::seed_from_u64(self.cfg.seed);

        for _ in 0..warmup + measure {
            self.step(Some((&injector, &mut rng)));
        }
        let mut drained = 0u64;
        while drained < drain_limit && self.delivered_measured < self.injected_measured {
            self.step(None);
            drained += 1;
        }
        self.stats.cycles = measure;
        self.stats.packets_injected = self.injected_measured;
        self.stats.in_flight_at_end = self.injected_measured - self.delivered_measured;
        let n = self.topo.len();
        self.stats.link_loads = (0..n * n)
            .filter(|&idx| self.link_flits[idx] > 0)
            .map(|idx| crate::stats::LinkLoad {
                from: NodeId(idx / n),
                to: NodeId(idx % n),
                flits: self.link_flits[idx],
            })
            .collect();
        telemetry::count("noc.packets_injected", self.stats.packets_injected);
        telemetry::count("noc.packets_delivered", self.stats.packets_delivered);
        telemetry::count("noc.flits_delivered", self.stats.flits_delivered);
        self.stats.clone()
    }

    /// Whether a flit (packet) is inside the measurement window.
    fn measured(&self, f: &Flit) -> bool {
        f.created >= self.measure_start && f.created < self.measure_end
    }

    /// One global clock cycle.
    fn step(&mut self, mut inject: Option<(&Injector, &mut StdRng)>) {
        let n = self.topo.len();

        // 1. Packet generation into source queues.
        if let Some((injector, rng)) = inject.as_mut() {
            for s in 0..n {
                if let Some(d) = injector.sample(NodeId(s), rng) {
                    if d.index() != s {
                        let id = PacketId(self.next_packet);
                        self.next_packet += 1;
                        let flits = flits_of(id, NodeId(s), d, self.cfg.packet_len, self.now);
                        if self.now >= self.measure_start && self.now < self.measure_end {
                            self.injected_measured += 1;
                        }
                        self.src_q[s].extend(flits);
                    }
                }
            }
        }

        // 2. Move one flit per node from the source queue into the local
        //    input port. New packets start on the top VC (the adaptive one
        //    when adaptive routing is on).
        let inject_vc = if self.cfg.adaptive {
            self.cfg.vcs - 1
        } else {
            0
        };
        for s in 0..n {
            if !self.src_q[s].is_empty() && self.switches[s].space(PORT_LOCAL, inject_vc) > 0 {
                let mut f = self.src_q[s].pop_front().expect("checked nonempty");
                // Entering the injection port costs the router pipeline too.
                f.ready_at = f.ready_at.max(self.now + self.cfg.router_delay);
                self.switches[s].in_buf[PORT_LOCAL][inject_vc].push_back(f);
            }
        }

        // 3. Clock gating: decide which switches fire this cycle.
        let mut fires = vec![false; n];
        #[allow(clippy::needless_range_loop)] // lockstep over two arrays
        for v in 0..n {
            self.switches[v].clock_acc += self.speeds[v];
            if self.switches[v].clock_acc >= 1.0 {
                self.switches[v].clock_acc -= 1.0;
                fires[v] = true;
            }
        }

        // 4. MAC: snapshot holders and usage flags per channel.
        let holders: Vec<Option<NodeId>> = self.macs.iter().map(ChannelMac::holder).collect();
        let mut channel_used = vec![false; self.macs.len()];

        // 5. Switch operation.
        #[allow(clippy::needless_range_loop)] // lockstep over two arrays
        for v in 0..n {
            if fires[v] {
                self.process_switch(NodeId(v), &holders, &mut channel_used);
            }
        }

        // 6. MAC bookkeeping.
        for (c, mac) in self.macs.iter_mut().enumerate() {
            let holds_packet = holders[c].is_some_and(|h| {
                let wp = self.ports.wireless_port(h);
                wp.is_some_and(|wp| {
                    self.switches[h.index()].out_owner[wp]
                        .iter()
                        .any(Option::is_some)
                })
            });
            mac.end_cycle(channel_used[c], holds_packet);
        }

        self.now += 1;
    }

    /// Translates an escape-table entry into a concrete route (down-VC 0).
    fn escape_route(&self, v: NodeId, phase: Phase, dest: NodeId) -> (OutRoute, Phase) {
        let entry = self.table.next_hop(v, phase, dest);
        let route = match entry.hop {
            Hop::Local => OutRoute {
                out_port: PORT_LOCAL,
                wireless_to: None,
                down_vc: 0,
            },
            Hop::Wire(w) => OutRoute {
                out_port: self.ports.wire_port(v, w),
                wireless_to: None,
                down_vc: 0,
            },
            Hop::Wireless { to, .. } => OutRoute {
                out_port: self
                    .ports
                    .wireless_port(v)
                    .expect("route uses wireless at a non-WI switch"),
                wireless_to: Some(to),
                down_vc: 0,
            },
        };
        (route, entry.next_phase)
    }

    /// Routes a head flit at `(v, in-VC vc)`: the escape VC follows the
    /// table; adaptive VCs take any free minimal wired hop and fall back to
    /// the escape channel when blocked (conservative Duato).
    fn route_head(
        &self,
        v: NodeId,
        vc: usize,
        f: &Flit,
        out_used: &[bool],
    ) -> (OutRoute, Option<Phase>) {
        if f.dest == v {
            return (
                OutRoute {
                    out_port: PORT_LOCAL,
                    wireless_to: None,
                    down_vc: 0,
                },
                None,
            );
        }
        if vc == 0 || !self.cfg.adaptive {
            let (route, next_phase) = self.escape_route(v, f.phase, f.dest);
            return (route, Some(next_phase));
        }
        // Adaptive: any wired neighbour strictly closer to the destination,
        // preferring the one with the most free downstream adaptive space.
        let sw = &self.switches[v.index()];
        let my_dist = self.hop_dist[v.index()][f.dest.index()];
        let mut best: Option<(usize, OutRoute)> = None; // (space, route)
        for &w in self.topo.neighbors(v) {
            if self.hop_dist[w.index()][f.dest.index()] >= my_dist {
                continue;
            }
            let o = self.ports.wire_port(v, w);
            if out_used[o] {
                continue;
            }
            let wp = self.ports.wire_port(w, v);
            // Pick the free downstream adaptive VC with the most space.
            let Some((dvc, space)) = (1..self.cfg.vcs)
                .filter(|&c| sw.out_owner[o][c].is_none())
                .map(|c| (c, self.switches[w.index()].space(wp, c)))
                .max_by_key(|&(c, s)| (s, usize::MAX - c))
            else {
                continue;
            };
            if space == 0 {
                continue;
            }
            if best.as_ref().is_none_or(|(bs, _)| space > *bs) {
                best = Some((
                    space,
                    OutRoute {
                        out_port: o,
                        wireless_to: None,
                        down_vc: dvc,
                    },
                ));
            }
        }
        match best {
            Some((_, route)) => (route, None),
            None => {
                // All minimal adaptive channels blocked: drain via the
                // escape network, restarting the up*/down* phase here.
                let (route, next_phase) = self.escape_route(v, Phase::Up, f.dest);
                (route, Some(next_phase))
            }
        }
    }

    /// Moves flits through one switch for one of its active cycles.
    fn process_switch(&mut self, v: NodeId, holders: &[Option<NodeId>], channel_used: &mut [bool]) {
        let ports = self.ports.port_count(v);
        let vcs = self.cfg.vcs;
        let mut out_used = vec![false; ports];

        // Pass A: continue established wormholes.
        for p in 0..ports {
            for vc in 0..vcs {
                if let Some(route) = self.switches[v.index()].in_route[p][vc] {
                    self.try_advance(
                        v,
                        p,
                        vc,
                        route,
                        None,
                        &mut out_used,
                        holders,
                        channel_used,
                        false,
                    );
                }
            }
        }

        // Pass B: route new head flits, round-robin over input ports
        // (escape VC first within a port, so draining traffic keeps
        // priority over fresh adaptive traffic).
        let start = self.switches[v.index()].rr_next;
        for off in 0..ports {
            let p = (start + off) % ports;
            for vc in 0..vcs {
                if self.switches[v.index()].in_route[p][vc].is_some() {
                    continue;
                }
                let Some(f) = self.switches[v.index()].in_buf[p][vc].front().copied() else {
                    continue;
                };
                if f.ready_at > self.now || !f.kind.is_head() {
                    continue;
                }
                let (route, next_phase) = self.route_head(v, vc, &f, &out_used);
                let o = route.out_port;
                if out_used[o] || self.switches[v.index()].out_owner[o][route.down_vc].is_some() {
                    continue;
                }
                let moved = self.try_advance(
                    v,
                    p,
                    vc,
                    route,
                    next_phase,
                    &mut out_used,
                    holders,
                    channel_used,
                    true,
                );
                if moved {
                    self.switches[v.index()].rr_next = (p + 1) % ports;
                }
            }
        }
    }

    /// Attempts to move the head flit of input `(p, vc)` at switch `v`
    /// along `route`. Head flits take `next_phase` with them only when the
    /// move succeeds (a blocked flit must keep its pre-hop routing state).
    /// Returns whether a flit moved.
    #[allow(clippy::too_many_arguments)]
    fn try_advance(
        &mut self,
        v: NodeId,
        p: usize,
        vc: usize,
        route: OutRoute,
        next_phase: Option<crate::routing::Phase>,
        out_used: &mut [bool],
        holders: &[Option<NodeId>],
        channel_used: &mut [bool],
        is_new_packet: bool,
    ) -> bool {
        let o = route.out_port;
        if out_used[o] {
            return false;
        }
        let Some(&f) = self.switches[v.index()].in_buf[p][vc].front() else {
            return false;
        };
        if f.ready_at > self.now {
            return false;
        }

        let measured = self.measured(&f);
        let radix = self.ports.radix(v);

        enum Dest {
            Eject,
            Into(NodeId, usize, u64, f64, bool), // node, port, penalty, link energy, wireless
        }

        let dest = if o == PORT_LOCAL {
            Dest::Eject
        } else if Some(o) == self.ports.wireless_port(v) {
            let to = route.wireless_to.expect("wireless route carries target");
            let ch = self
                .overlay
                .channel_of(v)
                .expect("WI switch has a channel")
                .index();
            if holders[ch] != Some(v) || channel_used[ch] {
                return false;
            }
            let tp = self
                .ports
                .wireless_port(to)
                .expect("wireless target is a WI");
            if self.switches[to.index()].space(tp, route.down_vc) == 0 {
                return false;
            }
            let penalty = if self.domains[v.index()] != self.domains[to.index()] {
                self.cfg.sync_penalty
            } else {
                0
            };
            Dest::Into(
                to,
                tp,
                penalty,
                self.energy_model.wireless_energy_pj(),
                true,
            )
        } else {
            let w = self.ports.peer(v, o).expect("wired port has a peer");
            let wp = self.ports.wire_port(w, v);
            if self.switches[w.index()].space(wp, route.down_vc) == 0 {
                return false;
            }
            let penalty = if self.domains[v.index()] != self.domains[w.index()] {
                self.cfg.sync_penalty
            } else {
                0
            };
            let e = self
                .energy_model
                .wire_energy_pj(self.topo.link_length_mm(v, w));
            Dest::Into(w, wp, penalty, e, false)
        };

        // Commit the move.
        let mut f = self.switches[v.index()].in_buf[p][vc]
            .pop_front()
            .expect("head flit present");
        if let Some(ph) = next_phase {
            f.phase = ph;
        }
        if measured {
            self.stats.energy.switch_pj += self.energy_model.switch_energy_pj(radix);
        }
        match dest {
            Dest::Eject => {
                if measured {
                    self.stats.flits_delivered += 1;
                    if f.kind.is_tail() {
                        let latency = self.now + 1 - f.created;
                        self.stats.packets_delivered += 1;
                        self.stats.latency_sum += latency;
                        self.stats.max_latency = self.stats.max_latency.max(latency);
                        self.stats.record_latency(latency);
                        self.delivered_measured += 1;
                    }
                } else if f.kind.is_tail() && f.created >= self.measure_start {
                    // Tail of a packet injected after the window; ignore.
                }
            }
            Dest::Into(w, wp, penalty, link_pj, wireless) => {
                f.ready_at = self.now + 1 + self.cfg.router_delay + penalty;
                if measured {
                    if wireless {
                        self.stats.energy.wireless_pj += link_pj;
                        self.stats.wireless_flit_hops += 1;
                    } else {
                        self.stats.energy.wire_pj += link_pj;
                        self.stats.wire_flit_hops += 1;
                        if route.down_vc > 0 {
                            self.stats.adaptive_flit_hops += 1;
                        }
                        self.link_flits[v.index() * self.topo.len() + w.index()] += 1;
                    }
                }
                if wireless {
                    let ch = self
                        .overlay
                        .channel_of(v)
                        .expect("WI switch has a channel")
                        .index();
                    channel_used[ch] = true;
                }
                self.switches[w.index()].in_buf[wp][route.down_vc].push_back(f);
            }
        }
        out_used[o] = true;

        // Wormhole bookkeeping.
        if f.kind.is_tail() {
            self.switches[v.index()].in_route[p][vc] = None;
            self.switches[v.index()].out_owner[o][route.down_vc] = None;
        } else if is_new_packet {
            self.switches[v.index()].in_route[p][vc] = Some(route);
            self.switches[v.index()].out_owner[o][route.down_vc] = Some(Owner {
                in_port: p,
                in_vc: vc,
            });
        }
        true
    }

    /// Total flits currently buffered anywhere in the network (diagnostics).
    pub fn buffered_flits(&self) -> usize {
        self.switches
            .iter()
            .map(SwitchState::occupancy)
            .sum::<usize>()
            + self.src_q.iter().map(VecDeque::len).sum::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::grid_positions;
    use crate::topology::mesh::mesh;
    use crate::topology::small_world::SmallWorldBuilder;
    use crate::topology::wireless::{ChannelId, WirelessInterface};

    fn mesh_sim(cols: usize, rows: usize) -> NetworkSim {
        NetworkSim::new(
            mesh(cols, rows, 2.5),
            WirelessOverlay::none(),
            RoutingTable::xy(cols, rows),
            EnergyModel::default_65nm(),
            SimConfig::default(),
        )
        .unwrap()
    }

    #[test]
    fn delivers_uniform_traffic() {
        let mut sim = mesh_sim(4, 4);
        let stats = sim.run(&TrafficMatrix::uniform(16, 0.05), 200, 2000, 20_000);
        assert!(stats.packets_injected > 50);
        assert_eq!(stats.in_flight_at_end, 0, "all measured packets drain");
        assert_eq!(stats.packets_delivered, stats.packets_injected);
        // 4 flits per packet.
        assert_eq!(stats.flits_delivered, 4 * stats.packets_delivered);
    }

    #[test]
    fn latency_exceeds_distance_plus_serialization() {
        let mut sim = mesh_sim(4, 4);
        let mut tm = TrafficMatrix::zeros(16);
        tm.set(NodeId(0), NodeId(15), 0.01);
        let stats = sim.run(&tm, 0, 3000, 10_000);
        assert!(stats.packets_delivered > 0);
        // distance 6 + 4 flits serialization - 1 = at least 9 cycles.
        assert!(
            stats.avg_latency() >= 9.0,
            "latency {}",
            stats.avg_latency()
        );
        assert!(
            stats.avg_latency() < 40.0,
            "latency {}",
            stats.avg_latency()
        );
    }

    #[test]
    fn energy_scales_with_distance() {
        let mut sim = mesh_sim(4, 4);
        let mut near = TrafficMatrix::zeros(16);
        near.set(NodeId(0), NodeId(1), 0.02);
        let near_stats = sim.run(&near, 100, 2000, 10_000);
        let mut far = TrafficMatrix::zeros(16);
        far.set(NodeId(0), NodeId(15), 0.02);
        let far_stats = sim.run(&far, 100, 2000, 10_000);
        assert!(
            far_stats.energy_per_flit_pj() > 2.0 * near_stats.energy_per_flit_pj(),
            "far {} near {}",
            far_stats.energy_per_flit_pj(),
            near_stats.energy_per_flit_pj()
        );
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = mesh_sim(4, 4);
        let mut b = mesh_sim(4, 4);
        let tm = TrafficMatrix::uniform(16, 0.08);
        assert_eq!(a.run(&tm, 100, 1000, 10_000), b.run(&tm, 100, 1000, 10_000));
    }

    #[test]
    fn rerun_resets_state() {
        let mut sim = mesh_sim(4, 4);
        let tm = TrafficMatrix::uniform(16, 0.08);
        let first = sim.run(&tm, 100, 1000, 10_000);
        let second = sim.run(&tm, 100, 1000, 10_000);
        assert_eq!(first, second);
    }

    #[test]
    fn congestion_raises_latency() {
        let mut sim = mesh_sim(4, 4);
        let light = sim.run(&TrafficMatrix::uniform(16, 0.02), 300, 2000, 20_000);
        let heavy = sim.run(&TrafficMatrix::uniform(16, 0.25), 300, 2000, 20_000);
        assert!(heavy.avg_latency() > light.avg_latency());
    }

    fn line_with_wireless(len: usize) -> (Topology, WirelessOverlay) {
        let mut topo = Topology::new(
            (0..len)
                .map(|i| crate::node::Position::new(i as f64 * 2.5, 0.0))
                .collect(),
            crate::topology::TopologyKind::Custom,
        );
        for i in 0..len - 1 {
            topo.add_link(NodeId(i), NodeId(i + 1)).unwrap();
        }
        let overlay = WirelessOverlay::new(
            vec![
                WirelessInterface {
                    node: NodeId(0),
                    channel: ChannelId(0),
                },
                WirelessInterface {
                    node: NodeId(len - 1),
                    channel: ChannelId(0),
                },
            ],
            1,
        )
        .unwrap();
        (topo, overlay)
    }

    #[test]
    fn wireless_carries_long_distance_traffic() {
        let (topo, overlay) = line_with_wireless(20);
        let table = RoutingTable::up_down(&topo, &overlay).unwrap();
        let mut sim = NetworkSim::new(
            topo,
            overlay,
            table,
            EnergyModel::default_65nm(),
            SimConfig::default(),
        )
        .unwrap();
        let mut tm = TrafficMatrix::zeros(20);
        tm.set(NodeId(0), NodeId(19), 0.02);
        let stats = sim.run(&tm, 100, 3000, 20_000);
        assert!(stats.packets_delivered > 0);
        assert!(stats.wireless_flit_hops > 0, "wireless must be used");
        assert_eq!(stats.in_flight_at_end, 0);
        // End-to-end over wireless is far faster than 19 wire hops.
        assert!(stats.avg_latency() < 19.0 + 10.0);
        assert!(stats.energy.wireless_pj > 0.0);
    }

    #[test]
    fn wireless_contention_shares_channel() {
        // Four WIs on one channel, cross traffic: everything still drains.
        let mut topo = Topology::new(
            grid_positions(4, 4, 2.5),
            crate::topology::TopologyKind::Custom,
        );
        // Sparse wired ring so wireless is attractive.
        let ring = [0usize, 1, 2, 3, 7, 11, 15, 14, 13, 12, 8, 4];
        for i in 0..ring.len() {
            topo.add_link(NodeId(ring[i]), NodeId(ring[(i + 1) % ring.len()]))
                .unwrap();
        }
        topo.add_link(NodeId(5), NodeId(4)).unwrap();
        topo.add_link(NodeId(6), NodeId(7)).unwrap();
        topo.add_link(NodeId(9), NodeId(8)).unwrap();
        topo.add_link(NodeId(10), NodeId(11)).unwrap();
        let overlay = WirelessOverlay::new(
            vec![
                WirelessInterface {
                    node: NodeId(0),
                    channel: ChannelId(0),
                },
                WirelessInterface {
                    node: NodeId(3),
                    channel: ChannelId(0),
                },
                WirelessInterface {
                    node: NodeId(12),
                    channel: ChannelId(0),
                },
                WirelessInterface {
                    node: NodeId(15),
                    channel: ChannelId(0),
                },
            ],
            1,
        )
        .unwrap();
        let table = RoutingTable::up_down(&topo, &overlay).unwrap();
        let mut sim = NetworkSim::new(
            topo,
            overlay,
            table,
            EnergyModel::default_65nm(),
            SimConfig::default(),
        )
        .unwrap();
        let mut tm = TrafficMatrix::zeros(16);
        tm.set(NodeId(0), NodeId(15), 0.02);
        tm.set(NodeId(3), NodeId(12), 0.02);
        tm.set(NodeId(15), NodeId(0), 0.02);
        let stats = sim.run(&tm, 200, 3000, 30_000);
        assert_eq!(stats.in_flight_at_end, 0, "channel sharing must not wedge");
        assert!(stats.packets_delivered > 0);
    }

    #[test]
    fn slower_clocks_increase_latency() {
        let tm = TrafficMatrix::uniform(16, 0.03);
        let mut fast = mesh_sim(4, 4);
        let fast_stats = fast.run(&tm, 200, 2000, 20_000);
        let mut slow = NetworkSim::with_clocks(
            mesh(4, 4, 2.5),
            WirelessOverlay::none(),
            RoutingTable::xy(4, 4),
            EnergyModel::default_65nm(),
            SimConfig::default(),
            vec![0.5; 16],
            vec![0; 16],
        )
        .unwrap();
        let slow_stats = slow.run(&tm, 200, 2000, 20_000);
        assert!(
            slow_stats.avg_latency() > 1.5 * fast_stats.avg_latency(),
            "slow {} fast {}",
            slow_stats.avg_latency(),
            fast_stats.avg_latency()
        );
        assert_eq!(slow_stats.in_flight_at_end, 0);
    }

    #[test]
    fn domain_crossing_pays_sync_penalty() {
        let tm = {
            let mut t = TrafficMatrix::zeros(16);
            t.set(NodeId(0), NodeId(3), 0.01);
            t
        };
        let run = |domains: Vec<usize>, penalty: u64| {
            let cfg = SimConfig {
                sync_penalty: penalty,
                ..SimConfig::default()
            };
            let mut sim = NetworkSim::with_clocks(
                mesh(4, 4, 2.5),
                WirelessOverlay::none(),
                RoutingTable::xy(4, 4),
                EnergyModel::default_65nm(),
                cfg,
                vec![1.0; 16],
                domains,
            )
            .unwrap();
            sim.run(&tm, 100, 2000, 10_000).avg_latency()
        };
        let same = run(vec![0; 16], 3);
        // Domain boundary between columns 1 and 2.
        let split: Vec<usize> = (0..16).map(|i| usize::from(i % 4 >= 2)).collect();
        let cross = run(split, 3);
        assert!(cross > same, "cross {cross} same {same}");
    }

    #[test]
    fn rejects_mismatched_table() {
        let err = NetworkSim::new(
            mesh(4, 4, 1.0),
            WirelessOverlay::none(),
            RoutingTable::xy(3, 3),
            EnergyModel::default_65nm(),
            SimConfig::default(),
        )
        .unwrap_err();
        assert!(matches!(err, SimError::TableSizeMismatch { .. }));
    }

    #[test]
    fn rejects_bad_speeds() {
        let err = NetworkSim::with_clocks(
            mesh(2, 2, 1.0),
            WirelessOverlay::none(),
            RoutingTable::xy(2, 2),
            EnergyModel::default_65nm(),
            SimConfig::default(),
            vec![1.0, 0.0, 1.0, 1.0],
            vec![0; 4],
        )
        .unwrap_err();
        assert_eq!(err, SimError::InvalidSpeeds);
    }

    #[test]
    fn rejects_zero_packet_len() {
        let cfg = SimConfig {
            packet_len: 0,
            ..SimConfig::default()
        };
        let err = NetworkSim::new(
            mesh(2, 2, 1.0),
            WirelessOverlay::none(),
            RoutingTable::xy(2, 2),
            EnergyModel::default_65nm(),
            cfg,
        )
        .unwrap_err();
        assert_eq!(err, SimError::InvalidConfig);
    }

    #[test]
    fn adaptive_requires_two_vcs() {
        let cfg = SimConfig {
            adaptive: true,
            vcs: 1,
            ..SimConfig::default()
        };
        let err = NetworkSim::new(
            mesh(2, 2, 1.0),
            WirelessOverlay::none(),
            RoutingTable::xy(2, 2),
            EnergyModel::default_65nm(),
            cfg,
        )
        .unwrap_err();
        assert_eq!(err, SimError::InvalidConfig);
    }

    fn adaptive_mesh_sim(cols: usize, rows: usize) -> NetworkSim {
        let cfg = SimConfig {
            vcs: 2,
            adaptive: true,
            ..SimConfig::default()
        };
        NetworkSim::new(
            mesh(cols, rows, 2.5),
            WirelessOverlay::none(),
            RoutingTable::xy(cols, rows),
            EnergyModel::default_65nm(),
            cfg,
        )
        .unwrap()
    }

    #[test]
    fn adaptive_mesh_conserves_packets() {
        let mut sim = adaptive_mesh_sim(4, 4);
        let stats = sim.run(&TrafficMatrix::uniform(16, 0.05), 200, 2000, 30_000);
        assert_eq!(stats.in_flight_at_end, 0, "adaptive network must drain");
        assert_eq!(stats.packets_delivered, stats.packets_injected);
        assert_eq!(stats.flits_delivered, 4 * stats.packets_delivered);
    }

    #[test]
    fn adaptive_relieves_transpose_hotspots() {
        // Transpose traffic concentrates on the diagonal under XY routing;
        // minimal adaptive routing spreads it over both dimension orders.
        let tm = TrafficMatrix::transpose(8, 0.05);
        let mut xy = mesh_sim(8, 8);
        let base = xy.run(&tm, 500, 4000, 60_000);
        let mut ad = adaptive_mesh_sim(8, 8);
        let adaptive = ad.run(&tm, 500, 4000, 60_000);
        assert_eq!(adaptive.in_flight_at_end, 0);
        assert!(
            adaptive.avg_latency() < base.avg_latency(),
            "adaptive {} vs XY {}",
            adaptive.avg_latency(),
            base.avg_latency()
        );
        // Most hops actually use the adaptive channels.
        assert!(
            adaptive.adaptive_share() > 0.5,
            "{}",
            adaptive.adaptive_share()
        );
        assert_eq!(base.adaptive_share(), 0.0);
    }

    #[test]
    fn adaptive_raises_small_world_capacity() {
        // The up*/down*-routed small world saturates around 0.03 pkts/cyc
        // per node; two VCs with minimal adaptive routing push the knee out.
        let clusters: Vec<usize> = (0..64).map(|i| (i % 8) / 4 + 2 * ((i / 8) / 4)).collect();
        let topo = SmallWorldBuilder::new(grid_positions(8, 8, 2.5), clusters)
            .alpha(1.5)
            .seed(1)
            .build()
            .unwrap();
        let table = RoutingTable::up_down(&topo, &WirelessOverlay::none()).unwrap();
        let tm = TrafficMatrix::uniform(64, 0.03);
        let mut escape_only = NetworkSim::new(
            topo.clone(),
            WirelessOverlay::none(),
            table.clone(),
            EnergyModel::default_65nm(),
            SimConfig::default(),
        )
        .unwrap();
        let base = escape_only.run(&tm, 500, 3000, 60_000);
        let cfg = SimConfig {
            vcs: 2,
            adaptive: true,
            ..SimConfig::default()
        };
        let mut adaptive = NetworkSim::new(
            topo,
            WirelessOverlay::none(),
            table,
            EnergyModel::default_65nm(),
            cfg,
        )
        .unwrap();
        let ad = adaptive.run(&tm, 500, 3000, 60_000);
        assert!(
            ad.avg_latency() < base.avg_latency() * 0.5,
            "adaptive {} vs escape-only {}",
            ad.avg_latency(),
            base.avg_latency()
        );
        assert_eq!(ad.in_flight_at_end, 0);
    }

    #[test]
    fn adaptive_is_deterministic() {
        let tm = TrafficMatrix::uniform(16, 0.06);
        let mut a = adaptive_mesh_sim(4, 4);
        let mut b = adaptive_mesh_sim(4, 4);
        assert_eq!(a.run(&tm, 100, 1500, 20_000), b.run(&tm, 100, 1500, 20_000));
    }

    #[test]
    fn small_world_full_sweep_drains() {
        let clusters: Vec<usize> = (0..64).map(|i| (i % 8) / 4 + 2 * ((i / 8) / 4)).collect();
        let topo = SmallWorldBuilder::new(grid_positions(8, 8, 2.5), clusters)
            .seed(1)
            .build()
            .unwrap();
        let table = RoutingTable::up_down(&topo, &WirelessOverlay::none()).unwrap();
        let mut sim = NetworkSim::new(
            topo,
            WirelessOverlay::none(),
            table,
            EnergyModel::default_65nm(),
            SimConfig::default(),
        )
        .unwrap();
        let stats = sim.run(&TrafficMatrix::uniform(64, 0.03), 300, 2000, 30_000);
        assert_eq!(stats.in_flight_at_end, 0);
        assert!(stats.packets_delivered > 100);
    }
}

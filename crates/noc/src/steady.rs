//! Mid-run periodic-fixpoint detection for the drain phase.
//!
//! When the drain stalls (zero flit moves, no fast-forward gap), the
//! remaining dynamics are a deterministic function of a compact state
//! vector (see `NetworkSim::steady_snapshot`). [`PeriodDetector`] watches
//! that vector with a Brent-style exponential-window search: it pins a
//! snapshot, compares every subsequent observation against it, and doubles
//! the window (re-pinning) until a later observation is **exactly equal**
//! to the pinned one. Equality of consecutive deterministic states proves
//! the trajectory is periodic with a period dividing the gap — every
//! remaining cycle replays observables verbatim, so the caller may consume
//! the rest of its budget in closed form.
//!
//! A fixpoint of period 1 is detected after two observations; a period-p
//! orbit is found once the window first reaches ≥ p with the snapshot on
//! the orbit, i.e. within O(p) observations. A state vector that keeps
//! advancing (e.g. fault hazard counters burning attempts) never compares
//! equal, so detection is implicitly disabled until the stream is
//! cycle-stable.

/// Largest usable period hint: a hint costs a ring of that many retained
/// snapshots, and drain livelock orbits in practice are tiny (token-MAC
/// rotations), so anything larger is treated as "no hint".
pub(crate) const MAX_STEADY_HINT: u64 = 64;

/// Exact-recurrence detector over `Vec<u64>` state vectors.
#[derive(Debug, Default)]
pub(crate) struct PeriodDetector {
    pinned: Vec<u64>,
    current: Vec<u64>,
    /// Observations between re-pins (doubles, Brent-style).
    window: u64,
    /// Observations since the last pin.
    since: u64,
    armed: bool,
    /// Optional period hint (0 = none): a ring of the last `hint`
    /// observations is kept and every new observation is compared against
    /// the one exactly `hint` observations earlier. An exact match is the
    /// same proof of recurrence the Brent pin gives — the hint only
    /// shortens the search from O(period) re-pin rounds to `hint + 1`
    /// observations, it never replaces the verification.
    hint: usize,
    ring: Vec<Vec<u64>>,
    /// Observations stored in the ring since arming.
    ring_stored: usize,
    /// Ring slot holding the oldest retained observation (the next write).
    ring_pos: usize,
    /// Verified period of the firing observation, in observations.
    fired_period: Option<u64>,
    fired_via_hint: bool,
    /// Armed episodes whose first full-ring hint comparison failed.
    hint_rejections: u64,
    episode_checked: bool,
}

impl PeriodDetector {
    /// A detector that additionally watches for recurrence at exactly
    /// `hint` observations (clamped to [`MAX_STEADY_HINT`]); `None` is a
    /// plain Brent-only detector.
    pub fn with_hint(hint: Option<u64>) -> Self {
        PeriodDetector {
            hint: hint.map_or(0, |p| p.clamp(1, MAX_STEADY_HINT)) as usize,
            ..Self::default()
        }
    }

    /// Forgets any pinned state; call whenever the watched system made
    /// observable progress (a flit moved or time jumped).
    pub fn reset(&mut self) {
        self.armed = false;
    }

    /// The verified period (in observations) of the firing recurrence;
    /// `None` until [`PeriodDetector::observe`] has returned `true`.
    pub fn period(&self) -> Option<u64> {
        self.fired_period
    }

    /// Whether the firing recurrence was found by the hint ring (rather
    /// than the Brent pin).
    pub fn fired_via_hint(&self) -> bool {
        self.fired_via_hint
    }

    /// Armed episodes in which the hinted period was checked and did not
    /// hold at the first opportunity.
    pub fn hint_rejections(&self) -> u64 {
        self.hint_rejections
    }

    /// Feeds one observation (`fill` writes the state vector) and returns
    /// whether it exactly recurred.
    pub fn observe(&mut self, fill: impl FnOnce(&mut Vec<u64>)) -> bool {
        self.current.clear();
        fill(&mut self.current);
        if !self.armed {
            self.armed = true;
            self.window = 4;
            self.since = 0;
            self.pinned.clone_from(&self.current);
            if self.hint > 0 {
                if self.ring.len() < self.hint {
                    self.ring.resize_with(self.hint, Vec::new);
                }
                self.ring[0].clone_from(&self.current);
                self.ring_pos = 1 % self.hint;
                self.ring_stored = 1;
                self.episode_checked = false;
            }
            return false;
        }
        self.since += 1;
        if self.hint > 0 {
            // `ring_pos` holds the observation exactly `hint` ago once the
            // ring has filled; equality there is an exact recurrence proof
            // for period `hint`.
            if self.ring_stored >= self.hint {
                if self.current == self.ring[self.ring_pos] {
                    self.fired_period = Some(self.hint as u64);
                    self.fired_via_hint = true;
                    return true;
                }
                if !self.episode_checked {
                    self.episode_checked = true;
                    self.hint_rejections += 1;
                }
            }
            self.ring[self.ring_pos].clone_from(&self.current);
            self.ring_pos = (self.ring_pos + 1) % self.hint;
            self.ring_stored += 1;
        }
        if self.current == self.pinned {
            self.fired_period = Some(self.since);
            self.fired_via_hint = false;
            return true;
        }
        if self.since >= self.window {
            // Re-pin further along the trajectory and widen the search so
            // any eventual period p is caught once window ≥ p.
            self.window *= 2;
            self.since = 0;
            std::mem::swap(&mut self.pinned, &mut self.current);
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Runs the detector over `states` cyclically, returning the index of
    /// the first firing observation (if any) within `limit` observations.
    fn first_fire(states: &[Vec<u64>], limit: usize) -> Option<usize> {
        let mut d = PeriodDetector::default();
        for i in 0..limit {
            let s = &states[i % states.len()];
            if d.observe(|out| out.extend_from_slice(s)) {
                return Some(i);
            }
        }
        None
    }

    #[test]
    fn period_one_fixpoint_fires_on_second_observation() {
        assert_eq!(first_fire(&[vec![7, 7, 7]], 10), Some(1));
    }

    #[test]
    fn period_three_orbit_is_detected() {
        let orbit = [vec![1, 0], vec![2, 0], vec![3, 0]];
        let fired = first_fire(&orbit, 64).expect("period-3 orbit must be found");
        assert!(fired >= 3, "cannot fire before one full period");
    }

    #[test]
    fn advancing_counter_never_fires() {
        let mut d = PeriodDetector::default();
        for t in 0..10_000u64 {
            // A strictly advancing component (e.g. fault attempts) keeps
            // every state unique.
            assert!(!d.observe(|out| out.push(t)));
        }
    }

    #[test]
    fn counter_that_stabilises_then_fires() {
        let mut d = PeriodDetector::default();
        let mut fired_at = None;
        for t in 0..200u64 {
            let frozen = t.min(50); // advances for 50 observations, then stops
            if d.observe(|out| out.push(frozen)) {
                fired_at = Some(t);
                break;
            }
        }
        assert!(fired_at.is_some_and(|t| t > 50));
    }

    #[test]
    fn hinted_orbit_fires_after_one_period() {
        let orbit = [vec![1, 0], vec![2, 0], vec![3, 0]];
        let mut d = PeriodDetector::with_hint(Some(3));
        let mut fired = None;
        for i in 0..16 {
            if d.observe(|out| out.extend_from_slice(&orbit[i % 3])) {
                fired = Some(i);
                break;
            }
        }
        // Observation 3 is the first with a full ring: it equals
        // observation 0 and proves the period immediately.
        assert_eq!(fired, Some(3));
        assert!(d.fired_via_hint());
        assert_eq!(d.period(), Some(3));
        assert_eq!(d.hint_rejections(), 0);
    }

    #[test]
    fn wrong_hint_is_rejected_and_brent_still_fires() {
        let orbit = [vec![1], vec![2], vec![3]];
        let mut d = PeriodDetector::with_hint(Some(2));
        let mut fired = None;
        for i in 0..64 {
            if d.observe(|out| out.extend_from_slice(&orbit[i % 3])) {
                fired = Some(i);
                break;
            }
        }
        let fired = fired.expect("Brent fallback must still find the orbit");
        assert!(!d.fired_via_hint(), "period 2 cannot match a 3-orbit");
        assert!(d.hint_rejections() >= 1);
        assert_eq!(
            d.period().map(|p| p % 3),
            Some(0),
            "verified gap is a true period"
        );
        assert!(fired >= 3);
    }

    #[test]
    fn hint_multiple_of_true_period_verifies() {
        // Period-2 orbit with hint 4: whichever path fires first, the
        // reported period must be a true (possibly non-minimal) period.
        let orbit = [vec![5], vec![9]];
        let mut d = PeriodDetector::with_hint(Some(4));
        let mut fired = None;
        for i in 0..16 {
            if d.observe(|out| out.extend_from_slice(&orbit[i % 2])) {
                fired = Some(i);
                break;
            }
        }
        assert!(fired.is_some());
        assert!(d.period().is_some_and(|p| p % 2 == 0));
    }

    #[test]
    fn reset_forgets_the_pin() {
        let mut d = PeriodDetector::default();
        assert!(!d.observe(|out| out.push(1)));
        d.reset();
        assert!(!d.observe(|out| out.push(1)), "re-arm, not a recurrence");
        assert!(d.observe(|out| out.push(1)));
    }
}

//! Mid-run periodic-fixpoint detection for the drain phase.
//!
//! When the drain stalls (zero flit moves, no fast-forward gap), the
//! remaining dynamics are a deterministic function of a compact state
//! vector (see `NetworkSim::steady_snapshot`). [`PeriodDetector`] watches
//! that vector with a Brent-style exponential-window search: it pins a
//! snapshot, compares every subsequent observation against it, and doubles
//! the window (re-pinning) until a later observation is **exactly equal**
//! to the pinned one. Equality of consecutive deterministic states proves
//! the trajectory is periodic with a period dividing the gap — every
//! remaining cycle replays observables verbatim, so the caller may consume
//! the rest of its budget in closed form.
//!
//! A fixpoint of period 1 is detected after two observations; a period-p
//! orbit is found once the window first reaches ≥ p with the snapshot on
//! the orbit, i.e. within O(p) observations. A state vector that keeps
//! advancing (e.g. fault hazard counters burning attempts) never compares
//! equal, so detection is implicitly disabled until the stream is
//! cycle-stable.

/// Exact-recurrence detector over `Vec<u64>` state vectors.
#[derive(Debug, Default)]
pub(crate) struct PeriodDetector {
    pinned: Vec<u64>,
    current: Vec<u64>,
    /// Observations between re-pins (doubles, Brent-style).
    window: u64,
    /// Observations since the last pin.
    since: u64,
    armed: bool,
}

impl PeriodDetector {
    pub fn new() -> Self {
        Self::default()
    }

    /// Forgets any pinned state; call whenever the watched system made
    /// observable progress (a flit moved or time jumped).
    pub fn reset(&mut self) {
        self.armed = false;
    }

    /// Feeds one observation (`fill` writes the state vector) and returns
    /// whether it exactly recurred.
    pub fn observe(&mut self, fill: impl FnOnce(&mut Vec<u64>)) -> bool {
        self.current.clear();
        fill(&mut self.current);
        if !self.armed {
            self.armed = true;
            self.window = 4;
            self.since = 0;
            std::mem::swap(&mut self.pinned, &mut self.current);
            return false;
        }
        self.since += 1;
        if self.current == self.pinned {
            return true;
        }
        if self.since >= self.window {
            // Re-pin further along the trajectory and widen the search so
            // any eventual period p is caught once window ≥ p.
            self.window *= 2;
            self.since = 0;
            std::mem::swap(&mut self.pinned, &mut self.current);
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Runs the detector over `states` cyclically, returning the index of
    /// the first firing observation (if any) within `limit` observations.
    fn first_fire(states: &[Vec<u64>], limit: usize) -> Option<usize> {
        let mut d = PeriodDetector::new();
        for i in 0..limit {
            let s = &states[i % states.len()];
            if d.observe(|out| out.extend_from_slice(s)) {
                return Some(i);
            }
        }
        None
    }

    #[test]
    fn period_one_fixpoint_fires_on_second_observation() {
        assert_eq!(first_fire(&[vec![7, 7, 7]], 10), Some(1));
    }

    #[test]
    fn period_three_orbit_is_detected() {
        let orbit = [vec![1, 0], vec![2, 0], vec![3, 0]];
        let fired = first_fire(&orbit, 64).expect("period-3 orbit must be found");
        assert!(fired >= 3, "cannot fire before one full period");
    }

    #[test]
    fn advancing_counter_never_fires() {
        let mut d = PeriodDetector::new();
        for t in 0..10_000u64 {
            // A strictly advancing component (e.g. fault attempts) keeps
            // every state unique.
            assert!(!d.observe(|out| out.push(t)));
        }
    }

    #[test]
    fn counter_that_stabilises_then_fires() {
        let mut d = PeriodDetector::new();
        let mut fired_at = None;
        for t in 0..200u64 {
            let frozen = t.min(50); // advances for 50 observations, then stops
            if d.observe(|out| out.push(frozen)) {
                fired_at = Some(t);
                break;
            }
        }
        assert!(fired_at.is_some_and(|t| t > 50));
    }

    #[test]
    fn reset_forgets_the_pin() {
        let mut d = PeriodDetector::new();
        assert!(!d.observe(|out| out.push(1)));
        d.reset();
        assert!(!d.observe(|out| out.push(1)), "re-arm, not a recurrence");
        assert!(d.observe(|out| out.push(1)));
    }
}

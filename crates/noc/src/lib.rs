//! # mapwave-noc
//!
//! Cycle-accurate, flit-level Network-on-Chip simulator supporting the three
//! fabrics of the DAC'15 study *"Energy Efficient MapReduce with VFI-enabled
//! Multicore Platforms"*:
//!
//! * a conventional 2-D **mesh** with XY routing (the baseline),
//! * a **power-law small-world** wireline network built around a VFI
//!   partition ([`topology::small_world`]),
//! * the **WiNoC**: the small-world network overlaid with mm-wave wireless
//!   interfaces on three token-arbitrated channels
//!   ([`topology::wireless`], [`mac`]).
//!
//! Switches are input-buffered wormhole routers (2-flit FIFOs, 8-flit FIFOs
//! on wireless ports) with round-robin arbitration and credit flow control.
//! Routing is table-based and deadlock-free: XY on meshes, up\*/down\* on
//! irregular graphs ([`routing`]). Per-switch clock domains model the
//! VFI-partitioned NoC, and a parametric 65-nm energy model accounts for
//! switch, wire, and wireless energy per flit ([`energy`]).
//!
//! ## Quick start
//!
//! ```
//! use mapwave_noc::prelude::*;
//!
//! // An 8x8 mesh at 2.5 mm tile pitch, uniform random traffic.
//! let topo = mesh(8, 8, 2.5);
//! let table = RoutingTable::xy(8, 8);
//! let mut sim = NetworkSim::new(
//!     topo,
//!     WirelessOverlay::none(),
//!     table,
//!     EnergyModel::default_65nm(),
//!     SimConfig::default(),
//! )?;
//! let stats = sim.run(&TrafficMatrix::uniform(64, 0.01), 500, 2_000, 20_000);
//! assert!(stats.packets_delivered > 0);
//! println!(
//!     "avg latency {:.1} cycles, {:.1} pJ/flit",
//!     stats.avg_latency(),
//!     stats.energy_per_flit_pj()
//! );
//! # Ok::<(), mapwave_noc::sim::SimError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod energy;
pub mod flit;
pub mod mac;
pub mod node;
pub(crate) mod par;
pub mod routing;
pub mod sim;
pub mod stats;
pub(crate) mod steady;
pub mod switch;
pub mod topology;
pub mod traffic;

pub use energy::{EnergyBreakdown, EnergyModel};
pub use node::{NodeId, Position};
pub use routing::{Hop, Phase, RoutingTable};
pub use sim::{NetworkSim, NocFaultCounts, SimConfig};
pub use stats::NetworkStats;
pub use topology::wireless::{ChannelId, WirelessInterface, WirelessOverlay};
pub use topology::{Topology, TopologyKind};
pub use traffic::TrafficMatrix;

/// Convenient glob import for simulator users.
pub mod prelude {
    pub use crate::energy::EnergyModel;
    pub use crate::node::{NodeId, Position};
    pub use crate::routing::RoutingTable;
    pub use crate::sim::{NetworkSim, SimConfig};
    pub use crate::stats::NetworkStats;
    pub use crate::topology::mesh::mesh;
    pub use crate::topology::small_world::SmallWorldBuilder;
    pub use crate::topology::wireless::{ChannelId, WirelessInterface, WirelessOverlay};
    pub use crate::topology::Topology;
    pub use crate::traffic::TrafficMatrix;
}

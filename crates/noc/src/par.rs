//! Deterministic parallel switch sweep.
//!
//! The per-cycle worklist of *due* switches is partitioned into
//! **wavefronts**: two switches share a wave only when they are at
//! interaction distance ≥ 3, where the interaction graph joins wired
//! neighbours and members of the same wireless channel. A switch only
//! touches its own router state and the input FIFOs of its interaction
//! neighbours, so within one wave every direct mutation (FIFO push,
//! `buffered`/`wake` update, wormhole bookkeeping) lands on switch-disjoint
//! state — and because a switch's interaction neighbours are *excluded*
//! from its wave, a switch still observes its own pushes exactly as the
//! serial sweep would.
//!
//! Waves are numbered so that interacting due switches run in ascending
//! index order across waves (`wave(v) = 1 + max wave(u)` over due
//! interacting `u < v`), which reproduces the serial sweep's ordering for
//! every pair that can observe each other; non-interacting switches
//! commute. Everything order-sensitive that is *not* switch-disjoint —
//! floating-point stat/energy accumulation (`f64` addition is not
//! associative), delivery counters, worklist enrollment — is recorded in a
//! per-switch [`EffectBuf`] and replayed in ascending switch order after
//! the sweep, performing the bit-for-bit identical sequence of additions
//! the serial sweep performs. The 11 golden digests in
//! `crates/noc/tests/golden.rs` pin this equivalence.
//!
//! Worker threads live for one [`crate::sim::NetworkSim::run`] (scoped),
//! parking on a condvar between waves; the coordinator publishes a [`Job`]
//! per wave and participates itself, with workers chunk-stealing via a
//! shared atomic cursor.

use crate::topology::wireless::WirelessOverlay;
use crate::topology::Topology;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex};

/// One order-sensitive side effect of processing a switch, replayed in
/// ascending switch order after a parallel wave sweep. Each variant's
/// replay performs the exact statement sequence the serial sweep runs at
/// the same point.
#[derive(Debug, Clone, Copy)]
pub(crate) enum StatOp {
    /// Crossbar traversal energy of a measured flit.
    SwitchPj(f64),
    /// Measured head/body flit ejected at its destination.
    EjectFlit,
    /// Measured tail flit ejected: packet delivered with this latency.
    EjectTail { latency: u64 },
    /// Measured flit crossed a wired link (flattened `from * n + to`).
    WireHop { pj: f64, adaptive: bool, link: u32 },
    /// Measured flit crossed a wireless channel.
    WirelessHop { pj: f64 },
    /// The flit landed in switch `w`: enroll it if not already enrolled
    /// (the `active` check runs at replay time, so each switch enrolls at
    /// most once, exactly as in the serial sweep).
    Enroll(u32),
}

/// Per-switch buffer of order-sensitive effects from one parallel wave.
#[derive(Debug, Default, Clone)]
pub(crate) struct EffectBuf {
    pub ops: Vec<StatOp>,
    /// Flit moves committed by this switch (summed into
    /// `moves_last_step` at replay).
    pub moves: u64,
}

/// Interaction-distance-2 adjacency (CSR), built once per simulator and
/// reused every cycle to assign wavefronts.
#[derive(Debug, Clone)]
pub(crate) struct WavePlan {
    off: Vec<u32>,
    adj: Vec<u32>,
}

impl WavePlan {
    pub fn build(topo: &Topology, overlay: &WirelessOverlay) -> Self {
        let n = topo.len();
        // Interaction graph N1: wired neighbours plus same-channel WI
        // members (a wireless transfer pushes into another member's FIFO,
        // and all members arbitrate the shared token).
        let mut n1: Vec<Vec<u32>> = vec![Vec::new(); n];
        for v in topo.nodes() {
            n1[v.index()].extend(topo.neighbors(v).iter().map(|w| w.index() as u32));
        }
        for c in 0..overlay.channel_count() {
            let members = overlay.channel_members(crate::topology::wireless::ChannelId(c));
            for &a in &members {
                for &b in &members {
                    if a != b {
                        n1[a.index()].push(b.index() as u32);
                    }
                }
            }
        }
        // adj2 = N1 ∪ N1∘N1: everything within interaction distance 2.
        let mut off = Vec::with_capacity(n + 1);
        let mut adj = Vec::new();
        let mut stamp = vec![u32::MAX; n];
        off.push(0u32);
        for v in 0..n {
            let mark = v as u32;
            for &u in &n1[v] {
                if u as usize != v && stamp[u as usize] != mark {
                    stamp[u as usize] = mark;
                    adj.push(u);
                }
            }
            let direct = n1[v].clone();
            for u in direct {
                for &w in &n1[u as usize] {
                    if w as usize != v && stamp[w as usize] != mark {
                        stamp[w as usize] = mark;
                        adj.push(w);
                    }
                }
            }
            adj[*off.last().unwrap() as usize..].sort_unstable();
            off.push(adj.len() as u32);
        }
        WavePlan { off, adj }
    }

    pub fn adjacent(&self, v: usize) -> &[u32] {
        &self.adj[self.off[v] as usize..self.off[v + 1] as usize]
    }
}

/// Reusable per-cycle scratch of the parallel sweep.
#[derive(Debug, Default, Clone)]
pub(crate) struct Scratch {
    /// Due switches this cycle, ascending.
    pub due: Vec<u32>,
    /// One effect buffer per due index (cleared, not reallocated).
    pub effects: Vec<EffectBuf>,
    /// `(switch, due index)` pairs grouped by wave, ascending within one.
    pub order: Vec<(u32, u32)>,
    /// Start offset of each wave in `order`, plus a final end sentinel.
    pub wave_bounds: Vec<u32>,
    /// Wave number per node for the current cycle (epoch-stamped).
    node_wave: Vec<u32>,
    node_epoch: Vec<u32>,
    epoch: u32,
}

impl Scratch {
    /// Assigns each due switch (ascending in `self.due`) the smallest wave
    /// compatible with `wave(v) > wave(u)` for every due interacting
    /// `u < v`, then groups `order`/`wave_bounds` by wave. Returns the
    /// number of waves.
    pub fn assign_waves(&mut self, plan: &WavePlan, n: usize) -> usize {
        if self.node_wave.len() != n {
            self.node_wave = vec![0; n];
            self.node_epoch = vec![u32::MAX; n];
            self.epoch = 0;
        }
        self.epoch = self.epoch.wrapping_add(1);
        if self.epoch == u32::MAX {
            self.node_epoch.fill(u32::MAX - 1);
            self.epoch = 0;
        }
        let mut waves = 0u32;
        for i in 0..self.due.len() {
            let v = self.due[i] as usize;
            let mut w = 0u32;
            for &u in plan.adjacent(v) {
                // Ascending iteration: a stamped neighbour is a due u < v.
                if (u as usize) < v && self.node_epoch[u as usize] == self.epoch {
                    w = w.max(self.node_wave[u as usize] + 1);
                }
            }
            self.node_wave[v] = w;
            self.node_epoch[v] = self.epoch;
            waves = waves.max(w + 1);
        }
        // Counting sort by wave; due order (ascending switch) within one.
        self.wave_bounds.clear();
        self.wave_bounds.resize(waves as usize + 1, 0);
        for &v in &self.due {
            self.wave_bounds[self.node_wave[v as usize] as usize + 1] += 1;
        }
        for k in 1..self.wave_bounds.len() {
            self.wave_bounds[k] += self.wave_bounds[k - 1];
        }
        self.order.clear();
        self.order.resize(self.due.len(), (0, 0));
        let mut cursor: Vec<u32> = self.wave_bounds[..waves as usize].to_vec();
        for (i, &v) in self.due.iter().enumerate() {
            let w = self.node_wave[v as usize] as usize;
            self.order[cursor[w] as usize] = (v, i as u32);
            cursor[w] += 1;
        }
        waves as usize
    }
}

/// One wave of work, published to the worker pool. All pointers are erased
/// to `usize` so the job is `Send`; see the safety contract on
/// [`crate::sim::par_drain_chunks`].
#[derive(Debug, Clone, Copy)]
pub(crate) struct Job {
    /// `*mut NetworkSim` of the coordinating simulator.
    pub sim: usize,
    /// `*const (u32, u32)` — this wave's `(switch, due index)` pairs.
    pub pairs: usize,
    pub pairs_len: usize,
    /// `*mut EffectBuf` — base of the per-due-index effect buffers.
    pub effects: usize,
    /// `*const Option<NodeId>` / `*mut bool` — the cycle's MAC snapshot.
    pub holders: usize,
    pub holders_len: usize,
    pub used: usize,
    pub used_len: usize,
    /// Maximum port count (size of each worker's `out_used` scratch).
    pub max_ports: usize,
    /// Pairs claimed per cursor fetch.
    pub chunk: usize,
}

#[derive(Debug)]
struct BoardState {
    /// Bumped per published job; workers pick up a job once per epoch.
    epoch: u64,
    job: Option<Job>,
    /// Participants (workers + coordinator) still inside the current wave.
    remaining: usize,
    shutdown: bool,
}

/// Coordination board of one run's worker pool: a published [`Job`] per
/// wave, a chunk-steal cursor, and condvars for wave start/end.
#[derive(Debug)]
pub(crate) struct Board {
    state: Mutex<BoardState>,
    go: Condvar,
    done: Condvar,
    cursor: AtomicUsize,
    workers: usize,
}

impl Board {
    pub fn new(workers: usize) -> Self {
        Board {
            state: Mutex::new(BoardState {
                epoch: 0,
                job: None,
                remaining: 0,
                shutdown: false,
            }),
            go: Condvar::new(),
            done: Condvar::new(),
            cursor: AtomicUsize::new(0),
            workers,
        }
    }

    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Worker-thread body: drain chunks of each published wave until
    /// shutdown.
    pub fn worker(&self) {
        let mut seen = 0u64;
        let mut out_used: Vec<bool> = Vec::new();
        loop {
            let job = {
                let mut st = self.state.lock().unwrap();
                loop {
                    if st.shutdown {
                        return;
                    }
                    if st.epoch != seen {
                        seen = st.epoch;
                        break st.job.expect("epoch bumped with a job published");
                    }
                    st = self.go.wait(st).unwrap();
                }
            };
            out_used.clear();
            out_used.resize(job.max_ports, false);
            crate::sim::par_drain_chunks(&job, &self.cursor, &mut out_used);
            let mut st = self.state.lock().unwrap();
            st.remaining -= 1;
            if st.remaining == 0 {
                self.done.notify_all();
            }
        }
    }

    /// Publishes `job`, helps drain it, and returns once every participant
    /// is done. The caller must uphold the pointer contract of
    /// [`crate::sim::par_drain_chunks`] for the duration of this call.
    pub fn run_wave(&self, job: Job, out_used: &mut Vec<bool>) {
        self.cursor.store(0, Ordering::Relaxed);
        {
            let mut st = self.state.lock().unwrap();
            st.job = Some(job);
            st.epoch += 1;
            st.remaining = self.workers + 1;
            self.go.notify_all();
        }
        out_used.clear();
        out_used.resize(job.max_ports, false);
        crate::sim::par_drain_chunks(&job, &self.cursor, out_used);
        let mut st = self.state.lock().unwrap();
        st.remaining -= 1;
        while st.remaining > 0 {
            st = self.done.wait(st).unwrap();
        }
    }

    /// Releases the workers (their scoped threads then join).
    pub fn shutdown(&self) {
        let mut st = self.state.lock().unwrap();
        st.shutdown = true;
        self.go.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::NodeId;
    use crate::topology::mesh::mesh;
    use crate::topology::wireless::{ChannelId, WirelessInterface};

    #[test]
    fn waves_separate_interacting_switches() {
        let topo = mesh(4, 4, 2.5);
        let overlay = WirelessOverlay::new(
            vec![
                WirelessInterface {
                    node: NodeId(0),
                    channel: ChannelId(0),
                },
                WirelessInterface {
                    node: NodeId(15),
                    channel: ChannelId(0),
                },
            ],
            1,
        )
        .unwrap();
        let plan = WavePlan::build(&topo, &overlay);
        // Wired neighbours and distance-2 pairs interact.
        assert!(plan.adjacent(0).contains(&1));
        assert!(plan.adjacent(0).contains(&2));
        assert!(plan.adjacent(0).contains(&5));
        // Same-channel members interact regardless of wire distance.
        assert!(plan.adjacent(0).contains(&15));
        // Distance 3, different channels: independent.
        assert!(!plan.adjacent(0).contains(&3));

        let mut scratch = Scratch {
            due: (0..16).collect(),
            ..Default::default()
        };
        let waves = scratch.assign_waves(&plan, 16);
        assert!(waves >= 2);
        // Every interacting due pair lands in distinct waves, ascending
        // with switch index.
        for i in 0..16usize {
            for &u in plan.adjacent(i) {
                if (u as usize) < i {
                    assert!(
                        scratch.node_wave[u as usize] < scratch.node_wave[i],
                        "due interacting pair ({u}, {i}) must be wave-ordered"
                    );
                }
            }
        }
        // Grouping covers every due switch exactly once, ascending within
        // a wave.
        let mut seen: Vec<u32> = Vec::new();
        for w in 0..waves {
            let lo = scratch.wave_bounds[w] as usize;
            let hi = scratch.wave_bounds[w + 1] as usize;
            let wave: Vec<u32> = scratch.order[lo..hi].iter().map(|&(v, _)| v).collect();
            assert!(wave.windows(2).all(|p| p[0] < p[1]));
            seen.extend(wave);
        }
        seen.sort_unstable();
        assert_eq!(seen, scratch.due);
    }
}

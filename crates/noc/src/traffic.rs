//! Traffic descriptions and injection processes.
//!
//! A [`TrafficMatrix`] gives the packet injection rate for every
//! source→destination pair (packets per cycle). The cycle-level simulator
//! samples a Bernoulli process per source and picks destinations by the
//! normalised row weights, which reproduces the pairwise rates in
//! expectation while keeping per-cycle work `O(n)`.

use crate::node::NodeId;
use mapwave_harness::hash::{StableHash, StableHasher};
use mapwave_harness::rng::RngExt;
use mapwave_harness::rng::StdRng;

/// Errors from traffic-matrix construction.
#[derive(Debug, Clone, PartialEq)]
pub enum TrafficError {
    /// A rate was negative or non-finite.
    InvalidRate {
        /// Source of the offending entry.
        src: NodeId,
        /// Destination of the offending entry.
        dst: NodeId,
        /// The offending value.
        rate: f64,
    },
    /// The matrix was not square.
    NotSquare {
        /// Number of rows supplied.
        rows: usize,
        /// Length of the offending row.
        row_len: usize,
    },
}

impl std::fmt::Display for TrafficError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TrafficError::InvalidRate { src, dst, rate } => {
                write!(f, "invalid rate {rate} for pair {src}->{dst}")
            }
            TrafficError::NotSquare { rows, row_len } => {
                write!(f, "matrix with {rows} rows has a row of length {row_len}")
            }
        }
    }
}

impl std::error::Error for TrafficError {}

/// Pairwise packet injection rates (packets/cycle), diagonal ignored.
///
/// # Examples
///
/// ```
/// use mapwave_noc::traffic::TrafficMatrix;
/// use mapwave_noc::NodeId;
///
/// let mut m = TrafficMatrix::zeros(4);
/// m.set(NodeId(0), NodeId(3), 0.02);
/// m.add(NodeId(0), NodeId(3), 0.01);
/// assert!((m.rate(NodeId(0), NodeId(3)) - 0.03).abs() < 1e-12);
/// assert!((m.total_rate() - 0.03).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct TrafficMatrix {
    n: usize,
    rates: Vec<f64>,
}

impl TrafficMatrix {
    /// An all-zero matrix over `n` nodes.
    pub fn zeros(n: usize) -> Self {
        TrafficMatrix {
            n,
            rates: vec![0.0; n * n],
        }
    }

    /// Builds a matrix from rows.
    ///
    /// # Errors
    ///
    /// Rejects non-square inputs and negative or non-finite rates.
    pub fn from_rows(rows: Vec<Vec<f64>>) -> Result<Self, TrafficError> {
        let n = rows.len();
        let mut m = TrafficMatrix::zeros(n);
        for (s, row) in rows.iter().enumerate() {
            if row.len() != n {
                return Err(TrafficError::NotSquare {
                    rows: n,
                    row_len: row.len(),
                });
            }
            for (d, &r) in row.iter().enumerate() {
                if !r.is_finite() || r < 0.0 {
                    return Err(TrafficError::InvalidRate {
                        src: NodeId(s),
                        dst: NodeId(d),
                        rate: r,
                    });
                }
                m.rates[s * n + d] = r;
            }
        }
        Ok(m)
    }

    /// Builds a matrix directly from a dense row-major rate buffer of
    /// length `n * n`, forcing the (ignored) diagonal to zero. This is the
    /// bulk-construction fast path: callers can produce the whole buffer
    /// branch-free (e.g. scaling a flit-count accumulator) and this
    /// constructor restores the diagonal invariant in one pass.
    ///
    /// # Panics
    ///
    /// Panics if `rates.len() != n * n`. Debug builds additionally reject
    /// negative or non-finite off-diagonal rates, mirroring
    /// [`TrafficMatrix::from_rows`].
    pub fn from_dense(n: usize, mut rates: Vec<f64>) -> Self {
        assert_eq!(rates.len(), n * n, "dense rate buffer must be n*n");
        for s in 0..n {
            rates[s * n + s] = 0.0;
        }
        debug_assert!(
            rates.iter().all(|r| r.is_finite() && *r >= 0.0),
            "rates must be finite and non-negative"
        );
        TrafficMatrix { n, rates }
    }

    /// Uniform random traffic: every node sends to every other node at a
    /// rate such that each source injects `injection_rate` packets/cycle.
    pub fn uniform(n: usize, injection_rate: f64) -> Self {
        let mut m = TrafficMatrix::zeros(n);
        if n > 1 {
            let per_pair = injection_rate / (n - 1) as f64;
            for s in 0..n {
                for d in 0..n {
                    if s != d {
                        m.rates[s * n + d] = per_pair;
                    }
                }
            }
        }
        m
    }

    /// Hotspot traffic: uniform background plus `extra` packets/cycle from
    /// every node toward `hotspot`.
    pub fn hotspot(n: usize, background: f64, hotspot: NodeId, extra: f64) -> Self {
        let mut m = TrafficMatrix::uniform(n, background);
        for s in 0..n {
            if s != hotspot.index() {
                m.rates[s * n + hotspot.index()] += extra / (n - 1) as f64;
            }
        }
        m
    }

    /// Matrix-transpose traffic on a `side × side` grid: node `(r, c)` sends
    /// to node `(c, r)` at `injection_rate` packets/cycle — a classic
    /// adversarial pattern for dimension-order routing.
    pub fn transpose(side: usize, injection_rate: f64) -> Self {
        let n = side * side;
        let mut m = TrafficMatrix::zeros(n);
        for s in 0..n {
            let (r, c) = (s / side, s % side);
            let d = c * side + r;
            if d != s {
                m.rates[s * n + d] = injection_rate;
            }
        }
        m
    }

    /// Bit-complement traffic: node `i` sends to node `(n-1) - i` at
    /// `injection_rate` packets/cycle — maximally long paths on meshes.
    pub fn bit_complement(n: usize, injection_rate: f64) -> Self {
        let mut m = TrafficMatrix::zeros(n);
        for s in 0..n {
            let d = n - 1 - s;
            if d != s {
                m.rates[s * n + d] = injection_rate;
            }
        }
        m
    }

    /// Nearest-neighbour traffic on a `cols × rows` grid: each node sends
    /// equally to its 4-neighbourhood at `injection_rate` total — the
    /// best case for a mesh, a locality probe for irregular fabrics.
    pub fn neighbor(cols: usize, rows: usize, injection_rate: f64) -> Self {
        let n = cols * rows;
        let mut m = TrafficMatrix::zeros(n);
        for s in 0..n {
            let (r, c) = (s / cols, s % cols);
            let mut neighbors = Vec::new();
            if c > 0 {
                neighbors.push(s - 1);
            }
            if c + 1 < cols {
                neighbors.push(s + 1);
            }
            if r > 0 {
                neighbors.push(s - cols);
            }
            if r + 1 < rows {
                neighbors.push(s + cols);
            }
            let per = injection_rate / neighbors.len().max(1) as f64;
            for d in neighbors {
                m.rates[s * n + d] = per;
            }
        }
        m
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the matrix covers no nodes.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Rate for one pair.
    pub fn rate(&self, src: NodeId, dst: NodeId) -> f64 {
        self.rates[src.index() * self.n + dst.index()]
    }

    /// Sets the rate for one pair (diagonal entries are forced to zero).
    pub fn set(&mut self, src: NodeId, dst: NodeId, rate: f64) {
        if src != dst {
            self.rates[src.index() * self.n + dst.index()] = rate;
        }
    }

    /// Adds to the rate for one pair (diagonal ignored).
    pub fn add(&mut self, src: NodeId, dst: NodeId, delta: f64) {
        if src != dst {
            self.rates[src.index() * self.n + dst.index()] += delta;
        }
    }

    /// Total injection rate of one source (packets/cycle).
    pub fn row_rate(&self, src: NodeId) -> f64 {
        self.rates[src.index() * self.n..(src.index() + 1) * self.n]
            .iter()
            .sum()
    }

    /// Total injection rate over all sources.
    pub fn total_rate(&self) -> f64 {
        self.rates.iter().sum()
    }

    /// Scales every rate by `factor`.
    pub fn scale(&mut self, factor: f64) {
        for r in &mut self.rates {
            *r *= factor;
        }
    }

    /// Returns a copy normalised so the *maximum entry* is 1 (used by the
    /// VFI clustering objective, which normalises `f` to its maximum).
    /// A zero matrix is returned unchanged.
    pub fn normalized(&self) -> TrafficMatrix {
        let max = self.rates.iter().cloned().fold(0.0, f64::max);
        let mut out = self.clone();
        if max > 0.0 {
            out.scale(1.0 / max);
        }
        out
    }

    /// Aggregates pair rates to cluster-level rates given a node→cluster
    /// assignment with `m` clusters.
    ///
    /// # Panics
    ///
    /// Panics if `assignment.len() != self.len()` or a cluster id is ≥ `m`.
    pub fn cluster_rates(&self, assignment: &[usize], m: usize) -> Vec<Vec<f64>> {
        assert_eq!(assignment.len(), self.n, "assignment length mismatch");
        let mut out = vec![vec![0.0; m]; m];
        for s in 0..self.n {
            for d in 0..self.n {
                if s != d {
                    out[assignment[s]][assignment[d]] += self.rates[s * self.n + d];
                }
            }
        }
        out
    }

    /// Traffic-weighted mean of `per_pair[s][d]` values (e.g. hop counts),
    /// ignoring zero-rate pairs. Returns 0 for all-zero traffic.
    pub fn weighted_mean<F: Fn(NodeId, NodeId) -> f64>(&self, per_pair: F) -> f64 {
        let mut num = 0.0;
        let mut den = 0.0;
        for s in 0..self.n {
            for d in 0..self.n {
                let r = self.rates[s * self.n + d];
                if s != d && r > 0.0 {
                    num += r * per_pair(NodeId(s), NodeId(d));
                    den += r;
                }
            }
        }
        if den > 0.0 {
            num / den
        } else {
            0.0
        }
    }
}

/// Hashes the node count and every rate's bit pattern, so two matrices
/// collide only when they are bitwise-equal — the property the
/// `run_system` window memoization relies on.
impl StableHash for TrafficMatrix {
    fn stable_hash(&self, h: &mut StableHasher) {
        h.write_len(self.n);
        for r in &self.rates {
            h.write_u64(r.to_bits());
        }
    }
}

/// One precomputed packet injection: at `cycle`, `src` generates a packet
/// addressed to `dest`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InjectEvent {
    /// Cycle the packet is generated, counted from the start of the run.
    pub cycle: u64,
    /// Generating source node.
    pub src: u32,
    /// Drawn destination node.
    pub dest: u32,
}

/// Bernoulli packet injector driven by a [`TrafficMatrix`].
///
/// Per cycle and per source, a packet is generated with probability equal to
/// the source's total rate (clamped to 1), with the destination drawn from
/// the row's normalised weights.
#[derive(Debug, Clone)]
pub struct Injector {
    n: usize,
    /// Per-source total rate, clamped to [0, 1].
    row_rate: Vec<f64>,
    /// Cumulative destination weights, one stride of `n` per source
    /// (`cumulative[s * n..(s + 1) * n]`).
    cumulative: Vec<f64>,
    /// Sources with a positive rate, ascending. A zero-rate source never
    /// consumes an RNG draw (see [`Injector::sample`]), so a per-cycle scan
    /// over this list produces the identical draw stream as scanning all
    /// `n` sources — sparse matrices skip the dead rows entirely.
    nonzero: Vec<u32>,
}

impl Injector {
    /// Prepares an injector for `matrix`.
    pub fn new(matrix: &TrafficMatrix) -> Self {
        let n = matrix.len();
        let mut row_rate = Vec::with_capacity(n);
        let mut cumulative = Vec::with_capacity(n * n);
        let mut nonzero = Vec::new();
        for s in 0..n {
            let total = matrix.row_rate(NodeId(s));
            row_rate.push(total.min(1.0));
            if total > 0.0 {
                nonzero.push(s as u32);
            }
            let mut acc = 0.0;
            for d in 0..n {
                acc += matrix.rate(NodeId(s), NodeId(d));
                cumulative.push(acc);
            }
        }
        Injector {
            n,
            row_rate,
            cumulative,
            nonzero,
        }
    }

    /// The sources with a positive injection rate, in ascending order.
    pub fn nonzero_sources(&self) -> &[u32] {
        &self.nonzero
    }

    /// Samples this cycle's destination for `src`, or `None` when the source
    /// stays idle.
    pub fn sample(&self, src: NodeId, rng: &mut StdRng) -> Option<NodeId> {
        let rate = self.row_rate[src.index()];
        if rate <= 0.0 || rng.random::<f64>() >= rate {
            return None;
        }
        let cum = &self.cumulative[src.index() * self.n..(src.index() + 1) * self.n];
        let total = *cum.last()?;
        if total <= 0.0 {
            return None;
        }
        let x = rng.random::<f64>() * total;
        let idx = cum.partition_point(|&c| c <= x);
        Some(NodeId(idx.min(cum.len() - 1)))
    }

    /// Precomputes the full injection schedule for `cycles` cycles into
    /// `out` (cleared first), returning events sorted by cycle and, within
    /// a cycle, by ascending source.
    ///
    /// The injection process is independent of network state by design
    /// (see [`Injector::nonzero_sources`]), so the schedule can be drawn
    /// up front in one tight pass: per cycle and nonzero source, one gate
    /// draw, then one destination draw for each generated packet — the
    /// exact draw stream a per-cycle [`Injector::sample`] scan consumes,
    /// making event consumption bit-identical to in-loop sampling.
    /// Self-addressed draws are dropped (as the simulator drops them) but
    /// still burn their draws.
    pub fn schedule_into(&self, rng: &mut StdRng, cycles: u64, out: &mut Vec<InjectEvent>) {
        out.clear();
        for cycle in 0..cycles {
            for &s in &self.nonzero {
                let su = s as usize;
                let rate = self.row_rate[su];
                if rate <= 0.0 || rng.random::<f64>() >= rate {
                    continue;
                }
                let cum = &self.cumulative[su * self.n..(su + 1) * self.n];
                let total = match cum.last() {
                    Some(&t) if t > 0.0 => t,
                    _ => continue,
                };
                let x = rng.random::<f64>() * total;
                let idx = cum.partition_point(|&c| c <= x).min(self.n - 1);
                if idx != su {
                    out.push(InjectEvent {
                        cycle,
                        src: s,
                        dest: idx as u32,
                    });
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mapwave_harness::rng::SeedableRng;

    #[test]
    fn uniform_row_rate() {
        let m = TrafficMatrix::uniform(8, 0.1);
        for s in 0..8 {
            assert!((m.row_rate(NodeId(s)) - 0.1).abs() < 1e-12);
        }
        assert_eq!(m.rate(NodeId(3), NodeId(3)), 0.0);
    }

    #[test]
    fn schedule_matches_per_cycle_sampling() {
        // The precomputed schedule must consume the identical draw stream
        // as an in-loop sample() scan and emit the identical events.
        let mut m = TrafficMatrix::zeros(6);
        m.set(NodeId(0), NodeId(5), 0.4);
        m.set(NodeId(0), NodeId(2), 0.3);
        m.set(NodeId(3), NodeId(1), 0.9);
        m.set(NodeId(5), NodeId(0), 0.05);
        let inj = Injector::new(&m);
        let cycles = 500u64;

        let mut reference = Vec::new();
        let mut rng = StdRng::seed_from_u64(0xfeed);
        for cycle in 0..cycles {
            for &s in inj.nonzero_sources() {
                if let Some(d) = inj.sample(NodeId(s as usize), &mut rng) {
                    if d.index() != s as usize {
                        reference.push(InjectEvent {
                            cycle,
                            src: s,
                            dest: d.index() as u32,
                        });
                    }
                }
            }
        }

        let mut scheduled = Vec::new();
        let mut rng2 = StdRng::seed_from_u64(0xfeed);
        inj.schedule_into(&mut rng2, cycles, &mut scheduled);
        assert!(!scheduled.is_empty(), "traffic must generate packets");
        assert_eq!(scheduled, reference);
        // Both paths must leave the RNG in the same state.
        use mapwave_harness::rng::RngExt;
        assert_eq!(
            rng.random::<f64>().to_bits(),
            rng2.random::<f64>().to_bits()
        );
    }

    #[test]
    fn from_rows_rejects_negative() {
        let err = TrafficMatrix::from_rows(vec![vec![0.0, -1.0], vec![0.0, 0.0]]).unwrap_err();
        assert!(matches!(err, TrafficError::InvalidRate { .. }));
    }

    #[test]
    fn from_rows_rejects_ragged() {
        let err = TrafficMatrix::from_rows(vec![vec![0.0, 0.0], vec![0.0]]).unwrap_err();
        assert!(matches!(err, TrafficError::NotSquare { .. }));
    }

    #[test]
    fn from_dense_zeroes_diagonal() {
        let m = TrafficMatrix::from_dense(2, vec![7.0, 0.25, 0.5, 9.0]);
        assert_eq!(m.rate(NodeId(0), NodeId(0)), 0.0);
        assert_eq!(m.rate(NodeId(1), NodeId(1)), 0.0);
        assert_eq!(m.rate(NodeId(0), NodeId(1)), 0.25);
        assert_eq!(m.rate(NodeId(1), NodeId(0)), 0.5);
        assert_eq!(m.total_rate(), 0.75);
    }

    #[test]
    #[should_panic(expected = "dense rate buffer")]
    fn from_dense_rejects_wrong_length() {
        let _ = TrafficMatrix::from_dense(2, vec![0.0; 3]);
    }

    #[test]
    fn diagonal_writes_ignored() {
        let mut m = TrafficMatrix::zeros(3);
        m.set(NodeId(1), NodeId(1), 5.0);
        m.add(NodeId(2), NodeId(2), 5.0);
        assert_eq!(m.total_rate(), 0.0);
    }

    #[test]
    fn normalized_max_is_one() {
        let mut m = TrafficMatrix::zeros(3);
        m.set(NodeId(0), NodeId(1), 4.0);
        m.set(NodeId(1), NodeId(2), 2.0);
        let n = m.normalized();
        assert!((n.rate(NodeId(0), NodeId(1)) - 1.0).abs() < 1e-12);
        assert!((n.rate(NodeId(1), NodeId(2)) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn hotspot_adds_traffic() {
        let m = TrafficMatrix::hotspot(4, 0.1, NodeId(0), 0.3);
        assert!(m.rate(NodeId(1), NodeId(0)) > m.rate(NodeId(1), NodeId(2)));
    }

    #[test]
    fn transpose_pattern() {
        let m = TrafficMatrix::transpose(3, 0.1);
        // (0,1) = node 1 sends to (1,0) = node 3.
        assert!((m.rate(NodeId(1), NodeId(3)) - 0.1).abs() < 1e-12);
        // Diagonal nodes ((r,r)) send nothing.
        assert_eq!(m.row_rate(NodeId(0)), 0.0);
        assert_eq!(m.row_rate(NodeId(4)), 0.0);
    }

    #[test]
    fn bit_complement_pattern() {
        let m = TrafficMatrix::bit_complement(8, 0.2);
        assert!((m.rate(NodeId(0), NodeId(7)) - 0.2).abs() < 1e-12);
        assert!((m.rate(NodeId(3), NodeId(4)) - 0.2).abs() < 1e-12);
        assert_eq!(m.rate(NodeId(0), NodeId(1)), 0.0);
    }

    #[test]
    fn neighbor_pattern_conserves_rate() {
        let m = TrafficMatrix::neighbor(4, 4, 0.1);
        for s in 0..16 {
            assert!((m.row_rate(NodeId(s)) - 0.1).abs() < 1e-12, "node {s}");
        }
        // Corner node 0 splits its rate between nodes 1 and 4.
        assert!((m.rate(NodeId(0), NodeId(1)) - 0.05).abs() < 1e-12);
        assert!((m.rate(NodeId(0), NodeId(4)) - 0.05).abs() < 1e-12);
    }

    #[test]
    fn cluster_rates_aggregate() {
        let mut m = TrafficMatrix::zeros(4);
        m.set(NodeId(0), NodeId(2), 1.0);
        m.set(NodeId(1), NodeId(3), 2.0);
        m.set(NodeId(0), NodeId(1), 4.0);
        let cr = m.cluster_rates(&[0, 0, 1, 1], 2);
        assert_eq!(cr[0][1], 3.0);
        assert_eq!(cr[0][0], 4.0);
        assert_eq!(cr[1][0], 0.0);
    }

    #[test]
    fn weighted_mean_weights_by_rate() {
        let mut m = TrafficMatrix::zeros(3);
        m.set(NodeId(0), NodeId(1), 3.0);
        m.set(NodeId(0), NodeId(2), 1.0);
        // hop(0->1)=1, hop(0->2)=5: mean = (3*1 + 1*5)/4 = 2
        let mean = m.weighted_mean(|_, d| if d == NodeId(1) { 1.0 } else { 5.0 });
        assert!((mean - 2.0).abs() < 1e-12);
    }

    #[test]
    fn injector_rate_statistics() {
        let m = TrafficMatrix::uniform(4, 0.5);
        let inj = Injector::new(&m);
        let mut rng = StdRng::seed_from_u64(1);
        let mut count = 0;
        let trials = 20_000;
        for _ in 0..trials {
            if inj.sample(NodeId(0), &mut rng).is_some() {
                count += 1;
            }
        }
        let p = count as f64 / trials as f64;
        assert!((p - 0.5).abs() < 0.02, "observed rate {p}");
    }

    #[test]
    fn injector_never_picks_self_when_rate_zero() {
        let mut m = TrafficMatrix::zeros(3);
        m.set(NodeId(0), NodeId(2), 0.9);
        let inj = Injector::new(&m);
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..1000 {
            if let Some(d) = inj.sample(NodeId(0), &mut rng) {
                assert_eq!(d, NodeId(2));
            }
        }
    }

    #[test]
    fn injector_idle_source() {
        let m = TrafficMatrix::zeros(3);
        let inj = Injector::new(&m);
        let mut rng = StdRng::seed_from_u64(3);
        assert!(inj.sample(NodeId(1), &mut rng).is_none());
    }
}

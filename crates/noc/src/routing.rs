//! Deterministic, deadlock-free routing tables.
//!
//! Two algorithms cover the paper's fabrics:
//!
//! * **XY dimension-order** for 2-D meshes (the NVFI / VFI mesh baselines) —
//!   deadlock-free by the turn-model argument;
//! * **up\*/down\*** for the irregular small-world WiNoC — a BFS spanning
//!   tree orients every link, and routes never take an *up* link after a
//!   *down* link, which makes the channel dependency graph acyclic.
//!
//! Wireless channels participate in up\*/down\* as *virtual hub* vertices:
//! each channel becomes a vertex adjacent to all of its wireless interfaces,
//! so a wireless transmission is the two-edge path `WI → hub → WI` (and is
//! therefore charged 2 in the hop metric, reflecting the token/serialisation
//! overhead of the shared medium — a wireless shortcut pays off exactly when
//! it replaces ≥ 3 wired hops).
//!
//! Tables are *state-indexed*: a packet carries a [`Phase`] bit (whether it
//! has taken a down link yet), and the next hop is a function of
//! `(current switch, phase, destination)`. This keeps per-hop decisions
//! legal without recomputing whole paths in the router.

use crate::node::NodeId;
use crate::topology::wireless::{ChannelId, WirelessOverlay};
use crate::topology::Topology;
use std::collections::VecDeque;

/// Routing phase of a packet under up\*/down\*.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Phase {
    /// The packet has not yet taken a *down* link; both directions allowed.
    #[default]
    Up,
    /// The packet has gone *down*; only further down links are allowed.
    Down,
}

/// One routing step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Hop {
    /// The packet is at its destination; eject to the local core.
    Local,
    /// Forward over the wire to this neighbouring switch.
    Wire(NodeId),
    /// Transmit on `channel` to the wireless interface at `to`.
    Wireless {
        /// Channel to transmit on.
        channel: ChannelId,
        /// Receiving wireless interface.
        to: NodeId,
    },
}

/// A table entry: the hop to take and the packet's phase after taking it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RouteEntry {
    /// The hop to take.
    pub hop: Hop,
    /// Phase the packet carries after this hop.
    pub next_phase: Phase,
}

/// Errors from routing-table construction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RoutingError {
    /// The topology (with wireless hubs) is not connected.
    Disconnected,
    /// The topology is empty.
    Empty,
}

impl std::fmt::Display for RoutingError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RoutingError::Disconnected => write!(f, "topology is not connected"),
            RoutingError::Empty => write!(f, "topology has no nodes"),
        }
    }
}

impl std::error::Error for RoutingError {}

/// A complete deterministic routing function for one network.
///
/// # Examples
///
/// ```
/// use mapwave_noc::routing::{RoutingTable, Hop, Phase};
/// use mapwave_noc::topology::mesh::mesh;
/// use mapwave_noc::NodeId;
///
/// let table = RoutingTable::xy(8, 8);
/// // XY routes horizontally first: node 0 -> node 3 starts eastward.
/// let entry = table.next_hop(NodeId(0), Phase::Up, NodeId(3));
/// assert_eq!(entry.hop, Hop::Wire(NodeId(1)));
/// # let _ = mesh(8, 8, 2.5);
/// ```
#[derive(Debug, Clone)]
pub struct RoutingTable {
    n: usize,
    /// `entries[(v * 2 + phase) * n + dest]`
    entries: Vec<Option<RouteEntry>>,
    /// `dist[(v * 2 + phase) * n + dest]` in hop-metric units (wireless = 2).
    dist: Vec<u32>,
}

impl RoutingTable {
    /// Number of switches covered by the table.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the table covers no switches.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    fn idx(&self, v: NodeId, phase: Phase, dest: NodeId) -> usize {
        let p = match phase {
            Phase::Up => 0,
            Phase::Down => 1,
        };
        (v.index() * 2 + p) * self.n + dest.index()
    }

    /// The next hop for a packet at `v` in `phase` heading to `dest`.
    ///
    /// # Panics
    ///
    /// Panics if no legal route exists from this state — the simulator only
    /// consults states that lie on precomputed legal routes, so this fires
    /// only on misuse (e.g. fabricating a `Down` phase at an arbitrary node).
    pub fn next_hop(&self, v: NodeId, phase: Phase, dest: NodeId) -> RouteEntry {
        self.entries[self.idx(v, phase, dest)]
            .unwrap_or_else(|| panic!("no route from {v} (phase {phase:?}) to {dest}"))
    }

    /// The table entry for this state, or `None` when the state has no
    /// legal route (used when precomputing flat route tables, which must
    /// cover unreachable states without panicking).
    pub fn try_entry(&self, v: NodeId, phase: Phase, dest: NodeId) -> Option<RouteEntry> {
        self.entries[self.idx(v, phase, dest)]
    }

    /// Hop-metric distance from `src` (fresh packet, phase Up) to `dest`.
    /// Wireless traversals count 2; wire hops count 1.
    pub fn distance(&self, src: NodeId, dest: NodeId) -> u32 {
        self.dist[self.idx(src, Phase::Up, dest)]
    }

    /// The full hop sequence from `src` to `dest` (excluding the final
    /// `Local` ejection).
    pub fn path(&self, src: NodeId, dest: NodeId) -> Vec<Hop> {
        let mut hops = Vec::new();
        let mut at = src;
        let mut phase = Phase::Up;
        while at != dest {
            let e = self.next_hop(at, phase, dest);
            match e.hop {
                Hop::Local => break,
                Hop::Wire(w) => {
                    hops.push(e.hop);
                    at = w;
                }
                Hop::Wireless { to, .. } => {
                    hops.push(e.hop);
                    at = to;
                }
            }
            phase = e.next_phase;
            assert!(
                hops.len() <= 4 * self.n + 8,
                "routing loop detected {src}->{dest}"
            );
        }
        hops
    }

    /// Number of wireless traversals on the `src → dest` route.
    pub fn wireless_hops(&self, src: NodeId, dest: NodeId) -> usize {
        self.path(src, dest)
            .iter()
            .filter(|h| matches!(h, Hop::Wireless { .. }))
            .count()
    }

    /// Builds the XY dimension-order table for a `cols x rows` mesh.
    ///
    /// # Panics
    ///
    /// Panics if `cols == 0 || rows == 0`.
    pub fn xy(cols: usize, rows: usize) -> Self {
        assert!(cols > 0 && rows > 0, "mesh dimensions must be nonzero");
        let n = cols * rows;
        let mut entries = vec![None; n * 2 * n];
        let mut dist = vec![0u32; n * 2 * n];
        let mut table = RoutingTable {
            n,
            entries: Vec::new(),
            dist: Vec::new(),
        };
        for v in 0..n {
            let (vc, vr) = (v % cols, v / cols);
            for d in 0..n {
                let (dc, dr) = (d % cols, d / cols);
                let hop = if v == d {
                    Hop::Local
                } else if vc < dc {
                    Hop::Wire(NodeId(v + 1))
                } else if vc > dc {
                    Hop::Wire(NodeId(v - 1))
                } else if vr < dr {
                    Hop::Wire(NodeId(v + cols))
                } else {
                    Hop::Wire(NodeId(v - cols))
                };
                let h = (vc.abs_diff(dc) + vr.abs_diff(dr)) as u32;
                for p in 0..2 {
                    entries[(v * 2 + p) * n + d] = Some(RouteEntry {
                        hop,
                        next_phase: Phase::Up,
                    });
                    dist[(v * 2 + p) * n + d] = h;
                }
            }
        }
        table.entries = entries;
        table.dist = dist;
        table
    }

    /// Builds an up\*/down\* table for an arbitrary connected topology with
    /// an optional wireless overlay.
    ///
    /// The spanning tree is rooted at the highest-degree switch (ties: lowest
    /// id). Shortest legal routes are computed on the phase-expanded graph;
    /// ties prefer wired hops, then lower node ids, keeping the table
    /// deterministic.
    ///
    /// # Errors
    ///
    /// [`RoutingError::Disconnected`] if some pair has no legal route (an
    /// up\*/down\* route exists between every pair whenever the graph is
    /// connected, because root-via paths are always legal);
    /// [`RoutingError::Empty`] for an empty topology.
    pub fn up_down(topo: &Topology, overlay: &WirelessOverlay) -> Result<Self, RoutingError> {
        Self::up_down_weighted(topo, overlay, 1)
    }

    /// [`RoutingTable::up_down`] with an explicit hub-edge weight: a
    /// wireless traversal costs `2 * hub_edge_weight` in the distance
    /// metric, so raising the weight reserves the scarce shared channels
    /// for routes that replace many wired hops. The default (weight 1,
    /// wireless hop = 2) uses wireless aggressively; the WiNoC platform
    /// uses weight 2 (wireless hop = 4), reflecting the channel's lower
    /// bandwidth and token-access latency relative to point-to-point wires.
    ///
    /// # Errors
    ///
    /// Same conditions as [`RoutingTable::up_down`].
    ///
    /// # Panics
    ///
    /// Panics if `hub_edge_weight == 0`.
    pub fn up_down_weighted(
        topo: &Topology,
        overlay: &WirelessOverlay,
        hub_edge_weight: u32,
    ) -> Result<Self, RoutingError> {
        assert!(hub_edge_weight > 0, "hub edge weight must be nonzero");
        let n = topo.len();
        if n == 0 {
            return Err(RoutingError::Empty);
        }
        let hubs = overlay.channel_count();
        let total = n + hubs; // switches then hub vertices

        // Extended adjacency.
        let mut adj: Vec<Vec<usize>> = vec![Vec::new(); total];
        for v in topo.nodes() {
            adj[v.index()] = topo.neighbors(v).iter().map(|w| w.index()).collect();
        }
        for wi in overlay.interfaces() {
            let hub = n + wi.channel.index();
            adj[wi.node.index()].push(hub);
            adj[hub].push(wi.node.index());
        }
        for a in &mut adj {
            a.sort_unstable();
        }

        // BFS levels from the root for the up/down orientation. The root
        // must be a high-degree switch: every "crossing" route climbs
        // toward the root, so the root's port count bounds the bandwidth of
        // the tree's upper cut.
        let root = (0..n)
            .max_by_key(|&v| (adj[v].len(), usize::MAX - v))
            .expect("n > 0");
        let mut level = vec![usize::MAX; total];
        level[root] = 0;
        let mut queue = VecDeque::from([root]);
        while let Some(v) = queue.pop_front() {
            for &w in &adj[v] {
                if level[w] == usize::MAX {
                    level[w] = level[v] + 1;
                    queue.push_back(w);
                }
            }
        }
        if level.contains(&usize::MAX) {
            return Err(RoutingError::Disconnected);
        }

        // Edge direction: going v -> w is "up" iff (level[w], w) < (level[v], v).
        let is_up = |v: usize, w: usize| (level[w], w) < (level[v], v);

        // Per-destination reverse Dijkstra over the phase-expanded graph.
        // State id: vertex * 2 + phase (phase 0 = Up, 1 = Down).
        // Wire edges weigh 1; hub (wireless) edges weigh `hub_edge_weight`.
        let state = |v: usize, p: usize| v * 2 + p;
        let edge_w = |a: usize, b: usize| -> u32 {
            if a >= n || b >= n {
                hub_edge_weight
            } else {
                1
            }
        };
        let mut entries = vec![None; n * 2 * n];
        let mut dist_out = vec![u32::MAX; n * 2 * n];

        // Forward transitions: (v, p) -> (w, q) legal?
        //   p == Up:  up edge -> (w, Up); down edge -> (w, Down)
        //   p == Down: down edge only -> (w, Down)
        // The reverse search needs predecessors of (w, q):
        //   (w, Up)  <- (v, Up) where v->w is up
        //   (w, Down)<- (v, Up) or (v, Down) where v->w is down
        for d in 0..n {
            let mut dist = vec![u32::MAX; total * 2];
            let mut heap: std::collections::BinaryHeap<std::cmp::Reverse<(u32, usize)>> =
                std::collections::BinaryHeap::new();
            for p in 0..2 {
                dist[state(d, p)] = 0;
                heap.push(std::cmp::Reverse((0, state(d, p))));
            }
            while let Some(std::cmp::Reverse((c, s))) = heap.pop() {
                if c > dist[s] {
                    continue;
                }
                let (w, q) = (s / 2, s % 2);
                for &v in &adj[w] {
                    let up = is_up(v, w);
                    // Which predecessor states may step v -> w into phase q?
                    let preds: &[usize] = if up {
                        if q == 0 {
                            &[0]
                        } else {
                            &[]
                        }
                    } else if q == 1 {
                        &[0, 1]
                    } else {
                        &[]
                    };
                    let nc = c + edge_w(v, w);
                    for &pp in preds {
                        let ps = state(v, pp);
                        if nc < dist[ps] {
                            dist[ps] = nc;
                            heap.push(std::cmp::Reverse((nc, ps)));
                        }
                    }
                }
            }

            // Fill table entries for destination d.
            for v in 0..n {
                for p in 0..2 {
                    let out = (v * 2 + p) * n + d;
                    if v == d {
                        entries[out] = Some(RouteEntry {
                            hop: Hop::Local,
                            next_phase: if p == 0 { Phase::Up } else { Phase::Down },
                        });
                        dist_out[out] = 0;
                        continue;
                    }
                    let my = dist[state(v, p)];
                    if my == u32::MAX {
                        continue; // unreachable state; never consulted
                    }
                    dist_out[out] = my;
                    // Collect every legal equal-cost next state and pick one
                    // by a deterministic hash of (v, d): equal-cost path
                    // diversity spreads load across the up*/down* DAG
                    // instead of funnelling all flows through the same
                    // lowest-id links.
                    let mut candidates: Vec<(bool, usize, usize)> = Vec::new();
                    for &w in &adj[v] {
                        let up = is_up(v, w);
                        let q = if p == 1 {
                            if up {
                                continue;
                            }
                            1
                        } else if up {
                            0
                        } else {
                            1
                        };
                        if dist[state(w, q)].saturating_add(edge_w(v, w)) == my {
                            candidates.push((w >= n, w, q));
                        }
                    }
                    candidates.sort_unstable();
                    assert!(
                        !candidates.is_empty(),
                        "finite distance implies a next state"
                    );
                    // Wired candidates sort first, so the shared wireless
                    // channels are taken only when no equal-cost wire
                    // exists; ties then break toward the lowest vertex id,
                    // keeping the table deterministic.
                    let (is_hub, w, q) = candidates[0];
                    if !is_hub {
                        entries[out] = Some(RouteEntry {
                            hop: Hop::Wire(NodeId(w)),
                            next_phase: if q == 0 { Phase::Up } else { Phase::Down },
                        });
                    } else {
                        // Resolve through the hub to the receiving WI.
                        let hub = w;
                        let mut best_wi: Option<(usize, usize)> = None;
                        for &u in &adj[hub] {
                            if u == v {
                                continue;
                            }
                            let up2 = is_up(hub, u);
                            let q2 = if q == 1 {
                                if up2 {
                                    continue;
                                }
                                1
                            } else if up2 {
                                0
                            } else {
                                1
                            };
                            if dist[state(u, q2)] == my.saturating_sub(2 * hub_edge_weight)
                                && best_wi.is_none_or(|(bu, bq)| (u, q2) < (bu, bq))
                            {
                                best_wi = Some((u, q2));
                            }
                        }
                        let (u, q2) = best_wi.expect("hub on shortest path has an exit WI");
                        entries[out] = Some(RouteEntry {
                            hop: Hop::Wireless {
                                channel: ChannelId(hub - n),
                                to: NodeId(u),
                            },
                            next_phase: if q2 == 0 { Phase::Up } else { Phase::Down },
                        });
                    }
                }
            }
        }

        // A connected graph always admits legal routes from phase Up.
        for v in 0..n {
            for d in 0..n {
                if entries[(v * 2) * n + d].is_none() {
                    return Err(RoutingError::Disconnected);
                }
            }
        }

        Ok(RoutingTable {
            n,
            entries,
            dist: dist_out,
        })
    }
}

/// Distance-only up\*/down\* evaluation with reusable scratch buffers.
///
/// [`RoutingTable::up_down_weighted`] materialises a next-hop entry for
/// every `(switch, phase, destination)` state; the per-state candidate
/// collection, tie-break sorting, and hub resolution dominate construction
/// cost. Placement search only needs the hop-metric *distances*, and
/// shortest-path distances are unique values independent of tie-breaking —
/// so an evaluator that computes just the distances returns exactly the
/// numbers `RoutingTable::distance` would, at a fraction of the cost.
///
/// The evaluator keeps flat scratch across calls (no per-evaluation
/// allocation once warm) and replaces the binary heap with a Dial bucket
/// queue: edge weights are only `1` (wire) and `hub_edge_weight` (hub), so
/// a ring of `hub_edge_weight + 1` buckets yields monotone extraction.
///
/// Usage: construct once per topology, [`prepare`](Self::prepare) per
/// overlay (rebuilds the extended adjacency and BFS levels), then query
/// [`distances_into`](Self::distances_into) per destination of interest.
///
/// # Examples
///
/// ```
/// use mapwave_noc::routing::{RoutingTable, UpDownDistances};
/// use mapwave_noc::topology::mesh::mesh;
/// use mapwave_noc::topology::wireless::WirelessOverlay;
/// use mapwave_noc::NodeId;
///
/// let m = mesh(4, 4, 1.0);
/// let table = RoutingTable::up_down(&m, &WirelessOverlay::none()).unwrap();
/// let mut eval = UpDownDistances::new(&m, 1);
/// assert!(eval.prepare(&WirelessOverlay::none()));
/// let mut out = vec![0u32; 16];
/// eval.distances_into(NodeId(5), &mut out);
/// for s in 0..16 {
///     assert_eq!(out[s], table.distance(NodeId(s), NodeId(5)));
/// }
/// ```
#[derive(Debug, Clone)]
pub struct UpDownDistances {
    n: usize,
    hub_edge_weight: u32,
    /// Wired adjacency CSR over the switches (fixed for the topology).
    wired_off: Vec<usize>,
    wired_adj: Vec<usize>,
    /// Combined adjacency CSR (switches then hub vertices); per overlay.
    adj_off: Vec<usize>,
    adj: Vec<usize>,
    /// BFS levels from the spanning-tree root; per overlay.
    level: Vec<usize>,
    /// Phase-expanded distances for the current destination.
    dist: Vec<u32>,
    /// Dial ring: `hub_edge_weight + 1` buckets of state ids.
    buckets: Vec<Vec<usize>>,
    bfs: VecDeque<usize>,
}

impl UpDownDistances {
    /// Builds an evaluator for `topo` with the given hub-edge weight
    /// (same metric as [`RoutingTable::up_down_weighted`]).
    ///
    /// # Panics
    ///
    /// Panics if `hub_edge_weight == 0`.
    pub fn new(topo: &Topology, hub_edge_weight: u32) -> Self {
        assert!(hub_edge_weight > 0, "hub edge weight must be nonzero");
        let n = topo.len();
        let mut wired_off = Vec::with_capacity(n + 1);
        let mut wired_adj = Vec::new();
        wired_off.push(0);
        for v in topo.nodes() {
            wired_adj.extend(topo.neighbors(v).iter().map(|w| w.index()));
            wired_off.push(wired_adj.len());
        }
        UpDownDistances {
            n,
            hub_edge_weight,
            wired_off,
            wired_adj,
            adj_off: Vec::new(),
            adj: Vec::new(),
            level: Vec::new(),
            dist: Vec::new(),
            buckets: vec![Vec::new(); hub_edge_weight as usize + 1],
            bfs: VecDeque::new(),
        }
    }

    /// Rebuilds the extended adjacency and spanning-tree levels for
    /// `overlay`. Returns `false` when the extended graph is disconnected
    /// or empty — exactly the cases where [`RoutingTable::up_down_weighted`]
    /// returns an error and a placement cost would be infinite.
    pub fn prepare(&mut self, overlay: &WirelessOverlay) -> bool {
        let n = self.n;
        if n == 0 {
            return false;
        }
        let hubs = overlay.channel_count();
        let total = n + hubs;

        // Degree counts: wired degree plus one per attached WI; hub degree
        // is its member count.
        self.adj_off.clear();
        self.adj_off.resize(total + 1, 0);
        for v in 0..n {
            self.adj_off[v + 1] = self.wired_off[v + 1] - self.wired_off[v];
        }
        for wi in overlay.interfaces() {
            self.adj_off[wi.node.index() + 1] += 1;
            self.adj_off[n + wi.channel.index() + 1] += 1;
        }
        for v in 0..total {
            self.adj_off[v + 1] += self.adj_off[v];
        }
        self.adj.clear();
        self.adj.resize(self.adj_off[total], usize::MAX);
        // Fill via per-vertex cursors; neighbour order is irrelevant to
        // levels and distances (BFS levels are shortest hop counts).
        let mut cursor: Vec<usize> = self.adj_off[..total].to_vec();
        for (v, cur) in cursor.iter_mut().enumerate().take(n) {
            for &w in &self.wired_adj[self.wired_off[v]..self.wired_off[v + 1]] {
                self.adj[*cur] = w;
                *cur += 1;
            }
        }
        for wi in overlay.interfaces() {
            let (v, hub) = (wi.node.index(), n + wi.channel.index());
            self.adj[cursor[v]] = hub;
            cursor[v] += 1;
            self.adj[cursor[hub]] = v;
            cursor[hub] += 1;
        }

        // Root: highest combined degree, ties toward the lowest switch id —
        // the same selection as `RoutingTable::up_down_weighted`.
        let root = (0..n)
            .max_by_key(|&v| (self.adj_off[v + 1] - self.adj_off[v], usize::MAX - v))
            .expect("n > 0");
        self.level.clear();
        self.level.resize(total, usize::MAX);
        self.level[root] = 0;
        self.bfs.clear();
        self.bfs.push_back(root);
        let mut visited = 1usize;
        while let Some(v) = self.bfs.pop_front() {
            for &w in &self.adj[self.adj_off[v]..self.adj_off[v + 1]] {
                if self.level[w] == usize::MAX {
                    self.level[w] = self.level[v] + 1;
                    visited += 1;
                    self.bfs.push_back(w);
                }
            }
        }
        visited == total
    }

    /// Writes the hop-metric distance from every switch (fresh packet,
    /// phase Up) to `dest` into `out[src]` — the same values
    /// [`RoutingTable::distance`] reports for the prepared overlay.
    ///
    /// # Panics
    ///
    /// Panics if `out.len() != topo.len()`, if `dest` is out of range, or
    /// if called before a successful [`prepare`](Self::prepare).
    pub fn distances_into(&mut self, dest: NodeId, out: &mut [u32]) {
        let n = self.n;
        assert_eq!(out.len(), n, "output slice must cover every switch");
        let total = self.level.len();
        assert!(total >= n && dest.index() < n, "prepare() before querying");
        let w_hub = self.hub_edge_weight;
        let ring = w_hub as usize + 1;
        let state = |v: usize, p: usize| v * 2 + p;

        self.dist.clear();
        self.dist.resize(total * 2, u32::MAX);
        for b in &mut self.buckets {
            b.clear();
        }
        let d = dest.index();
        self.dist[state(d, 0)] = 0;
        self.dist[state(d, 1)] = 0;
        self.buckets[0].push(state(d, 0));
        self.buckets[0].push(state(d, 1));
        let mut pending = 2usize;
        let mut c = 0u32;

        // Reverse Dijkstra over the phase-expanded graph via Dial buckets:
        // weights are 1 or `w_hub`, so draining buckets in ring order pops
        // states in nondecreasing cost — distances match the heap version.
        while pending > 0 {
            while let Some(s) = self.buckets[c as usize % ring].pop() {
                pending -= 1;
                if self.dist[s] != c {
                    continue; // stale entry superseded by a shorter path
                }
                let (w, q) = (s / 2, s % 2);
                for &v in &self.adj[self.adj_off[w]..self.adj_off[w + 1]] {
                    // Predecessor states that may step v -> w into phase q
                    // (same transition legality as the table builder).
                    let up = (self.level[w], w) < (self.level[v], v);
                    let preds: &[usize] = if up {
                        if q == 0 {
                            &[0]
                        } else {
                            &[]
                        }
                    } else if q == 1 {
                        &[0, 1]
                    } else {
                        &[]
                    };
                    let nc = c + if v >= n || w >= n { w_hub } else { 1 };
                    for &pp in preds {
                        let ps = state(v, pp);
                        if nc < self.dist[ps] {
                            self.dist[ps] = nc;
                            self.buckets[nc as usize % ring].push(ps);
                            pending += 1;
                        }
                    }
                }
            }
            c += 1;
        }

        for (src, slot) in out.iter_mut().enumerate() {
            let dv = self.dist[state(src, 0)];
            // A connected graph always admits an Up-phase route: climb the
            // tree to the root, then descend along BFS-tree edges.
            debug_assert_ne!(dv, u32::MAX, "connected graph has Up routes");
            *slot = dv;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::grid_positions;
    use crate::topology::mesh::mesh;
    use crate::topology::small_world::SmallWorldBuilder;
    use crate::topology::wireless::{WirelessInterface, WirelessOverlay};

    #[test]
    fn xy_routes_reach_destination() {
        let t = RoutingTable::xy(4, 4);
        for s in 0..16 {
            for d in 0..16 {
                let path = t.path(NodeId(s), NodeId(d));
                let mut at = NodeId(s);
                for hop in &path {
                    match hop {
                        Hop::Wire(w) => at = *w,
                        _ => panic!("mesh path must be wired"),
                    }
                }
                assert_eq!(at, NodeId(d));
                assert_eq!(path.len() as u32, t.distance(NodeId(s), NodeId(d)));
            }
        }
    }

    #[test]
    fn xy_distance_is_manhattan() {
        let t = RoutingTable::xy(8, 8);
        assert_eq!(t.distance(NodeId(0), NodeId(63)), 14);
        assert_eq!(t.distance(NodeId(0), NodeId(7)), 7);
        assert_eq!(t.distance(NodeId(9), NodeId(9)), 0);
    }

    #[test]
    fn xy_goes_horizontal_first() {
        let t = RoutingTable::xy(4, 4);
        // 0 -> 15: east, east, east, then south.
        let path = t.path(NodeId(0), NodeId(15));
        assert_eq!(path[0], Hop::Wire(NodeId(1)));
        assert_eq!(path[2], Hop::Wire(NodeId(3)));
        assert_eq!(path[3], Hop::Wire(NodeId(7)));
    }

    #[test]
    fn up_down_on_mesh_reaches_everything() {
        let m = mesh(4, 4, 1.0);
        let t = RoutingTable::up_down(&m, &WirelessOverlay::none()).unwrap();
        for s in 0..16 {
            for d in 0..16 {
                let path = t.path(NodeId(s), NodeId(d));
                let mut at = NodeId(s);
                for hop in &path {
                    if let Hop::Wire(w) = hop {
                        assert!(m.has_link(at, *w), "nonexistent link used");
                        at = *w;
                    }
                }
                assert_eq!(at, NodeId(d));
            }
        }
    }

    #[test]
    fn up_down_never_up_after_down() {
        // Structural check: follow every path and verify phase monotonicity
        // is respected by the entries themselves (Down states only produce
        // Down next-phases).
        let m = mesh(5, 5, 1.0);
        let t = RoutingTable::up_down(&m, &WirelessOverlay::none()).unwrap();
        for v in 0..25 {
            for d in 0..25 {
                if v == d {
                    continue;
                }
                if t.dist[(v * 2 + 1) * 25 + d] != u32::MAX {
                    let e = t.next_hop(NodeId(v), Phase::Down, NodeId(d));
                    assert_eq!(e.next_phase, Phase::Down);
                }
            }
        }
    }

    fn quadrant_clusters() -> Vec<usize> {
        (0..64).map(|i| (i % 8) / 4 + 2 * ((i / 8) / 4)).collect()
    }

    fn paper_overlay() -> WirelessOverlay {
        // One WI per channel per quadrant, near quadrant centres.
        let nodes = [
            (9, 0),
            (18, 1),
            (27, 2), // cluster 0
            (13, 0),
            (22, 1),
            (31, 2), // cluster 1
            (41, 0),
            (50, 1),
            (33, 2), // cluster 2
            (45, 0),
            (54, 1),
            (37, 2), // cluster 3
        ];
        WirelessOverlay::new(
            nodes
                .iter()
                .map(|&(n, c)| WirelessInterface {
                    node: NodeId(n),
                    channel: ChannelId(c),
                })
                .collect(),
            3,
        )
        .unwrap()
    }

    #[test]
    fn up_down_with_wireless_reaches_everything() {
        let topo = SmallWorldBuilder::new(grid_positions(8, 8, 2.5), quadrant_clusters())
            .seed(3)
            .build()
            .unwrap();
        let overlay = paper_overlay();
        let t = RoutingTable::up_down(&topo, &overlay).unwrap();
        let mut wireless_used = 0usize;
        for s in 0..64 {
            for d in 0..64 {
                let path = t.path(NodeId(s), NodeId(d));
                let mut at = NodeId(s);
                for hop in &path {
                    match hop {
                        Hop::Wire(w) => {
                            assert!(topo.has_link(at, *w));
                            at = *w;
                        }
                        Hop::Wireless { channel, to } => {
                            assert_eq!(overlay.wireless_hop(at, *to), Some(*channel));
                            at = *to;
                            wireless_used += 1;
                        }
                        Hop::Local => unreachable!(),
                    }
                }
                assert_eq!(at, NodeId(d));
            }
        }
        assert!(wireless_used > 0, "wireless shortcuts should be used");
    }

    #[test]
    fn wireless_shortcut_shortens_long_paths() {
        // A long line of 30 nodes with WIs at both ends: the wireless hop
        // (cost 2) must beat the 29-hop wire path.
        let mut topo = Topology::new(
            (0..30)
                .map(|i| crate::node::Position::new(i as f64, 0.0))
                .collect(),
            crate::topology::TopologyKind::Custom,
        );
        for i in 0..29 {
            topo.add_link(NodeId(i), NodeId(i + 1)).unwrap();
        }
        let overlay = WirelessOverlay::new(
            vec![
                WirelessInterface {
                    node: NodeId(0),
                    channel: ChannelId(0),
                },
                WirelessInterface {
                    node: NodeId(29),
                    channel: ChannelId(0),
                },
            ],
            1,
        )
        .unwrap();
        let t = RoutingTable::up_down(&topo, &overlay).unwrap();
        assert_eq!(t.distance(NodeId(0), NodeId(29)), 2);
        assert_eq!(t.wireless_hops(NodeId(0), NodeId(29)), 1);
    }

    #[test]
    fn disconnected_topology_rejected() {
        let topo = Topology::new(
            vec![
                crate::node::Position::new(0.0, 0.0),
                crate::node::Position::new(1.0, 0.0),
            ],
            crate::topology::TopologyKind::Custom,
        );
        assert_eq!(
            RoutingTable::up_down(&topo, &WirelessOverlay::none()),
            Err(RoutingError::Disconnected)
        );
    }

    impl PartialEq for RoutingTable {
        fn eq(&self, other: &Self) -> bool {
            self.n == other.n && self.entries == other.entries
        }
    }

    #[test]
    fn empty_topology_rejected() {
        let topo = Topology::new(vec![], crate::topology::TopologyKind::Custom);
        assert_eq!(
            RoutingTable::up_down(&topo, &WirelessOverlay::none()).unwrap_err(),
            RoutingError::Empty
        );
    }

    fn assert_distances_match(
        topo: &Topology,
        overlay: &WirelessOverlay,
        weight: u32,
        eval: &mut UpDownDistances,
    ) {
        let table = RoutingTable::up_down_weighted(topo, overlay, weight).unwrap();
        assert!(eval.prepare(overlay), "table built, so graph is connected");
        let n = topo.len();
        let mut out = vec![0u32; n];
        for d in 0..n {
            eval.distances_into(NodeId(d), &mut out);
            for (s, &got) in out.iter().enumerate() {
                assert_eq!(
                    got,
                    table.distance(NodeId(s), NodeId(d)),
                    "distance mismatch {s}->{d} (weight {weight})"
                );
            }
        }
    }

    #[test]
    fn distance_evaluator_matches_table_on_mesh() {
        let m = mesh(4, 4, 1.0);
        let mut eval = UpDownDistances::new(&m, 1);
        assert_distances_match(&m, &WirelessOverlay::none(), 1, &mut eval);
    }

    #[test]
    fn distance_evaluator_matches_table_on_winoc() {
        let topo = SmallWorldBuilder::new(grid_positions(8, 8, 2.5), quadrant_clusters())
            .seed(3)
            .build()
            .unwrap();
        for weight in [1u32, 2, 3] {
            let mut eval = UpDownDistances::new(&topo, weight);
            assert_distances_match(&topo, &paper_overlay(), weight, &mut eval);
        }
    }

    #[test]
    fn distance_evaluator_scratch_reuse_across_overlays() {
        // One evaluator, several overlays (including none): each prepare()
        // must fully reset the per-overlay state.
        let topo = SmallWorldBuilder::new(grid_positions(8, 8, 2.5), quadrant_clusters())
            .seed(3)
            .build()
            .unwrap();
        let mut eval = UpDownDistances::new(&topo, 2);
        let moved = WirelessOverlay::new(
            paper_overlay()
                .interfaces()
                .iter()
                .map(|w| WirelessInterface {
                    node: NodeId((w.node.index() + 8) % 64),
                    channel: w.channel,
                })
                .collect(),
            3,
        )
        .unwrap();
        for overlay in [paper_overlay(), moved, WirelessOverlay::none()] {
            assert_distances_match(&topo, &overlay, 2, &mut eval);
        }
    }

    #[test]
    fn distance_evaluator_detects_disconnection() {
        let topo = Topology::new(
            vec![
                crate::node::Position::new(0.0, 0.0),
                crate::node::Position::new(1.0, 0.0),
            ],
            crate::topology::TopologyKind::Custom,
        );
        let mut eval = UpDownDistances::new(&topo, 1);
        assert!(!eval.prepare(&WirelessOverlay::none()));
        // An unused channel's hub vertex is isolated: the table builder
        // rejects it, and so must the evaluator.
        let m = mesh(2, 2, 1.0);
        assert!(RoutingTable::up_down(&m, &WirelessOverlay::new(vec![], 1).unwrap()).is_err());
        let mut eval = UpDownDistances::new(&m, 1);
        assert!(!eval.prepare(&WirelessOverlay::new(vec![], 1).unwrap()));
    }

    #[test]
    fn single_node_routes_locally() {
        let topo = Topology::new(
            vec![crate::node::Position::new(0.0, 0.0)],
            crate::topology::TopologyKind::Custom,
        );
        let t = RoutingTable::up_down(&topo, &WirelessOverlay::none()).unwrap();
        assert_eq!(t.next_hop(NodeId(0), Phase::Up, NodeId(0)).hop, Hop::Local);
    }
}

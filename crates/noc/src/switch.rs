//! Switch microarchitecture state: ports, virtual-channel buffers, wormhole
//! bindings.
//!
//! Port numbering at each switch is fixed and deterministic:
//!
//! * port 0 — the local core (injection on the input side, ejection on the
//!   output side);
//! * ports `1..=degree` — one per wired neighbour, in sorted neighbour
//!   order;
//! * port `degree + 1` — the wireless port, present only on switches that
//!   carry a wireless interface.
//!
//! Every input port holds one FIFO per **virtual channel**. With a single
//! VC this is the paper's plain wormhole router; with more, VC 0 is the
//! deadlock-free *escape* channel (up\*/down\* routed) and the upper VCs
//! carry minimally-adaptive traffic (see [`crate::sim`]).

use crate::flit::Flit;
use crate::node::NodeId;
use crate::topology::wireless::WirelessOverlay;
use crate::topology::Topology;
use std::collections::VecDeque;

/// Index of the local (core) port on every switch.
pub const PORT_LOCAL: usize = 0;

/// Static port layout of every switch in a network.
#[derive(Debug, Clone)]
pub struct PortMap {
    /// `wire_port[v]` maps a neighbour id to the local port index at `v`.
    wire_port: Vec<Vec<(NodeId, usize)>>,
    /// `port_peer[v][p - 1]` is the neighbour behind wired port `p`.
    port_peer: Vec<Vec<NodeId>>,
    /// Wireless port index at `v`, if `v` carries a WI.
    wireless_port: Vec<Option<usize>>,
}

impl PortMap {
    /// Builds the port layout for `topo` with `overlay`.
    pub fn new(topo: &Topology, overlay: &WirelessOverlay) -> Self {
        let n = topo.len();
        let mut wire_port = Vec::with_capacity(n);
        let mut port_peer = Vec::with_capacity(n);
        let mut wireless_port = Vec::with_capacity(n);
        for v in topo.nodes() {
            let neigh = topo.neighbors(v);
            wire_port.push(neigh.iter().enumerate().map(|(i, &w)| (w, i + 1)).collect());
            port_peer.push(neigh.to_vec());
            wireless_port.push(if overlay.is_wi(v) {
                Some(neigh.len() + 1)
            } else {
                None
            });
        }
        PortMap {
            wire_port,
            port_peer,
            wireless_port,
        }
    }

    /// Number of ports at `v` (local + wires + wireless if present).
    pub fn port_count(&self, v: NodeId) -> usize {
        1 + self.port_peer[v.index()].len() + usize::from(self.wireless_port[v.index()].is_some())
    }

    /// Port at `v` that faces wired neighbour `w`.
    ///
    /// # Panics
    ///
    /// Panics if `w` is not a neighbour of `v`.
    pub fn wire_port(&self, v: NodeId, w: NodeId) -> usize {
        self.wire_port[v.index()]
            .iter()
            .find(|&&(n, _)| n == w)
            .map(|&(_, p)| p)
            .unwrap_or_else(|| panic!("{w} is not a wired neighbour of {v}"))
    }

    /// The neighbour behind wired port `p` of `v`, if `p` is a wired port.
    pub fn peer(&self, v: NodeId, p: usize) -> Option<NodeId> {
        if p == PORT_LOCAL {
            return None;
        }
        self.port_peer[v.index()].get(p - 1).copied()
    }

    /// Wireless port index at `v`, if any.
    pub fn wireless_port(&self, v: NodeId) -> Option<usize> {
        self.wireless_port[v.index()]
    }

    /// Switch radix at `v` (same as [`PortMap::port_count`]); used for
    /// energy accounting.
    pub fn radix(&self, v: NodeId) -> usize {
        self.port_count(v)
    }
}

/// Where a wormhole at an input VC is currently streaming.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OutRoute {
    /// Output port reserved by the packet.
    pub out_port: usize,
    /// Receiving wireless interface for wireless output ports.
    pub wireless_to: Option<NodeId>,
    /// Downstream virtual channel the packet was allocated.
    pub down_vc: usize,
}

/// The input VC currently owning an output port.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Owner {
    /// Owning input port.
    pub in_port: usize,
    /// Owning input virtual channel.
    pub in_vc: usize,
}

/// Dynamic state of one switch.
#[derive(Debug, Clone)]
pub struct SwitchState {
    /// One FIFO per input port per virtual channel: `in_buf[port][vc]`.
    pub in_buf: Vec<Vec<VecDeque<Flit>>>,
    /// Per-VC capacity of each input port's FIFOs.
    pub in_cap: Vec<usize>,
    /// Wormhole binding per input port per VC (set by the head, cleared by
    /// the tail).
    pub in_route: Vec<Vec<Option<OutRoute>>>,
    /// Which input VC owns each `(output port, downstream VC)` pair. The
    /// physical port is time-multiplexed per flit between downstream VCs —
    /// per-VC ownership is what keeps a stalled adaptive wormhole from
    /// blocking the escape network on a shared link.
    pub out_owner: Vec<Vec<Option<Owner>>>,
    /// Round-robin pointer for new-packet arbitration.
    pub rr_next: usize,
    /// Fractional clock accumulator (fires when ≥ 1).
    pub clock_acc: f64,
}

impl SwitchState {
    /// Creates the state for a switch with the given per-port (per-VC)
    /// capacities and `vcs` virtual channels per port.
    ///
    /// # Panics
    ///
    /// Panics if `vcs == 0`.
    pub fn new(in_cap: Vec<usize>, vcs: usize) -> Self {
        assert!(vcs > 0, "need at least one virtual channel");
        let ports = in_cap.len();
        SwitchState {
            in_buf: (0..ports)
                .map(|_| (0..vcs).map(|_| VecDeque::new()).collect())
                .collect(),
            in_cap,
            in_route: vec![vec![None; vcs]; ports],
            out_owner: vec![vec![None; vcs]; ports],
            rr_next: 0,
            clock_acc: 0.0,
        }
    }

    /// Number of virtual channels per port.
    pub fn vcs(&self) -> usize {
        self.in_buf.first().map_or(0, Vec::len)
    }

    /// Free slots in input buffer `(p, vc)`.
    pub fn space(&self, p: usize, vc: usize) -> usize {
        self.in_cap[p].saturating_sub(self.in_buf[p][vc].len())
    }

    /// Total flits buffered in this switch.
    pub fn occupancy(&self) -> usize {
        self.in_buf
            .iter()
            .flat_map(|port| port.iter())
            .map(VecDeque::len)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::mesh::mesh;
    use crate::topology::wireless::{ChannelId, WirelessInterface};

    fn overlay_at(node: usize) -> WirelessOverlay {
        WirelessOverlay::new(
            vec![WirelessInterface {
                node: NodeId(node),
                channel: ChannelId(0),
            }],
            1,
        )
        .unwrap()
    }

    #[test]
    fn port_map_mesh_corner() {
        let m = mesh(3, 3, 1.0);
        let pm = PortMap::new(&m, &WirelessOverlay::none());
        // Corner 0 has neighbours 1 and 3 -> ports 1 and 2 plus local.
        assert_eq!(pm.port_count(NodeId(0)), 3);
        assert_eq!(pm.wire_port(NodeId(0), NodeId(1)), 1);
        assert_eq!(pm.wire_port(NodeId(0), NodeId(3)), 2);
        assert_eq!(pm.peer(NodeId(0), 1), Some(NodeId(1)));
        assert_eq!(pm.peer(NodeId(0), 0), None);
        assert_eq!(pm.wireless_port(NodeId(0)), None);
    }

    #[test]
    fn port_map_with_wi() {
        let m = mesh(3, 3, 1.0);
        let pm = PortMap::new(&m, &overlay_at(4));
        // Centre has 4 neighbours, so wireless is port 5.
        assert_eq!(pm.wireless_port(NodeId(4)), Some(5));
        assert_eq!(pm.port_count(NodeId(4)), 6);
        assert_eq!(pm.radix(NodeId(4)), 6);
    }

    #[test]
    #[should_panic]
    fn wire_port_panics_for_non_neighbor() {
        let m = mesh(3, 3, 1.0);
        let pm = PortMap::new(&m, &WirelessOverlay::none());
        let _ = pm.wire_port(NodeId(0), NodeId(8));
    }

    #[test]
    fn switch_state_space_per_vc() {
        let mut s = SwitchState::new(vec![2, 2, 8], 2);
        assert_eq!(s.vcs(), 2);
        assert_eq!(s.space(2, 0), 8);
        assert_eq!(s.space(2, 1), 8);
        s.in_buf[2][1].push_back(
            crate::flit::flits_of(crate::flit::PacketId(0), NodeId(0), NodeId(1), 1, 0)[0],
        );
        assert_eq!(s.space(2, 1), 7);
        assert_eq!(s.space(2, 0), 8);
        assert_eq!(s.occupancy(), 1);
    }

    #[test]
    #[should_panic]
    fn zero_vcs_panics() {
        let _ = SwitchState::new(vec![2], 0);
    }
}

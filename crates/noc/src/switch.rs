//! Switch microarchitecture state: ports, virtual-channel buffers, wormhole
//! bindings.
//!
//! Port numbering at each switch is fixed and deterministic:
//!
//! * port 0 — the local core (injection on the input side, ejection on the
//!   output side);
//! * ports `1..=degree` — one per wired neighbour, in sorted neighbour
//!   order;
//! * port `degree + 1` — the wireless port, present only on switches that
//!   carry a wireless interface.
//!
//! Every input port holds one FIFO per **virtual channel**. With a single
//! VC this is the paper's plain wormhole router; with more, VC 0 is the
//! deadlock-free *escape* channel (up\*/down\* routed) and the upper VCs
//! carry minimally-adaptive traffic (see [`crate::sim`]).
//!
//! Both [`PortMap`] and [`FabricState`] use flat contiguous storage: the
//! port map is a CSR-style table over all ports of all switches (peer and
//! reverse-port precomputed per wired port), and the dynamic state of
//! *every* switch in the network — input FIFO rings, wormhole bindings,
//! output ownership, arbitration pointers — lives in a handful of
//! network-global arrays indexed by global `(switch, port, vc)` slot. The
//! simulator's inner loop indexes these directly instead of chasing nested
//! vectors, and a cross-switch access (the downstream credit check on every
//! hop) lands in the same few arrays as the local state.

use crate::flit::{Flit, FlitKind, PacketId};
use crate::node::NodeId;
use crate::routing::Phase;
use crate::topology::wireless::WirelessOverlay;
use crate::topology::Topology;

/// Index of the local (core) port on every switch.
pub const PORT_LOCAL: usize = 0;

/// Sentinel for ports with no wired peer (local, wireless).
const NO_PEER: u32 = u32::MAX;

/// Static port layout of every switch in a network, stored CSR-style: the
/// ports of switch `v` occupy the flat index range `base[v]..base[v + 1]`,
/// and per-port arrays (`peer`, `peer_port`) are indexed by
/// [`PortMap::flat_index`]. Wired ports carry their peer switch *and* the
/// peer's reverse port, so the simulator never scans neighbour lists.
#[derive(Debug, Clone)]
pub struct PortMap {
    /// CSR offsets: ports of switch `v` are `base[v]..base[v + 1]`.
    base: Vec<u32>,
    /// Peer switch behind each port ([`NO_PEER`] for local/wireless).
    peer: Vec<u32>,
    /// Port index at the peer that faces back ([`NO_PEER`] for non-wire).
    peer_port: Vec<u32>,
    /// Wireless port index per switch ([`NO_PEER`] when the switch has no
    /// wireless interface).
    wireless: Vec<u32>,
}

impl PortMap {
    /// Builds the port layout for `topo` with `overlay`.
    pub fn new(topo: &Topology, overlay: &WirelessOverlay) -> Self {
        let n = topo.len();
        let mut base = Vec::with_capacity(n + 1);
        base.push(0u32);
        let mut peer = Vec::new();
        let mut peer_port = Vec::new();
        let mut wireless = Vec::with_capacity(n);
        for v in topo.nodes() {
            let neigh = topo.neighbors(v);
            peer.push(NO_PEER); // local port
            peer_port.push(NO_PEER);
            for &w in neigh {
                let back = topo
                    .neighbors(w)
                    .binary_search(&v)
                    .expect("links are undirected")
                    + 1;
                peer.push(w.index() as u32);
                peer_port.push(back as u32);
            }
            if overlay.is_wi(v) {
                wireless.push(neigh.len() as u32 + 1);
                peer.push(NO_PEER);
                peer_port.push(NO_PEER);
            } else {
                wireless.push(NO_PEER);
            }
            base.push(peer.len() as u32);
        }
        PortMap {
            base,
            peer,
            peer_port,
            wireless,
        }
    }

    /// Number of ports at `v` (local + wires + wireless if present).
    pub fn port_count(&self, v: NodeId) -> usize {
        (self.base[v.index() + 1] - self.base[v.index()]) as usize
    }

    /// Flat index of port `p` at `v` into CSR-aligned per-port tables.
    #[inline]
    pub fn flat_index(&self, v: NodeId, p: usize) -> usize {
        self.base[v.index()] as usize + p
    }

    /// Total number of ports over all switches (the length of CSR-aligned
    /// per-port tables).
    pub fn total_ports(&self) -> usize {
        *self.base.last().expect("base is nonempty") as usize
    }

    /// Port at `v` that faces wired neighbour `w`.
    ///
    /// # Panics
    ///
    /// Panics if `w` is not a neighbour of `v`.
    pub fn wire_port(&self, v: NodeId, w: NodeId) -> usize {
        let s = self.base[v.index()] as usize;
        let degree = self.port_count(v) - 1 - usize::from(self.wireless[v.index()] != NO_PEER);
        // Wired peers occupy ports 1..=degree in ascending id order.
        self.peer[s + 1..s + 1 + degree]
            .binary_search(&(w.index() as u32))
            .map(|pos| pos + 1)
            .unwrap_or_else(|_| panic!("{w} is not a wired neighbour of {v}"))
    }

    /// The neighbour behind wired port `p` of `v`, if `p` is a wired port.
    pub fn peer(&self, v: NodeId, p: usize) -> Option<NodeId> {
        if p == PORT_LOCAL || p >= self.port_count(v) {
            return None;
        }
        match self.peer[self.flat_index(v, p)] {
            NO_PEER => None,
            w => Some(NodeId(w as usize)),
        }
    }

    /// The peer switch and its reverse port behind wired port `p` of `v`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not a wired port of `v`.
    #[inline]
    pub fn wire_peer(&self, v: NodeId, p: usize) -> (NodeId, usize) {
        let i = self.flat_index(v, p);
        let w = self.peer[i];
        debug_assert_ne!(w, NO_PEER, "port {p} of {v} is not wired");
        (NodeId(w as usize), self.peer_port[i] as usize)
    }

    /// Wireless port index at `v`, if any.
    #[inline]
    pub fn wireless_port(&self, v: NodeId) -> Option<usize> {
        match self.wireless[v.index()] {
            NO_PEER => None,
            p => Some(p as usize),
        }
    }

    /// Switch radix at `v` (same as [`PortMap::port_count`]); used for
    /// energy accounting.
    pub fn radix(&self, v: NodeId) -> usize {
        self.port_count(v)
    }
}

/// Where a wormhole at an input VC is currently streaming.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OutRoute {
    /// Output port reserved by the packet.
    pub out_port: usize,
    /// Receiving wireless interface for wireless output ports.
    pub wireless_to: Option<NodeId>,
    /// Downstream virtual channel the packet was allocated.
    pub down_vc: usize,
}

/// The input VC currently owning an output port.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Owner {
    /// Owning input port.
    pub in_port: usize,
    /// Owning input virtual channel.
    pub in_vc: usize,
}

/// Dynamic state of every switch in the network, stored in network-global
/// flat arrays. The input FIFO of `(switch v, port p, vc)` is **slot**
/// `sbase[v] + p * vcs + vc`, where `sbase` mirrors the [`PortMap`] CSR
/// offsets — so all per-slot metadata (`head`/`len`/`in_route`/`out_owner`)
/// for an 8×8 mesh fits in a few KiB of contiguous memory, and every flit
/// buffered anywhere in the fabric lives in one pooled ring array.
#[derive(Debug, Clone)]
pub struct FabricState {
    /// First slot of each switch (`n + 1` entries, CSR-style):
    /// `sbase[v] = port_base[v] * vcs`.
    sbase: Box<[u32]>,
    /// Pooled ring storage for every input FIFO in the network; slot `s`
    /// owns `flits[off[s]..off[s + 1]]`.
    flits: Box<[Flit]>,
    /// Ring region offsets per slot (`slots + 1` entries).
    off: Box<[u32]>,
    /// Ring read position per slot, relative to `off[s]`.
    head: Box<[u32]>,
    /// Flits currently queued per slot.
    len: Box<[u32]>,
    /// `ready_at` of the front flit per slot, `u64::MAX` when empty.
    /// Maintained on push/pop (a queued flit's `ready_at` is fixed at push
    /// time), so the per-cycle readiness scans touch one flat array
    /// instead of loading whole flits from the rings.
    front_ready: Box<[u64]>,
    /// Wormhole binding per input slot (set by the head, cleared by the
    /// tail), packed into 4 bytes each (see [`FabricState::in_route`]) so
    /// the per-cycle wormhole scans stay within one cache line per switch.
    /// Layout: bit 31 = bound, bits 26–30 = down VC, bits 16–25 = out
    /// port, bits 0–15 = wireless target node (`0xFFFF` = wired).
    in_route: Box<[u32]>,
    /// Which input VC owns each `(output port, downstream VC)` slot,
    /// packed as bit 31 = owned, bits 16–30 = input port, bits 0–15 =
    /// input VC. The physical port is time-multiplexed per flit between
    /// downstream VCs — per-VC ownership is what keeps a stalled adaptive
    /// wormhole from blocking the escape network on a shared link.
    out_owner: Box<[u32]>,
    /// Round-robin pointer for new-packet arbitration, per switch.
    pub rr_next: Box<[u32]>,
    /// Per-switch occupancy bitmask: bit `s - sbase[v]` is set iff slot
    /// `s` of switch `v` holds at least one flit. Maintained on the
    /// 0↔1 queue-length transitions of `push_back`/`pop_front`, so the
    /// per-cycle sweeps iterate set bits instead of probing every slot.
    /// Only maintained while `masks_ok` (every switch fits in 64 bits).
    occ: Box<[u64]>,
    /// Owning switch of each slot (for the occupancy-bit updates).
    slot_sw: Box<[u32]>,
    /// Whether every switch has ≤ 64 slots, i.e. `occ` is usable.
    masks_ok: bool,
    vcs: usize,
}

/// Filler for unoccupied ring positions (never observed: `len` guards all
/// reads).
const PLACEHOLDER: Flit = Flit {
    packet: PacketId(0),
    kind: FlitKind::HeadTail,
    src: NodeId(0),
    dest: NodeId(0),
    phase: Phase::Up,
    created: 0,
    ready_at: 0,
    wired_fallback: false,
};

impl FabricState {
    /// Creates the fabric state for `ports` with the given per-port
    /// (per-VC) FIFO capacities — `caps` is indexed by
    /// [`PortMap::flat_index`] — and `vcs` virtual channels per port.
    ///
    /// # Panics
    ///
    /// Panics if `vcs == 0` or `caps` doesn't cover every port.
    pub fn new(ports: &PortMap, caps: &[usize], vcs: usize) -> Self {
        assert!(vcs > 0, "need at least one virtual channel");
        assert_eq!(caps.len(), ports.total_ports(), "one capacity per port");
        let slots = caps.len() * vcs;
        let switches = ports.base.len() - 1;
        let sbase: Box<[u32]> = ports.base.iter().map(|&b| b * vcs as u32).collect();
        let mut off = Vec::with_capacity(slots + 1);
        off.push(0u32);
        for &cap in caps {
            for _ in 0..vcs {
                off.push(off.last().unwrap() + cap as u32);
            }
        }
        let total = *off.last().unwrap() as usize;
        let mut slot_sw = vec![0u32; slots];
        let mut max_slots = 0usize;
        for v in 0..switches {
            let (lo, hi) = (sbase[v] as usize, sbase[v + 1] as usize);
            max_slots = max_slots.max(hi - lo);
            for s in slot_sw.iter_mut().take(hi).skip(lo) {
                *s = v as u32;
            }
        }
        FabricState {
            occ: vec![0; switches].into_boxed_slice(),
            slot_sw: slot_sw.into_boxed_slice(),
            masks_ok: max_slots <= 64,
            sbase,
            flits: vec![PLACEHOLDER; total].into_boxed_slice(),
            off: off.into_boxed_slice(),
            head: vec![0; slots].into_boxed_slice(),
            len: vec![0; slots].into_boxed_slice(),
            front_ready: vec![u64::MAX; slots].into_boxed_slice(),
            in_route: vec![0; slots].into_boxed_slice(),
            out_owner: vec![0; slots].into_boxed_slice(),
            rr_next: vec![0; switches].into_boxed_slice(),
            vcs,
        }
    }

    /// Number of virtual channels per port.
    pub fn vcs(&self) -> usize {
        self.vcs
    }

    /// First slot of switch `v`; port `p`, VC `c` of `v` is slot
    /// `switch_base(v) + p * vcs + c`.
    #[inline]
    pub fn switch_base(&self, v: NodeId) -> usize {
        self.sbase[v.index()] as usize
    }

    /// Global slot of `(v, port, vc)`.
    #[inline]
    pub fn slot(&self, v: NodeId, p: usize, vc: usize) -> usize {
        self.switch_base(v) + p * self.vcs + vc
    }

    /// The slot range owned by switch `v`.
    #[inline]
    pub fn slots_of(&self, v: NodeId) -> std::ops::Range<usize> {
        self.sbase[v.index()] as usize..self.sbase[v.index() + 1] as usize
    }

    /// Ring capacity of slot `s`.
    #[inline]
    fn cap(&self, s: usize) -> u32 {
        self.off[s + 1] - self.off[s]
    }

    /// Flits queued in slot `s`.
    #[inline]
    pub fn queue_len(&self, s: usize) -> usize {
        self.len[s] as usize
    }

    /// The oldest flit queued in slot `s`, if any.
    #[inline]
    pub fn front(&self, s: usize) -> Option<&Flit> {
        if self.len[s] == 0 {
            None
        } else {
            Some(&self.flits[(self.off[s] + self.head[s]) as usize])
        }
    }

    /// Appends `f` to slot `s`.
    ///
    /// # Panics
    ///
    /// Panics (in debug) if the ring is full; callers check
    /// [`FabricState::space`] first.
    #[inline]
    pub fn push_back(&mut self, s: usize, f: Flit) {
        let cap = self.cap(s);
        debug_assert!(self.len[s] < cap, "input FIFO overflow at slot {s}");
        let mut pos = self.head[s] + self.len[s];
        if pos >= cap {
            pos -= cap;
        }
        self.flits[(self.off[s] + pos) as usize] = f;
        self.len[s] += 1;
        if self.len[s] == 1 {
            self.front_ready[s] = f.ready_at;
            if self.masks_ok {
                let sw = self.slot_sw[s] as usize;
                self.occ[sw] |= 1 << (s as u32 - self.sbase[sw]);
            }
        }
    }

    /// Whether the per-switch occupancy masks are maintained (every switch
    /// fits its slots in 64 bits — always true for realistic radixes).
    #[inline]
    pub fn occ_masks_enabled(&self) -> bool {
        self.masks_ok
    }

    /// Occupancy bitmask of switch `v`: bit `i` set iff slot
    /// `switch_base(v) + i` is nonempty. Meaningful only while
    /// [`FabricState::occ_masks_enabled`].
    #[inline]
    pub fn occ_mask(&self, v: NodeId) -> u64 {
        self.occ[v.index()]
    }

    /// `ready_at` of the front flit in slot `s`, `u64::MAX` when empty.
    #[inline]
    pub fn front_ready(&self, s: usize) -> u64 {
        self.front_ready[s]
    }

    /// The wormhole binding of input slot `s`, if any.
    #[inline]
    pub fn in_route(&self, s: usize) -> Option<OutRoute> {
        let w = self.in_route[s];
        if w & (1 << 31) == 0 {
            return None;
        }
        let wt = w & 0xFFFF;
        Some(OutRoute {
            out_port: ((w >> 16) & 0x3FF) as usize,
            wireless_to: (wt != 0xFFFF).then_some(NodeId(wt as usize)),
            down_vc: ((w >> 26) & 0x1F) as usize,
        })
    }

    /// Whether input slot `s` is mid-wormhole (cheaper than
    /// [`FabricState::in_route`] when the route itself is not needed).
    #[inline]
    pub fn in_route_set(&self, s: usize) -> bool {
        self.in_route[s] & (1 << 31) != 0
    }

    /// Binds or clears the wormhole route of input slot `s`.
    #[inline]
    pub fn set_in_route(&mut self, s: usize, route: Option<OutRoute>) {
        self.in_route[s] = match route {
            None => 0,
            Some(r) => {
                debug_assert!(r.out_port < (1 << 10) && r.down_vc < (1 << 5));
                let wt = r.wireless_to.map_or(0xFFFF, |w| {
                    debug_assert!(w.index() < 0xFFFF);
                    w.index() as u32
                });
                (1 << 31) | ((r.down_vc as u32) << 26) | ((r.out_port as u32) << 16) | wt
            }
        };
    }

    /// Whether `(output port, downstream VC)` slot `s` is owned by a
    /// wormhole.
    #[inline]
    pub fn out_owner_set(&self, s: usize) -> bool {
        self.out_owner[s] & (1 << 31) != 0
    }

    /// The input VC owning output slot `s`, if any.
    #[inline]
    pub fn out_owner(&self, s: usize) -> Option<Owner> {
        let w = self.out_owner[s];
        if w & (1 << 31) == 0 {
            return None;
        }
        Some(Owner {
            in_port: ((w >> 16) & 0x7FFF) as usize,
            in_vc: (w & 0xFFFF) as usize,
        })
    }

    /// Assigns or releases ownership of output slot `s`.
    #[inline]
    pub fn set_out_owner(&mut self, s: usize, owner: Option<Owner>) {
        self.out_owner[s] = match owner {
            None => 0,
            Some(o) => {
                debug_assert!(o.in_port < (1 << 15) && o.in_vc < (1 << 16));
                (1 << 31) | ((o.in_port as u32) << 16) | o.in_vc as u32
            }
        };
    }

    /// Removes and returns the oldest flit queued in slot `s`.
    #[inline]
    pub fn pop_front(&mut self, s: usize) -> Option<Flit> {
        if self.len[s] == 0 {
            return None;
        }
        let f = self.flits[(self.off[s] + self.head[s]) as usize];
        self.head[s] = if self.head[s] + 1 == self.cap(s) {
            0
        } else {
            self.head[s] + 1
        };
        self.len[s] -= 1;
        self.front_ready[s] = if self.len[s] == 0 {
            if self.masks_ok {
                let sw = self.slot_sw[s] as usize;
                self.occ[sw] &= !(1 << (s as u32 - self.sbase[sw]));
            }
            u64::MAX
        } else {
            self.flits[(self.off[s] + self.head[s]) as usize].ready_at
        };
        Some(f)
    }

    /// Free space in the input FIFO at slot `s` (its ring capacity is its
    /// credit limit).
    #[inline]
    pub fn space(&self, s: usize) -> usize {
        (self.cap(s) - self.len[s]) as usize
    }

    /// Total flits buffered anywhere in the fabric.
    pub fn occupancy(&self) -> usize {
        self.len.iter().map(|&l| l as usize).sum()
    }

    /// Returns every switch to its power-on state (FIFOs emptied, wormhole
    /// bindings cleared; flit payloads are overwritten on reuse).
    pub fn reset(&mut self) {
        self.head.fill(0);
        self.len.fill(0);
        self.front_ready.fill(u64::MAX);
        self.in_route.fill(0);
        self.out_owner.fill(0);
        self.rr_next.fill(0);
        self.occ.fill(0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::mesh::mesh;
    use crate::topology::wireless::{ChannelId, WirelessInterface};

    fn overlay_at(node: usize) -> WirelessOverlay {
        WirelessOverlay::new(
            vec![WirelessInterface {
                node: NodeId(node),
                channel: ChannelId(0),
            }],
            1,
        )
        .unwrap()
    }

    #[test]
    fn port_map_mesh_corner() {
        let m = mesh(3, 3, 1.0);
        let pm = PortMap::new(&m, &WirelessOverlay::none());
        // Corner 0 has neighbours 1 and 3 -> ports 1 and 2 plus local.
        assert_eq!(pm.port_count(NodeId(0)), 3);
        assert_eq!(pm.wire_port(NodeId(0), NodeId(1)), 1);
        assert_eq!(pm.wire_port(NodeId(0), NodeId(3)), 2);
        assert_eq!(pm.peer(NodeId(0), 1), Some(NodeId(1)));
        assert_eq!(pm.peer(NodeId(0), 0), None);
        assert_eq!(pm.wireless_port(NodeId(0)), None);
    }

    #[test]
    fn port_map_with_wi() {
        let m = mesh(3, 3, 1.0);
        let pm = PortMap::new(&m, &overlay_at(4));
        // Centre has 4 neighbours, so wireless is port 5.
        assert_eq!(pm.wireless_port(NodeId(4)), Some(5));
        assert_eq!(pm.port_count(NodeId(4)), 6);
        assert_eq!(pm.radix(NodeId(4)), 6);
        // The wireless port has no wired peer.
        assert_eq!(pm.peer(NodeId(4), 5), None);
    }

    #[test]
    fn wire_peer_is_reverse_consistent() {
        let m = mesh(3, 3, 1.0);
        let pm = PortMap::new(&m, &WirelessOverlay::none());
        for v in m.nodes() {
            for &w in m.neighbors(v) {
                let p = pm.wire_port(v, w);
                let (peer, back) = pm.wire_peer(v, p);
                assert_eq!(peer, w);
                assert_eq!(back, pm.wire_port(w, v));
            }
        }
    }

    #[test]
    fn flat_indices_are_disjoint_per_switch() {
        let m = mesh(3, 3, 1.0);
        let pm = PortMap::new(&m, &overlay_at(4));
        let mut seen = vec![false; pm.total_ports()];
        for v in m.nodes() {
            for p in 0..pm.port_count(v) {
                let i = pm.flat_index(v, p);
                assert!(!seen[i], "flat index {i} reused");
                seen[i] = true;
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    #[should_panic]
    fn wire_port_panics_for_non_neighbor() {
        let m = mesh(3, 3, 1.0);
        let pm = PortMap::new(&m, &WirelessOverlay::none());
        let _ = pm.wire_port(NodeId(0), NodeId(8));
    }

    fn fabric_for(
        overlay: &WirelessOverlay,
        vcs: usize,
        cap: usize,
        wi_cap: usize,
    ) -> (PortMap, FabricState) {
        let m = mesh(3, 3, 1.0);
        let pm = PortMap::new(&m, overlay);
        let mut caps = vec![cap; pm.total_ports()];
        for v in m.nodes() {
            if let Some(wp) = pm.wireless_port(v) {
                caps[pm.flat_index(v, wp)] = wi_cap;
            }
        }
        let f = FabricState::new(&pm, &caps, vcs);
        (pm, f)
    }

    #[test]
    fn fabric_space_per_vc() {
        let (pm, mut f) = fabric_for(&overlay_at(4), 2, 2, 8);
        assert_eq!(f.vcs(), 2);
        let wp = pm.wireless_port(NodeId(4)).unwrap();
        assert_eq!(f.space(f.slot(NodeId(4), wp, 0)), 8);
        assert_eq!(f.space(f.slot(NodeId(4), wp, 1)), 8);
        let slot = f.slot(NodeId(4), wp, 1);
        f.push_back(
            slot,
            crate::flit::flits_of(crate::flit::PacketId(0), NodeId(0), NodeId(1), 1, 0)[0],
        );
        assert_eq!(f.space(f.slot(NodeId(4), wp, 1)), 7);
        assert_eq!(f.space(f.slot(NodeId(4), wp, 0)), 8);
        assert_eq!(f.space(f.slot(NodeId(4), 1, 0)), 2);
        assert_eq!(f.occupancy(), 1);
        f.reset();
        assert_eq!(f.occupancy(), 0);
        assert_eq!(f.space(slot), 8);
    }

    #[test]
    fn fabric_slots_are_disjoint_and_csr_aligned() {
        let (pm, f) = fabric_for(&overlay_at(4), 2, 2, 8);
        let m = mesh(3, 3, 1.0);
        let mut end = 0;
        for v in m.nodes() {
            let r = f.slots_of(v);
            assert_eq!(r.start, end, "switch {v} slots are contiguous");
            assert_eq!(r.len(), pm.port_count(v) * f.vcs());
            assert_eq!(f.slot(v, 0, 0), r.start);
            end = r.end;
        }
    }

    #[test]
    fn ring_fifo_preserves_order_across_wraparound() {
        let (_, mut f) = fabric_for(&WirelessOverlay::none(), 1, 3, 3);
        let s = f.slot(NodeId(0), 1, 0);
        let mk = |i: u64| {
            let mut fl =
                crate::flit::flits_of(crate::flit::PacketId(i), NodeId(0), NodeId(1), 1, 0)[0];
            fl.created = i;
            fl
        };
        // Fill, drain partially, refill to force the ring to wrap.
        for i in 0..3 {
            f.push_back(s, mk(i));
        }
        assert_eq!(f.space(s), 0);
        assert_eq!(f.pop_front(s).unwrap().created, 0);
        assert_eq!(f.pop_front(s).unwrap().created, 1);
        f.push_back(s, mk(3));
        f.push_back(s, mk(4));
        for want in 2..5 {
            assert_eq!(f.front(s).unwrap().created, want);
            assert_eq!(f.pop_front(s).unwrap().created, want);
        }
        assert_eq!(f.pop_front(s), None);
        assert_eq!(f.occupancy(), 0);
    }

    #[test]
    #[should_panic]
    fn zero_vcs_panics() {
        let m = mesh(3, 3, 1.0);
        let pm = PortMap::new(&m, &WirelessOverlay::none());
        let caps = vec![2; pm.total_ports()];
        let _ = FabricState::new(&pm, &caps, 0);
    }
}

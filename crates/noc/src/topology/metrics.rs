//! Graph-theoretic topology metrics.
//!
//! The WiNoC literature the paper builds on (Ogras & Marculescu's
//! long-range link insertion, Petermann & De Los Rios' spatial small
//! worlds) characterises fabrics by their *small-worldness*: a small-world
//! network combines the high clustering of a lattice with the short paths
//! of a random graph. These metrics quantify that for any [`Topology`]:
//!
//! * [`clustering_coefficient`] — the Watts–Strogatz average local
//!   clustering `C`;
//! * [`Topology::avg_hop_count`] — the characteristic path length `L`;
//! * [`small_world_sigma`] — `σ = (C/C_rand) / (L/L_rand)` against an
//!   Erdős–Rényi null model of the same size and density (`σ > 1` is the
//!   usual small-world criterion);
//! * [`degree_histogram`] — the port-usage distribution bounded by the
//!   builder's `k_max`.

use super::Topology;

/// Watts–Strogatz average local clustering coefficient.
///
/// For each node, the fraction of its neighbour pairs that are themselves
/// linked; nodes of degree < 2 contribute 0. Returns 0 for empty graphs.
///
/// # Examples
///
/// ```
/// use mapwave_noc::topology::metrics::clustering_coefficient;
/// use mapwave_noc::topology::mesh::mesh;
///
/// // Meshes are triangle-free: clustering 0.
/// assert_eq!(clustering_coefficient(&mesh(4, 4, 1.0)), 0.0);
/// ```
pub fn clustering_coefficient(topo: &Topology) -> f64 {
    if topo.is_empty() {
        return 0.0;
    }
    let mut total = 0.0;
    for v in topo.nodes() {
        let neigh = topo.neighbors(v);
        let k = neigh.len();
        if k < 2 {
            continue;
        }
        let mut closed = 0usize;
        for (i, &a) in neigh.iter().enumerate() {
            for &b in &neigh[i + 1..] {
                if topo.has_link(a, b) {
                    closed += 1;
                }
            }
        }
        total += 2.0 * closed as f64 / (k * (k - 1)) as f64;
    }
    total / topo.len() as f64
}

/// Analytic expectations for an Erdős–Rényi random graph with the same
/// node count and mean degree: `C_rand ≈ ⟨k⟩/n`, `L_rand ≈ ln n / ln ⟨k⟩`.
fn random_baseline(n: usize, avg_degree: f64) -> (f64, f64) {
    let c_rand = (avg_degree / n as f64).max(1e-12);
    let l_rand = if avg_degree > 1.0 {
        ((n as f64).ln() / avg_degree.ln()).max(1.0)
    } else {
        n as f64
    };
    (c_rand, l_rand)
}

/// The small-world coefficient `σ = (C/C_rand) / (L/L_rand)`.
///
/// `σ > 1` indicates a small-world graph (lattice-like clustering, random-
/// graph-like distances). Returns 0 for graphs with fewer than 3 nodes or
/// without paths.
pub fn small_world_sigma(topo: &Topology) -> f64 {
    let n = topo.len();
    if n < 3 {
        return 0.0;
    }
    let l = topo.avg_hop_count();
    if l <= 0.0 {
        return 0.0;
    }
    let c = clustering_coefficient(topo);
    let (c_rand, l_rand) = random_baseline(n, topo.avg_degree());
    (c / c_rand) / (l / l_rand)
}

/// Histogram of wireline degrees: `hist[k]` counts nodes with `k` links.
pub fn degree_histogram(topo: &Topology) -> Vec<usize> {
    let mut hist = vec![0usize; topo.max_degree() + 1];
    for v in topo.nodes() {
        hist[topo.degree(v)] += 1;
    }
    hist
}

/// Mean physical wire length over all links, in mm (0 for edgeless graphs).
pub fn mean_link_length_mm(topo: &Topology) -> f64 {
    let count = topo.link_count();
    if count == 0 {
        return 0.0;
    }
    topo.links()
        .map(|(a, b)| topo.link_length_mm(a, b))
        .sum::<f64>()
        / count as f64
}

/// A one-line summary of a topology's shape.
#[derive(Debug, Clone, PartialEq)]
pub struct TopologySummary {
    /// Node count.
    pub nodes: usize,
    /// Link count.
    pub links: usize,
    /// Mean degree ⟨k⟩.
    pub avg_degree: f64,
    /// Maximum degree.
    pub max_degree: usize,
    /// Characteristic path length `L`.
    pub avg_hops: f64,
    /// Diameter in hops.
    pub diameter: usize,
    /// Clustering coefficient `C`.
    pub clustering: f64,
    /// Small-world coefficient `σ`.
    pub sigma: f64,
    /// Mean wire length, mm.
    pub mean_wire_mm: f64,
}

/// Computes a [`TopologySummary`].
pub fn summarize(topo: &Topology) -> TopologySummary {
    TopologySummary {
        nodes: topo.len(),
        links: topo.link_count(),
        avg_degree: topo.avg_degree(),
        max_degree: topo.max_degree(),
        avg_hops: topo.avg_hop_count(),
        diameter: topo.diameter(),
        clustering: clustering_coefficient(topo),
        sigma: small_world_sigma(topo),
        mean_wire_mm: mean_link_length_mm(topo),
    }
}

impl std::fmt::Display for TopologySummary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "n={} links={} <k>={:.2} kmax={} L={:.2} D={} C={:.3} sigma={:.2} wire={:.2}mm",
            self.nodes,
            self.links,
            self.avg_degree,
            self.max_degree,
            self.avg_hops,
            self.diameter,
            self.clustering,
            self.sigma,
            self.mean_wire_mm
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::Position;
    use crate::node::{grid_positions, NodeId};
    use crate::topology::mesh::mesh;
    use crate::topology::small_world::SmallWorldBuilder;
    use crate::topology::TopologyKind;

    fn triangle() -> Topology {
        let mut t = Topology::new(
            vec![
                Position::new(0.0, 0.0),
                Position::new(1.0, 0.0),
                Position::new(0.0, 1.0),
            ],
            TopologyKind::Custom,
        );
        t.add_link(NodeId(0), NodeId(1)).unwrap();
        t.add_link(NodeId(1), NodeId(2)).unwrap();
        t.add_link(NodeId(0), NodeId(2)).unwrap();
        t
    }

    #[test]
    fn triangle_is_fully_clustered() {
        assert!((clustering_coefficient(&triangle()) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn mesh_has_zero_clustering() {
        assert_eq!(clustering_coefficient(&mesh(5, 5, 1.0)), 0.0);
    }

    #[test]
    fn small_world_beats_mesh_on_path_length() {
        let clusters: Vec<usize> = (0..64).map(|i| (i % 8) / 4 + 2 * ((i / 8) / 4)).collect();
        let sw = SmallWorldBuilder::new(grid_positions(8, 8, 2.5), clusters)
            .alpha(1.5)
            .seed(1)
            .build()
            .unwrap();
        let m = mesh(8, 8, 2.5);
        assert!(sw.avg_hop_count() < m.avg_hop_count());
        // The power-law graph has triangles, the mesh has none.
        assert!(clustering_coefficient(&sw) > 0.0);
        assert!(small_world_sigma(&sw) > small_world_sigma(&m));
    }

    #[test]
    fn degree_histogram_sums_to_n() {
        let m = mesh(4, 4, 1.0);
        let hist = degree_histogram(&m);
        assert_eq!(hist.iter().sum::<usize>(), 16);
        // 4 corners (deg 2), 8 edges (deg 3), 4 interior (deg 4).
        assert_eq!(hist[2], 4);
        assert_eq!(hist[3], 8);
        assert_eq!(hist[4], 4);
    }

    #[test]
    fn mean_link_length_of_mesh_is_pitch() {
        assert!((mean_link_length_mm(&mesh(3, 3, 2.5)) - 2.5).abs() < 1e-12);
    }

    #[test]
    fn summary_renders() {
        let s = summarize(&mesh(4, 4, 1.0));
        assert_eq!(s.nodes, 16);
        assert_eq!(s.links, 24);
        let text = s.to_string();
        assert!(text.contains("n=16"));
        assert!(text.contains("D=6"));
    }

    #[test]
    fn empty_and_tiny_graphs() {
        let empty = Topology::new(vec![], TopologyKind::Custom);
        assert_eq!(clustering_coefficient(&empty), 0.0);
        assert_eq!(small_world_sigma(&empty), 0.0);
        assert_eq!(mean_link_length_mm(&empty), 0.0);
        assert_eq!(
            small_world_sigma(&triangle()),
            small_world_sigma(&triangle())
        );
    }
}

//! Network topologies: the switch graph and its geometric embedding.
//!
//! A [`Topology`] is an undirected graph of switches with physical positions.
//! Generators for the paper's two wireline fabrics live in the submodules:
//!
//! * [`mesh`] — the conventional 2-D mesh used by the NVFI/VFI mesh baselines;
//! * [`small_world`] — the power-law small-world wireline network underlying
//!   the WiNoC, built cluster-aware (⟨k_intra⟩/⟨k_inter⟩ split).
//!
//! The wireless overlay (wireless interfaces and channels) is described by
//! [`wireless::WirelessOverlay`] and is kept separate from the wireline graph
//! so that routing and energy accounting can distinguish the two media.

pub mod dot;
pub mod mesh;
pub mod metrics;
pub mod small_world;
pub mod wireless;

use crate::node::{NodeId, Position};
use std::collections::VecDeque;

/// What generated a topology; carried along for reporting and for routing
/// algorithm selection (meshes may use XY routing, irregular graphs use
/// up*/down*).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TopologyKind {
    /// Regular 2-D mesh with the given dimensions.
    Mesh {
        /// Number of columns.
        cols: usize,
        /// Number of rows.
        rows: usize,
    },
    /// Power-law small-world wireline graph.
    SmallWorld,
    /// Anything hand-built.
    Custom,
}

/// Errors produced while constructing or mutating a [`Topology`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TopologyError {
    /// A link endpoint referenced a node outside the graph.
    NodeOutOfRange {
        /// The offending node.
        node: NodeId,
        /// Number of nodes in the graph.
        len: usize,
    },
    /// A self-loop was requested.
    SelfLoop(NodeId),
    /// The link already exists.
    DuplicateLink(NodeId, NodeId),
}

impl std::fmt::Display for TopologyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TopologyError::NodeOutOfRange { node, len } => {
                write!(f, "node {node} out of range for topology of {len} nodes")
            }
            TopologyError::SelfLoop(n) => write!(f, "self-loop requested at {n}"),
            TopologyError::DuplicateLink(a, b) => {
                write!(f, "link {a}-{b} already exists")
            }
        }
    }
}

impl std::error::Error for TopologyError {}

/// An undirected switch graph with a physical embedding.
///
/// Nodes are `0..len()`. Links are undirected and unique; neighbour lists are
/// kept sorted so that iteration order (and therefore every simulation that
/// consumes a topology) is deterministic.
///
/// # Examples
///
/// ```
/// use mapwave_noc::{Topology, NodeId};
///
/// let mut t = Topology::ring(4, 1.0);
/// assert_eq!(t.len(), 4);
/// assert!(t.is_connected());
/// assert_eq!(t.degree(NodeId(0)), 2);
/// t.add_link(NodeId(0), NodeId(2)).unwrap();
/// assert_eq!(t.degree(NodeId(0)), 3);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Topology {
    positions: Vec<Position>,
    adj: Vec<Vec<NodeId>>,
    kind: TopologyKind,
}

impl Topology {
    /// Creates an edgeless topology over the given tile positions.
    pub fn new(positions: Vec<Position>, kind: TopologyKind) -> Self {
        let n = positions.len();
        Topology {
            positions,
            adj: vec![Vec::new(); n],
            kind,
        }
    }

    /// Creates a ring of `n` equally spaced nodes (spacing `pitch_mm`).
    ///
    /// Mostly useful in tests and examples; real fabrics come from
    /// [`mesh::mesh`] and [`small_world::SmallWorldBuilder`].
    pub fn ring(n: usize, pitch_mm: f64) -> Self {
        let positions = (0..n)
            .map(|i| Position::new(i as f64 * pitch_mm, 0.0))
            .collect();
        let mut t = Topology::new(positions, TopologyKind::Custom);
        for i in 0..n {
            if n > 1 {
                let j = (i + 1) % n;
                if i < j || (j == 0 && i == n - 1 && n > 2) {
                    let _ = t.add_link(NodeId(i), NodeId(j));
                }
            }
        }
        t
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.positions.len()
    }

    /// Whether the graph has no nodes.
    pub fn is_empty(&self) -> bool {
        self.positions.is_empty()
    }

    /// The generator that produced this topology.
    pub fn kind(&self) -> TopologyKind {
        self.kind
    }

    /// Iterator over all node ids.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.len()).map(NodeId)
    }

    /// Physical position of `node`.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn position(&self, node: NodeId) -> Position {
        self.positions[node.index()]
    }

    /// Sorted list of wireline neighbours of `node`.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn neighbors(&self, node: NodeId) -> &[NodeId] {
        &self.adj[node.index()]
    }

    /// Number of wireline links at `node` (excludes the local core port and
    /// any wireless port).
    pub fn degree(&self, node: NodeId) -> usize {
        self.adj[node.index()].len()
    }

    /// Largest wireline degree in the graph.
    pub fn max_degree(&self) -> usize {
        self.adj.iter().map(Vec::len).max().unwrap_or(0)
    }

    /// Average wireline degree ⟨k⟩.
    pub fn avg_degree(&self) -> f64 {
        if self.is_empty() {
            return 0.0;
        }
        2.0 * self.link_count() as f64 / self.len() as f64
    }

    /// Total number of undirected links.
    pub fn link_count(&self) -> usize {
        self.adj.iter().map(Vec::len).sum::<usize>() / 2
    }

    /// Whether an undirected link `a`–`b` exists.
    pub fn has_link(&self, a: NodeId, b: NodeId) -> bool {
        a.index() < self.len() && self.adj[a.index()].binary_search(&b).is_ok()
    }

    /// Adds the undirected link `a`–`b`.
    ///
    /// # Errors
    ///
    /// Returns [`TopologyError`] if either endpoint is out of range, if
    /// `a == b`, or if the link already exists.
    pub fn add_link(&mut self, a: NodeId, b: NodeId) -> Result<(), TopologyError> {
        let len = self.len();
        for n in [a, b] {
            if n.index() >= len {
                return Err(TopologyError::NodeOutOfRange { node: n, len });
            }
        }
        if a == b {
            return Err(TopologyError::SelfLoop(a));
        }
        if self.has_link(a, b) {
            return Err(TopologyError::DuplicateLink(a, b));
        }
        let ia = self.adj[a.index()].binary_search(&b).unwrap_err();
        self.adj[a.index()].insert(ia, b);
        let ib = self.adj[b.index()].binary_search(&a).unwrap_err();
        self.adj[b.index()].insert(ib, a);
        Ok(())
    }

    /// Removes the undirected link `a`–`b` if present; reports whether it
    /// existed.
    pub fn remove_link(&mut self, a: NodeId, b: NodeId) -> bool {
        if !self.has_link(a, b) {
            return false;
        }
        let ia = self.adj[a.index()].binary_search(&b).unwrap();
        self.adj[a.index()].remove(ia);
        let ib = self.adj[b.index()].binary_search(&a).unwrap();
        self.adj[b.index()].remove(ib);
        true
    }

    /// Iterator over all undirected links as `(a, b)` with `a < b`.
    pub fn links(&self) -> impl Iterator<Item = (NodeId, NodeId)> + '_ {
        self.nodes().flat_map(move |a| {
            self.adj[a.index()]
                .iter()
                .copied()
                .filter(move |&b| a < b)
                .map(move |b| (a, b))
        })
    }

    /// Physical (rectilinear) length of the wire implementing link `a`–`b`,
    /// in mm.
    pub fn link_length_mm(&self, a: NodeId, b: NodeId) -> f64 {
        self.position(a).manhattan(self.position(b))
    }

    /// Whether every node can reach every other node over wireline links.
    pub fn is_connected(&self) -> bool {
        if self.is_empty() {
            return true;
        }
        let mut seen = vec![false; self.len()];
        let mut queue = VecDeque::new();
        seen[0] = true;
        queue.push_back(NodeId(0));
        let mut count = 1;
        while let Some(v) = queue.pop_front() {
            for &w in self.neighbors(v) {
                if !seen[w.index()] {
                    seen[w.index()] = true;
                    count += 1;
                    queue.push_back(w);
                }
            }
        }
        count == self.len()
    }

    /// Hop distance from `src` to every node (BFS); unreachable nodes get
    /// `usize::MAX`.
    pub fn hops_from(&self, src: NodeId) -> Vec<usize> {
        let mut dist = vec![usize::MAX; self.len()];
        let mut queue = VecDeque::new();
        dist[src.index()] = 0;
        queue.push_back(src);
        while let Some(v) = queue.pop_front() {
            for &w in self.neighbors(v) {
                if dist[w.index()] == usize::MAX {
                    dist[w.index()] = dist[v.index()] + 1;
                    queue.push_back(w);
                }
            }
        }
        dist
    }

    /// All-pairs hop distances (`result[s][d]`); unreachable pairs get
    /// `usize::MAX`.
    pub fn hop_counts(&self) -> Vec<Vec<usize>> {
        self.nodes().map(|s| self.hops_from(s)).collect()
    }

    /// Mean hop count over all ordered pairs of distinct, mutually reachable
    /// nodes. Returns 0 for graphs with fewer than two nodes.
    pub fn avg_hop_count(&self) -> f64 {
        let mut total = 0usize;
        let mut pairs = 0usize;
        for s in self.nodes() {
            for (d, &h) in self.hops_from(s).iter().enumerate() {
                if d != s.index() && h != usize::MAX {
                    total += h;
                    pairs += 1;
                }
            }
        }
        if pairs == 0 {
            0.0
        } else {
            total as f64 / pairs as f64
        }
    }

    /// Longest shortest path in hops; `usize::MAX` if disconnected.
    pub fn diameter(&self) -> usize {
        let mut best = 0usize;
        for s in self.nodes() {
            for (d, &h) in self.hops_from(s).iter().enumerate() {
                if d != s.index() {
                    if h == usize::MAX {
                        return usize::MAX;
                    }
                    best = best.max(h);
                }
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line(n: usize) -> Topology {
        let mut t = Topology::new(
            (0..n).map(|i| Position::new(i as f64, 0.0)).collect(),
            TopologyKind::Custom,
        );
        for i in 0..n.saturating_sub(1) {
            t.add_link(NodeId(i), NodeId(i + 1)).unwrap();
        }
        t
    }

    #[test]
    fn add_link_rejects_self_loop() {
        let mut t = line(3);
        assert_eq!(
            t.add_link(NodeId(1), NodeId(1)),
            Err(TopologyError::SelfLoop(NodeId(1)))
        );
    }

    #[test]
    fn add_link_rejects_duplicate() {
        let mut t = line(3);
        assert_eq!(
            t.add_link(NodeId(0), NodeId(1)),
            Err(TopologyError::DuplicateLink(NodeId(0), NodeId(1)))
        );
        // Reverse orientation is the same undirected link.
        assert_eq!(
            t.add_link(NodeId(1), NodeId(0)),
            Err(TopologyError::DuplicateLink(NodeId(1), NodeId(0)))
        );
    }

    #[test]
    fn add_link_rejects_out_of_range() {
        let mut t = line(3);
        assert!(matches!(
            t.add_link(NodeId(0), NodeId(9)),
            Err(TopologyError::NodeOutOfRange { .. })
        ));
    }

    #[test]
    fn neighbors_stay_sorted() {
        let mut t = line(5);
        t.add_link(NodeId(4), NodeId(0)).unwrap();
        t.add_link(NodeId(2), NodeId(0)).unwrap();
        assert_eq!(t.neighbors(NodeId(0)), &[NodeId(1), NodeId(2), NodeId(4)]);
    }

    #[test]
    fn remove_link_works() {
        let mut t = line(4);
        assert!(t.remove_link(NodeId(1), NodeId(2)));
        assert!(!t.has_link(NodeId(1), NodeId(2)));
        assert!(!t.remove_link(NodeId(1), NodeId(2)));
        assert!(!t.is_connected());
    }

    #[test]
    fn line_metrics() {
        let t = line(5);
        assert_eq!(t.link_count(), 4);
        assert_eq!(t.diameter(), 4);
        assert!(t.is_connected());
        assert_eq!(t.hops_from(NodeId(0))[4], 4);
    }

    #[test]
    fn ring_is_connected_with_degree_two() {
        let t = Topology::ring(6, 1.0);
        assert!(t.is_connected());
        for v in t.nodes() {
            assert_eq!(t.degree(v), 2);
        }
        assert_eq!(t.diameter(), 3);
    }

    #[test]
    fn avg_hop_count_of_pair() {
        let t = line(2);
        assert!((t.avg_hop_count() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn links_iterator_unique_and_ordered() {
        let t = Topology::ring(4, 1.0);
        let links: Vec<_> = t.links().collect();
        assert_eq!(links.len(), t.link_count());
        for (a, b) in links {
            assert!(a < b);
        }
    }

    #[test]
    fn link_length_uses_manhattan() {
        let mut t = Topology::new(
            vec![Position::new(0.0, 0.0), Position::new(2.0, 1.5)],
            TopologyKind::Custom,
        );
        t.add_link(NodeId(0), NodeId(1)).unwrap();
        assert!((t.link_length_mm(NodeId(0), NodeId(1)) - 3.5).abs() < 1e-12);
    }

    #[test]
    fn empty_topology_is_connected() {
        let t = Topology::new(vec![], TopologyKind::Custom);
        assert!(t.is_connected());
        assert_eq!(t.avg_degree(), 0.0);
    }

    #[test]
    fn disconnected_diameter_is_max() {
        let t = Topology::new(
            vec![Position::new(0.0, 0.0), Position::new(1.0, 0.0)],
            TopologyKind::Custom,
        );
        assert_eq!(t.diameter(), usize::MAX);
    }
}

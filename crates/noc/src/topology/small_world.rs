//! Power-law small-world wireline network, built cluster-aware.
//!
//! The WiNoC's wireline substrate follows the spatial small-world wiring
//! model of Petermann & De Los Rios: the probability of a link between two
//! switches decays with their physical separation, `P(i,j) ∝ l_ij^(-alpha)`.
//! The paper constructs it in two stages around the VFI partition:
//!
//! 1. **Intra-cluster**: each VFI cluster gets its own connected power-law
//!    network with average degree ⟨k_intra⟩;
//! 2. **Inter-cluster**: links with average degree ⟨k_inter⟩ are apportioned
//!    between cluster pairs proportionally to their share of inter-cluster
//!    traffic, again sampled by the power-law wiring model.
//!
//! The total ⟨k⟩ = ⟨k_intra⟩ + ⟨k_inter⟩ is kept at 4 so the WiNoC's switches
//! are no larger than the mesh's, and a hard per-switch port cap `k_max`
//! bounds the degree skew.

use super::{Topology, TopologyKind};
use crate::node::{NodeId, Position};
use mapwave_harness::rng::StdRng;
use mapwave_harness::rng::{RngExt, SeedableRng};

/// Errors from [`SmallWorldBuilder::build`].
#[derive(Debug, Clone, PartialEq)]
pub enum SmallWorldError {
    /// A cluster assignment vector didn't match the position vector length.
    ClusterLenMismatch {
        /// Number of positions supplied.
        positions: usize,
        /// Number of cluster assignments supplied.
        clusters: usize,
    },
    /// `k_intra` is too small for a cluster to be connected:
    /// a cluster of `size` nodes needs at least `2 (size-1) / size` average
    /// intra-cluster degree (e.g. 1.875 for the paper's 16-core clusters).
    KIntraTooSmall {
        /// The offending cluster id.
        cluster: usize,
        /// Nodes in that cluster.
        size: usize,
        /// Requested average intra-cluster degree.
        k_intra: f64,
    },
    /// The inter-cluster traffic weight matrix has the wrong shape.
    TrafficShapeMismatch {
        /// Number of clusters inferred from assignments.
        clusters: usize,
        /// Dimension of the supplied matrix.
        matrix: usize,
    },
    /// The port cap is too small to build a connected network.
    KMaxTooSmall {
        /// The requested cap.
        k_max: usize,
    },
}

impl std::fmt::Display for SmallWorldError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SmallWorldError::ClusterLenMismatch {
                positions,
                clusters,
            } => write!(
                f,
                "cluster assignment length {clusters} does not match {positions} positions"
            ),
            SmallWorldError::KIntraTooSmall {
                cluster,
                size,
                k_intra,
            } => write!(
                f,
                "k_intra {k_intra} cannot connect cluster {cluster} of {size} nodes \
                 (needs at least {})",
                2.0 * (*size as f64 - 1.0) / *size as f64
            ),
            SmallWorldError::TrafficShapeMismatch { clusters, matrix } => write!(
                f,
                "inter-cluster traffic matrix is {matrix}x{matrix} but there are {clusters} clusters"
            ),
            SmallWorldError::KMaxTooSmall { k_max } => {
                write!(f, "per-switch port cap k_max={k_max} is too small")
            }
        }
    }
}

impl std::error::Error for SmallWorldError {}

/// Builder for the cluster-aware power-law small-world wireline network.
///
/// # Examples
///
/// ```
/// use mapwave_noc::node::grid_positions;
/// use mapwave_noc::topology::small_world::SmallWorldBuilder;
///
/// // 64 tiles in four 4x4 quadrant clusters, (k_intra, k_inter) = (3, 1).
/// let positions = grid_positions(8, 8, 2.5);
/// let clusters: Vec<usize> = (0..64)
///     .map(|i| (i % 8) / 4 + 2 * ((i / 8) / 4))
///     .collect();
/// let topo = SmallWorldBuilder::new(positions, clusters)
///     .k_intra(3.0)
///     .k_inter(1.0)
///     .seed(7)
///     .build()
///     .unwrap();
/// assert!(topo.is_connected());
/// assert!(topo.max_degree() <= 7);
/// ```
#[derive(Debug, Clone)]
pub struct SmallWorldBuilder {
    positions: Vec<Position>,
    clusters: Vec<usize>,
    k_intra: f64,
    k_inter: f64,
    k_max: usize,
    alpha: f64,
    inter_traffic: Option<Vec<Vec<f64>>>,
    seed: u64,
}

impl SmallWorldBuilder {
    /// Starts a builder over tiles at `positions`, partitioned into VFI
    /// clusters by `clusters[i]` (cluster ids must be `0..m` for some `m`).
    pub fn new(positions: Vec<Position>, clusters: Vec<usize>) -> Self {
        SmallWorldBuilder {
            positions,
            clusters,
            k_intra: 3.0,
            k_inter: 1.0,
            k_max: 7,
            alpha: 2.0,
            inter_traffic: None,
            seed: 0,
        }
    }

    /// Sets the average intra-cluster degree ⟨k_intra⟩ (default 3).
    pub fn k_intra(mut self, k: f64) -> Self {
        self.k_intra = k;
        self
    }

    /// Sets the average inter-cluster degree ⟨k_inter⟩ (default 1).
    pub fn k_inter(mut self, k: f64) -> Self {
        self.k_inter = k;
        self
    }

    /// Sets the per-switch port cap `k_max` (default 7). The local core port
    /// and the wireless port are not counted.
    pub fn k_max(mut self, k: usize) -> Self {
        self.k_max = k;
        self
    }

    /// Sets the power-law wiring-cost exponent `alpha` (default 2.0).
    pub fn alpha(mut self, alpha: f64) -> Self {
        self.alpha = alpha;
        self
    }

    /// Supplies the cluster-level inter-VFI traffic weights used to apportion
    /// inter-cluster links. `w[a][b]` is the (symmetrised) traffic between
    /// clusters `a` and `b`; the diagonal is ignored. Defaults to uniform.
    pub fn inter_traffic(mut self, w: Vec<Vec<f64>>) -> Self {
        self.inter_traffic = Some(w);
        self
    }

    /// Sets the RNG seed; identical builders with identical seeds produce
    /// identical topologies.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    fn cluster_count(&self) -> usize {
        self.clusters.iter().copied().max().map_or(0, |m| m + 1)
    }

    /// Builds the topology.
    ///
    /// # Errors
    ///
    /// See [`SmallWorldError`] for each failure mode; the builder never
    /// returns a disconnected graph.
    pub fn build(&self) -> Result<Topology, SmallWorldError> {
        let n = self.positions.len();
        if self.clusters.len() != n {
            return Err(SmallWorldError::ClusterLenMismatch {
                positions: n,
                clusters: self.clusters.len(),
            });
        }
        let m = self.cluster_count();
        if self.k_max < 2 {
            return Err(SmallWorldError::KMaxTooSmall { k_max: self.k_max });
        }
        if let Some(w) = &self.inter_traffic {
            if w.len() != m || w.iter().any(|row| row.len() != m) {
                return Err(SmallWorldError::TrafficShapeMismatch {
                    clusters: m,
                    matrix: w.len(),
                });
            }
        }

        let mut members: Vec<Vec<NodeId>> = vec![Vec::new(); m];
        for (i, &c) in self.clusters.iter().enumerate() {
            members[c].push(NodeId(i));
        }
        for (c, mem) in members.iter().enumerate() {
            let size = mem.len();
            if size > 1 && self.k_intra * size as f64 / 2.0 < (size as f64 - 1.0) {
                return Err(SmallWorldError::KIntraTooSmall {
                    cluster: c,
                    size,
                    k_intra: self.k_intra,
                });
            }
        }

        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut topo = Topology::new(self.positions.clone(), TopologyKind::SmallWorld);

        // Stage 1: connected power-law network inside each cluster.
        for mem in &members {
            self.build_intra(&mut topo, mem, &mut rng);
        }

        // Stage 2: inter-cluster links apportioned to traffic.
        self.build_inter(&mut topo, &members, &mut rng);

        // Repair: guarantee global connectivity (possible when a traffic
        // matrix starves some cluster pair and the rest don't bridge it).
        self.connect_components(&mut topo);

        Ok(topo)
    }

    /// Weight of a candidate link under the spatial power-law model.
    fn wire_weight(&self, a: NodeId, b: NodeId) -> f64 {
        let d = self.positions[a.index()].manhattan(self.positions[b.index()]);
        // Tiles at identical positions (degenerate inputs) get weight 1.
        if d <= f64::EPSILON {
            1.0
        } else {
            d.powf(-self.alpha)
        }
    }

    /// Randomised-Prim spanning tree plus weighted extra links inside one
    /// cluster.
    fn build_intra(&self, topo: &mut Topology, mem: &[NodeId], rng: &mut StdRng) {
        let size = mem.len();
        if size <= 1 {
            return;
        }
        // Spanning tree: grow from mem[0], attaching each outside node via a
        // power-law-weighted choice of (in-tree, out-of-tree) pair, skipping
        // saturated in-tree nodes where possible.
        let mut in_tree = vec![mem[0]];
        let mut out: Vec<NodeId> = mem[1..].to_vec();
        while !out.is_empty() {
            let mut cands: Vec<(NodeId, NodeId, f64)> = Vec::new();
            for &a in &in_tree {
                if topo.degree(a) >= self.k_max {
                    continue;
                }
                for &b in &out {
                    cands.push((a, b, self.wire_weight(a, b)));
                }
            }
            if cands.is_empty() {
                // Every in-tree node saturated: spill over the cap rather
                // than return a disconnected cluster (degree cap is a soft
                // constraint in pathological configurations).
                for &a in &in_tree {
                    for &b in &out {
                        cands.push((a, b, self.wire_weight(a, b)));
                    }
                }
            }
            let (a, b) = weighted_pick(&cands, rng);
            topo.add_link(a, b).expect("tree link must be fresh");
            let pos = out.iter().position(|&x| x == b).expect("b is in out");
            out.swap_remove(pos);
            in_tree.push(b);
        }

        // Extra links up to the intra-degree budget.
        let target_links =
            ((self.k_intra * size as f64 / 2.0).round() as usize).min(size * (size - 1) / 2);
        while topo_links_within(topo, mem) < target_links {
            let mut cands: Vec<(NodeId, NodeId, f64)> = Vec::new();
            for (i, &a) in mem.iter().enumerate() {
                if topo.degree(a) >= self.k_max {
                    continue;
                }
                for &b in &mem[i + 1..] {
                    if topo.degree(b) >= self.k_max || topo.has_link(a, b) {
                        continue;
                    }
                    cands.push((a, b, self.wire_weight(a, b)));
                }
            }
            if cands.is_empty() {
                break; // degree cap exhausted the candidate space
            }
            let (a, b) = weighted_pick(&cands, rng);
            topo.add_link(a, b).expect("candidate link must be fresh");
        }
    }

    fn build_inter(&self, topo: &mut Topology, members: &[Vec<NodeId>], rng: &mut StdRng) {
        let m = members.len();
        if m <= 1 {
            return;
        }
        let n: usize = members.iter().map(Vec::len).sum();
        let total_links = (self.k_inter * n as f64 / 2.0).round() as usize;

        // Per-cluster-pair quota proportional to inter-cluster traffic.
        let mut weights: Vec<(usize, usize, f64)> = Vec::new();
        let mut total_w = 0.0;
        for a in 0..m {
            for b in a + 1..m {
                let w = match &self.inter_traffic {
                    Some(t) => (t[a][b] + t[b][a]).max(0.0),
                    None => 1.0,
                };
                total_w += w;
                weights.push((a, b, w));
            }
        }
        if total_w <= 0.0 {
            // Degenerate traffic matrix: fall back to uniform.
            total_w = weights.len() as f64;
            for w in &mut weights {
                w.2 = 1.0;
            }
        }

        // Largest-remainder apportionment of the link budget.
        let mut quota: Vec<usize> = Vec::with_capacity(weights.len());
        let mut rema: Vec<(usize, f64)> = Vec::with_capacity(weights.len());
        let mut assigned = 0usize;
        for (idx, &(_, _, w)) in weights.iter().enumerate() {
            let exact = total_links as f64 * w / total_w;
            let base = exact.floor() as usize;
            quota.push(base);
            rema.push((idx, exact - base as f64));
            assigned += base;
        }
        rema.sort_by(|x, y| y.1.partial_cmp(&x.1).unwrap_or(std::cmp::Ordering::Equal));
        for &(idx, _) in rema.iter().take(total_links.saturating_sub(assigned)) {
            quota[idx] += 1;
        }

        for (q, &(a, b, _)) in quota.iter().zip(weights.iter()) {
            for _ in 0..*q {
                let mut cands: Vec<(NodeId, NodeId, f64)> = Vec::new();
                for &u in &members[a] {
                    if topo.degree(u) >= self.k_max {
                        continue;
                    }
                    for &v in &members[b] {
                        if topo.degree(v) >= self.k_max || topo.has_link(u, v) {
                            continue;
                        }
                        cands.push((u, v, self.wire_weight(u, v)));
                    }
                }
                if cands.is_empty() {
                    break;
                }
                let (u, v) = weighted_pick(&cands, rng);
                topo.add_link(u, v).expect("candidate link must be fresh");
            }
        }
    }

    /// Joins remaining connected components with the shortest available
    /// cross-component wire.
    fn connect_components(&self, topo: &mut Topology) {
        loop {
            let comp = components(topo);
            let max_comp = comp.iter().copied().max().map_or(0, |c| c + 1);
            if max_comp <= 1 {
                return;
            }
            // Link component 0 to the nearest node of any other component.
            let mut best: Option<(NodeId, NodeId, f64)> = None;
            for a in topo.nodes() {
                if comp[a.index()] != 0 {
                    continue;
                }
                for b in topo.nodes() {
                    if comp[b.index()] == 0 {
                        continue;
                    }
                    let d = self.positions[a.index()].manhattan(self.positions[b.index()]);
                    if best.is_none_or(|(_, _, bd)| d < bd) {
                        best = Some((a, b, d));
                    }
                }
            }
            let (a, b, _) = best.expect("disconnected graph has a cross pair");
            topo.add_link(a, b).expect("repair link must be fresh");
        }
    }
}

/// Number of links with both endpoints in `mem`.
fn topo_links_within(topo: &Topology, mem: &[NodeId]) -> usize {
    let set: std::collections::HashSet<NodeId> = mem.iter().copied().collect();
    mem.iter()
        .map(|&a| {
            topo.neighbors(a)
                .iter()
                .filter(|&&b| a < b && set.contains(&b))
                .count()
        })
        .sum()
}

/// Weighted random pick over `(a, b, weight)` candidates.
///
/// # Panics
///
/// Panics if `cands` is empty.
fn weighted_pick(cands: &[(NodeId, NodeId, f64)], rng: &mut StdRng) -> (NodeId, NodeId) {
    let total: f64 = cands.iter().map(|c| c.2).sum();
    if total <= 0.0 {
        let i = rng.random_range(0..cands.len());
        return (cands[i].0, cands[i].1);
    }
    let mut x = rng.random::<f64>() * total;
    for &(a, b, w) in cands {
        x -= w;
        if x <= 0.0 {
            return (a, b);
        }
    }
    let last = cands.last().expect("cands is nonempty");
    (last.0, last.1)
}

/// Connected-component label per node.
fn components(topo: &Topology) -> Vec<usize> {
    let n = topo.len();
    let mut comp = vec![usize::MAX; n];
    let mut next = 0usize;
    for s in topo.nodes() {
        if comp[s.index()] != usize::MAX {
            continue;
        }
        let mut stack = vec![s];
        comp[s.index()] = next;
        while let Some(v) = stack.pop() {
            for &w in topo.neighbors(v) {
                if comp[w.index()] == usize::MAX {
                    comp[w.index()] = next;
                    stack.push(w);
                }
            }
        }
        next += 1;
    }
    comp
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::grid_positions;

    fn quadrant_clusters() -> Vec<usize> {
        (0..64).map(|i| (i % 8) / 4 + 2 * ((i / 8) / 4)).collect()
    }

    fn build(seed: u64) -> Topology {
        SmallWorldBuilder::new(grid_positions(8, 8, 2.5), quadrant_clusters())
            .k_intra(3.0)
            .k_inter(1.0)
            .seed(seed)
            .build()
            .unwrap()
    }

    #[test]
    fn builds_connected_64_node_network() {
        let t = build(42);
        assert_eq!(t.len(), 64);
        assert!(t.is_connected());
    }

    #[test]
    fn respects_port_cap() {
        for seed in 0..5 {
            let t = build(seed);
            assert!(
                t.max_degree() <= 7,
                "seed {seed}: degree {}",
                t.max_degree()
            );
        }
    }

    #[test]
    fn average_degree_close_to_k() {
        let t = build(1);
        let k = t.avg_degree();
        assert!(
            (3.4..=4.4).contains(&k),
            "avg degree {k} not near requested 4.0"
        );
    }

    #[test]
    fn deterministic_for_same_seed() {
        assert_eq!(build(9), build(9));
    }

    #[test]
    fn different_seed_differs() {
        assert_ne!(build(1), build(2));
    }

    #[test]
    fn each_cluster_internally_connected() {
        let t = build(3);
        let clusters = quadrant_clusters();
        for c in 0..4 {
            let mem: Vec<NodeId> = (0..64).filter(|&i| clusters[i] == c).map(NodeId).collect();
            // BFS restricted to the cluster.
            let set: std::collections::HashSet<_> = mem.iter().copied().collect();
            let mut seen = std::collections::HashSet::new();
            let mut stack = vec![mem[0]];
            seen.insert(mem[0]);
            while let Some(v) = stack.pop() {
                for &w in t.neighbors(v) {
                    if set.contains(&w) && seen.insert(w) {
                        stack.push(w);
                    }
                }
            }
            assert_eq!(
                seen.len(),
                mem.len(),
                "cluster {c} not internally connected"
            );
        }
    }

    #[test]
    fn traffic_biases_inter_links() {
        // Heavy traffic between clusters 0 and 3 should attract more links
        // than a starved pair.
        let mut w = vec![vec![0.01; 4]; 4];
        w[0][3] = 10.0;
        w[3][0] = 10.0;
        let t = SmallWorldBuilder::new(grid_positions(8, 8, 2.5), quadrant_clusters())
            .k_intra(3.0)
            .k_inter(1.0)
            .inter_traffic(w)
            .seed(5)
            .build()
            .unwrap();
        let clusters = quadrant_clusters();
        let count_pair = |a: usize, b: usize| {
            t.links()
                .filter(|&(u, v)| {
                    let (cu, cv) = (clusters[u.index()], clusters[v.index()]);
                    (cu == a && cv == b) || (cu == b && cv == a)
                })
                .count()
        };
        assert!(count_pair(0, 3) > count_pair(1, 2));
        assert!(t.is_connected());
    }

    #[test]
    fn rejects_too_small_k_intra() {
        let err = SmallWorldBuilder::new(grid_positions(4, 4, 1.0), vec![0; 16])
            .k_intra(1.0)
            .build()
            .unwrap_err();
        assert!(matches!(err, SmallWorldError::KIntraTooSmall { .. }));
    }

    #[test]
    fn rejects_mismatched_clusters() {
        let err = SmallWorldBuilder::new(grid_positions(4, 4, 1.0), vec![0; 7])
            .build()
            .unwrap_err();
        assert!(matches!(err, SmallWorldError::ClusterLenMismatch { .. }));
    }

    #[test]
    fn rejects_bad_traffic_shape() {
        let err = SmallWorldBuilder::new(grid_positions(8, 8, 1.0), quadrant_clusters())
            .inter_traffic(vec![vec![1.0; 3]; 3])
            .build()
            .unwrap_err();
        assert!(matches!(err, SmallWorldError::TrafficShapeMismatch { .. }));
    }

    #[test]
    fn power_law_prefers_short_links() {
        // With a strong distance penalty the mean link length should be well
        // below the mean pairwise distance.
        let t = SmallWorldBuilder::new(grid_positions(8, 8, 1.0), quadrant_clusters())
            .alpha(2.5)
            .seed(11)
            .build()
            .unwrap();
        let mean_link: f64 =
            t.links().map(|(a, b)| t.link_length_mm(a, b)).sum::<f64>() / t.link_count() as f64;
        assert!(mean_link < 3.0, "mean link length {mean_link}");
    }

    #[test]
    fn single_cluster_small_world() {
        let t = SmallWorldBuilder::new(grid_positions(4, 4, 1.0), vec![0; 16])
            .k_intra(4.0)
            .k_inter(0.0)
            .seed(2)
            .build()
            .unwrap();
        assert!(t.is_connected());
    }

    #[test]
    fn two_two_configuration_builds() {
        let t = SmallWorldBuilder::new(grid_positions(8, 8, 2.5), quadrant_clusters())
            .k_intra(2.0)
            .k_inter(2.0)
            .seed(4)
            .build()
            .unwrap();
        assert!(t.is_connected());
        assert!((3.4..=4.6).contains(&t.avg_degree()));
    }
}

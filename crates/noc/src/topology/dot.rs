//! Graphviz (DOT) export of topologies — handy for eyeballing the
//! small-world wiring and the wireless overlay.
//!
//! ```sh
//! cargo run --release --bin mapwave -- design WC   # then render:
//! dot -Kneato -n -Tpng winoc.dot -o winoc.png
//! ```

use super::Topology;
use crate::topology::wireless::WirelessOverlay;
use std::fmt::Write as _;

/// Renders `topo` (and optionally a wireless overlay) as a Graphviz graph.
///
/// Nodes are pinned to their physical positions (use `-Kneato -n` when
/// rendering), wireless interfaces are filled and labelled with their
/// channel, and wireless channels are drawn as dashed cliques.
///
/// # Examples
///
/// ```
/// use mapwave_noc::topology::mesh::mesh;
/// use mapwave_noc::topology::dot::to_dot;
/// use mapwave_noc::topology::wireless::WirelessOverlay;
///
/// let dot = to_dot(&mesh(2, 2, 1.0), &WirelessOverlay::none());
/// assert!(dot.starts_with("graph noc {"));
/// assert!(dot.contains("n0 -- n1"));
/// ```
pub fn to_dot(topo: &Topology, overlay: &WirelessOverlay) -> String {
    let mut out = String::from("graph noc {\n");
    out.push_str("  node [shape=circle, fontsize=10, width=0.35, fixedsize=true];\n");

    for v in topo.nodes() {
        let pos = topo.position(v);
        match overlay.channel_of(v) {
            Some(ch) => {
                let _ = writeln!(
                    out,
                    "  n{} [pos=\"{:.1},{:.1}!\", style=filled, fillcolor=lightblue, \
                     xlabel=\"{}\"];",
                    v.index(),
                    pos.x * 40.0,
                    -pos.y * 40.0,
                    ch
                );
            }
            None => {
                let _ = writeln!(
                    out,
                    "  n{} [pos=\"{:.1},{:.1}!\"];",
                    v.index(),
                    pos.x * 40.0,
                    -pos.y * 40.0
                );
            }
        }
    }

    for (a, b) in topo.links() {
        let _ = writeln!(out, "  n{} -- n{};", a.index(), b.index());
    }

    // Dashed cliques per wireless channel.
    for c in 0..overlay.channel_count() {
        let members = overlay.channel_members(crate::topology::wireless::ChannelId(c));
        for (i, &a) in members.iter().enumerate() {
            for &b in &members[i + 1..] {
                let _ = writeln!(
                    out,
                    "  n{} -- n{} [style=dashed, color=steelblue, constraint=false];",
                    a.index(),
                    b.index()
                );
            }
        }
    }

    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::NodeId;
    use crate::topology::mesh::mesh;
    use crate::topology::wireless::{ChannelId, WirelessInterface};

    #[test]
    fn mesh_export_lists_all_links() {
        let m = mesh(3, 3, 1.0);
        let dot = to_dot(&m, &WirelessOverlay::none());
        assert_eq!(dot.matches(" -- ").count(), m.link_count());
        for v in 0..9 {
            assert!(dot.contains(&format!("n{v} [pos=")));
        }
    }

    #[test]
    fn wireless_members_are_marked_and_linked() {
        let m = mesh(3, 3, 1.0);
        let overlay = WirelessOverlay::new(
            vec![
                WirelessInterface {
                    node: NodeId(0),
                    channel: ChannelId(0),
                },
                WirelessInterface {
                    node: NodeId(8),
                    channel: ChannelId(0),
                },
            ],
            1,
        )
        .unwrap();
        let dot = to_dot(&m, &overlay);
        assert!(dot.contains("fillcolor=lightblue"));
        assert!(dot.contains("n0 -- n8 [style=dashed"));
    }

    #[test]
    fn output_is_wellformed() {
        let dot = to_dot(&mesh(2, 2, 1.0), &WirelessOverlay::none());
        assert!(dot.starts_with("graph noc {"));
        assert!(dot.trim_end().ends_with('}'));
    }
}

//! Wireless overlay: mm-wave wireless interfaces (WIs) and channels.
//!
//! Following Deb et al. \[8\], three non-overlapping mm-wave channels can be
//! realised on-chip, and for a 64-core system the optimum WI count is 12
//! (Wettin et al. \[20\]). The paper assigns three WIs — one per channel — to
//! each of the four VFI clusters. A WI gives its switch one extra port with
//! a deeper (8-flit) buffer; all WIs tuned to the same channel share that
//! medium under a token-passing MAC (see [`crate::mac`]).

use crate::node::NodeId;
use std::collections::BTreeMap;
use std::fmt;

/// Identifier of a wireless channel (0-based).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct ChannelId(pub usize);

impl ChannelId {
    /// Returns the underlying index.
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for ChannelId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ch{}", self.0)
    }
}

/// A wireless interface: one switch equipped with a transceiver tuned to one
/// channel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct WirelessInterface {
    /// The switch carrying this WI.
    pub node: NodeId,
    /// The channel the transceiver is tuned to.
    pub channel: ChannelId,
}

/// Errors from [`WirelessOverlay::new`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WirelessError {
    /// The same switch was given two WIs.
    DuplicateNode(NodeId),
    /// A WI referenced a channel ≥ the channel count.
    ChannelOutOfRange {
        /// The offending channel.
        channel: ChannelId,
        /// Number of channels in the overlay.
        channels: usize,
    },
}

impl fmt::Display for WirelessError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WirelessError::DuplicateNode(n) => write!(f, "node {n} has more than one WI"),
            WirelessError::ChannelOutOfRange { channel, channels } => {
                write!(f, "{channel} out of range for {channels} channels")
            }
        }
    }
}

impl std::error::Error for WirelessError {}

/// The set of wireless interfaces overlaid on a wireline topology.
///
/// # Examples
///
/// ```
/// use mapwave_noc::topology::wireless::{WirelessOverlay, WirelessInterface, ChannelId};
/// use mapwave_noc::NodeId;
///
/// let overlay = WirelessOverlay::new(
///     vec![
///         WirelessInterface { node: NodeId(0), channel: ChannelId(0) },
///         WirelessInterface { node: NodeId(9), channel: ChannelId(0) },
///         WirelessInterface { node: NodeId(5), channel: ChannelId(1) },
///         WirelessInterface { node: NodeId(12), channel: ChannelId(1) },
///     ],
///     2,
/// )?;
/// assert_eq!(overlay.len(), 4);
/// assert_eq!(overlay.channel_members(ChannelId(0)), vec![NodeId(0), NodeId(9)]);
/// assert!(overlay.is_wi(NodeId(5)));
/// # Ok::<(), mapwave_noc::topology::wireless::WirelessError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WirelessOverlay {
    wis: Vec<WirelessInterface>,
    channel_count: usize,
    by_node: BTreeMap<NodeId, ChannelId>,
}

impl WirelessOverlay {
    /// The number of non-overlapping mm-wave channels demonstrated in \[8\].
    pub const PAPER_CHANNELS: usize = 3;
    /// The optimum WI count for a 64-core system per \[20\].
    pub const PAPER_WI_COUNT: usize = 12;

    /// Creates an overlay from WIs and the channel count.
    ///
    /// WIs are kept sorted by node id so iteration is deterministic.
    ///
    /// # Errors
    ///
    /// Returns [`WirelessError`] if two WIs share a switch or a channel id is
    /// out of range.
    pub fn new(
        mut wis: Vec<WirelessInterface>,
        channel_count: usize,
    ) -> Result<Self, WirelessError> {
        wis.sort_by_key(|w| w.node);
        let mut by_node = BTreeMap::new();
        for wi in &wis {
            if wi.channel.index() >= channel_count {
                return Err(WirelessError::ChannelOutOfRange {
                    channel: wi.channel,
                    channels: channel_count,
                });
            }
            if by_node.insert(wi.node, wi.channel).is_some() {
                return Err(WirelessError::DuplicateNode(wi.node));
            }
        }
        Ok(WirelessOverlay {
            wis,
            channel_count,
            by_node,
        })
    }

    /// An overlay with no wireless equipment (pure wireline network).
    pub fn none() -> Self {
        WirelessOverlay {
            wis: Vec::new(),
            channel_count: 0,
            by_node: BTreeMap::new(),
        }
    }

    /// Number of WIs.
    pub fn len(&self) -> usize {
        self.wis.len()
    }

    /// Whether the overlay has no WIs.
    pub fn is_empty(&self) -> bool {
        self.wis.is_empty()
    }

    /// Number of channels.
    pub fn channel_count(&self) -> usize {
        self.channel_count
    }

    /// All WIs, sorted by node id.
    pub fn interfaces(&self) -> &[WirelessInterface] {
        &self.wis
    }

    /// The channel of the WI at `node`, if any.
    pub fn channel_of(&self, node: NodeId) -> Option<ChannelId> {
        self.by_node.get(&node).copied()
    }

    /// Whether `node` carries a WI.
    pub fn is_wi(&self, node: NodeId) -> bool {
        self.by_node.contains_key(&node)
    }

    /// Moves the WI at `index` (in [`WirelessOverlay::interfaces`] order) to
    /// `node`, keeping the list sorted by node id, and returns the WI's new
    /// index. The in-place dual of rebuilding the overlay through
    /// [`WirelessOverlay::new`] with one entry changed — the placement
    /// annealer uses a relocate/undo pair per move instead of cloning the
    /// interface list and re-sorting a fresh overlay.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range or `node` already carries a
    /// different WI.
    pub fn relocate(&mut self, index: usize, node: NodeId) -> usize {
        let old = self.wis[index];
        if node == old.node {
            return index;
        }
        assert!(
            !self.by_node.contains_key(&node),
            "target node already carries a WI"
        );
        self.by_node.remove(&old.node);
        self.by_node.insert(node, old.channel);
        self.wis[index].node = node;
        // Bubble the entry to its sorted position (node ids are unique, so
        // the order matches a full re-sort).
        let mut i = index;
        while i + 1 < self.wis.len() && self.wis[i + 1].node < node {
            self.wis.swap(i, i + 1);
            i += 1;
        }
        while i > 0 && self.wis[i - 1].node > node {
            self.wis.swap(i, i - 1);
            i -= 1;
        }
        i
    }

    /// Nodes whose WIs are tuned to `channel`, sorted by id.
    pub fn channel_members(&self, channel: ChannelId) -> Vec<NodeId> {
        self.wis
            .iter()
            .filter(|w| w.channel == channel)
            .map(|w| w.node)
            .collect()
    }

    /// Whether a single wireless hop `a → b` exists (both are WIs on the same
    /// channel and are distinct).
    pub fn wireless_hop(&self, a: NodeId, b: NodeId) -> Option<ChannelId> {
        match (self.channel_of(a), self.channel_of(b)) {
            (Some(ca), Some(cb)) if ca == cb && a != b => Some(ca),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn wi(node: usize, ch: usize) -> WirelessInterface {
        WirelessInterface {
            node: NodeId(node),
            channel: ChannelId(ch),
        }
    }

    #[test]
    fn rejects_duplicate_node() {
        let err = WirelessOverlay::new(vec![wi(3, 0), wi(3, 1)], 2).unwrap_err();
        assert_eq!(err, WirelessError::DuplicateNode(NodeId(3)));
    }

    #[test]
    fn rejects_channel_out_of_range() {
        let err = WirelessOverlay::new(vec![wi(3, 2)], 2).unwrap_err();
        assert!(matches!(err, WirelessError::ChannelOutOfRange { .. }));
    }

    #[test]
    fn members_sorted() {
        let o = WirelessOverlay::new(vec![wi(9, 0), wi(2, 0), wi(5, 1)], 2).unwrap();
        assert_eq!(o.channel_members(ChannelId(0)), vec![NodeId(2), NodeId(9)]);
    }

    #[test]
    fn wireless_hop_requires_same_channel() {
        let o = WirelessOverlay::new(vec![wi(1, 0), wi(2, 0), wi(3, 1)], 2).unwrap();
        assert_eq!(o.wireless_hop(NodeId(1), NodeId(2)), Some(ChannelId(0)));
        assert_eq!(o.wireless_hop(NodeId(1), NodeId(3)), None);
        assert_eq!(o.wireless_hop(NodeId(1), NodeId(1)), None);
        assert_eq!(o.wireless_hop(NodeId(1), NodeId(7)), None);
    }

    #[test]
    fn relocate_matches_rebuild() {
        let o = WirelessOverlay::new(vec![wi(2, 0), wi(5, 1), wi(9, 0)], 2).unwrap();
        for (index, node) in [(0usize, 7usize), (2, 0), (1, 6), (0, 2)] {
            let mut moved = o.clone();
            let new_index = moved.relocate(index, NodeId(node));
            let mut list = o.interfaces().to_vec();
            list[index].node = NodeId(node);
            let rebuilt = WirelessOverlay::new(list, 2).unwrap();
            assert_eq!(moved, rebuilt, "relocate {index} -> {node}");
            assert_eq!(moved.interfaces()[new_index].node, NodeId(node));
            // Undo restores the original overlay exactly.
            let old_node = o.interfaces()[index].node;
            moved.relocate(new_index, old_node);
            assert_eq!(moved, o);
        }
    }

    #[test]
    fn none_overlay_is_empty() {
        let o = WirelessOverlay::none();
        assert!(o.is_empty());
        assert_eq!(o.channel_count(), 0);
        assert!(!o.is_wi(NodeId(0)));
    }

    #[test]
    fn paper_constants() {
        assert_eq!(WirelessOverlay::PAPER_CHANNELS, 3);
        assert_eq!(WirelessOverlay::PAPER_WI_COUNT, 12);
    }

    #[test]
    fn paper_shape_overlay() {
        // 12 WIs, 4 per channel, 3 channels.
        let wis: Vec<_> = (0..12).map(|i| wi(i * 5, i % 3)).collect();
        let o = WirelessOverlay::new(wis, 3).unwrap();
        assert_eq!(o.len(), 12);
        for c in 0..3 {
            assert_eq!(o.channel_members(ChannelId(c)).len(), 4);
        }
    }
}

//! Regular 2-D mesh generator — the paper's baseline interconnect.

use super::{Topology, TopologyKind};
use crate::node::{grid_positions, NodeId};

/// Builds a `cols x rows` 2-D mesh with tile pitch `tile_mm`.
///
/// Node ids are row-major: node `r * cols + c` sits at column `c`, row `r`.
/// Every node links to its 4-neighbourhood, giving corner nodes degree 2,
/// edge nodes degree 3 and interior nodes degree 4 — the conventional
/// mesh NoC the paper uses for both the NVFI and VFI-mesh baselines.
///
/// # Panics
///
/// Panics if `cols == 0 || rows == 0`.
///
/// # Examples
///
/// ```
/// use mapwave_noc::topology::mesh::mesh;
///
/// let m = mesh(8, 8, 2.5);
/// assert_eq!(m.len(), 64);
/// assert!(m.is_connected());
/// assert_eq!(m.diameter(), 14); // (8-1)+(8-1)
/// ```
pub fn mesh(cols: usize, rows: usize, tile_mm: f64) -> Topology {
    assert!(cols > 0 && rows > 0, "mesh dimensions must be nonzero");
    let mut t = Topology::new(
        grid_positions(cols, rows, tile_mm),
        TopologyKind::Mesh { cols, rows },
    );
    for r in 0..rows {
        for c in 0..cols {
            let v = NodeId(r * cols + c);
            if c + 1 < cols {
                t.add_link(v, NodeId(r * cols + c + 1))
                    .expect("mesh link must be fresh");
            }
            if r + 1 < rows {
                t.add_link(v, NodeId((r + 1) * cols + c))
                    .expect("mesh link must be fresh");
            }
        }
    }
    t
}

/// Returns `(col, row)` coordinates of `node` in a `cols`-wide mesh.
pub fn coords(node: NodeId, cols: usize) -> (usize, usize) {
    (node.index() % cols, node.index() / cols)
}

/// Returns the node at `(col, row)` in a `cols`-wide mesh.
pub fn node_at(col: usize, row: usize, cols: usize) -> NodeId {
    NodeId(row * cols + col)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mesh_link_count() {
        // cols*(rows-1) + rows*(cols-1)
        let m = mesh(4, 3, 1.0);
        assert_eq!(m.link_count(), 4 * 2 + 3 * 3);
    }

    #[test]
    fn mesh_degrees() {
        let m = mesh(3, 3, 1.0);
        assert_eq!(m.degree(NodeId(0)), 2); // corner
        assert_eq!(m.degree(NodeId(1)), 3); // edge
        assert_eq!(m.degree(NodeId(4)), 4); // centre
    }

    #[test]
    fn mesh_8x8_matches_paper_baseline() {
        let m = mesh(8, 8, 2.5);
        assert_eq!(m.len(), 64);
        assert!(m.is_connected());
        // ⟨k⟩ of an 8x8 mesh is 2*112/64 = 3.5, bounded by 4.
        assert!(m.avg_degree() <= 4.0);
        assert_eq!(m.max_degree(), 4);
    }

    #[test]
    fn coords_roundtrip() {
        for i in 0..64 {
            let (c, r) = coords(NodeId(i), 8);
            assert_eq!(node_at(c, r, 8), NodeId(i));
        }
    }

    #[test]
    fn single_node_mesh() {
        let m = mesh(1, 1, 1.0);
        assert_eq!(m.len(), 1);
        assert_eq!(m.link_count(), 0);
        assert!(m.is_connected());
    }

    #[test]
    #[should_panic]
    fn zero_dim_mesh_panics() {
        let _ = mesh(0, 3, 1.0);
    }

    #[test]
    fn mesh_link_lengths_equal_pitch() {
        let m = mesh(3, 3, 2.5);
        for (a, b) in m.links() {
            assert!((m.link_length_mm(a, b) - 2.5).abs() < 1e-12);
        }
    }
}

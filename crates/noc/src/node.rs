//! Node identifiers and on-die geometry.
//!
//! Every switch (and the tile attached to it) is identified by a [`NodeId`]
//! and has a physical [`Position`] on the die. Positions are used to compute
//! wireline link lengths (and therefore wire energy) and to reason about
//! "physically far" nodes when placing wireless interfaces.

use std::fmt;

/// Index of a switch/tile in the network.
///
/// `NodeId` is a plain newtype over `usize`; it exists so that node indices
/// cannot be confused with port numbers, cluster ids, or flit counts.
///
/// # Examples
///
/// ```
/// use mapwave_noc::NodeId;
///
/// let n = NodeId(5);
/// assert_eq!(n.index(), 5);
/// assert_eq!(format!("{n}"), "n5");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct NodeId(pub usize);

impl NodeId {
    /// Returns the underlying index.
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl From<usize> for NodeId {
    fn from(value: usize) -> Self {
        NodeId(value)
    }
}

/// Physical position of a tile centre on the die, in millimetres.
///
/// # Examples
///
/// ```
/// use mapwave_noc::Position;
///
/// let a = Position::new(0.0, 0.0);
/// let b = Position::new(3.0, 4.0);
/// assert_eq!(a.manhattan(b), 7.0);
/// assert!((a.euclidean(b) - 5.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Position {
    /// Horizontal coordinate in mm.
    pub x: f64,
    /// Vertical coordinate in mm.
    pub y: f64,
}

impl Position {
    /// Creates a position from coordinates in millimetres.
    pub fn new(x: f64, y: f64) -> Self {
        Position { x, y }
    }

    /// Manhattan (rectilinear) distance to `other`, in mm.
    ///
    /// On-chip wires are routed rectilinearly, so wire lengths use this
    /// metric.
    pub fn manhattan(self, other: Position) -> f64 {
        (self.x - other.x).abs() + (self.y - other.y).abs()
    }

    /// Euclidean (line-of-sight) distance to `other`, in mm.
    ///
    /// Millimetre-wave wireless propagation is line-of-sight, so wireless
    /// reachability checks use this metric.
    pub fn euclidean(self, other: Position) -> f64 {
        ((self.x - other.x).powi(2) + (self.y - other.y).powi(2)).sqrt()
    }
}

/// Lays tiles of a `cols x rows` grid on a die, returning one [`Position`]
/// per node in row-major order.
///
/// `tile_mm` is the pitch between adjacent tile centres.
///
/// # Examples
///
/// ```
/// use mapwave_noc::node::grid_positions;
///
/// let pos = grid_positions(8, 8, 2.5);
/// assert_eq!(pos.len(), 64);
/// // Adjacent tiles are one pitch apart.
/// assert_eq!(pos[0].manhattan(pos[1]), 2.5);
/// ```
pub fn grid_positions(cols: usize, rows: usize, tile_mm: f64) -> Vec<Position> {
    let mut out = Vec::with_capacity(cols * rows);
    for r in 0..rows {
        for c in 0..cols {
            out.push(Position::new(c as f64 * tile_mm, r as f64 * tile_mm));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_id_roundtrip() {
        let n: NodeId = 7usize.into();
        assert_eq!(n.index(), 7);
        assert_eq!(n, NodeId(7));
    }

    #[test]
    fn node_id_display_nonempty() {
        assert_eq!(NodeId(0).to_string(), "n0");
    }

    #[test]
    fn manhattan_is_symmetric() {
        let a = Position::new(1.0, 2.0);
        let b = Position::new(-3.0, 5.5);
        assert_eq!(a.manhattan(b), b.manhattan(a));
    }

    #[test]
    fn euclidean_le_manhattan() {
        let a = Position::new(0.0, 0.0);
        let b = Position::new(2.0, 3.0);
        assert!(a.euclidean(b) <= a.manhattan(b));
    }

    #[test]
    fn grid_positions_row_major() {
        let pos = grid_positions(4, 2, 1.0);
        assert_eq!(pos.len(), 8);
        assert_eq!(pos[0], Position::new(0.0, 0.0));
        assert_eq!(pos[3], Position::new(3.0, 0.0));
        assert_eq!(pos[4], Position::new(0.0, 1.0));
    }

    #[test]
    fn grid_positions_pitch() {
        let pos = grid_positions(3, 3, 2.5);
        assert!((pos[1].x - 2.5).abs() < 1e-12);
        assert!((pos[3].y - 2.5).abs() < 1e-12);
    }
}

//! Measurement results of a network simulation.

use crate::energy::EnergyBreakdown;
use crate::node::NodeId;
use mapwave_harness::hash::{CacheKey, StableHash, StableHasher};

/// Number of latency histogram buckets (powers of two: `[2^k, 2^(k+1))`).
pub const LATENCY_BUCKETS: usize = 16;

/// A directed link's measured utilisation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkLoad {
    /// Sending switch.
    pub from: NodeId,
    /// Receiving switch.
    pub to: NodeId,
    /// Flits carried during the measurement window.
    pub flits: u64,
}

/// Aggregate statistics collected during the measurement window of a
/// [`crate::sim::NetworkSim`] run.
#[derive(Debug, PartialEq, Default)]
pub struct NetworkStats {
    /// Cycles in the measurement window.
    pub cycles: u64,
    /// Packets injected during measurement.
    pub packets_injected: u64,
    /// Packets fully delivered during measurement.
    pub packets_delivered: u64,
    /// Flits delivered during measurement.
    pub flits_delivered: u64,
    /// Sum of packet latencies (creation → tail ejection), cycles.
    pub latency_sum: u64,
    /// Largest single packet latency observed, cycles.
    pub max_latency: u64,
    /// Flit-hops that travelled over a wireless channel.
    pub wireless_flit_hops: u64,
    /// Flit-hops that travelled over wires.
    pub wire_flit_hops: u64,
    /// Wire flit-hops taken on an adaptive virtual channel (0 unless the
    /// router runs with `vcs >= 2` and adaptive routing).
    pub adaptive_flit_hops: u64,
    /// Energy consumed during measurement.
    pub energy: EnergyBreakdown,
    /// Packets still in flight when measurement ended.
    pub in_flight_at_end: u64,
    /// Packet latency histogram: bucket `k` counts latencies in
    /// `[2^k, 2^(k+1))` cycles (the last bucket absorbs the overflow).
    pub latency_histogram: Vec<u64>,
    /// Measured flits per directed wire link (nonzero entries only,
    /// deterministic order).
    pub link_loads: Vec<LinkLoad>,
}

impl StableHash for LinkLoad {
    fn stable_hash(&self, h: &mut StableHasher) {
        self.from.index().stable_hash(h);
        self.to.index().stable_hash(h);
        self.flits.stable_hash(h);
    }
}

/// Manual so that `clone_from` reuses the histogram and link-load
/// allocations — callers that retain per-window statistics round after
/// round (e.g. a relaxation loop) overwrite one slot in place instead of
/// allocating fresh vectors each time.
impl Clone for NetworkStats {
    fn clone(&self) -> Self {
        NetworkStats {
            cycles: self.cycles,
            packets_injected: self.packets_injected,
            packets_delivered: self.packets_delivered,
            flits_delivered: self.flits_delivered,
            latency_sum: self.latency_sum,
            max_latency: self.max_latency,
            wireless_flit_hops: self.wireless_flit_hops,
            wire_flit_hops: self.wire_flit_hops,
            adaptive_flit_hops: self.adaptive_flit_hops,
            energy: self.energy,
            in_flight_at_end: self.in_flight_at_end,
            latency_histogram: self.latency_histogram.clone(),
            link_loads: self.link_loads.clone(),
        }
    }

    fn clone_from(&mut self, source: &Self) {
        self.cycles = source.cycles;
        self.packets_injected = source.packets_injected;
        self.packets_delivered = source.packets_delivered;
        self.flits_delivered = source.flits_delivered;
        self.latency_sum = source.latency_sum;
        self.max_latency = source.max_latency;
        self.wireless_flit_hops = source.wireless_flit_hops;
        self.wire_flit_hops = source.wire_flit_hops;
        self.adaptive_flit_hops = source.adaptive_flit_hops;
        self.energy = source.energy;
        self.in_flight_at_end = source.in_flight_at_end;
        self.latency_histogram.clone_from(&source.latency_histogram);
        self.link_loads.clone_from(&source.link_loads);
    }
}

impl StableHash for NetworkStats {
    /// Every field participates, with floating-point energies hashed by bit
    /// pattern, so two runs hash equal exactly when their observables are
    /// bit-identical.
    fn stable_hash(&self, h: &mut StableHasher) {
        self.cycles.stable_hash(h);
        self.packets_injected.stable_hash(h);
        self.packets_delivered.stable_hash(h);
        self.flits_delivered.stable_hash(h);
        self.latency_sum.stable_hash(h);
        self.max_latency.stable_hash(h);
        self.wireless_flit_hops.stable_hash(h);
        self.wire_flit_hops.stable_hash(h);
        self.adaptive_flit_hops.stable_hash(h);
        self.energy.switch_pj.stable_hash(h);
        self.energy.wire_pj.stable_hash(h);
        self.energy.wireless_pj.stable_hash(h);
        self.in_flight_at_end.stable_hash(h);
        self.latency_histogram.stable_hash(h);
        self.link_loads.stable_hash(h);
    }
}

impl NetworkStats {
    /// A 128-bit content digest of every observable field — the golden-hash
    /// fingerprint used to prove simulator optimisations preserve behaviour
    /// bit for bit.
    pub fn digest(&self) -> CacheKey {
        mapwave_harness::hash::stable_hash_of(self)
    }

    /// Mean packet latency in cycles (0 when nothing was delivered).
    pub fn avg_latency(&self) -> f64 {
        if self.packets_delivered == 0 {
            0.0
        } else {
            self.latency_sum as f64 / self.packets_delivered as f64
        }
    }

    /// Delivered throughput in packets/cycle.
    pub fn throughput(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.packets_delivered as f64 / self.cycles as f64
        }
    }

    /// Fraction of wire flit-hops that used an adaptive virtual channel.
    pub fn adaptive_share(&self) -> f64 {
        if self.wire_flit_hops == 0 {
            0.0
        } else {
            self.adaptive_flit_hops as f64 / self.wire_flit_hops as f64
        }
    }

    /// Fraction of flit-hops carried by wireless channels.
    pub fn wireless_utilization(&self) -> f64 {
        let total = self.wireless_flit_hops + self.wire_flit_hops;
        if total == 0 {
            0.0
        } else {
            self.wireless_flit_hops as f64 / total as f64
        }
    }

    /// Mean network energy per delivered flit (pJ).
    pub fn energy_per_flit_pj(&self) -> f64 {
        if self.flits_delivered == 0 {
            0.0
        } else {
            self.energy.total_pj() / self.flits_delivered as f64
        }
    }

    /// Network energy–delay product: total energy (pJ) × average latency
    /// (cycles). This is the metric of the paper's Section 7.2 network
    /// comparison (Fig. 6).
    pub fn network_edp(&self) -> f64 {
        self.energy.total_pj() * self.avg_latency()
    }

    /// Records one packet latency into the histogram.
    pub fn record_latency(&mut self, latency: u64) {
        if self.latency_histogram.len() != LATENCY_BUCKETS {
            self.latency_histogram = vec![0; LATENCY_BUCKETS];
        }
        let bucket = (64 - latency.max(1).leading_zeros() as usize - 1).min(LATENCY_BUCKETS - 1);
        self.latency_histogram[bucket] += 1;
    }

    /// An upper bound on the `q`-quantile packet latency (from the
    /// power-of-two histogram), or 0 when nothing was delivered.
    ///
    /// # Panics
    ///
    /// Panics unless `q ∈ [0, 1]`.
    pub fn latency_quantile_bound(&self, q: f64) -> u64 {
        assert!((0.0..=1.0).contains(&q), "quantile must be in [0,1]");
        let total: u64 = self.latency_histogram.iter().sum();
        if total == 0 {
            return 0;
        }
        let target = (q * total as f64).ceil() as u64;
        let mut seen = 0;
        for (k, &count) in self.latency_histogram.iter().enumerate() {
            seen += count;
            if seen >= target {
                return 1u64 << (k + 1);
            }
        }
        1u64 << LATENCY_BUCKETS
    }

    /// Merges several measurement windows into one aggregate: counts,
    /// energies and latency sums add; `cycles` takes the maximum (windows
    /// of the same length represent concurrent aspects, not concatenation);
    /// link loads merge per directed link.
    pub fn merged<'a, I: IntoIterator<Item = &'a NetworkStats>>(windows: I) -> NetworkStats {
        let mut out = NetworkStats::default();
        let mut links: std::collections::BTreeMap<(usize, usize), u64> =
            std::collections::BTreeMap::new();
        for w in windows {
            out.cycles = out.cycles.max(w.cycles);
            out.packets_injected += w.packets_injected;
            out.packets_delivered += w.packets_delivered;
            out.flits_delivered += w.flits_delivered;
            out.latency_sum += w.latency_sum;
            out.max_latency = out.max_latency.max(w.max_latency);
            out.wireless_flit_hops += w.wireless_flit_hops;
            out.wire_flit_hops += w.wire_flit_hops;
            out.adaptive_flit_hops += w.adaptive_flit_hops;
            out.energy.accumulate(w.energy);
            out.in_flight_at_end += w.in_flight_at_end;
            if out.latency_histogram.len() != LATENCY_BUCKETS {
                out.latency_histogram = vec![0; LATENCY_BUCKETS];
            }
            for (k, &c) in w.latency_histogram.iter().enumerate() {
                out.latency_histogram[k] += c;
            }
            for l in &w.link_loads {
                *links.entry((l.from.index(), l.to.index())).or_insert(0) += l.flits;
            }
        }
        out.link_loads = links
            .into_iter()
            .map(|((from, to), flits)| LinkLoad {
                from: NodeId(from),
                to: NodeId(to),
                flits,
            })
            .collect();
        out
    }

    /// The busiest directed wire link's load in flits/cycle (0 when no
    /// wire carried measured traffic).
    pub fn max_link_load(&self) -> f64 {
        if self.cycles == 0 {
            return 0.0;
        }
        self.link_loads
            .iter()
            .map(|l| l.flits as f64 / self.cycles as f64)
            .fold(0.0, f64::max)
    }

    /// Mean load over links that carried any measured traffic, flits/cycle.
    pub fn mean_link_load(&self) -> f64 {
        if self.cycles == 0 || self.link_loads.is_empty() {
            return 0.0;
        }
        let total: u64 = self.link_loads.iter().map(|l| l.flits).sum();
        total as f64 / self.cycles as f64 / self.link_loads.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> NetworkStats {
        NetworkStats {
            cycles: 1000,
            packets_injected: 110,
            packets_delivered: 100,
            flits_delivered: 400,
            latency_sum: 2500,
            max_latency: 90,
            wireless_flit_hops: 50,
            wire_flit_hops: 150,
            adaptive_flit_hops: 30,
            energy: EnergyBreakdown {
                switch_pj: 10.0,
                wire_pj: 20.0,
                wireless_pj: 10.0,
            },
            in_flight_at_end: 10,
            latency_histogram: vec![0; LATENCY_BUCKETS],
            link_loads: vec![
                LinkLoad {
                    from: NodeId(0),
                    to: NodeId(1),
                    flits: 100,
                },
                LinkLoad {
                    from: NodeId(1),
                    to: NodeId(2),
                    flits: 300,
                },
            ],
        }
    }

    #[test]
    fn avg_latency() {
        assert!((sample().avg_latency() - 25.0).abs() < 1e-12);
    }

    #[test]
    fn throughput() {
        assert!((sample().throughput() - 0.1).abs() < 1e-12);
    }

    #[test]
    fn wireless_utilization() {
        assert!((sample().wireless_utilization() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn adaptive_share() {
        assert!((sample().adaptive_share() - 0.2).abs() < 1e-12);
        assert_eq!(NetworkStats::default().adaptive_share(), 0.0);
    }

    #[test]
    fn energy_per_flit() {
        assert!((sample().energy_per_flit_pj() - 0.1).abs() < 1e-12);
    }

    #[test]
    fn edp_is_energy_times_latency() {
        assert!((sample().network_edp() - 40.0 * 25.0).abs() < 1e-9);
    }

    #[test]
    fn empty_stats_are_zero() {
        let s = NetworkStats::default();
        assert_eq!(s.avg_latency(), 0.0);
        assert_eq!(s.throughput(), 0.0);
        assert_eq!(s.wireless_utilization(), 0.0);
        assert_eq!(s.energy_per_flit_pj(), 0.0);
        assert_eq!(s.latency_quantile_bound(0.5), 0);
        assert_eq!(s.max_link_load(), 0.0);
        assert_eq!(s.mean_link_load(), 0.0);
    }

    #[test]
    fn latency_histogram_buckets() {
        let mut s = NetworkStats::default();
        s.record_latency(1); // bucket 0
        s.record_latency(3); // bucket 1
        s.record_latency(8); // bucket 3
        s.record_latency(u64::MAX); // clamped to the last bucket
        assert_eq!(s.latency_histogram[0], 1);
        assert_eq!(s.latency_histogram[1], 1);
        assert_eq!(s.latency_histogram[3], 1);
        assert_eq!(s.latency_histogram[LATENCY_BUCKETS - 1], 1);
    }

    #[test]
    fn latency_quantile_bound_is_monotone() {
        let mut s = NetworkStats::default();
        for l in [2u64, 4, 8, 16, 32, 64, 128] {
            s.record_latency(l);
        }
        let q50 = s.latency_quantile_bound(0.5);
        let q90 = s.latency_quantile_bound(0.9);
        let q100 = s.latency_quantile_bound(1.0);
        assert!(q50 <= q90 && q90 <= q100);
        assert!(q50 >= 8, "median bound {q50} too low");
    }

    #[test]
    fn link_load_statistics() {
        let s = sample();
        // Busiest link: 300 flits over 1000 cycles.
        assert!((s.max_link_load() - 0.3).abs() < 1e-12);
        assert!((s.mean_link_load() - 0.2).abs() < 1e-12);
    }
}

//! Packets and flits for the wormhole-switched network.
//!
//! Packets are serialised into 32-bit flits (the paper's flit width). The
//! head flit carries routing state; body and tail flits follow the wormhole
//! path reserved by the head.

use crate::node::NodeId;
use crate::routing::Phase;
use std::fmt;

/// Unique identifier of a packet within one simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct PacketId(pub u64);

impl fmt::Display for PacketId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

/// Position of a flit within its packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FlitKind {
    /// First flit; carries the route.
    Head,
    /// Middle flit.
    Body,
    /// Last flit; releases wormhole reservations.
    Tail,
    /// A single-flit packet (head and tail at once).
    HeadTail,
}

impl FlitKind {
    /// Whether this flit opens a wormhole (performs routing).
    pub fn is_head(self) -> bool {
        matches!(self, FlitKind::Head | FlitKind::HeadTail)
    }

    /// Whether this flit closes a wormhole (releases the output port).
    pub fn is_tail(self) -> bool {
        matches!(self, FlitKind::Tail | FlitKind::HeadTail)
    }
}

/// One flow-control unit in flight.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Flit {
    /// Owning packet.
    pub packet: PacketId,
    /// Role within the packet.
    pub kind: FlitKind,
    /// Source node of the packet.
    pub src: NodeId,
    /// Destination node of the packet.
    pub dest: NodeId,
    /// Routing phase carried by the head flit (updated per hop).
    pub phase: Phase,
    /// Cycle at which the packet was created (entered the source queue).
    pub created: u64,
    /// Earliest cycle at which this flit may move again (one hop per cycle).
    pub ready_at: u64,
    /// Whether the packet was diverted onto the wireline-only fallback tree
    /// after its wireless interface was disabled by the fault model; always
    /// `false` in fault-free simulations.
    pub wired_fallback: bool,
}

/// Builds the flit sequence for a packet of `len` flits.
///
/// # Panics
///
/// Panics if `len == 0`.
///
/// # Examples
///
/// ```
/// use mapwave_noc::flit::{flits_of, PacketId, FlitKind};
/// use mapwave_noc::NodeId;
///
/// let fs = flits_of(PacketId(1), NodeId(0), NodeId(5), 4, 100);
/// assert_eq!(fs.len(), 4);
/// assert_eq!(fs[0].kind, FlitKind::Head);
/// assert_eq!(fs[3].kind, FlitKind::Tail);
/// ```
pub fn flits_of(id: PacketId, src: NodeId, dest: NodeId, len: usize, now: u64) -> Vec<Flit> {
    flit_sequence(id, src, dest, len, now).collect()
}

/// Iterator form of [`flits_of`]: yields the flit sequence without
/// allocating a `Vec` (the simulator extends source queues from it
/// directly).
///
/// # Panics
///
/// Panics if `len == 0`.
pub fn flit_sequence(
    id: PacketId,
    src: NodeId,
    dest: NodeId,
    len: usize,
    now: u64,
) -> impl Iterator<Item = Flit> {
    assert!(len > 0, "a packet has at least one flit");
    (0..len).map(move |i| Flit {
        packet: id,
        kind: if len == 1 {
            FlitKind::HeadTail
        } else if i == 0 {
            FlitKind::Head
        } else if i == len - 1 {
            FlitKind::Tail
        } else {
            FlitKind::Body
        },
        src,
        dest,
        phase: Phase::Up,
        created: now,
        ready_at: now,
        wired_fallback: false,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_flit_packet_is_head_tail() {
        let fs = flits_of(PacketId(0), NodeId(1), NodeId(2), 1, 0);
        assert_eq!(fs.len(), 1);
        assert_eq!(fs[0].kind, FlitKind::HeadTail);
        assert!(fs[0].kind.is_head());
        assert!(fs[0].kind.is_tail());
    }

    #[test]
    fn multi_flit_roles() {
        let fs = flits_of(PacketId(0), NodeId(1), NodeId(2), 3, 7);
        assert_eq!(fs[0].kind, FlitKind::Head);
        assert_eq!(fs[1].kind, FlitKind::Body);
        assert_eq!(fs[2].kind, FlitKind::Tail);
        assert!(fs.iter().all(|f| f.created == 7));
        assert!(!fs[1].kind.is_head());
        assert!(!fs[0].kind.is_tail());
    }

    #[test]
    #[should_panic]
    fn zero_length_packet_panics() {
        let _ = flits_of(PacketId(0), NodeId(0), NodeId(1), 0, 0);
    }
}

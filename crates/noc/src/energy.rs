//! Network energy model.
//!
//! The paper obtains switch energy from synthesised 65-nm netlists
//! (Synopsys Prime Power), wire energy from HSPICE runs over the laid-out
//! wire lengths, and wireless transceiver energy from the mm-wave designs of
//! Deb et al. \[8\]. Here the same accounting is done parametrically, with
//! per-event energies calibrated to the 65-nm numbers those papers report:
//!
//! * a flit traversing a switch costs buffer write/read + arbitration +
//!   crossbar energy, growing with the switch radix;
//! * a flit traversing a wire costs energy proportional to the wire's
//!   physical (rectilinear) length;
//! * a flit transmitted over a mm-wave wireless channel costs a fixed
//!   transceiver energy, independent of distance — which is exactly why
//!   long-range shortcuts pay off energetically.

/// Per-event network energy parameters. All energies in picojoules per flit.
///
/// # Examples
///
/// ```
/// use mapwave_noc::energy::EnergyModel;
///
/// let m = EnergyModel::default_65nm();
/// // A 10 mm wire costs more than a wireless transmission...
/// assert!(m.wire_energy_pj(10.0) > m.wireless_energy_pj());
/// // ...but a 2.5 mm neighbour hop costs much less.
/// assert!(m.wire_energy_pj(2.5) < m.wireless_energy_pj());
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct EnergyModel {
    /// Radix-independent switch traversal energy (pJ/flit): buffering + control.
    pub switch_base_pj: f64,
    /// Additional switch energy per port of radix (pJ/flit): crossbar growth.
    pub switch_per_port_pj: f64,
    /// Wireline energy per millimetre (pJ/flit/mm).
    pub wire_pj_per_mm: f64,
    /// Wireless transceiver energy per flit (pJ), distance-independent.
    pub wireless_pj: f64,
}

impl EnergyModel {
    /// The 65-nm calibration used throughout the paper reproduction:
    /// 32-bit flits, TSMC 65 nm switch synthesis, mm-wave transceivers at
    /// ~2.3 pJ/bit \[8\].
    pub fn default_65nm() -> Self {
        EnergyModel {
            switch_base_pj: 45.0,    // buffer write/read + arbitration
            switch_per_port_pj: 3.0, // crossbar growth per port
            wire_pj_per_mm: 14.4,    // 0.45 pJ/bit/mm * 32 bits
            wireless_pj: 73.6,       // 2.3 pJ/bit * 32 bits
        }
    }

    /// Energy for one flit to traverse a switch of the given radix
    /// (port count including the local port).
    pub fn switch_energy_pj(&self, radix: usize) -> f64 {
        self.switch_base_pj + self.switch_per_port_pj * radix as f64
    }

    /// Energy for one flit to traverse a wire of `length_mm`.
    pub fn wire_energy_pj(&self, length_mm: f64) -> f64 {
        self.wire_pj_per_mm * length_mm
    }

    /// Energy for one flit over a wireless channel.
    pub fn wireless_energy_pj(&self) -> f64 {
        self.wireless_pj
    }
}

impl Default for EnergyModel {
    fn default() -> Self {
        EnergyModel::default_65nm()
    }
}

/// Accumulated network energy, split by component.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct EnergyBreakdown {
    /// Switch traversal energy (pJ).
    pub switch_pj: f64,
    /// Wireline energy (pJ).
    pub wire_pj: f64,
    /// Wireless transceiver energy (pJ).
    pub wireless_pj: f64,
}

impl EnergyBreakdown {
    /// Total network energy (pJ).
    pub fn total_pj(&self) -> f64 {
        self.switch_pj + self.wire_pj + self.wireless_pj
    }

    /// Adds another breakdown in place.
    pub fn accumulate(&mut self, other: EnergyBreakdown) {
        self.switch_pj += other.switch_pj;
        self.wire_pj += other.wire_pj;
        self.wireless_pj += other.wireless_pj;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn switch_energy_grows_with_radix() {
        let m = EnergyModel::default_65nm();
        assert!(m.switch_energy_pj(7) > m.switch_energy_pj(4));
    }

    #[test]
    fn wire_energy_linear_in_length() {
        let m = EnergyModel::default_65nm();
        let e1 = m.wire_energy_pj(1.0);
        let e4 = m.wire_energy_pj(4.0);
        assert!((e4 - 4.0 * e1).abs() < 1e-9);
    }

    #[test]
    fn wireless_beats_long_wires_only() {
        let m = EnergyModel::default_65nm();
        // Crossover around 5.1 mm for the default calibration.
        assert!(m.wire_energy_pj(2.5) < m.wireless_energy_pj());
        assert!(m.wire_energy_pj(7.5) > m.wireless_energy_pj());
    }

    #[test]
    fn breakdown_total_and_accumulate() {
        let mut a = EnergyBreakdown {
            switch_pj: 1.0,
            wire_pj: 2.0,
            wireless_pj: 3.0,
        };
        let b = EnergyBreakdown {
            switch_pj: 0.5,
            wire_pj: 0.5,
            wireless_pj: 0.5,
        };
        a.accumulate(b);
        assert!((a.total_pj() - 7.5).abs() < 1e-12);
    }

    #[test]
    fn default_is_65nm() {
        assert_eq!(EnergyModel::default(), EnergyModel::default_65nm());
    }
}

//! Histogram (HIST): per-channel colour frequency of a bitmap image.
//!
//! Input at scale 1 is the paper's "Medium (399 MB)" bitmap — ~133 M pixels
//! of 3 bytes. Each Map task scans a horizontal stripe and folds every
//! R/G/B byte into a 768-bin [`ArrayContainer`]; the key space is tiny, so
//! Reduce and Merge are short, while the long streaming Map and the
//! input-proportional library initialisation give Histogram its
//! homogeneous-with-master-bottleneck utilization profile (Fig. 2d).

use crate::apps::digest_u64s;
use crate::container::ArrayContainer;
use crate::task::TaskWork;
use crate::workload::{AppWorkload, IterationWorkload, MergeSpec};
use mapwave_harness::rng::StdRng;
use mapwave_harness::rng::{RngExt, SeedableRng};
use mapwave_manycore::cache::MemoryProfile;

/// Histogram bins: 256 per colour channel.
pub const BINS: usize = 768;
/// Input bytes at scale 1 (Table 1: Medium, 399 MB).
pub const INPUT_BYTES: f64 = 399e6;
/// Map tasks (image stripes).
pub const MAP_TASKS: usize = 384;
/// Reduce tasks.
pub const REDUCE_TASKS: usize = 64;

/// Cycles per pixel (3 byte loads + 3 increments).
const CYCLES_PER_PIXEL: f64 = 6.0;
/// Instructions per pixel.
const INSTR_PER_PIXEL: f64 = 9.0;
/// Library-init cycles per input byte (buffer allocation + mmap walk).
const LIB_INIT_CYCLES_PER_BYTE: f64 = 0.026;

/// Outcome of a real Histogram run.
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramRun {
    /// The recorded workload.
    pub workload: AppWorkload,
    /// The 768 final bin counts.
    pub bins: Vec<u64>,
    /// Pixels processed.
    pub pixels: u64,
}

/// Runs Histogram at `scale` of the Table-1 input.
///
/// # Panics
///
/// Panics if `scale` is not positive or `cores == 0`.
pub fn run(scale: f64, seed: u64, cores: usize) -> HistogramRun {
    assert!(scale > 0.0 && scale.is_finite(), "scale must be positive");
    assert!(cores > 0, "need at least one core");

    let pixels = ((INPUT_BYTES * scale / 3.0) as usize).max(MAP_TASKS * 16);
    let mut rng = StdRng::seed_from_u64(seed);

    let mut global: ArrayContainer<u64> = ArrayContainer::new(BINS);
    let mut map_tasks = Vec::with_capacity(MAP_TASKS);
    let per_task = pixels / MAP_TASKS;

    let remainder = pixels - per_task * MAP_TASKS;
    for stripe in 0..MAP_TASKS {
        // Spread the division remainder one pixel per leading stripe.
        let stripe_pixels = per_task + usize::from(stripe < remainder);
        let mut local: ArrayContainer<u64> = ArrayContainer::new(BINS);
        for _ in 0..stripe_pixels {
            // A synthetic pixel: channel bytes with different distributions
            // so the histogram has structure.
            let r = (rng.random::<f64>().powi(2) * 255.0) as usize;
            let g = (rng.random::<f64>() * 255.0) as usize;
            let b = 255 - (rng.random::<f64>().powi(2) * 255.0) as usize;
            local.emit(r, 1);
            local.emit(256 + g, 1);
            local.emit(512 + b, 1);
        }
        map_tasks.push(TaskWork::new(
            stripe_pixels as f64 * CYCLES_PER_PIXEL,
            stripe_pixels as f64 * INSTR_PER_PIXEL,
            BINS,
        ));
        global.merge(local);
    }

    // Reduce: combining 96 sub-histograms of 768 bins, bucketised.
    let items = (BINS * MAP_TASKS) as f64 / REDUCE_TASKS as f64;
    let reduce_tasks =
        vec![TaskWork::new(items * 6.0, items * 4.0, BINS / REDUCE_TASKS); REDUCE_TASKS];

    let digest = digest_u64s(global.slots().iter().copied());

    let workload = AppWorkload {
        name: "HIST",
        lib_init_cycles: INPUT_BYTES * scale * LIB_INIT_CYCLES_PER_BYTE,
        lib_init_instructions: INPUT_BYTES * scale * LIB_INIT_CYCLES_PER_BYTE * 0.6,
        iterations: vec![IterationWorkload {
            map_tasks,
            reduce_tasks,
            merge: Some(MergeSpec {
                total_items: BINS as f64,
                cycles_per_item: 6.0,
                instructions_per_item: 4.0,
                flits_per_item: 2.0,
            }),
            map_memory: MemoryProfile::new(20.0, 0.15, 0.9),
            reduce_memory: MemoryProfile::new(6.0, 0.05, 0.9),
            kv_flits_per_key: 1.0,
            neighbor_bias: 0.15,
        }],
        digest,
    };

    HistogramRun {
        workload,
        bins: global.into_slots(),
        pixels: pixels as u64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bins_conserve_pixels() {
        let r = run(0.0005, 1, 64);
        let total: u64 = r.bins.iter().sum();
        assert_eq!(total, r.pixels * 3, "every channel byte lands in a bin");
        assert_eq!(r.bins.len(), BINS);
    }

    #[test]
    fn channel_distributions_differ() {
        let r = run(0.001, 2, 64);
        // Red is skewed low, blue skewed high by construction.
        let red_low: u64 = r.bins[..64].iter().sum();
        let red_high: u64 = r.bins[192..256].iter().sum();
        assert!(red_low > red_high);
        let blue_low: u64 = r.bins[512..576].iter().sum();
        let blue_high: u64 = r.bins[704..768].iter().sum();
        assert!(blue_high > blue_low);
    }

    #[test]
    fn map_tasks_are_nearly_uniform() {
        let r = run(0.0005, 3, 64);
        let costs: Vec<f64> = r.workload.iterations[0]
            .map_tasks
            .iter()
            .map(|t| t.cycles)
            .collect();
        let max = costs.iter().cloned().fold(0.0, f64::max);
        let min = costs.iter().cloned().fold(f64::INFINITY, f64::min);
        assert!(max / min < 1.05, "stripes should be even: {min}..{max}");
    }

    #[test]
    fn lib_init_is_notable() {
        let r = run(0.001, 4, 64);
        let map_total: f64 = r.workload.iterations[0]
            .map_tasks
            .iter()
            .map(|t| t.cycles)
            .sum();
        let frac = r.workload.lib_init_cycles / (map_total / 64.0);
        assert!(
            frac > 0.5 && frac < 2.0,
            "lib init should rival one core's map share, got {frac}"
        );
    }

    #[test]
    fn deterministic() {
        assert_eq!(run(0.0005, 7, 64), run(0.0005, 7, 64));
    }
}

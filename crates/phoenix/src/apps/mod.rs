//! The six Phoenix++ applications of the paper's Table 1.
//!
//! Every application **really computes its result** over synthetically
//! generated input of the Table-1 size (scaled by a `scale` factor so tests
//! run in milliseconds and benchmarks at full size), while recording the
//! per-task work that the [`crate::runtime::Executor`] replays:
//!
//! | App | Input (scale = 1) | Iterations | Merge | Profile character |
//! |---|---|---|---|---|
//! | Histogram | 399 MB bitmap | 1 | yes | homogeneous + bottleneck |
//! | Kmeans | 512-dim vectors | 2 | small | strongly heterogeneous |
//! | Linear Regression | 100 MB points | 1 | no | flat, tiny lib-init |
//! | Matrix Multiplication | 999×999 | 1 | yes | homogeneous + bottleneck |
//! | PCA | 960×960 | 2 | long | homogeneous + strong bottleneck |
//! | Word Count | 100 MB text | 1 | yes | heterogeneous |

pub mod histogram;
pub mod kmeans;
pub mod linear_regression;
pub mod matrix_mult;
pub mod pca;
pub mod string_match;
pub mod word_count;

use crate::workload::AppWorkload;

/// The application set of the paper (alphabetical).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum App {
    /// Histogram (HIST).
    Histogram,
    /// Kmeans.
    Kmeans,
    /// Linear Regression (LR).
    LinearRegression,
    /// Matrix Multiplication (MM).
    MatrixMult,
    /// Principal Component Analysis (PCA).
    Pca,
    /// Word Count (WC).
    WordCount,
    /// String Match (SM) — an extension beyond the paper's evaluated set.
    StringMatch,
}

impl App {
    /// All six applications, in the paper's Table 1 order.
    pub const ALL: [App; 6] = [
        App::MatrixMult,
        App::Kmeans,
        App::Pca,
        App::Histogram,
        App::WordCount,
        App::LinearRegression,
    ];

    /// The paper's six plus the suite extensions supported by this model.
    pub const EXTENDED: [App; 7] = [
        App::MatrixMult,
        App::Kmeans,
        App::Pca,
        App::Histogram,
        App::WordCount,
        App::LinearRegression,
        App::StringMatch,
    ];

    /// Short name used in the paper's figures.
    pub fn name(self) -> &'static str {
        match self {
            App::Histogram => "HIST",
            App::Kmeans => "KMEANS",
            App::LinearRegression => "LR",
            App::MatrixMult => "MM",
            App::Pca => "PCA",
            App::WordCount => "WC",
            App::StringMatch => "SM",
        }
    }

    /// The Table-1 input description.
    pub fn input_description(self) -> &'static str {
        match self {
            App::Histogram => "Medium (399 MB)",
            App::Kmeans => "Vectors with dimension of 512",
            App::LinearRegression => "Medium (100 MB)",
            App::MatrixMult => "Matrix with dimension 999 x 999",
            App::Pca => "Matrix with dimension 960 x 960",
            App::WordCount => "Large (100 MB)",
            App::StringMatch => "Large (100 MB) [extension]",
        }
    }

    /// Number of MapReduce iterations (Kmeans and PCA run two).
    pub fn iterations(self) -> usize {
        match self {
            App::Kmeans | App::Pca => 2,
            _ => 1,
        }
    }

    /// Generates the input at `scale` (1.0 = Table-1 size), executes the
    /// real computation, and returns the recorded workload.
    ///
    /// # Panics
    ///
    /// Panics if `scale` is not positive and finite or `cores == 0`.
    pub fn workload(self, scale: f64, seed: u64, cores: usize) -> AppWorkload {
        assert!(
            scale > 0.0 && scale.is_finite(),
            "scale must be positive and finite"
        );
        assert!(cores > 0, "need at least one core");
        match self {
            App::Histogram => histogram::run(scale, seed, cores).workload,
            App::Kmeans => kmeans::run(scale, seed, cores).workload,
            App::LinearRegression => linear_regression::run(scale, seed, cores).workload,
            App::MatrixMult => matrix_mult::run(scale, seed, cores).workload,
            App::Pca => pca::run(scale, seed, cores).workload,
            App::WordCount => word_count::run(scale, seed, cores).workload,
            App::StringMatch => string_match::run(scale, seed, cores).workload,
        }
    }
}

impl std::fmt::Display for App {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// FNV-1a digest of a byte stream — the correctness witness carried in every
/// [`AppWorkload`].
pub fn fnv1a(bytes: impl IntoIterator<Item = u8>) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Digest helper for sequences of `u64` values.
pub fn digest_u64s(values: impl IntoIterator<Item = u64>) -> u64 {
    fnv1a(values.into_iter().flat_map(u64::to_le_bytes))
}

/// Digest helper for sequences of `f64` values (bit-exact).
pub fn digest_f64s(values: impl IntoIterator<Item = f64>) -> u64 {
    digest_u64s(values.into_iter().map(f64::to_bits))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_apps_listed_once() {
        assert_eq!(App::ALL.len(), 6);
        let names: std::collections::HashSet<_> = App::ALL.iter().map(|a| a.name()).collect();
        assert_eq!(names.len(), 6);
    }

    #[test]
    fn iteration_counts_match_paper() {
        assert_eq!(App::Kmeans.iterations(), 2);
        assert_eq!(App::Pca.iterations(), 2);
        assert_eq!(App::WordCount.iterations(), 1);
        assert_eq!(App::Histogram.iterations(), 1);
    }

    #[test]
    fn fnv_is_stable_and_sensitive() {
        let a = fnv1a([1, 2, 3]);
        let b = fnv1a([1, 2, 3]);
        let c = fnv1a([3, 2, 1]);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn digest_f64_bit_exact() {
        assert_eq!(digest_f64s([1.5, 2.5]), digest_f64s([1.5, 2.5]));
        assert_ne!(digest_f64s([1.5]), digest_f64s([1.5000001]));
    }

    #[test]
    fn every_app_builds_a_workload() {
        for app in App::EXTENDED {
            let w = app.workload(0.002, 7, 16);
            assert_eq!(w.iterations.len(), app.iterations(), "{app}");
            assert!(w.total_map_tasks() > 0, "{app}");
            assert!(w.total_compute_cycles() > 0.0, "{app}");
        }
    }

    #[test]
    fn workloads_are_deterministic() {
        for app in App::ALL {
            let a = app.workload(0.002, 11, 16);
            let b = app.workload(0.002, 11, 16);
            assert_eq!(a, b, "{app} must be deterministic");
        }
    }

    #[test]
    fn display_matches_name() {
        assert_eq!(App::WordCount.to_string(), "WC");
    }
}

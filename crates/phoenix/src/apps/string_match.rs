//! String Match (SM) — an **extension beyond the paper's six applications**.
//!
//! String Match is part of the Phoenix/Phoenix++ suite the paper draws
//! from (it scans a keyword file against an encrypted dictionary); the
//! DAC'15 evaluation does not include it, but supporting it demonstrates
//! that the workload model generalises past the evaluated set. The
//! implementation searches four fixed keys in a generated corpus: each Map
//! task scans a chunk, "encrypts" every word with the same toy hash
//! Phoenix uses, and emits a match flag per key — a pure streaming scan
//! with a tiny key space and **no Merge phase**, profile-wise close to
//! Linear Regression.

use crate::apps::digest_u64s;
use crate::task::TaskWork;
use crate::workload::{AppWorkload, IterationWorkload};
use mapwave_harness::rng::StdRng;
use mapwave_harness::rng::{RngExt, SeedableRng};
use mapwave_manycore::cache::MemoryProfile;

/// Input bytes at scale 1 (the Phoenix "large" string-match input).
pub const INPUT_BYTES: f64 = 100e6;
/// Mean bytes per word.
pub const BYTES_PER_WORD: f64 = 8.0;
/// Map tasks.
pub const MAP_TASKS: usize = 256;
/// The number of keys searched (Phoenix: 4 fixed keys).
pub const KEYS: usize = 4;

/// Cycles per scanned word (hash + 4 comparisons).
const CYCLES_PER_WORD: f64 = 14.0;
/// Instructions per scanned word.
const INSTR_PER_WORD: f64 = 12.0;

/// The toy word hash of the original Phoenix string-match kernel.
fn phoenix_hash(word: u64) -> u64 {
    let mut h = word;
    h ^= h >> 33;
    h = h.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
    h ^= h >> 33;
    h
}

/// Outcome of a real String Match run.
#[derive(Debug, Clone, PartialEq)]
pub struct StringMatchRun {
    /// The recorded workload.
    pub workload: AppWorkload,
    /// Matches found per key.
    pub matches: [u64; KEYS],
    /// Words scanned.
    pub words: u64,
}

/// Runs String Match at `scale` of the nominal input.
///
/// # Panics
///
/// Panics if `scale` is not positive or `cores == 0`.
pub fn run(scale: f64, seed: u64, cores: usize) -> StringMatchRun {
    assert!(scale > 0.0 && scale.is_finite(), "scale must be positive");
    assert!(cores > 0, "need at least one core");

    let words = ((INPUT_BYTES * scale / BYTES_PER_WORD) as usize).max(MAP_TASKS * 16);
    let mut rng = StdRng::seed_from_u64(seed);

    // The four searched keys are drawn from the same distribution as the
    // corpus, pre-hashed exactly once like Phoenix does.
    let vocab = 4096u64;
    let keys: [u64; KEYS] = [7, 99, 1024, 4000].map(|k| phoenix_hash(k % vocab));

    let mut matches = [0u64; KEYS];
    let mut map_tasks = Vec::with_capacity(MAP_TASKS);
    for t in 0..MAP_TASKS {
        let start = t * words / MAP_TASKS;
        let end = (t + 1) * words / MAP_TASKS;
        for _ in start..end {
            let word = rng.random_range(0..vocab);
            let h = phoenix_hash(word);
            for (k, &key) in keys.iter().enumerate() {
                if h == key {
                    matches[k] += 1;
                }
            }
        }
        let chunk = (end - start) as f64;
        map_tasks.push(TaskWork::new(
            chunk * CYCLES_PER_WORD,
            chunk * INSTR_PER_WORD,
            KEYS,
        ));
    }

    let digest = digest_u64s(matches.iter().copied().chain([words as u64]));
    let map_total: f64 = map_tasks.iter().map(|t| t.cycles).sum();

    let workload = AppWorkload {
        name: "SM",
        lib_init_cycles: map_total / cores as f64 * 0.02,
        lib_init_instructions: map_total / cores as f64 * 0.012,
        iterations: vec![IterationWorkload {
            map_tasks,
            reduce_tasks: vec![TaskWork::new(
                (MAP_TASKS * KEYS) as f64 * 5.0,
                (MAP_TASKS * KEYS) as f64 * 3.5,
                KEYS,
            )],
            merge: None,
            map_memory: MemoryProfile::new(24.0, 0.10, 0.9),
            reduce_memory: MemoryProfile::new(4.0, 0.02, 0.5),
            kv_flits_per_key: 2.0,
            neighbor_bias: 0.6,
        }],
        digest,
    };

    StringMatchRun {
        workload,
        matches,
        words: words as u64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn match_counts_are_plausible() {
        let r = run(0.01, 1, 64);
        // Uniform corpus over 4096 words: each key matches ~words/4096 times.
        let expected = r.words as f64 / 4096.0;
        for (k, &m) in r.matches.iter().enumerate() {
            assert!(
                (m as f64) > expected * 0.5 && (m as f64) < expected * 1.5,
                "key {k}: {m} matches vs expected ~{expected:.0}"
            );
        }
    }

    #[test]
    fn reference_scan_agrees() {
        // Recompute matches directly with the same RNG stream.
        let r = run(0.001, 9, 16);
        let mut rng = StdRng::seed_from_u64(9);
        let keys: [u64; KEYS] = [7, 99, 1024, 4000].map(|k| phoenix_hash(k % 4096));
        let mut matches = [0u64; KEYS];
        for _ in 0..r.words {
            let h = phoenix_hash(rng.random_range(0..4096));
            for (k, &key) in keys.iter().enumerate() {
                if h == key {
                    matches[k] += 1;
                }
            }
        }
        assert_eq!(matches, r.matches);
    }

    #[test]
    fn profile_is_lr_like() {
        let r = run(0.001, 2, 64);
        let it = &r.workload.iterations[0];
        assert!(it.merge.is_none());
        assert_eq!(it.reduce_tasks.len(), 1);
        assert!(it.map_memory.l1_mpki >= 20.0);
        assert!(r.workload.lib_init_cycles > 0.0);
    }

    #[test]
    fn deterministic() {
        assert_eq!(run(0.001, 5, 64), run(0.001, 5, 64));
    }
}

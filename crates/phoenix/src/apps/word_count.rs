//! Word Count (WC): count the occurrences of every unique word in a text.
//!
//! Input at scale 1 is the paper's "Large (100 MB)" corpus, generated as a
//! Zipf-distributed stream over a 20 000-word vocabulary — the natural-text
//! statistics that make Word Count's key space large and its chunk costs
//! uneven. Following the paper's Section 4.3 case study, the Map phase is
//! split into exactly 100 tasks whose sizes vary around the mean, which is
//! what produces the overlapping per-core task-duration ranges (and the
//! motivation for the VFI-aware steal cap).

use crate::apps::digest_u64s;
use crate::container::HashContainer;
use crate::task::TaskWork;
use crate::workload::{AppWorkload, IterationWorkload, MergeSpec};
use mapwave_harness::rng::StdRng;
use mapwave_harness::rng::{RngExt, SeedableRng};
use mapwave_manycore::cache::MemoryProfile;

/// Vocabulary size of the generated corpus.
pub const VOCABULARY: usize = 12_000;
/// Zipf exponent of word frequencies.
pub const ZIPF_S: f64 = 1.05;
/// Mean bytes per word (word + separator).
pub const BYTES_PER_WORD: f64 = 7.0;
/// Corpus bytes at scale 1 (Table 1: Large, 100 MB).
pub const INPUT_BYTES: f64 = 100e6;
/// Map tasks created by the Phoenix scheduler for this input (Section 4.3).
pub const MAP_TASKS: usize = 100;
/// Reduce tasks (hash buckets).
pub const REDUCE_TASKS: usize = 256;

/// Modelled compute cycles per processed word (tokenise + hash + combine).
const CYCLES_PER_WORD: f64 = 26.0;
/// Committed instructions per processed word.
const INSTR_PER_WORD: f64 = 20.0;
/// Cycles per key in the Reduce combine step.
const REDUCE_CYCLES_PER_KEY: f64 = 20.0;
/// Cycles per key in each Merge level.
const MERGE_CYCLES_PER_KEY: f64 = 12.0;

/// Outcome of a real Word Count run.
#[derive(Debug, Clone, PartialEq)]
pub struct WordCountRun {
    /// The recorded workload.
    pub workload: AppWorkload,
    /// Total words processed.
    pub total_words: u64,
    /// Distinct words observed.
    pub distinct_words: usize,
    /// The most frequent word id and its count.
    pub top_word: (u32, u64),
}

/// Samples a Zipf-distributed word id using a precomputed CDF.
fn sample_word(cdf: &[f64], rng: &mut StdRng) -> u32 {
    let x = rng.random::<f64>() * cdf.last().copied().unwrap_or(1.0);
    cdf.partition_point(|&c| c <= x).min(cdf.len() - 1) as u32
}

/// Runs Word Count at `scale` of the Table-1 input.
///
/// # Panics
///
/// Panics if `scale` is not positive or `cores == 0`.
pub fn run(scale: f64, seed: u64, cores: usize) -> WordCountRun {
    assert!(scale > 0.0 && scale.is_finite(), "scale must be positive");
    assert!(cores > 0, "need at least one core");

    let total_words = ((INPUT_BYTES * scale / BYTES_PER_WORD) as usize).max(MAP_TASKS * 20);

    // Zipf CDF over the vocabulary.
    let mut cdf = Vec::with_capacity(VOCABULARY);
    let mut acc = 0.0;
    for k in 1..=VOCABULARY {
        acc += 1.0 / (k as f64).powf(ZIPF_S);
        cdf.push(acc);
    }

    let mut rng = StdRng::seed_from_u64(seed);

    // Uneven chunking: each of the 100 tasks covers a slice whose size
    // varies ±40% (file splits land on document boundaries, not bytes, and
    // documents differ wildly) — the source of Word Count's heterogeneous
    // utilization profile.
    let weights: Vec<f64> = (0..MAP_TASKS)
        .map(|_| 0.6 + 0.8 * rng.random::<f64>())
        .collect();
    let weight_sum: f64 = weights.iter().sum();

    let mut global: HashContainer<u32, u64> = HashContainer::new();
    let mut map_tasks = Vec::with_capacity(MAP_TASKS);
    let mut partial_keys_total = 0usize;
    let mut counted_words = 0u64;

    for w in &weights {
        let chunk_words = ((total_words as f64) * w / weight_sum).round() as usize;
        let mut local: HashContainer<u32, u64> = HashContainer::new();
        for _ in 0..chunk_words {
            local.emit(sample_word(&cdf, &mut rng), 1);
        }
        counted_words += chunk_words as u64;
        partial_keys_total += local.len();
        map_tasks.push(TaskWork::new(
            chunk_words as f64 * CYCLES_PER_WORD,
            chunk_words as f64 * INSTR_PER_WORD,
            local.len(),
        ));
        global.merge(local);
    }

    let distinct = global.len();
    let (top_id, top_count) = global
        .iter()
        .map(|(&k, &v)| (k, v))
        .max_by_key(|&(k, v)| (v, u32::MAX - k))
        .expect("corpus is nonempty");

    // Reduce: every bucket combines the per-mapper partial containers.
    let items_per_bucket = partial_keys_total as f64 / REDUCE_TASKS as f64;
    let reduce_tasks = vec![
        TaskWork::new(
            items_per_bucket * REDUCE_CYCLES_PER_KEY,
            items_per_bucket * REDUCE_CYCLES_PER_KEY * 0.7,
            distinct / REDUCE_TASKS,
        );
        REDUCE_TASKS
    ];

    let digest = digest_u64s([counted_words, distinct as u64, top_id as u64, top_count]);

    let map_total: f64 = map_tasks.iter().map(|t| t.cycles).sum();
    let workload = AppWorkload {
        name: "WC",
        // A modest master-core share: WC's utilization heterogeneity comes
        // from its chunk variance, not from library initialisation
        // (Section 4.2 groups WC with Kmeans, not with PCA/HIST/MM).
        lib_init_cycles: map_total / 64.0 * 0.15,
        lib_init_instructions: map_total / 64.0 * 0.10,
        iterations: vec![IterationWorkload {
            map_tasks,
            reduce_tasks,
            merge: Some(MergeSpec {
                total_items: distinct as f64,
                cycles_per_item: MERGE_CYCLES_PER_KEY,
                instructions_per_item: MERGE_CYCLES_PER_KEY * 0.7,
                flits_per_item: 4.0,
            }),
            map_memory: MemoryProfile::new(16.0, 0.08, 0.9),
            reduce_memory: MemoryProfile::new(10.0, 0.05, 0.9),
            kv_flits_per_key: 2.0,
            neighbor_bias: 0.10,
        }],
        digest,
    };

    WordCountRun {
        workload,
        total_words: counted_words,
        distinct_words: distinct,
        top_word: (top_id, top_count),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_every_word() {
        let r = run(0.001, 1, 64);
        // Totals are conserved: the global container sums to the word count.
        assert!(r.total_words >= 2000);
        assert!(r.distinct_words > 100);
        assert!(r.top_word.1 > 0);
    }

    #[test]
    fn zipf_head_dominates() {
        let r = run(0.002, 2, 64);
        // Word 0 is the Zipf head and must be (one of) the most frequent.
        assert_eq!(r.top_word.0, 0, "Zipf head should win at this size");
        // The head word is far above the mean frequency.
        let mean = r.total_words as f64 / r.distinct_words as f64;
        assert!(r.top_word.1 as f64 > 5.0 * mean);
    }

    #[test]
    fn hundred_map_tasks() {
        let r = run(0.001, 3, 64);
        assert_eq!(r.workload.iterations[0].map_tasks.len(), MAP_TASKS);
        assert_eq!(r.workload.iterations[0].reduce_tasks.len(), REDUCE_TASKS);
    }

    #[test]
    fn chunk_costs_vary() {
        let r = run(0.001, 4, 64);
        let costs: Vec<f64> = r.workload.iterations[0]
            .map_tasks
            .iter()
            .map(|t| t.cycles)
            .collect();
        let max = costs.iter().cloned().fold(0.0, f64::max);
        let min = costs.iter().cloned().fold(f64::INFINITY, f64::min);
        assert!(max / min > 1.4, "chunk variance too small: {min}..{max}");
        assert!(max / min < 3.0, "chunk variance too large: {min}..{max}");
    }

    #[test]
    fn scale_grows_work_linearly() {
        let small = run(0.001, 5, 64);
        let large = run(0.002, 5, 64);
        let ratio = large.total_words as f64 / small.total_words as f64;
        assert!((ratio - 2.0).abs() < 0.1, "ratio {ratio}");
    }

    #[test]
    fn deterministic() {
        assert_eq!(run(0.001, 9, 64), run(0.001, 9, 64));
        assert_ne!(
            run(0.001, 9, 64).digest_of(),
            run(0.001, 10, 64).digest_of()
        );
    }

    impl WordCountRun {
        fn digest_of(&self) -> u64 {
            self.workload.digest
        }
    }

    #[test]
    fn keys_emitted_are_real_container_sizes() {
        let r = run(0.001, 6, 64);
        for t in &r.workload.iterations[0].map_tasks {
            assert!(t.keys_emitted > 0);
            assert!(t.keys_emitted <= VOCABULARY);
        }
    }
}

//! Linear Regression (LR): least-squares fit over a point stream.
//!
//! Input at scale 1 is the paper's "Medium (100 MB)" point file
//! (12.5 M `(x, y)` pairs). Map computes the five partial sums
//! `Σx, Σy, Σx², Σy², Σxy` per chunk; Reduce combines them and the final
//! slope/intercept fall out in closed form. There is **no Merge phase** and
//! the library initialisation is negligible, which is why LR needs no
//! bottleneck V/F reassignment (Section 4.2). Its pure streaming Map gives
//! it the highest traffic injection rate of the six applications, with a
//! strongly neighbour-local pattern — the reason WiNoC gains the least for
//! it (Section 7.3).

use crate::apps::digest_f64s;
use crate::task::TaskWork;
use crate::workload::{AppWorkload, IterationWorkload};
use mapwave_harness::rng::StdRng;
use mapwave_harness::rng::{RngExt, SeedableRng};
use mapwave_manycore::cache::MemoryProfile;

/// Input bytes at scale 1 (Table 1: Medium, 100 MB).
pub const INPUT_BYTES: f64 = 100e6;
/// Bytes per point (two 32-bit fixed-point coordinates).
pub const BYTES_PER_POINT: f64 = 8.0;
/// Map tasks.
pub const MAP_TASKS: usize = 384;

/// Ground-truth slope of the generated data.
pub const TRUE_SLOPE: f64 = 2.4;
/// Ground-truth intercept of the generated data.
pub const TRUE_INTERCEPT: f64 = -7.0;
/// Noise amplitude.
const NOISE: f64 = 3.0;

/// Cycles per point (loads + 5 multiply-accumulates).
const CYCLES_PER_POINT: f64 = 8.0;
/// Instructions per point.
const INSTR_PER_POINT: f64 = 11.0;

/// The five partial sums of least squares.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
struct Sums {
    n: f64,
    sx: f64,
    sy: f64,
    sxx: f64,
    sxy: f64,
}

impl Sums {
    fn add(&mut self, x: f64, y: f64) {
        self.n += 1.0;
        self.sx += x;
        self.sy += y;
        self.sxx += x * x;
        self.sxy += x * y;
    }

    fn combine(&mut self, o: Sums) {
        self.n += o.n;
        self.sx += o.sx;
        self.sy += o.sy;
        self.sxx += o.sxx;
        self.sxy += o.sxy;
    }
}

/// Outcome of a real Linear Regression run.
#[derive(Debug, Clone, PartialEq)]
pub struct LinearRegressionRun {
    /// The recorded workload.
    pub workload: AppWorkload,
    /// Fitted slope.
    pub slope: f64,
    /// Fitted intercept.
    pub intercept: f64,
    /// Points processed.
    pub points: u64,
}

/// Runs Linear Regression at `scale` of the Table-1 input.
///
/// # Panics
///
/// Panics if `scale` is not positive or `cores == 0`.
pub fn run(scale: f64, seed: u64, cores: usize) -> LinearRegressionRun {
    assert!(scale > 0.0 && scale.is_finite(), "scale must be positive");
    assert!(cores > 0, "need at least one core");

    let points = ((INPUT_BYTES * scale / BYTES_PER_POINT) as usize).max(MAP_TASKS * 32);
    let mut rng = StdRng::seed_from_u64(seed);

    let per_task = points / MAP_TASKS;
    let mut global = Sums::default();
    let mut map_tasks = Vec::with_capacity(MAP_TASKS);

    for chunk in 0..MAP_TASKS {
        let chunk_points = if chunk == MAP_TASKS - 1 {
            points - per_task * (MAP_TASKS - 1)
        } else {
            per_task
        };
        let mut local = Sums::default();
        for _ in 0..chunk_points {
            let x = rng.random::<f64>() * 100.0;
            let noise = (rng.random::<f64>() - 0.5) * 2.0 * NOISE;
            let y = TRUE_SLOPE * x + TRUE_INTERCEPT + noise;
            local.add(x, y);
        }
        map_tasks.push(TaskWork::new(
            chunk_points as f64 * CYCLES_PER_POINT,
            chunk_points as f64 * INSTR_PER_POINT,
            5,
        ));
        global.combine(local);
    }

    let slope = (global.n * global.sxy - global.sx * global.sy)
        / (global.n * global.sxx - global.sx * global.sx);
    let intercept = (global.sy - slope * global.sx) / global.n;

    let digest = digest_f64s([global.n, global.sx, global.sy, global.sxx, global.sxy]);

    let map_total: f64 = map_tasks.iter().map(|t| t.cycles).sum();
    let workload = AppWorkload {
        name: "LR",
        // LR "has very little library initialization period" (Section 4.2).
        lib_init_cycles: map_total / cores as f64 * 0.01,
        lib_init_instructions: map_total / cores as f64 * 0.006,
        iterations: vec![IterationWorkload {
            map_tasks,
            // A single trivial reduce combining 96 × 5 scalars.
            reduce_tasks: vec![TaskWork::new(
                (MAP_TASKS * 5) as f64 * 6.0,
                (MAP_TASKS * 5) as f64 * 4.0,
                5,
            )],
            merge: None,
            // The highest injection rate of the set: pure streaming.
            map_memory: MemoryProfile::new(30.0, 0.12, 0.85),
            reduce_memory: MemoryProfile::new(4.0, 0.02, 0.5),
            kv_flits_per_key: 4.0,
            // "Exchanges large data units with nearer cores" (Section 7.3).
            neighbor_bias: 0.8,
        }],
        digest,
    };

    LinearRegressionRun {
        workload,
        slope,
        intercept,
        points: points as u64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recovers_ground_truth() {
        let r = run(0.002, 1, 64);
        assert!(
            (r.slope - TRUE_SLOPE).abs() < 0.05,
            "slope {} vs {}",
            r.slope,
            TRUE_SLOPE
        );
        assert!(
            (r.intercept - TRUE_INTERCEPT).abs() < 1.0,
            "intercept {} vs {}",
            r.intercept,
            TRUE_INTERCEPT
        );
    }

    #[test]
    fn no_merge_and_tiny_lib_init() {
        let r = run(0.001, 2, 64);
        assert!(r.workload.iterations[0].merge.is_none());
        let map_total: f64 = r.workload.iterations[0]
            .map_tasks
            .iter()
            .map(|t| t.cycles)
            .sum();
        assert!(r.workload.lib_init_cycles < map_total / 64.0 * 0.05);
    }

    #[test]
    fn highest_streaming_intensity() {
        let r = run(0.001, 3, 64);
        assert!(r.workload.iterations[0].map_memory.l1_mpki >= 30.0);
        assert!(r.workload.iterations[0].neighbor_bias >= 0.7);
    }

    #[test]
    fn single_reduce_task() {
        let r = run(0.001, 4, 64);
        assert_eq!(r.workload.iterations[0].reduce_tasks.len(), 1);
    }

    #[test]
    fn deterministic() {
        assert_eq!(run(0.001, 5, 64), run(0.001, 5, 64));
    }

    #[test]
    fn work_scales_linearly() {
        let small = run(0.001, 6, 64);
        let large = run(0.003, 6, 64);
        let ratio = large.points as f64 / small.points as f64;
        assert!((ratio - 3.0).abs() < 0.1);
    }
}

//! Matrix Multiplication (MM): `C = A × B` over row-block Map tasks.
//!
//! Input at scale 1 is the paper's 999×999 matrix pair (the dimension
//! scales as the cube root of `scale` so total work stays proportional).
//! Each Map task computes a block of output rows — a real floating-point
//! multiply over synthetic matrices. The compute-bound Map over identical
//! blocks gives MM its homogeneous utilization; the matrix set-up in
//! library initialisation plus a Merge phase (assembling the output tiles)
//! create the master-core bottleneck of Fig. 2c.

use crate::apps::digest_f64s;
use crate::task::TaskWork;
use crate::workload::{AppWorkload, IterationWorkload, MergeSpec};
use mapwave_harness::rng::StdRng;
use mapwave_harness::rng::{RngExt, SeedableRng};
use mapwave_manycore::cache::MemoryProfile;

/// Matrix dimension at scale 1 (Table 1).
pub const DIM: usize = 999;
/// Map tasks (row blocks).
pub const MAP_TASKS: usize = 192;
/// Reduce tasks (output tile bookkeeping).
pub const REDUCE_TASKS: usize = 64;

/// Cycles per multiply-accumulate.
const CYCLES_PER_MAC: f64 = 1.0;
/// Instructions per multiply-accumulate (load/load/fma/loop).
const INSTR_PER_MAC: f64 = 1.6;

/// Outcome of a real Matrix Multiplication run.
#[derive(Debug, Clone, PartialEq)]
pub struct MatrixMultRun {
    /// The recorded workload.
    pub workload: AppWorkload,
    /// Dimension actually used (scaled).
    pub dim: usize,
    /// Frobenius norm of the product (correctness witness).
    pub frobenius: f64,
}

/// Dimension used at a given scale (cube-root scaling keeps work linear).
pub fn scaled_dim(scale: f64) -> usize {
    ((DIM as f64) * scale.cbrt()).round().max(24.0) as usize
}

/// Runs Matrix Multiplication at `scale` of the Table-1 input.
///
/// # Panics
///
/// Panics if `scale` is not positive or `cores == 0`.
pub fn run(scale: f64, seed: u64, cores: usize) -> MatrixMultRun {
    assert!(scale > 0.0 && scale.is_finite(), "scale must be positive");
    assert!(cores > 0, "need at least one core");

    let dim = scaled_dim(scale);
    let mut rng = StdRng::seed_from_u64(seed);

    let a: Vec<f64> = (0..dim * dim).map(|_| rng.random::<f64>() - 0.5).collect();
    let b: Vec<f64> = (0..dim * dim).map(|_| rng.random::<f64>() - 0.5).collect();

    let tasks = MAP_TASKS.min(dim);
    let mut map_tasks = Vec::with_capacity(tasks);
    let mut frob = 0.0f64;
    let mut row_digests = Vec::with_capacity(dim);

    for t in 0..tasks {
        // Balanced row ranges: every block gets ⌊dim/tasks⌋ or ⌈dim/tasks⌉.
        let row_start = t * dim / tasks;
        let row_end = (t + 1) * dim / tasks;
        let rows = row_end - row_start;
        // The real multiply for this block.
        for i in row_start..row_end {
            let mut row_sum = 0.0;
            for j in 0..dim {
                let mut acc = 0.0;
                for (k, &aik) in a[i * dim..(i + 1) * dim].iter().enumerate() {
                    acc += aik * b[k * dim + j];
                }
                frob += acc * acc;
                row_sum += acc;
            }
            row_digests.push(row_sum);
        }
        let macs = (rows * dim * dim) as f64;
        map_tasks.push(TaskWork::new(
            macs * CYCLES_PER_MAC,
            macs * INSTR_PER_MAC,
            rows,
        ));
    }

    let frobenius = frob.sqrt();
    let digest = digest_f64s(row_digests.into_iter().chain([frobenius]));

    let map_total: f64 = map_tasks.iter().map(|t| t.cycles).sum();
    // Output-assembly reduce: touch each C tile once.
    let tile_items = (dim * dim) as f64 / REDUCE_TASKS as f64;
    let reduce_tasks =
        vec![
            TaskWork::new(tile_items * 1.5, tile_items * 1.2, dim / REDUCE_TASKS + 1);
            REDUCE_TASKS
        ];

    let workload = AppWorkload {
        name: "MM",
        // Matrix allocation, transposition of B for locality, task layout:
        // proportional to one core's share of the multiply.
        lib_init_cycles: map_total / cores as f64 * 0.45,
        lib_init_instructions: map_total / cores as f64 * 0.30,
        iterations: vec![IterationWorkload {
            map_tasks,
            reduce_tasks,
            merge: Some(MergeSpec {
                total_items: dim as f64,
                cycles_per_item: 60.0,
                instructions_per_item: 42.0,
                flits_per_item: 8.0,
            }),
            map_memory: MemoryProfile::new(7.0, 0.10, 0.9),
            reduce_memory: MemoryProfile::new(8.0, 0.08, 0.9),
            kv_flits_per_key: 16.0,
            neighbor_bias: 0.2,
        }],
        digest,
    };

    MatrixMultRun {
        workload,
        dim,
        frobenius,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reference: naive multiply of tiny matrices must match the digest
    /// path's Frobenius norm.
    #[test]
    fn matches_naive_reference() {
        let r = run(1e-6, 42, 4); // dim clamps to 24
        assert_eq!(r.dim, 24);
        let mut rng = StdRng::seed_from_u64(42);
        let a: Vec<f64> = (0..24 * 24).map(|_| rng.random::<f64>() - 0.5).collect();
        let b: Vec<f64> = (0..24 * 24).map(|_| rng.random::<f64>() - 0.5).collect();
        let mut frob = 0.0;
        for i in 0..24 {
            for j in 0..24 {
                let mut acc = 0.0;
                for k in 0..24 {
                    acc += a[i * 24 + k] * b[k * 24 + j];
                }
                frob += acc * acc;
            }
        }
        assert!((r.frobenius - frob.sqrt()).abs() < 1e-9);
    }

    #[test]
    fn dim_scaling_is_cubic_root() {
        assert_eq!(scaled_dim(1.0), DIM);
        let half_work = scaled_dim(0.5);
        assert!((half_work as f64 - 999.0 * 0.5f64.cbrt()).abs() < 1.0);
    }

    #[test]
    fn blocks_are_homogeneous() {
        let r = run(0.0002, 1, 64);
        let costs: Vec<f64> = r.workload.iterations[0]
            .map_tasks
            .iter()
            .map(|t| t.cycles)
            .collect();
        let max = costs.iter().cloned().fold(0.0, f64::max);
        let min = costs.iter().cloned().fold(f64::INFINITY, f64::min);
        assert!(max / min < 2.01, "row blocks nearly even: {min}..{max}");
    }

    #[test]
    fn has_merge_and_notable_lib_init() {
        let r = run(0.0002, 2, 64);
        assert!(r.workload.iterations[0].merge.is_some());
        assert!(r.workload.lib_init_cycles > 0.0);
    }

    #[test]
    fn deterministic() {
        assert_eq!(run(0.0002, 3, 64), run(0.0002, 3, 64));
    }
}

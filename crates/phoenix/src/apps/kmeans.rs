//! Kmeans: iterative clustering of high-dimensional vectors.
//!
//! Input at scale 1 is the paper's Table-1 dataset: 512-dimensional vectors
//! (16 384 of them at full scale), drawn from 16 well-separated synthetic
//! blobs. The paper's dataset converges in **two MapReduce iterations**;
//! each iteration runs the full Fig. 1 stage list.
//!
//! Kmeans is the set's heterogeneity extreme (Fig. 2a): in the second
//! iteration the partitioning has mostly converged, so the scheduler
//! creates fewer, cheaper, unevenly-sized tasks (converged points pass a
//! cached-bound early-exit test instead of the full K×D distance scan) and
//! the Reduce phase occupies only K cores. About half the cores therefore
//! sit well below the average utilization, which is what lets VFI clock
//! half the chip at 1.5 GHz (Table 2) for big EDP wins.

use crate::apps::digest_f64s;
use crate::task::TaskWork;
use crate::workload::{AppWorkload, IterationWorkload, MergeSpec};
use mapwave_harness::rng::StdRng;
use mapwave_harness::rng::{RngExt, SeedableRng};
use mapwave_manycore::cache::MemoryProfile;

/// Vector dimensionality (Table 1).
pub const DIM: usize = 512;
/// Cluster count.
pub const K: usize = 16;
/// Points at scale 1.
pub const POINTS: usize = 16_384;
/// Map tasks in the first iteration.
pub const MAP_TASKS_ITER1: usize = 100;
/// Map tasks in the second iteration (converged partitions fuse chunks).
pub const MAP_TASKS_ITER2: usize = 40;

/// Cycles per multiply-accumulate in a distance computation.
const CYCLES_PER_MAC: f64 = 0.6;
/// Instructions per MAC.
const INSTR_PER_MAC: f64 = 2.2;
/// Early-exit check cost for a converged point, in MAC-equivalents
/// (one distance to the cached centroid instead of K).
const CONVERGED_FACTOR: f64 = 1.0 / K as f64;

/// Outcome of a real Kmeans run.
#[derive(Debug, Clone, PartialEq)]
pub struct KmeansRun {
    /// The recorded workload.
    pub workload: AppWorkload,
    /// Final centroids (flattened K × DIM).
    pub centroids: Vec<f64>,
    /// Points whose assignment changed in iteration 2.
    pub changed_in_iter2: usize,
    /// Points processed.
    pub points: usize,
}

fn nearest(point: &[f64], centroids: &[Vec<f64>]) -> usize {
    let mut best = 0;
    let mut best_d = f64::INFINITY;
    for (c, centroid) in centroids.iter().enumerate() {
        let mut d = 0.0;
        for (p, q) in point.iter().zip(centroid) {
            d += (p - q) * (p - q);
        }
        if d < best_d {
            best_d = d;
            best = c;
        }
    }
    best
}

/// Runs Kmeans at `scale` of the Table-1 input.
///
/// # Panics
///
/// Panics if `scale` is not positive or `cores == 0`.
pub fn run(scale: f64, seed: u64, cores: usize) -> KmeansRun {
    assert!(scale > 0.0 && scale.is_finite(), "scale must be positive");
    assert!(cores > 0, "need at least one core");

    let n = ((POINTS as f64 * scale) as usize).max(MAP_TASKS_ITER1 * 4);
    let mut rng = StdRng::seed_from_u64(seed);

    // Ground-truth blob centres, spread apart; initial centroids perturbed.
    let truth: Vec<Vec<f64>> = (0..K)
        .map(|c| {
            (0..DIM)
                .map(|d| ((c * 37 + d * 13) % 100) as f64 + rng.random::<f64>())
                .collect()
        })
        .collect();
    let points: Vec<(usize, Vec<f64>)> = (0..n)
        .map(|_| {
            let c = rng.random_range(0..K);
            let p = truth[c]
                .iter()
                .map(|&t| t + (rng.random::<f64>() - 0.5) * 4.0)
                .collect();
            (c, p)
        })
        .collect();
    let mut centroids: Vec<Vec<f64>> = truth
        .iter()
        .map(|t| {
            t.iter()
                .map(|&v| v + (rng.random::<f64>() - 0.5) * 6.0)
                .collect()
        })
        .collect();

    // --- Iteration 1: full assignment ---
    let mut assignment = vec![0usize; n];
    let mut iter1_tasks = Vec::with_capacity(MAP_TASKS_ITER1);
    let mut sums = vec![vec![0.0f64; DIM]; K];
    let mut counts = [0usize; K];
    for t in 0..MAP_TASKS_ITER1 {
        let start = t * n / MAP_TASKS_ITER1;
        let end = (t + 1) * n / MAP_TASKS_ITER1;
        for i in start..end {
            let c = nearest(&points[i].1, &centroids);
            assignment[i] = c;
            counts[c] += 1;
            for (s, v) in sums[c].iter_mut().zip(&points[i].1) {
                *s += v;
            }
        }
        let macs = ((end - start) * K * DIM) as f64;
        iter1_tasks.push(TaskWork::new(
            macs * CYCLES_PER_MAC,
            macs * INSTR_PER_MAC,
            K,
        ));
    }
    for c in 0..K {
        if counts[c] > 0 {
            for s in &mut sums[c] {
                *s /= counts[c] as f64;
            }
            centroids[c] = sums[c].clone();
        }
    }

    // --- Iteration 2: converged points take the early exit ---
    let mut iter2_tasks = Vec::with_capacity(MAP_TASKS_ITER2);
    let mut changed_total = 0usize;
    for t in 0..MAP_TASKS_ITER2 {
        let start = t * n / MAP_TASKS_ITER2;
        let end = (t + 1) * n / MAP_TASKS_ITER2;
        let mut changed = 0usize;
        for i in start..end {
            let c = nearest(&points[i].1, &centroids);
            if c != assignment[i] {
                changed += 1;
                assignment[i] = c;
            }
        }
        changed_total += changed;
        let full = changed as f64 * (K * DIM) as f64;
        let cheap = (end - start - changed) as f64 * (K * DIM) as f64 * CONVERGED_FACTOR;
        let macs = full + cheap;
        iter2_tasks.push(TaskWork::new(
            macs * CYCLES_PER_MAC,
            macs * INSTR_PER_MAC,
            K,
        ));
    }

    let digest = digest_f64s(centroids.iter().flatten().copied());

    let reduce = |tasks: usize| {
        vec![
            TaskWork::new(
                (n / K) as f64 * DIM as f64 * 0.3,
                (n / K) as f64 * DIM as f64 * 0.2,
                1,
            );
            tasks
        ]
    };
    let memory = MemoryProfile::new(16.0, 0.35, 0.9);
    let reduce_memory = MemoryProfile::new(8.0, 0.05, 0.9);
    let merge = Some(MergeSpec {
        total_items: (K * DIM) as f64,
        cycles_per_item: 2.0,
        instructions_per_item: 1.5,
        flits_per_item: 2.0,
    });
    let map1_total: f64 = iter1_tasks.iter().map(|t| t.cycles).sum();

    let workload = AppWorkload {
        name: "KMEANS",
        lib_init_cycles: map1_total / cores as f64 * 0.08,
        lib_init_instructions: map1_total / cores as f64 * 0.05,
        iterations: vec![
            IterationWorkload {
                map_tasks: iter1_tasks,
                reduce_tasks: reduce(K),
                merge,
                map_memory: memory,
                reduce_memory,
                kv_flits_per_key: 24.0, // a K-partial is a combined DIM-vector fragment
                neighbor_bias: 0.1,
            },
            IterationWorkload {
                map_tasks: iter2_tasks,
                reduce_tasks: reduce(K),
                merge,
                map_memory: memory,
                reduce_memory,
                kv_flits_per_key: 24.0,
                neighbor_bias: 0.1,
            },
        ],
        digest,
    };

    KmeansRun {
        workload,
        centroids: centroids.into_iter().flatten().collect(),
        changed_in_iter2: changed_total,
        points: n,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn converges_to_blob_centres() {
        let r = run(0.05, 1, 64);
        // Few points change assignment in iteration 2: blobs are separated.
        assert!(
            (r.changed_in_iter2 as f64) < 0.05 * r.points as f64,
            "too many changes: {}/{}",
            r.changed_in_iter2,
            r.points
        );
        assert_eq!(r.centroids.len(), K * DIM);
    }

    #[test]
    fn two_iterations_with_fewer_second_stage_tasks() {
        let r = run(0.02, 2, 64);
        assert_eq!(r.workload.iterations.len(), 2);
        assert_eq!(r.workload.iterations[0].map_tasks.len(), MAP_TASKS_ITER1);
        assert_eq!(r.workload.iterations[1].map_tasks.len(), MAP_TASKS_ITER2);
    }

    #[test]
    fn second_iteration_is_much_cheaper() {
        let r = run(0.02, 3, 64);
        let c1: f64 = r.workload.iterations[0]
            .map_tasks
            .iter()
            .map(|t| t.cycles)
            .sum();
        let c2: f64 = r.workload.iterations[1]
            .map_tasks
            .iter()
            .map(|t| t.cycles)
            .sum();
        assert!(
            c2 < 0.4 * c1,
            "converged iteration should be cheap: {c2} vs {c1}"
        );
    }

    #[test]
    fn reduce_uses_only_k_tasks() {
        let r = run(0.02, 4, 64);
        assert_eq!(r.workload.iterations[0].reduce_tasks.len(), K);
    }

    #[test]
    fn deterministic() {
        assert_eq!(run(0.02, 5, 64), run(0.02, 5, 64));
    }
}

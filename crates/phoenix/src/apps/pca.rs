//! Principal Component Analysis (PCA): mean and covariance of a matrix.
//!
//! Input at scale 1 is the paper's 960×960 matrix. Phoenix++ PCA runs **two
//! MapReduce iterations**: the first computes per-row means, the second the
//! covariance matrix. The covariance iteration emits a large key space
//! (matrix coordinates), which makes PCA's **Merge phase the longest of the
//! six applications**; combined with a heavy library initialisation this
//! produces the strongest bottleneck-core effect (Fig. 5: the highest
//! bottleneck-to-average utilization ratio), and therefore the biggest
//! benefit from the VFI 2 reassignment (Fig. 4).

use crate::apps::digest_f64s;
use crate::task::TaskWork;
use crate::workload::{AppWorkload, IterationWorkload, MergeSpec};
use mapwave_harness::rng::StdRng;
use mapwave_harness::rng::{RngExt, SeedableRng};
use mapwave_manycore::cache::MemoryProfile;

/// Matrix dimension at scale 1 (Table 1).
pub const DIM: usize = 960;
/// Map tasks of the mean iteration.
pub const MEAN_TASKS: usize = 128;
/// Map tasks of the covariance iteration.
pub const COV_TASKS: usize = 192;

/// Cycles per multiply-accumulate.
const CYCLES_PER_MAC: f64 = 1.1;
/// Instructions per MAC.
const INSTR_PER_MAC: f64 = 1.7;

/// Outcome of a real PCA run.
#[derive(Debug, Clone, PartialEq)]
pub struct PcaRun {
    /// The recorded workload.
    pub workload: AppWorkload,
    /// Dimension actually used (scaled).
    pub dim: usize,
    /// Per-row means.
    pub means: Vec<f64>,
    /// Trace of the covariance matrix (correctness witness).
    pub covariance_trace: f64,
}

/// Dimension used at a given scale.
pub fn scaled_dim(scale: f64) -> usize {
    ((DIM as f64) * scale.cbrt()).round().max(48.0) as usize
}

/// Runs PCA at `scale` of the Table-1 input.
///
/// # Panics
///
/// Panics if `scale` is not positive or `cores == 0`.
pub fn run(scale: f64, seed: u64, cores: usize) -> PcaRun {
    assert!(scale > 0.0 && scale.is_finite(), "scale must be positive");
    assert!(cores > 0, "need at least one core");

    let n = scaled_dim(scale);
    let mut rng = StdRng::seed_from_u64(seed);
    // Rows are observations, columns variables; inject correlation so the
    // covariance has structure.
    let base: Vec<f64> = (0..n).map(|_| rng.random::<f64>()).collect();
    let matrix: Vec<f64> = (0..n * n)
        .map(|idx| {
            let (i, j) = (idx / n, idx % n);
            base[j] * ((i % 7) as f64 + 1.0) * 0.1 + rng.random::<f64>()
        })
        .collect();

    // --- Iteration 1: per-row means ---
    let mean_tasks_n = MEAN_TASKS.min(n);
    let mut means = vec![0.0f64; n];
    let mut iter1_tasks = Vec::with_capacity(mean_tasks_n);
    for t in 0..mean_tasks_n {
        let start = t * n / mean_tasks_n;
        let end = (t + 1) * n / mean_tasks_n;
        for i in start..end {
            means[i] = matrix[i * n..(i + 1) * n].iter().sum::<f64>() / n as f64;
        }
        let ops = ((end - start) * n) as f64;
        iter1_tasks.push(TaskWork::new(
            ops * CYCLES_PER_MAC,
            ops * INSTR_PER_MAC,
            end - start,
        ));
    }

    // --- Iteration 2: covariance (upper triangle) ---
    let cov_tasks_n = COV_TASKS.min(n);
    let mut iter2_tasks = Vec::with_capacity(cov_tasks_n);
    let mut trace = 0.0f64;
    let mut diag_digest = Vec::with_capacity(n);
    for t in 0..cov_tasks_n {
        let start = t * n / cov_tasks_n;
        let end = (t + 1) * n / cov_tasks_n;
        let mut macs = 0.0f64;
        let mut entries = 0usize;
        for i in start..end {
            for j in i..n {
                let mut acc = 0.0;
                for k in 0..n {
                    acc += (matrix[i * n + k] - means[i]) * (matrix[j * n + k] - means[j]);
                }
                let cov = acc / (n as f64 - 1.0);
                if i == j {
                    trace += cov;
                    diag_digest.push(cov);
                }
                entries += 1;
                macs += n as f64;
            }
        }
        iter2_tasks.push(TaskWork::new(
            macs * CYCLES_PER_MAC,
            macs * INSTR_PER_MAC,
            entries,
        ));
    }

    let digest = digest_f64s(means.iter().copied().chain(diag_digest).chain([trace]));

    let cov_total: f64 = iter2_tasks.iter().map(|t| t.cycles).sum();
    let cov_entries = (n * (n + 1) / 2) as f64;
    let memory = MemoryProfile::new(12.0, 0.08, 0.9);
    let reduce_memory = MemoryProfile::new(7.0, 0.05, 0.9);

    let workload = AppWorkload {
        name: "PCA",
        // PCA's library initialisation is the heaviest of the set: matrix
        // staging plus key-storage allocation for the covariance key space.
        lib_init_cycles: cov_total / cores as f64 * 0.35,
        lib_init_instructions: cov_total / cores as f64 * 0.22,
        iterations: vec![
            IterationWorkload {
                map_tasks: iter1_tasks,
                reduce_tasks: vec![TaskWork::new(n as f64 * 3.0, n as f64 * 2.0, 1); 32.min(n)],
                merge: Some(MergeSpec {
                    total_items: n as f64,
                    cycles_per_item: 3.0,
                    instructions_per_item: 2.0,
                    flits_per_item: 2.0,
                }),
                map_memory: memory,
                reduce_memory,
                kv_flits_per_key: 2.0,
                neighbor_bias: 0.15,
            },
            IterationWorkload {
                map_tasks: iter2_tasks,
                reduce_tasks: vec![
                    TaskWork::new(
                        cov_entries / 64.0 * 4.0,
                        cov_entries / 64.0 * 3.0,
                        (cov_entries / 64.0) as usize,
                    );
                    64
                ],
                // The long merge: the covariance key space is the largest
                // intermediate state of the six applications.
                merge: Some(MergeSpec {
                    total_items: cov_entries,
                    cycles_per_item: 1.2,
                    instructions_per_item: 0.8,
                    flits_per_item: 2.0,
                }),
                map_memory: memory,
                reduce_memory,
                kv_flits_per_key: 2.0,
                neighbor_bias: 0.15,
            },
        ],
        digest,
    };

    PcaRun {
        workload,
        dim: n,
        means,
        covariance_trace: trace,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn means_are_correct() {
        let r = run(1e-6, 1, 64); // dim clamps to 48
        assert_eq!(r.dim, 48);
        // Spot-check one mean against a direct recomputation.
        let mut rng = StdRng::seed_from_u64(1);
        let base: Vec<f64> = (0..48).map(|_| rng.random::<f64>()).collect();
        let matrix: Vec<f64> = (0..48 * 48)
            .map(|idx| {
                let (i, j) = (idx / 48, idx % 48);
                base[j] * ((i % 7) as f64 + 1.0) * 0.1 + rng.random::<f64>()
            })
            .collect();
        let m0: f64 = matrix[..48].iter().sum::<f64>() / 48.0;
        assert!((r.means[0] - m0).abs() < 1e-12);
    }

    #[test]
    fn covariance_trace_is_positive() {
        // Variances are nonnegative, so the trace must be positive.
        let r = run(1e-6, 2, 64);
        assert!(r.covariance_trace > 0.0);
    }

    #[test]
    fn two_iterations_cov_dominates() {
        let r = run(1e-6, 3, 64);
        let c1: f64 = r.workload.iterations[0]
            .map_tasks
            .iter()
            .map(|t| t.cycles)
            .sum();
        let c2: f64 = r.workload.iterations[1]
            .map_tasks
            .iter()
            .map(|t| t.cycles)
            .sum();
        assert!(c2 > 5.0 * c1, "covariance must dominate: {c2} vs {c1}");
    }

    #[test]
    fn merge_is_the_longest_of_the_set() {
        let r = run(1e-6, 4, 64);
        let m = r.workload.iterations[1].merge.expect("cov merge exists");
        assert!(m.total_items as usize == r.dim * (r.dim + 1) / 2);
    }

    #[test]
    fn heavy_lib_init() {
        let r = run(1e-6, 5, 64);
        assert!(r.workload.lib_init_cycles > 0.0);
        let c2: f64 = r.workload.iterations[1]
            .map_tasks
            .iter()
            .map(|t| t.cycles)
            .sum();
        let frac = r.workload.lib_init_cycles / (c2 / 64.0);
        assert!((0.3..0.7).contains(&frac), "lib-init fraction {frac}");
    }

    #[test]
    fn deterministic() {
        assert_eq!(run(1e-6, 6, 64), run(1e-6, 6, 64));
    }
}

//! The pre-optimization phase scheduler, kept verbatim as the equivalence
//! baseline for the reworked execution-model kernels.
//!
//! [`Executor::run_traced_reference`] is the scheduler as it stood before
//! the indexed steal structure, span elision and scratch reuse landed:
//! O(cores) victim scans via `max_by_key`, a full idle-core rescan after
//! every completion, per-phase heap allocations and span tuples collected
//! even for untraced runs. `crates/phoenix/tests/equivalence.rs` pins the
//! optimized scheduler against this implementation bit for bit
//! (`ExecutionReport`, `Timeline`, `TrafficMatrix`), and the `phoenix_run`
//! micro-bench times the two back to back, so keep this file frozen: any
//! behavioural change here silently redefines the baseline.

use super::{Executor, PhaseKind, Span, Timeline};
use crate::stealing::caps_for_phase;
use crate::task::TaskWork;
use crate::workload::{AppWorkload, ExecutionReport, PhaseBreakdown, PhaseTraffic};
use mapwave_harness::telemetry;
use mapwave_manycore::cache::MemoryProfile;
use mapwave_manycore::event::EventQueue;
use mapwave_noc::{NodeId, TrafficMatrix};
use std::collections::VecDeque;

/// Outcome of scheduling one task-parallel phase (reference layout, with
/// span tuples materialised unconditionally).
#[derive(Debug, Clone)]
struct PhaseOutcome {
    duration: f64,
    executed_by: Vec<usize>,
    steals: u64,
    /// Busy spans as `(core, start, end, stolen)` in phase-local time.
    spans: Vec<(usize, f64, f64, bool)>,
}

impl Executor {
    /// [`Executor::run`] as implemented before the execution-model kernel
    /// rework. Kept only as the equivalence/benchmark baseline.
    pub fn run_reference(&self, workload: &AppWorkload) -> ExecutionReport {
        self.run_traced_reference(workload).0
    }

    /// [`Executor::run_traced`] as implemented before the execution-model
    /// kernel rework. Kept only as the equivalence/benchmark baseline.
    pub fn run_traced_reference(&self, workload: &AppWorkload) -> (ExecutionReport, Timeline) {
        let _span = telemetry::span_labeled("phoenix.exec", workload.name);
        let n = self.cfg.cores;
        let lat = self.cfg.remote_l2_latency;
        let mut phases = PhaseBreakdown::default();
        let mut busy = vec![0.0f64; n];
        let mut map_flits = vec![0.0f64; n * n];
        let mut reduce_flits = vec![0.0f64; n * n];
        let mut merge_flits = vec![0.0f64; n * n];
        let mut steals = 0u64;
        let mut tasks_per_core = vec![0u32; n];
        let mut timeline = Timeline::new(n);
        let mut clock = 0.0f64;

        for it in &workload.iterations {
            // --- Library init (serial, on the master core) ---
            let master = self.cfg.master_core;
            let li_task =
                TaskWork::new(workload.lib_init_cycles, workload.lib_init_instructions, 0);
            let li = self.task_duration(&li_task, &it.map_memory, master, lat.lib_init);
            busy[master] += li;
            phases.lib_init += li;
            timeline.push(Span {
                core: master,
                phase: PhaseKind::LibraryInit,
                start: clock,
                end: clock + li,
                stolen: false,
            });
            clock += li;

            // --- Map ---
            let map = self.run_phase_reference(&it.map_tasks, &it.map_memory, lat.map);
            phases.map += map.duration;
            for &(core, start, end, stolen) in &map.spans {
                timeline.push(Span {
                    core,
                    phase: PhaseKind::Map,
                    start: clock + start,
                    end: clock + end,
                    stolen,
                });
            }
            clock += map.duration;
            for (t, &c) in map.executed_by.iter().enumerate() {
                let dur = self.task_duration(&it.map_tasks[t], &it.map_memory, c, lat.map);
                busy[c] += dur;
                tasks_per_core[c] += 1;
            }
            steals += map.steals;
            self.account_memory_flits_reference(
                &mut map_flits,
                &it.map_tasks,
                &map.executed_by,
                &it.map_memory,
                it.neighbor_bias,
            );

            // --- Reduce ---
            let red = self.run_phase_reference(&it.reduce_tasks, &it.reduce_memory, lat.reduce);
            phases.reduce += red.duration;
            for &(core, start, end, stolen) in &red.spans {
                timeline.push(Span {
                    core,
                    phase: PhaseKind::Reduce,
                    start: clock + start,
                    end: clock + end,
                    stolen,
                });
            }
            clock += red.duration;
            for (t, &c) in red.executed_by.iter().enumerate() {
                let dur = self.task_duration(&it.reduce_tasks[t], &it.reduce_memory, c, lat.reduce);
                busy[c] += dur;
                tasks_per_core[c] += 1;
            }
            steals += red.steals;
            self.account_memory_flits_reference(
                &mut reduce_flits,
                &it.reduce_tasks,
                &red.executed_by,
                &it.reduce_memory,
                it.neighbor_bias,
            );

            // --- Shuffle traffic: map cores → reduce cores, keys spread
            //     uniformly over buckets by hashing. ---
            if !it.reduce_tasks.is_empty() {
                let r = it.reduce_tasks.len() as f64;
                for (t, &c_m) in map.executed_by.iter().enumerate() {
                    let keys = it.map_tasks[t].keys_emitted as f64;
                    if keys == 0.0 {
                        continue;
                    }
                    let per_bucket = keys * it.kv_flits_per_key / r / 2.0;
                    for (b, &c_r) in red.executed_by.iter().enumerate() {
                        let _ = b;
                        if c_m != c_r {
                            map_flits[c_m * n + c_r] += per_bucket;
                            reduce_flits[c_m * n + c_r] += per_bucket;
                        }
                    }
                }
            }

            // --- Merge: binary tree, active threads halve per level. ---
            if let Some(merge) = it.merge {
                let levels = (n as f64).log2().ceil() as u32;
                for l in 0..levels {
                    let stride = 1usize << (l + 1);
                    let half = 1usize << l;
                    let partition_items = merge.total_items * (1usize << l) as f64 / n as f64;
                    let merged_items = 2.0 * partition_items;
                    let mtask = TaskWork::new(
                        merged_items * merge.cycles_per_item,
                        merged_items * merge.instructions_per_item,
                        0,
                    );
                    let mut level_time = 0.0f64;
                    let mut merger = 0usize;
                    while merger < n {
                        let partner = merger + half;
                        if partner < n {
                            let dur =
                                self.task_duration(&mtask, &it.reduce_memory, merger, lat.merge);
                            busy[merger] += dur;
                            timeline.push(Span {
                                core: merger,
                                phase: PhaseKind::Merge,
                                start: clock,
                                end: clock + dur,
                                stolen: false,
                            });
                            level_time = level_time.max(dur);
                            // Partner ships its partition to the merger.
                            merge_flits[partner * n + merger] +=
                                partition_items * merge.flits_per_item;
                        }
                        merger += stride;
                    }
                    phases.merge += level_time;
                    clock += level_time;
                }
            }
        }

        let total = phases.total().max(1e-9);
        let utilization: Vec<f64> = busy.iter().map(|&b| (b / total).min(1.0)).collect();

        let packet_flits = 4.0; // matches the NoC simulator's default packet length
        let to_matrix = |flits: &[f64], cycles: f64| -> TrafficMatrix {
            let mut m = TrafficMatrix::zeros(n);
            if cycles <= 0.0 {
                return m;
            }
            for s in 0..n {
                for d in 0..n {
                    if s != d && flits[s * n + d] > 0.0 {
                        m.set(
                            NodeId(s),
                            NodeId(d),
                            flits[s * n + d] / packet_flits / cycles,
                        );
                    }
                }
            }
            m
        };
        let total_flits: Vec<f64> = (0..n * n)
            .map(|i| map_flits[i] + reduce_flits[i] + merge_flits[i])
            .collect();
        let traffic = to_matrix(&total_flits, total);
        let phase_traffic = PhaseTraffic {
            map: to_matrix(&map_flits, phases.map),
            reduce: to_matrix(&reduce_flits, phases.reduce),
            merge: to_matrix(&merge_flits, phases.merge),
        };

        telemetry::count(
            "phoenix.tasks_executed",
            tasks_per_core.iter().map(|&t| u64::from(t)).sum(),
        );
        telemetry::count("phoenix.tasks_stolen", steals);
        (
            ExecutionReport {
                name: workload.name,
                phases,
                busy_cycles: busy,
                utilization,
                traffic,
                phase_traffic,
                steals,
                tasks_per_core,
            },
            timeline,
        )
    }

    /// Reference memory-traffic accounting: per-task neighbour list
    /// allocation and per-destination re-multiplication.
    fn account_memory_flits_reference(
        &self,
        flits: &mut [f64],
        tasks: &[TaskWork],
        executed_by: &[usize],
        memory: &MemoryProfile,
        neighbor_bias: f64,
    ) {
        let n = self.cfg.cores;
        if n < 2 {
            return;
        }
        let line_flits = self.cfg.cache.line_flits() as f64;
        const NEIGHBORHOOD: isize = 4;
        for (t, &c) in executed_by.iter().enumerate() {
            let accesses = tasks[t].instructions
                * (memory.l1_mpki / 1000.0)
                * memory.remote_fraction
                * self.cfg.cache.network_fraction;
            if accesses <= 0.0 {
                continue;
            }
            let req = accesses; // 1 flit per request
            let rep = accesses * line_flits;
            // Neighbour share: split over up to 2*NEIGHBORHOOD nearby cores.
            let mut neighbors: Vec<usize> = Vec::new();
            for off in 1..=NEIGHBORHOOD {
                let lo = c as isize - off;
                let hi = c as isize + off;
                if lo >= 0 {
                    neighbors.push(lo as usize);
                }
                if (hi as usize) < n {
                    neighbors.push(hi as usize);
                }
            }
            if !neighbors.is_empty() {
                let share = neighbor_bias / neighbors.len() as f64;
                for &d in &neighbors {
                    flits[c * n + d] += req * share;
                    flits[d * n + c] += rep * share;
                }
            }
            let uniform = (1.0 - neighbor_bias) / (n - 1) as f64;
            for d in 0..n {
                if d != c {
                    flits[c * n + d] += req * uniform;
                    flits[d * n + c] += rep * uniform;
                }
            }
        }
    }

    /// Reference event-driven scheduling: O(cores) steal-victim scan and a
    /// full idle-core rescan after every completion.
    fn run_phase_reference(
        &self,
        tasks: &[TaskWork],
        memory: &MemoryProfile,
        latency: f64,
    ) -> PhaseOutcome {
        let n = self.cfg.cores;
        let mut executed_by = vec![usize::MAX; tasks.len()];
        if tasks.is_empty() {
            return PhaseOutcome {
                duration: 0.0,
                executed_by,
                steals: 0,
                spans: Vec::new(),
            };
        }

        // Round-robin initial assignment (Phoenix chunk distribution).
        let mut queues: Vec<VecDeque<usize>> = vec![VecDeque::new(); n];
        for t in 0..tasks.len() {
            queues[t % n].push_back(t);
        }
        let mut caps = caps_for_phase(self.cfg.steal_policy, tasks.len(), &self.cfg.core_speeds);
        let mut done = vec![0usize; n];
        let mut queued = tasks.len();
        let mut steals = 0u64;
        let mut phase_end = 0.0f64;
        let mut spans: Vec<(usize, f64, f64, bool)> = Vec::with_capacity(tasks.len());

        #[derive(Debug, Clone, Copy)]
        struct Completion {
            core: usize,
        }

        let mut events: EventQueue<Completion> = EventQueue::new();
        let mut idle: Vec<bool> = vec![false; n];

        // Pick the next task for `core`: own queue first, else steal from
        // the most-loaded victim. Returns (task, stolen).
        let next_task = |queues: &mut Vec<VecDeque<usize>>, core: usize| -> Option<(usize, bool)> {
            if let Some(t) = queues[core].pop_front() {
                return Some((t, false));
            }
            let victim = (0..queues.len())
                .filter(|&v| v != core && !queues[v].is_empty())
                .max_by_key(|&v| (queues[v].len(), usize::MAX - v));
            victim.map(|v| (queues[v].pop_back().expect("victim queue nonempty"), true))
        };

        // Start as many cores as possible at t = 0.
        let start_core = |core: usize,
                          now: f64,
                          queues: &mut Vec<VecDeque<usize>>,
                          events: &mut EventQueue<Completion>,
                          executed_by: &mut Vec<usize>,
                          done: &mut Vec<usize>,
                          queued: &mut usize,
                          steals: &mut u64,
                          idle: &mut Vec<bool>,
                          caps: &[usize],
                          spans: &mut Vec<(usize, f64, f64, bool)>| {
            if done[core] >= caps[core] {
                idle[core] = true;
                return;
            }
            match next_task(queues, core) {
                Some((t, stolen)) => {
                    let mut dur = self.task_duration(&tasks[t], memory, core, latency);
                    if stolen {
                        dur += self.cfg.steal_overhead_cycles / self.cfg.core_speeds[core];
                        *steals += 1;
                    }
                    executed_by[t] = core;
                    done[core] += 1;
                    *queued -= 1;
                    events.push(now + dur, Completion { core });
                    spans.push((core, now, now + dur, stolen));
                    idle[core] = false;
                }
                None => {
                    idle[core] = true;
                }
            }
        };

        for core in 0..n {
            start_core(
                core,
                0.0,
                &mut queues,
                &mut events,
                &mut executed_by,
                &mut done,
                &mut queued,
                &mut steals,
                &mut idle,
                &caps,
                &mut spans,
            );
        }

        loop {
            while let Some((now, ev)) = events.pop() {
                phase_end = phase_end.max(now);
                // The finishing core tries to pick up more work.
                start_core(
                    ev.core,
                    now,
                    &mut queues,
                    &mut events,
                    &mut executed_by,
                    &mut done,
                    &mut queued,
                    &mut steals,
                    &mut idle,
                    &caps,
                    &mut spans,
                );
                // Any idle core may now find stealable work (e.g. a capped
                // core's leftovers became the only queue with tasks).
                if queued > 0 {
                    for core in 0..n {
                        if idle[core] && done[core] < caps[core] {
                            start_core(
                                core,
                                now,
                                &mut queues,
                                &mut events,
                                &mut executed_by,
                                &mut done,
                                &mut queued,
                                &mut steals,
                                &mut idle,
                                &caps,
                                &mut spans,
                            );
                        }
                    }
                }
            }
            if queued == 0 {
                break;
            }
            // Every core hit its cap while tasks remain (possible only when
            // no core runs at f_max): lift the caps and resume.
            caps.fill(usize::MAX);
            for core in 0..n {
                start_core(
                    core,
                    phase_end,
                    &mut queues,
                    &mut events,
                    &mut executed_by,
                    &mut done,
                    &mut queued,
                    &mut steals,
                    &mut idle,
                    &caps,
                    &mut spans,
                );
            }
        }

        debug_assert!(executed_by.iter().all(|&c| c != usize::MAX));
        PhaseOutcome {
            duration: phase_end,
            executed_by,
            steals,
            spans,
        }
    }
}

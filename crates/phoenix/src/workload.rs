//! Workload descriptions and execution reports.
//!
//! Running an application produces an [`AppWorkload`]: the measured cost of
//! every task of every MapReduce iteration, plus the memory behaviour of
//! each phase. The [`crate::runtime::Executor`] replays a workload on a
//! modelled platform (frequencies, steal policy, network latency) and
//! produces an [`ExecutionReport`] — per-phase times, per-core utilization
//! and the inter-core traffic matrix, i.e. exactly the observables the paper
//! extracts from GEM5.

use crate::task::TaskWork;
use mapwave_manycore::cache::MemoryProfile;
use mapwave_noc::TrafficMatrix;

/// The merge tree of one iteration (paper Fig. 1: log-depth sub-stages with
/// halving thread counts).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MergeSpec {
    /// Items (typically unique keys) each merge step processes.
    pub total_items: f64,
    /// Compute cycles per merged item.
    pub cycles_per_item: f64,
    /// Instructions per merged item.
    pub instructions_per_item: f64,
    /// Flits transferred per item when a partner partition moves.
    pub flits_per_item: f64,
}

/// One MapReduce iteration of an application.
#[derive(Debug, Clone, PartialEq)]
pub struct IterationWorkload {
    /// Map tasks in creation order (round-robin assigned to cores).
    pub map_tasks: Vec<TaskWork>,
    /// Reduce tasks in bucket order.
    pub reduce_tasks: Vec<TaskWork>,
    /// Merge tree, if the application has a Merge phase.
    pub merge: Option<MergeSpec>,
    /// Memory behaviour during Map.
    pub map_memory: MemoryProfile,
    /// Memory behaviour during Reduce.
    pub reduce_memory: MemoryProfile,
    /// Flits moved per emitted key during the Map→Reduce shuffle.
    pub kv_flits_per_key: f64,
    /// Fraction of memory traffic biased to nearby cores (0 = uniform across
    /// all L2 slices, 1 = fully neighbour-local). Linear Regression's
    /// streaming pattern is strongly local; hash-spread workloads are not.
    pub neighbor_bias: f64,
}

/// A complete application workload (possibly multiple iterations).
#[derive(Debug, Clone, PartialEq)]
pub struct AppWorkload {
    /// Application name (for reports).
    pub name: &'static str,
    /// Serial library-initialisation + split cycles on the master core, per
    /// iteration.
    pub lib_init_cycles: f64,
    /// Instructions attributed to library initialisation.
    pub lib_init_instructions: f64,
    /// The MapReduce iterations (Kmeans and PCA have two).
    pub iterations: Vec<IterationWorkload>,
    /// Hash of the real computed output (correctness witness: the synthetic
    /// inputs are actually processed, not just costed).
    pub digest: u64,
}

impl AppWorkload {
    /// Total map tasks across iterations.
    pub fn total_map_tasks(&self) -> usize {
        self.iterations.iter().map(|i| i.map_tasks.len()).sum()
    }

    /// Total modelled compute cycles across all tasks and phases (excluding
    /// stalls, which depend on the platform).
    pub fn total_compute_cycles(&self) -> f64 {
        let mut total = self.lib_init_cycles * self.iterations.len() as f64;
        for it in &self.iterations {
            total += it.map_tasks.iter().map(|t| t.cycles).sum::<f64>();
            total += it.reduce_tasks.iter().map(|t| t.cycles).sum::<f64>();
            if let Some(m) = it.merge {
                // One tree of log2(C) levels; cost accounted per level at
                // execution time — here a nominal single pass.
                total += m.total_items * m.cycles_per_item;
            }
        }
        total
    }
}

/// Per-stage remote-L2 round-trip latencies (reference cycles), as
/// measured by phase-resolved NoC simulation. Each stage's traffic pattern
/// loads the network differently, so each sees its own latency.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PhaseLatencies {
    /// Latency during library initialisation.
    pub lib_init: f64,
    /// Latency during Map.
    pub map: f64,
    /// Latency during Reduce.
    pub reduce: f64,
    /// Latency during Merge.
    pub merge: f64,
}

impl PhaseLatencies {
    /// The same latency for every stage (the single-pass approximation).
    pub fn uniform(latency: f64) -> Self {
        PhaseLatencies {
            lib_init: latency,
            map: latency,
            reduce: latency,
            merge: latency,
        }
    }
}

impl Default for PhaseLatencies {
    fn default() -> Self {
        PhaseLatencies::uniform(40.0)
    }
}

/// Per-stage traffic matrices of one execution (packets per reference
/// cycle *of that stage's duration*).
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseTraffic {
    /// Map-stage traffic (memory/coherence).
    pub map: TrafficMatrix,
    /// Reduce-stage traffic (memory + key shuffle).
    pub reduce: TrafficMatrix,
    /// Merge-stage traffic (partition movement).
    pub merge: TrafficMatrix,
}

impl PhaseTraffic {
    /// Empty traffic over `n` cores.
    pub fn zeros(n: usize) -> Self {
        PhaseTraffic {
            map: TrafficMatrix::zeros(n),
            reduce: TrafficMatrix::zeros(n),
            merge: TrafficMatrix::zeros(n),
        }
    }
}

/// Time spent in each execution stage, in reference-clock cycles.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct PhaseBreakdown {
    /// Library initialisation (incl. Split).
    pub lib_init: f64,
    /// Map.
    pub map: f64,
    /// Reduce.
    pub reduce: f64,
    /// Merge.
    pub merge: f64,
}

impl PhaseBreakdown {
    /// Total execution time in reference cycles.
    pub fn total(&self) -> f64 {
        self.lib_init + self.map + self.reduce + self.merge
    }

    /// Adds another breakdown (accumulating iterations).
    pub fn accumulate(&mut self, other: PhaseBreakdown) {
        self.lib_init += other.lib_init;
        self.map += other.map;
        self.reduce += other.reduce;
        self.merge += other.merge;
    }

    /// Scales every phase (e.g. normalising to a baseline).
    pub fn scaled(&self, factor: f64) -> PhaseBreakdown {
        PhaseBreakdown {
            lib_init: self.lib_init * factor,
            map: self.map * factor,
            reduce: self.reduce * factor,
            merge: self.merge * factor,
        }
    }
}

/// The observables of one execution on one platform configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct ExecutionReport {
    /// Application name.
    pub name: &'static str,
    /// Per-phase times (reference cycles), summed over iterations.
    pub phases: PhaseBreakdown,
    /// Busy reference-cycles per logical core.
    pub busy_cycles: Vec<f64>,
    /// Busy fraction per logical core over the whole run — the paper's
    /// committed-IPC utilization proxy (Fig. 2 input).
    pub utilization: Vec<f64>,
    /// Inter-core traffic in packets per reference cycle (logical space),
    /// aggregated over the whole execution.
    pub traffic: TrafficMatrix,
    /// Per-stage traffic matrices (rates relative to each stage's own
    /// duration) — the input to phase-resolved NoC simulation.
    pub phase_traffic: PhaseTraffic,
    /// Number of successful steals.
    pub steals: u64,
    /// Tasks executed per core (map + reduce).
    pub tasks_per_core: Vec<u32>,
}

impl ExecutionReport {
    /// Total execution time in reference cycles.
    pub fn total_cycles(&self) -> f64 {
        self.phases.total()
    }

    /// Wall-clock seconds at the given reference clock.
    pub fn exec_seconds(&self, ref_ghz: f64) -> f64 {
        self.total_cycles() / (ref_ghz * 1e9)
    }

    /// Mean utilization over all cores.
    pub fn avg_utilization(&self) -> f64 {
        if self.utilization.is_empty() {
            0.0
        } else {
            self.utilization.iter().sum::<f64>() / self.utilization.len() as f64
        }
    }

    /// Utilization values sorted descending — the layout of the paper's
    /// Fig. 2 bars.
    pub fn sorted_utilization(&self) -> Vec<f64> {
        let mut u = self.utilization.clone();
        u.sort_by(|a, b| b.partial_cmp(a).expect("utilizations are finite"));
        u
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phase_breakdown_total() {
        let p = PhaseBreakdown {
            lib_init: 1.0,
            map: 10.0,
            reduce: 3.0,
            merge: 2.0,
        };
        assert_eq!(p.total(), 16.0);
        assert_eq!(p.scaled(0.5).total(), 8.0);
    }

    #[test]
    fn phase_breakdown_accumulate() {
        let mut a = PhaseBreakdown::default();
        a.accumulate(PhaseBreakdown {
            lib_init: 1.0,
            map: 2.0,
            reduce: 3.0,
            merge: 4.0,
        });
        a.accumulate(PhaseBreakdown {
            lib_init: 1.0,
            map: 2.0,
            reduce: 3.0,
            merge: 4.0,
        });
        assert_eq!(a.total(), 20.0);
        assert_eq!(a.map, 4.0);
    }

    #[test]
    fn report_exec_seconds() {
        let r = ExecutionReport {
            name: "t",
            phases: PhaseBreakdown {
                lib_init: 0.0,
                map: 2.5e9,
                reduce: 0.0,
                merge: 0.0,
            },
            busy_cycles: vec![],
            utilization: vec![0.2, 0.8],
            traffic: TrafficMatrix::zeros(2),
            phase_traffic: PhaseTraffic::zeros(2),
            steals: 0,
            tasks_per_core: vec![],
        };
        assert!((r.exec_seconds(2.5) - 1.0).abs() < 1e-9);
        assert!((r.avg_utilization() - 0.5).abs() < 1e-12);
        assert_eq!(r.sorted_utilization(), vec![0.8, 0.2]);
    }

    #[test]
    fn workload_totals() {
        let w = AppWorkload {
            name: "t",
            lib_init_cycles: 100.0,
            lib_init_instructions: 50.0,
            iterations: vec![IterationWorkload {
                map_tasks: vec![TaskWork::new(10.0, 5.0, 1); 4],
                reduce_tasks: vec![TaskWork::new(2.0, 1.0, 0); 2],
                merge: None,
                map_memory: MemoryProfile::new(10.0, 0.1, 0.9),
                reduce_memory: MemoryProfile::new(5.0, 0.1, 0.9),
                kv_flits_per_key: 4.0,
                neighbor_bias: 0.1,
            }],
            digest: 0,
        };
        assert_eq!(w.total_map_tasks(), 4);
        assert!((w.total_compute_cycles() - (100.0 + 40.0 + 4.0)).abs() < 1e-9);
    }
}

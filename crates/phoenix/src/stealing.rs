//! Task stealing policies (paper Section 4.3).
//!
//! Phoenix++ lets an idle core steal unfinished tasks from loaded cores. On
//! a VFI platform this backfires: a *slow* core that finishes its short
//! initial task early steals work that a *fast* core would have completed
//! sooner, leaving fast cores idle and stretching the phase. The paper's fix
//! caps the number of tasks a below-maximum-frequency core may execute at
//!
//! ```text
//! N_f = ⌊ (N / C) · (1 − (f_max − f) / f_max) ⌋        (Eq. 3)
//! ```
//!
//! where `N` is the task count of the phase, `C` the core count, `f` the
//! core's frequency and `f_max` the maximum frequency in the system.

/// How idle cores acquire more work.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum StealPolicy {
    /// Phoenix++ default: any idle core steals from the most loaded core.
    #[default]
    Default,
    /// VFI-aware stealing: cores below the maximum frequency execute at most
    /// `N_f` tasks (Eq. 3); their leftover tasks are stolen by fast cores.
    VfiCapped,
}

/// Eq. (3): the task cap for a core at relative speed `f / f_max`, given
/// `total_tasks` in the phase and `cores` in the system.
///
/// Cores at full speed (`speed_ratio >= 1`) are uncapped (`usize::MAX`).
///
/// # Panics
///
/// Panics if `cores == 0` or `speed_ratio` is not in `(0, 1]`.
///
/// # Examples
///
/// ```
/// use mapwave_phoenix::stealing::task_cap;
///
/// // 100 tasks, 64 cores, f = 2.0 GHz of f_max = 2.5 GHz:
/// // ⌊100/64 · (1 − 0.5/2.5)⌋ = ⌊1.5625 · 0.8⌋ = 1.
/// assert_eq!(task_cap(100, 64, 0.8), 1);
/// assert_eq!(task_cap(100, 64, 1.0), usize::MAX);
/// ```
pub fn task_cap(total_tasks: usize, cores: usize, speed_ratio: f64) -> usize {
    assert!(cores > 0, "cores must be nonzero");
    assert!(
        speed_ratio > 0.0 && speed_ratio <= 1.0 + 1e-12,
        "speed ratio must be in (0,1]"
    );
    if speed_ratio >= 1.0 - 1e-12 {
        return usize::MAX;
    }
    ((total_tasks as f64 / cores as f64) * speed_ratio).floor() as usize
}

/// Per-core task caps for a phase under `policy`.
///
/// `speed_ratios[i]` is core `i`'s frequency relative to a reference clock.
/// Eq. (3)'s `f_max` is the **maximum frequency of operation present in the
/// system**, so ratios are re-normalised to the fastest core before the cap
/// is computed — a system whose fastest island runs below the table maximum
/// still keeps that island uncapped. Under [`StealPolicy::Default`] every
/// core is uncapped.
pub fn caps_for_phase(policy: StealPolicy, total_tasks: usize, speed_ratios: &[f64]) -> Vec<usize> {
    match policy {
        StealPolicy::Default => vec![usize::MAX; speed_ratios.len()],
        StealPolicy::VfiCapped => {
            let fastest = speed_ratios.iter().cloned().fold(0.0, f64::max);
            if fastest <= 0.0 {
                return vec![usize::MAX; speed_ratios.len()];
            }
            speed_ratios
                .iter()
                .map(|&s| task_cap(total_tasks, speed_ratios.len(), s / fastest))
                .collect()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_word_count_example() {
        // WC: 100 tasks, 64 cores, two speeds 2.0/2.5 = 0.8 and full speed.
        assert_eq!(task_cap(100, 64, 0.8), 1);
        assert_eq!(task_cap(100, 64, 1.0), usize::MAX);
    }

    #[test]
    fn cap_monotone_in_speed() {
        let mut prev = 0;
        for s in [0.2, 0.4, 0.6, 0.8, 0.99] {
            let c = task_cap(1000, 8, s);
            assert!(c >= prev, "cap must grow with speed");
            prev = c;
        }
    }

    #[test]
    fn cap_scales_with_tasks() {
        assert!(task_cap(1000, 64, 0.8) > task_cap(100, 64, 0.8));
    }

    #[test]
    fn default_policy_uncapped() {
        let caps = caps_for_phase(StealPolicy::Default, 100, &[0.6, 0.8, 1.0]);
        assert!(caps.iter().all(|&c| c == usize::MAX));
    }

    #[test]
    fn vfi_policy_caps_slow_cores_only() {
        let caps = caps_for_phase(StealPolicy::VfiCapped, 64, &[0.6, 1.0, 0.8, 1.0]);
        assert_eq!(caps[1], usize::MAX);
        assert_eq!(caps[3], usize::MAX);
        assert!(caps[0] < caps[2], "slower core gets smaller cap");
        assert_eq!(caps[0], (16.0 * 0.6) as usize);
    }

    #[test]
    #[should_panic]
    fn rejects_zero_cores() {
        let _ = task_cap(10, 0, 0.5);
    }

    #[test]
    #[should_panic]
    fn rejects_zero_speed() {
        let _ = task_cap(10, 4, 0.0);
    }

    #[test]
    fn at_least_one_uncapped_core_when_max_present() {
        // Eq. (3) applies only to f < f_max, so a system always retains
        // uncapped capacity as long as some core runs at f_max.
        let speeds = [0.6, 0.6, 1.0, 0.8];
        let caps = caps_for_phase(StealPolicy::VfiCapped, 50, &speeds);
        assert!(caps.contains(&usize::MAX));
    }
}

//! Task stealing policies (paper Section 4.3).
//!
//! Phoenix++ lets an idle core steal unfinished tasks from loaded cores. On
//! a VFI platform this backfires: a *slow* core that finishes its short
//! initial task early steals work that a *fast* core would have completed
//! sooner, leaving fast cores idle and stretching the phase. The paper's fix
//! caps the number of tasks a below-maximum-frequency core may execute at
//!
//! ```text
//! N_f = ⌊ (N / C) · (1 − (f_max − f) / f_max) ⌋        (Eq. 3)
//! ```
//!
//! where `N` is the task count of the phase, `C` the core count, `f` the
//! core's frequency and `f_max` the maximum frequency in the system.

/// How idle cores acquire more work.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum StealPolicy {
    /// Phoenix++ default: any idle core steals from the most loaded core.
    #[default]
    Default,
    /// VFI-aware stealing: cores below the maximum frequency execute at most
    /// `N_f` tasks (Eq. 3); their leftover tasks are stolen by fast cores.
    VfiCapped,
}

/// Eq. (3): the task cap for a core at relative speed `f / f_max`, given
/// `total_tasks` in the phase and `cores` in the system.
///
/// Cores at full speed are uncapped (`usize::MAX`). "Full speed" is judged
/// with an absolute tolerance of `1e-12`: any `speed_ratio >= 1.0 - 1e-12`
/// counts as `f == f_max`, and ratios up to `1.0 + 1e-12` are accepted as
/// valid input. The tolerance absorbs the rounding of the
/// [`caps_for_phase`] renormalisation (`s / fastest` can land one ULP on
/// either side of 1.0 for the fastest core itself) without ever flipping a
/// genuinely slower core to uncapped — real frequency steps are many orders
/// of magnitude wider than `1e-12`.
///
/// With `total_tasks == 0` every below-maximum core's cap is 0 (nothing to
/// run, nothing to steal), and when `cores > total_tasks` the per-core
/// share `N / C` is below 1, so any below-maximum core caps at 0 and all
/// leftover work lands on full-speed cores.
///
/// # Panics
///
/// Panics if `cores == 0` or `speed_ratio` is outside `(0, 1 + 1e-12]`.
///
/// # Examples
///
/// ```
/// use mapwave_phoenix::stealing::task_cap;
///
/// // 100 tasks, 64 cores, f = 2.0 GHz of f_max = 2.5 GHz:
/// // ⌊100/64 · (1 − 0.5/2.5)⌋ = ⌊1.5625 · 0.8⌋ = 1.
/// assert_eq!(task_cap(100, 64, 0.8), 1);
/// assert_eq!(task_cap(100, 64, 1.0), usize::MAX);
/// ```
pub fn task_cap(total_tasks: usize, cores: usize, speed_ratio: f64) -> usize {
    assert!(cores > 0, "cores must be nonzero");
    assert!(
        speed_ratio > 0.0 && speed_ratio <= 1.0 + 1e-12,
        "speed ratio must be in (0,1]"
    );
    if speed_ratio >= 1.0 - 1e-12 {
        return usize::MAX;
    }
    ((total_tasks as f64 / cores as f64) * speed_ratio).floor() as usize
}

/// Per-core task caps for a phase under `policy`.
///
/// `speed_ratios[i]` is core `i`'s frequency relative to a reference clock.
/// Eq. (3)'s `f_max` is the **maximum frequency of operation present in the
/// system**, so ratios are re-normalised to the fastest core before the cap
/// is computed — a system whose fastest island runs below the table maximum
/// still keeps that island uncapped. Under [`StealPolicy::Default`] every
/// core is uncapped.
pub fn caps_for_phase(policy: StealPolicy, total_tasks: usize, speed_ratios: &[f64]) -> Vec<usize> {
    let mut caps = Vec::new();
    caps_for_phase_into(policy, total_tasks, speed_ratios, &mut caps);
    caps
}

/// [`caps_for_phase`] into a caller-owned buffer, so schedulers running
/// many phases can reuse one allocation. The buffer is cleared first.
pub fn caps_for_phase_into(
    policy: StealPolicy,
    total_tasks: usize,
    speed_ratios: &[f64],
    out: &mut Vec<usize>,
) {
    out.clear();
    match policy {
        StealPolicy::Default => out.resize(speed_ratios.len(), usize::MAX),
        StealPolicy::VfiCapped => {
            let fastest = speed_ratios.iter().cloned().fold(0.0, f64::max);
            if fastest <= 0.0 {
                out.resize(speed_ratios.len(), usize::MAX);
                return;
            }
            out.extend(
                speed_ratios
                    .iter()
                    .map(|&s| task_cap(total_tasks, speed_ratios.len(), s / fastest)),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_word_count_example() {
        // WC: 100 tasks, 64 cores, two speeds 2.0/2.5 = 0.8 and full speed.
        assert_eq!(task_cap(100, 64, 0.8), 1);
        assert_eq!(task_cap(100, 64, 1.0), usize::MAX);
    }

    #[test]
    fn cap_monotone_in_speed() {
        let mut prev = 0;
        for s in [0.2, 0.4, 0.6, 0.8, 0.99] {
            let c = task_cap(1000, 8, s);
            assert!(c >= prev, "cap must grow with speed");
            prev = c;
        }
    }

    #[test]
    fn cap_scales_with_tasks() {
        assert!(task_cap(1000, 64, 0.8) > task_cap(100, 64, 0.8));
    }

    #[test]
    fn default_policy_uncapped() {
        let caps = caps_for_phase(StealPolicy::Default, 100, &[0.6, 0.8, 1.0]);
        assert!(caps.iter().all(|&c| c == usize::MAX));
    }

    #[test]
    fn vfi_policy_caps_slow_cores_only() {
        let caps = caps_for_phase(StealPolicy::VfiCapped, 64, &[0.6, 1.0, 0.8, 1.0]);
        assert_eq!(caps[1], usize::MAX);
        assert_eq!(caps[3], usize::MAX);
        assert!(caps[0] < caps[2], "slower core gets smaller cap");
        assert_eq!(caps[0], (16.0 * 0.6) as usize);
    }

    #[test]
    #[should_panic]
    fn rejects_zero_cores() {
        let _ = task_cap(10, 0, 0.5);
    }

    #[test]
    #[should_panic]
    fn rejects_zero_speed() {
        let _ = task_cap(10, 4, 0.0);
    }

    #[test]
    fn full_speed_tolerance_boundary() {
        // Exactly 1.0 and anything within 1e-12 of it count as full speed;
        // ratios measurably below the band are capped.
        assert_eq!(task_cap(100, 64, 1.0), usize::MAX);
        assert_eq!(task_cap(100, 64, 1.0 - 1e-12), usize::MAX);
        assert_eq!(task_cap(100, 64, 1.0 - 0.5e-12), usize::MAX);
        assert_eq!(task_cap(100, 64, 1.0 + 1e-12), usize::MAX);
        assert_eq!(task_cap(100, 64, 1.0 - 1e-9), 1);
        assert_eq!(task_cap(1000, 8, 1.0 - 1e-9), 124);
    }

    #[test]
    #[should_panic]
    fn rejects_ratio_above_tolerance_band() {
        let _ = task_cap(10, 4, 1.0 + 1e-9);
    }

    #[test]
    fn zero_tasks_cap_slow_cores_at_zero() {
        assert_eq!(task_cap(0, 8, 0.5), 0);
        assert_eq!(task_cap(0, 8, 0.999), 0);
        let caps = caps_for_phase(StealPolicy::VfiCapped, 0, &[0.5, 1.0]);
        assert_eq!(caps, vec![0, usize::MAX]);
    }

    #[test]
    fn more_cores_than_tasks_caps_slow_cores_at_zero() {
        // N/C < 1, so every below-maximum core floors to zero and the
        // full-speed cores carry the whole (tiny) phase.
        assert_eq!(task_cap(3, 8, 0.9), 0);
        let caps = caps_for_phase(StealPolicy::VfiCapped, 3, &[0.8, 0.9, 1.0, 1.0]);
        assert_eq!(caps, vec![0, 0, usize::MAX, usize::MAX]);
    }

    #[test]
    fn caps_for_phase_into_reuses_buffer() {
        let mut buf = vec![123usize; 7];
        caps_for_phase_into(StealPolicy::VfiCapped, 64, &[0.6, 1.0, 0.8, 1.0], &mut buf);
        assert_eq!(
            buf,
            caps_for_phase(StealPolicy::VfiCapped, 64, &[0.6, 1.0, 0.8, 1.0])
        );
        caps_for_phase_into(StealPolicy::Default, 10, &[1.0, 1.0], &mut buf);
        assert_eq!(buf, vec![usize::MAX; 2]);
    }

    #[test]
    fn at_least_one_uncapped_core_when_max_present() {
        // Eq. (3) applies only to f < f_max, so a system always retains
        // uncapped capacity as long as some core runs at f_max.
        let speeds = [0.6, 0.6, 1.0, 0.8];
        let caps = caps_for_phase(StealPolicy::VfiCapped, 50, &speeds);
        assert!(caps.contains(&usize::MAX));
    }
}

//! Execution timelines: per-core busy intervals of a modelled run.
//!
//! A [`Timeline`] records what every core executed and when — the data
//! behind Gantt-style views of the Fig. 1 stage flow, and the easiest way
//! to *see* the effects the paper reasons about: the serial library-init
//! stripe on the master core, stealing filling the Map tail, the thinning
//! Merge tree, and slow islands stretching their spans.

use crate::task::PhaseKind;
use std::fmt::Write as _;

/// One contiguous busy interval on one core.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Span {
    /// The core that was busy.
    pub core: usize,
    /// The stage the work belonged to.
    pub phase: PhaseKind,
    /// Start time in reference cycles.
    pub start: f64,
    /// End time in reference cycles.
    pub end: f64,
    /// Whether the task was stolen from another core's queue.
    pub stolen: bool,
}

impl Span {
    /// Span length in reference cycles.
    pub fn duration(&self) -> f64 {
        self.end - self.start
    }
}

/// The recorded schedule of one execution.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Timeline {
    spans: Vec<Span>,
    cores: usize,
}

impl Timeline {
    /// An empty timeline over `cores` cores.
    pub fn new(cores: usize) -> Self {
        Timeline {
            spans: Vec::new(),
            cores,
        }
    }

    /// Appends a span.
    ///
    /// # Panics
    ///
    /// Panics if the span is inverted or its core is out of range.
    pub fn push(&mut self, span: Span) {
        assert!(span.end >= span.start, "inverted span");
        assert!(span.core < self.cores, "core out of range");
        self.spans.push(span);
    }

    /// All spans, in insertion order.
    pub fn spans(&self) -> &[Span] {
        &self.spans
    }

    /// Number of cores.
    pub fn cores(&self) -> usize {
        self.cores
    }

    /// End of the last span (the makespan), 0 when empty.
    pub fn makespan(&self) -> f64 {
        self.spans.iter().map(|s| s.end).fold(0.0, f64::max)
    }

    /// Total busy time of one core.
    pub fn busy(&self, core: usize) -> f64 {
        self.spans
            .iter()
            .filter(|s| s.core == core)
            .map(Span::duration)
            .sum()
    }

    /// Time spent in one stage across all cores.
    pub fn stage_busy(&self, phase: PhaseKind) -> f64 {
        self.spans
            .iter()
            .filter(|s| s.phase == phase)
            .map(Span::duration)
            .sum()
    }

    /// Number of stolen-task spans.
    pub fn steals(&self) -> usize {
        self.spans.iter().filter(|s| s.stolen).count()
    }

    /// Renders an ASCII Gantt chart, `width` characters wide. Each core is
    /// one row; stages print as `L` (lib-init), `M` (map), `R` (reduce),
    /// `G` (merge); stolen tasks are lower-cased; idle time is `.`.
    pub fn render(&self, width: usize) -> String {
        let mut out = String::new();
        let makespan = self.makespan();
        if makespan <= 0.0 || width == 0 {
            return out;
        }
        for core in 0..self.cores {
            let mut row = vec!['.'; width];
            for s in self.spans.iter().filter(|s| s.core == core) {
                let from = ((s.start / makespan) * width as f64) as usize;
                let to = (((s.end / makespan) * width as f64).ceil() as usize).min(width);
                let mut ch = match s.phase {
                    PhaseKind::LibraryInit => 'L',
                    PhaseKind::Map => 'M',
                    PhaseKind::Reduce => 'R',
                    PhaseKind::Merge => 'G',
                };
                if s.stolen {
                    ch = ch.to_ascii_lowercase();
                }
                for slot in row.iter_mut().take(to).skip(from.min(width)) {
                    *slot = ch;
                }
            }
            let _ = writeln!(out, "core {core:>2} |{}|", row.iter().collect::<String>());
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(core: usize, phase: PhaseKind, start: f64, end: f64) -> Span {
        Span {
            core,
            phase,
            start,
            end,
            stolen: false,
        }
    }

    #[test]
    fn accounting() {
        let mut t = Timeline::new(2);
        t.push(span(0, PhaseKind::LibraryInit, 0.0, 10.0));
        t.push(span(0, PhaseKind::Map, 10.0, 30.0));
        t.push(span(1, PhaseKind::Map, 10.0, 25.0));
        assert_eq!(t.makespan(), 30.0);
        assert_eq!(t.busy(0), 30.0);
        assert_eq!(t.busy(1), 15.0);
        assert_eq!(t.stage_busy(PhaseKind::Map), 35.0);
        assert_eq!(t.stage_busy(PhaseKind::Merge), 0.0);
        assert_eq!(t.steals(), 0);
    }

    #[test]
    fn render_shape() {
        let mut t = Timeline::new(2);
        t.push(span(0, PhaseKind::Map, 0.0, 50.0));
        t.push(Span {
            core: 1,
            phase: PhaseKind::Map,
            start: 50.0,
            end: 100.0,
            stolen: true,
        });
        let g = t.render(10);
        let lines: Vec<&str> = g.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("MMMMM"));
        assert!(lines[1].contains("mmmmm"), "{g}");
        assert!(lines[0].contains('.'));
    }

    #[test]
    #[should_panic]
    fn rejects_inverted_span() {
        let mut t = Timeline::new(1);
        t.push(span(0, PhaseKind::Map, 5.0, 1.0));
    }

    #[test]
    fn empty_render_is_empty() {
        let t = Timeline::new(4);
        assert!(t.render(20).is_empty());
        assert_eq!(t.makespan(), 0.0);
    }
}

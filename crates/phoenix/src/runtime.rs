//! The Phoenix++ execution model: event-driven task scheduling with
//! stealing over a frequency-heterogeneous platform.
//!
//! [`Executor::run`] replays an [`AppWorkload`] on a modelled platform and
//! returns the [`ExecutionReport`] the rest of the study consumes. The
//! model follows the paper's Fig. 1 flow per iteration:
//!
//! 1. **Library init** (+ Split): serial work on the master core;
//! 2. **Map**: tasks round-robin assigned, executed at each core's
//!    frequency, idle cores steal from the most-loaded victim (subject to
//!    the [`StealPolicy`]);
//! 3. **Reduce**: bucket tasks, same scheduling;
//! 4. **Merge**: a binary tree with thread count halving per level.
//!
//! Task durations combine modelled compute cycles with cache-miss stalls
//! that depend on the NoC round-trip latency — the coupling through which a
//! better interconnect (the WiNoC) shortens execution.
//!
//! # Execution-model kernels
//!
//! The scheduler's per-completion cost tracks tasks moved, not
//! cores × tasks: steal victims come from an indexed max-structure
//! (`StealIndex`, length-bucketed core bitmasks) instead of an O(cores)
//! scan, span recording compiles away in untraced [`Executor::run`] calls
//! (the sealed `SpanSink` parameter), and all per-phase scratch (task
//! queues, caps, the event heap, flit accumulators) lives in an
//! [`ExecScratch`] that is reused across phases, iterations and —
//! via [`Executor::run_with_scratch`] — across relaxation rounds. Every
//! observable is bit-identical to the pre-optimization scheduler, which is
//! kept in-tree as [`Executor::run_traced_reference`] and pinned by
//! `crates/phoenix/tests/equivalence.rs`.

use crate::stealing::{caps_for_phase_into, StealPolicy};
use crate::task::{PhaseKind, TaskWork};
use crate::timeline::{Span, Timeline};
use crate::workload::{AppWorkload, ExecutionReport, PhaseBreakdown, PhaseLatencies, PhaseTraffic};
use mapwave_faults::{CoreEvent, FaultPlan, FaultStats};
use mapwave_harness::telemetry;
use mapwave_manycore::cache::{CacheModel, MemoryProfile};
use mapwave_manycore::event::EventQueue;
use mapwave_manycore::health::CoreHealth;
use mapwave_noc::TrafficMatrix;
use std::collections::VecDeque;

mod reference;

/// Platform/runtime parameters of one execution.
#[derive(Debug, Clone, PartialEq)]
pub struct RuntimeConfig {
    /// Number of cores (logical threads, one per core).
    pub cores: usize,
    /// The master core running library initialisation (Phoenix: thread 0).
    pub master_core: usize,
    /// Steal policy in force.
    pub steal_policy: StealPolicy,
    /// Per-core speed relative to the fastest clock, in `(0, 1]`.
    pub core_speeds: Vec<f64>,
    /// Cycles of overhead added to a stolen task (queue locking + data
    /// re-fetch).
    pub steal_overhead_cycles: f64,
    /// Per-stage network round trips to a remote L2 slice, in reference
    /// cycles (measured by phase-resolved NoC simulation).
    pub remote_l2_latency: PhaseLatencies,
    /// The cache hierarchy model.
    pub cache: CacheModel,
}

impl RuntimeConfig {
    /// The non-VFI baseline: every core at full speed, default stealing.
    pub fn nvfi(cores: usize) -> Self {
        RuntimeConfig {
            cores,
            master_core: 0,
            steal_policy: StealPolicy::Default,
            core_speeds: vec![1.0; cores],
            steal_overhead_cycles: 1_500.0,
            remote_l2_latency: PhaseLatencies::default(),
            cache: CacheModel::default_64core(),
        }
    }

    /// Replaces the per-core speeds.
    ///
    /// # Panics
    ///
    /// Panics if the length differs from `cores` or any speed is outside
    /// `(0, 1]`.
    pub fn with_speeds(mut self, speeds: Vec<f64>) -> Self {
        assert_eq!(speeds.len(), self.cores, "speed vector length mismatch");
        assert!(
            speeds.iter().all(|&s| s > 0.0 && s <= 1.0 + 1e-12),
            "speeds must be in (0,1]"
        );
        self.core_speeds = speeds;
        self
    }

    /// Sets the steal policy.
    pub fn with_steal_policy(mut self, policy: StealPolicy) -> Self {
        self.steal_policy = policy;
        self
    }

    /// Sets one measured remote-L2 round-trip latency for every stage.
    ///
    /// # Panics
    ///
    /// Panics if negative or non-finite.
    pub fn with_remote_latency(mut self, cycles: f64) -> Self {
        assert!(
            cycles >= 0.0 && cycles.is_finite(),
            "latency must be nonnegative"
        );
        self.remote_l2_latency = PhaseLatencies::uniform(cycles);
        self
    }

    /// Sets per-stage remote-L2 round-trip latencies.
    pub fn with_phase_latencies(mut self, latencies: PhaseLatencies) -> Self {
        self.remote_l2_latency = latencies;
        self
    }
}

/// A task-completion event (internal).
#[derive(Debug, Clone, Copy)]
pub(crate) struct Completion {
    pub(crate) core: usize,
    /// The phase-local task index that just finished — the fault layer
    /// needs it to decide (and bill) a retry of exactly this task.
    pub(crate) task: usize,
}

/// Where the scheduler reports busy spans.
///
/// The trait is crate-private (maximally sealed): the only implementors are
/// [`Timeline`] (the traced path, byte-identical output to the reference
/// scheduler) and [`NoSpans`] (the untraced path, where `record` compiles
/// down to a counter increment and the span tuple is never materialised).
pub(crate) trait SpanSink {
    /// Accepts one busy span in absolute (run-clock) time.
    fn record(&mut self, span: Span);
}

/// Span sink of untraced runs: discards every span, counting the elisions
/// for the `phoenix.spans_skipped` telemetry counter.
#[derive(Debug, Default)]
pub(crate) struct NoSpans {
    skipped: u64,
}

impl SpanSink for NoSpans {
    #[inline]
    fn record(&mut self, _span: Span) {
        self.skipped += 1;
    }
}

impl SpanSink for Timeline {
    #[inline]
    fn record(&mut self, span: Span) {
        self.push(span);
    }
}

/// Where the scheduler consults the fault model.
///
/// Like [`SpanSink`], the trait is crate-private and monomorphised: the
/// fault-free implementor [`NoFaults`] carries `ACTIVE = false`, so every
/// `if F::ACTIVE` hook in the scheduler compiles away and the untraced,
/// unfaulted path is instruction-for-instruction the pre-fault scheduler —
/// the bit-identity pinned by `tests/equivalence.rs` costs nothing to keep.
pub(crate) trait FaultHook {
    /// Whether any hook can ever fire. `false` removes every hook at
    /// compile time.
    const ACTIVE: bool;
    /// Opens a fault slot (a scheduling window between global barriers):
    /// applies pending core degrade/fail events and fills `buf` with the
    /// effective per-core speeds derived from `base`.
    fn begin_slot(&mut self, base: &[f64], buf: &mut Vec<f64>);
    /// Resets per-task retry state for a phase of `len` tasks and advances
    /// the global task serial (task identities must differ across phases).
    fn begin_phase(&mut self, len: usize);
    /// Zeroes the task caps of offline cores so they never start work.
    fn mask_caps(&self, caps: &mut [usize]);
    /// Whether the just-finished attempt of phase-local task `t` failed
    /// (and must be requeued). Charges the retry and arms its backoff.
    fn task_failed(&mut self, t: usize) -> bool;
    /// Consumes the pending backoff delay of task `t`, in reference cycles.
    fn take_backoff(&mut self, t: usize) -> f64;
    /// The core that actually performs serial work assigned to `core` —
    /// `core` itself when alive, else the nearest surviving substitute.
    fn live_core(&self, core: usize) -> usize;
    /// Observes a steal from `victim` (bills a re-steal when the victim is
    /// an offline core whose queue survivors are draining).
    fn note_steal(&mut self, victim: usize);
}

/// Fault hook of unfaulted runs: every hook is a no-op that the optimiser
/// removes (`ACTIVE = false`).
#[derive(Debug, Default)]
pub(crate) struct NoFaults;

impl FaultHook for NoFaults {
    const ACTIVE: bool = false;
    #[inline]
    fn begin_slot(&mut self, _base: &[f64], _buf: &mut Vec<f64>) {}
    #[inline]
    fn begin_phase(&mut self, _len: usize) {}
    #[inline]
    fn mask_caps(&self, _caps: &mut [usize]) {}
    #[inline]
    fn task_failed(&mut self, _t: usize) -> bool {
        false
    }
    #[inline]
    fn take_backoff(&mut self, _t: usize) -> f64 {
        0.0
    }
    #[inline]
    fn live_core(&self, core: usize) -> usize {
        core
    }
    #[inline]
    fn note_steal(&mut self, _victim: usize) {}
}

/// Live fault state of one faulted execution: the deterministic plan plus
/// the core-health, retry, and counter state it drives.
///
/// Create one per [`Executor::run_with_faults`] call (health and counters
/// accumulate monotonically — reusing an instance carries degradation over,
/// which models long-running deployments but is usually not what a sweep
/// wants). The master core is exempt from core events entirely: exempt from
/// failure so forward progress is guaranteed (some core always drains the
/// queues), and exempt from degradation because library init is serial on
/// the master and a degraded master would conflate serial-fraction stretch
/// with the parallel-phase fault response the sweep isolates.
#[derive(Debug, Clone)]
pub struct PhoenixFaults {
    plan: FaultPlan,
    master: usize,
    health: CoreHealth,
    /// Next fault-slot index (advanced once per scheduling window).
    slot: u64,
    /// Global task serial at the start of the current phase.
    task_base: u64,
    /// Running task serial across phases.
    task_serial: u64,
    /// Failed-attempt count per phase-local task.
    attempts: Vec<u32>,
    /// Pending backoff delay per phase-local task, in reference cycles.
    backoff: Vec<f64>,
    stats: FaultStats,
}

impl PhoenixFaults {
    /// Fault state for a platform of `cores` cores whose master is
    /// `master`.
    ///
    /// # Panics
    ///
    /// Panics if `cores == 0` or `master >= cores`.
    pub fn new(plan: &FaultPlan, cores: usize, master: usize) -> Self {
        assert!(master < cores, "master core out of range");
        PhoenixFaults {
            plan: plan.clone(),
            master,
            health: CoreHealth::new(cores),
            slot: 0,
            task_base: 0,
            task_serial: 0,
            attempts: Vec::new(),
            backoff: Vec::new(),
            stats: FaultStats::default(),
        }
    }

    /// Fault counters accumulated so far (retries, re-steals, core events).
    pub fn stats(&self) -> &FaultStats {
        &self.stats
    }

    /// Current per-core health (liveness and degradation factors).
    pub fn health(&self) -> &CoreHealth {
        &self.health
    }
}

impl FaultHook for PhoenixFaults {
    const ACTIVE: bool = true;

    fn begin_slot(&mut self, base: &[f64], buf: &mut Vec<f64>) {
        let slot = self.slot;
        self.slot += 1;
        for core in 0..self.health.len() {
            if core == self.master || !self.health.is_alive(core) {
                continue;
            }
            match self.plan.core_event(core, slot) {
                CoreEvent::Fail => {
                    self.health.kill(core);
                    self.stats.cores_failed += 1;
                }
                CoreEvent::Degrade => {
                    self.health.degrade(core, self.plan.degrade_factor());
                    self.stats.cores_degraded += 1;
                }
                CoreEvent::None => {}
            }
        }
        self.health.effective_speeds(base, buf);
    }

    fn begin_phase(&mut self, len: usize) {
        self.task_base = self.task_serial;
        self.task_serial += len as u64;
        self.attempts.clear();
        self.attempts.resize(len, 0);
        self.backoff.clear();
        self.backoff.resize(len, 0.0);
    }

    fn mask_caps(&self, caps: &mut [usize]) {
        for (core, cap) in caps.iter_mut().enumerate() {
            if !self.health.is_alive(core) {
                *cap = 0;
            }
        }
    }

    fn task_failed(&mut self, t: usize) -> bool {
        let attempt = self.attempts[t];
        if self.plan.task_fails(self.task_base + t as u64, attempt) {
            self.attempts[t] += 1;
            self.stats.task_retries += 1;
            self.backoff[t] = self.plan.backoff_cycles(self.attempts[t]);
            true
        } else {
            false
        }
    }

    fn take_backoff(&mut self, t: usize) -> f64 {
        let b = self.backoff[t];
        self.backoff[t] = 0.0;
        b
    }

    fn live_core(&self, core: usize) -> usize {
        self.health.live_substitute(core)
    }

    fn note_steal(&mut self, victim: usize) {
        if !self.health.is_alive(victim) {
            self.stats.re_steals += 1;
        }
    }
}

/// Indexed max-structure over the nonempty task queues, keyed by queue
/// length with lowest-core-index tie-break — the same victim order as the
/// reference scheduler's `max_by_key(|&v| (queues[v].len(), usize::MAX - v))`
/// scan, at O(words) per lookup instead of O(cores).
///
/// Queues only ever shrink after the round-robin distribution, so the
/// structure is a dense array of length buckets (bitmask of cores per
/// length) with a monotonically falling `cur_max` watermark: each
/// `decrement` moves one core down one bucket, and `best` resumes its
/// downward scan from the previous watermark, making the whole phase's
/// bucket traversal amortized O(max queue length).
#[derive(Debug, Default, Clone)]
struct StealIndex {
    /// `buckets[len * words ..][.. words]` = bitmask of cores whose queue
    /// currently holds exactly `len` tasks (len ≥ 1 only).
    buckets: Vec<u64>,
    /// Bitmask words per bucket (`ceil(cores / 64)`).
    words: usize,
    /// No bucket above this length is nonempty.
    cur_max: usize,
}

impl StealIndex {
    /// Rebuilds the index from the per-core queues of a fresh phase.
    fn rebuild(&mut self, queues: &[VecDeque<usize>]) {
        self.words = queues.len().div_ceil(64).max(1);
        let max_len = queues.iter().map(VecDeque::len).max().unwrap_or(0);
        self.cur_max = max_len;
        self.buckets.clear();
        self.buckets.resize((max_len + 1) * self.words, 0);
        for (core, q) in queues.iter().enumerate() {
            let len = q.len();
            if len > 0 {
                self.buckets[len * self.words + (core >> 6)] |= 1u64 << (core & 63);
            }
        }
    }

    /// Records that `core`'s queue shrank from `old_len` to `old_len - 1`.
    #[inline]
    fn decrement(&mut self, core: usize, old_len: usize) {
        debug_assert!(old_len >= 1);
        let w = core >> 6;
        let bit = 1u64 << (core & 63);
        self.buckets[old_len * self.words + w] &= !bit;
        if old_len > 1 {
            self.buckets[(old_len - 1) * self.words + w] |= bit;
        }
    }

    /// Records that `core`'s queue grew from `new_len - 1` to `new_len`
    /// (a fault-layer requeue — the only way queues refill mid-phase).
    /// Raises the watermark back up when the requeued length exceeds it.
    #[inline]
    fn increment(&mut self, core: usize, new_len: usize) {
        debug_assert!(new_len >= 1);
        let needed = (new_len + 1) * self.words;
        if self.buckets.len() < needed {
            self.buckets.resize(needed, 0);
        }
        let w = core >> 6;
        let bit = 1u64 << (core & 63);
        if new_len > 1 {
            self.buckets[(new_len - 1) * self.words + w] &= !bit;
        }
        self.buckets[new_len * self.words + w] |= bit;
        if new_len > self.cur_max {
            self.cur_max = new_len;
        }
    }

    /// The steal victim: the core with the longest nonempty queue, lowest
    /// index on ties. `None` when every queue is empty.
    #[inline]
    fn best(&mut self) -> Option<usize> {
        while self.cur_max > 0 {
            let row = &self.buckets[self.cur_max * self.words..(self.cur_max + 1) * self.words];
            for (wi, &word) in row.iter().enumerate() {
                if word != 0 {
                    return Some((wi << 6) | word.trailing_zeros() as usize);
                }
            }
            self.cur_max -= 1;
        }
        None
    }
}

/// Reusable executor scratch: every per-phase allocation of the scheduler
/// (task queues, caps, the completion heap, the steal index) plus the
/// per-run flit accumulators and the neighbour table of the traffic model.
///
/// [`Executor::run`] creates one internally per call; hot loops that replay
/// the same executor many times (the `run_system` relaxation rounds, the
/// `phoenix_run` micro-bench) hold one across calls via
/// [`Executor::run_with_scratch`] so no per-phase heap allocation remains.
#[derive(Debug, Default, Clone)]
pub struct ExecScratch {
    queues: Vec<VecDeque<usize>>,
    caps: Vec<usize>,
    done: Vec<usize>,
    events: EventQueue<Completion>,
    steal_index: StealIndex,
    /// Flattened neighbour lists of the memory-traffic model, valid for
    /// `neighbors_n` cores.
    neighbors_flat: Vec<usize>,
    neighbors_off: Vec<usize>,
    neighbors_n: usize,
    map_flits: Vec<f64>,
    reduce_flits: Vec<f64>,
    merge_flits: Vec<f64>,
    total_flits: Vec<f64>,
    /// Per-core reduce-task counts, the 0/1 pass indicators, and the
    /// high-count overflow list of the shuffle scatter (see the shuffle
    /// block in `run_impl`).
    shuffle_cnt: Vec<u32>,
    shuffle_excess: Vec<(usize, u32)>,
}

/// Radius of the neighbour-locality bias: memory traffic is shared with
/// cores within this index distance. `ensure_neighbors` materialises the
/// lists; `account_memory_flits` relies on the same radius to test
/// adjacency without walking a list.
const NEIGHBORHOOD: isize = 4;

impl ExecScratch {
    /// An empty scratch (allocations grow on first use).
    pub fn new() -> Self {
        ExecScratch::default()
    }

    /// Ensures the neighbour table covers `n` cores, in the reference
    /// order (for each offset 1..=NEIGHBORHOOD: lower index first, then
    /// higher).
    fn ensure_neighbors(&mut self, n: usize) {
        if self.neighbors_n == n {
            return;
        }
        self.neighbors_flat.clear();
        self.neighbors_off.clear();
        self.neighbors_off.push(0);
        for c in 0..n {
            for off in 1..=NEIGHBORHOOD {
                let lo = c as isize - off;
                let hi = c as isize + off;
                if lo >= 0 {
                    self.neighbors_flat.push(lo as usize);
                }
                if (hi as usize) < n {
                    self.neighbors_flat.push(hi as usize);
                }
            }
            self.neighbors_off.push(self.neighbors_flat.len());
        }
        self.neighbors_n = n;
    }
}

/// Outcome of scheduling one task-parallel phase.
#[derive(Debug, Clone)]
struct PhaseOutcome {
    duration: f64,
    executed_by: Vec<usize>,
    steals: u64,
    /// O(cores) scans the reference scheduler would have run (victim scans
    /// answered by the index + per-completion idle rescans elided).
    scans_avoided: u64,
}

/// In-flight state of one phase's event loop (borrowed scheduler scratch
/// plus the per-phase accumulators), so the start/steal logic reads as
/// methods instead of a closure with a dozen parameters.
struct PhaseCtx<'a, S: SpanSink, F: FaultHook> {
    tasks: &'a [TaskWork],
    speeds: &'a [f64],
    stall: f64,
    steal_overhead: f64,
    phase: PhaseKind,
    base: f64,
    queues: &'a mut Vec<VecDeque<usize>>,
    index: &'a mut StealIndex,
    events: &'a mut EventQueue<Completion>,
    caps: &'a mut Vec<usize>,
    done: &'a mut Vec<usize>,
    executed_by: &'a mut [usize],
    queued: usize,
    steals: u64,
    scans_avoided: u64,
    sink: &'a mut S,
    faults: &'a mut F,
}

impl<S: SpanSink, F: FaultHook> PhaseCtx<'_, S, F> {
    /// Picks the next task for `core`: own queue first, else steal from the
    /// most-loaded victim via the index. Returns `(task, stolen)`.
    #[inline]
    fn next_task(&mut self, core: usize) -> Option<(usize, bool)> {
        if let Some(t) = self.queues[core].pop_front() {
            self.index.decrement(core, self.queues[core].len() + 1);
            return Some((t, false));
        }
        // The requester's queue is empty, so it is absent from the index
        // and the best entry is automatically a legal victim.
        let victim = self.index.best()?;
        self.scans_avoided += 1;
        let t = self.queues[victim]
            .pop_back()
            .expect("indexed victim queue nonempty");
        self.index.decrement(victim, self.queues[victim].len() + 1);
        if F::ACTIVE {
            self.faults.note_steal(victim);
        }
        Some((t, true))
    }

    /// Starts the next task on `core` at time `now`, if the cap allows and
    /// work exists.
    fn start_core(&mut self, core: usize, now: f64) {
        if self.done[core] >= self.caps[core] {
            return;
        }
        let Some((t, stolen)) = self.next_task(core) else {
            return;
        };
        let task = &self.tasks[t];
        let mut dur = task.cycles / self.speeds[core] + task.instructions * self.stall;
        if stolen {
            dur += self.steal_overhead / self.speeds[core];
            self.steals += 1;
        }
        if F::ACTIVE {
            // Retry backoff is wall-clock (a timer, not compute): it does
            // not stretch with the core's clock divider.
            dur += self.faults.take_backoff(t);
        }
        self.executed_by[t] = core;
        self.done[core] += 1;
        self.queued -= 1;
        self.events.push(now + dur, Completion { core, task: t });
        self.sink.record(Span {
            core,
            phase: self.phase,
            start: self.base + now,
            end: self.base + (now + dur),
            stolen,
        });
    }

    /// Puts a failed task back on `core`'s queue tail, re-registering it
    /// with the steal index so idle cores can pick up the retry.
    fn requeue(&mut self, core: usize, t: usize) {
        self.queues[core].push_back(t);
        self.index.increment(core, self.queues[core].len());
        self.queued += 1;
    }
}

/// The execution engine.
#[derive(Debug, Clone)]
pub struct Executor {
    cfg: RuntimeConfig,
}

impl Executor {
    /// Creates an executor for `cfg`.
    ///
    /// # Panics
    ///
    /// Panics if the config is internally inconsistent (zero cores, speed
    /// vector length mismatch, master out of range).
    pub fn new(cfg: RuntimeConfig) -> Self {
        assert!(cfg.cores > 0, "need at least one core");
        assert_eq!(
            cfg.core_speeds.len(),
            cfg.cores,
            "speed vector length mismatch"
        );
        assert!(cfg.master_core < cfg.cores, "master core out of range");
        Executor { cfg }
    }

    /// The configuration in force.
    pub fn config(&self) -> &RuntimeConfig {
        &self.cfg
    }

    /// Replaces the per-stage remote-L2 latencies in place, so a relaxation
    /// loop can re-run the executor with updated network feedback without
    /// rebuilding (and recloning) the whole configuration each round.
    pub fn set_phase_latencies(&mut self, latencies: PhaseLatencies) {
        self.cfg.remote_l2_latency = latencies;
    }

    /// Replaces the off-chip memory latency in place — the banked
    /// DRAM-model counterpart of [`Executor::set_phase_latencies`], letting
    /// the relaxation loop feed measured controller queueing back into the
    /// cache model between rounds.
    pub fn set_mem_latency_cycles(&mut self, cycles: f64) {
        self.cfg.cache.mem_latency_cycles = cycles;
    }

    /// Effective duration of `task` on `core`, in reference cycles.
    ///
    /// Compute cycles stretch with the core's clock divider, but cache-miss
    /// stalls do not: an L2/network/DRAM access takes fixed wall-clock time
    /// regardless of the requesting core's frequency. This memory-bound
    /// slack is exactly the lever VFI pulls — slowing a stall-heavy core
    /// barely stretches it while cutting its V²f energy.
    pub(crate) fn task_duration(
        &self,
        task: &TaskWork,
        memory: &MemoryProfile,
        core: usize,
        latency: f64,
    ) -> f64 {
        let stall = self.cfg.cache.stall_cycles_per_inst(memory, latency);
        task.cycles / self.cfg.core_speeds[core] + task.instructions * stall
    }

    /// Replays `workload` and reports the observables.
    pub fn run(&self, workload: &AppWorkload) -> ExecutionReport {
        self.run_with_scratch(workload, &mut ExecScratch::new())
    }

    /// Like [`Executor::run`], reusing caller-held [`ExecScratch`] so
    /// repeated executions (relaxation rounds, sweeps) perform no per-phase
    /// heap allocation. The report is identical to [`Executor::run`]'s.
    pub fn run_with_scratch(
        &self,
        workload: &AppWorkload,
        scratch: &mut ExecScratch,
    ) -> ExecutionReport {
        let mut sink = NoSpans::default();
        let report = self.run_impl(workload, scratch, &mut sink, &mut NoFaults);
        telemetry::count("phoenix.spans_skipped", sink.skipped);
        report
    }

    /// Like [`Executor::run`], but also records the full schedule as a
    /// [`Timeline`] (per-core busy spans for Gantt-style inspection).
    pub fn run_traced(&self, workload: &AppWorkload) -> (ExecutionReport, Timeline) {
        let mut timeline = Timeline::new(self.cfg.cores);
        let report = self.run_impl(
            workload,
            &mut ExecScratch::new(),
            &mut timeline,
            &mut NoFaults,
        );
        (report, timeline)
    }

    /// Like [`Executor::run_with_scratch`], with the fault model live:
    /// cores may degrade or fail at scheduling-window boundaries (survivors
    /// re-steal a dead core's queue), map/reduce task attempts may fail and
    /// retry with exponential backoff, and the merge tree routes around
    /// offline mergers. With a plan built from an all-zero
    /// [`FaultConfig`](mapwave_faults::FaultConfig) no hook ever fires and
    /// the report is bit-identical to [`Executor::run`]'s.
    ///
    /// `faults` accumulates health and counters across calls; pass a fresh
    /// [`PhoenixFaults`] per execution unless degradation should carry
    /// over.
    ///
    /// # Panics
    ///
    /// Panics if `faults` was built for a different core count.
    pub fn run_with_faults(
        &self,
        workload: &AppWorkload,
        scratch: &mut ExecScratch,
        faults: &mut PhoenixFaults,
    ) -> ExecutionReport {
        assert_eq!(
            faults.health.len(),
            self.cfg.cores,
            "fault state platform size mismatch"
        );
        let mut sink = NoSpans::default();
        let report = self.run_impl(workload, scratch, &mut sink, faults);
        telemetry::count("phoenix.spans_skipped", sink.skipped);
        report
    }

    /// The shared engine behind [`Executor::run`] (span sink [`NoSpans`])
    /// and [`Executor::run_traced`] (span sink [`Timeline`]), fault hook
    /// [`NoFaults`] on both, and [`Executor::run_with_faults`] (hook
    /// [`PhoenixFaults`]).
    fn run_impl<S: SpanSink, F: FaultHook>(
        &self,
        workload: &AppWorkload,
        scratch: &mut ExecScratch,
        sink: &mut S,
        faults: &mut F,
    ) -> ExecutionReport {
        let _span = telemetry::span_labeled("phoenix.exec", workload.name);
        let n = self.cfg.cores;
        let lat = self.cfg.remote_l2_latency;
        let mut phases = PhaseBreakdown::default();
        let mut busy = vec![0.0f64; n];
        scratch.ensure_neighbors(n);
        for buf in [
            &mut scratch.map_flits,
            &mut scratch.reduce_flits,
            &mut scratch.merge_flits,
        ] {
            buf.clear();
            buf.resize(n * n, 0.0);
        }
        let mut steals = 0u64;
        let mut scans_avoided = 0u64;
        let mut tasks_per_core = vec![0u32; n];
        let mut clock = 0.0f64;
        // Effective per-core speeds of the current fault slot. Stays empty
        // on the unfaulted path (`NoFaults::begin_slot` is a no-op), in
        // which case the base speed vector is used directly — no copy, no
        // extra float op, bit-identical schedules.
        let mut fault_speeds: Vec<f64> = Vec::new();

        for it in &workload.iterations {
            // --- Fault slot A: library init + Map ---
            faults.begin_slot(&self.cfg.core_speeds, &mut fault_speeds);
            let speeds: &[f64] = if F::ACTIVE && !fault_speeds.is_empty() {
                &fault_speeds
            } else {
                &self.cfg.core_speeds
            };

            // --- Library init (serial, on the master core) ---
            let master = self.cfg.master_core;
            let li_task =
                TaskWork::new(workload.lib_init_cycles, workload.lib_init_instructions, 0);
            let li_stall = self
                .cfg
                .cache
                .stall_cycles_per_inst(&it.map_memory, lat.lib_init);
            let li = li_task.cycles / speeds[master] + li_task.instructions * li_stall;
            busy[master] += li;
            phases.lib_init += li;
            sink.record(Span {
                core: master,
                phase: PhaseKind::LibraryInit,
                start: clock,
                end: clock + li,
                stolen: false,
            });
            clock += li;

            // --- Map ---
            let map = self.run_phase(
                &it.map_tasks,
                &it.map_memory,
                lat.map,
                PhaseKind::Map,
                clock,
                speeds,
                scratch,
                sink,
                faults,
            );
            phases.map += map.duration;
            clock += map.duration;
            let map_stall = self
                .cfg
                .cache
                .stall_cycles_per_inst(&it.map_memory, lat.map);
            for (t, &c) in map.executed_by.iter().enumerate() {
                let task = &it.map_tasks[t];
                busy[c] += task.cycles / speeds[c] + task.instructions * map_stall;
                tasks_per_core[c] += 1;
            }
            steals += map.steals;
            scans_avoided += map.scans_avoided;
            account_memory_flits(
                &self.cfg.cache,
                &mut scratch.map_flits,
                &scratch.neighbors_flat,
                &scratch.neighbors_off,
                n,
                &it.map_tasks,
                &map.executed_by,
                &it.map_memory,
                it.neighbor_bias,
            );

            // --- Fault slot B: Reduce ---
            faults.begin_slot(&self.cfg.core_speeds, &mut fault_speeds);
            let speeds: &[f64] = if F::ACTIVE && !fault_speeds.is_empty() {
                &fault_speeds
            } else {
                &self.cfg.core_speeds
            };

            // --- Reduce ---
            let red = self.run_phase(
                &it.reduce_tasks,
                &it.reduce_memory,
                lat.reduce,
                PhaseKind::Reduce,
                clock,
                speeds,
                scratch,
                sink,
                faults,
            );
            phases.reduce += red.duration;
            clock += red.duration;
            let red_stall = self
                .cfg
                .cache
                .stall_cycles_per_inst(&it.reduce_memory, lat.reduce);
            for (t, &c) in red.executed_by.iter().enumerate() {
                let task = &it.reduce_tasks[t];
                busy[c] += task.cycles / speeds[c] + task.instructions * red_stall;
                tasks_per_core[c] += 1;
            }
            steals += red.steals;
            scans_avoided += red.scans_avoided;
            account_memory_flits(
                &self.cfg.cache,
                &mut scratch.reduce_flits,
                &scratch.neighbors_flat,
                &scratch.neighbors_off,
                n,
                &it.reduce_tasks,
                &red.executed_by,
                &it.reduce_memory,
                it.neighbor_bias,
            );

            // --- Shuffle traffic: map cores → reduce cores, keys spread
            //     uniformly over buckets by hashing. In shared-memory
            //     Phoenix++ the transfer is cache-mediated: producers write
            //     container buckets back during Map and consumers fetch
            //     them during Reduce, so the flits split between the two
            //     windows instead of bursting into the (short) Reduce.
            //     See [`scatter_shuffle_flits`] for the bit-identity
            //     argument of the pass-based scatter. ---
            scatter_shuffle_flits(
                scratch,
                n,
                &it.map_tasks,
                &map.executed_by,
                &red.executed_by,
                it.kv_flits_per_key,
            );

            // --- Merge: binary tree, active threads halve per level. After
            //     the hash-partitioned Reduce, each of the n partitions
            //     holds ~total_items/n keys; a merger at level l therefore
            //     combines two partitions of total_items·2^l/n keys each,
            //     so the critical path is ~2·total_items·cycles_per_item
            //     while early levels stay cheap and wide. ---
            // --- Fault slot C: Merge ---
            faults.begin_slot(&self.cfg.core_speeds, &mut fault_speeds);
            let speeds: &[f64] = if F::ACTIVE && !fault_speeds.is_empty() {
                &fault_speeds
            } else {
                &self.cfg.core_speeds
            };

            if let Some(merge) = it.merge {
                let merge_stall = self
                    .cfg
                    .cache
                    .stall_cycles_per_inst(&it.reduce_memory, lat.merge);
                let levels = (n as f64).log2().ceil() as u32;
                for l in 0..levels {
                    let stride = 1usize << (l + 1);
                    let half = 1usize << l;
                    let partition_items = merge.total_items * (1usize << l) as f64 / n as f64;
                    let merged_items = 2.0 * partition_items;
                    let mtask = TaskWork::new(
                        merged_items * merge.cycles_per_item,
                        merged_items * merge.instructions_per_item,
                        0,
                    );
                    let mut level_time = 0.0f64;
                    let mut merger = 0usize;
                    while merger < n {
                        let partner = merger + half;
                        if partner < n {
                            // The merge tree is positional; a dead merger's
                            // slot is serviced by the nearest survivor
                            // (identity when fault-free).
                            let m = faults.live_core(merger);
                            let dur = mtask.cycles / speeds[m] + mtask.instructions * merge_stall;
                            busy[m] += dur;
                            sink.record(Span {
                                core: m,
                                phase: PhaseKind::Merge,
                                start: clock,
                                end: clock + dur,
                                stolen: false,
                            });
                            level_time = level_time.max(dur);
                            // Partner ships its partition to the merger
                            // (its L2 slice still holds the data even if
                            // the partner core itself is offline; any
                            // self-traffic from substitution lands on the
                            // matrix diagonal, which `from_dense` clears).
                            scratch.merge_flits[partner * n + m] +=
                                partition_items * merge.flits_per_item;
                        }
                        merger += stride;
                    }
                    phases.merge += level_time;
                    clock += level_time;
                }
            }
        }

        let total = phases.total().max(1e-9);
        let utilization: Vec<f64> = busy.iter().map(|&b| (b / total).min(1.0)).collect();

        // Convert flit counts to packets per reference cycle: stage rates
        // are relative to each stage's own duration, the aggregate to the
        // whole execution.
        let packet_flits = 4.0; // matches the NoC simulator's default packet length
        let to_matrix = |flits: &[f64], cycles: f64| -> TrafficMatrix {
            if cycles <= 0.0 {
                return TrafficMatrix::zeros(n);
            }
            // `packet_flits` is a power of two, so `flits / packet_flits`
            // is an exact exponent shift and folding it into the divisor
            // leaves exactly one rounding step — the quotient is
            // bit-identical to the reference's two-step division at half
            // the divide count. Dividing the whole buffer branch-free
            // keeps untouched entries untouched too (`0.0 / denom` is the
            // `+0.0` the reference left in place) while letting the loop
            // vectorise; `from_dense` then clears the diagonal the
            // reference's `set` guard never wrote.
            let denom = packet_flits * cycles;
            TrafficMatrix::from_dense(n, flits.iter().map(|&f| f / denom).collect())
        };
        scratch.total_flits.clear();
        scratch.total_flits.extend(
            scratch
                .map_flits
                .iter()
                .zip(&scratch.reduce_flits)
                .zip(&scratch.merge_flits)
                .map(|((&m, &r), &g)| m + r + g),
        );
        let traffic = to_matrix(&scratch.total_flits, total);
        let phase_traffic = PhaseTraffic {
            map: to_matrix(&scratch.map_flits, phases.map),
            reduce: to_matrix(&scratch.reduce_flits, phases.reduce),
            merge: to_matrix(&scratch.merge_flits, phases.merge),
        };

        telemetry::count(
            "phoenix.tasks_executed",
            tasks_per_core.iter().map(|&t| u64::from(t)).sum(),
        );
        telemetry::count("phoenix.tasks_stolen", steals);
        telemetry::count("phoenix.steal_scans_avoided", scans_avoided);
        ExecutionReport {
            name: workload.name,
            phases,
            busy_cycles: busy,
            utilization,
            traffic,
            phase_traffic,
            steals,
            tasks_per_core,
        }
    }

    /// Event-driven scheduling of one task-parallel phase.
    ///
    /// Per-completion cost is O(1) amortized: victim selection comes from
    /// the [`StealIndex`] and no idle rescan exists. The reference
    /// scheduler rescanned every core after each completion looking for
    /// idle cores that could start; that scan is provably dead while tasks
    /// remain queued — `queued` always equals the total queued-task count,
    /// a core only goes idle-with-capacity when `next_task` finds every
    /// queue empty (i.e. `queued == 0`), and queues never refill — so the
    /// only resume point that can ever start an idle core is the cap-lift
    /// batch below, which restarts all cores at once. (Under an active
    /// fault hook a failed task *does* refill a queue, which can strand it
    /// with every other core idle until the cap-lift batch; the retry
    /// backoff models that pickup delay, so no extra wake-up pass is
    /// needed there either.)
    #[allow(clippy::too_many_arguments)]
    fn run_phase<S: SpanSink, F: FaultHook>(
        &self,
        tasks: &[TaskWork],
        memory: &MemoryProfile,
        latency: f64,
        phase: PhaseKind,
        base: f64,
        speeds: &[f64],
        scratch: &mut ExecScratch,
        sink: &mut S,
        faults: &mut F,
    ) -> PhaseOutcome {
        let n = self.cfg.cores;
        if F::ACTIVE {
            faults.begin_phase(tasks.len());
        }
        let mut executed_by = vec![usize::MAX; tasks.len()];
        if tasks.is_empty() {
            return PhaseOutcome {
                duration: 0.0,
                executed_by,
                steals: 0,
                scans_avoided: 0,
            };
        }

        // Round-robin initial assignment (Phoenix chunk distribution) into
        // the reused queue set.
        scratch.queues.truncate(n);
        for q in scratch.queues.iter_mut() {
            q.clear();
        }
        scratch.queues.resize_with(n, VecDeque::new);
        for t in 0..tasks.len() {
            scratch.queues[t % n].push_back(t);
        }
        caps_for_phase_into(
            self.cfg.steal_policy,
            tasks.len(),
            speeds,
            &mut scratch.caps,
        );
        if F::ACTIVE {
            faults.mask_caps(&mut scratch.caps);
        }
        scratch.done.clear();
        scratch.done.resize(n, 0);
        scratch.events.clear();
        scratch.steal_index.rebuild(&scratch.queues);

        let stall = self.cfg.cache.stall_cycles_per_inst(memory, latency);
        let mut phase_end = 0.0f64;
        let mut ctx = PhaseCtx {
            tasks,
            speeds,
            stall,
            steal_overhead: self.cfg.steal_overhead_cycles,
            phase,
            base,
            queues: &mut scratch.queues,
            index: &mut scratch.steal_index,
            events: &mut scratch.events,
            caps: &mut scratch.caps,
            done: &mut scratch.done,
            executed_by: &mut executed_by,
            queued: tasks.len(),
            steals: 0,
            scans_avoided: 0,
            sink,
            faults,
        };

        // Start as many cores as possible at t = 0.
        for core in 0..n {
            ctx.start_core(core, 0.0);
        }

        loop {
            while let Some((now, ev)) = ctx.events.pop() {
                phase_end = phase_end.max(now);
                // A failed attempt re-enters the queues before the
                // finishing core looks for more work, so the retry is
                // immediately stealable (possibly by the same core).
                if F::ACTIVE && ctx.faults.task_failed(ev.task) {
                    ctx.requeue(ev.core, ev.task);
                }
                // The finishing core tries to pick up more work; no other
                // core can become runnable here (see the method docs), so
                // the reference's per-completion idle rescan is counted as
                // avoided rather than replayed.
                ctx.start_core(ev.core, now);
                if ctx.queued > 0 {
                    ctx.scans_avoided += 1;
                }
            }
            debug_assert_eq!(
                ctx.queued,
                ctx.queues.iter().map(VecDeque::len).sum::<usize>(),
                "queued counter must track queue contents"
            );
            if ctx.queued == 0 {
                break;
            }
            // Every core hit its cap while tasks remain (possible only when
            // no core runs at f_max): lift the caps and resume the whole
            // platform in one batch at the current phase end. Offline cores
            // stay masked at zero — survivors drain the leftovers.
            ctx.caps.fill(usize::MAX);
            if F::ACTIVE {
                ctx.faults.mask_caps(ctx.caps);
            }
            for core in 0..n {
                ctx.start_core(core, phase_end);
            }
        }

        let steals = ctx.steals;
        let scans_avoided = ctx.scans_avoided;
        debug_assert!(executed_by.iter().all(|&c| c != usize::MAX));
        PhaseOutcome {
            duration: phase_end,
            executed_by,
            steals,
            scans_avoided,
        }
    }
}

/// Scatters the shuffle traffic of one iteration into the map and reduce
/// flit accumulators: each map task spreads its emitted keys uniformly
/// over the reduce buckets, half charged to the Map window and half to
/// the Reduce window.
///
/// The reference walks `red_by` per map task, so entry (c_m, c) receives
/// exactly cnt[c] adds of the task's per-bucket value, where cnt[c]
/// counts the reduce tasks on core c. Because every add to a given entry
/// carries the *same* addend, any schedule that delivers cnt[c]
/// sequential adds to entry c produces bit-identical results — there is
/// no ordering constraint between entries, and none within an entry
/// beyond the count. The cheapest such schedule is the one used here:
/// `cnt_min` unmasked full-row passes (branch-free, vectorisable, no
/// indicator loads or multiplies) cover the shared floor of every count,
/// and a compact excess list of (core, cnt[c] - cnt_min) pairs tops up
/// the rest with register-resident scalar chains. The map core's own
/// column — skipped by the reference's `c_m != c_r` guard — is written
/// anyway and restored afterwards, leaving identical final bits.
fn scatter_shuffle_flits(
    scratch: &mut ExecScratch,
    n: usize,
    map_tasks: &[TaskWork],
    map_by: &[usize],
    red_by: &[usize],
    kv_flits_per_key: f64,
) {
    if red_by.is_empty() {
        return;
    }
    let r = red_by.len() as f64;
    scratch.shuffle_cnt.clear();
    scratch.shuffle_cnt.resize(n, 0);
    for &c in red_by {
        scratch.shuffle_cnt[c] += 1;
    }
    let cnt_min = scratch.shuffle_cnt.iter().copied().min().unwrap_or(0);
    scratch.shuffle_excess.clear();
    for c in 0..n {
        let extra = scratch.shuffle_cnt[c] - cnt_min;
        if extra > 0 {
            scratch.shuffle_excess.push((c, extra));
        }
    }
    for (t, &c_m) in map_by.iter().enumerate() {
        let keys = map_tasks[t].keys_emitted as f64;
        if keys == 0.0 {
            continue;
        }
        let per_bucket = keys * kv_flits_per_key / r / 2.0;
        let row = c_m * n;
        let own_map = scratch.map_flits[row + c_m];
        let own_red = scratch.reduce_flits[row + c_m];
        let mrow = &mut scratch.map_flits[row..row + n];
        let rrow = &mut scratch.reduce_flits[row..row + n];
        for _ in 0..cnt_min {
            for (v, w) in mrow.iter_mut().zip(rrow.iter_mut()) {
                *v += per_bucket;
                *w += per_bucket;
            }
        }
        for &(c, extra) in &scratch.shuffle_excess {
            let mut m = mrow[c];
            let mut q = rrow[c];
            for _ in 0..extra {
                m += per_bucket;
                q += per_bucket;
            }
            mrow[c] = m;
            rrow[c] = q;
        }
        mrow[c_m] = own_map;
        rrow[c_m] = own_red;
    }
}

/// Distributes the memory traffic of executed tasks: requests to home L2
/// slices and line-sized replies back, with a neighbour-locality bias.
///
/// The per-destination weights (`share`, `uniform`) and the per-task
/// scaled addends are hoisted out of the scatter loops — each is one
/// multiplication whose repeated evaluation in the reference produced the
/// same value — and the neighbour lists come from the precomputed
/// [`ExecScratch`] table, so the only per-destination work left is the
/// additions themselves, which stay in the reference's exact order (the
/// add sequence per matrix entry is what the bit-identity guarantee pins).
#[allow(clippy::too_many_arguments)]
fn account_memory_flits(
    cache: &CacheModel,
    flits: &mut [f64],
    neighbors_flat: &[usize],
    neighbors_off: &[usize],
    n: usize,
    tasks: &[TaskWork],
    executed_by: &[usize],
    memory: &MemoryProfile,
    neighbor_bias: f64,
) {
    if n < 2 {
        return;
    }
    let line_flits = cache.line_flits() as f64;
    let mpki = memory.l1_mpki / 1000.0;
    let uniform = (1.0 - neighbor_bias) / (n - 1) as f64;

    // Tasks are processed in batches of up to BATCH consecutive tasks on
    // pairwise-distinct cores. Entries touched by at most one batch task
    // keep their reference add order automatically: the neighbour
    // scatters and request rows run per task in task order, and the
    // fused reply-column walk appends each task's single column add. The
    // only entries where *cross-task* order matters are the k×k
    // core-intersection entries (task a's row crosses task b's column
    // exactly at (cores[a], cores[b])) — those are snapshot before the
    // batch and recomputed afterwards by replaying the reference's exact
    // per-entry add sequence, so every final bit matches the reference's
    // one-task-at-a-time walk. Fusing the columns is what pays: the k
    // strided column walks collapse into one pass that touches each
    // cache line once instead of k times.
    const BATCH: usize = 4;
    let len = tasks.len();
    let mut cores = [0usize; BATCH];
    let mut reqs = [0.0f64; BATCH];
    let mut reps = [0.0f64; BATCH];
    let mut req_sh = [0.0f64; BATCH];
    let mut rep_sh = [0.0f64; BATCH];
    let mut req_u = [0.0f64; BATCH];
    let mut rep_u = [0.0f64; BATCH];
    let mut i = 0;
    while i < len {
        // Collect the batch: tasks with no traffic pass through freely
        // (the reference skips them too); a repeated core flushes early.
        let mut k = 0;
        while i < len && k < BATCH {
            let accesses =
                tasks[i].instructions * mpki * memory.remote_fraction * cache.network_fraction;
            if accesses <= 0.0 {
                i += 1;
                continue;
            }
            let c = executed_by[i];
            if cores[..k].contains(&c) {
                break;
            }
            cores[k] = c;
            reqs[k] = accesses; // 1 flit per request
            reps[k] = accesses * line_flits;
            k += 1;
            i += 1;
        }
        if k == 0 {
            continue;
        }
        // Snapshot the intersection entries (including diagonals, which
        // the reference never writes).
        let mut saved = [[0.0f64; BATCH]; BATCH];
        for a in 0..k {
            for b in 0..k {
                saved[a][b] = flits[cores[a] * n + cores[b]];
            }
        }
        // Neighbour share: split over up to 2*NEIGHBORHOOD nearby cores,
        // per task in task order.
        for a in 0..k {
            let c = cores[a];
            let neighbors = &neighbors_flat[neighbors_off[c]..neighbors_off[c + 1]];
            req_sh[a] = 0.0;
            rep_sh[a] = 0.0;
            if !neighbors.is_empty() {
                let share = neighbor_bias / neighbors.len() as f64;
                req_sh[a] = reqs[a] * share;
                rep_sh[a] = reps[a] * share;
                for &d in neighbors {
                    flits[c * n + d] += req_sh[a];
                    flits[d * n + c] += rep_sh[a];
                }
            }
            req_u[a] = reqs[a] * uniform;
            rep_u[a] = reps[a] * uniform;
        }
        // Request rows, per task in task order, branch-free over the full
        // row (the diagonal garbage is fixed by the replay below).
        for a in 0..k {
            let c = cores[a];
            for v in &mut flits[c * n..(c + 1) * n] {
                *v += req_u[a];
            }
        }
        // Reply columns, fused into a single walk over the rows. The
        // full-batch case is unrolled by hand so the four independent
        // scattered adds pipeline instead of sharing a counted loop.
        if k == BATCH {
            let [c0, c1, c2, c3] = cores;
            let [r0, r1, r2, r3] = rep_u;
            for chunk in flits.chunks_exact_mut(n) {
                chunk[c0] += r0;
                chunk[c1] += r1;
                chunk[c2] += r2;
                chunk[c3] += r3;
            }
        } else {
            for chunk in flits.chunks_exact_mut(n) {
                for a in 0..k {
                    chunk[cores[a]] += rep_u[a];
                }
            }
        }
        // Replay the intersection entries from the snapshot in the
        // reference's order: for entry (cores[a], cores[b]) the adds come
        // from task a (neighbour request share if the cores are adjacent,
        // then the uniform request) and task b (neighbour reply share,
        // then the uniform reply), sequenced by task position. Adjacency
        // is symmetric, so one membership test covers both directions.
        for a in 0..k {
            for b in 0..k {
                let (x, y) = (cores[a], cores[b]);
                if a == b {
                    flits[x * n + x] = saved[a][a];
                    continue;
                }
                // Membership in the neighbour list is exactly index
                // distance <= NEIGHBORHOOD (both cores are in-bounds), so
                // no list walk is needed.
                let near = x.abs_diff(y) <= NEIGHBORHOOD as usize;
                let mut val = saved[a][b];
                if a < b {
                    if near {
                        val += req_sh[a];
                    }
                    val += req_u[a];
                    if near {
                        val += rep_sh[b];
                    }
                    val += rep_u[b];
                } else {
                    if near {
                        val += rep_sh[b];
                    }
                    val += rep_u[b];
                    if near {
                        val += req_sh[a];
                    }
                    val += req_u[a];
                }
                flits[x * n + y] = val;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::{IterationWorkload, MergeSpec};
    use mapwave_noc::NodeId;

    fn simple_workload(tasks: usize, cycles: f64) -> AppWorkload {
        AppWorkload {
            name: "test",
            lib_init_cycles: 1_000.0,
            lib_init_instructions: 500.0,
            iterations: vec![IterationWorkload {
                map_tasks: vec![TaskWork::new(cycles, cycles / 2.0, 10); tasks],
                reduce_tasks: vec![TaskWork::new(cycles / 10.0, cycles / 20.0, 0); 8],
                merge: Some(MergeSpec {
                    total_items: 100.0,
                    cycles_per_item: 5.0,
                    instructions_per_item: 2.0,
                    flits_per_item: 4.0,
                }),
                map_memory: MemoryProfile::new(10.0, 0.05, 0.9),
                reduce_memory: MemoryProfile::new(5.0, 0.05, 0.9),
                kv_flits_per_key: 4.0,
                neighbor_bias: 0.1,
            }],
            digest: 42,
        }
    }

    #[test]
    fn all_tasks_execute_exactly_once() {
        let exec = Executor::new(RuntimeConfig::nvfi(8));
        let report = exec.run(&simple_workload(37, 10_000.0));
        assert_eq!(
            report
                .tasks_per_core
                .iter()
                .map(|&t| t as usize)
                .sum::<usize>(),
            37 + 8
        );
    }

    #[test]
    fn balanced_tasks_give_homogeneous_utilization() {
        let exec = Executor::new(RuntimeConfig::nvfi(8));
        let report = exec.run(&simple_workload(64, 50_000.0));
        let u = &report.utilization;
        let max = u.iter().cloned().fold(0.0, f64::max);
        let min = u.iter().cloned().fold(1.0, f64::min);
        assert!(max - min < 0.3, "utilization spread too wide: {u:?}");
        assert!(report.avg_utilization() > 0.5);
    }

    #[test]
    fn master_core_is_busiest_with_long_lib_init() {
        let mut w = simple_workload(64, 10_000.0);
        w.lib_init_cycles = 200_000.0;
        let exec = Executor::new(RuntimeConfig::nvfi(8));
        let report = exec.run(&w);
        let master_u = report.utilization[0];
        assert!(
            report.utilization.iter().skip(1).all(|&u| u < master_u),
            "master must be the bottleneck: {:?}",
            report.utilization
        );
    }

    #[test]
    fn slower_cores_stretch_execution() {
        let w = simple_workload(64, 50_000.0);
        let fast = Executor::new(RuntimeConfig::nvfi(8)).run(&w);
        let slow = Executor::new(RuntimeConfig::nvfi(8).with_speeds(vec![0.6; 8])).run(&w);
        let ratio = slow.total_cycles() / fast.total_cycles();
        assert!(
            ratio > 1.3 && ratio < 1.8,
            "expected ~1/0.6 stretch, got {ratio}"
        );
    }

    #[test]
    fn stealing_happens_with_imbalanced_work() {
        // One heavy task among light ones forces idle cores to steal.
        let mut w = simple_workload(16, 1_000.0);
        w.iterations[0].map_tasks[0] = TaskWork::new(500_000.0, 1_000.0, 10);
        let exec = Executor::new(RuntimeConfig::nvfi(8));
        let report = exec.run(&w);
        assert!(report.steals > 0);
    }

    #[test]
    fn vfi_capped_reduces_slow_core_tasks() {
        // The paper's Section 4.3 pathology in miniature: a slow core that
        // finishes its short initial task early would, under default
        // stealing, pick up the long tail task and stretch the phase; the
        // Eq. (3) cap leaves that task for the fast core.
        let speeds = vec![0.8, 1.0];
        let mut w = simple_workload(3, 0.0);
        w.iterations[0].map_tasks = vec![
            TaskWork::new(100_000.0, 0.0, 10), // short, on the slow core
            TaskWork::new(200_000.0, 0.0, 10), // on the fast core
            TaskWork::new(400_000.0, 0.0, 10), // tail task, queued at core 0
        ];
        w.iterations[0].reduce_tasks.clear();
        w.iterations[0].merge = None;
        let default_run = Executor::new(
            RuntimeConfig::nvfi(2)
                .with_speeds(speeds.clone())
                .with_steal_policy(StealPolicy::Default),
        )
        .run(&w);
        let capped_run = Executor::new(
            RuntimeConfig::nvfi(2)
                .with_speeds(speeds)
                .with_steal_policy(StealPolicy::VfiCapped),
        )
        .run(&w);
        let slow_default: u32 = default_run.tasks_per_core[..1].iter().sum();
        let slow_capped: u32 = capped_run.tasks_per_core[..1].iter().sum();
        assert!(
            slow_capped < slow_default,
            "cap must shift work to fast cores ({slow_capped} vs {slow_default})"
        );
        // In this regime the modified policy must be strictly faster.
        assert!(
            capped_run.phases.map < default_run.phases.map,
            "capped {} vs default {}",
            capped_run.phases.map,
            default_run.phases.map
        );
    }

    #[test]
    fn all_slow_cores_still_complete() {
        // No core at f_max: caps must be lifted rather than deadlock.
        let w = simple_workload(32, 10_000.0);
        let exec = Executor::new(
            RuntimeConfig::nvfi(4)
                .with_speeds(vec![0.8, 0.8, 0.6, 0.6])
                .with_steal_policy(StealPolicy::VfiCapped),
        );
        let report = exec.run(&w);
        assert_eq!(
            report
                .tasks_per_core
                .iter()
                .map(|&t| t as usize)
                .sum::<usize>(),
            32 + 8
        );
    }

    #[test]
    fn higher_network_latency_stretches_execution() {
        let w = simple_workload(64, 20_000.0);
        let near = Executor::new(RuntimeConfig::nvfi(8).with_remote_latency(20.0)).run(&w);
        let far = Executor::new(RuntimeConfig::nvfi(8).with_remote_latency(200.0)).run(&w);
        assert!(far.total_cycles() > near.total_cycles());
    }

    #[test]
    fn traffic_matrix_is_populated() {
        let exec = Executor::new(RuntimeConfig::nvfi(8));
        let report = exec.run(&simple_workload(64, 20_000.0));
        assert!(report.traffic.total_rate() > 0.0);
        // Diagonal stays empty.
        for i in 0..8 {
            assert_eq!(report.traffic.rate(NodeId(i), NodeId(i)), 0.0);
        }
    }

    #[test]
    fn neighbor_bias_concentrates_traffic() {
        let mut w = simple_workload(64, 20_000.0);
        w.iterations[0].neighbor_bias = 0.0;
        let uniform = Executor::new(RuntimeConfig::nvfi(8)).run(&w);
        w.iterations[0].neighbor_bias = 0.9;
        let local = Executor::new(RuntimeConfig::nvfi(8)).run(&w);
        // Traffic between cores 0 and 1 (adjacent) grows with bias.
        assert!(
            local.traffic.rate(NodeId(0), NodeId(1)) > uniform.traffic.rate(NodeId(0), NodeId(1))
        );
    }

    #[test]
    fn deterministic_execution() {
        let w = simple_workload(50, 30_000.0);
        let a = Executor::new(RuntimeConfig::nvfi(8)).run(&w);
        let b = Executor::new(RuntimeConfig::nvfi(8)).run(&w);
        assert_eq!(a, b);
    }

    #[test]
    fn scratch_reuse_is_transparent() {
        // One scratch across heterogeneous runs (different task counts and
        // core counts upstream of it) changes nothing.
        let mut scratch = ExecScratch::new();
        for tasks in [3usize, 64, 17] {
            let w = simple_workload(tasks, 20_000.0);
            let exec = Executor::new(RuntimeConfig::nvfi(8));
            let fresh = exec.run(&w);
            let reused = exec.run_with_scratch(&w, &mut scratch);
            assert_eq!(fresh, reused, "scratch reuse diverged at tasks={tasks}");
        }
        // A smaller platform after a larger one (scratch shrinks).
        let w = simple_workload(9, 5_000.0);
        let exec = Executor::new(RuntimeConfig::nvfi(2));
        assert_eq!(exec.run(&w), exec.run_with_scratch(&w, &mut scratch));
    }

    #[test]
    fn merge_busy_lands_on_tree_mergers() {
        let exec = Executor::new(RuntimeConfig::nvfi(8));
        let report = exec.run(&simple_workload(8, 1_000.0));
        // Core 0 merges at every level; core 1 never merges.
        assert!(report.busy_cycles[0] > report.busy_cycles[1]);
        assert!(report.phases.merge > 0.0);
    }

    #[test]
    fn timeline_is_consistent_with_report() {
        let w = simple_workload(40, 20_000.0);
        let exec = Executor::new(RuntimeConfig::nvfi(8));
        let (report, timeline) = exec.run_traced(&w);
        // The schedule's makespan is the reported execution time.
        assert!(
            (timeline.makespan() - report.total_cycles()).abs() < 1e-6 * report.total_cycles(),
            "makespan {} vs total {}",
            timeline.makespan(),
            report.total_cycles()
        );
        // Per-core busy agrees with the report.
        for core in 0..8 {
            assert!(
                (timeline.busy(core) - report.busy_cycles[core]).abs()
                    < 1e-6 * report.busy_cycles[core].max(1.0),
                "core {core}"
            );
        }
        // Steal spans match the steal counter.
        assert_eq!(timeline.steals() as u64, report.steals);
        // Stage totals are all represented.
        use crate::task::PhaseKind;
        assert!(timeline.stage_busy(PhaseKind::Map) > 0.0);
        assert!(timeline.stage_busy(PhaseKind::LibraryInit) > 0.0);
    }

    #[test]
    fn empty_iteration_zero_cost_phases() {
        let w = AppWorkload {
            name: "empty",
            lib_init_cycles: 100.0,
            lib_init_instructions: 0.0,
            iterations: vec![IterationWorkload {
                map_tasks: vec![],
                reduce_tasks: vec![],
                merge: None,
                map_memory: MemoryProfile::new(0.0, 0.0, 0.0),
                reduce_memory: MemoryProfile::new(0.0, 0.0, 0.0),
                kv_flits_per_key: 0.0,
                neighbor_bias: 0.0,
            }],
            digest: 0,
        };
        let report = Executor::new(RuntimeConfig::nvfi(4)).run(&w);
        assert_eq!(report.phases.map, 0.0);
        assert_eq!(report.phases.reduce, 0.0);
        assert_eq!(report.phases.merge, 0.0);
        assert!(report.phases.lib_init > 0.0);
    }

    #[test]
    fn steal_index_matches_scan_order() {
        // Drive a StealIndex and a naive max-scan side by side through a
        // deterministic pop sequence; the victims must agree throughout.
        let mut queues: Vec<VecDeque<usize>> = (0..7)
            .map(|c| (0..[3usize, 1, 4, 4, 0, 2, 4][c]).collect())
            .collect();
        let mut index = StealIndex::default();
        index.rebuild(&queues);
        for _ in 0..20 {
            let scan = (0..queues.len())
                .filter(|&v| !queues[v].is_empty())
                .max_by_key(|&v| (queues[v].len(), usize::MAX - v));
            assert_eq!(index.best(), scan, "victim order diverged");
            let Some(v) = scan else { break };
            queues[v].pop_back();
            index.decrement(v, queues[v].len() + 1);
        }
    }
}

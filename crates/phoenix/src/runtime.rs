//! The Phoenix++ execution model: event-driven task scheduling with
//! stealing over a frequency-heterogeneous platform.
//!
//! [`Executor::run`] replays an [`AppWorkload`] on a modelled platform and
//! returns the [`ExecutionReport`] the rest of the study consumes. The
//! model follows the paper's Fig. 1 flow per iteration:
//!
//! 1. **Library init** (+ Split): serial work on the master core;
//! 2. **Map**: tasks round-robin assigned, executed at each core's
//!    frequency, idle cores steal from the most-loaded victim (subject to
//!    the [`StealPolicy`]);
//! 3. **Reduce**: bucket tasks, same scheduling;
//! 4. **Merge**: a binary tree with thread count halving per level.
//!
//! Task durations combine modelled compute cycles with cache-miss stalls
//! that depend on the NoC round-trip latency — the coupling through which a
//! better interconnect (the WiNoC) shortens execution.

use crate::stealing::{caps_for_phase, StealPolicy};
use crate::task::{PhaseKind, TaskWork};
use crate::timeline::{Span, Timeline};
use crate::workload::{AppWorkload, ExecutionReport, PhaseBreakdown, PhaseLatencies, PhaseTraffic};
use mapwave_harness::telemetry;
use mapwave_manycore::cache::{CacheModel, MemoryProfile};
use mapwave_manycore::event::EventQueue;
use mapwave_noc::{NodeId, TrafficMatrix};
use std::collections::VecDeque;

/// Platform/runtime parameters of one execution.
#[derive(Debug, Clone, PartialEq)]
pub struct RuntimeConfig {
    /// Number of cores (logical threads, one per core).
    pub cores: usize,
    /// The master core running library initialisation (Phoenix: thread 0).
    pub master_core: usize,
    /// Steal policy in force.
    pub steal_policy: StealPolicy,
    /// Per-core speed relative to the fastest clock, in `(0, 1]`.
    pub core_speeds: Vec<f64>,
    /// Cycles of overhead added to a stolen task (queue locking + data
    /// re-fetch).
    pub steal_overhead_cycles: f64,
    /// Per-stage network round trips to a remote L2 slice, in reference
    /// cycles (measured by phase-resolved NoC simulation).
    pub remote_l2_latency: PhaseLatencies,
    /// The cache hierarchy model.
    pub cache: CacheModel,
}

impl RuntimeConfig {
    /// The non-VFI baseline: every core at full speed, default stealing.
    pub fn nvfi(cores: usize) -> Self {
        RuntimeConfig {
            cores,
            master_core: 0,
            steal_policy: StealPolicy::Default,
            core_speeds: vec![1.0; cores],
            steal_overhead_cycles: 1_500.0,
            remote_l2_latency: PhaseLatencies::default(),
            cache: CacheModel::default_64core(),
        }
    }

    /// Replaces the per-core speeds.
    ///
    /// # Panics
    ///
    /// Panics if the length differs from `cores` or any speed is outside
    /// `(0, 1]`.
    pub fn with_speeds(mut self, speeds: Vec<f64>) -> Self {
        assert_eq!(speeds.len(), self.cores, "speed vector length mismatch");
        assert!(
            speeds.iter().all(|&s| s > 0.0 && s <= 1.0 + 1e-12),
            "speeds must be in (0,1]"
        );
        self.core_speeds = speeds;
        self
    }

    /// Sets the steal policy.
    pub fn with_steal_policy(mut self, policy: StealPolicy) -> Self {
        self.steal_policy = policy;
        self
    }

    /// Sets one measured remote-L2 round-trip latency for every stage.
    ///
    /// # Panics
    ///
    /// Panics if negative or non-finite.
    pub fn with_remote_latency(mut self, cycles: f64) -> Self {
        assert!(
            cycles >= 0.0 && cycles.is_finite(),
            "latency must be nonnegative"
        );
        self.remote_l2_latency = PhaseLatencies::uniform(cycles);
        self
    }

    /// Sets per-stage remote-L2 round-trip latencies.
    pub fn with_phase_latencies(mut self, latencies: PhaseLatencies) -> Self {
        self.remote_l2_latency = latencies;
        self
    }
}

/// Outcome of scheduling one task-parallel phase.
#[derive(Debug, Clone)]
struct PhaseOutcome {
    duration: f64,
    executed_by: Vec<usize>,
    steals: u64,
    /// Per-task `(core, start, end, stolen)` in phase-relative time.
    spans: Vec<(usize, f64, f64, bool)>,
}

/// The execution engine.
#[derive(Debug, Clone)]
pub struct Executor {
    cfg: RuntimeConfig,
}

impl Executor {
    /// Creates an executor for `cfg`.
    ///
    /// # Panics
    ///
    /// Panics if the config is internally inconsistent (zero cores, speed
    /// vector length mismatch, master out of range).
    pub fn new(cfg: RuntimeConfig) -> Self {
        assert!(cfg.cores > 0, "need at least one core");
        assert_eq!(
            cfg.core_speeds.len(),
            cfg.cores,
            "speed vector length mismatch"
        );
        assert!(cfg.master_core < cfg.cores, "master core out of range");
        Executor { cfg }
    }

    /// The configuration in force.
    pub fn config(&self) -> &RuntimeConfig {
        &self.cfg
    }

    /// Replaces the per-stage remote-L2 latencies in place, so a relaxation
    /// loop can re-run the executor with updated network feedback without
    /// rebuilding (and recloning) the whole configuration each round.
    pub fn set_phase_latencies(&mut self, latencies: PhaseLatencies) {
        self.cfg.remote_l2_latency = latencies;
    }

    /// Effective duration of `task` on `core`, in reference cycles.
    ///
    /// Compute cycles stretch with the core's clock divider, but cache-miss
    /// stalls do not: an L2/network/DRAM access takes fixed wall-clock time
    /// regardless of the requesting core's frequency. This memory-bound
    /// slack is exactly the lever VFI pulls — slowing a stall-heavy core
    /// barely stretches it while cutting its V²f energy.
    fn task_duration(
        &self,
        task: &TaskWork,
        memory: &MemoryProfile,
        core: usize,
        latency: f64,
    ) -> f64 {
        let stall = self.cfg.cache.stall_cycles_per_inst(memory, latency);
        task.cycles / self.cfg.core_speeds[core] + task.instructions * stall
    }

    /// Replays `workload` and reports the observables.
    pub fn run(&self, workload: &AppWorkload) -> ExecutionReport {
        self.run_traced(workload).0
    }

    /// Like [`Executor::run`], but also records the full schedule as a
    /// [`Timeline`] (per-core busy spans for Gantt-style inspection).
    pub fn run_traced(&self, workload: &AppWorkload) -> (ExecutionReport, Timeline) {
        let _span = telemetry::span_labeled("phoenix.exec", workload.name);
        let n = self.cfg.cores;
        let lat = self.cfg.remote_l2_latency;
        let mut phases = PhaseBreakdown::default();
        let mut busy = vec![0.0f64; n];
        let mut map_flits = vec![0.0f64; n * n];
        let mut reduce_flits = vec![0.0f64; n * n];
        let mut merge_flits = vec![0.0f64; n * n];
        let mut steals = 0u64;
        let mut tasks_per_core = vec![0u32; n];
        let mut timeline = Timeline::new(n);
        let mut clock = 0.0f64;

        for it in &workload.iterations {
            // --- Library init (serial, on the master core) ---
            let master = self.cfg.master_core;
            let li_task =
                TaskWork::new(workload.lib_init_cycles, workload.lib_init_instructions, 0);
            let li = self.task_duration(&li_task, &it.map_memory, master, lat.lib_init);
            busy[master] += li;
            phases.lib_init += li;
            timeline.push(Span {
                core: master,
                phase: PhaseKind::LibraryInit,
                start: clock,
                end: clock + li,
                stolen: false,
            });
            clock += li;

            // --- Map ---
            let map = self.run_phase(&it.map_tasks, &it.map_memory, lat.map);
            phases.map += map.duration;
            for &(core, start, end, stolen) in &map.spans {
                timeline.push(Span {
                    core,
                    phase: PhaseKind::Map,
                    start: clock + start,
                    end: clock + end,
                    stolen,
                });
            }
            clock += map.duration;
            for (t, &c) in map.executed_by.iter().enumerate() {
                let dur = self.task_duration(&it.map_tasks[t], &it.map_memory, c, lat.map);
                busy[c] += dur;
                tasks_per_core[c] += 1;
            }
            steals += map.steals;
            self.account_memory_flits(
                &mut map_flits,
                &it.map_tasks,
                &map.executed_by,
                &it.map_memory,
                it.neighbor_bias,
            );

            // --- Reduce ---
            let red = self.run_phase(&it.reduce_tasks, &it.reduce_memory, lat.reduce);
            phases.reduce += red.duration;
            for &(core, start, end, stolen) in &red.spans {
                timeline.push(Span {
                    core,
                    phase: PhaseKind::Reduce,
                    start: clock + start,
                    end: clock + end,
                    stolen,
                });
            }
            clock += red.duration;
            for (t, &c) in red.executed_by.iter().enumerate() {
                let dur = self.task_duration(&it.reduce_tasks[t], &it.reduce_memory, c, lat.reduce);
                busy[c] += dur;
                tasks_per_core[c] += 1;
            }
            steals += red.steals;
            self.account_memory_flits(
                &mut reduce_flits,
                &it.reduce_tasks,
                &red.executed_by,
                &it.reduce_memory,
                it.neighbor_bias,
            );

            // --- Shuffle traffic: map cores → reduce cores, keys spread
            //     uniformly over buckets by hashing. In shared-memory
            //     Phoenix++ the transfer is cache-mediated: producers write
            //     container buckets back during Map and consumers fetch
            //     them during Reduce, so the flits split between the two
            //     windows instead of bursting into the (short) Reduce. ---
            if !it.reduce_tasks.is_empty() {
                let r = it.reduce_tasks.len() as f64;
                for (t, &c_m) in map.executed_by.iter().enumerate() {
                    let keys = it.map_tasks[t].keys_emitted as f64;
                    if keys == 0.0 {
                        continue;
                    }
                    let per_bucket = keys * it.kv_flits_per_key / r / 2.0;
                    for (b, &c_r) in red.executed_by.iter().enumerate() {
                        let _ = b;
                        if c_m != c_r {
                            map_flits[c_m * n + c_r] += per_bucket;
                            reduce_flits[c_m * n + c_r] += per_bucket;
                        }
                    }
                }
            }

            // --- Merge: binary tree, active threads halve per level. After
            //     the hash-partitioned Reduce, each of the n partitions
            //     holds ~total_items/n keys; a merger at level l therefore
            //     combines two partitions of total_items·2^l/n keys each,
            //     so the critical path is ~2·total_items·cycles_per_item
            //     while early levels stay cheap and wide. ---
            if let Some(merge) = it.merge {
                let levels = (n as f64).log2().ceil() as u32;
                for l in 0..levels {
                    let stride = 1usize << (l + 1);
                    let half = 1usize << l;
                    let partition_items = merge.total_items * (1usize << l) as f64 / n as f64;
                    let merged_items = 2.0 * partition_items;
                    let mtask = TaskWork::new(
                        merged_items * merge.cycles_per_item,
                        merged_items * merge.instructions_per_item,
                        0,
                    );
                    let mut level_time = 0.0f64;
                    let mut merger = 0usize;
                    while merger < n {
                        let partner = merger + half;
                        if partner < n {
                            let dur =
                                self.task_duration(&mtask, &it.reduce_memory, merger, lat.merge);
                            busy[merger] += dur;
                            timeline.push(Span {
                                core: merger,
                                phase: PhaseKind::Merge,
                                start: clock,
                                end: clock + dur,
                                stolen: false,
                            });
                            level_time = level_time.max(dur);
                            // Partner ships its partition to the merger.
                            merge_flits[partner * n + merger] +=
                                partition_items * merge.flits_per_item;
                        }
                        merger += stride;
                    }
                    phases.merge += level_time;
                    clock += level_time;
                }
            }
        }

        let total = phases.total().max(1e-9);
        let utilization: Vec<f64> = busy.iter().map(|&b| (b / total).min(1.0)).collect();

        // Convert flit counts to packets per reference cycle: stage rates
        // are relative to each stage's own duration, the aggregate to the
        // whole execution.
        let packet_flits = 4.0; // matches the NoC simulator's default packet length
        let to_matrix = |flits: &[f64], cycles: f64| -> TrafficMatrix {
            let mut m = TrafficMatrix::zeros(n);
            if cycles <= 0.0 {
                return m;
            }
            for s in 0..n {
                for d in 0..n {
                    if s != d && flits[s * n + d] > 0.0 {
                        m.set(
                            NodeId(s),
                            NodeId(d),
                            flits[s * n + d] / packet_flits / cycles,
                        );
                    }
                }
            }
            m
        };
        let total_flits: Vec<f64> = (0..n * n)
            .map(|i| map_flits[i] + reduce_flits[i] + merge_flits[i])
            .collect();
        let traffic = to_matrix(&total_flits, total);
        let phase_traffic = PhaseTraffic {
            map: to_matrix(&map_flits, phases.map),
            reduce: to_matrix(&reduce_flits, phases.reduce),
            merge: to_matrix(&merge_flits, phases.merge),
        };

        telemetry::count(
            "phoenix.tasks_executed",
            tasks_per_core.iter().map(|&t| u64::from(t)).sum(),
        );
        telemetry::count("phoenix.tasks_stolen", steals);
        (
            ExecutionReport {
                name: workload.name,
                phases,
                busy_cycles: busy,
                utilization,
                traffic,
                phase_traffic,
                steals,
                tasks_per_core,
            },
            timeline,
        )
    }

    /// Distributes the memory traffic of executed tasks: requests to home L2
    /// slices and line-sized replies back, with a neighbour-locality bias.
    fn account_memory_flits(
        &self,
        flits: &mut [f64],
        tasks: &[TaskWork],
        executed_by: &[usize],
        memory: &MemoryProfile,
        neighbor_bias: f64,
    ) {
        let n = self.cfg.cores;
        if n < 2 {
            return;
        }
        let line_flits = self.cfg.cache.line_flits() as f64;
        const NEIGHBORHOOD: isize = 4;
        for (t, &c) in executed_by.iter().enumerate() {
            let accesses = tasks[t].instructions
                * (memory.l1_mpki / 1000.0)
                * memory.remote_fraction
                * self.cfg.cache.network_fraction;
            if accesses <= 0.0 {
                continue;
            }
            let req = accesses; // 1 flit per request
            let rep = accesses * line_flits;
            // Neighbour share: split over up to 2*NEIGHBORHOOD nearby cores.
            let mut neighbors: Vec<usize> = Vec::new();
            for off in 1..=NEIGHBORHOOD {
                let lo = c as isize - off;
                let hi = c as isize + off;
                if lo >= 0 {
                    neighbors.push(lo as usize);
                }
                if (hi as usize) < n {
                    neighbors.push(hi as usize);
                }
            }
            if !neighbors.is_empty() {
                let share = neighbor_bias / neighbors.len() as f64;
                for &d in &neighbors {
                    flits[c * n + d] += req * share;
                    flits[d * n + c] += rep * share;
                }
            }
            let uniform = (1.0 - neighbor_bias) / (n - 1) as f64;
            for d in 0..n {
                if d != c {
                    flits[c * n + d] += req * uniform;
                    flits[d * n + c] += rep * uniform;
                }
            }
        }
    }

    /// Event-driven scheduling of one task-parallel phase.
    fn run_phase(&self, tasks: &[TaskWork], memory: &MemoryProfile, latency: f64) -> PhaseOutcome {
        let n = self.cfg.cores;
        let mut executed_by = vec![usize::MAX; tasks.len()];
        if tasks.is_empty() {
            return PhaseOutcome {
                duration: 0.0,
                executed_by,
                steals: 0,
                spans: Vec::new(),
            };
        }

        // Round-robin initial assignment (Phoenix chunk distribution).
        let mut queues: Vec<VecDeque<usize>> = vec![VecDeque::new(); n];
        for t in 0..tasks.len() {
            queues[t % n].push_back(t);
        }
        let mut caps = caps_for_phase(self.cfg.steal_policy, tasks.len(), &self.cfg.core_speeds);
        let mut done = vec![0usize; n];
        let mut queued = tasks.len();
        let mut steals = 0u64;
        let mut phase_end = 0.0f64;
        let mut spans: Vec<(usize, f64, f64, bool)> = Vec::with_capacity(tasks.len());

        #[derive(Debug, Clone, Copy)]
        struct Completion {
            core: usize,
        }

        let mut events: EventQueue<Completion> = EventQueue::new();
        let mut idle: Vec<bool> = vec![false; n];

        // Pick the next task for `core`: own queue first, else steal from
        // the most-loaded victim. Returns (task, stolen).
        let next_task = |queues: &mut Vec<VecDeque<usize>>, core: usize| -> Option<(usize, bool)> {
            if let Some(t) = queues[core].pop_front() {
                return Some((t, false));
            }
            let victim = (0..queues.len())
                .filter(|&v| v != core && !queues[v].is_empty())
                .max_by_key(|&v| (queues[v].len(), usize::MAX - v));
            victim.map(|v| (queues[v].pop_back().expect("victim queue nonempty"), true))
        };

        // Start as many cores as possible at t = 0.
        let start_core = |core: usize,
                          now: f64,
                          queues: &mut Vec<VecDeque<usize>>,
                          events: &mut EventQueue<Completion>,
                          executed_by: &mut Vec<usize>,
                          done: &mut Vec<usize>,
                          queued: &mut usize,
                          steals: &mut u64,
                          idle: &mut Vec<bool>,
                          caps: &[usize],
                          spans: &mut Vec<(usize, f64, f64, bool)>| {
            if done[core] >= caps[core] {
                idle[core] = true;
                return;
            }
            match next_task(queues, core) {
                Some((t, stolen)) => {
                    let mut dur = self.task_duration(&tasks[t], memory, core, latency);
                    if stolen {
                        dur += self.cfg.steal_overhead_cycles / self.cfg.core_speeds[core];
                        *steals += 1;
                    }
                    executed_by[t] = core;
                    done[core] += 1;
                    *queued -= 1;
                    events.push(now + dur, Completion { core });
                    spans.push((core, now, now + dur, stolen));
                    idle[core] = false;
                }
                None => {
                    idle[core] = true;
                }
            }
        };

        for core in 0..n {
            start_core(
                core,
                0.0,
                &mut queues,
                &mut events,
                &mut executed_by,
                &mut done,
                &mut queued,
                &mut steals,
                &mut idle,
                &caps,
                &mut spans,
            );
        }

        loop {
            while let Some((now, ev)) = events.pop() {
                phase_end = phase_end.max(now);
                // The finishing core tries to pick up more work.
                start_core(
                    ev.core,
                    now,
                    &mut queues,
                    &mut events,
                    &mut executed_by,
                    &mut done,
                    &mut queued,
                    &mut steals,
                    &mut idle,
                    &caps,
                    &mut spans,
                );
                // Any idle core may now find stealable work (e.g. a capped
                // core's leftovers became the only queue with tasks).
                if queued > 0 {
                    for core in 0..n {
                        if idle[core] && done[core] < caps[core] {
                            start_core(
                                core,
                                now,
                                &mut queues,
                                &mut events,
                                &mut executed_by,
                                &mut done,
                                &mut queued,
                                &mut steals,
                                &mut idle,
                                &caps,
                                &mut spans,
                            );
                        }
                    }
                }
            }
            if queued == 0 {
                break;
            }
            // Every core hit its cap while tasks remain (possible only when
            // no core runs at f_max): lift the caps and resume.
            caps.fill(usize::MAX);
            for core in 0..n {
                start_core(
                    core,
                    phase_end,
                    &mut queues,
                    &mut events,
                    &mut executed_by,
                    &mut done,
                    &mut queued,
                    &mut steals,
                    &mut idle,
                    &caps,
                    &mut spans,
                );
            }
        }

        debug_assert!(executed_by.iter().all(|&c| c != usize::MAX));
        PhaseOutcome {
            duration: phase_end,
            executed_by,
            steals,
            spans,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::{IterationWorkload, MergeSpec};

    fn simple_workload(tasks: usize, cycles: f64) -> AppWorkload {
        AppWorkload {
            name: "test",
            lib_init_cycles: 1_000.0,
            lib_init_instructions: 500.0,
            iterations: vec![IterationWorkload {
                map_tasks: vec![TaskWork::new(cycles, cycles / 2.0, 10); tasks],
                reduce_tasks: vec![TaskWork::new(cycles / 10.0, cycles / 20.0, 0); 8],
                merge: Some(MergeSpec {
                    total_items: 100.0,
                    cycles_per_item: 5.0,
                    instructions_per_item: 2.0,
                    flits_per_item: 4.0,
                }),
                map_memory: MemoryProfile::new(10.0, 0.05, 0.9),
                reduce_memory: MemoryProfile::new(5.0, 0.05, 0.9),
                kv_flits_per_key: 4.0,
                neighbor_bias: 0.1,
            }],
            digest: 42,
        }
    }

    #[test]
    fn all_tasks_execute_exactly_once() {
        let exec = Executor::new(RuntimeConfig::nvfi(8));
        let report = exec.run(&simple_workload(37, 10_000.0));
        assert_eq!(
            report
                .tasks_per_core
                .iter()
                .map(|&t| t as usize)
                .sum::<usize>(),
            37 + 8
        );
    }

    #[test]
    fn balanced_tasks_give_homogeneous_utilization() {
        let exec = Executor::new(RuntimeConfig::nvfi(8));
        let report = exec.run(&simple_workload(64, 50_000.0));
        let u = &report.utilization;
        let max = u.iter().cloned().fold(0.0, f64::max);
        let min = u.iter().cloned().fold(1.0, f64::min);
        assert!(max - min < 0.3, "utilization spread too wide: {u:?}");
        assert!(report.avg_utilization() > 0.5);
    }

    #[test]
    fn master_core_is_busiest_with_long_lib_init() {
        let mut w = simple_workload(64, 10_000.0);
        w.lib_init_cycles = 200_000.0;
        let exec = Executor::new(RuntimeConfig::nvfi(8));
        let report = exec.run(&w);
        let master_u = report.utilization[0];
        assert!(
            report.utilization.iter().skip(1).all(|&u| u < master_u),
            "master must be the bottleneck: {:?}",
            report.utilization
        );
    }

    #[test]
    fn slower_cores_stretch_execution() {
        let w = simple_workload(64, 50_000.0);
        let fast = Executor::new(RuntimeConfig::nvfi(8)).run(&w);
        let slow = Executor::new(RuntimeConfig::nvfi(8).with_speeds(vec![0.6; 8])).run(&w);
        let ratio = slow.total_cycles() / fast.total_cycles();
        assert!(
            ratio > 1.3 && ratio < 1.8,
            "expected ~1/0.6 stretch, got {ratio}"
        );
    }

    #[test]
    fn stealing_happens_with_imbalanced_work() {
        // One heavy task among light ones forces idle cores to steal.
        let mut w = simple_workload(16, 1_000.0);
        w.iterations[0].map_tasks[0] = TaskWork::new(500_000.0, 1_000.0, 10);
        let exec = Executor::new(RuntimeConfig::nvfi(8));
        let report = exec.run(&w);
        assert!(report.steals > 0);
    }

    #[test]
    fn vfi_capped_reduces_slow_core_tasks() {
        // The paper's Section 4.3 pathology in miniature: a slow core that
        // finishes its short initial task early would, under default
        // stealing, pick up the long tail task and stretch the phase; the
        // Eq. (3) cap leaves that task for the fast core.
        let speeds = vec![0.8, 1.0];
        let mut w = simple_workload(3, 0.0);
        w.iterations[0].map_tasks = vec![
            TaskWork::new(100_000.0, 0.0, 10), // short, on the slow core
            TaskWork::new(200_000.0, 0.0, 10), // on the fast core
            TaskWork::new(400_000.0, 0.0, 10), // tail task, queued at core 0
        ];
        w.iterations[0].reduce_tasks.clear();
        w.iterations[0].merge = None;
        let default_run = Executor::new(
            RuntimeConfig::nvfi(2)
                .with_speeds(speeds.clone())
                .with_steal_policy(StealPolicy::Default),
        )
        .run(&w);
        let capped_run = Executor::new(
            RuntimeConfig::nvfi(2)
                .with_speeds(speeds)
                .with_steal_policy(StealPolicy::VfiCapped),
        )
        .run(&w);
        let slow_default: u32 = default_run.tasks_per_core[..1].iter().sum();
        let slow_capped: u32 = capped_run.tasks_per_core[..1].iter().sum();
        assert!(
            slow_capped < slow_default,
            "cap must shift work to fast cores ({slow_capped} vs {slow_default})"
        );
        // In this regime the modified policy must be strictly faster.
        assert!(
            capped_run.phases.map < default_run.phases.map,
            "capped {} vs default {}",
            capped_run.phases.map,
            default_run.phases.map
        );
    }

    #[test]
    fn all_slow_cores_still_complete() {
        // No core at f_max: caps must be lifted rather than deadlock.
        let w = simple_workload(32, 10_000.0);
        let exec = Executor::new(
            RuntimeConfig::nvfi(4)
                .with_speeds(vec![0.8, 0.8, 0.6, 0.6])
                .with_steal_policy(StealPolicy::VfiCapped),
        );
        let report = exec.run(&w);
        assert_eq!(
            report
                .tasks_per_core
                .iter()
                .map(|&t| t as usize)
                .sum::<usize>(),
            32 + 8
        );
    }

    #[test]
    fn higher_network_latency_stretches_execution() {
        let w = simple_workload(64, 20_000.0);
        let near = Executor::new(RuntimeConfig::nvfi(8).with_remote_latency(20.0)).run(&w);
        let far = Executor::new(RuntimeConfig::nvfi(8).with_remote_latency(200.0)).run(&w);
        assert!(far.total_cycles() > near.total_cycles());
    }

    #[test]
    fn traffic_matrix_is_populated() {
        let exec = Executor::new(RuntimeConfig::nvfi(8));
        let report = exec.run(&simple_workload(64, 20_000.0));
        assert!(report.traffic.total_rate() > 0.0);
        // Diagonal stays empty.
        for i in 0..8 {
            assert_eq!(report.traffic.rate(NodeId(i), NodeId(i)), 0.0);
        }
    }

    #[test]
    fn neighbor_bias_concentrates_traffic() {
        let mut w = simple_workload(64, 20_000.0);
        w.iterations[0].neighbor_bias = 0.0;
        let uniform = Executor::new(RuntimeConfig::nvfi(8)).run(&w);
        w.iterations[0].neighbor_bias = 0.9;
        let local = Executor::new(RuntimeConfig::nvfi(8)).run(&w);
        // Traffic between cores 0 and 1 (adjacent) grows with bias.
        assert!(
            local.traffic.rate(NodeId(0), NodeId(1)) > uniform.traffic.rate(NodeId(0), NodeId(1))
        );
    }

    #[test]
    fn deterministic_execution() {
        let w = simple_workload(50, 30_000.0);
        let a = Executor::new(RuntimeConfig::nvfi(8)).run(&w);
        let b = Executor::new(RuntimeConfig::nvfi(8)).run(&w);
        assert_eq!(a, b);
    }

    #[test]
    fn merge_busy_lands_on_tree_mergers() {
        let exec = Executor::new(RuntimeConfig::nvfi(8));
        let report = exec.run(&simple_workload(8, 1_000.0));
        // Core 0 merges at every level; core 1 never merges.
        assert!(report.busy_cycles[0] > report.busy_cycles[1]);
        assert!(report.phases.merge > 0.0);
    }

    #[test]
    fn timeline_is_consistent_with_report() {
        let w = simple_workload(40, 20_000.0);
        let exec = Executor::new(RuntimeConfig::nvfi(8));
        let (report, timeline) = exec.run_traced(&w);
        // The schedule's makespan is the reported execution time.
        assert!(
            (timeline.makespan() - report.total_cycles()).abs() < 1e-6 * report.total_cycles(),
            "makespan {} vs total {}",
            timeline.makespan(),
            report.total_cycles()
        );
        // Per-core busy agrees with the report.
        for core in 0..8 {
            assert!(
                (timeline.busy(core) - report.busy_cycles[core]).abs()
                    < 1e-6 * report.busy_cycles[core].max(1.0),
                "core {core}"
            );
        }
        // Steal spans match the steal counter.
        assert_eq!(timeline.steals() as u64, report.steals);
        // Stage totals are all represented.
        use crate::task::PhaseKind;
        assert!(timeline.stage_busy(PhaseKind::Map) > 0.0);
        assert!(timeline.stage_busy(PhaseKind::LibraryInit) > 0.0);
    }

    #[test]
    fn empty_iteration_zero_cost_phases() {
        let w = AppWorkload {
            name: "empty",
            lib_init_cycles: 100.0,
            lib_init_instructions: 0.0,
            iterations: vec![IterationWorkload {
                map_tasks: vec![],
                reduce_tasks: vec![],
                merge: None,
                map_memory: MemoryProfile::new(0.0, 0.0, 0.0),
                reduce_memory: MemoryProfile::new(0.0, 0.0, 0.0),
                kv_flits_per_key: 0.0,
                neighbor_bias: 0.0,
            }],
            digest: 0,
        };
        let report = Executor::new(RuntimeConfig::nvfi(4)).run(&w);
        assert_eq!(report.phases.map, 0.0);
        assert_eq!(report.phases.reduce, 0.0);
        assert_eq!(report.phases.merge, 0.0);
        assert!(report.phases.lib_init > 0.0);
    }
}

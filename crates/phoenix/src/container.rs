//! Phoenix++-style combiner containers.
//!
//! Phoenix++'s key innovation over the original Phoenix is *containers with
//! combiners*: map workers fold values into a per-worker container as they
//! are emitted, so the intermediate state stays small. Two container shapes
//! cover the six applications:
//!
//! * [`HashContainer`] — open key space (Word Count's words, PCA's
//!   covariance coordinates);
//! * [`ArrayContainer`] — small dense key space known in advance
//!   (Histogram's 768 colour bins, Kmeans' cluster ids).

use std::collections::HashMap;
use std::hash::Hash;

/// Fold-in combination of values under one key (Phoenix++ `sum_combiner`
/// generalised).
pub trait Combine: Sized {
    /// Folds `other` into `self`.
    fn combine(&mut self, other: Self);
}

impl Combine for u64 {
    fn combine(&mut self, other: Self) {
        *self += other;
    }
}

impl Combine for f64 {
    fn combine(&mut self, other: Self) {
        *self += other;
    }
}

/// A hash-based combiner container for open key spaces.
///
/// # Examples
///
/// ```
/// use mapwave_phoenix::container::HashContainer;
///
/// let mut c: HashContainer<&str, u64> = HashContainer::new();
/// c.emit("the", 1);
/// c.emit("cat", 1);
/// c.emit("the", 1);
/// assert_eq!(c.get(&"the"), Some(&2));
/// assert_eq!(c.len(), 2);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct HashContainer<K: Eq + Hash, V: Combine> {
    map: HashMap<K, V>,
}

impl<K: Eq + Hash, V: Combine> HashContainer<K, V> {
    /// An empty container.
    pub fn new() -> Self {
        HashContainer {
            map: HashMap::new(),
        }
    }

    /// Emits a (key, value) pair, combining with any existing value.
    pub fn emit(&mut self, key: K, value: V) {
        match self.map.entry(key) {
            std::collections::hash_map::Entry::Occupied(mut e) => e.get_mut().combine(value),
            std::collections::hash_map::Entry::Vacant(e) => {
                e.insert(value);
            }
        }
    }

    /// Merges another container into this one (the reduce/merge step).
    pub fn merge(&mut self, other: HashContainer<K, V>) {
        for (k, v) in other.map {
            self.emit(k, v);
        }
    }

    /// Number of distinct keys.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether no keys were emitted.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Combined value of `key`, if present.
    pub fn get(&self, key: &K) -> Option<&V> {
        self.map.get(key)
    }

    /// Consumes the container into its key–value pairs (unordered).
    pub fn into_pairs(self) -> Vec<(K, V)> {
        self.map.into_iter().collect()
    }

    /// Iterates over key–value pairs (unordered).
    pub fn iter(&self) -> impl Iterator<Item = (&K, &V)> {
        self.map.iter()
    }
}

impl<K: Eq + Hash, V: Combine> Default for HashContainer<K, V> {
    fn default() -> Self {
        HashContainer::new()
    }
}

impl<K: Eq + Hash, V: Combine> FromIterator<(K, V)> for HashContainer<K, V> {
    fn from_iter<I: IntoIterator<Item = (K, V)>>(iter: I) -> Self {
        let mut c = HashContainer::new();
        for (k, v) in iter {
            c.emit(k, v);
        }
        c
    }
}

/// A dense-array combiner container for small fixed key spaces.
///
/// # Examples
///
/// ```
/// use mapwave_phoenix::container::ArrayContainer;
///
/// let mut c: ArrayContainer<u64> = ArrayContainer::new(4);
/// c.emit(1, 5);
/// c.emit(1, 2);
/// c.emit(3, 1);
/// assert_eq!(c.slots(), &[0, 7, 0, 1]);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ArrayContainer<V: Combine + Default + Clone> {
    slots: Vec<V>,
}

impl<V: Combine + Default + Clone> ArrayContainer<V> {
    /// A container over keys `0..keys`.
    pub fn new(keys: usize) -> Self {
        ArrayContainer {
            slots: vec![V::default(); keys],
        }
    }

    /// Emits a (key, value) pair.
    ///
    /// # Panics
    ///
    /// Panics if `key` is out of range.
    pub fn emit(&mut self, key: usize, value: V) {
        self.slots[key].combine(value);
    }

    /// Merges another container of the same key space.
    ///
    /// # Panics
    ///
    /// Panics if the key spaces differ.
    pub fn merge(&mut self, other: ArrayContainer<V>) {
        assert_eq!(self.slots.len(), other.slots.len(), "key spaces must match");
        for (s, o) in self.slots.iter_mut().zip(other.slots) {
            s.combine(o);
        }
    }

    /// Number of keys (slots).
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Whether the container has no slots.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// The combined values.
    pub fn slots(&self) -> &[V] {
        &self.slots
    }

    /// Consumes the container into its slot values.
    pub fn into_slots(self) -> Vec<V> {
        self.slots
    }
}

/// Phoenix++'s third container shape: a **common array** shared by all
/// workers, with per-key atomic-add semantics modelled as direct
/// accumulation (the runtime model is single-threaded and deterministic).
/// It fits workloads whose key space is dense and whose combiner is
/// commutative — Histogram uses it at large worker counts, where
/// per-worker [`ArrayContainer`]s would multiply the merge work.
///
/// # Examples
///
/// ```
/// use mapwave_phoenix::container::CommonArrayContainer;
///
/// let mut c: CommonArrayContainer<u64> = CommonArrayContainer::new(4);
/// c.emit(0, 2);
/// c.emit(0, 3);
/// assert_eq!(c.slots()[0], 5);
/// assert_eq!(c.contenders(0), 2);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct CommonArrayContainer<V: Combine + Default + Clone> {
    slots: Vec<V>,
    /// Emissions per key — the contention statistic an atomic-add
    /// implementation would pay for.
    writes: Vec<u64>,
}

impl<V: Combine + Default + Clone> CommonArrayContainer<V> {
    /// A container over keys `0..keys`.
    pub fn new(keys: usize) -> Self {
        CommonArrayContainer {
            slots: vec![V::default(); keys],
            writes: vec![0; keys],
        }
    }

    /// Emits a (key, value) pair.
    ///
    /// # Panics
    ///
    /// Panics if `key` is out of range.
    pub fn emit(&mut self, key: usize, value: V) {
        self.slots[key].combine(value);
        self.writes[key] += 1;
    }

    /// Number of keys (slots).
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Whether the container has no slots.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// The combined values.
    pub fn slots(&self) -> &[V] {
        &self.slots
    }

    /// How many emissions key `key` received (its contention).
    ///
    /// # Panics
    ///
    /// Panics if `key` is out of range.
    pub fn contenders(&self, key: usize) -> u64 {
        self.writes[key]
    }

    /// The most contended key and its write count (`None` when empty).
    pub fn hottest_key(&self) -> Option<(usize, u64)> {
        self.writes
            .iter()
            .copied()
            .enumerate()
            .max_by_key(|&(k, w)| (w, usize::MAX - k))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hash_container_combines() {
        let mut c: HashContainer<u32, u64> = HashContainer::new();
        for i in 0..100 {
            c.emit(i % 10, 1);
        }
        assert_eq!(c.len(), 10);
        assert_eq!(c.get(&3), Some(&10));
    }

    #[test]
    fn hash_container_merge() {
        let a: HashContainer<&str, u64> = [("x", 1u64), ("y", 2)].into_iter().collect();
        let b: HashContainer<&str, u64> = [("y", 3u64), ("z", 4)].into_iter().collect();
        let mut m = a;
        m.merge(b);
        assert_eq!(m.get(&"y"), Some(&5));
        assert_eq!(m.len(), 3);
    }

    #[test]
    fn hash_container_float_values() {
        let mut c: HashContainer<u8, f64> = HashContainer::new();
        c.emit(0, 1.5);
        c.emit(0, 2.5);
        assert_eq!(c.get(&0), Some(&4.0));
    }

    #[test]
    fn array_container_merge() {
        let mut a: ArrayContainer<u64> = ArrayContainer::new(3);
        a.emit(0, 1);
        let mut b: ArrayContainer<u64> = ArrayContainer::new(3);
        b.emit(0, 2);
        b.emit(2, 7);
        a.merge(b);
        assert_eq!(a.slots(), &[3, 0, 7]);
    }

    #[test]
    #[should_panic]
    fn array_container_rejects_out_of_range() {
        let mut a: ArrayContainer<u64> = ArrayContainer::new(2);
        a.emit(2, 1);
    }

    #[test]
    #[should_panic]
    fn array_merge_rejects_mismatched_spaces() {
        let mut a: ArrayContainer<u64> = ArrayContainer::new(2);
        a.merge(ArrayContainer::new(3));
    }

    #[test]
    fn common_array_tracks_contention() {
        let mut c: CommonArrayContainer<u64> = CommonArrayContainer::new(3);
        for _ in 0..5 {
            c.emit(1, 2);
        }
        c.emit(2, 7);
        assert_eq!(c.slots(), &[0, 10, 7]);
        assert_eq!(c.contenders(1), 5);
        assert_eq!(c.hottest_key(), Some((1, 5)));
        assert_eq!(c.len(), 3);
    }

    #[test]
    fn common_array_empty() {
        let c: CommonArrayContainer<u64> = CommonArrayContainer::new(0);
        assert!(c.is_empty());
        assert_eq!(c.hottest_key(), None);
    }

    #[test]
    fn into_pairs_roundtrip() {
        let c: HashContainer<u8, u64> = [(1u8, 10u64), (2, 20)].into_iter().collect();
        let mut pairs = c.into_pairs();
        pairs.sort();
        assert_eq!(pairs, vec![(1, 10), (2, 20)]);
    }
}

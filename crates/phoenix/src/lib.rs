//! # mapwave-phoenix
//!
//! A Phoenix++-style MapReduce runtime **model** with six instrumented,
//! really-computing applications — the workload half of the DAC'15
//! reproduction.
//!
//! * [`apps`] — Histogram, Kmeans, Linear Regression, Matrix
//!   Multiplication, PCA and Word Count over synthetically generated inputs
//!   of the paper's Table-1 sizes (scalable); every run computes the real
//!   result and records per-task costs;
//! * [`runtime`] — the event-driven executor: Split/Map/Reduce/Merge
//!   stages, library init on the master core, task stealing;
//! * [`stealing`] — the default and the VFI-capped (Eq. 3) steal policies;
//! * [`container`] — Phoenix++ combiner containers;
//! * [`workload`] — workload and execution-report types.
//!
//! ## Quick start
//!
//! ```
//! use mapwave_phoenix::prelude::*;
//!
//! // Profile Word Count at 0.2% of the paper's input on a 64-core NVFI
//! // platform.
//! let workload = App::WordCount.workload(0.002, 42, 64);
//! let report = Executor::new(RuntimeConfig::nvfi(64)).run(&workload);
//! assert!(report.total_cycles() > 0.0);
//! assert_eq!(report.utilization.len(), 64);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod apps;
pub mod container;
pub mod runtime;
pub mod stealing;
pub mod task;
pub mod timeline;
pub mod workload;

pub use apps::App;
pub use runtime::{ExecScratch, Executor, PhoenixFaults, RuntimeConfig};
pub use stealing::{task_cap, StealPolicy};
pub use task::{PhaseKind, TaskWork};
pub use timeline::{Span, Timeline};
pub use workload::{AppWorkload, ExecutionReport, IterationWorkload, MergeSpec, PhaseBreakdown};

/// Convenient glob import.
pub mod prelude {
    pub use crate::apps::App;
    pub use crate::runtime::{Executor, RuntimeConfig};
    pub use crate::stealing::StealPolicy;
    pub use crate::task::TaskWork;
    pub use crate::workload::{AppWorkload, ExecutionReport, PhaseBreakdown};
}

//! Tasks: the schedulable work units of the Phoenix++ runtime model.

use std::fmt;

/// Which execution stage a task belongs to (paper Fig. 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PhaseKind {
    /// Library initialisation: serial scheduler/storage setup on the master
    /// core, once per MapReduce iteration.
    LibraryInit,
    /// Map: per-chunk processing emitting intermediate (key, value) pairs.
    Map,
    /// Reduce: combining all values of each key.
    Reduce,
    /// Merge: the log-tree combination of reduced partitions.
    Merge,
}

impl fmt::Display for PhaseKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            PhaseKind::LibraryInit => "lib-init",
            PhaseKind::Map => "map",
            PhaseKind::Reduce => "reduce",
            PhaseKind::Merge => "merge",
        };
        f.write_str(s)
    }
}

/// The modelled cost of one task, measured while the application really
/// executed its computation over the (synthetic) input.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TaskWork {
    /// Compute cycles at the reference (maximum) clock.
    pub cycles: f64,
    /// Committed instructions (drives the cache/stall and traffic models).
    pub instructions: f64,
    /// Intermediate keys emitted (drives reduce-phase communication).
    pub keys_emitted: usize,
}

impl TaskWork {
    /// Creates a task-work record.
    ///
    /// # Panics
    ///
    /// Panics if cycles or instructions are negative or non-finite.
    pub fn new(cycles: f64, instructions: f64, keys_emitted: usize) -> Self {
        assert!(
            cycles >= 0.0 && cycles.is_finite(),
            "cycles must be nonnegative"
        );
        assert!(
            instructions >= 0.0 && instructions.is_finite(),
            "instructions must be nonnegative"
        );
        TaskWork {
            cycles,
            instructions,
            keys_emitted,
        }
    }

    /// A zero-cost task (useful as a neutral element).
    pub fn zero() -> Self {
        TaskWork {
            cycles: 0.0,
            instructions: 0.0,
            keys_emitted: 0,
        }
    }

    /// Sums two work records (e.g. when fusing tasks).
    pub fn merged(self, other: TaskWork) -> TaskWork {
        TaskWork {
            cycles: self.cycles + other.cycles,
            instructions: self.instructions + other.instructions,
            keys_emitted: self.keys_emitted + other.keys_emitted,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merged_sums_fields() {
        let a = TaskWork::new(100.0, 50.0, 3);
        let b = TaskWork::new(200.0, 25.0, 4);
        let m = a.merged(b);
        assert_eq!(m.cycles, 300.0);
        assert_eq!(m.instructions, 75.0);
        assert_eq!(m.keys_emitted, 7);
    }

    #[test]
    fn zero_is_neutral() {
        let a = TaskWork::new(10.0, 5.0, 1);
        assert_eq!(a.merged(TaskWork::zero()), a);
    }

    #[test]
    #[should_panic]
    fn rejects_negative_cycles() {
        let _ = TaskWork::new(-1.0, 0.0, 0);
    }

    #[test]
    fn phase_kind_display() {
        assert_eq!(PhaseKind::LibraryInit.to_string(), "lib-init");
        assert_eq!(PhaseKind::Map.to_string(), "map");
        assert_eq!(PhaseKind::Reduce.to_string(), "reduce");
        assert_eq!(PhaseKind::Merge.to_string(), "merge");
    }
}

//! Bit-level equivalence of the optimized phase scheduler against the
//! in-tree reference implementation.
//!
//! The optimized execution-model kernels (indexed steal structure, elided
//! idle rescans, span-sink tracing, scratch reuse, hoisted traffic
//! accounting) are required to reproduce the pre-optimization scheduler —
//! kept verbatim as `Executor::run_traced_reference` — *bit for bit*:
//! every `f64` in the `ExecutionReport` (phase durations, per-core busy
//! cycles, utilization), every `TrafficMatrix` rate (aggregate and
//! per-stage), every `Timeline` span boundary, and every integer counter
//! (steals, per-core task counts) must match on `to_bits()`, not merely
//! within a tolerance. Any drift means an optimization changed the
//! computation rather than just its cost.

use mapwave_faults::{FaultConfig, FaultPlan};
use mapwave_manycore::cache::MemoryProfile;
use mapwave_noc::NodeId;
use mapwave_phoenix::apps::App;
use mapwave_phoenix::runtime::{ExecScratch, Executor, PhoenixFaults, RuntimeConfig};
use mapwave_phoenix::stealing::StealPolicy;
use mapwave_phoenix::task::TaskWork;
use mapwave_phoenix::workload::{AppWorkload, ExecutionReport, IterationWorkload, PhaseLatencies};
use mapwave_phoenix::Timeline;

/// Asserts two reports match on every bit of every observable.
fn assert_reports_bit_identical(a: &ExecutionReport, b: &ExecutionReport, what: &str) {
    assert_eq!(a.name, b.name, "{what}: name");
    for (label, x, y) in [
        ("lib_init", a.phases.lib_init, b.phases.lib_init),
        ("map", a.phases.map, b.phases.map),
        ("reduce", a.phases.reduce, b.phases.reduce),
        ("merge", a.phases.merge, b.phases.merge),
    ] {
        assert_eq!(x.to_bits(), y.to_bits(), "{what}: phases.{label}");
    }
    assert_eq!(a.steals, b.steals, "{what}: steals");
    assert_eq!(a.tasks_per_core, b.tasks_per_core, "{what}: tasks_per_core");
    let n = a.busy_cycles.len();
    assert_eq!(n, b.busy_cycles.len(), "{what}: core count");
    for c in 0..n {
        assert_eq!(
            a.busy_cycles[c].to_bits(),
            b.busy_cycles[c].to_bits(),
            "{what}: busy_cycles[{c}]"
        );
        assert_eq!(
            a.utilization[c].to_bits(),
            b.utilization[c].to_bits(),
            "{what}: utilization[{c}]"
        );
    }
    let matrices = [
        ("traffic", &a.traffic, &b.traffic),
        (
            "phase_traffic.map",
            &a.phase_traffic.map,
            &b.phase_traffic.map,
        ),
        (
            "phase_traffic.reduce",
            &a.phase_traffic.reduce,
            &b.phase_traffic.reduce,
        ),
        (
            "phase_traffic.merge",
            &a.phase_traffic.merge,
            &b.phase_traffic.merge,
        ),
    ];
    for (label, ma, mb) in matrices {
        for s in 0..n {
            for d in 0..n {
                assert_eq!(
                    ma.rate(NodeId(s), NodeId(d)).to_bits(),
                    mb.rate(NodeId(s), NodeId(d)).to_bits(),
                    "{what}: {label}[{s}→{d}]"
                );
            }
        }
    }
}

/// Asserts two timelines record the same spans with bit-identical bounds.
fn assert_timelines_bit_identical(a: &Timeline, b: &Timeline, what: &str) {
    assert_eq!(a.cores(), b.cores(), "{what}: timeline cores");
    assert_eq!(a.spans().len(), b.spans().len(), "{what}: span count");
    for (i, (x, y)) in a.spans().iter().zip(b.spans()).enumerate() {
        assert_eq!(x.core, y.core, "{what}: span[{i}].core");
        assert_eq!(x.phase, y.phase, "{what}: span[{i}].phase");
        assert_eq!(x.stolen, y.stolen, "{what}: span[{i}].stolen");
        assert_eq!(
            x.start.to_bits(),
            y.start.to_bits(),
            "{what}: span[{i}].start"
        );
        assert_eq!(x.end.to_bits(), y.end.to_bits(), "{what}: span[{i}].end");
    }
}

/// Checks optimized-vs-reference equivalence for one executor/workload
/// pair, on both the traced and untraced paths, under scratch reuse, and
/// through the fault-hooked path with an inert plan (which must be a
/// transparent alias for the unfaulted scheduler, bit for bit).
fn check(exec: &Executor, w: &AppWorkload, scratch: &mut ExecScratch, what: &str) {
    let (ref_report, ref_timeline) = exec.run_traced_reference(w);
    let (opt_report, opt_timeline) = exec.run_traced(w);
    assert_reports_bit_identical(&opt_report, &ref_report, what);
    assert_timelines_bit_identical(&opt_timeline, &ref_timeline, what);
    let untraced = exec.run(w);
    assert_reports_bit_identical(&untraced, &ref_report, &format!("{what} (untraced)"));
    let reused = exec.run_with_scratch(w, scratch);
    assert_reports_bit_identical(&reused, &ref_report, &format!("{what} (scratch reuse)"));
    let mut faults = PhoenixFaults::new(&FaultPlan::none(), exec.config().cores, 0);
    let faulted = exec.run_with_faults(w, scratch, &mut faults);
    assert_reports_bit_identical(&faulted, &ref_report, &format!("{what} (none-plan faults)"));
    assert_eq!(
        *faults.stats(),
        Default::default(),
        "{what}: inert plan must inject nothing"
    );
}

/// Heterogeneous speed vector of `n` cores cycling through the paper's
/// relative operating points.
fn hetero_speeds(n: usize) -> Vec<f64> {
    (0..n).map(|c| [1.0, 0.8, 0.6, 0.9][c % 4]).collect()
}

#[test]
fn apps_match_reference_across_platforms() {
    let apps = [App::WordCount, App::Kmeans, App::Histogram];
    let mut scratch = ExecScratch::new();
    for app in apps {
        let w = app.workload(0.002, 42, 16);
        for (label, cfg) in [
            ("nvfi-16", RuntimeConfig::nvfi(16)),
            (
                "hetero-default-16",
                RuntimeConfig::nvfi(16)
                    .with_speeds(hetero_speeds(16))
                    .with_steal_policy(StealPolicy::Default),
            ),
            (
                "hetero-capped-16",
                RuntimeConfig::nvfi(16)
                    .with_speeds(hetero_speeds(16))
                    .with_steal_policy(StealPolicy::VfiCapped),
            ),
            (
                "all-slow-capped-16",
                RuntimeConfig::nvfi(16)
                    .with_speeds(vec![0.6; 16])
                    .with_steal_policy(StealPolicy::VfiCapped),
            ),
            (
                "hetero-latencies-16",
                RuntimeConfig::nvfi(16)
                    .with_speeds(hetero_speeds(16))
                    .with_steal_policy(StealPolicy::VfiCapped)
                    .with_phase_latencies(PhaseLatencies {
                        lib_init: 25.0,
                        map: 90.0,
                        reduce: 55.0,
                        merge: 140.0,
                    }),
            ),
        ] {
            let exec = Executor::new(cfg);
            check(&exec, &w, &mut scratch, &format!("{app:?}/{label}"));
        }
    }
}

#[test]
fn small_platforms_match_reference() {
    // Fewer cores than tasks-per-phase edge cases, including a 2-core
    // platform (minimal traffic model) and more cores than reduce tasks.
    let w = App::WordCount.workload(0.002, 7, 4);
    let mut scratch = ExecScratch::new();
    for cores in [2usize, 4, 64] {
        let cfg = RuntimeConfig::nvfi(cores)
            .with_speeds(hetero_speeds(cores))
            .with_steal_policy(StealPolicy::VfiCapped);
        check(
            &Executor::new(cfg),
            &w,
            &mut scratch,
            &format!("WordCount/cores-{cores}"),
        );
    }
}

#[test]
fn determinism_across_policies_and_speeds() {
    // Satellite: `run()` and `run_traced().0` must agree for both steal
    // policies across heterogeneous speed vectors.
    let w = App::Kmeans.workload(0.002, 11, 16);
    for policy in [StealPolicy::Default, StealPolicy::VfiCapped] {
        for speeds in [
            vec![1.0; 16],
            hetero_speeds(16),
            (0..16).map(|c| 0.5 + 0.5 * (c as f64 / 15.0)).collect(),
        ] {
            let exec = Executor::new(
                RuntimeConfig::nvfi(16)
                    .with_speeds(speeds.clone())
                    .with_steal_policy(policy),
            );
            let plain = exec.run(&w);
            let (traced, _) = exec.run_traced(&w);
            assert_eq!(
                plain, traced,
                "run/run_traced diverged at policy={policy:?} speeds={speeds:?}"
            );
        }
    }
}

#[test]
fn steal_order_pins_lowest_index_victim_on_ties() {
    // Satellite regression: 8 tasks round-robin over 4 equal-speed cores
    // (two per queue). Cores 2 and 3 get tiny tasks and go hunting while
    // cores 0 and 1 still run their first task with exactly one task left
    // in each queue — a tie on queue length. The reference victim order
    // (`max_by_key(len, usize::MAX - v)`) resolves ties to the *lowest*
    // core index, so core 2's steal must take core 0's task (cycles A),
    // not core 1's (cycles B). The stolen span durations expose which.
    let a_cycles = 2_000_000.0;
    let b_cycles = 1_000_000.0;
    let long = 8_000_000.0;
    let tiny = 10.0;
    let mk = |cycles: f64| TaskWork::new(cycles, 0.0, 0);
    let w = AppWorkload {
        name: "steal-order",
        lib_init_cycles: 0.0,
        lib_init_instructions: 0.0,
        iterations: vec![IterationWorkload {
            map_tasks: vec![
                mk(long),     // t0 → core 0 (runs long)
                mk(long),     // t1 → core 1 (runs long)
                mk(tiny),     // t2 → core 2
                mk(tiny),     // t3 → core 3
                mk(a_cycles), // t4 → core 0's queue, stolen by core 2
                mk(b_cycles), // t5 → core 1's queue, stolen by core 3
                mk(tiny),     // t6 → core 2's queue
                mk(tiny),     // t7 → core 3's queue
            ],
            reduce_tasks: vec![],
            merge: None,
            map_memory: MemoryProfile::new(0.0, 0.0, 0.0),
            reduce_memory: MemoryProfile::new(0.0, 0.0, 0.0),
            kv_flits_per_key: 0.0,
            neighbor_bias: 0.0,
        }],
        digest: 0,
    };
    let exec = Executor::new(RuntimeConfig::nvfi(4));
    let (report, timeline) = exec.run_traced(&w);
    assert_eq!(report.steals, 2);
    assert_eq!(report.tasks_per_core, vec![1, 1, 3, 3]);
    let steal_overhead = exec.config().steal_overhead_cycles;
    let stolen_dur = |core: usize| -> f64 {
        timeline
            .spans()
            .iter()
            .find(|s| s.core == core && s.stolen)
            .unwrap_or_else(|| panic!("core {core} must have a stolen span"))
            .duration()
    };
    // Core 2 stole first and took the tied-length victim with the lowest
    // index (core 0), whose queued task was the A-cycle one.
    assert_eq!(
        stolen_dur(2).to_bits(),
        (a_cycles + steal_overhead).to_bits()
    );
    assert_eq!(
        stolen_dur(3).to_bits(),
        (b_cycles + steal_overhead).to_bits()
    );
    // And the schedule matches the reference scheduler exactly.
    let (ref_report, ref_timeline) = exec.run_traced_reference(&w);
    assert_reports_bit_identical(&report, &ref_report, "steal-order");
    assert_timelines_bit_identical(&timeline, &ref_timeline, "steal-order");
}

#[test]
fn task_faults_retry_deterministically_and_still_complete() {
    // A live plan with only task failures enabled: every task still
    // executes (forced success at the retry budget), retries are billed,
    // execution stretches, and the same seed replays bit-identically.
    let w = App::WordCount.workload(0.002, 42, 16);
    let exec = Executor::new(RuntimeConfig::nvfi(16));
    let mut cfg = FaultConfig::disabled();
    cfg.task_fail_rate = 0.2;
    cfg.seed = 9;
    let plan = FaultPlan::build(&cfg);
    let mut scratch = ExecScratch::new();

    let run = |scratch: &mut ExecScratch| {
        let mut faults = PhoenixFaults::new(&plan, 16, 0);
        let report = exec.run_with_faults(&w, scratch, &mut faults);
        (report, *faults.stats())
    };
    let (report_a, stats_a) = run(&mut scratch);
    let (report_b, stats_b) = run(&mut scratch);
    assert_eq!(report_a, report_b, "same fault seed must replay exactly");
    assert_eq!(stats_a, stats_b);
    assert!(
        stats_a.task_retries > 0,
        "20% failure rate must bill retries"
    );
    assert_eq!(stats_a.cores_failed, 0);
    assert_eq!(stats_a.cores_degraded, 0);

    let clean = exec.run_with_scratch(&w, &mut scratch);
    assert_eq!(
        clean
            .tasks_per_core
            .iter()
            .map(|&t| u64::from(t))
            .sum::<u64>(),
        report_a
            .tasks_per_core
            .iter()
            .map(|&t| u64::from(t))
            .sum::<u64>(),
        "every task still executes exactly once (successfully)"
    );
    assert!(
        report_a.total_cycles() > clean.total_cycles(),
        "retries and backoff must stretch execution"
    );
}

#[test]
fn dead_cores_are_drained_by_survivors() {
    // Aggressive core failures: dead cores' queued tasks must be re-stolen
    // by survivors, all work completes, and dead cores stop accumulating
    // tasks once killed.
    let w = App::Kmeans.workload(0.002, 11, 16);
    let exec = Executor::new(RuntimeConfig::nvfi(16));
    let mut cfg = FaultConfig::disabled();
    cfg.core_fail_rate = 0.35;
    cfg.core_degrade_rate = 0.3;
    cfg.seed = 4;
    let plan = FaultPlan::build(&cfg);
    let mut scratch = ExecScratch::new();
    let mut faults = PhoenixFaults::new(&plan, 16, 0);
    let report = exec.run_with_faults(&w, &mut scratch, &mut faults);
    let stats = *faults.stats();
    assert!(
        stats.cores_failed > 0,
        "35%/slot must kill cores: {stats:?}"
    );
    assert!(stats.re_steals > 0, "survivors must drain dead queues");
    assert!(faults.health().is_alive(0), "master is protected");
    assert!(faults.health().alive_count() < 16);
    let clean = exec.run_with_scratch(&w, &mut scratch);
    assert_eq!(
        clean
            .tasks_per_core
            .iter()
            .map(|&t| u64::from(t))
            .sum::<u64>(),
        report
            .tasks_per_core
            .iter()
            .map(|&t| u64::from(t))
            .sum::<u64>(),
        "all tasks complete despite dead cores"
    );
    assert!(
        report.total_cycles() > clean.total_cycles(),
        "losing cores must stretch execution"
    );
}

#[test]
fn different_fault_seeds_diverge() {
    let w = App::WordCount.workload(0.002, 42, 16);
    let exec = Executor::new(RuntimeConfig::nvfi(16));
    let mut scratch = ExecScratch::new();
    let run = |seed: u64, scratch: &mut ExecScratch| {
        let plan = FaultPlan::build(&FaultConfig::at_rate(0.15, seed));
        let mut faults = PhoenixFaults::new(&plan, 16, 0);
        exec.run_with_faults(&w, scratch, &mut faults)
    };
    let a = run(1, &mut scratch);
    let b = run(2, &mut scratch);
    assert_ne!(
        a.total_cycles().to_bits(),
        b.total_cycles().to_bits(),
        "independent fault seeds should produce different schedules"
    );
}

//! Property-based tests of the MapReduce runtime model.

use mapwave_manycore::cache::MemoryProfile;
use mapwave_phoenix::container::{ArrayContainer, HashContainer};
use mapwave_phoenix::prelude::*;
use mapwave_phoenix::stealing::{caps_for_phase, task_cap};
use mapwave_phoenix::workload::IterationWorkload;
use proptest::prelude::*;

fn workload_from(cycles: &[f64], cores: usize) -> AppWorkload {
    AppWorkload {
        name: "prop",
        lib_init_cycles: 500.0,
        lib_init_instructions: 250.0,
        iterations: vec![IterationWorkload {
            map_tasks: cycles
                .iter()
                .map(|&c| TaskWork::new(c, c * 0.7, 3))
                .collect(),
            reduce_tasks: vec![TaskWork::new(100.0, 70.0, 1); cores.min(8)],
            merge: None,
            map_memory: MemoryProfile::new(10.0, 0.05, 0.9),
            reduce_memory: MemoryProfile::new(5.0, 0.05, 0.9),
            kv_flits_per_key: 4.0,
            neighbor_bias: 0.2,
        }],
        digest: 0,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every task runs exactly once regardless of speeds and policies, and
    /// the observables stay within their definitions.
    #[test]
    fn executor_conserves_tasks(
        cycles in proptest::collection::vec(100.0f64..100_000.0, 1..40),
        cores in 2usize..12,
        slow in 0.5f64..1.0,
        capped in proptest::bool::ANY,
    ) {
        let w = workload_from(&cycles, cores);
        let mut speeds = vec![1.0; cores];
        for s in speeds.iter_mut().take(cores / 2) {
            *s = slow;
        }
        let policy = if capped { StealPolicy::VfiCapped } else { StealPolicy::Default };
        let report = Executor::new(
            RuntimeConfig::nvfi(cores)
                .with_speeds(speeds)
                .with_steal_policy(policy),
        )
        .run(&w);
        let executed: usize = report.tasks_per_core.iter().map(|&t| t as usize).sum();
        prop_assert_eq!(executed, cycles.len() + cores.min(8));
        prop_assert!(report.utilization.iter().all(|&u| (0.0..=1.0).contains(&u)));
        prop_assert!(report.total_cycles() > 0.0);
        // Busy time never exceeds cores × wall time.
        let busy: f64 = report.busy_cycles.iter().sum();
        prop_assert!(busy <= report.total_cycles() * cores as f64 * (1.0 + 1e-9));
    }

    /// Slowing every core never speeds execution up, and at equal speeds
    /// the execution is invariant.
    #[test]
    fn slowdown_monotonicity(
        cycles in proptest::collection::vec(1_000.0f64..50_000.0, 4..32),
        speed in 0.4f64..1.0,
    ) {
        let w = workload_from(&cycles, 8);
        let fast = Executor::new(RuntimeConfig::nvfi(8)).run(&w);
        let slow = Executor::new(RuntimeConfig::nvfi(8).with_speeds(vec![speed; 8])).run(&w);
        prop_assert!(slow.total_cycles() >= fast.total_cycles() - 1e-6);
    }

    /// Eq. (3): the cap is monotone in tasks and speed, zero-safe, and
    /// uncapped exactly at the system maximum.
    #[test]
    fn task_cap_properties(
        tasks in 0usize..10_000,
        cores in 1usize..256,
        s1 in 0.01f64..1.0,
        s2 in 0.01f64..1.0,
    ) {
        let (lo, hi) = if s1 <= s2 { (s1, s2) } else { (s2, s1) };
        prop_assert!(task_cap(tasks, cores, lo) <= task_cap(tasks, cores, hi));
        prop_assert_eq!(task_cap(tasks, cores, 1.0), usize::MAX);
        // Normalised caps leave the fastest core unbounded.
        let speeds = vec![lo, hi, hi];
        let caps = caps_for_phase(StealPolicy::VfiCapped, tasks, &speeds);
        prop_assert_eq!(caps[1], usize::MAX);
        prop_assert_eq!(caps[2], usize::MAX);
    }

    /// HashContainer combining is order-independent in its totals.
    #[test]
    fn hash_container_totals(
        keys in proptest::collection::vec(0u32..50, 0..200),
    ) {
        let mut forward: HashContainer<u32, u64> = HashContainer::new();
        for &k in &keys {
            forward.emit(k, 1);
        }
        let mut backward: HashContainer<u32, u64> = HashContainer::new();
        for &k in keys.iter().rev() {
            backward.emit(k, 1);
        }
        let total = |c: &HashContainer<u32, u64>| -> u64 { c.iter().map(|(_, &v)| v).sum() };
        prop_assert_eq!(total(&forward), keys.len() as u64);
        prop_assert_eq!(total(&forward), total(&backward));
        prop_assert_eq!(forward.len(), backward.len());
    }

    /// ArrayContainer merge equals elementwise sum.
    #[test]
    fn array_container_merge_is_sum(
        a in proptest::collection::vec(0u64..100, 8),
        b in proptest::collection::vec(0u64..100, 8),
    ) {
        let mut ca: ArrayContainer<u64> = ArrayContainer::new(8);
        let mut cb: ArrayContainer<u64> = ArrayContainer::new(8);
        for i in 0..8 {
            ca.emit(i, a[i]);
            cb.emit(i, b[i]);
        }
        ca.merge(cb);
        for i in 0..8 {
            prop_assert_eq!(ca.slots()[i], a[i] + b[i]);
        }
    }

    /// The executor is a pure function of its inputs.
    #[test]
    fn executor_determinism(
        cycles in proptest::collection::vec(100.0f64..10_000.0, 1..24),
        cores in 2usize..8,
    ) {
        let w = workload_from(&cycles, cores);
        let a = Executor::new(RuntimeConfig::nvfi(cores)).run(&w);
        let b = Executor::new(RuntimeConfig::nvfi(cores)).run(&w);
        prop_assert_eq!(a, b);
    }

    /// Traffic matrices from executions have an empty diagonal and finite
    /// nonnegative rates.
    #[test]
    fn execution_traffic_is_well_formed(
        cycles in proptest::collection::vec(1_000.0f64..20_000.0, 4..24),
    ) {
        let w = workload_from(&cycles, 6);
        let report = Executor::new(RuntimeConfig::nvfi(6)).run(&w);
        for s in 0..6 {
            for d in 0..6 {
                let r = report.traffic.rate(
                    mapwave_noc::NodeId(s),
                    mapwave_noc::NodeId(d),
                );
                prop_assert!(r.is_finite() && r >= 0.0);
                if s == d {
                    prop_assert_eq!(r, 0.0);
                }
            }
        }
    }
}

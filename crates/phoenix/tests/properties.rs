//! Property tests of the MapReduce runtime model, driven by deterministic
//! seeded sweeps (in-tree PRNG; no external dependencies).

use mapwave_harness::rng::{RngExt, SeedableRng, StdRng};
use mapwave_manycore::cache::MemoryProfile;
use mapwave_phoenix::container::{ArrayContainer, HashContainer};
use mapwave_phoenix::prelude::*;
use mapwave_phoenix::stealing::{caps_for_phase, task_cap};
use mapwave_phoenix::workload::IterationWorkload;

fn workload_from(cycles: &[f64], cores: usize) -> AppWorkload {
    AppWorkload {
        name: "prop",
        lib_init_cycles: 500.0,
        lib_init_instructions: 250.0,
        iterations: vec![IterationWorkload {
            map_tasks: cycles
                .iter()
                .map(|&c| TaskWork::new(c, c * 0.7, 3))
                .collect(),
            reduce_tasks: vec![TaskWork::new(100.0, 70.0, 1); cores.min(8)],
            merge: None,
            map_memory: MemoryProfile::new(10.0, 0.05, 0.9),
            reduce_memory: MemoryProfile::new(5.0, 0.05, 0.9),
            kv_flits_per_key: 4.0,
            neighbor_bias: 0.2,
        }],
        digest: 0,
    }
}

fn cycles_vec(rng: &mut StdRng, lo: f64, hi: f64, min_len: usize, max_len: usize) -> Vec<f64> {
    let len = rng.random_range(min_len..max_len);
    (0..len)
        .map(|_| lo + (hi - lo) * rng.random::<f64>())
        .collect()
}

/// Every task runs exactly once regardless of speeds and policies, and
/// the observables stay within their definitions.
#[test]
fn executor_conserves_tasks() {
    let mut rng = StdRng::seed_from_u64(0xC001);
    for case in 0..48 {
        let cycles = cycles_vec(&mut rng, 100.0, 100_000.0, 1, 40);
        let cores = rng.random_range(2..12usize);
        let slow = 0.5 + 0.5 * rng.random::<f64>();
        let capped: bool = rng.random();
        let w = workload_from(&cycles, cores);
        let mut speeds = vec![1.0; cores];
        for s in speeds.iter_mut().take(cores / 2) {
            *s = slow;
        }
        let policy = if capped {
            StealPolicy::VfiCapped
        } else {
            StealPolicy::Default
        };
        let report = Executor::new(
            RuntimeConfig::nvfi(cores)
                .with_speeds(speeds)
                .with_steal_policy(policy),
        )
        .run(&w);
        let executed: usize = report.tasks_per_core.iter().map(|&t| t as usize).sum();
        assert_eq!(executed, cycles.len() + cores.min(8), "case {case}");
        assert!(
            report.utilization.iter().all(|&u| (0.0..=1.0).contains(&u)),
            "case {case}"
        );
        assert!(report.total_cycles() > 0.0, "case {case}");
        // Busy time never exceeds cores × wall time.
        let busy: f64 = report.busy_cycles.iter().sum();
        assert!(
            busy <= report.total_cycles() * cores as f64 * (1.0 + 1e-9),
            "case {case}"
        );
    }
}

/// Slowing every core never speeds execution up.
#[test]
fn slowdown_monotonicity() {
    let mut rng = StdRng::seed_from_u64(0xC002);
    for case in 0..32 {
        let cycles = cycles_vec(&mut rng, 1_000.0, 50_000.0, 4, 32);
        let speed = 0.4 + 0.6 * rng.random::<f64>();
        let w = workload_from(&cycles, 8);
        let fast = Executor::new(RuntimeConfig::nvfi(8)).run(&w);
        let slow = Executor::new(RuntimeConfig::nvfi(8).with_speeds(vec![speed; 8])).run(&w);
        assert!(
            slow.total_cycles() >= fast.total_cycles() - 1e-6,
            "case {case}"
        );
    }
}

/// Eq. (3): the cap is monotone in tasks and speed, zero-safe, and
/// uncapped exactly at the system maximum.
#[test]
fn task_cap_properties() {
    let mut rng = StdRng::seed_from_u64(0xC003);
    for case in 0..64 {
        let tasks = rng.random_range(0..10_000usize);
        let cores = rng.random_range(1..256usize);
        let s1 = 0.01 + 0.99 * rng.random::<f64>();
        let s2 = 0.01 + 0.99 * rng.random::<f64>();
        let (lo, hi) = if s1 <= s2 { (s1, s2) } else { (s2, s1) };
        assert!(
            task_cap(tasks, cores, lo) <= task_cap(tasks, cores, hi),
            "case {case}"
        );
        assert_eq!(task_cap(tasks, cores, 1.0), usize::MAX, "case {case}");
        // Normalised caps leave the fastest core unbounded.
        let speeds = vec![lo, hi, hi];
        let caps = caps_for_phase(StealPolicy::VfiCapped, tasks, &speeds);
        assert_eq!(caps[1], usize::MAX, "case {case}");
        assert_eq!(caps[2], usize::MAX, "case {case}");
    }
}

/// HashContainer combining is order-independent in its totals.
#[test]
fn hash_container_totals() {
    let mut rng = StdRng::seed_from_u64(0xC004);
    for case in 0..48 {
        let len = rng.random_range(0..200usize);
        let keys: Vec<u32> = (0..len).map(|_| rng.random_range(0..50u32)).collect();
        let mut forward: HashContainer<u32, u64> = HashContainer::new();
        for &k in &keys {
            forward.emit(k, 1);
        }
        let mut backward: HashContainer<u32, u64> = HashContainer::new();
        for &k in keys.iter().rev() {
            backward.emit(k, 1);
        }
        let total = |c: &HashContainer<u32, u64>| -> u64 { c.iter().map(|(_, &v)| v).sum() };
        assert_eq!(total(&forward), keys.len() as u64, "case {case}");
        assert_eq!(total(&forward), total(&backward), "case {case}");
        assert_eq!(forward.len(), backward.len(), "case {case}");
    }
}

/// ArrayContainer merge equals elementwise sum.
#[test]
fn array_container_merge_is_sum() {
    let mut rng = StdRng::seed_from_u64(0xC005);
    for case in 0..48 {
        let a: Vec<u64> = (0..8).map(|_| rng.random_range(0..100u64)).collect();
        let b: Vec<u64> = (0..8).map(|_| rng.random_range(0..100u64)).collect();
        let mut ca: ArrayContainer<u64> = ArrayContainer::new(8);
        let mut cb: ArrayContainer<u64> = ArrayContainer::new(8);
        for i in 0..8 {
            ca.emit(i, a[i]);
            cb.emit(i, b[i]);
        }
        ca.merge(cb);
        for i in 0..8 {
            assert_eq!(ca.slots()[i], a[i] + b[i], "case {case}");
        }
    }
}

/// The executor is a pure function of its inputs.
#[test]
fn executor_determinism() {
    let mut rng = StdRng::seed_from_u64(0xC006);
    for case in 0..16 {
        let cycles = cycles_vec(&mut rng, 100.0, 10_000.0, 1, 24);
        let cores = rng.random_range(2..8usize);
        let w = workload_from(&cycles, cores);
        let a = Executor::new(RuntimeConfig::nvfi(cores)).run(&w);
        let b = Executor::new(RuntimeConfig::nvfi(cores)).run(&w);
        assert_eq!(a, b, "case {case}");
    }
}

/// Traffic matrices from executions have an empty diagonal and finite
/// nonnegative rates.
#[test]
fn execution_traffic_is_well_formed() {
    let mut rng = StdRng::seed_from_u64(0xC007);
    for case in 0..24 {
        let cycles = cycles_vec(&mut rng, 1_000.0, 20_000.0, 4, 24);
        let w = workload_from(&cycles, 6);
        let report = Executor::new(RuntimeConfig::nvfi(6)).run(&w);
        for s in 0..6 {
            for d in 0..6 {
                let r = report
                    .traffic
                    .rate(mapwave_noc::NodeId(s), mapwave_noc::NodeId(d));
                assert!(r.is_finite() && r >= 0.0, "case {case}");
                if s == d {
                    assert_eq!(r, 0.0, "case {case}");
                }
            }
        }
    }
}

//! Ablation studies: how much each design choice contributes.
//!
//! The paper's evaluation compares three whole platforms. These ablations
//! decompose the gap — each knob of the DESIGN.md inventory gets a
//! controlled experiment:
//!
//! * [`wireless_contribution`] — the WiNoC with its wireless overlay
//!   disabled (same small-world wires, up\*/down\* routing) isolates what
//!   the mm-wave links add beyond the small-world rewiring;
//! * [`steal_policy_contribution`] — VFI mesh with default vs Eq. (3)
//!   capped stealing;
//! * [`clustering_contribution`] — the Eq. (1) clustering vs a naive
//!   utilization-agnostic quadrant clustering;
//! * [`headroom_sweep`] — the V/F-selection aggressiveness frontier.

use crate::config::PlatformConfig;
use crate::design_flow::{Design, DesignFlow, VfStage};
use crate::system::{run_system, RunReport, SystemSpec};
use mapwave_noc::routing::RoutingTable;
use mapwave_noc::topology::wireless::WirelessOverlay;
use mapwave_phoenix::apps::App;
use mapwave_phoenix::stealing::StealPolicy;
use mapwave_vfi::clustering::Clustering;

/// A pair of runs differing in exactly one knob.
#[derive(Debug, Clone)]
pub struct Ablation {
    /// What the knob is.
    pub knob: &'static str,
    /// The run with the feature enabled (the designed system).
    pub with_feature: RunReport,
    /// The run with the feature removed/neutralised.
    pub without_feature: RunReport,
}

impl Ablation {
    /// EDP of the featureless variant relative to the featured one
    /// (> 1 means the feature helps).
    pub fn edp_benefit(&self) -> f64 {
        self.without_feature.edp / self.with_feature.edp
    }

    /// Execution time of the featureless variant relative to the featured
    /// one (> 1 means the feature speeds things up).
    pub fn time_benefit(&self) -> f64 {
        self.without_feature.exec_seconds / self.with_feature.exec_seconds
    }
}

/// The WiNoC with and without its wireless overlay: same small-world
/// wires, same thread mapping, same islands.
pub fn wireless_contribution(flow: &DesignFlow, design: &Design) -> Ablation {
    let cfg = flow.config();
    let spec = flow.winoc_spec(design, cfg.placement);
    let with_feature = run_system(&spec, &design.workload, cfg, flow.power());

    let wired_routing = RoutingTable::up_down_weighted(
        &spec.topology,
        &WirelessOverlay::none(),
        crate::placement::WINOC_HUB_EDGE_WEIGHT,
    )
    .expect("small-world graph stays connected without wireless");
    let wired = SystemSpec {
        label: format!("{} (wireless off)", spec.label),
        overlay: WirelessOverlay::none(),
        routing: wired_routing,
        ..spec
    };
    let without_feature = run_system(&wired, &design.workload, cfg, flow.power());
    Ablation {
        knob: "mm-wave wireless overlay",
        with_feature,
        without_feature,
    }
}

/// The WiNoC with the paper's plain wormhole router vs the 2-VC
/// Duato-adaptive router extension: same topology, overlay, mapping and
/// islands — only the router microarchitecture changes.
pub fn adaptive_router_contribution(flow: &DesignFlow, design: &Design) -> Ablation {
    let cfg = flow.config();
    let spec = flow.winoc_spec(design, cfg.placement);
    let without_feature = run_system(&spec, &design.workload, cfg, flow.power());

    let mut enhanced = cfg.clone();
    enhanced.noc_vcs = 2;
    enhanced.noc_adaptive = true;
    let with_feature = run_system(&spec, &design.workload, &enhanced, flow.power());
    Ablation {
        knob: "2-VC Duato-adaptive router (extension)",
        with_feature,
        without_feature,
    }
}

/// The VFI mesh with the design flow's steal policy vs the opposite policy.
pub fn steal_policy_contribution(flow: &DesignFlow, design: &Design) -> Ablation {
    let cfg = flow.config();
    let spec = flow.vfi_mesh_spec(design, VfStage::Vfi2);
    let with_feature = run_system(&spec, &design.workload, cfg, flow.power());
    let flipped = SystemSpec {
        label: format!("{} (steal flipped)", spec.label),
        steal: match spec.steal {
            StealPolicy::Default => StealPolicy::VfiCapped,
            StealPolicy::VfiCapped => StealPolicy::Default,
        },
        ..spec
    };
    let without_feature = run_system(&flipped, &design.workload, cfg, flow.power());
    Ablation {
        knob: "design-time steal policy choice",
        with_feature,
        without_feature,
    }
}

/// The Eq. (1) clustering vs a naive quadrant clustering (cores grouped by
/// die position, ignoring utilization and traffic), both with freshly
/// assigned V/F levels.
pub fn clustering_contribution(flow: &DesignFlow, design: &Design) -> Ablation {
    let cfg = flow.config();
    let spec = flow.vfi_mesh_spec(design, VfStage::Vfi2);
    let with_feature = run_system(&spec, &design.workload, cfg, flow.power());

    let naive_clustering = Clustering::grid_quadrants(cfg.cols, cfg.rows);
    let naive_vf = mapwave_vfi::assignment::assign_initial(
        &naive_clustering,
        &design.profile.utilization,
        &cfg.vf_table,
        cfg.headroom,
    );
    let naive = SystemSpec {
        label: "VFI Mesh (naive quadrant clustering)".into(),
        mapping: mapwave_manycore::mapping::ThreadMapping::identity(cfg.cores()),
        clustering: naive_clustering,
        vf: naive_vf,
        ..spec
    };
    let without_feature = run_system(&naive, &design.workload, cfg, flow.power());
    Ablation {
        knob: "Eq. (1) utilization+traffic clustering",
        with_feature,
        without_feature,
    }
}

/// One point of the headroom frontier.
#[derive(Debug, Clone)]
pub struct HeadroomPoint {
    /// The headroom used for V/F selection.
    pub headroom: f64,
    /// Resulting VFI-mesh run.
    pub run: RunReport,
    /// Execution time relative to the NVFI mesh.
    pub time_ratio: f64,
    /// EDP relative to the NVFI mesh.
    pub edp_ratio: f64,
}

/// Sweeps the V/F-selection headroom for one application, re-running the
/// design flow at each point.
///
/// # Panics
///
/// Panics if a headroom value makes the configuration invalid.
pub fn headroom_sweep(base: &PlatformConfig, app: App, headrooms: &[f64]) -> Vec<HeadroomPoint> {
    let base_flow = DesignFlow::new(base.clone()).expect("base config is valid");
    let nvfi = {
        let d = base_flow.design(app);
        run_system(&base_flow.nvfi_spec(), &d.workload, base, base_flow.power())
    };
    headrooms
        .iter()
        .map(|&headroom| {
            let mut cfg = base.clone();
            cfg.headroom = headroom;
            let flow = DesignFlow::new(cfg.clone()).expect("headroom variant is valid");
            let d = flow.design(app);
            let run = run_system(
                &flow.vfi_mesh_spec(&d, VfStage::Vfi2),
                &d.workload,
                &cfg,
                flow.power(),
            );
            HeadroomPoint {
                headroom,
                time_ratio: run.exec_seconds / nvfi.exec_seconds,
                edp_ratio: run.edp / nvfi.edp,
                run,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flow() -> DesignFlow {
        DesignFlow::new(PlatformConfig::small().with_scale(0.002)).unwrap()
    }

    #[test]
    fn wireless_ablation_runs_and_is_plausible() {
        let f = flow();
        let d = f.design(App::WordCount);
        let a = wireless_contribution(&f, &d);
        assert_eq!(a.knob, "mm-wave wireless overlay");
        assert!(a.with_feature.net.wireless_flit_hops > 0);
        assert_eq!(a.without_feature.net.wireless_flit_hops, 0);
        // The wired variant must still complete.
        assert!(a.without_feature.exec_seconds > 0.0);
        assert!((0.5..2.0).contains(&a.edp_benefit()), "{}", a.edp_benefit());
    }

    #[test]
    fn steal_ablation_never_prefers_the_flipped_policy() {
        let f = flow();
        let d = f.design(App::Kmeans);
        let a = steal_policy_contribution(&f, &d);
        // The flow chose its policy by modelled time, so flipping must not
        // be meaningfully faster.
        assert!(
            a.without_feature.exec_seconds >= a.with_feature.exec_seconds * 0.98,
            "flipped {} vs chosen {}",
            a.without_feature.exec_seconds,
            a.with_feature.exec_seconds
        );
    }

    #[test]
    fn adaptive_router_never_hurts() {
        let f = flow();
        let d = f.design(App::LinearRegression);
        let a = adaptive_router_contribution(&f, &d);
        // The enhanced router must not slow execution (it can only lower
        // network latency).
        assert!(
            a.with_feature.exec_seconds <= a.without_feature.exec_seconds * 1.02,
            "adaptive {} vs plain {}",
            a.with_feature.exec_seconds,
            a.without_feature.exec_seconds
        );
    }

    #[test]
    fn clustering_ablation_runs() {
        let f = flow();
        let d = f.design(App::Histogram);
        let a = clustering_contribution(&f, &d);
        assert!(a.with_feature.edp > 0.0);
        assert!(a.without_feature.edp > 0.0);
    }

    #[test]
    fn headroom_sweep_trades_time_for_energy() {
        let cfg = PlatformConfig::small().with_scale(0.002);
        let points = headroom_sweep(&cfg, App::Histogram, &[0.95, 0.5]);
        assert_eq!(points.len(), 2);
        // More aggressive headroom (0.95) slows execution at least as much
        // as the conservative setting.
        assert!(points[0].time_ratio >= points[1].time_ratio - 1e-9);
    }
}
